open Mcs_util

let check_float = Alcotest.(check (float 1e-9))

let test_reserve_and_free () =
  let t = Timeline.create ~procs:2 in
  Timeline.reserve t ~proc:0 ~start:1. ~finish:3.;
  Alcotest.(check bool) "before" true (Timeline.is_free t ~proc:0 ~start:0. ~finish:1.);
  Alcotest.(check bool) "inside" false (Timeline.is_free t ~proc:0 ~start:2. ~finish:2.5);
  Alcotest.(check bool) "straddling" false
    (Timeline.is_free t ~proc:0 ~start:0.5 ~finish:1.5);
  Alcotest.(check bool) "after" true (Timeline.is_free t ~proc:0 ~start:3. ~finish:9.);
  Alcotest.(check bool) "other proc" true
    (Timeline.is_free t ~proc:1 ~start:0. ~finish:10.)

let test_reserve_overlap_rejected () =
  let t = Timeline.create ~procs:1 in
  Timeline.reserve t ~proc:0 ~start:1. ~finish:3.;
  Alcotest.(check bool) "overlap" true
    (try
       Timeline.reserve t ~proc:0 ~start:2. ~finish:4.;
       false
     with Invalid_argument _ -> true);
  (* Touching intervals are fine. *)
  Timeline.reserve t ~proc:0 ~start:3. ~finish:4.;
  Timeline.reserve t ~proc:0 ~start:0. ~finish:1.;
  Alcotest.(check int) "three reservations" 3
    (List.length (Timeline.busy_intervals t ~proc:0))

let test_reserve_validation () =
  let t = Timeline.create ~procs:1 in
  let raises f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad proc" true
    (raises (fun () -> Timeline.reserve t ~proc:5 ~start:0. ~finish:1.));
  Alcotest.(check bool) "inverted" true
    (raises (fun () -> Timeline.reserve t ~proc:0 ~start:2. ~finish:1.));
  Alcotest.(check bool) "nan" true
    (raises (fun () -> Timeline.reserve t ~proc:0 ~start:nan ~finish:1.));
  Alcotest.(check bool) "create 0" true
    (raises (fun () -> ignore (Timeline.create ~procs:0)))

let test_find_slot_in_hole () =
  (* proc 0 busy [0, 10); proc 1 busy [2, 4): a 2-second single-proc
     task fits at 0 on proc 1. *)
  let t = Timeline.create ~procs:2 in
  Timeline.reserve t ~proc:0 ~start:0. ~finish:10.;
  Timeline.reserve t ~proc:1 ~start:2. ~finish:4.;
  (match Timeline.find_slot t ~count:1 ~duration:2. ~after:0. with
  | Some (start, procs) ->
    check_float "at zero" 0. start;
    Alcotest.(check (array int)) "on proc 1" [| 1 |] procs
  | None -> Alcotest.fail "no slot");
  (* A 3-second task does not fit in proc 1's initial hole. *)
  match Timeline.find_slot t ~count:1 ~duration:3. ~after:0. with
  | Some (start, procs) ->
    check_float "after the middle reservation" 4. start;
    Alcotest.(check (array int)) "on proc 1" [| 1 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_multi_proc () =
  let t = Timeline.create ~procs:3 in
  Timeline.reserve t ~proc:0 ~start:0. ~finish:5.;
  Timeline.reserve t ~proc:1 ~start:0. ~finish:8.;
  (* Two procs for 1 s: procs 2 is free now but we need two -> wait
     until 5 when proc 0 frees. *)
  match Timeline.find_slot t ~count:2 ~duration:1. ~after:0. with
  | Some (start, procs) ->
    check_float "at five" 5. start;
    Alcotest.(check (array int)) "procs 0 and 2" [| 0; 2 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_best_fit () =
  (* Both free at 3 and 4; best fit picks the one released later. *)
  let t = Timeline.create ~procs:2 in
  Timeline.reserve t ~proc:0 ~start:0. ~finish:3.;
  Timeline.reserve t ~proc:1 ~start:0. ~finish:4.;
  match Timeline.find_slot t ~count:1 ~duration:2. ~after:4. with
  | Some (start, procs) ->
    check_float "at four" 4. start;
    Alcotest.(check (array int)) "later-released proc" [| 1 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_best_fit_ties () =
  (* Procs 1 and 3 share the latest previous-reservation end (3.), the
     never-used procs 0 and 4 share the earliest (0.), and proc 2 sits
     in between. Best fit prefers late-released procs, breaking the
     ties by the lowest processor id. *)
  let t = Timeline.create ~procs:5 in
  Timeline.reserve t ~proc:1 ~start:0. ~finish:3.;
  Timeline.reserve t ~proc:3 ~start:1. ~finish:3.;
  Timeline.reserve t ~proc:2 ~start:0. ~finish:1.;
  (match Timeline.find_slot t ~count:2 ~duration:2. ~after:5. with
  | Some (start, procs) ->
    check_float "at five" 5. start;
    Alcotest.(check (array int)) "both late-released procs" [| 1; 3 |] procs
  | None -> Alcotest.fail "no slot");
  match Timeline.find_slot t ~count:4 ~duration:2. ~after:5. with
  | Some (start, procs) ->
    check_float "still at five" 5. start;
    Alcotest.(check (array int)) "tie among idle procs broken by id"
      [| 0; 1; 2; 3 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_subset_and_count () =
  let t = Timeline.create ~procs:4 in
  Alcotest.(check bool) "count too large" true
    (Timeline.find_slot t ~count:3 ~duration:1. ~after:0.
       ~procs_subset:[| 0; 1 |]
    = None);
  match
    Timeline.find_slot t ~count:2 ~duration:1. ~after:7.
      ~procs_subset:[| 2; 3 |]
  with
  | Some (start, procs) ->
    check_float "at release time" 7. start;
    Alcotest.(check (array int)) "subset respected" [| 2; 3 |] procs
  | None -> Alcotest.fail "no slot"

let qcheck_find_slot_is_free_and_earliest =
  QCheck.Test.make
    ~name:"find_slot returns a free window and no earlier candidate works"
    ~count:150
    QCheck.(quad (int_range 1 4) (int_range 1 20) (float_range 0.5 5.)
              (int_range 0 10_000))
    (fun (nb_procs, reservations, duration, seed) ->
      let rng = Mcs_prng.Prng.create ~seed in
      let t = Timeline.create ~procs:nb_procs in
      (* Random non-overlapping reservations per proc. *)
      for proc = 0 to nb_procs - 1 do
        let clock = ref 0. in
        for _ = 1 to reservations / nb_procs do
          let gap = Mcs_prng.Prng.uniform rng ~lo:0. ~hi:3. in
          let len = Mcs_prng.Prng.uniform rng ~lo:0.5 ~hi:4. in
          Timeline.reserve t ~proc ~start:(!clock +. gap)
            ~finish:(!clock +. gap +. len);
          clock := !clock +. gap +. len
        done
      done;
      let count = 1 + Mcs_prng.Prng.int rng nb_procs in
      match Timeline.find_slot t ~count ~duration ~after:0. with
      | None -> false
      | Some (start, procs) ->
        Array.length procs = count
        && Array.for_all
             (fun p ->
               Timeline.is_free t ~proc:p ~start ~finish:(start +. duration))
             procs
        &&
        (* No candidate time strictly before [start] admits [count] free
           processors for the duration. *)
        List.for_all
          (fun earlier ->
            earlier >= start -. 1e-9
            ||
            let free =
              List.filter
                (fun p ->
                  Timeline.is_free t ~proc:p ~start:earlier
                    ~finish:(earlier +. duration))
                (List.init nb_procs Fun.id)
            in
            List.length free < count)
          (Timeline.next_candidates t ~after:0.))

(* ---------- Avail_index ↔ Timeline mirror contract ---------- *)

(* The mapper pairs every Avail_index.update with a Timeline.reserve and
   every Avail_index.release with a Timeline.release. The two structures
   must agree on each processor's horizon (the end of its last busy
   interval) under any interleaving of commits and rollbacks — including
   zero-length commits, which Timeline ignores and the index therefore
   must not move past. *)

let view_is_sorted idx g =
  let view = Avail_index.sorted idx g in
  let ok = ref true in
  for i = 1 to Array.length view - 1 do
    let a = view.(i - 1) and b = view.(i) in
    let ka = (Avail_index.avail idx a, a) and kb = (Avail_index.avail idx b, b) in
    if compare ka kb >= 0 then ok := false
  done;
  !ok

let qcheck_avail_index_mirrors_timeline =
  QCheck.Test.make
    ~name:"Avail_index and Timeline agree on every horizon" ~count:300
    QCheck.(pair (int_range 0 10_000) (int_range 5 60))
    (fun (seed, steps) ->
      let rng = Mcs_prng.Prng.create ~seed in
      let procs = 6 in
      let tl = Timeline.create ~procs in
      let avail = Array.make procs 0. in
      let idx =
        Avail_index.create ~avail ~groups:[| [| 0; 1; 2 |]; [| 3; 4; 5 |] |]
      in
      (* Per-proc stack of committed intervals: rollbacks revoke the most
         recent commit, exactly the engine's placement discipline. *)
      let stacks = Array.make procs [] in
      let ok = ref true in
      for _ = 1 to steps do
        let p = Mcs_prng.Prng.int rng procs in
        if Mcs_prng.Prng.int rng 4 < 3 || stacks.(p) = [] then begin
          (* Commit: reserve [horizon, horizon + len) on a random set of
             processors sharing the horizon — duplicates included to
             exercise the index's dedup. One draw in six is zero-length:
             Timeline drops it, so the caller skips the index update. *)
          let len =
            if Mcs_prng.Prng.int rng 6 = 0 then 0.
            else Mcs_prng.Prng.uniform rng ~lo:0.5 ~hi:5.
          in
          let group = Array.to_list (if p < 3 then [| 0; 1; 2 |] else [| 3; 4; 5 |]) in
          let members =
            List.filter
              (fun q -> q = p || (avail.(q) = avail.(p) && Mcs_prng.Prng.int rng 2 = 0))
              group
          in
          let start = avail.(p) in
          if len > 0. then begin
            List.iter
              (fun q ->
                Timeline.reserve tl ~proc:q ~start ~finish:(start +. len);
                stacks.(q) <- (start, start +. len) :: stacks.(q))
              members;
            let ids = Array.of_list (members @ members) in
            Avail_index.update idx ids (start +. len)
          end
        end
        else begin
          (* Rollback the latest commit of p alone. *)
          match stacks.(p) with
          | (s, f) :: rest ->
            Timeline.release tl ~proc:p ~start:s ~finish:f;
            stacks.(p) <- rest;
            Avail_index.release idx [| p |] s
          | [] -> ()
        end;
        (* Horizon agreement plus view integrity after every step. *)
        for q = 0 to procs - 1 do
          let horizon =
            List.fold_left
              (fun acc (_, f) -> Float.max acc f)
              0.
              (Timeline.busy_intervals tl ~proc:q)
          in
          if not (Float.equal horizon (Avail_index.avail idx q)) then
            ok := false;
          if
            not
              (Timeline.is_free tl ~proc:q ~start:(Avail_index.avail idx q)
                 ~finish:(Avail_index.avail idx q +. 1e6))
          then ok := false
        done;
        if not (view_is_sorted idx 0 && view_is_sorted idx 1) then ok := false
      done;
      !ok)

let test_avail_index_update_edge_cases () =
  let avail = [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  let idx =
    Avail_index.create ~avail ~groups:[| [| 0; 1; 2 |]; [| 3; 4; 5 |] |]
  in
  (* Duplicates collapse to one move. *)
  Avail_index.update idx [| 1; 1; 1 |] 10.;
  Alcotest.(check (float 0.)) "dup ids applied once" 10.
    (Avail_index.avail idx 1);
  Alcotest.(check (array int)) "group 0 reordered" [| 0; 2; 1 |]
    (Avail_index.sorted idx 0);
  (* One update spanning both groups — with interleaved, unsorted,
     duplicated ids — repairs each group independently. *)
  Avail_index.update idx [| 5; 0; 5; 2; 3 |] 0.5;
  Alcotest.(check (array int)) "group 0 after cross-group update"
    [| 0; 2; 1 |]
    (Avail_index.sorted idx 0);
  Alcotest.(check (array int)) "group 1 after cross-group update"
    [| 3; 5; 4 |]
    (Avail_index.sorted idx 1);
  (* Empty update is a no-op; non-finite availabilities are rejected
     like Timeline rejects ill-formed intervals. *)
  Avail_index.update idx [||] Float.nan;
  let raises v =
    try
      Avail_index.update idx [| 0 |] v;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "nan rejected" true (raises Float.nan);
  Alcotest.(check bool) "infinity rejected" true (raises Float.infinity);
  Alcotest.(check bool) "unindexed id rejected" true
    (try
       Avail_index.update idx [| 17 |] 1.;
       false
     with Invalid_argument _ -> true)

let test_avail_index_release_equals_fresh () =
  (* After any release, the index is indistinguishable from one freshly
     built over the same availabilities. *)
  let avail = [| 3.; 1.; 4.; 1.; 5. |] in
  let idx = Avail_index.create ~avail ~groups:[| [| 0; 1; 2; 3; 4 |] |] in
  Avail_index.update idx [| 0; 2 |] 9.;
  Avail_index.release idx [| 2; 0; 2 |] 2.;
  let fresh =
    Avail_index.create ~avail:(Array.copy avail)
      ~groups:[| [| 0; 1; 2; 3; 4 |] |]
  in
  Alcotest.(check (array int)) "released view = fresh view"
    (Avail_index.sorted fresh 0)
    (Avail_index.sorted idx 0)

let suite =
  [
    ( "util.timeline",
      [
        Alcotest.test_case "reserve & free" `Quick test_reserve_and_free;
        Alcotest.test_case "overlap rejected" `Quick
          test_reserve_overlap_rejected;
        Alcotest.test_case "validation" `Quick test_reserve_validation;
        Alcotest.test_case "hole filling" `Quick test_find_slot_in_hole;
        Alcotest.test_case "multi-processor slot" `Quick
          test_find_slot_multi_proc;
        Alcotest.test_case "best fit" `Quick test_find_slot_best_fit;
        Alcotest.test_case "best-fit tie-breaking" `Quick
          test_find_slot_best_fit_ties;
        Alcotest.test_case "subset & count" `Quick
          test_find_slot_subset_and_count;
        QCheck_alcotest.to_alcotest qcheck_find_slot_is_free_and_earliest;
        QCheck_alcotest.to_alcotest qcheck_avail_index_mirrors_timeline;
        Alcotest.test_case "avail index update edge cases" `Quick
          test_avail_index_update_edge_cases;
        Alcotest.test_case "avail index release = fresh build" `Quick
          test_avail_index_release_equals_fresh;
      ] );
  ]
