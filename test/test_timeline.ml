open Mcs_util

let check_float = Alcotest.(check (float 1e-9))

let test_reserve_and_free () =
  let t = Timeline.create ~procs:2 in
  Timeline.reserve t ~proc:0 ~start:1. ~finish:3.;
  Alcotest.(check bool) "before" true (Timeline.is_free t ~proc:0 ~start:0. ~finish:1.);
  Alcotest.(check bool) "inside" false (Timeline.is_free t ~proc:0 ~start:2. ~finish:2.5);
  Alcotest.(check bool) "straddling" false
    (Timeline.is_free t ~proc:0 ~start:0.5 ~finish:1.5);
  Alcotest.(check bool) "after" true (Timeline.is_free t ~proc:0 ~start:3. ~finish:9.);
  Alcotest.(check bool) "other proc" true
    (Timeline.is_free t ~proc:1 ~start:0. ~finish:10.)

let test_reserve_overlap_rejected () =
  let t = Timeline.create ~procs:1 in
  Timeline.reserve t ~proc:0 ~start:1. ~finish:3.;
  Alcotest.(check bool) "overlap" true
    (try
       Timeline.reserve t ~proc:0 ~start:2. ~finish:4.;
       false
     with Invalid_argument _ -> true);
  (* Touching intervals are fine. *)
  Timeline.reserve t ~proc:0 ~start:3. ~finish:4.;
  Timeline.reserve t ~proc:0 ~start:0. ~finish:1.;
  Alcotest.(check int) "three reservations" 3
    (List.length (Timeline.busy_intervals t ~proc:0))

let test_reserve_validation () =
  let t = Timeline.create ~procs:1 in
  let raises f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad proc" true
    (raises (fun () -> Timeline.reserve t ~proc:5 ~start:0. ~finish:1.));
  Alcotest.(check bool) "inverted" true
    (raises (fun () -> Timeline.reserve t ~proc:0 ~start:2. ~finish:1.));
  Alcotest.(check bool) "nan" true
    (raises (fun () -> Timeline.reserve t ~proc:0 ~start:nan ~finish:1.));
  Alcotest.(check bool) "create 0" true
    (raises (fun () -> ignore (Timeline.create ~procs:0)))

let test_find_slot_in_hole () =
  (* proc 0 busy [0, 10); proc 1 busy [2, 4): a 2-second single-proc
     task fits at 0 on proc 1. *)
  let t = Timeline.create ~procs:2 in
  Timeline.reserve t ~proc:0 ~start:0. ~finish:10.;
  Timeline.reserve t ~proc:1 ~start:2. ~finish:4.;
  (match Timeline.find_slot t ~count:1 ~duration:2. ~after:0. with
  | Some (start, procs) ->
    check_float "at zero" 0. start;
    Alcotest.(check (array int)) "on proc 1" [| 1 |] procs
  | None -> Alcotest.fail "no slot");
  (* A 3-second task does not fit in proc 1's initial hole. *)
  match Timeline.find_slot t ~count:1 ~duration:3. ~after:0. with
  | Some (start, procs) ->
    check_float "after the middle reservation" 4. start;
    Alcotest.(check (array int)) "on proc 1" [| 1 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_multi_proc () =
  let t = Timeline.create ~procs:3 in
  Timeline.reserve t ~proc:0 ~start:0. ~finish:5.;
  Timeline.reserve t ~proc:1 ~start:0. ~finish:8.;
  (* Two procs for 1 s: procs 2 is free now but we need two -> wait
     until 5 when proc 0 frees. *)
  match Timeline.find_slot t ~count:2 ~duration:1. ~after:0. with
  | Some (start, procs) ->
    check_float "at five" 5. start;
    Alcotest.(check (array int)) "procs 0 and 2" [| 0; 2 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_best_fit () =
  (* Both free at 3 and 4; best fit picks the one released later. *)
  let t = Timeline.create ~procs:2 in
  Timeline.reserve t ~proc:0 ~start:0. ~finish:3.;
  Timeline.reserve t ~proc:1 ~start:0. ~finish:4.;
  match Timeline.find_slot t ~count:1 ~duration:2. ~after:4. with
  | Some (start, procs) ->
    check_float "at four" 4. start;
    Alcotest.(check (array int)) "later-released proc" [| 1 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_best_fit_ties () =
  (* Procs 1 and 3 share the latest previous-reservation end (3.), the
     never-used procs 0 and 4 share the earliest (0.), and proc 2 sits
     in between. Best fit prefers late-released procs, breaking the
     ties by the lowest processor id. *)
  let t = Timeline.create ~procs:5 in
  Timeline.reserve t ~proc:1 ~start:0. ~finish:3.;
  Timeline.reserve t ~proc:3 ~start:1. ~finish:3.;
  Timeline.reserve t ~proc:2 ~start:0. ~finish:1.;
  (match Timeline.find_slot t ~count:2 ~duration:2. ~after:5. with
  | Some (start, procs) ->
    check_float "at five" 5. start;
    Alcotest.(check (array int)) "both late-released procs" [| 1; 3 |] procs
  | None -> Alcotest.fail "no slot");
  match Timeline.find_slot t ~count:4 ~duration:2. ~after:5. with
  | Some (start, procs) ->
    check_float "still at five" 5. start;
    Alcotest.(check (array int)) "tie among idle procs broken by id"
      [| 0; 1; 2; 3 |] procs
  | None -> Alcotest.fail "no slot"

let test_find_slot_subset_and_count () =
  let t = Timeline.create ~procs:4 in
  Alcotest.(check bool) "count too large" true
    (Timeline.find_slot t ~count:3 ~duration:1. ~after:0.
       ~procs_subset:[| 0; 1 |]
    = None);
  match
    Timeline.find_slot t ~count:2 ~duration:1. ~after:7.
      ~procs_subset:[| 2; 3 |]
  with
  | Some (start, procs) ->
    check_float "at release time" 7. start;
    Alcotest.(check (array int)) "subset respected" [| 2; 3 |] procs
  | None -> Alcotest.fail "no slot"

let qcheck_find_slot_is_free_and_earliest =
  QCheck.Test.make
    ~name:"find_slot returns a free window and no earlier candidate works"
    ~count:150
    QCheck.(quad (int_range 1 4) (int_range 1 20) (float_range 0.5 5.)
              (int_range 0 10_000))
    (fun (nb_procs, reservations, duration, seed) ->
      let rng = Mcs_prng.Prng.create ~seed in
      let t = Timeline.create ~procs:nb_procs in
      (* Random non-overlapping reservations per proc. *)
      for proc = 0 to nb_procs - 1 do
        let clock = ref 0. in
        for _ = 1 to reservations / nb_procs do
          let gap = Mcs_prng.Prng.uniform rng ~lo:0. ~hi:3. in
          let len = Mcs_prng.Prng.uniform rng ~lo:0.5 ~hi:4. in
          Timeline.reserve t ~proc ~start:(!clock +. gap)
            ~finish:(!clock +. gap +. len);
          clock := !clock +. gap +. len
        done
      done;
      let count = 1 + Mcs_prng.Prng.int rng nb_procs in
      match Timeline.find_slot t ~count ~duration ~after:0. with
      | None -> false
      | Some (start, procs) ->
        Array.length procs = count
        && Array.for_all
             (fun p ->
               Timeline.is_free t ~proc:p ~start ~finish:(start +. duration))
             procs
        &&
        (* No candidate time strictly before [start] admits [count] free
           processors for the duration. *)
        List.for_all
          (fun earlier ->
            earlier >= start -. 1e-9
            ||
            let free =
              List.filter
                (fun p ->
                  Timeline.is_free t ~proc:p ~start:earlier
                    ~finish:(earlier +. duration))
                (List.init nb_procs Fun.id)
            in
            List.length free < count)
          (Timeline.next_candidates t ~after:0.))

let suite =
  [
    ( "util.timeline",
      [
        Alcotest.test_case "reserve & free" `Quick test_reserve_and_free;
        Alcotest.test_case "overlap rejected" `Quick
          test_reserve_overlap_rejected;
        Alcotest.test_case "validation" `Quick test_reserve_validation;
        Alcotest.test_case "hole filling" `Quick test_find_slot_in_hole;
        Alcotest.test_case "multi-processor slot" `Quick
          test_find_slot_multi_proc;
        Alcotest.test_case "best fit" `Quick test_find_slot_best_fit;
        Alcotest.test_case "best-fit tie-breaking" `Quick
          test_find_slot_best_fit_ties;
        Alcotest.test_case "subset & count" `Quick
          test_find_slot_subset_and_count;
        QCheck_alcotest.to_alcotest qcheck_find_slot_is_free_and_earliest;
      ] );
  ]
