open Mcs_util

let test_matches_list_map () =
  let l = List.init 100 Fun.id in
  Alcotest.(check (list int)) "same result"
    (List.map (fun x -> x * x) l)
    (Parmap.map (fun x -> x * x) l)

let test_order_preserved_multi_domain () =
  let l = List.init 500 Fun.id in
  Alcotest.(check (list int)) "ordered"
    (List.map (fun x -> x + 1) l)
    (Parmap.map ~domains:4 (fun x -> x + 1) l)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parmap.map ~domains:4 Fun.id []);
  Alcotest.(check (list int)) "one" [ 7 ]
    (Parmap.map ~domains:4 (fun x -> x) [ 7 ])

exception Boom

let test_exception_propagates () =
  Alcotest.check_raises "raises" Boom (fun () ->
      ignore
        (Parmap.map ~domains:3
           (fun x -> if x = 13 then raise Boom else x)
           (List.init 50 Fun.id)))

(* Fail fast: once one item has failed, workers must stop picking up
   fresh items. The first item raises immediately while the remaining
   items sleep, so a worker that re-checked the failure flag after
   fetching its index skips its item; with the check taken before the
   fetch, all 64 items would run to completion. *)
let test_fail_fast_skips_remaining () =
  let started = Atomic.make 0 in
  (try
     ignore
       (Parmap.map ~domains:4
          (fun x ->
            Atomic.incr started;
            if x = 0 then raise Boom;
            Unix.sleepf 0.005;
            x)
          (List.init 64 Fun.id))
   with Boom -> ());
  let started = Atomic.get started in
  Alcotest.(check bool)
    (Printf.sprintf "started %d of 64 items" started)
    true
    (started < 64)

let test_domain_count_positive () =
  Alcotest.(check bool) "at least one" true (Parmap.domain_count () >= 1)

let qcheck_parmap_equals_map =
  QCheck.Test.make ~name:"Parmap.map agrees with List.map" ~count:50
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (l, domains) ->
      Parmap.map ~domains (fun x -> (2 * x) - 1) l
      = List.map (fun x -> (2 * x) - 1) l)

let suite =
  [
    ( "util.parmap",
      [
        Alcotest.test_case "matches List.map" `Quick test_matches_list_map;
        Alcotest.test_case "order with domains" `Quick
          test_order_preserved_multi_domain;
        Alcotest.test_case "empty/singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagates;
        Alcotest.test_case "fail fast skips remaining" `Quick
          test_fail_fast_skips_remaining;
        Alcotest.test_case "domain count" `Quick test_domain_count_positive;
        QCheck_alcotest.to_alcotest qcheck_parmap_equals_map;
      ] );
  ]
