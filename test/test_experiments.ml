open Mcs_experiments
module Strategy = Mcs_sched.Strategy
module Prng = Mcs_prng.Prng

let test_workload_draw_counts () =
  let rng = Prng.create ~seed:1 in
  List.iter
    (fun family ->
      let ptgs = Workload.draw rng family ~count:4 in
      Alcotest.(check int)
        (Workload.family_name family ^ " count")
        4 (List.length ptgs);
      List.iteri
        (fun i p -> Alcotest.(check int) "ids in order" i p.Mcs_ptg.Ptg.id)
        ptgs)
    [
      Workload.Random_mixed_scenarios;
      Workload.Random_ptgs Mcs_taskmodel.Task.Class_matmul;
      Workload.Fft_ptgs;
      Workload.Strassen_ptgs;
    ]

let test_workload_strassen_family () =
  let rng = Prng.create ~seed:2 in
  let ptgs = Workload.draw rng Workload.Strassen_ptgs ~count:3 in
  List.iter
    (fun p ->
      Alcotest.(check int) "25 tasks" 25 (Mcs_ptg.Ptg.task_count p))
    ptgs

let test_scenarios_shape_and_determinism () =
  let s1 =
    Sweep.scenarios ~family:Workload.Fft_ptgs ~count:3 ~runs:2 ~seed:7
  in
  let s2 =
    Sweep.scenarios ~family:Workload.Fft_ptgs ~count:3 ~runs:2 ~seed:7
  in
  Alcotest.(check int) "2 runs x 4 platforms" 8 (List.length s1);
  List.iter2
    (fun (p1, ptgs1) (p2, ptgs2) ->
      Alcotest.(check string) "same platform"
        (Mcs_platform.Platform.name p1)
        (Mcs_platform.Platform.name p2);
      List.iter2
        (fun a b ->
          Alcotest.(check (float 0.)) "same work" (Mcs_ptg.Ptg.work a)
            (Mcs_ptg.Ptg.work b))
        ptgs1 ptgs2)
    s1 s2

let test_runner_selfish_slowdowns_bounded () =
  let platform = Mcs_platform.Grid5000.lille () in
  let rng = Prng.create ~seed:3 in
  let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:3 in
  match Runner.evaluate platform ptgs [ Strategy.Selfish ] with
  | [ r ] ->
    Alcotest.(check int) "3 slowdowns" 3 (Array.length r.Runner.slowdowns);
    Array.iter
      (fun s ->
        Alcotest.(check bool) "slowdown in (0, 1.05]" true (s > 0. && s <= 1.05))
      r.Runner.slowdowns;
    Alcotest.(check bool) "unfairness >= 0" true (r.Runner.unfairness >= 0.);
    Alcotest.(check bool) "global >= avg" true
      (r.Runner.global_makespan >= r.Runner.avg_makespan -. 1e-9)
  | _ -> Alcotest.fail "expected one result"

let test_runner_single_app_slowdown_one () =
  (* Alone under Selfish, the concurrent run IS the dedicated run. *)
  let platform = Mcs_platform.Grid5000.nancy () in
  let rng = Prng.create ~seed:4 in
  let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:1 in
  match Runner.evaluate platform ptgs [ Strategy.Selfish ] with
  | [ r ] ->
    Alcotest.(check (float 1e-6)) "slowdown 1" 1. r.Runner.slowdowns.(0);
    Alcotest.(check (float 1e-6)) "unfairness 0" 0. r.Runner.unfairness
  | _ -> Alcotest.fail "expected one result"

let test_runner_estimated_timing () =
  let platform = Mcs_platform.Grid5000.rennes () in
  let rng = Prng.create ~seed:5 in
  let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:2 in
  let est =
    Runner.evaluate ~timing:Runner.Estimated platform ptgs [ Strategy.Equal_share ]
  in
  let sim =
    Runner.evaluate ~timing:Runner.Simulated platform ptgs [ Strategy.Equal_share ]
  in
  match (est, sim) with
  | [ e ], [ s ] ->
    Alcotest.(check bool) "both computed" true
      (e.Runner.global_makespan > 0. && s.Runner.global_makespan > 0.)
  | _ -> Alcotest.fail "expected one result each"

let test_table1_contents () =
  let rendered = Mcs_util.Table.render (Table1.table ()) in
  let contains sub =
    let n = String.length sub in
    let rec loop i =
      i + n <= String.length rendered
      && (String.sub rendered i n = sub || loop (i + 1))
    in
    loop 0
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("mentions " ^ s) true (contains s))
    [ "Lille"; "Nancy"; "Rennes"; "Sophia"; "Grelon"; "4.603"; "20.2%" ]

let test_figure1_illustration_shape () =
  let rendered = Mcs_util.Table.render (Fig_ready_vs_global.illustration ()) in
  Alcotest.(check bool) "non-empty" true (String.length rendered > 100)

let test_constraint_audit_high_compliance () =
  (* The paper reports ~99% compliance; require > 90% on a small draw. *)
  let stats = Exp_constraint.compute ~runs:5 ~betas:[ 0.3; 0.6 ] () in
  List.iter
    (fun s ->
      let ratio =
        float_of_int s.Exp_constraint.level_ok
        /. float_of_int s.Exp_constraint.scenarios
      in
      Alcotest.(check bool)
        (Printf.sprintf "beta %.1f level compliance %.2f" s.Exp_constraint.beta
           ratio)
        true (ratio > 0.9))
    stats

let test_mu_sweep_endpoints_cover () =
  let points =
    Fig_mu_sweep.compute ~runs:1 ~counts:[ 4 ] ~mus:[ 0.; 1. ] ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "unfairness >= 0" true
        (p.Fig_mu_sweep.unfairness >= 0.);
      Alcotest.(check bool) "makespan > 0" true (p.Fig_mu_sweep.avg_makespan > 0.))
    points

let test_fig_strategies_small () =
  let points =
    Fig_strategies.compute ~runs:1 ~counts:[ 2 ]
      ~family:Workload.Strassen_ptgs
      ~strategies:[ Strategy.Selfish; Strategy.Equal_share ] ()
  in
  Alcotest.(check int) "2 strategies x 1 count" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "relative makespan >= 1" true
        (p.Fig_strategies.relative_makespan >= 1. -. 1e-9))
    points;
  let tables = Fig_strategies.tables ~family:Workload.Strassen_ptgs points in
  Alcotest.(check int) "two tables" 2 (List.length tables)

let test_arrivals_table_shape () =
  let t = Exp_arrivals.table ~runs:1 () in
  let rendered = Mcs_util.Table.render t in
  Alcotest.(check bool) "has strategies" true
    (let contains sub =
       let n = String.length sub in
       let rec loop i =
         i + n <= String.length rendered
         && (String.sub rendered i n = sub || loop (i + 1))
       in
       loop 0
     in
     contains "S" && contains "WPS-width" && contains "10 PTGs")

let test_single_ptg_expected_ordering () =
  let stats = Exp_single_ptg.compute ~runs:1 () in
  Alcotest.(check int) "four algorithms" 4 (List.length stats);
  let find name =
    List.find (fun s -> s.Exp_single_ptg.algorithm = name) stats
  in
  let heft = find "HEFT" and mheft = find "M-HEFT" in
  (* Mixed parallelism must crush sequential-task scheduling. *)
  Alcotest.(check bool) "heft much slower than m-heft" true
    (heft.Exp_single_ptg.mean_relative_makespan
    > 2. *. mheft.Exp_single_ptg.mean_relative_makespan);
  (* And HEFT holds only one processor per task: efficiency near 1. *)
  Alcotest.(check bool) "heft efficient" true
    (heft.Exp_single_ptg.mean_efficiency > 0.9)

let test_validation_errors_bounded () =
  let stats = Exp_validation.compute ~runs:1 () in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Workload.family_name s.Exp_validation.family ^ " error finite")
        true
        (s.Exp_validation.mean_rel_error >= 0.
        && s.Exp_validation.mean_rel_error < 10.))
    stats

let test_malleable_experiment_shape () =
  (* X9 audits every run (MAL rules included) and reports one point per
     (mode, level); the moldable rows never resize. The makespan edge
     itself is pinned deterministically in test_malleable.ml. *)
  let points = Exp_malleable.compute ~runs:1 ~count:4 () in
  Alcotest.(check int) "2 modes x 2 levels" 4 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Exp_malleable.mode ^ "/" ^ p.Exp_malleable.level ^ " finite")
        true
        (Float.is_finite p.Exp_malleable.unfairness
        && Float.is_finite p.Exp_malleable.relative_makespan
        && p.Exp_malleable.relative_makespan >= 1.);
      if p.Exp_malleable.mode = "moldable" then
        Alcotest.(check (float 0.)) "moldable never resizes" 0.
          p.Exp_malleable.resizes)
    points

let test_strassen_ps_width_equals_es () =
  (* Width-based strategies are ES on fixed-shape Strassen PTGs. *)
  let rng = Prng.create ~seed:6 in
  let ptgs = Workload.draw rng Workload.Strassen_ptgs ~count:4 in
  let es = Strategy.betas Strategy.Equal_share ~ref_speed:3. ptgs in
  let psw =
    Strategy.betas (Strategy.Proportional Strategy.Width) ~ref_speed:3. ptgs
  in
  Array.iteri
    (fun i b -> Alcotest.(check (float 1e-9)) "identical betas" es.(i) b)
    psw

let suite =
  [
    ( "experiments.workload",
      [
        Alcotest.test_case "draw counts" `Quick test_workload_draw_counts;
        Alcotest.test_case "strassen family" `Quick
          test_workload_strassen_family;
      ] );
    ( "experiments.sweep",
      [
        Alcotest.test_case "scenarios shape & determinism" `Quick
          test_scenarios_shape_and_determinism;
      ] );
    ( "experiments.runner",
      [
        Alcotest.test_case "selfish slowdowns" `Quick
          test_runner_selfish_slowdowns_bounded;
        Alcotest.test_case "single app slowdown 1" `Quick
          test_runner_single_app_slowdown_one;
        Alcotest.test_case "estimated timing" `Quick test_runner_estimated_timing;
      ] );
    ( "experiments.figures",
      [
        Alcotest.test_case "table 1" `Quick test_table1_contents;
        Alcotest.test_case "figure 1 illustration" `Quick
          test_figure1_illustration_shape;
        Alcotest.test_case "constraint audit" `Slow
          test_constraint_audit_high_compliance;
        Alcotest.test_case "mu sweep endpoints" `Slow
          test_mu_sweep_endpoints_cover;
        Alcotest.test_case "strategies figure (small)" `Slow
          test_fig_strategies_small;
        Alcotest.test_case "strassen width = ES" `Quick
          test_strassen_ps_width_equals_es;
        Alcotest.test_case "arrivals table" `Slow test_arrivals_table_shape;
        Alcotest.test_case "single-ptg ordering" `Slow
          test_single_ptg_expected_ordering;
        Alcotest.test_case "validation bounded" `Slow
          test_validation_errors_bounded;
        Alcotest.test_case "malleable experiment (X9)" `Slow
          test_malleable_experiment_shape;
      ] );
  ]
