(* Fault injection & recovery: seeded generator determinism, the pure
   transient-failure draws, the engine's kill/requeue/retry handling
   under outages, the FAULT001-003 execution audit, the event queue's
   canonical equal-time ordering, and the release (rollback) paths of
   Timeline and Avail_index. *)

module Grid5000 = Mcs_platform.Grid5000
module Platform = Mcs_platform.Platform
module Prng = Mcs_prng.Prng
module Fault = Mcs_fault.Fault
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Log = Mcs_online.Log
module Event_queue = Mcs_online.Event_queue
module Fault_check = Mcs_check.Fault_check
module Diagnostic = Mcs_check.Diagnostic
module Strategy = Mcs_sched.Strategy
module Task = Mcs_taskmodel.Task
module Ptg = Mcs_ptg.Ptg
module Timeline = Mcs_util.Timeline
module Avail_index = Mcs_util.Avail_index

(* --- event queue: canonical order at equal timestamps --- *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let push k = Event_queue.push q ~time:5. ~version:0 k in
  (* Scrambled insertion order on purpose. *)
  push (Event_queue.Arrival 2);
  push (Event_queue.Proc_up [| 3 |]);
  push (Event_queue.Task_failed { app = 0; node = 2 });
  push (Event_queue.Departure 1);
  push (Event_queue.Task_finish { app = 1; node = 0 });
  push (Event_queue.Task_finish { app = 0; node = 7 });
  push (Event_queue.Proc_down [| 1; 2 |]);
  push (Event_queue.Arrival 0);
  Event_queue.push q ~time:4. ~version:3 (Event_queue.Departure 9);
  let expected =
    [
      Event_queue.Departure 9;
      Event_queue.Task_finish { app = 0; node = 7 };
      Event_queue.Task_finish { app = 1; node = 0 };
      Event_queue.Task_failed { app = 0; node = 2 };
      Event_queue.Departure 1;
      Event_queue.Arrival 0;
      Event_queue.Arrival 2;
      Event_queue.Proc_down [| 1; 2 |];
      Event_queue.Proc_up [| 3 |];
    ]
  in
  let popped =
    List.init (List.length expected) (fun _ ->
        (Option.get (Event_queue.pop q)).Event_queue.kind)
  in
  Alcotest.(check bool)
    "finishes < failures < departures < arrivals < outages < recoveries"
    true (popped = expected);
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_event_queue_insertion_tie () =
  (* Same time, kind and content key: insertion sequence decides, so the
     stale announcement (pushed first, lower version) pops first. *)
  let q = Event_queue.create () in
  let kind = Event_queue.Task_finish { app = 0; node = 1 } in
  Event_queue.push q ~time:2. ~version:1 kind;
  Event_queue.push q ~time:2. ~version:2 kind;
  let a = Option.get (Event_queue.pop q) in
  let b = Option.get (Event_queue.pop q) in
  Alcotest.(check int) "earlier push first" 1 a.Event_queue.version;
  Alcotest.(check int) "later push second" 2 b.Event_queue.version;
  Alcotest.(check bool) "rejects non-finite time" true
    (try
       Event_queue.push q ~time:Float.nan ~version:0 kind;
       false
     with Invalid_argument _ -> true)

(* --- generator: determinism, outage pairing, validation --- *)

let outage_config =
  {
    Fault.default with
    Fault.mttf = 400.;
    mttr = 50.;
    task_fail_p = 0.1;
    horizon = 2000.;
  }

let test_generator_determinism () =
  let platform = Grid5000.lille () in
  let a = Fault.generate ~seed:42 platform outage_config in
  let b = Fault.generate ~seed:42 platform outage_config in
  Alcotest.(check bool) "same seed, same scenario" true (a = b);
  let c = Fault.generate ~seed:43 platform outage_config in
  Alcotest.(check bool) "different seed, different outages" true
    (a.Fault.outages <> c.Fault.outages);
  Alcotest.(check bool) "mttf 400 over 2000s produces outages" true
    (a.Fault.outages <> []);
  Alcotest.(check bool) "empty only without outages and failures" false
    (Fault.is_empty a);
  Alcotest.(check bool) "no_faults is empty" true
    (Fault.is_empty Fault.no_faults)

let check_outage_shape platform config s =
  let total = Platform.total_procs platform in
  List.iter
    (fun o ->
      Alcotest.(check bool) "recovery after failure" true
        (o.Fault.up_at > o.Fault.down_at);
      Alcotest.(check bool) "failure within horizon" true
        (o.Fault.down_at >= 0. && o.Fault.down_at <= config.Fault.horizon);
      Alcotest.(check bool) "procs non-empty, increasing, in range" true
        (Array.length o.Fault.procs > 0
        && Array.for_all (fun p -> p >= 0 && p < total) o.Fault.procs
        &&
        let ok = ref true in
        Array.iteri
          (fun i p -> if i > 0 then ok := !ok && p > o.Fault.procs.(i - 1))
          o.Fault.procs;
        !ok))
    s.Fault.outages;
  let keys =
    List.map (fun o -> (o.Fault.down_at, o.Fault.procs.(0))) s.Fault.outages
  in
  Alcotest.(check bool) "outages sorted by (down_at, first proc)" true
    (keys = List.sort compare keys)

let test_outage_pairing () =
  let platform = Grid5000.lille () in
  let s = Fault.generate ~seed:7 platform outage_config in
  check_outage_shape platform outage_config s;
  List.iter
    (fun o ->
      Alcotest.(check int) "proc granularity fails one processor" 1
        (Array.length o.Fault.procs))
    s.Fault.outages;
  let cluster_config = { outage_config with Fault.granularity = Cluster } in
  let sc = Fault.generate ~seed:7 platform cluster_config in
  check_outage_shape platform cluster_config sc;
  List.iter
    (fun o ->
      let c = Platform.cluster_of_proc platform o.Fault.procs.(0) in
      Alcotest.(check int) "cluster granularity fails a whole cluster"
        (Platform.cluster platform c).Platform.procs
        (Array.length o.Fault.procs);
      Array.iter
        (fun p ->
          Alcotest.(check int) "all procs of one cluster" c
            (Platform.cluster_of_proc platform p))
        o.Fault.procs)
    sc.Fault.outages

let test_generate_validation () =
  let platform = Grid5000.lille () in
  let raises config =
    try
      ignore (Fault.generate ~seed:0 platform config);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "mttf 0" true
    (raises { outage_config with Fault.mttf = 0. });
  Alcotest.(check bool) "mttr 0" true
    (raises { outage_config with Fault.mttr = 0. });
  Alcotest.(check bool) "mttr nan" true
    (raises { outage_config with Fault.mttr = Float.nan });
  Alcotest.(check bool) "task_fail_p < 0" true
    (raises { outage_config with Fault.task_fail_p = -0.1 });
  Alcotest.(check bool) "task_fail_p > 1" true
    (raises { outage_config with Fault.task_fail_p = 1.5 });
  Alcotest.(check bool) "horizon 0" true
    (raises { outage_config with Fault.horizon = 0. })

let test_roll_failure () =
  let platform = Grid5000.lille () in
  let s =
    Fault.generate ~seed:5 platform
      { Fault.default with Fault.task_fail_p = 0.5 }
  in
  let hits = ref 0 in
  for app = 0 to 9 do
    for node = 0 to 9 do
      for attempt = 0 to 9 do
        let r = Fault.roll_failure s ~app ~node ~attempt in
        Alcotest.(check bool) "pure in (app, node, attempt)" r
          (Fault.roll_failure s ~app ~node ~attempt);
        if r then incr hits
      done
    done
  done;
  Alcotest.(check bool) "p = 0.5 hits roughly half of 1000 draws" true
    (!hits > 400 && !hits < 600);
  for attempt = 0 to 9 do
    Alcotest.(check bool) "p = 0 never fails" false
      (Fault.roll_failure Fault.no_faults ~app:0 ~node:1 ~attempt)
  done

(* --- engine under faults --- *)

let apps_of n seed ~mean =
  let rng = Prng.create ~seed in
  let ptgs =
    List.init n (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  let arrivals = Prng.create ~seed:(seed + 1) in
  let clock = ref 0. in
  List.mapi
    (fun i ptg ->
      if i > 0 then clock := !clock +. Prng.exponential arrivals ~mean;
      (ptg, !clock))
    ptgs

let run_logged ?faults ?policy platform apps =
  let policy =
    match policy with Some p -> p | None -> Policy.make Strategy.Equal_share
  in
  let logs = ref [] in
  let r =
    Engine.run ~log:(fun e -> logs := Log.to_json e :: !logs) ?faults ~policy
      platform apps
  in
  (List.rev !logs, r)

let test_zero_fault_equivalence () =
  (* [faults:(Some no_faults)] routes through the full fault plumbing
     (ledger, fail rolls, degraded-β guard) yet must replay the exact
     un-faulted run: same event log, same schedules, same stats. *)
  let platform = Grid5000.lille () in
  let apps = apps_of 5 21 ~mean:25. in
  let logs0, r0 = run_logged platform apps in
  let logs1, r1 = run_logged ~faults:Fault.no_faults platform apps in
  Alcotest.(check (list string)) "identical event logs" logs0 logs1;
  Alcotest.(check bool) "identical betas" true (r0.Engine.betas = r1.Engine.betas);
  Alcotest.(check bool) "identical responses" true
    (r0.Engine.responses = r1.Engine.responses);
  Alcotest.(check bool) "identical schedules" true
    (r0.Engine.schedules = r1.Engine.schedules);
  Alcotest.(check bool) "identical stats" true
    (r0.Engine.stats = r1.Engine.stats);
  Alcotest.(check int) "no kills" 0 r1.Engine.stats.Engine.kills

let faulted_scenario platform =
  Fault.generate ~seed:11 platform
    {
      Fault.default with
      Fault.mttf = 600.;
      mttr = 60.;
      task_fail_p = 0.05;
      horizon = 1200.;
    }

let test_fault_determinism () =
  let platform = Grid5000.lille () in
  let apps = apps_of 5 21 ~mean:25. in
  let faults = faulted_scenario platform in
  let logs0, r0 = run_logged ~faults platform apps in
  let logs1, r1 = run_logged ~faults platform apps in
  Alcotest.(check (list string)) "identical faulted logs" logs0 logs1;
  Alcotest.(check bool) "identical faulted stats" true
    (r0.Engine.stats = r1.Engine.stats);
  Alcotest.(check bool) "identical executions" true
    (r0.Engine.executions = r1.Engine.executions);
  Alcotest.(check bool) "outages were processed" true
    (r0.Engine.stats.Engine.fault_events > 0)

let test_kill_conservation () =
  (* Kills truncate attempts mid-task; the execution audit proves the
     lost work was re-run and every task still completed exactly once
     outside every down interval. *)
  let platform = Grid5000.lille () in
  let apps = apps_of 5 21 ~mean:25. in
  let faults = faulted_scenario platform in
  let diags = ref [] in
  let _, r =
    run_logged ~faults platform apps
  in
  let checked, rc =
    let logs = ref [] in
    let r =
      Engine.run
        ~log:(fun e -> logs := e :: !logs)
        ~check:(fun d -> diags := !diags @ d)
        ~faults
        ~policy:(Policy.make Strategy.Equal_share)
        platform apps
    in
    (List.rev !logs, r)
  in
  Alcotest.(check (list string)) "engine audit clean" []
    (List.map Diagnostic.to_string (Diagnostic.errors !diags));
  Alcotest.(check bool) "check does not perturb the run" true
    (r.Engine.executions = rc.Engine.executions);
  Alcotest.(check bool) "scenario induces kills" true
    (rc.Engine.stats.Engine.kills > 0);
  Alcotest.(check bool) "kills were logged" true
    (List.exists
       (function Log.Task_killed _ -> true | _ -> false)
       checked);
  Alcotest.(check bool) "all responses finite" true
    (Array.for_all Float.is_finite rc.Engine.responses);
  let down =
    Fault.down_intervals faults ~procs:(Platform.total_procs platform)
  in
  let ptgs = Array.of_list (List.map fst apps) in
  Alcotest.(check (list string)) "standalone FAULT audit clean" []
    (List.map Diagnostic.to_string
       (Fault_check.check ~max_retries:3 ~down platform ~ptgs
          rc.Engine.executions))

let test_real_exit_records () =
  (* A PTG whose unique sink is a real task reuses it as the exit node;
     its completion must still be recorded as an execution attempt
     (regression: the departure used to swallow the finish, tripping
     FAULT003 on every real-exit PTG). *)
  let platform = Grid5000.lille () in
  let t = Task.make ~data:1e7 ~complexity:Matmul ~alpha:0.1 in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"chain2" ~tasks:[| t; t |]
      ~edges:[ (0, 1, 0.) ]
  in
  let sink = Ptg.exit ptg in
  Alcotest.(check bool) "sink reused as exit" false (Ptg.is_virtual ptg sink);
  let r =
    Engine.run ~faults:Fault.no_faults ~policy:(Policy.make Strategy.Equal_share)
      platform
      [ (ptg, 0.) ]
  in
  Alcotest.(check int) "one completed attempt for the real exit" 1
    (List.length
       (List.filter
          (fun e ->
            e.Fault_check.node = sink
            && e.Fault_check.outcome = Fault_check.Completed)
          r.Engine.executions));
  let down = Array.make (Platform.total_procs platform) [] in
  Alcotest.(check (list string)) "conservation audit clean" []
    (List.map Diagnostic.to_string
       (Fault_check.check ~max_retries:0 ~down platform ~ptgs:[| ptg |]
          r.Engine.executions))

(* --- FAULT001-003 on hand-built execution logs --- *)

let test_fault_rules () =
  let platform = Grid5000.lille () in
  let t = Task.make ~data:1e7 ~complexity:Matmul ~alpha:0.1 in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"single" ~tasks:[| t |] ~edges:[]
  in
  let node =
    Option.get
      (List.find_opt
         (fun v -> not (Ptg.is_virtual ptg v))
         (List.init (Ptg.node_count ptg) Fun.id))
  in
  let full =
    Task.time t ~gflops:(Platform.cluster platform 0).Platform.gflops ~procs:1
  in
  let total = Platform.total_procs platform in
  let no_down = Array.make total [] in
  let exec ?(start = 0.) ?(finish = full) outcome =
    { Fault_check.app = 0; node; cluster = 0; procs = [| 0 |]; start; finish;
      outcome }
  in
  let ids ?(max_retries = 3) ?(down = no_down) execs =
    Diagnostic.rule_ids
      (Fault_check.check ~max_retries ~down platform ~ptgs:[| ptg |] execs)
  in
  Alcotest.(check (list string)) "clean single completion" []
    (ids [ exec Fault_check.Completed ]);
  let down = Array.make total [] in
  down.(0) <- [ (full /. 4., full /. 2.) ];
  Alcotest.(check (list string)) "FAULT001: attempt overlaps a down interval"
    [ "fault-down-overlap" ]
    (ids ~down [ exec Fault_check.Completed ]);
  Alcotest.(check (list string)) "kill truncated at the outage is legal" []
    (ids ~down
       [
         exec ~finish:(full /. 4.) Fault_check.Killed;
         exec ~start:(full /. 2.) ~finish:(full /. 2. +. full)
           Fault_check.Completed;
       ]);
  Alcotest.(check (list string)) "FAULT002: failures exceed max-retries"
    [ "fault-retry-bound" ]
    (ids ~max_retries:1
       [
         exec Fault_check.Failed;
         exec ~start:(full +. 1.) ~finish:(2. *. full +. 1.)
           Fault_check.Failed;
         exec ~start:(2. *. full +. 2.) ~finish:(3. *. full +. 2.)
           Fault_check.Completed;
       ]);
  Alcotest.(check (list string)) "FAULT003: task never completed"
    [ "fault-conservation" ]
    (ids [ exec Fault_check.Failed ]);
  Alcotest.(check (list string)) "FAULT003: completion not last"
    [ "fault-conservation" ]
    (ids
       [
         exec Fault_check.Completed;
         exec ~start:(full +. 1.) ~finish:(full +. 2.) Fault_check.Killed;
       ]);
  Alcotest.(check (list string)) "FAULT003: short completion"
    [ "fault-conservation" ]
    (ids [ exec ~finish:(full /. 2.) Fault_check.Completed ])

(* --- release rollback ≡ fresh build (Timeline, Avail_index) --- *)

let test_timeline_release_replace () =
  let rng = Prng.create ~seed:9 in
  for _trial = 1 to 25 do
    let procs = 1 + Prng.int rng 4 in
    (* Non-overlapping reservations per processor, random gaps. *)
    let all = ref [] in
    for proc = 0 to procs - 1 do
      let t = ref 0. in
      for _ = 1 to Prng.int rng 6 do
        let start = !t +. Prng.uniform rng ~lo:0.1 ~hi:5. in
        let finish = start +. Prng.uniform rng ~lo:0.5 ~hi:10. in
        t := finish;
        all := (proc, start, finish) :: !all
      done
    done;
    let all = List.rev !all in
    let tl = Timeline.create ~procs in
    List.iter
      (fun (proc, start, finish) -> Timeline.reserve tl ~proc ~start ~finish)
      all;
    let keep, drop = List.partition (fun _ -> Prng.bool rng) all in
    List.iter
      (fun (proc, start, finish) -> Timeline.release tl ~proc ~start ~finish)
      drop;
    let fresh intervals =
      let f = Timeline.create ~procs in
      List.iter
        (fun (proc, start, finish) -> Timeline.reserve f ~proc ~start ~finish)
        intervals;
      f
    in
    let same what a b =
      for proc = 0 to procs - 1 do
        Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
          what
          (Timeline.busy_intervals a ~proc)
          (Timeline.busy_intervals b ~proc)
      done
    in
    same "release ≡ never reserved" tl (fresh keep);
    (* Replacing the released intervals (in a different order) restores
       the original timeline exactly. *)
    let back = Array.of_list drop in
    Prng.shuffle rng back;
    Array.iter
      (fun (proc, start, finish) -> Timeline.reserve tl ~proc ~start ~finish)
      back;
    same "release then replace ≡ fresh build" tl (fresh all)
  done

let test_avail_index_release () =
  let rng = Prng.create ~seed:17 in
  for _trial = 1 to 25 do
    let n = 4 + Prng.int rng 8 in
    let cut = 1 + Prng.int rng (n - 1) in
    let groups =
      [|
        Array.init cut Fun.id; Array.init (n - cut) (fun i -> cut + i);
      |]
    in
    let avail = Array.make n 0. in
    let idx = Avail_index.create ~avail ~groups in
    let journal = ref [] in
    for _ = 1 to 8 do
      let count = 1 + Prng.int rng 3 in
      let ids =
        Array.of_list (Prng.pick_distinct rng n ~count)
      in
      let before = Array.map (fun id -> (id, avail.(id))) ids in
      Avail_index.update idx ids (Prng.uniform rng ~lo:0. ~hi:50.);
      journal := before :: !journal
    done;
    (* Roll every commit back in reverse order; the index must be
       indistinguishable from a freshly built all-zero one. *)
    List.iter
      (fun before ->
        Array.iter
          (fun (id, v) -> Avail_index.release idx [| id |] v)
          before)
      !journal;
    let fresh = Avail_index.create ~avail:(Array.make n 0.) ~groups in
    for g = 0 to Avail_index.group_count idx - 1 do
      Alcotest.(check (array int))
        "release in reverse ≡ fresh index"
        (Avail_index.sorted fresh g) (Avail_index.sorted idx g)
    done;
    Array.iter (fun v -> Alcotest.(check (float 0.)) "avail reset" 0. v) avail
  done

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "event queue canonical order" `Quick
          test_event_queue_order;
        Alcotest.test_case "event queue insertion tie-break" `Quick
          test_event_queue_insertion_tie;
        Alcotest.test_case "generator determinism" `Quick
          test_generator_determinism;
        Alcotest.test_case "outage pairing + granularity" `Quick
          test_outage_pairing;
        Alcotest.test_case "config validation" `Quick test_generate_validation;
        Alcotest.test_case "transient draws pure" `Quick test_roll_failure;
        Alcotest.test_case "zero-fault equivalence" `Quick
          test_zero_fault_equivalence;
        Alcotest.test_case "faulted run determinism" `Quick
          test_fault_determinism;
        Alcotest.test_case "kill-mid-task conservation" `Quick
          test_kill_conservation;
        Alcotest.test_case "real exit node records execution" `Quick
          test_real_exit_records;
        Alcotest.test_case "FAULT001-003 adversarial" `Quick test_fault_rules;
        Alcotest.test_case "timeline release-then-replace" `Quick
          test_timeline_release_replace;
        Alcotest.test_case "avail index release rollback" `Quick
          test_avail_index_release;
      ] );
  ]
