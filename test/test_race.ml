(* Race-profile suite: `dune exec --profile race test/test_race.exe`.

   Enables the Hb vector-clock tracker (lib/serve/hb.ml) and replays
   the multi-domain serve scenarios: a correctly synchronised run must
   report zero happens-before violations, and a deliberately seeded
   race must report exactly one — the fixture that proves the tracker
   can see what the static LOCK rules reason about. Plus an MPMC
   stress test of Squeue under real domain contention. *)

module Grid5000 = Mcs_platform.Grid5000
module Prng = Mcs_prng.Prng
module Hb = Mcs_serve.Hb
module Squeue = Mcs_serve.Squeue
module Service = Mcs_serve.Service

let random_ptgs n seed =
  let rng = Prng.create ~seed in
  List.init n (fun id ->
      Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)

let workload n seed ~mean =
  let rng = Prng.create ~seed:(seed + 1) in
  let clock = ref 0. in
  List.map
    (fun ptg ->
      let r = !clock in
      clock := !clock +. Prng.exponential rng ~mean;
      (ptg, r))
    (random_ptgs n seed)

(* --- happens-before: serve stack is clean -------------------------- *)

let test_serve_hb_clean () =
  Hb.enable ();
  let cfg =
    {
      Service.default_config with
      Service.shards = 4;
      mode = Service.Domains;
      capture_logs = true;
    }
  in
  let report =
    Service.run_stream cfg (Grid5000.grid ()) (workload 40 11 ~mean:2.)
  in
  Hb.disable ();
  Alcotest.(check int) "everything served" 40 report.Service.submitted;
  Alcotest.(check (list string)) "no happens-before violations" []
    (Hb.violations ())

let test_squeue_hb_clean () =
  Hb.enable ();
  let q = Squeue.create ~capacity:8 in
  let consumer =
    Domain.spawn (fun () ->
        let seen = ref Float.neg_infinity and total = ref 0 in
        let closed = ref false in
        while not !closed do
          let b = Squeue.wait_batch q ~seen:!seen in
          total := !total + List.length b.Squeue.msgs;
          seen := b.Squeue.watermark;
          closed := b.Squeue.closed
        done;
        !total)
  in
  for i = 1 to 100 do
    ignore (Squeue.push q ~block:true i);
    if i mod 10 = 0 then Squeue.advance_watermark q (float_of_int i)
  done;
  Squeue.close q;
  let total = Domain.join consumer in
  Hb.disable ();
  Alcotest.(check int) "all delivered" 100 total;
  Alcotest.(check (list string)) "queue protocol is race-free" []
    (Hb.violations ())

(* --- happens-before: a seeded race is caught ----------------------- *)

let test_seeded_race () =
  Hb.enable ();
  let state = Hb.loc "seeded.state" in
  (* Two domains write the same tracked region with no sync edge
     between them: exactly the second write to reach the tracker
     reports (tick-before-check makes concurrent accesses asymmetric,
     see Hb.write). *)
  let d = Domain.spawn (fun () -> Hb.write state) in
  Hb.write state;
  Domain.join d;
  Hb.disable ();
  Alcotest.(check int) "exactly one violation" 1
    (List.length (Hb.violations ()));
  Alcotest.(check bool) "names the seeded loc" true
    (String.length (List.hd (Hb.violations ())) > 0
    && String.starts_with ~prefix:"race on 'seeded.state'"
         (List.hd (Hb.violations ())))

let test_guarded_pair_clean () =
  Hb.enable ();
  let sync = Hb.sync "seeded.lock" in
  let state = Hb.loc "seeded.guarded" in
  let lock = Mutex.create () in
  let touch () =
    Mutex.protect lock @@ fun () -> Hb.region sync @@ fun () -> Hb.write state
  in
  let d = Domain.spawn touch in
  touch ();
  Domain.join d;
  Hb.disable ();
  Alcotest.(check (list string)) "lock-ordered writes are clean" []
    (Hb.violations ())

(* --- MPMC stress --------------------------------------------------- *)

let test_squeue_mpmc_stress () =
  Hb.enable ();
  let producers = 4 and consumers = 3 and per_producer = 500 in
  let q = Squeue.create ~capacity:16 in
  let cons =
    Array.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let got = ref [] and closed = ref false in
            while not !closed do
              let b = Squeue.wait_batch q ~seen:Float.neg_infinity in
              got := List.rev_append b.Squeue.msgs !got;
              closed := b.Squeue.closed && b.Squeue.msgs = []
            done;
            List.rev !got))
  in
  let prods =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              ignore (Squeue.push q ~block:true (p, i))
            done))
  in
  Array.iter Domain.join prods;
  Squeue.close q;
  let batches = Array.map Domain.join cons in
  Hb.disable ();
  (* Whatever is left after the consumers exited is still drainable. *)
  let leftovers = (Squeue.drain q).Squeue.msgs in
  let all = List.concat (leftovers :: Array.to_list batches) in
  Alcotest.(check int) "conservation: every push delivered exactly once"
    (producers * per_producer)
    (List.length all);
  Alcotest.(check int) "no duplicates"
    (producers * per_producer)
    (List.length (List.sort_uniq compare all));
  (* FIFO per producer within each consumer: queue order is global
     push order, and each drain takes a contiguous prefix, so any one
     consumer's view of any one producer must be increasing. *)
  Array.iter
    (fun batch ->
      let last = Array.make producers (-1) in
      List.iter
        (fun (p, i) ->
          Alcotest.(check bool) "per-producer order preserved" true
            (i > last.(p));
          last.(p) <- i)
        batch)
    batches;
  Alcotest.(check (list string)) "stress run is race-free" []
    (Hb.violations ())

let () =
  Alcotest.run "mcs-race"
    [
      ( "race",
        [
          Alcotest.test_case "serve scenarios HB-clean" `Quick
            test_serve_hb_clean;
          Alcotest.test_case "squeue protocol HB-clean" `Quick
            test_squeue_hb_clean;
          Alcotest.test_case "seeded race: exactly one violation" `Quick
            test_seeded_race;
          Alcotest.test_case "guarded pair: zero violations" `Quick
            test_guarded_pair_clean;
          Alcotest.test_case "squeue MPMC stress" `Quick
            test_squeue_mpmc_stress;
        ] );
    ]
