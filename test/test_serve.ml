(* Sharded serving engine: shard-1 bit-equivalence with Engine.run,
   deterministic replay under domain interleaving, queue-full semantics
   (block and reject, never a silent drop), shedding conservation,
   partitioning and the small pure helpers. *)

module Grid5000 = Mcs_platform.Grid5000
module P = Mcs_platform.Platform
module Prng = Mcs_prng.Prng
module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
open Mcs_serve

let random_ptgs n seed =
  let rng = Prng.create ~seed in
  List.init n (fun id ->
      Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)

let workload n seed ~mean =
  let rng = Prng.create ~seed:(seed + 1) in
  let clock = ref 0. in
  List.map
    (fun ptg ->
      let r = !clock in
      clock := !clock +. Prng.exponential rng ~mean;
      (ptg, r))
    (random_ptgs n seed)

let policy = Policy.make Strategy.Equal_share

let config ~shards ~mode =
  {
    Service.default_config with
    Service.shards;
    mode;
    policy;
    capture_logs = true;
    check = true;
  }

(* --- squeue ------------------------------------------------------- *)

let test_squeue () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check bool) "accept 1" true (Squeue.push q ~block:false 1 = Squeue.Accepted);
  Alcotest.(check bool) "accept 2" true (Squeue.push q ~block:false 2 = Squeue.Accepted);
  Alcotest.(check bool) "full" true (Squeue.push q ~block:false 3 = Squeue.Full);
  Squeue.push_unbounded q 4;
  Alcotest.(check int) "unbounded ignores capacity" 3 (Squeue.length q);
  Squeue.advance_watermark q 7.5;
  let b = Squeue.drain q in
  Alcotest.(check (list int)) "drain order" [ 1; 2; 4 ] b.Squeue.msgs;
  Alcotest.(check (float 0.)) "watermark" 7.5 b.Squeue.watermark;
  Alcotest.(check bool) "not closed" false b.Squeue.closed;
  Squeue.advance_watermark q 3.;
  Alcotest.(check (float 0.)) "watermark is monotone" 7.5
    (Squeue.drain q).Squeue.watermark;
  Squeue.close q;
  Alcotest.(check bool) "closed refuses" true
    (Squeue.push q ~block:true 5 = Squeue.Closed);
  Alcotest.(check bool) "drain reports closed" true (Squeue.drain q).Squeue.closed;
  Alcotest.(check int) "peak" 3 (Squeue.peak q);
  Alcotest.(check int) "pushed" 3 (Squeue.pushed q);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Squeue.create: capacity < 1") (fun () ->
      ignore (Squeue.create ~capacity:0))

let test_squeue_blocking () =
  (* A full queue blocks the producer until the consumer drains. *)
  let q = Squeue.create ~capacity:1 in
  ignore (Squeue.push q ~block:false 0);
  let consumer =
    Domain.spawn (fun () ->
        let drained = ref [] in
        while List.length !drained < 3 do
          let b = Squeue.wait_batch q ~seen:Float.neg_infinity in
          drained := !drained @ b.Squeue.msgs
        done;
        !drained)
  in
  ignore (Squeue.push q ~block:true 1);
  ignore (Squeue.push q ~block:true 2);
  Alcotest.(check (list int)) "all delivered in order" [ 0; 1; 2 ]
    (Domain.join consumer)

let test_squeue_watermark_wakeup () =
  (* Two consumers block on different [seen] thresholds. A watermark
     advance that only clears the lower threshold must wake that
     consumer even if the scheduler would have handed a single signal
     to the other one — i.e. advance_watermark must broadcast. With
     [Condition.signal] this test hangs (the wakeup can land on the
     seen=10 waiter, which re-blocks, stranding the seen=0 one). *)
  let q = Squeue.create ~capacity:4 in
  let low_woke = Atomic.make false in
  let low =
    Domain.spawn (fun () ->
        let b = Squeue.wait_batch q ~seen:0. in
        (* Not a read-modify-write: the consumer only ever sets, the
           poll below only ever gets. *)
        (Atomic.set low_woke true) [@atomic_ok];
        b)
  in
  let high =
    Domain.spawn (fun () -> Squeue.wait_batch q ~seen:10.)
  in
  (* Let both consumers reach their wait; the queue stays empty so
     neither can return before a watermark moves. *)
  Unix.sleepf 0.05;
  Squeue.advance_watermark q 5.;
  (* Bounded poll: fail the test rather than hang forever. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while (not (Atomic.get low_woke)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "seen=0 consumer woken by watermark 5" true
    (Atomic.get low_woke);
  let b_low = Domain.join low in
  Alcotest.(check (float 0.)) "low saw the advance" 5.
    b_low.Squeue.watermark;
  (* The high-threshold consumer is still blocked (5 <= 10): close
     releases it and reports closed. *)
  Squeue.close q;
  let b_high = Domain.join high in
  Alcotest.(check bool) "high released by close" true b_high.Squeue.closed

(* --- admission / router / stats ----------------------------------- *)

let test_admission () =
  Admission.validate Admission.default;
  let a = { Admission.default with Admission.batch_window = 5. } in
  Alcotest.(check (float 0.)) "quantize up" 5. (Admission.quantize a 3.2);
  Alcotest.(check (float 0.)) "boundary stays" 10. (Admission.quantize a 10.);
  Alcotest.(check (float 0.)) "window 0 is exact" 3.2
    (Admission.quantize Admission.default 3.2);
  Alcotest.(check bool) "never below release" true
    (Admission.quantize a 1e-9 >= 1e-9);
  Alcotest.check_raises "bad window"
    (Invalid_argument "Admission.validate: ill-formed batch_window")
    (fun () ->
      Admission.validate { Admission.default with Admission.batch_window = -1. })

let test_router () =
  let r = Router.create Router.Round_robin ~shards:3 in
  Alcotest.(check (list int)) "rr cycles" [ 0; 1; 2; 0 ]
    (List.map (fun _ -> Router.route r ~work:1.) [ (); (); (); () ]);
  let r = Router.create Router.Least_work ~shards:2 in
  let k1 = Router.route r ~work:10. in
  let k2 = Router.route r ~work:1. in
  let k3 = Router.route r ~work:1. in
  Alcotest.(check int) "first to shard 0" 0 k1;
  Alcotest.(check int) "second to the lighter shard" 1 k2;
  Alcotest.(check int) "third still lighter" 1 k3;
  Alcotest.(check (array (float 0.))) "work accounted" [| 10.; 2. |]
    (Router.assigned r)

let test_stats () =
  let v = [| 5.; 1.; Float.nan; 3.; 2.; 4. |] in
  Alcotest.(check (float 0.)) "median" 3. (Stats.percentile v ~p:0.5);
  Alcotest.(check (float 0.)) "p99 = max here" 5. (Stats.percentile v ~p:0.99);
  Alcotest.(check (float 0.)) "p0 clamps to min" 1. (Stats.percentile v ~p:0.);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.percentile [| Float.nan |] ~p:0.5))

(* --- partitioning -------------------------------------------------- *)

let test_partition () =
  let grid = Grid5000.grid () in
  let parts = Shard.partition grid ~shards:4 in
  Alcotest.(check int) "four shards" 4 (Array.length parts);
  let seen = Array.make (P.cluster_count grid) false in
  Array.iter
    (fun (sub, clusters) ->
      Alcotest.(check int) "sub-platform matches its cluster list"
        (Array.length clusters) (P.cluster_count sub);
      Array.iteri
        (fun j ci ->
          Alcotest.(check bool) "disjoint" false seen.(ci);
          seen.(ci) <- true;
          let c = P.cluster grid ci and s = P.cluster sub j in
          Alcotest.(check string) "cluster kept" c.P.cluster_name
            s.P.cluster_name)
        clusters)
    parts;
  Alcotest.(check bool) "cover" true (Array.for_all Fun.id seen);
  let powers =
    Array.map (fun (sub, _) -> P.total_power sub) parts
  in
  let lo = Array.fold_left Float.min infinity powers in
  let hi = Array.fold_left Float.max 0. powers in
  Alcotest.(check bool) "greedy balance within 2x" true (hi < 2. *. lo);
  (* One shard reproduces the platform cluster-for-cluster. *)
  (match Shard.partition grid ~shards:1 with
  | [| (sub, clusters) |] ->
    Alcotest.(check int) "identity cover" (P.cluster_count grid)
      (Array.length clusters);
    Alcotest.(check bool) "identity clusters" true
      (P.clusters sub = P.clusters grid)
  | _ -> Alcotest.fail "expected one shard");
  Alcotest.check_raises "too many shards"
    (Invalid_argument "Shard.partition: 12 shards for 11 clusters") (fun () ->
      ignore (Shard.partition grid ~shards:12))

(* --- shard-1 equivalence ------------------------------------------- *)

let responses_identical msg a b =
  Alcotest.(check int) (msg ^ ": count") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: response %d bit-identical" msg i)
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))))
    a

let test_shard1_bit_identical () =
  let platform = Grid5000.rennes () in
  let apps = workload 8 11 ~mean:20. in
  let reference = Engine.run ~policy platform apps in
  (* Exact admission, one shard: both with the default roomy mailbox
     (all injection at close) and with a tiny one (pickups mid-stream,
     exercising the watermark protocol). *)
  List.iter
    (fun capacity ->
      let cfg = config ~shards:1 ~mode:Service.Inline in
      let cfg =
        {
          cfg with
          Service.admission =
            { cfg.Service.admission with Admission.capacity };
        }
      in
      let msg = Printf.sprintf "capacity %d" capacity in
      let r = Service.run_stream cfg platform apps in
      Alcotest.(check int) (msg ^ ": all admitted") (List.length apps)
        r.Service.admitted;
      Alcotest.(check int) (msg ^ ": no violations") 0 r.Service.violations;
      responses_identical msg reference.Engine.responses r.Service.responses;
      (match r.Service.shards with
      | [| shard |] ->
        List.iteri
          (fun i (e, g) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: app %d schedule identical" msg i)
              true
              (e.Schedule.placements = g.Schedule.placements))
          (List.combine reference.Engine.schedules
             shard.Shard.engine.Engine.schedules);
        Alcotest.(check int) (msg ^ ": same event count")
          reference.Engine.stats.Engine.events_processed
          shard.Shard.engine.Engine.stats.Engine.events_processed;
        Alcotest.(check int) (msg ^ ": same reschedules")
          reference.Engine.stats.Engine.reschedules
          shard.Shard.engine.Engine.stats.Engine.reschedules
      | _ -> Alcotest.fail "expected one shard"))
    [ 1024; 3 ]

(* --- deterministic replay ------------------------------------------ *)

let test_deterministic_replay () =
  (* Same stream, three executions: two multi-domain runs (different
     interleavings) and the inline fallback. Merged logs and response
     vectors must match bit for bit: each shard's outcome is a pure
     function of its own sub-stream, and the merge order is
     interleaving-independent. *)
  let platform = Grid5000.grid () in
  let apps = workload 30 5 ~mean:2. in
  let cfg ~mode =
    let c = config ~shards:4 ~mode in
    {
      c with
      Service.admission =
        { c.Service.admission with Admission.batch_window = 10. };
    }
  in
  let r1 = Service.run_stream (cfg ~mode:Service.Domains) platform apps in
  let r2 = Service.run_stream (cfg ~mode:Service.Domains) platform apps in
  let r3 = Service.run_stream (cfg ~mode:Service.Inline) platform apps in
  Alcotest.(check int) "no violations" 0
    (r1.Service.violations + r2.Service.violations + r3.Service.violations);
  responses_identical "domains vs domains" r1.Service.responses
    r2.Service.responses;
  responses_identical "domains vs inline" r1.Service.responses
    r3.Service.responses;
  let l1 = Service.merged_log r1
  and l2 = Service.merged_log r2
  and l3 = Service.merged_log r3 in
  Alcotest.(check bool) "log nonempty" true (l1 <> []);
  Alcotest.(check bool) "merged logs equal (domains)" true (l1 = l2);
  Alcotest.(check bool) "merged logs equal (inline)" true (l1 = l3)

(* --- checkpoint / crash recovery ----------------------------------- *)

let test_kill_restore_bit_identical () =
  (* Scripted crash drill: shard 1's domain dies right after its 5th
     injection, the service joins the corpse, restores the shard from
     its latest checkpoint (replaying the journalled suffix at the
     recorded admission instants) and respawns it. The bar is total
     transparency: merged log, response vector and checker verdict all
     bit-identical to the run that never crashed. *)
  let platform = Grid5000.grid () in
  let apps = workload 40 13 ~mean:2. in
  let cfg ~kill =
    let c = config ~shards:4 ~mode:Service.Domains in
    {
      c with
      Service.admission =
        { c.Service.admission with Admission.batch_window = 5. };
      Service.checkpoint_every = 3;
      Service.kill;
    }
  in
  let base = Service.run_stream (cfg ~kill:None) platform apps in
  let killed = Service.run_stream (cfg ~kill:(Some (1, 5))) platform apps in
  Alcotest.(check int) "no violations" 0
    (base.Service.violations + killed.Service.violations);
  Alcotest.(check int) "crash-free run never restores" 0
    base.Service.restores;
  Alcotest.(check int) "exactly one restore" 1 killed.Service.restores;
  responses_identical "killed vs crash-free" base.Service.responses
    killed.Service.responses;
  let lb = Service.merged_log base and lk = Service.merged_log killed in
  Alcotest.(check bool) "log nonempty" true (lb <> []);
  Alcotest.(check bool) "merged logs bit-identical" true (lb = lk)

(* --- queue-full semantics ------------------------------------------ *)

let test_reject_never_drops () =
  let platform = Grid5000.lille () in
  let apps = workload 12 3 ~mean:1. in
  let cfg = config ~shards:2 ~mode:Service.Inline in
  let cfg =
    {
      cfg with
      Service.admission =
        {
          Admission.capacity = 2;
          on_full = Admission.Reject;
          shed_above = None;
          batch_window = 0.;
        };
    }
  in
  let r = Service.run_stream cfg platform apps in
  Alcotest.(check int) "conservation" r.Service.submitted
    (r.Service.admitted + r.Service.rejected);
  Alcotest.(check bool) "some rejected" true (r.Service.rejected > 0);
  Alcotest.(check bool) "some admitted" true (r.Service.admitted > 0);
  let injected =
    Array.fold_left
      (fun acc s -> acc + Array.length s.Shard.global_ids)
      0 r.Service.shards
  in
  Alcotest.(check int) "every admitted app injected exactly once"
    r.Service.admitted injected;
  (* Rejected submissions answer nan, admitted ones a finite response. *)
  let finite =
    Array.fold_left
      (fun acc x -> if Float.is_finite x then acc + 1 else acc)
      0 r.Service.responses
  in
  Alcotest.(check int) "finite responses = admitted" r.Service.admitted finite

let test_block_admits_everything () =
  let platform = Grid5000.lille () in
  let apps = workload 12 4 ~mean:1. in
  List.iter
    (fun mode ->
      let cfg = config ~shards:2 ~mode in
      let cfg =
        {
          cfg with
          Service.admission =
            { cfg.Service.admission with Admission.capacity = 2 };
        }
      in
      let r = Service.run_stream cfg platform apps in
      Alcotest.(check int) "everything admitted" (List.length apps)
        r.Service.admitted;
      Alcotest.(check int) "nothing rejected" 0 r.Service.rejected;
      Alcotest.(check int) "no violations" 0 r.Service.violations;
      Array.iter
        (fun x -> Alcotest.(check bool) "every response finite" true
            (Float.is_finite x))
        r.Service.responses)
    [ Service.Inline; Service.Domains ]

(* --- shedding ------------------------------------------------------ *)

let test_shedding_conserves () =
  let platform = Grid5000.grid () in
  let apps = workload 24 9 ~mean:1. in
  let cfg = config ~shards:4 ~mode:Service.Inline in
  let cfg =
    {
      cfg with
      Service.router = Router.Round_robin;
      Service.admission =
        {
          Admission.capacity = 2;  (* tiny: forces mid-stream pickups *)
          on_full = Admission.Block;
          shed_above = Some 2;
          batch_window = 0.;
        };
    }
  in
  let r = Service.run_stream cfg platform apps in
  Alcotest.(check bool) "hand-offs happened" true (r.Service.handoffs > 0);
  Alcotest.(check int) "no violations" 0 r.Service.violations;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 r.Service.shards in
  Alcotest.(check int) "conservation across hand-offs" r.Service.admitted
    (sum (fun s -> Array.length s.Shard.global_ids));
  Alcotest.(check int) "every hand-off received"
    (sum (fun s -> s.Shard.handoffs_out))
    (sum (fun s -> s.Shard.handoffs_in));
  (* Every submission answered: the hand-off path loses nothing. *)
  Array.iter
    (fun x ->
      Alcotest.(check bool) "response finite" true (Float.is_finite x))
    r.Service.responses

(* --- API misuse ----------------------------------------------------- *)

let test_submit_ordering () =
  let platform = Grid5000.lille () in
  let t = Service.create (config ~shards:1 ~mode:Service.Inline) platform in
  let ptg = List.hd (random_ptgs 1 0) in
  ignore (Service.submit t ptg ~release:5.);
  Alcotest.check_raises "decreasing release"
    (Invalid_argument "Service.submit: releases must be nondecreasing")
    (fun () -> ignore (Service.submit t ptg ~release:4.));
  ignore (Service.submit t ptg ~release:5.);
  let r = Service.close t in
  Alcotest.(check int) "both served" 2 r.Service.admitted;
  Alcotest.check_raises "submit after close"
    (Invalid_argument "Service.submit: closed") (fun () ->
      ignore (Service.submit t ptg ~release:9.));
  Alcotest.check_raises "double close"
    (Invalid_argument "Service.close: already closed") (fun () ->
      ignore (Service.close t))

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "squeue bounded mailbox" `Quick test_squeue;
        Alcotest.test_case "squeue producer backpressure" `Quick
          test_squeue_blocking;
        Alcotest.test_case "squeue watermark wakes the right consumer" `Quick
          test_squeue_watermark_wakeup;
        Alcotest.test_case "admission quantisation" `Quick test_admission;
        Alcotest.test_case "router policies" `Quick test_router;
        Alcotest.test_case "percentiles" `Quick test_stats;
        Alcotest.test_case "platform partitioning" `Quick test_partition;
        Alcotest.test_case "shard-1 inline = Engine.run, bit for bit" `Quick
          test_shard1_bit_identical;
        Alcotest.test_case "deterministic replay across interleavings" `Quick
          test_deterministic_replay;
        Alcotest.test_case "kill → restore is bit-identical" `Quick
          test_kill_restore_bit_identical;
        Alcotest.test_case "reject: explicit, never silent" `Quick
          test_reject_never_drops;
        Alcotest.test_case "block: backpressure admits everything" `Quick
          test_block_admits_everything;
        Alcotest.test_case "shedding conserves submissions" `Quick
          test_shedding_conserves;
        Alcotest.test_case "submission ordering contract" `Quick
          test_submit_ordering;
      ] );
  ]
