(* Online engine: determinism, conservation, offline equivalence at
   t = 0, and the no-future-knowledge regression on β recomputation. *)

module Grid5000 = Mcs_platform.Grid5000
module Prng = Mcs_prng.Prng
module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
open Mcs_online

let random_ptgs n seed =
  let rng = Prng.create ~seed in
  List.init n (fun id ->
      Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)

let poisson_releases n seed ~mean =
  let rng = Prng.create ~seed in
  let clock = ref 0. in
  List.init n (fun i ->
      if i = 0 then 0.
      else begin
        clock := !clock +. Prng.exponential rng ~mean;
        !clock
      end)

let workload n seed ~mean =
  List.combine (random_ptgs n seed) (poisson_releases n (seed + 1) ~mean)

let placements_equal a b =
  a.Schedule.node = b.Schedule.node
  && a.Schedule.cluster = b.Schedule.cluster
  && a.Schedule.procs = b.Schedule.procs
  && Float.abs (a.Schedule.start -. b.Schedule.start) <= 1e-9
  && Float.abs (a.Schedule.finish -. b.Schedule.finish) <= 1e-9

let check_same_schedules msg expected got =
  List.iteri
    (fun i (e, g) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: app %d placements" msg i)
        true
        (Array.for_all2 placements_equal e.Schedule.placements
           g.Schedule.placements))
    (List.combine expected got)

let test_determinism () =
  let platform = Grid5000.rennes () in
  let apps = workload 5 42 ~mean:40. in
  let policy = Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let r1 = Engine.run ~policy platform apps in
  let r2 = Engine.run ~policy platform apps in
  check_same_schedules "two runs" r1.Engine.schedules r2.Engine.schedules;
  Alcotest.(check (array (float 0.))) "same completions"
    r1.Engine.completions r2.Engine.completions;
  Alcotest.(check int) "same event count" r1.Engine.stats.Engine.events_processed
    r2.Engine.stats.Engine.events_processed;
  Alcotest.(check int) "same reschedules" r1.Engine.stats.Engine.reschedules
    r2.Engine.stats.Engine.reschedules

let test_conservation () =
  (* Every task placed exactly once, schedules valid (in particular no
     processor oversubscription) even after many partial reschedules. *)
  let platform = Grid5000.lille () in
  let apps = workload 6 7 ~mean:25. in
  let policy = Policy.make Strategy.Equal_share in
  let r = Engine.run ~policy platform apps in
  Alcotest.(check bool) "rescheduled more than once" true
    (r.Engine.stats.Engine.reschedules > List.length apps);
  List.iteri
    (fun i sched ->
      let n = Ptg.node_count sched.Schedule.ptg in
      Alcotest.(check int)
        (Printf.sprintf "app %d: one placement per node" i)
        n
        (Array.length sched.Schedule.placements);
      Array.iteri
        (fun v pl ->
          Alcotest.(check int) "placement labels its node" v pl.Schedule.node)
        sched.Schedule.placements)
    r.Engine.schedules;
  (match Schedule.validate ~platform r.Engine.schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message);
  (* Starts respect submissions; completions are consistent. *)
  List.iteri
    (fun i ((_, release), sched) ->
      Array.iter
        (fun pl ->
          Alcotest.(check bool)
            (Printf.sprintf "app %d starts after release" i)
            true
            (pl.Schedule.start >= release -. 1e-9))
        sched.Schedule.placements;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "app %d completion = exit finish" i)
        sched.Schedule.makespan r.Engine.completions.(i))
    (List.combine apps r.Engine.schedules)

let test_offline_equivalence_at_zero () =
  (* All arrivals at t = 0 under the static policy: one rescheduling
     over the full set — placement-for-placement the offline pipeline. *)
  let platform = Grid5000.sophia () in
  List.iter
    (fun strategy ->
      let ptgs = random_ptgs 4 11 in
      let apps = List.map (fun p -> (p, 0.)) ptgs in
      let offline = Pipeline.schedule_concurrent ~strategy platform ptgs in
      let r = Engine.run ~policy:(Policy.static strategy) platform apps in
      check_same_schedules
        (Strategy.name strategy)
        offline r.Engine.schedules;
      Alcotest.(check int) "single reschedule" 1
        r.Engine.stats.Engine.reschedules)
    [
      Strategy.Equal_share;
      Strategy.Proportional Strategy.Work;
      Strategy.Weighted (Strategy.Work, 0.7);
    ]

let test_dynamic_beta_single_app_selfish () =
  (* Regression: β is recomputed over *arrived* applications only. Two
     applications far apart in time under ES: while alone, each must get
     β = 1, never 1/2 — the offline approximation over the full
     submission set would leak future knowledge. *)
  let platform = Grid5000.nancy () in
  let ptgs = random_ptgs 2 13 in
  let apps = List.combine ptgs [ 0.; 1e6 ] in
  let reschedules = ref [] in
  let log = function
    | Log.Reschedule { time; betas; _ } -> reschedules := (time, betas) :: !reschedules
    | _ -> ()
  in
  let r =
    Engine.run ~log ~policy:(Policy.make Strategy.Equal_share) platform apps
  in
  let reschedules = List.rev !reschedules in
  Alcotest.(check bool) "at least two reschedules" true
    (List.length reschedules >= 2);
  List.iter
    (fun (time, betas) ->
      List.iter
        (fun (app, beta) ->
          let release = List.nth (List.map snd apps) app in
          Alcotest.(check bool)
            (Printf.sprintf "app %d in β set only after arrival" app)
            true
            (release <= time +. 1e-9);
          (* The second app never overlaps the first: each is alone in
             its active set, so ES must give it the full platform. *)
          Alcotest.(check (float 1e-9)) "alone => β = 1" 1. beta)
        betas)
    reschedules;
  (* Final β of both apps is the alone share. *)
  Alcotest.(check (array (float 1e-9))) "final betas" [| 1.; 1. |] r.Engine.betas

let test_departure_frees_resources () =
  (* With dynamic β, an app arriving while another is mid-flight gets a
     response no worse than under the frozen offline approximation. Also
     exercises that β grows after the competitor departs. *)
  let platform = Grid5000.rennes () in
  let ptgs = random_ptgs 3 17 in
  let releases = [ 0.; 10.; 20. ] in
  let apps = List.combine ptgs releases in
  let betas_seen = ref [] in
  let log = function
    | Log.Reschedule { betas; _ } -> betas_seen := betas :: !betas_seen
    | _ -> ()
  in
  let policy = Policy.make Strategy.Equal_share in
  let r = Engine.run ~log ~policy platform apps in
  (match Schedule.validate ~platform r.Engine.schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message);
  (* Some reschedule saw a singleton active set (after departures) with
     β = 1 while the full set gave 1/3. *)
  let shares = List.concat_map (List.map snd) !betas_seen in
  Alcotest.(check bool) "β = 1/3 seen" true
    (List.exists (fun b -> Float.abs (b -. (1. /. 3.)) < 1e-9) shares);
  Alcotest.(check bool) "β = 1 seen after departures" true
    (List.exists (fun b -> Float.abs (b -. 1.) < 1e-9) shares)

let test_event_log_ordering () =
  (* The log is in virtual-time order and contains one arrival and one
     departure per application. *)
  let platform = Grid5000.lille () in
  let apps = workload 4 23 ~mean:30. in
  let events = ref [] in
  let log e = events := e :: !events in
  ignore (Engine.run ~log ~policy:(Policy.make Strategy.Equal_share) platform apps);
  let events = List.rev !events in
  let rec monotone last = function
    | [] -> true
    | e :: rest ->
      let t = Log.time e in
      t >= last -. 1e-9 && monotone t rest
  in
  Alcotest.(check bool) "times monotone" true (monotone 0. events);
  let count f = List.length (List.filter f events) in
  Alcotest.(check int) "4 arrivals" 4
    (count (function Log.Arrival _ -> true | _ -> false));
  Alcotest.(check int) "4 departures" 4
    (count (function Log.Departure _ -> true | _ -> false));
  (* Every line is one-object JSON. *)
  List.iter
    (fun e ->
      let s = Log.to_json e in
      Alcotest.(check bool) "json braces" true
        (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
      Alcotest.(check bool) "single line" true
        (not (String.contains s '\n')))
    events

let test_replayable () =
  (* Online schedules replay through the fluid network model like any
     offline schedule (reuse of lib/sim, no fork). *)
  let platform = Grid5000.sophia () in
  let apps = workload 4 29 ~mean:35. in
  let r = Engine.run ~policy:(Policy.make Strategy.Equal_share) platform apps in
  let release = Array.of_list (List.map snd apps) in
  let sim = Mcs_sim.Replay.run ~release platform r.Engine.schedules in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "app %d simulated makespan positive" i)
        true (m > 0.);
      Alcotest.(check bool) "simulated completion after release" true
        (m >= release.(i) -. 1e-9))
    sim.Mcs_sim.Replay.makespans

(* ---------- Allocation cache transparency ---------- *)

(* The cache switch must be observationally invisible: identical
   schedules (bit for bit), betas, completions, responses, executions
   and engine statistics — only the alloc_* cache counters may (and
   must) differ. *)
let exact_placements_equal a b =
  a.Schedule.node = b.Schedule.node
  && a.Schedule.cluster = b.Schedule.cluster
  && a.Schedule.procs = b.Schedule.procs
  && Float.equal a.Schedule.start b.Schedule.start
  && Float.equal a.Schedule.finish b.Schedule.finish

let check_cache_transparent msg (off : Engine.result) (on_ : Engine.result) =
  List.iteri
    (fun i (e, g) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: app %d schedules bit-identical" msg i)
        true
        (Array.for_all2 exact_placements_equal e.Schedule.placements
           g.Schedule.placements))
    (List.combine off.Engine.schedules on_.Engine.schedules);
  Alcotest.(check bool)
    (msg ^ ": betas bit-identical") true
    (Array.for_all2 Float.equal off.Engine.betas on_.Engine.betas);
  Alcotest.(check bool)
    (msg ^ ": completions bit-identical") true
    (Array.for_all2 Float.equal off.Engine.completions on_.Engine.completions);
  Alcotest.(check bool)
    (msg ^ ": responses bit-identical") true
    (Array.for_all2 Float.equal off.Engine.responses on_.Engine.responses);
  Alcotest.(check bool)
    (msg ^ ": executions identical") true
    (off.Engine.executions = on_.Engine.executions);
  let s0 = off.Engine.stats and s1 = on_.Engine.stats in
  Alcotest.(check int) (msg ^ ": events") s0.Engine.events_processed
    s1.Engine.events_processed;
  Alcotest.(check int) (msg ^ ": reschedules") s0.Engine.reschedules
    s1.Engine.reschedules;
  Alcotest.(check int) (msg ^ ": remapped") s0.Engine.remapped_tasks
    s1.Engine.remapped_tasks;
  Alcotest.(check int) (msg ^ ": kills") s0.Engine.kills s1.Engine.kills;
  Alcotest.(check int) (msg ^ ": failures") s0.Engine.task_failures
    s1.Engine.task_failures;
  (* And the switch actually routed through the cache. *)
  Alcotest.(check int)
    (msg ^ ": scratch path counts no cache outcomes") 0
    (s0.Engine.alloc_hits + s0.Engine.alloc_rescales + s0.Engine.alloc_misses);
  Alcotest.(check bool)
    (msg ^ ": cached path observed requests") true
    (s1.Engine.alloc_hits + s1.Engine.alloc_rescales + s1.Engine.alloc_misses
    > 0)

let test_alloc_cache_transparent () =
  let platform = Grid5000.rennes () in
  let apps = workload 8 4242 ~mean:25. in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let off =
    Engine.run ~policy:(Policy.make ~alloc_cache:false strategy) platform apps
  in
  let on_ =
    Engine.run ~policy:(Policy.make ~alloc_cache:true strategy) platform apps
  in
  check_cache_transparent "poisson" off on_

let test_alloc_cache_transparent_faults () =
  (* Outages degrade the cap and kill attempts, transient failures with
     shrink_on_retry mutate allocations after the fact — every cache
     invalidation path fires on this stream. *)
  let platform = Grid5000.rennes () in
  let apps = workload 6 77 ~mean:20. in
  let scenario =
    Mcs_fault.Fault.generate ~seed:5 platform
      {
        Mcs_fault.Fault.default with
        Mcs_fault.Fault.mttf = 300.;
        mttr = 60.;
        task_fail_p = 0.15;
        horizon = 1500.;
      }
  in
  let faults =
    { Policy.default_faults with Policy.shrink_on_retry = true }
  in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let off =
    Engine.run ~faults:scenario
      ~policy:(Policy.make ~faults ~alloc_cache:false strategy)
      platform apps
  in
  let on_ =
    Engine.run ~faults:scenario
      ~policy:(Policy.make ~faults ~alloc_cache:true strategy)
      platform apps
  in
  Alcotest.(check bool)
    "scenario exercises faults" true
    (off.Engine.stats.Engine.kills > 0
    || off.Engine.stats.Engine.task_failures > 0);
  check_cache_transparent "faults" off on_

(* ---------- Policy kernel, snapshot/restore, speculation ---------- *)

let makespan (r : Engine.result) =
  Array.fold_left
    (fun acc c -> if Float.is_finite c then Float.max acc c else acc)
    0. r.Engine.completions

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  go 0

let fault_scenario_for platform seed =
  Mcs_fault.Fault.generate ~seed platform
    {
      Mcs_fault.Fault.default with
      Mcs_fault.Fault.mttf = 400.;
      mttr = 60.;
      task_fail_p = 0.1;
      horizon = 1500.;
    }

(* Uninterrupted run: one session, straight to quiescence. *)
let run_plain ?faults ~kernel platform apps =
  let logs = ref [] in
  let log e = logs := Log.to_json e :: !logs in
  let s =
    Engine.create ~log ?faults ~kernel ~policy:kernel.Policy_kernel.policy
      platform apps
  in
  Engine.advance s;
  (List.rev !logs, Engine.result s)

(* Interrupted run: advance to [split], snapshot, abandon the original
   session and finish on a restore of the snapshot. The log sink is
   handed to the restored session, so the combined stream must equal
   the uninterrupted one bit for bit. *)
let run_split ?faults ~kernel ~split platform apps =
  let logs = ref [] in
  let log e = logs := Log.to_json e :: !logs in
  let s =
    Engine.create ~log ?faults ~kernel ~policy:kernel.Policy_kernel.policy
      platform apps
  in
  Engine.advance ~upto:split s;
  let s' = Engine.restore ~log (Engine.snapshot s) in
  Engine.advance s';
  (List.rev !logs, Engine.result s')

let same_outcome (l0, r0) (l1, r1) =
  l0 = l1
  && Array.for_all2 Float.equal r0.Engine.completions r1.Engine.completions
  && r0.Engine.executions = r1.Engine.executions

let test_snapshot_restore_identical () =
  let platform = Grid5000.rennes () in
  let apps = workload 6 21 ~mean:25. in
  let kernel =
    Policy_kernel.default
      (Policy.make (Strategy.Weighted (Strategy.Work, 0.7)))
  in
  let plain = run_plain ~kernel platform apps in
  List.iter
    (fun split ->
      Alcotest.(check bool)
        (Printf.sprintf "split at %g replays the uninterrupted log" split)
        true
        (same_outcome plain (run_split ~kernel ~split platform apps)))
    [ 0.; 40.; 90.; 1e12 ]

let test_snapshot_restore_identical_faults () =
  let platform = Grid5000.rennes () in
  let apps = workload 6 77 ~mean:20. in
  let faults = fault_scenario_for platform 5 in
  let kernel =
    Policy_kernel.of_name "shrink-retry"
      ~base:
        (Policy.make
           ~faults:
             { Policy.default_faults with Policy.shrink_on_retry = true }
           (Strategy.Weighted (Strategy.Work, 0.7)))
  in
  let plain = run_plain ~faults ~kernel platform apps in
  Alcotest.(check bool)
    "scenario exercises faults" true
    ((snd plain).Engine.stats.Engine.kills > 0
    || (snd plain).Engine.stats.Engine.task_failures > 0);
  List.iter
    (fun split ->
      Alcotest.(check bool)
        (Printf.sprintf "faulted split at %g is bit-identical" split)
        true
        (same_outcome plain (run_split ~faults ~kernel ~split platform apps)))
    [ 30.; 120. ]

let strategies =
  [
    Strategy.Selfish;
    Strategy.Equal_share;
    Strategy.Proportional Strategy.Work;
    Strategy.Weighted (Strategy.Work, 0.7);
  ]

let qcheck_snapshot_restore =
  QCheck.Test.make
    ~name:"snapshot → restore → continue is bit-identical" ~count:15
    QCheck.(
      triple (int_range 0 10_000)
        (int_range 0 (List.length strategies - 1))
        (int_range 0 100))
    (fun (seed, strat_i, percent) ->
      let platform = Grid5000.rennes () in
      let apps = workload 5 seed ~mean:20. in
      let faulted = seed mod 2 = 0 in
      let faults =
        if faulted then Some (fault_scenario_for platform (seed + 7))
        else None
      in
      let kernel =
        Policy_kernel.of_name
          (if faulted then "shrink-retry" else "default")
          ~base:
            (Policy.make
               ~faults:
                 {
                   Policy.default_faults with
                   Policy.shrink_on_retry = faulted;
                 }
               (List.nth strategies strat_i))
      in
      let plain = run_plain ?faults ~kernel platform apps in
      let split = float_of_int percent /. 100. *. makespan (snd plain) in
      same_outcome plain (run_split ?faults ~kernel ~split platform apps))

let test_policy_swap_deterministic () =
  let platform = Grid5000.rennes () in
  let apps = workload 6 33 ~mean:25. in
  let policy = Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let run () =
    let logs = ref [] and errors = ref 0 in
    let log e = logs := Log.to_json e :: !logs in
    let check ds = errors := !errors + List.length (Mcs_check.Diagnostic.errors ds) in
    let s =
      Engine.create ~log ~check
        ~kernel:(Policy_kernel.of_name "static" ~base:policy)
        ~policy platform apps
    in
    Engine.advance ~upto:60. s;
    Engine.set_kernel ~reschedule:true s
      (Policy_kernel.of_name "eager" ~base:policy);
    Alcotest.(check string) "kernel swapped" "eager" (Engine.kernel_name s);
    Engine.advance s;
    (List.rev !logs, Engine.result s, !errors)
  in
  let l1, r1, e1 = run () in
  let l2, r2, e2 = run () in
  Alcotest.(check int) "checker clean" 0 (e1 + e2);
  Alcotest.(check (list string)) "swapped runs log identically" l1 l2;
  Alcotest.(check bool)
    "completions bit-identical" true
    (Array.for_all2 Float.equal r1.Engine.completions r2.Engine.completions);
  Alcotest.(check bool)
    "the swap remap is logged" true
    (List.exists (fun line -> contains_sub line "policy_swap") l1)

let test_what_if_speculation () =
  let platform = Grid5000.rennes () in
  let apps = workload 6 11 ~mean:20. in
  let policy = Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let s =
    Engine.create
      ~kernel:(Policy_kernel.of_name "static" ~base:policy)
      ~policy platform apps
  in
  Engine.advance ~upto:30. s;
  (* A candidate identical to the incumbent ties and is never adopted:
     adoption demands strict improvement. *)
  let same = Engine.what_if s (Policy_kernel.of_name "static" ~base:policy) in
  Alcotest.(check bool) "identical candidate not adopted" false
    same.Engine.adopted;
  Alcotest.(check bool)
    "identical candidate ties bit for bit" true
    (Float.equal same.Engine.baseline_makespan same.Engine.candidate_makespan);
  Alcotest.(check string) "incumbent kept" "static" (Engine.kernel_name s);
  (* Dynamic rescheduling vs the static kernel on a contended stream. *)
  let sp = Engine.what_if s (Policy_kernel.of_name "default" ~base:policy) in
  Alcotest.(check bool)
    "adopted iff strictly better" sp.Engine.adopted
    (sp.Engine.candidate_makespan < sp.Engine.baseline_makespan);
  Alcotest.(check string)
    "live kernel reflects the decision"
    (if sp.Engine.adopted then "default" else "static")
    (Engine.kernel_name s);
  (* The speculation's clones predict the live run exactly: finishing
     the session reproduces the chosen clone's makespan bit for bit. *)
  Engine.advance s;
  let final = makespan (Engine.result s) in
  let predicted =
    if sp.Engine.adopted then sp.Engine.candidate_makespan
    else sp.Engine.baseline_makespan
  in
  Alcotest.(check bool)
    "live run matches the chosen clone" true (Float.equal final predicted)

let test_departure_scoped_invalidation () =
  (* Tight arrivals: every application arrives before the first one
     departs, so each first allocation (the misses) happens up front.
     Under Selfish every request is β = 1, so every departure-triggered
     reallocation of a survivor must be an exact cache hit — zero new
     misses. An engine that cleared every cache on any departure
     (instead of releasing only the departing application's) would pay
     one fresh miss per survivor here. *)
  let platform = Grid5000.rennes () in
  let apps = workload 5 13 ~mean:1. in
  let policy = Policy.make ~alloc_cache:true Strategy.Selfish in
  let first_departure = ref infinity in
  let log = function
    | Log.Departure { time; _ } ->
      if not (Float.is_finite !first_departure) then first_departure := time
    | _ -> ()
  in
  let kernel = Policy_kernel.default policy in
  let s = Engine.create ~log ~kernel ~policy platform apps in
  Engine.advance s;
  Alcotest.(check bool)
    "probe saw a departure" true
    (Float.is_finite !first_departure);
  let s = Engine.create ~kernel ~policy platform apps in
  Engine.advance ~upto:!first_departure s;
  Alcotest.(check int) "all applications arrived" 5 (Engine.active_count s);
  let h1, r1, m1 = Engine.alloc_cache_stats s in
  Engine.advance s;
  let h2, r2, m2 = Engine.alloc_cache_stats s in
  Alcotest.(check int) "no new misses after the departures" m1 m2;
  Alcotest.(check bool)
    "survivor reallocations served from their caches" true
    (h2 + r2 > h1 + r1)

let test_copy_rederives_gauges () =
  (* A crashed shard's stale gauges must not leak through State.copy:
     the concurrency gauges are re-derived from the copied statuses. *)
  let platform = Grid5000.rennes () in
  let apps = workload 4 3 ~mean:10. in
  let st = State.create platform apps in
  st.State.apps.(0).State.status <- State.Completed;
  st.State.apps.(1).State.status <- State.Active;
  st.State.active_apps <- 7;
  st.State.completed_apps <- 5;
  st.State.peak_active <- 0;
  let c = State.copy st in
  Alcotest.(check int) "active_apps re-derived" 1 c.State.active_apps;
  Alcotest.(check int) "completed_apps re-derived" 1 c.State.completed_apps;
  Alcotest.(check bool)
    "peak floored by the derived gauge" true
    (c.State.peak_active >= c.State.active_apps);
  st.State.peak_active <- 5;
  Alcotest.(check int)
    "recorded peak kept when higher" 5 (State.copy st).State.peak_active

let test_audit_restored_session () =
  let platform = Grid5000.rennes () in
  let apps = workload 6 55 ~mean:25. in
  let policy = Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let s =
    Engine.create ~kernel:(Policy_kernel.default policy) ~policy platform apps
  in
  Engine.advance ~upto:80. s;
  Alcotest.(check bool) "mid-run session is busy" true
    (Engine.active_count s > 0);
  Alcotest.(check int)
    "live audit clean" 0
    (List.length (Mcs_check.Diagnostic.errors (Engine.audit s)));
  let s' = Engine.restore (Engine.snapshot s) in
  Alcotest.(check int)
    "restored audit clean" 0
    (List.length (Mcs_check.Diagnostic.errors (Engine.audit s')))

let test_policy_flags_and_kernel_registry () =
  Alcotest.check_raises "finish-trigger without departure-trigger"
    (Invalid_argument
       "Policy.make: reschedule_on_task_finish without \
        reschedule_on_departure")
    (fun () ->
      ignore
        (Policy.make ~reschedule_on_departure:false
           ~reschedule_on_task_finish:true Strategy.Equal_share));
  let p = Policy.static Strategy.Equal_share in
  Alcotest.(check bool)
    "static disables both triggers" false
    (p.Policy.reschedule_on_departure || p.Policy.reschedule_on_task_finish);
  List.iter
    (fun name ->
      Alcotest.(check string)
        (Printf.sprintf "registry round-trips %S" name)
        name
        (Policy_kernel.of_name name ~base:p).Policy_kernel.name)
    Policy_kernel.names;
  Alcotest.(check bool)
    "unknown kernel rejected" true
    (try
       ignore (Policy_kernel.of_name "nope" ~base:p);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "online.engine",
      [
        Alcotest.test_case "deterministic under a fixed seed" `Quick
          test_determinism;
        Alcotest.test_case "conservation after rescheduling" `Quick
          test_conservation;
        Alcotest.test_case "t=0 arrivals reproduce offline" `Quick
          test_offline_equivalence_at_zero;
        Alcotest.test_case "β never uses future arrivals" `Quick
          test_dynamic_beta_single_app_selfish;
        Alcotest.test_case "departures free resources" `Quick
          test_departure_frees_resources;
        Alcotest.test_case "event log ordering + JSON" `Quick
          test_event_log_ordering;
        Alcotest.test_case "replayable through lib/sim" `Quick test_replayable;
        Alcotest.test_case "alloc cache transparent (poisson)" `Quick
          test_alloc_cache_transparent;
        Alcotest.test_case "alloc cache transparent (faults)" `Quick
          test_alloc_cache_transparent_faults;
      ] );
    ( "online.kernel",
      [
        Alcotest.test_case "snapshot/restore bit-identical" `Quick
          test_snapshot_restore_identical;
        Alcotest.test_case "snapshot/restore bit-identical (faults)" `Quick
          test_snapshot_restore_identical_faults;
        QCheck_alcotest.to_alcotest qcheck_snapshot_restore;
        Alcotest.test_case "policy swap deterministic & clean" `Quick
          test_policy_swap_deterministic;
        Alcotest.test_case "what-if speculation" `Quick
          test_what_if_speculation;
        Alcotest.test_case "departure-scoped cache invalidation" `Quick
          test_departure_scoped_invalidation;
        Alcotest.test_case "State.copy re-derives gauges" `Quick
          test_copy_rederives_gauges;
        Alcotest.test_case "audit clean on restored session" `Quick
          test_audit_restored_session;
        Alcotest.test_case "policy flags & kernel registry" `Quick
          test_policy_flags_and_kernel_registry;
      ] );
  ]
