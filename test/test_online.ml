(* Online engine: determinism, conservation, offline equivalence at
   t = 0, and the no-future-knowledge regression on β recomputation. *)

module Grid5000 = Mcs_platform.Grid5000
module Prng = Mcs_prng.Prng
module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
open Mcs_online

let random_ptgs n seed =
  let rng = Prng.create ~seed in
  List.init n (fun id ->
      Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)

let poisson_releases n seed ~mean =
  let rng = Prng.create ~seed in
  let clock = ref 0. in
  List.init n (fun i ->
      if i = 0 then 0.
      else begin
        clock := !clock +. Prng.exponential rng ~mean;
        !clock
      end)

let workload n seed ~mean =
  List.combine (random_ptgs n seed) (poisson_releases n (seed + 1) ~mean)

let placements_equal a b =
  a.Schedule.node = b.Schedule.node
  && a.Schedule.cluster = b.Schedule.cluster
  && a.Schedule.procs = b.Schedule.procs
  && Float.abs (a.Schedule.start -. b.Schedule.start) <= 1e-9
  && Float.abs (a.Schedule.finish -. b.Schedule.finish) <= 1e-9

let check_same_schedules msg expected got =
  List.iteri
    (fun i (e, g) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: app %d placements" msg i)
        true
        (Array.for_all2 placements_equal e.Schedule.placements
           g.Schedule.placements))
    (List.combine expected got)

let test_determinism () =
  let platform = Grid5000.rennes () in
  let apps = workload 5 42 ~mean:40. in
  let policy = Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let r1 = Engine.run ~policy platform apps in
  let r2 = Engine.run ~policy platform apps in
  check_same_schedules "two runs" r1.Engine.schedules r2.Engine.schedules;
  Alcotest.(check (array (float 0.))) "same completions"
    r1.Engine.completions r2.Engine.completions;
  Alcotest.(check int) "same event count" r1.Engine.stats.Engine.events_processed
    r2.Engine.stats.Engine.events_processed;
  Alcotest.(check int) "same reschedules" r1.Engine.stats.Engine.reschedules
    r2.Engine.stats.Engine.reschedules

let test_conservation () =
  (* Every task placed exactly once, schedules valid (in particular no
     processor oversubscription) even after many partial reschedules. *)
  let platform = Grid5000.lille () in
  let apps = workload 6 7 ~mean:25. in
  let policy = Policy.make Strategy.Equal_share in
  let r = Engine.run ~policy platform apps in
  Alcotest.(check bool) "rescheduled more than once" true
    (r.Engine.stats.Engine.reschedules > List.length apps);
  List.iteri
    (fun i sched ->
      let n = Ptg.node_count sched.Schedule.ptg in
      Alcotest.(check int)
        (Printf.sprintf "app %d: one placement per node" i)
        n
        (Array.length sched.Schedule.placements);
      Array.iteri
        (fun v pl ->
          Alcotest.(check int) "placement labels its node" v pl.Schedule.node)
        sched.Schedule.placements)
    r.Engine.schedules;
  (match Schedule.validate ~platform r.Engine.schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message);
  (* Starts respect submissions; completions are consistent. *)
  List.iteri
    (fun i ((_, release), sched) ->
      Array.iter
        (fun pl ->
          Alcotest.(check bool)
            (Printf.sprintf "app %d starts after release" i)
            true
            (pl.Schedule.start >= release -. 1e-9))
        sched.Schedule.placements;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "app %d completion = exit finish" i)
        sched.Schedule.makespan r.Engine.completions.(i))
    (List.combine apps r.Engine.schedules)

let test_offline_equivalence_at_zero () =
  (* All arrivals at t = 0 under the static policy: one rescheduling
     over the full set — placement-for-placement the offline pipeline. *)
  let platform = Grid5000.sophia () in
  List.iter
    (fun strategy ->
      let ptgs = random_ptgs 4 11 in
      let apps = List.map (fun p -> (p, 0.)) ptgs in
      let offline = Pipeline.schedule_concurrent ~strategy platform ptgs in
      let r = Engine.run ~policy:(Policy.static strategy) platform apps in
      check_same_schedules
        (Strategy.name strategy)
        offline r.Engine.schedules;
      Alcotest.(check int) "single reschedule" 1
        r.Engine.stats.Engine.reschedules)
    [
      Strategy.Equal_share;
      Strategy.Proportional Strategy.Work;
      Strategy.Weighted (Strategy.Work, 0.7);
    ]

let test_dynamic_beta_single_app_selfish () =
  (* Regression: β is recomputed over *arrived* applications only. Two
     applications far apart in time under ES: while alone, each must get
     β = 1, never 1/2 — the offline approximation over the full
     submission set would leak future knowledge. *)
  let platform = Grid5000.nancy () in
  let ptgs = random_ptgs 2 13 in
  let apps = List.combine ptgs [ 0.; 1e6 ] in
  let reschedules = ref [] in
  let log = function
    | Log.Reschedule { time; betas; _ } -> reschedules := (time, betas) :: !reschedules
    | _ -> ()
  in
  let r =
    Engine.run ~log ~policy:(Policy.make Strategy.Equal_share) platform apps
  in
  let reschedules = List.rev !reschedules in
  Alcotest.(check bool) "at least two reschedules" true
    (List.length reschedules >= 2);
  List.iter
    (fun (time, betas) ->
      List.iter
        (fun (app, beta) ->
          let release = List.nth (List.map snd apps) app in
          Alcotest.(check bool)
            (Printf.sprintf "app %d in β set only after arrival" app)
            true
            (release <= time +. 1e-9);
          (* The second app never overlaps the first: each is alone in
             its active set, so ES must give it the full platform. *)
          Alcotest.(check (float 1e-9)) "alone => β = 1" 1. beta)
        betas)
    reschedules;
  (* Final β of both apps is the alone share. *)
  Alcotest.(check (array (float 1e-9))) "final betas" [| 1.; 1. |] r.Engine.betas

let test_departure_frees_resources () =
  (* With dynamic β, an app arriving while another is mid-flight gets a
     response no worse than under the frozen offline approximation. Also
     exercises that β grows after the competitor departs. *)
  let platform = Grid5000.rennes () in
  let ptgs = random_ptgs 3 17 in
  let releases = [ 0.; 10.; 20. ] in
  let apps = List.combine ptgs releases in
  let betas_seen = ref [] in
  let log = function
    | Log.Reschedule { betas; _ } -> betas_seen := betas :: !betas_seen
    | _ -> ()
  in
  let policy = Policy.make Strategy.Equal_share in
  let r = Engine.run ~log ~policy platform apps in
  (match Schedule.validate ~platform r.Engine.schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message);
  (* Some reschedule saw a singleton active set (after departures) with
     β = 1 while the full set gave 1/3. *)
  let shares = List.concat_map (List.map snd) !betas_seen in
  Alcotest.(check bool) "β = 1/3 seen" true
    (List.exists (fun b -> Float.abs (b -. (1. /. 3.)) < 1e-9) shares);
  Alcotest.(check bool) "β = 1 seen after departures" true
    (List.exists (fun b -> Float.abs (b -. 1.) < 1e-9) shares)

let test_event_log_ordering () =
  (* The log is in virtual-time order and contains one arrival and one
     departure per application. *)
  let platform = Grid5000.lille () in
  let apps = workload 4 23 ~mean:30. in
  let events = ref [] in
  let log e = events := e :: !events in
  ignore (Engine.run ~log ~policy:(Policy.make Strategy.Equal_share) platform apps);
  let events = List.rev !events in
  let rec monotone last = function
    | [] -> true
    | e :: rest ->
      let t = Log.time e in
      t >= last -. 1e-9 && monotone t rest
  in
  Alcotest.(check bool) "times monotone" true (monotone 0. events);
  let count f = List.length (List.filter f events) in
  Alcotest.(check int) "4 arrivals" 4
    (count (function Log.Arrival _ -> true | _ -> false));
  Alcotest.(check int) "4 departures" 4
    (count (function Log.Departure _ -> true | _ -> false));
  (* Every line is one-object JSON. *)
  List.iter
    (fun e ->
      let s = Log.to_json e in
      Alcotest.(check bool) "json braces" true
        (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
      Alcotest.(check bool) "single line" true
        (not (String.contains s '\n')))
    events

let test_replayable () =
  (* Online schedules replay through the fluid network model like any
     offline schedule (reuse of lib/sim, no fork). *)
  let platform = Grid5000.sophia () in
  let apps = workload 4 29 ~mean:35. in
  let r = Engine.run ~policy:(Policy.make Strategy.Equal_share) platform apps in
  let release = Array.of_list (List.map snd apps) in
  let sim = Mcs_sim.Replay.run ~release platform r.Engine.schedules in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "app %d simulated makespan positive" i)
        true (m > 0.);
      Alcotest.(check bool) "simulated completion after release" true
        (m >= release.(i) -. 1e-9))
    sim.Mcs_sim.Replay.makespans

(* ---------- Allocation cache transparency ---------- *)

(* The cache switch must be observationally invisible: identical
   schedules (bit for bit), betas, completions, responses, executions
   and engine statistics — only the alloc_* cache counters may (and
   must) differ. *)
let exact_placements_equal a b =
  a.Schedule.node = b.Schedule.node
  && a.Schedule.cluster = b.Schedule.cluster
  && a.Schedule.procs = b.Schedule.procs
  && Float.equal a.Schedule.start b.Schedule.start
  && Float.equal a.Schedule.finish b.Schedule.finish

let check_cache_transparent msg (off : Engine.result) (on_ : Engine.result) =
  List.iteri
    (fun i (e, g) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: app %d schedules bit-identical" msg i)
        true
        (Array.for_all2 exact_placements_equal e.Schedule.placements
           g.Schedule.placements))
    (List.combine off.Engine.schedules on_.Engine.schedules);
  Alcotest.(check bool)
    (msg ^ ": betas bit-identical") true
    (Array.for_all2 Float.equal off.Engine.betas on_.Engine.betas);
  Alcotest.(check bool)
    (msg ^ ": completions bit-identical") true
    (Array.for_all2 Float.equal off.Engine.completions on_.Engine.completions);
  Alcotest.(check bool)
    (msg ^ ": responses bit-identical") true
    (Array.for_all2 Float.equal off.Engine.responses on_.Engine.responses);
  Alcotest.(check bool)
    (msg ^ ": executions identical") true
    (off.Engine.executions = on_.Engine.executions);
  let s0 = off.Engine.stats and s1 = on_.Engine.stats in
  Alcotest.(check int) (msg ^ ": events") s0.Engine.events_processed
    s1.Engine.events_processed;
  Alcotest.(check int) (msg ^ ": reschedules") s0.Engine.reschedules
    s1.Engine.reschedules;
  Alcotest.(check int) (msg ^ ": remapped") s0.Engine.remapped_tasks
    s1.Engine.remapped_tasks;
  Alcotest.(check int) (msg ^ ": kills") s0.Engine.kills s1.Engine.kills;
  Alcotest.(check int) (msg ^ ": failures") s0.Engine.task_failures
    s1.Engine.task_failures;
  (* And the switch actually routed through the cache. *)
  Alcotest.(check int)
    (msg ^ ": scratch path counts no cache outcomes") 0
    (s0.Engine.alloc_hits + s0.Engine.alloc_rescales + s0.Engine.alloc_misses);
  Alcotest.(check bool)
    (msg ^ ": cached path observed requests") true
    (s1.Engine.alloc_hits + s1.Engine.alloc_rescales + s1.Engine.alloc_misses
    > 0)

let test_alloc_cache_transparent () =
  let platform = Grid5000.rennes () in
  let apps = workload 8 4242 ~mean:25. in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let off =
    Engine.run ~policy:(Policy.make ~alloc_cache:false strategy) platform apps
  in
  let on_ =
    Engine.run ~policy:(Policy.make ~alloc_cache:true strategy) platform apps
  in
  check_cache_transparent "poisson" off on_

let test_alloc_cache_transparent_faults () =
  (* Outages degrade the cap and kill attempts, transient failures with
     shrink_on_retry mutate allocations after the fact — every cache
     invalidation path fires on this stream. *)
  let platform = Grid5000.rennes () in
  let apps = workload 6 77 ~mean:20. in
  let scenario =
    Mcs_fault.Fault.generate ~seed:5 platform
      {
        Mcs_fault.Fault.default with
        Mcs_fault.Fault.mttf = 300.;
        mttr = 60.;
        task_fail_p = 0.15;
        horizon = 1500.;
      }
  in
  let faults =
    { Policy.default_faults with Policy.shrink_on_retry = true }
  in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let off =
    Engine.run ~faults:scenario
      ~policy:(Policy.make ~faults ~alloc_cache:false strategy)
      platform apps
  in
  let on_ =
    Engine.run ~faults:scenario
      ~policy:(Policy.make ~faults ~alloc_cache:true strategy)
      platform apps
  in
  Alcotest.(check bool)
    "scenario exercises faults" true
    (off.Engine.stats.Engine.kills > 0
    || off.Engine.stats.Engine.task_failures > 0);
  check_cache_transparent "faults" off on_

let suite =
  [
    ( "online.engine",
      [
        Alcotest.test_case "deterministic under a fixed seed" `Quick
          test_determinism;
        Alcotest.test_case "conservation after rescheduling" `Quick
          test_conservation;
        Alcotest.test_case "t=0 arrivals reproduce offline" `Quick
          test_offline_equivalence_at_zero;
        Alcotest.test_case "β never uses future arrivals" `Quick
          test_dynamic_beta_single_app_selfish;
        Alcotest.test_case "departures free resources" `Quick
          test_departure_frees_resources;
        Alcotest.test_case "event log ordering + JSON" `Quick
          test_event_log_ordering;
        Alcotest.test_case "replayable through lib/sim" `Quick test_replayable;
        Alcotest.test_case "alloc cache transparent (poisson)" `Quick
          test_alloc_cache_transparent;
        Alcotest.test_case "alloc cache transparent (faults)" `Quick
          test_alloc_cache_transparent_faults;
      ] );
  ]
