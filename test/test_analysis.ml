(* The static analyzer, tested the same way lib/check is: tiny inline
   sources seeded with one violation (or its clean twin) must produce
   exactly the expected rule codes, and the committed fixture files
   must keep flagging the exact rule their name claims. *)

module Analysis = Mcs_analysis.Analysis
module Finding = Mcs_analysis.Finding
module Rule = Mcs_analysis.Rule
module Source = Mcs_analysis.Source

let unit_of src =
  match Source.parse_string ~filename:"inline.ml" src with
  | Ok u -> u
  | Error e -> Alcotest.fail e

let findings src = Analysis.run [ unit_of src ]
let active_codes src =
  List.map (fun f -> Rule.code f.Finding.rule) (Finding.active (findings src))
let waived_codes src =
  List.map (fun f -> Rule.code f.Finding.rule) (Finding.waived (findings src))

let check_codes msg expected src =
  Alcotest.(check (list string)) msg expected (active_codes src)

(* --- LOCK001 ------------------------------------------------------- *)

let test_lock_guarded () =
  check_codes "unlocked write flags" [ "LOCK001" ]
    {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
      let bump t = t.n <- 1|};
  check_codes "protected access is clean" []
    {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
      let bump t = Mutex.protect t.lock @@ fun () -> t.n <- t.n + 1|};
  check_codes "lock/unlock bracket is clean" []
    {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
      let bump t =
        Mutex.lock t.lock;
        t.n <- t.n + 1;
        Mutex.unlock t.lock|};
  check_codes "[@@locked_by] seeds the callee's lockset" []
    {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
      let bump t = t.n <- t.n + 1 [@@locked_by lock]|};
  check_codes "guarded top-level binding" [ "LOCK001" ]
    {|let lock = Mutex.create ()
      let table : (int, int) Hashtbl.t = Hashtbl.create 8 [@@guarded_by lock]
      let peek k = Hashtbl.find_opt table k|};
  Alcotest.(check (list string))
    "[@no_lock_needed] waives, not hides"
    [ "LOCK001" ]
    (waived_codes
       {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
         let init t = (t.n <- 0) [@no_lock_needed]|})

let test_lock_guarded_none_active_when_waived () =
  check_codes "waived finding is not active" []
    {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
      let init t = (t.n <- 0) [@no_lock_needed]|}

(* --- LOCK002 ------------------------------------------------------- *)

let test_lock_order () =
  check_codes "reversed pair cycles" [ "LOCK002" ]
    {|let a = Mutex.create ()
      let b = Mutex.create ()
      let f () = Mutex.protect a @@ fun () -> Mutex.protect b @@ fun () -> ()
      let g () = Mutex.protect b @@ fun () -> Mutex.protect a @@ fun () -> ()|};
  check_codes "consistent order is clean" []
    {|let a = Mutex.create ()
      let b = Mutex.create ()
      let f () = Mutex.protect a @@ fun () -> Mutex.protect b @@ fun () -> ()
      let g () = Mutex.protect a @@ fun () -> Mutex.protect b @@ fun () -> ()|}

let test_lock_order_cross_unit () =
  (* The edge graph is global: each unit alone is acyclic. *)
  let u1 =
    unit_of
      {|let f (a, b) = Mutex.protect a @@ fun () ->
          Mutex.protect b @@ fun () -> ()|}
  in
  let u2 =
    unit_of
      {|let g (a, b) = Mutex.protect b @@ fun () ->
          Mutex.protect a @@ fun () -> ()|}
  in
  let codes =
    List.map (fun f -> Rule.code f.Finding.rule)
      (Finding.active (Analysis.run [ u1; u2 ]))
  in
  Alcotest.(check (list string)) "cross-unit cycle" [ "LOCK002" ] codes

(* --- LOCK003 ------------------------------------------------------- *)

let test_wait_loop () =
  check_codes "bare wait flags" [ "LOCK003" ]
    {|let take lock ready pending =
        Mutex.protect lock @@ fun () ->
        if !pending = 0 then Condition.wait ready lock;
        decr pending|};
  check_codes "while-loop wait is clean" []
    {|let take lock ready pending =
        Mutex.protect lock @@ fun () ->
        while !pending = 0 do Condition.wait ready lock done;
        decr pending|}

(* --- ESCAPE -------------------------------------------------------- *)

let test_escape_ref () =
  check_codes "captured ref write flags" [ "ESCAPE001" ]
    {|let f () =
        let hits = ref 0 in
        let d = Domain.spawn (fun () -> incr hits) in
        Domain.join d|};
  check_codes "closure-local ref is clean" []
    {|let f () =
        let d = Domain.spawn (fun () -> let n = ref 0 in incr n; !n) in
        Domain.join d|};
  check_codes "Atomic.incr is not bare incr" []
    {|let f () =
        let hits = Atomic.make 0 in
        let d = Domain.spawn (fun () -> Atomic.incr hits) in
        Domain.join d|};
  check_codes "setfield through capture flags" [ "ESCAPE001" ]
    {|type s = { mutable v : int }
      let f cell = Domain.join (Domain.spawn (fun () -> cell.v <- 1))|};
  Alcotest.(check (list string))
    "[@domain_local] waives" [ "ESCAPE002" ]
    (waived_codes
       {|let f results =
           Domain.join
             (Domain.spawn (fun () -> (results.(0) <- 1) [@domain_local]))|})

let test_escape_container () =
  check_codes "captured Hashtbl write flags" [ "ESCAPE002" ]
    {|let f table =
        Domain.join (Domain.spawn (fun () -> Hashtbl.replace table 1 2))|};
  check_codes "Mutex.protect guards the write" []
    {|let f lock table =
        Domain.join
          (Domain.spawn (fun () ->
             Mutex.protect lock @@ fun () -> Hashtbl.replace table 1 2))|};
  check_codes "named worker binding is resolved" [ "ESCAPE002" ]
    {|let f table =
        let worker () = Hashtbl.replace table 1 2 in
        Domain.join (Domain.spawn worker)|};
  check_codes "Parmap.map closures count as spawned" [ "ESCAPE001" ]
    {|let f items =
        let acc = ref 0 in
        Parmap.map (fun x -> acc := !acc + x; x) items|}

(* --- ATOM ---------------------------------------------------------- *)

let test_atom_rmw () =
  check_codes "get+set flags" [ "ATOM001" ]
    {|let g = Atomic.make 0
      let bump () = Atomic.set g (Atomic.get g + 1)|};
  check_codes "CAS loop is clean" []
    {|let g = Atomic.make 0.
      let rec add d =
        let v = Atomic.get g in
        if not (Atomic.compare_and_set g v (v +. d)) then add d|};
  check_codes "plain init set is clean" []
    {|let g = Atomic.make 0
      let reset () = Atomic.set g 0
      let peek () = Atomic.get g|};
  Alcotest.(check (list string))
    "[@@atomic_ok] waives the binding" [ "ATOM001" ]
    (waived_codes
       {|let g = Atomic.make 0
         let bump () = Atomic.set g (Atomic.get g + 1) [@@atomic_ok]|})

(* --- determinism --------------------------------------------------- *)

let test_deterministic_output () =
  let src =
    {|type t = { lock : Mutex.t; mutable n : int [@guarded_by lock] }
      let a t = t.n <- 1
      let b t = t.n <- 2
      let g = Atomic.make 0
      let c () = Atomic.set g (Atomic.get g + 1)|}
  in
  let r1 = List.map Finding.to_string (findings src) in
  let r2 = List.map Finding.to_string (findings src) in
  Alcotest.(check (list string)) "two runs identical" r1 r2;
  let rec adjacent_sorted = function
    | a :: (b :: _ as rest) ->
      Finding.compare a b <= 0 && adjacent_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by position" true
    (adjacent_sorted (findings src))

(* --- committed fixtures ------------------------------------------- *)

let fixture_expectations =
  [
    ("fixtures/race_lock_unguarded.ml", "LOCK001");
    ("fixtures/race_lock_order.ml", "LOCK002");
    ("fixtures/race_wait_no_loop.ml", "LOCK003");
    ("fixtures/race_escape_ref.ml", "ESCAPE001");
    ("fixtures/race_escape_table.ml", "ESCAPE002");
    ("fixtures/race_atomic_rmw.ml", "ATOM001");
  ]

let test_fixtures () =
  List.iter
    (fun (path, code) ->
      let report = Analysis.over_paths ~prefer_cmt:false [ path ] in
      Alcotest.(check (list string)) (path ^ " load errors") []
        (List.map snd report.Analysis.errors);
      let codes =
        List.sort_uniq compare
          (List.map
             (fun f -> Rule.code f.Finding.rule)
             (Finding.active report.Analysis.findings))
      in
      Alcotest.(check (list string)) path [ code ] codes)
    fixture_expectations

let test_registry () =
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        (Rule.code r ^ " roundtrips by code")
        (Some (Rule.code r))
        (Option.map Rule.code (Rule.of_code (Rule.code r)));
      Alcotest.(check (option string))
        (Rule.id r ^ " roundtrips by id")
        (Some (Rule.id r))
        (Option.map Rule.id (Rule.of_id (Rule.id r))))
    Rule.all;
  Alcotest.(check int) "six rules" 6 (List.length Rule.all)

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "LOCK001 guarded fields" `Quick test_lock_guarded;
        Alcotest.test_case "LOCK001 waiver deactivates" `Quick
          test_lock_guarded_none_active_when_waived;
        Alcotest.test_case "LOCK002 lock order" `Quick test_lock_order;
        Alcotest.test_case "LOCK002 cross-unit" `Quick
          test_lock_order_cross_unit;
        Alcotest.test_case "LOCK003 wait loop" `Quick test_wait_loop;
        Alcotest.test_case "ESCAPE001 captured refs" `Quick test_escape_ref;
        Alcotest.test_case "ESCAPE002 captured containers" `Quick
          test_escape_container;
        Alcotest.test_case "ATOM001 get+set" `Quick test_atom_rmw;
        Alcotest.test_case "deterministic output" `Quick
          test_deterministic_output;
        Alcotest.test_case "seeded fixtures flag their rule" `Quick
          test_fixtures;
        Alcotest.test_case "rule registry roundtrips" `Quick test_registry;
      ] );
  ]
