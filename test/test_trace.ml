module Grid5000 = Mcs_platform.Grid5000
module Prng = Mcs_prng.Prng
open Mcs_sched

let schedules () =
  let platform = Grid5000.lille () in
  let rng = Prng.create ~seed:12 in
  let ptgs =
    List.init 2 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform ptgs

let count_char c s =
  String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 s

let test_csv_rows () =
  let scheds = schedules () in
  let csv = Trace.to_csv scheds in
  let expected_rows =
    List.fold_left
      (fun acc s ->
        acc + Mcs_dag.Dag.node_count s.Schedule.ptg.Mcs_ptg.Ptg.dag)
      0 scheds
  in
  (* header + one line per placement *)
  Alcotest.(check int) "row count" (expected_rows + 1) (count_char '\n' csv);
  Alcotest.(check bool) "has header" true
    (String.length csv > 3 && String.sub csv 0 3 = "app")

let test_csv_cells_parse () =
  let csv = Trace.to_csv (schedules ()) in
  let lines = String.split_on_char '\n' csv in
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then begin
        let cells = String.split_on_char ',' line in
        Alcotest.(check int) "9 cells" 9 (List.length cells);
        let start = float_of_string (List.nth cells 7) in
        let finish = float_of_string (List.nth cells 8) in
        Alcotest.(check bool) "finish >= start" true (finish >= start)
      end)
    lines

let test_json_balanced_and_parsable_shape () =
  let json = Trace.to_json (schedules ()) in
  Alcotest.(check int) "braces balanced" (count_char '{' json)
    (count_char '}' json);
  Alcotest.(check int) "brackets balanced" (count_char '[' json)
    (count_char ']' json);
  Alcotest.(check bool) "top-level object" true
    (json.[0] = '{' && json.[String.length json - 1] = '}')

let test_json_escaping () =
  (* A PTG name with quotes must be escaped. *)
  let platform = Grid5000.lille () in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"we\"ird\\name"
      ~tasks:
        [|
          Mcs_taskmodel.Task.make ~data:1e7 ~complexity:Matmul ~alpha:0.1;
        |]
      ~edges:[]
  in
  let sched = Pipeline.schedule_alone platform ptg in
  let json = Trace.to_json [ sched ] in
  let contains sub =
    let n = String.length sub in
    let rec loop i =
      i + n <= String.length json && (String.sub json i n = sub || loop (i + 1))
    in
    loop 0
  in
  Alcotest.(check bool) "escaped quote" true (contains "we\\\"ird\\\\name")

let contains_sub hay sub =
  let n = String.length sub in
  let rec loop i =
    i + n <= String.length hay && (String.sub hay i n = sub || loop (i + 1))
  in
  loop 0

let test_release_column () =
  (* Staggered releases append a CSV column and a JSON field; all-zero
     (or absent) releases keep the historical shape byte-for-byte. *)
  let scheds = schedules () in
  let csv = Trace.to_csv ~release:[| 0.; 42.5 |] scheds in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check bool) "header gains release" true
    (contains_sub (List.hd lines) ",release");
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then begin
        let cells = String.split_on_char ',' line in
        Alcotest.(check int) "10 cells" 10 (List.length cells);
        let app = int_of_string (List.nth cells 0) in
        Alcotest.(check (float 0.)) "release cell"
          (if app = 0 then 0. else 42.5)
          (float_of_string (List.nth cells 9))
      end)
    lines;
  let json = Trace.to_json ~release:[| 0.; 42.5 |] scheds in
  Alcotest.(check bool) "json release field" true
    (contains_sub json "\"release\":42.5");
  Alcotest.(check string) "all-zero release keeps csv shape"
    (Trace.to_csv scheds)
    (Trace.to_csv ~release:[| 0.; 0. |] scheds);
  Alcotest.(check string) "all-zero release keeps json shape"
    (Trace.to_json scheds)
    (Trace.to_json ~release:[| 0.; 0. |] scheds);
  Alcotest.check_raises "wrong length rejected"
    (Invalid_argument "Trace: release length differs from schedules")
    (fun () -> ignore (Trace.to_csv ~release:[| 0. |] scheds))

let suite =
  [
    ( "sched.trace",
      [
        Alcotest.test_case "csv rows" `Quick test_csv_rows;
        Alcotest.test_case "csv cells" `Quick test_csv_cells_parse;
        Alcotest.test_case "json shape" `Quick
          test_json_balanced_and_parsable_shape;
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "release export" `Quick test_release_column;
      ] );
  ]
