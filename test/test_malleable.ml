(* Malleable execution: the resize model, the engine's grow/shrink
   path, the off-switch bit-identity guarantee, and the shrink-kernel
   gating regression (shrink must follow the kernel, not fault mode). *)

module Grid5000 = Mcs_platform.Grid5000
module Platform = Mcs_platform.Platform
module Prng = Mcs_prng.Prng
module Ptg = Mcs_ptg.Ptg
module Builder = Mcs_ptg.Builder
module Task = Mcs_taskmodel.Task
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Malleability = Mcs_sched.Malleability
open Mcs_online

let random_ptgs n seed =
  let rng = Prng.create ~seed in
  List.init n (fun id ->
      Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)

let poisson_releases n seed ~mean =
  let rng = Prng.create ~seed in
  let clock = ref 0. in
  List.init n (fun i ->
      if i = 0 then 0.
      else begin
        clock := !clock +. Prng.exponential rng ~mean;
        !clock
      end)

let workload n seed ~mean =
  List.combine (random_ptgs n seed) (poisson_releases n (seed + 1) ~mean)

let fault_scenario_for platform seed =
  Mcs_fault.Fault.generate ~seed platform
    {
      Mcs_fault.Fault.default with
      Mcs_fault.Fault.mttf = 400.;
      mttr = 60.;
      task_fail_p = 0.1;
      horizon = 1500.;
    }

(* One full run to quiescence: the JSONL log plus the result. *)
let run_logged ?faults ?check ~kernel platform apps =
  let logs = ref [] in
  let log e = logs := Log.to_json e :: !logs in
  let s =
    Engine.create ~log ?faults ?check ~kernel
      ~policy:kernel.Policy_kernel.policy platform apps
  in
  Engine.advance s;
  (List.rev !logs, Engine.result s)

(* Same run interrupted at [split]: snapshot, abandon, finish on the
   restore. *)
let run_split ?faults ?check ~kernel ~split platform apps =
  let logs = ref [] in
  let log e = logs := Log.to_json e :: !logs in
  let s =
    Engine.create ~log ?faults ?check ~kernel
      ~policy:kernel.Policy_kernel.policy platform apps
  in
  Engine.advance ~upto:split s;
  let s' = Engine.restore ~log ?check (Engine.snapshot s) in
  Engine.advance s';
  (List.rev !logs, Engine.result s')

let same_outcome (l0, r0) (l1, r1) =
  l0 = l1
  && Array.for_all2 Float.equal r0.Engine.completions r1.Engine.completions
  && r0.Engine.executions = r1.Engine.executions

(* ---------- The model itself ---------- *)

let test_model_validation () =
  Malleability.validate Malleability.default;
  let raises m =
    try
      Malleability.validate m;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero quantum" true
    (raises { Malleability.default with Malleability.quantum = 0. });
  Alcotest.(check bool) "nan quantum" true
    (raises { Malleability.default with Malleability.quantum = Float.nan });
  Alcotest.(check bool) "negative cost" true
    (raises { Malleability.default with Malleability.redist_cost = -1. });
  Alcotest.(check bool) "zero min width" true
    (raises { Malleability.default with Malleability.min_width = 0 });
  Alcotest.(check bool) "max below min" true
    (raises
       { Malleability.default with Malleability.min_width = 4; max_width = 2 });
  Alcotest.(check bool) "negative threshold" true
    (raises
       { Malleability.default with Malleability.shrink_active_above = -1 })

let test_model_grid_and_targets () =
  let m = { Malleability.default with Malleability.quantum = 30. } in
  let check_float = Alcotest.(check (float 1e-9)) in
  (* The next point is strictly in the future, on the segment's grid. *)
  check_float "at start" 30. (Malleability.next_resize_point m ~start:0. ~now:0.);
  check_float "mid-quantum" 30.
    (Malleability.next_resize_point m ~start:0. ~now:15.);
  check_float "on the grid" 60.
    (Malleability.next_resize_point m ~start:0. ~now:30.);
  check_float "offset start" 35.
    (Malleability.next_resize_point m ~start:5. ~now:20.);
  check_float "cost per moved" 0.25
    (Malleability.resize_cost
       { m with Malleability.redist_cost = 0.05 }
       ~moved:5);
  (* Threshold targets: spike shrinks by halving, drain doubles,
     in-between leaves the width alone; everything clamps. *)
  let m =
    {
      m with
      Malleability.shrink_active_above = 2;
      grow_active_below = 2;
      min_width = 2;
      max_width = 12;
    }
  in
  Alcotest.(check int) "spike halves" 4
    (Malleability.target_width m ~active:5 ~width:8 ~cap:16);
  Alcotest.(check int) "halving floors at min_width" 2
    (Malleability.target_width m ~active:5 ~width:3 ~cap:16);
  Alcotest.(check int) "drain doubles" 8
    (Malleability.target_width m ~active:1 ~width:4 ~cap:16);
  Alcotest.(check int) "growth clamps to cap" 5
    (Malleability.target_width m ~active:1 ~width:4 ~cap:5);
  Alcotest.(check int) "growth clamps to max_width" 12
    (Malleability.target_width m ~active:1 ~width:8 ~cap:16);
  Alcotest.(check int) "steady width untouched" 6
    (Malleability.target_width m ~active:2 ~width:6 ~cap:16)

(* ---------- Off-switch bit-identity (satellite: differential) ---------- *)

(* A malleability model that can never act: its grid points all lie
   beyond any finish. The engine must not even arm an opportunity. *)
let inert_model = { Malleability.default with Malleability.quantum = 1e9 }

(* A model whose grid fires constantly but whose thresholds never
   trigger: every opportunity is declined. The event stream gains
   resize pops, the log must not change at all. *)
let declined_model =
  {
    Malleability.default with
    Malleability.quantum = 20.;
    shrink_active_above = max_int;
    grow_active_below = 0;
  }

let kernel_with ?malleability strategy =
  Policy_kernel.default (Policy.make ?malleability strategy)

let test_disabled_is_bit_identical () =
  let platform = Grid5000.rennes () in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let apps = workload 6 42 ~mean:25. in
  let off = run_logged ~kernel:(kernel_with strategy) platform apps in
  List.iter
    (fun (name, m) ->
      let on_ = run_logged ~kernel:(kernel_with ~malleability:m strategy) platform apps in
      Alcotest.(check bool)
        (name ^ " model leaves the run bit-identical")
        true (same_outcome off on_);
      Alcotest.(check int) (name ^ ": zero resizes") 0
        (snd on_).Engine.stats.Engine.resizes)
    [ ("inert", inert_model); ("declined", declined_model) ]

let test_disabled_is_bit_identical_faults () =
  let platform = Grid5000.rennes () in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let apps = workload 6 77 ~mean:20. in
  let faults = fault_scenario_for platform 5 in
  let off = run_logged ~faults ~kernel:(kernel_with strategy) platform apps in
  Alcotest.(check bool)
    "scenario exercises faults" true
    ((snd off).Engine.stats.Engine.kills > 0
    || (snd off).Engine.stats.Engine.task_failures > 0);
  let on_ =
    run_logged ~faults
      ~kernel:(kernel_with ~malleability:inert_model strategy)
      platform apps
  in
  Alcotest.(check bool)
    "faulted run bit-identical with the inert model" true
    (same_outcome off on_)

let test_disabled_is_bit_identical_snapshot () =
  (* The snapshot round-trip must not perturb the disabled run either:
     plain-off, split-off and split-with-inert-model all coincide. *)
  let platform = Grid5000.rennes () in
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let apps = workload 6 21 ~mean:25. in
  let off = run_logged ~kernel:(kernel_with strategy) platform apps in
  List.iter
    (fun split ->
      Alcotest.(check bool) "split off-run identical" true
        (same_outcome off
           (run_split ~kernel:(kernel_with strategy) ~split platform apps));
      Alcotest.(check bool) "split inert-model run identical" true
        (same_outcome off
           (run_split
              ~kernel:(kernel_with ~malleability:inert_model strategy)
              ~split platform apps)))
    [ 40.; 90. ]

(* ---------- A run that actually resizes ---------- *)

(* Drain scenario: one long single-task application plus a pack of
   short ones, all released together. Under ES everybody starts narrow;
   the short applications depart quickly, the survivor's running task
   is grown at the next resize points. *)
let drain_apps () =
  let solo id seconds =
    ( Builder.build ~id ~name:(Printf.sprintf "app%d" id)
        ~tasks:
          [|
            Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.)
              ~alpha:0.;
          |]
        ~edges:[],
      0. )
  in
  solo 0 600. :: List.init 4 (fun i -> solo (i + 1) 20.)

let drain_platform () =
  Platform.make ~name:"uni16"
    [ { Platform.cluster_name = "c"; procs = 16; gflops = 1.; switch = 0 } ]

let grow_model =
  {
    Malleability.default with
    Malleability.quantum = 10.;
    redist_cost = 0.05;
    grow_active_below = 2;
    shrink_active_above = 1000;
  }

let test_grow_on_drain_beats_moldable () =
  let platform = drain_platform () in
  let apps = drain_apps () in
  let errors = ref 0 in
  let check ds =
    errors := !errors + List.length (Mcs_check.Diagnostic.errors ds)
  in
  let moldable =
    run_logged ~check ~kernel:(kernel_with Strategy.Equal_share) platform apps
  in
  let malleable =
    run_logged ~check
      ~kernel:(kernel_with ~malleability:grow_model Strategy.Equal_share)
      platform apps
  in
  let makespan (_, r) =
    Array.fold_left Float.max 0. r.Engine.completions
  in
  Alcotest.(check bool) "malleable run resizes" true
    ((snd malleable).Engine.stats.Engine.resizes > 0);
  Alcotest.(check int) "both runs checker-clean (MAL included)" 0 !errors;
  Alcotest.(check bool)
    (Printf.sprintf "malleable makespan %g beats moldable %g"
       (makespan malleable) (makespan moldable))
    true
    (makespan malleable < makespan moldable);
  (* The resize trail is externally observable and well-formed. *)
  let resized_lines =
    List.filter
      (fun l ->
        String.length l > 20
        && String.sub l 0 20 = {|{"event":"task_resiz|})
      (fst malleable)
  in
  Alcotest.(check int) "one log line per resize"
    (snd malleable).Engine.stats.Engine.resizes
    (List.length resized_lines);
  (* Final schedules remain structurally valid (precedence, clusters,
     cross-application processor exclusivity). *)
  match Schedule.validate ~platform (snd malleable).Engine.schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message

let test_shrink_on_spike () =
  (* The mirror scenario: a lone wide application is joined by a burst
     of arrivals; its running task shrinks at the next resize point and
     the freed processors host the newcomers. *)
  let platform = drain_platform () in
  let solo id seconds release =
    ( Builder.build ~id ~name:(Printf.sprintf "app%d" id)
        ~tasks:
          [|
            Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.)
              ~alpha:0.;
          |]
        ~edges:[],
      release )
  in
  let apps =
    solo 0 600. 0. :: List.init 4 (fun i -> solo (i + 1) 40. 5.)
  in
  let model =
    {
      Malleability.default with
      Malleability.quantum = 10.;
      shrink_active_above = 2;
      grow_active_below = 0;
    }
  in
  let errors = ref 0 in
  let check ds =
    errors := !errors + List.length (Mcs_check.Diagnostic.errors ds)
  in
  let _, r =
    run_logged ~check
      ~kernel:(kernel_with ~malleability:model Strategy.Equal_share)
      platform apps
  in
  Alcotest.(check bool) "spike shrinks the running task" true
    (r.Engine.stats.Engine.resizes > 0);
  Alcotest.(check int) "checker-clean" 0 !errors;
  let shrank =
    List.exists
      (fun e ->
        e.Mcs_check.Fault_check.outcome = Mcs_check.Fault_check.Resized)
      r.Engine.executions
  in
  Alcotest.(check bool) "a resized segment is recorded" true shrank

let test_malleable_snapshot_restore () =
  (* Snapshot/restore transparency with malleability ON: armed resize
     opportunities survive the round-trip. *)
  let platform = drain_platform () in
  let apps = drain_apps () in
  let kernel = kernel_with ~malleability:grow_model Strategy.Equal_share in
  let plain = run_logged ~kernel platform apps in
  Alcotest.(check bool) "run resizes" true
    ((snd plain).Engine.stats.Engine.resizes > 0);
  List.iter
    (fun split ->
      Alcotest.(check bool)
        (Printf.sprintf "malleable split at %g is bit-identical" split)
        true
        (same_outcome plain (run_split ~kernel ~split platform apps)))
    [ 5.; 15.; 35.; 100. ]

let test_malleable_faulted_checker_clean () =
  (* Malleability and fault injection together: resized segments can be
     killed and retried; the combined run stays audit-clean under both
     the FAULT and MAL rule families. *)
  let platform = Grid5000.rennes () in
  let apps = workload 6 77 ~mean:20. in
  let faults = fault_scenario_for platform 5 in
  let model =
    {
      Malleability.default with
      Malleability.quantum = 15.;
      grow_active_below = 3;
      shrink_active_above = 3;
    }
  in
  let errors = ref [] in
  let check ds = errors := Mcs_check.Diagnostic.errors ds @ !errors in
  let _, r =
    run_logged ~faults ~check
      ~kernel:
        (kernel_with ~malleability:model
           (Strategy.Weighted (Strategy.Work, 0.7)))
      platform apps
  in
  Alcotest.(check bool) "faults exercised" true
    (r.Engine.stats.Engine.kills > 0 || r.Engine.stats.Engine.task_failures > 0);
  Alcotest.(check int) "no checker errors" 0 (List.length !errors)

let test_custom_resize_kernel () =
  (* The kernel closure overrides the model's thresholds: a kernel that
     always grows to the cap beats the default trigger to it. *)
  let platform = drain_platform () in
  let apps = drain_apps () in
  let widths = ref [] in
  let base = Policy.make ~malleability:grow_model Strategy.Equal_share in
  let kernel =
    Policy_kernel.make ~name:"grow-to-cap"
      ~resize:(fun ~active:_ ~width ~cap ->
        if cap > width then cap else width)
      base
  in
  let log = function
    | Log.Task_resized { to_width; _ } -> widths := to_width :: !widths
    | _ -> ()
  in
  let s = Engine.create ~log ~kernel ~policy:base platform apps in
  Engine.advance s;
  let r = Engine.result s in
  Alcotest.(check bool) "kernel resizes" true
    (r.Engine.stats.Engine.resizes > 0);
  (* The default doubling trigger would pass through width 2·w < 16;
     grow-to-cap jumps straight to every idle processor. *)
  Alcotest.(check bool) "first resize grabs the whole idle pool" true
    (match List.rev !widths with w :: _ -> w > 8 | [] -> false)

(* ---------- Shrink-kernel gating (satellite: bugfix) ---------- *)

let test_shrink_kernel_without_fault_mode () =
  (* Regression: the engine applied a kernel's shrink closure only under
     fault injection. A custom kernel shrinking on its own signal (here:
     unconditionally) must take effect in a fault-free run too. *)
  let platform = Grid5000.rennes () in
  let apps = workload 5 42 ~mean:25. in
  let policy = Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let plain = run_logged ~kernel:(Policy_kernel.default policy) platform apps in
  let halving =
    run_logged
      ~kernel:
        (Policy_kernel.make ~name:"always-halve"
           ~shrink:(fun ~failures:_ ~procs -> max 1 (procs / 2))
           policy)
      platform apps
  in
  Alcotest.(check bool)
    "unconditional shrink changes a fault-free run" false
    (same_outcome plain halving);
  (* And the reason the fix is safe: the registry's shrink-retry kernel
     is the identity at zero failures, so it never was (and still is
     not) observable without faults. *)
  let registry =
    run_logged
      ~kernel:(Policy_kernel.of_name "shrink-retry" ~base:policy)
      platform apps
  in
  Alcotest.(check bool)
    "shrink-retry is bit-identical fault-free" true
    (same_outcome plain registry)

let suite =
  [
    ( "online.malleable",
      [
        Alcotest.test_case "model validation" `Quick test_model_validation;
        Alcotest.test_case "resize grid & threshold targets" `Quick
          test_model_grid_and_targets;
        Alcotest.test_case "disabled ⇒ bit-identical" `Quick
          test_disabled_is_bit_identical;
        Alcotest.test_case "disabled ⇒ bit-identical (faults)" `Quick
          test_disabled_is_bit_identical_faults;
        Alcotest.test_case "disabled ⇒ bit-identical (snapshot)" `Quick
          test_disabled_is_bit_identical_snapshot;
        Alcotest.test_case "grow on drain beats moldable" `Quick
          test_grow_on_drain_beats_moldable;
        Alcotest.test_case "shrink on arrival spike" `Quick
          test_shrink_on_spike;
        Alcotest.test_case "snapshot/restore with malleability on" `Quick
          test_malleable_snapshot_restore;
        Alcotest.test_case "malleable + faults checker-clean" `Quick
          test_malleable_faulted_checker_clean;
        Alcotest.test_case "custom resize kernel" `Quick
          test_custom_resize_kernel;
        Alcotest.test_case "shrink kernel acts without fault mode" `Quick
          test_shrink_kernel_without_fault_mode;
      ] );
  ]
