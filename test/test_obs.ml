open Mcs_obs
module Jsonx = Mcs_util.Jsonx

let test_span_nesting () =
  Obs.enable ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> Unix.sleepf 0.002);
      Unix.sleepf 0.002);
  Obs.disable ();
  match Obs.spans () with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner completes first" "inner" inner.Obs.name;
    Alcotest.(check string) "outer completes last" "outer" outer.Obs.name;
    Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
    Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
    Alcotest.(check bool) "inner starts within outer" true
      (inner.Obs.start_s >= outer.Obs.start_s -. 1e-9);
    Alcotest.(check bool) "inner shorter than outer" true
      (inner.Obs.dur_s <= outer.Obs.dur_s +. 1e-9);
    Alcotest.(check bool) "outer self time excludes inner" true
      (outer.Obs.self_s <= outer.Obs.dur_s -. inner.Obs.dur_s +. 1e-9);
    Alcotest.(check bool) "self time positive" true (outer.Obs.self_s > 0.)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

exception Boom

let test_span_exception_safe () =
  Obs.enable ();
  (try Obs.with_span "failing" (fun () -> raise Boom) with Boom -> ());
  Obs.disable ();
  match Obs.spans () with
  | [ s ] -> Alcotest.(check string) "recorded" "failing" s.Obs.name
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_counter_monotonic () =
  Obs.enable ();
  let c = Obs.counter "test.count" in
  Alcotest.(check int) "zeroed by enable" 0 (Obs.value c);
  let prev = ref 0 in
  for _ = 1 to 100 do
    Obs.incr c;
    Alcotest.(check bool) "never decreases" true (Obs.value c > !prev);
    prev := Obs.value c
  done;
  Obs.incr ~by:5 c;
  Alcotest.(check int) "incr by" 105 (Obs.value c);
  Obs.record_max c 50;
  Alcotest.(check int) "record_max below keeps value" 105 (Obs.value c);
  Obs.record_max c 200;
  Alcotest.(check int) "record_max above raises value" 200 (Obs.value c);
  Alcotest.(check bool) "interned" true (c == Obs.counter "test.count");
  Alcotest.(check bool) "listed" true
    (List.mem_assoc "test.count" (Obs.counter_values ()));
  Obs.disable ();
  Obs.incr c;
  Alcotest.(check int) "incr is a no-op when disabled" 200 (Obs.value c)

let test_disabled_records_nothing () =
  Obs.enable ();
  Obs.disable ();
  let c = Obs.counter "test.disabled" in
  Obs.enter "dropped";
  Obs.incr c;
  Obs.leave ();
  ignore (Obs.with_span "dropped-too" (fun () -> 42));
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "no counts" 0 (Obs.value c)

(* The disabled probes must not allocate: this is what makes it safe to
   leave them on the mapper's per-candidate hot path. 10k iterations of
   the full probe set should stay within noise of zero minor words. *)
let test_disabled_probes_allocation_free () =
  Obs.enable ();
  Obs.disable ();
  let c = Obs.counter "test.hot" in
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.enter "hot";
    Obs.incr c;
    Obs.record_max c 3;
    Obs.leave ()
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f minor words over 10k probes" dw)
    true (dw < 1_000.)

(* Scheduling with the recorder disabled must leave it empty: the
   instrumented pipeline records only when explicitly enabled. *)
let test_mapper_disabled_no_spans () =
  Obs.enable ();
  Obs.disable ();
  let platform = Mcs_platform.Grid5000.rennes () in
  let rng = Mcs_prng.Prng.create ~seed:3 in
  let ptgs =
    List.init 2 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  ignore
    (Mcs_sched.Pipeline.schedule_concurrent
       ~strategy:Mcs_sched.Strategy.Equal_share platform ptgs);
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "no tasks counted" 0
    (Obs.value (Obs.counter "mapper.tasks_mapped"))

let test_mapper_enabled_records_phases () =
  let platform = Mcs_platform.Grid5000.rennes () in
  let rng = Mcs_prng.Prng.create ~seed:3 in
  let ptgs =
    List.init 2 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  Obs.enable ();
  ignore
    (Mcs_sched.Pipeline.schedule_concurrent
       ~strategy:Mcs_sched.Strategy.Equal_share platform ptgs);
  Obs.disable ();
  let names = List.map (fun s -> s.Obs.name) (Obs.spans ()) in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " recorded") true (List.mem phase names))
    [ "pipeline.schedule"; "pipeline.allocation"; "alloc.scrap";
      "mapper.run"; "mapper.prepare"; "mapper.place" ];
  Alcotest.(check bool) "tasks counted" true
    (Obs.value (Obs.counter "mapper.tasks_mapped") > 0)

let test_chrome_round_trip () =
  Obs.enable ();
  Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ()));
  Obs.incr ~by:3 (Obs.counter "test.rt");
  Obs.disable ();
  match Jsonx.parse (Export.chrome ()) with
  | Error m -> Alcotest.failf "chrome export does not parse: %s" m
  | Ok doc ->
    Alcotest.(check (option string)) "time unit" (Some "ms")
      (Jsonx.get_string "displayTimeUnit" doc);
    let events =
      match Jsonx.get_list "traceEvents" doc with
      | Some l -> l
      | None -> Alcotest.fail "no traceEvents"
    in
    let of_phase ph =
      List.filter
        (fun e -> Jsonx.get_string "ph" e = Some ph)
        events
    in
    let span_names =
      List.filter_map (Jsonx.get_string "name") (of_phase "X")
    in
    Alcotest.(check (list string)) "complete events" [ "b"; "a" ] span_names;
    match of_phase "C" with
    | [ counter ] ->
      Alcotest.(check (option string)) "counter name" (Some "test.rt")
        (Jsonx.get_string "name" counter);
      Alcotest.(check (option int)) "counter value" (Some 3)
        (Option.bind (Jsonx.member "args" counter) (Jsonx.get_int "value"))
    | l -> Alcotest.failf "expected 1 counter event, got %d" (List.length l)

let test_names_registry () =
  let no_dups l =
    List.length (List.sort_uniq compare l) = List.length l
  in
  Alcotest.(check bool) "phase names unique" true (no_dups Names.phase_names);
  Alcotest.(check bool) "counter names unique" true
    (no_dups Names.counter_names);
  List.iter
    (fun n ->
      match Names.describe n with
      | Some d -> Alcotest.(check bool) (n ^ " described") true (d <> "")
      | None -> Alcotest.failf "%s not described" n)
    (Names.phase_names @ Names.counter_names);
  Alcotest.(check (option string)) "unknown name" None
    (Names.describe "no.such.phase")

(* Counters are shared across domains (Atomic): concurrent increments
   must not lose updates and record_max must converge to the true
   maximum whatever the interleaving. *)
let test_counter_cross_domain () =
  Obs.enable ();
  let c = Obs.counter "test.parallel" in
  let m = Obs.counter "test.parallel_max" in
  let domains =
    Array.init 4 (fun k ->
        Domain.spawn (fun () ->
            for i = 1 to 10_000 do
              Obs.incr c;
              Obs.record_max m ((k * 10_000) + i)
            done))
  in
  Array.iter Domain.join domains;
  Obs.disable ();
  Alcotest.(check int) "no lost increments" 40_000 (Obs.value c);
  Alcotest.(check int) "record_max converges" 40_000 (Obs.value m)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting and ordering" `Quick
          test_span_nesting;
        Alcotest.test_case "counters domain-safe" `Quick
          test_counter_cross_domain;
        Alcotest.test_case "span survives exceptions" `Quick
          test_span_exception_safe;
        Alcotest.test_case "counter monotonicity" `Quick
          test_counter_monotonic;
        Alcotest.test_case "disabled sink records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "disabled probes allocation-free" `Quick
          test_disabled_probes_allocation_free;
        Alcotest.test_case "mapper silent when disabled" `Quick
          test_mapper_disabled_no_spans;
        Alcotest.test_case "mapper phases when enabled" `Quick
          test_mapper_enabled_records_phases;
        Alcotest.test_case "chrome JSON round-trip" `Quick
          test_chrome_round_trip;
        Alcotest.test_case "names registry" `Quick test_names_registry;
      ] );
  ]
