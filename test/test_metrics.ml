open Mcs_metrics

let check_float = Alcotest.(check (float 1e-9))

let test_slowdown () =
  check_float "no perturbation" 1. (Metrics.slowdown ~own:10. ~multi:10.);
  check_float "5x delay" 0.2 (Metrics.slowdown ~own:10. ~multi:50.);
  (* Degenerate makespans saturate to the neutral 1 instead of raising:
     one empty-PTG draw must not abort a whole sweep. *)
  check_float "zero own saturates" 1. (Metrics.slowdown ~own:0. ~multi:1.);
  check_float "zero multi saturates" 1. (Metrics.slowdown ~own:1. ~multi:0.);
  check_float "nan saturates" 1. (Metrics.slowdown ~own:Float.nan ~multi:1.);
  check_float "inf saturates" 1.
    (Metrics.slowdown ~own:Float.infinity ~multi:1.)

let test_degenerate_apps_skipped () =
  (* A degenerate application is skipped, leaving the others' dispersion
     untouched... *)
  let own = [| 10.; 10.; 0. |] and multi = [| 20.; 40.; 30. |] in
  check_float "degenerate app skipped" 0.25
    (Metrics.unfairness_of_makespans ~own ~multi);
  (* ...and an all-degenerate population is (vacuously) fair. *)
  check_float "all degenerate" 0.
    (Metrics.unfairness_of_makespans ~own:[| 0.; Float.nan |]
       ~multi:[| 1.; 1. |]);
  check_float "empty is fair" 0. (Metrics.unfairness [||])

let test_all_degenerate_saturates () =
  (* Regression: every shape of an all-degenerate population must
     saturate to exactly 0.0 — never NaN, never an exception — so one
     pathological draw cannot poison a sweep's aggregate. *)
  check_float "empty arrays" 0.
    (Metrics.unfairness_of_makespans ~own:[||] ~multi:[||]);
  check_float "all zero own" 0.
    (Metrics.unfairness_of_makespans ~own:[| 0.; 0.; 0. |]
       ~multi:[| 1.; 2.; 3. |]);
  check_float "all zero multi" 0.
    (Metrics.unfairness_of_makespans ~own:[| 1.; 2. |] ~multi:[| 0.; 0. |]);
  check_float "all nan" 0.
    (Metrics.unfairness_of_makespans
       ~own:[| Float.nan; Float.nan |]
       ~multi:[| Float.nan; Float.nan |]);
  check_float "all infinite" 0.
    (Metrics.unfairness_of_makespans
       ~own:[| Float.infinity; Float.neg_infinity |]
       ~multi:[| 1.; 1. |]);
  check_float "mixed degeneracies" 0.
    (Metrics.unfairness_of_makespans
       ~own:[| 0.; Float.nan; Float.infinity |]
       ~multi:[| 1.; 1.; 0. |])

let test_average_slowdown () =
  check_float "avg" 0.84
    (Metrics.average_slowdown [| 1.; 1.; 1.; 1.; 1.; 1.; 1.; 1.; 0.2; 0.2 |])

let test_paper_worked_example () =
  (* Section 7: 8 PTGs with slowdown 1 and 2 with slowdown 0.2 give an
     average of 0.84 and an unfairness of 8(1-0.84) + 2(0.84-0.2) = 2.56. *)
  let slowdowns = [| 1.; 1.; 1.; 1.; 1.; 1.; 1.; 1.; 0.2; 0.2 |] in
  check_float "unfairness 2.56" 2.56 (Metrics.unfairness slowdowns)

let test_unfairness_zero_when_equal () =
  check_float "uniform slowdowns are fair" 0.
    (Metrics.unfairness [| 0.5; 0.5; 0.5 |])

let test_unfairness_of_makespans () =
  let own = [| 10.; 10. |] and multi = [| 20.; 40. |] in
  (* slowdowns 0.5 and 0.25, avg 0.375, unfairness 0.25. *)
  check_float "composition" 0.25 (Metrics.unfairness_of_makespans ~own ~multi);
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Metrics.unfairness_of_makespans ~own ~multi:[| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_relative_makespan () =
  check_float "best gets 1" 1. (Metrics.relative_makespan 5. ~best:5.);
  check_float "double" 2. (Metrics.relative_makespan 10. ~best:5.);
  Alcotest.(check bool) "bad best" true
    (try
       ignore (Metrics.relative_makespan 1. ~best:0.);
       false
     with Invalid_argument _ -> true)

let qcheck_unfairness_nonneg_and_bounded =
  QCheck.Test.make
    ~name:"unfairness is non-negative and at most 2n x max deviation"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 1.))
    (fun l ->
      let a = Array.of_list l in
      let u = Metrics.unfairness a in
      u >= 0. && u <= 2. *. float_of_int (Array.length a))

let qcheck_unfairness_translation_insensitive =
  QCheck.Test.make
    ~name:"unfairness only depends on dispersion (shift invariance)"
    ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 2 10) (float_range 0.1 0.5))
        (float_range 0. 0.4))
    (fun (l, shift) ->
      let a = Array.of_list l in
      let b = Array.map (fun x -> x +. shift) a in
      abs_float (Metrics.unfairness a -. Metrics.unfairness b) < 1e-9)

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "slowdown" `Quick test_slowdown;
        Alcotest.test_case "average slowdown" `Quick test_average_slowdown;
        Alcotest.test_case "paper worked example" `Quick
          test_paper_worked_example;
        Alcotest.test_case "uniform is fair" `Quick
          test_unfairness_zero_when_equal;
        Alcotest.test_case "from makespans" `Quick test_unfairness_of_makespans;
        Alcotest.test_case "degenerate apps skipped" `Quick
          test_degenerate_apps_skipped;
        Alcotest.test_case "all-degenerate saturates to zero" `Quick
          test_all_degenerate_saturates;
        Alcotest.test_case "relative makespan" `Quick test_relative_makespan;
        QCheck_alcotest.to_alcotest qcheck_unfairness_nonneg_and_bounded;
        QCheck_alcotest.to_alcotest qcheck_unfairness_translation_insensitive;
      ] );
  ]
