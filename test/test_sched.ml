module Platform = Mcs_platform.Platform
module Grid5000 = Mcs_platform.Grid5000
module Task = Mcs_taskmodel.Task
module Ptg = Mcs_ptg.Ptg
module Builder = Mcs_ptg.Builder
module Prng = Mcs_prng.Prng
module Obs = Mcs_obs.Obs
open Mcs_sched

let check_float = Alcotest.(check (float 1e-9))

let toy_platform ?(procs = 4) ?(gflops = 1.) () =
  Platform.make ~name:"toy"
    [ { Platform.cluster_name = "c0"; procs; gflops; switch = 0 } ]

let two_cluster_platform () =
  Platform.make ~name:"duo"
    [
      { Platform.cluster_name = "slow"; procs = 8; gflops = 1.; switch = 0 };
      { Platform.cluster_name = "fast"; procs = 4; gflops = 2.; switch = 0 };
    ]

let seconds_task ?(alpha = 0.) seconds =
  Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.) ~alpha

let chain ?(id = 0) ?(alpha = 0.) durations =
  let tasks = Array.of_list (List.map (seconds_task ~alpha) durations) in
  let edges =
    List.init (Array.length tasks - 1) (fun i -> (i, i + 1, 0.))
  in
  Builder.build ~id ~name:"chain" ~tasks ~edges

let random_ptg ?(tasks = 20) seed =
  let rng = Prng.create ~seed in
  Mcs_ptg.Random_gen.generate rng
    { Mcs_ptg.Random_gen.default with tasks }

(* ---------- Reference cluster ---------- *)

let test_ref_of_platform () =
  let p = two_cluster_platform () in
  let r = Reference_cluster.of_platform p in
  check_float "speed is slowest" 1. r.Reference_cluster.speed;
  (* total power 8*1 + 4*2 = 16 GFlop/s -> 16 reference processors. *)
  Alcotest.(check int) "procs" 16 r.Reference_cluster.procs

let test_ref_translate () =
  let p = two_cluster_platform () in
  let r = Reference_cluster.of_platform p in
  (* 4 reference procs at speed 1 = 4 procs on the slow cluster,
     2 on the fast one. *)
  Alcotest.(check int) "slow" 4 (Reference_cluster.translate r p ~cluster:0 4);
  Alcotest.(check int) "fast" 2 (Reference_cluster.translate r p ~cluster:1 4);
  (* At least one processor even for tiny allocations. *)
  Alcotest.(check int) "min one" 1 (Reference_cluster.translate r p ~cluster:1 1);
  (* Clamped to cluster size. *)
  Alcotest.(check int) "clamped" 8
    (Reference_cluster.translate r p ~cluster:0 100)

let test_ref_fits_and_max () =
  let p = two_cluster_platform () in
  let r = Reference_cluster.of_platform p in
  Alcotest.(check bool) "8 fits slow" true
    (Reference_cluster.fits r p ~cluster:0 8);
  Alcotest.(check bool) "9 does not fit slow" false
    (Reference_cluster.fits r p ~cluster:0 9);
  (* fast cluster: p_k=4, s_k=2: fits while round(p/2) <= 4, i.e., p <= 8. *)
  Alcotest.(check bool) "8 fits fast" true
    (Reference_cluster.fits r p ~cluster:1 8);
  let cap = Reference_cluster.max_allocation r p in
  Alcotest.(check bool) "cap fits somewhere" true
    (Reference_cluster.fits r p ~cluster:0 cap
    || Reference_cluster.fits r p ~cluster:1 cap);
  Alcotest.(check bool) "cap+1 fits nowhere" true
    (cap = r.Reference_cluster.procs
    || ((not (Reference_cluster.fits r p ~cluster:0 (cap + 1)))
       && not (Reference_cluster.fits r p ~cluster:1 (cap + 1))))

let test_ref_exec_time () =
  let r = Reference_cluster.make ~speed:2. ~procs:10 in
  let t = seconds_task ~alpha:0.5 10. in
  (* 1e10 flops at 2 GFlop/s = 5 s sequential; amdahl alpha .5, p=2:
     5*(0.5+0.25)=3.75 *)
  check_float "exec" 3.75 (Reference_cluster.exec_time r t ~procs:2);
  check_float "virtual is free" 0.
    (Reference_cluster.exec_time r Task.zero ~procs:5)

(* ---------- Allocation ---------- *)

let test_allocation_respects_beta_budget () =
  let p = toy_platform ~procs:10 () in
  let r = Reference_cluster.of_platform p in
  (* A fork of 4 parallel tasks; beta = 0.5 -> per-level budget 5. *)
  let tasks = Array.init 4 (fun _ -> seconds_task ~alpha:0.05 10.) in
  let ptg = Builder.build ~id:0 ~name:"fork4" ~tasks ~edges:[] in
  let result = Allocation.allocate r p ~beta:0.5 ptg in
  let usage = Allocation.level_usage ptg result.Allocation.procs in
  Array.iter
    (fun u -> Alcotest.(check bool) "level within budget" true (u <= 5))
    usage;
  Alcotest.(check bool) "constraint check agrees" true
    (Allocation.respects_level_constraint r ~beta:0.5 ptg
       result.Allocation.procs)

let test_allocation_selfish_uses_more () =
  let p = toy_platform ~procs:32 () in
  let r = Reference_cluster.of_platform p in
  let ptg = chain ~alpha:0.05 [ 50.; 50.; 50. ] in
  let constrained = Allocation.allocate r p ~beta:0.1 ptg in
  let selfish = Allocation.allocate r p ~beta:1.0 ptg in
  let total a = Array.fold_left ( + ) 0 a.Allocation.procs in
  Alcotest.(check bool)
    (Printf.sprintf "selfish %d > constrained %d" (total selfish)
       (total constrained))
    true
    (total selfish > total constrained);
  Alcotest.(check bool) "selfish cp shorter" true
    (selfish.Allocation.critical_path <= constrained.Allocation.critical_path)

let test_allocation_minimum_one_proc () =
  let p = toy_platform ~procs:100 () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg 42 in
  let result = Allocation.allocate r p ~beta:0.01 ptg in
  Array.iter
    (fun a -> Alcotest.(check bool) "at least 1" true (a >= 1))
    result.Allocation.procs

let test_allocation_reduces_critical_path () =
  let p = toy_platform ~procs:64 () in
  let r = Reference_cluster.of_platform p in
  let ptg = chain ~alpha:0.02 [ 100. ] in
  let result = Allocation.allocate r p ~beta:1. ptg in
  Alcotest.(check bool) "got more than one processor" true
    (Array.exists (fun a -> a > 1) result.Allocation.procs);
  Alcotest.(check bool) "cp below sequential" true
    (result.Allocation.critical_path < 100.)

let test_allocation_beta_validation () =
  let p = toy_platform () in
  let r = Reference_cluster.of_platform p in
  let ptg = chain [ 1. ] in
  List.iter
    (fun beta ->
      Alcotest.(check bool)
        (Printf.sprintf "beta=%g rejected" beta)
        true
        (try
           ignore (Allocation.allocate r p ~beta ptg);
           false
         with Invalid_argument _ -> true))
    [ 0.; -0.5; 1.5 ]

let test_scrap_vs_scrap_max () =
  (* SCRAP has no per-level cap: on a wide level it may pack allocation
     into few tasks beyond the budget; SCRAP-MAX may not. *)
  let p = toy_platform ~procs:16 () in
  let r = Reference_cluster.of_platform p in
  let tasks = Array.init 2 (fun _ -> seconds_task ~alpha:0.01 100.) in
  let ptg = Builder.build ~id:0 ~name:"fork2" ~tasks ~edges:[] in
  let beta = 0.25 in
  (* budget = 4 *)
  let smax = Allocation.allocate ~procedure:Allocation.Scrap_max r p ~beta ptg in
  Alcotest.(check bool) "scrap-max within level budget" true
    (Allocation.respects_level_constraint r ~beta ptg smax.Allocation.procs)

let qcheck_scrap_max_levels =
  QCheck.Test.make
    ~name:"SCRAP-MAX: per-level usage within budget on random PTGs"
    ~count:60
    QCheck.(pair (int_range 0 5000) (oneofl [ 0.1; 0.2; 0.5; 0.8; 1.0 ]))
    (fun (seed, beta) ->
      let p = Grid5000.lille () in
      let r = Reference_cluster.of_platform p in
      let ptg = random_ptg seed in
      let result = Allocation.allocate r p ~beta ptg in
      Allocation.respects_level_constraint r ~beta ptg result.Allocation.procs)

let qcheck_allocation_capped =
  QCheck.Test.make
    ~name:"allocations never exceed the translatable maximum" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let p = Grid5000.sophia () in
      let r = Reference_cluster.of_platform p in
      let cap = Reference_cluster.max_allocation r p in
      let ptg = random_ptg seed in
      let result = Allocation.allocate r p ~beta:1. ptg in
      Array.for_all (fun a -> a >= 1 && a <= cap) result.Allocation.procs)

(* ---------- Allocation cache ---------- *)

(* The cache's contract is bit-identity: every field of a served result
   must equal a scratch run's float for float, whichever of the
   hit/rescale/fork/scratch paths produced it. *)
let check_alloc_equal msg (scratch : Allocation.result)
    (cached : Allocation.result) =
  Alcotest.(check (array int))
    (msg ^ ": procs") scratch.Allocation.procs cached.Allocation.procs;
  Alcotest.(check int)
    (msg ^ ": iterations") scratch.Allocation.iterations
    cached.Allocation.iterations;
  Alcotest.(check bool)
    (msg ^ ": critical path bit-equal") true
    (Float.equal scratch.Allocation.critical_path
       cached.Allocation.critical_path);
  Alcotest.(check bool)
    (msg ^ ": average area bit-equal") true
    (Float.equal scratch.Allocation.average_area
       cached.Allocation.average_area)

(* Descending budgets force divergence-and-fork, ascending ones force
   extension, repeats take the exact-hit path — one sweep crosses every
   serving path of the cache. *)
let cache_beta_sweep =
  [ 1.0; 0.8; 0.6; 0.45; 0.3; 0.2; 0.1; 0.15; 0.25; 0.4; 0.55; 0.7; 0.9;
    1.0; 0.1; 0.2 ]

let test_cache_matches_scratch_sweep () =
  let p = Grid5000.rennes () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg ~tasks:60 11 in
  let cache = Allocation.cache_create () in
  let arena = Alloc_arena.create () in
  List.iter
    (fun beta ->
      let cached = Allocation.allocate_cached ~cache ~arena r p ~beta ptg in
      let scratch = Allocation.allocate r p ~beta ptg in
      check_alloc_equal (Printf.sprintf "beta=%g" beta) scratch cached)
    cache_beta_sweep;
  let s = Allocation.cache_stats cache in
  Alcotest.(check bool)
    "all outcomes accounted" true
    (s.Allocation.hits + s.Allocation.rescales + s.Allocation.misses
    = List.length cache_beta_sweep);
  Alcotest.(check bool) "repeats hit" true (s.Allocation.hits >= 2)

let test_cache_matches_scratch_scrap () =
  let p = Grid5000.rennes () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg ~tasks:40 13 in
  let cache = Allocation.cache_create () in
  let arena = Alloc_arena.create () in
  List.iter
    (fun beta ->
      let cached =
        Allocation.allocate_cached ~procedure:Allocation.Scrap ~cache ~arena r
          p ~beta ptg
      in
      let scratch =
        Allocation.allocate ~procedure:Allocation.Scrap r p ~beta ptg
      in
      check_alloc_equal (Printf.sprintf "scrap beta=%g" beta) scratch cached)
    cache_beta_sweep

let test_cache_matches_scratch_degraded () =
  (* Degraded generations (outage survivors) lower the allocation cap;
     the cache must serve both caps, interleaved, from one instance. *)
  let p = toy_platform ~procs:32 () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg ~tasks:30 17 in
  let cache = Allocation.cache_create () in
  let arena = Alloc_arena.create () in
  List.iter
    (fun (up_counts, beta) ->
      let cached =
        Allocation.allocate_cached ?up_counts ~cache ~arena r p ~beta ptg
      in
      let scratch = Allocation.allocate ?up_counts r p ~beta ptg in
      check_alloc_equal
        (Printf.sprintf "degraded=%b beta=%g" (up_counts <> None) beta)
        scratch cached)
    [
      (None, 0.5); (Some [| 6 |], 0.5); (None, 0.5); (Some [| 6 |], 0.8);
      (Some [| 3 |], 0.8); (None, 1.0); (Some [| 6 |], 0.3); (None, 0.3);
    ]

let test_cache_entry_bound () =
  let p = Grid5000.rennes () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg ~tasks:30 19 in
  let cache = Allocation.cache_create () in
  let arena = Alloc_arena.create () in
  List.iter
    (fun beta ->
      ignore (Allocation.allocate_cached ~cache ~arena r p ~beta ptg))
    (List.init 25 (fun i -> 1. -. (float_of_int i /. 30.)));
  Alcotest.(check bool)
    "entry count within MRU bound" true
    (Allocation.cache_entry_count cache <= 8);
  Allocation.cache_clear cache;
  Alcotest.(check int) "clear empties" 0 (Allocation.cache_entry_count cache);
  let s = Allocation.cache_stats cache in
  Alcotest.(check bool)
    "stats survive clear" true
    (s.Allocation.hits + s.Allocation.rescales + s.Allocation.misses = 25)

let test_cache_binding_guards () =
  let p = toy_platform ~procs:8 () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg ~tasks:10 23 in
  let arena = Alloc_arena.create () in
  let rejected f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  let fresh () =
    let cache = Allocation.cache_create () in
    ignore (Allocation.allocate_cached ~cache ~arena r p ~beta:0.5 ptg);
    cache
  in
  let cache = fresh () in
  Alcotest.(check bool)
    "PTG change rejected" true
    (rejected (fun () ->
         Allocation.allocate_cached ~cache ~arena r p ~beta:0.5
           (random_ptg ~tasks:10 24)));
  let cache = fresh () in
  Alcotest.(check bool)
    "procedure change rejected" true
    (rejected (fun () ->
         Allocation.allocate_cached ~procedure:Allocation.Scrap ~cache ~arena
           r p ~beta:0.5 ptg));
  let cache = fresh () in
  let p2 = toy_platform ~procs:8 ~gflops:2. () in
  let r2 = Reference_cluster.of_platform p2 in
  Alcotest.(check bool)
    "reference speed change rejected" true
    (rejected (fun () ->
         Allocation.allocate_cached ~cache ~arena r2 p2 ~beta:0.5 ptg))

let test_cache_release_and_copy () =
  let p = toy_platform ~procs:8 () in
  let r = Reference_cluster.of_platform p in
  let ptg = random_ptg ~tasks:10 29 in
  let arena = Alloc_arena.create () in
  let cache = Allocation.cache_create () in
  ignore (Allocation.allocate_cached ~cache ~arena r p ~beta:0.5 ptg);
  (* A deep copy serves independently and inherits the statistics. *)
  let copy = Allocation.cache_copy cache in
  let s0 = Allocation.cache_stats copy in
  Alcotest.(check int)
    "copy inherits misses"
    (Allocation.cache_stats cache).Allocation.misses s0.Allocation.misses;
  let from_copy =
    Allocation.allocate_cached ~cache:copy ~arena r p ~beta:0.5 ptg
  in
  check_alloc_equal "copy serves bit-identically"
    (Allocation.allocate r p ~beta:0.5 ptg)
    from_copy;
  Alcotest.(check int)
    "repeat on the copy is a hit" (s0.Allocation.hits + 1)
    (Allocation.cache_stats copy).Allocation.hits;
  Alcotest.(check int)
    "serving the copy leaves the original untouched" s0.Allocation.hits
    (Allocation.cache_stats cache).Allocation.hits;
  (* A warm copy in front of a fresh arena: this is exactly what a
     snapshot-restored engine presents on its first reschedule, and the
     β-extension path must reserve the arena's scratch itself
     (regression for the restored-run [bottom_levels_into] crash). *)
  let fresh_arena = Alloc_arena.create () in
  let grown =
    Allocation.allocate_cached ~cache:copy ~arena:fresh_arena r p ~beta:1.0
      ptg
  in
  check_alloc_equal "β-extension on a fresh arena"
    (Allocation.allocate r p ~beta:1.0 ptg)
    grown;
  (* Release: entries and binding both dropped — the cache accepts a
     different PTG afterwards (contrast with the binding guards above),
     and the lifetime statistics survive. *)
  Allocation.cache_release cache;
  Alcotest.(check int)
    "release empties" 0
    (Allocation.cache_entry_count cache);
  let other = random_ptg ~tasks:10 31 in
  let rebound = Allocation.allocate_cached ~cache ~arena r p ~beta:0.5 other in
  check_alloc_equal "re-bound after release"
    (Allocation.allocate r p ~beta:0.5 other)
    rebound;
  Alcotest.(check bool)
    "statistics survive release" true
    ((Allocation.cache_stats cache).Allocation.misses >= 2)

let qcheck_cache_differential =
  QCheck.Test.make
    ~name:"allocate_cached ≡ allocate over random β streams" ~count:25
    QCheck.(
      pair (int_range 0 5000)
        (list_of_size (Gen.int_range 1 10)
           (oneofl [ 0.1; 0.17; 0.25; 0.33; 0.5; 0.62; 0.75; 0.9; 1.0 ])))
    (fun (seed, betas) ->
      let p = Grid5000.lille () in
      let r = Reference_cluster.of_platform p in
      let ptg = random_ptg seed in
      let cache = Allocation.cache_create () in
      let arena = Alloc_arena.create () in
      List.for_all
        (fun beta ->
          let cached = Allocation.allocate_cached ~cache ~arena r p ~beta ptg in
          let scratch = Allocation.allocate r p ~beta ptg in
          cached.Allocation.procs = scratch.Allocation.procs
          && cached.Allocation.iterations = scratch.Allocation.iterations
          && Float.equal cached.Allocation.critical_path
               scratch.Allocation.critical_path
          && Float.equal cached.Allocation.average_area
               scratch.Allocation.average_area
          && Allocation.respects_level_constraint r ~beta ptg
               cached.Allocation.procs)
        betas)

(* ---------- Strategy ---------- *)

let sample_ptgs () = [ random_ptg 1; random_ptg 2; random_ptg ~tasks:50 3 ]

let test_strategy_selfish () =
  let betas = Strategy.betas Strategy.Selfish ~ref_speed:1. (sample_ptgs ()) in
  Array.iter (fun b -> check_float "beta 1" 1. b) betas

let test_strategy_equal_share () =
  let betas =
    Strategy.betas Strategy.Equal_share ~ref_speed:1. (sample_ptgs ())
  in
  Array.iter (fun b -> check_float "beta 1/3" (1. /. 3.) b) betas

let test_strategy_proportional_sums_to_one () =
  List.iter
    (fun metric ->
      let betas =
        Strategy.betas (Strategy.Proportional metric) ~ref_speed:1.
          (sample_ptgs ())
      in
      check_float "sums to 1" 1. (Mcs_util.Floatx.sum betas))
    [ Strategy.Cp; Strategy.Width; Strategy.Work ]

let test_strategy_weighted_endpoints () =
  let ptgs = sample_ptgs () in
  let ps = Strategy.betas (Strategy.Proportional Strategy.Work) ~ref_speed:1. ptgs in
  let w0 =
    Strategy.betas (Strategy.Weighted (Strategy.Work, 0.)) ~ref_speed:1. ptgs
  in
  let w1 =
    Strategy.betas (Strategy.Weighted (Strategy.Work, 1.)) ~ref_speed:1. ptgs
  in
  Array.iteri (fun i b -> check_float "mu=0 is PS" ps.(i) b) w0;
  Array.iter (fun b -> check_float "mu=1 is ES" (1. /. 3.) b) w1

let test_strategy_weighted_formula () =
  let ptgs = sample_ptgs () in
  let mu = 0.7 in
  let ps = Strategy.betas (Strategy.Proportional Strategy.Work) ~ref_speed:1. ptgs in
  let w =
    Strategy.betas (Strategy.Weighted (Strategy.Work, mu)) ~ref_speed:1. ptgs
  in
  Array.iteri
    (fun i b ->
      check_float "eq 2" ((mu /. 3.) +. ((1. -. mu) *. ps.(i))) b)
    w

let test_strategy_work_gamma_orders () =
  (* The 50-task PTG has more work than 20-task ones: larger beta. *)
  let betas =
    Strategy.betas (Strategy.Proportional Strategy.Work) ~ref_speed:1.
      (sample_ptgs ())
  in
  Alcotest.(check bool) "big ptg gets more" true
    (betas.(2) > betas.(0) && betas.(2) > betas.(1))

let test_strategy_validation () =
  Alcotest.(check bool) "empty list" true
    (try
       ignore (Strategy.betas Strategy.Selfish ~ref_speed:1. []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mu out of range" true
    (try
       ignore
         (Strategy.betas (Strategy.Weighted (Strategy.Work, 1.5)) ~ref_speed:1.
            (sample_ptgs ()));
       false
     with Invalid_argument _ -> true)

let test_strategy_names () =
  Alcotest.(check string) "S" "S" (Strategy.name Strategy.Selfish);
  Alcotest.(check string) "ES" "ES" (Strategy.name Strategy.Equal_share);
  Alcotest.(check string) "PS-cp" "PS-cp"
    (Strategy.name (Strategy.Proportional Strategy.Cp));
  Alcotest.(check string) "WPS name" "WPS-work(0.7)"
    (Strategy.name (Strategy.Weighted (Strategy.Work, 0.7)));
  Alcotest.(check string) "short" "WPS-work"
    (Strategy.short_name (Strategy.Weighted (Strategy.Work, 0.7)));
  Alcotest.(check int) "eight strategies" 8 (List.length Strategy.paper_eight);
  Alcotest.(check int) "six strategies" 6 (List.length Strategy.paper_six)

let qcheck_betas_in_range =
  QCheck.Test.make ~name:"betas always lie in (0, 1]" ~count:60
    QCheck.(pair (int_range 0 1000) (oneofl [ 0.; 0.3; 0.5; 0.7; 1.0 ]))
    (fun (seed, mu) ->
      let ptgs =
        List.init 5 (fun i -> random_ptg ((seed * 5) + i))
      in
      List.for_all
        (fun strategy ->
          let betas = Strategy.betas strategy ~ref_speed:3. ptgs in
          Array.for_all (fun b -> b > 0. && b <= 1.) betas)
        [
          Strategy.Selfish; Strategy.Equal_share;
          Strategy.Proportional Strategy.Cp;
          Strategy.Proportional Strategy.Width;
          Strategy.Proportional Strategy.Work;
          Strategy.Weighted (Strategy.Cp, mu);
          Strategy.Weighted (Strategy.Width, mu);
          Strategy.Weighted (Strategy.Work, mu);
        ])

(* ---------- Mapper & Schedule ---------- *)

let schedule_random ?(options = List_mapper.default_options) ?(napps = 3)
    ~platform seed =
  let ptgs = List.init napps (fun i -> random_ptg ((seed * 10) + i)) in
  let r = Reference_cluster.of_platform platform in
  let apps =
    List.map
      (fun ptg ->
        let a = Allocation.allocate r platform ~beta:(1. /. float_of_int napps) ptg in
        (ptg, a.Allocation.procs))
      ptgs
  in
  List_mapper.run ~options platform r apps

let test_mapper_valid_schedules () =
  let platform = Grid5000.rennes () in
  let schedules = schedule_random ~platform 7 in
  match Schedule.validate ~platform schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message

let test_mapper_deterministic () =
  let platform = Grid5000.nancy () in
  let s1 = schedule_random ~platform 9 in
  let s2 = schedule_random ~platform 9 in
  List.iter2
    (fun a b ->
      check_float "same makespan" a.Schedule.makespan b.Schedule.makespan)
    s1 s2

let test_mapper_single_app_entry_starts_at_zero () =
  let platform = toy_platform ~procs:8 () in
  let r = Reference_cluster.of_platform platform in
  let ptg = chain [ 5.; 3. ] in
  let schedules = List_mapper.run platform r [ (ptg, [| 1; 1 |]) ] in
  let sched = List.hd schedules in
  check_float "starts at 0" 0. (Schedule.placement sched 0).Schedule.start;
  check_float "makespan 8" 8. sched.Schedule.makespan

let test_mapper_backfill_valid_and_fills_holes () =
  let platform = Grid5000.rennes () in
  let schedules =
    schedule_random ~platform
      ~options:{ List_mapper.default_options with ordering = Global_backfill }
      11
  in
  (match Schedule.validate ~platform schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message);
  (* Backfilling must beat plain FCFS's global makespan here (packing
     off on both sides: batch reservations are rigid). *)
  let fcfs =
    schedule_random ~platform
      ~options:{ List_mapper.ordering = Global_fcfs; packing = false }
      11
  in
  let global scheds =
    List.fold_left (fun acc s -> Float.max acc s.Schedule.makespan) 0. scheds
  in
  Alcotest.(check bool) "backfill <= fcfs" true
    (global schedules <= global fcfs +. 1e-6)

let test_mapper_backfill_small_ptg_not_postponed () =
  let platform = toy_platform ~procs:2 () in
  let r = Reference_cluster.of_platform platform in
  let big = chain ~id:0 ~alpha:1. [ 10.; 8.; 6.; 4. ] in
  let small = chain ~id:1 ~alpha:1. [ 1.; 1. ] in
  let alloc ptg = Array.make (Ptg.node_count ptg) 1 in
  let schedules =
    List_mapper.run
      ~options:{ List_mapper.default_options with ordering = Global_backfill }
      platform r
      [ (big, alloc big); (small, alloc small) ]
  in
  check_float "small slides into the hole" 2.
    (List.nth schedules 1).Schedule.makespan

let test_mapper_figure1_ready_not_postponed () =
  let platform = toy_platform ~procs:2 () in
  let r = Reference_cluster.of_platform platform in
  let big = chain ~id:0 ~alpha:1. [ 10.; 8.; 6.; 4. ] in
  let small = chain ~id:1 ~alpha:1. [ 1.; 1. ] in
  let alloc ptg = Array.make (Ptg.node_count ptg) 1 in
  let run options =
    List_mapper.run ~options platform r
      [ (big, alloc big); (small, alloc small) ]
  in
  let ready = run { List_mapper.default_options with ordering = Ready_tasks } in
  let fcfs = run { List_mapper.default_options with ordering = Global_fcfs } in
  check_float "ready: small done at 2" 2. (List.nth ready 1).Schedule.makespan;
  Alcotest.(check bool) "fcfs: small postponed" true
    ((List.nth fcfs 1).Schedule.makespan > 20.)

let test_mapper_packing_shrinks_delayed_task () =
  (* One running task holds 3 of 4 processors until t=10; the next task
     is allocated 2 processors but can run on 1 immediately. With
     alpha=1 the execution time is allocation-independent, so packing
     must shrink it and start at 0 on the free processor. *)
  let platform = toy_platform ~procs:4 () in
  let r = Reference_cluster.of_platform platform in
  let blocker = chain ~id:0 ~alpha:0.30 [ 30. ] in
  let seq = chain ~id:1 ~alpha:1. [ 5. ] in
  let blocker_alloc = Array.make (Ptg.node_count blocker) 3 in
  let seq_alloc = Array.make (Ptg.node_count seq) 2 in
  let run packing =
    List_mapper.run
      ~options:{ List_mapper.default_options with packing }
      platform r
      [ (blocker, blocker_alloc); (seq, seq_alloc) ]
  in
  let with_packing = run true in
  let without_packing = run false in
  let seq_pl sched = Schedule.placement (List.nth sched 1) 0 in
  check_float "packing: starts immediately" 0. (seq_pl with_packing).Schedule.start;
  Alcotest.(check int) "packing: shrunk to 1 proc" 1
    (Array.length (seq_pl with_packing).Schedule.procs);
  Alcotest.(check bool) "no packing: delayed" true
    ((seq_pl without_packing).Schedule.start > 0.)

let test_mapper_packing_wins_observed () =
  (* Same fixture as above, instrumented: the successful shrink must be
     visible in the observability counters, and a packed placement only
     ever trades processors for a strictly earlier start that finishes
     no later. *)
  let platform = toy_platform ~procs:4 () in
  let r = Reference_cluster.of_platform platform in
  let blocker = chain ~id:0 ~alpha:0.30 [ 30. ] in
  let seq = chain ~id:1 ~alpha:1. [ 5. ] in
  let apps =
    [
      (blocker, Array.make (Ptg.node_count blocker) 3);
      (seq, Array.make (Ptg.node_count seq) 2);
    ]
  in
  let without_packing =
    List_mapper.run
      ~options:{ List_mapper.default_options with packing = false }
      platform r apps
  in
  Obs.enable ();
  let with_packing =
    Fun.protect
      ~finally:(fun () -> Obs.disable ())
      (fun () -> List_mapper.run platform r apps)
  in
  let wins = Obs.value (Obs.counter "mapper.packing_wins") in
  Alcotest.(check bool) "packing win counted" true (wins > 0);
  Alcotest.(check bool) "attempts cover wins" true
    (Obs.value (Obs.counter "mapper.packing_attempts") >= wins);
  let packed = Schedule.placement (List.nth with_packing 1) 0 in
  let unpacked = Schedule.placement (List.nth without_packing 1) 0 in
  Alcotest.(check bool) "shrunk below the translated allocation" true
    (Array.length packed.Schedule.procs
    < Reference_cluster.translate r platform ~cluster:0 2);
  Alcotest.(check bool) "starts strictly earlier" true
    (packed.Schedule.start < unpacked.Schedule.start);
  Alcotest.(check bool) "finishes no later" true
    (packed.Schedule.finish <= unpacked.Schedule.finish +. 1e-9)

let test_mapper_backfill_best_fit_ties () =
  (* Four single-task applications on a 4-processor cluster. Placement
     order follows bottom-level priority (longest first), so each
     find_slot call faces a tie among equally-recently-released
     processors and must resolve it towards the lowest ids. *)
  let platform = toy_platform ~procs:4 () in
  let r = Reference_cluster.of_platform platform in
  let apps =
    List.mapi
      (fun i d -> (chain ~id:i ~alpha:1. [ d ], [| 2 |]))
      [ 6.; 4.; 3.; 1. ]
  in
  Obs.enable ();
  let schedules =
    Fun.protect
      ~finally:(fun () -> Obs.disable ())
      (fun () ->
        List_mapper.run
          ~options:{ List_mapper.ordering = Global_backfill; packing = false }
          platform r apps)
  in
  Alcotest.(check bool) "slots found via the timeline" true
    (Obs.value (Obs.counter "mapper.backfill_slots") > 0);
  let pl i = Schedule.placement (List.nth schedules i) 0 in
  (* All four processors are idle at 0: ids break the tie. *)
  check_float "6s task at 0" 0. (pl 0).Schedule.start;
  Alcotest.(check (array int)) "6s task on lowest ids" [| 0; 1 |]
    (pl 0).Schedule.procs;
  check_float "4s task at 0" 0. (pl 1).Schedule.start;
  Alcotest.(check (array int)) "4s task on remaining procs" [| 2; 3 |]
    (pl 1).Schedule.procs;
  (* Best fit prefers the latest-released pair 2,3 over waiting for
     0,1 (busy until 6). *)
  check_float "3s task when 2,3 free" 4. (pl 2).Schedule.start;
  Alcotest.(check (array int)) "3s task reuses 2,3" [| 2; 3 |]
    (pl 2).Schedule.procs;
  (* At 6 procs 0,1 are free while 2,3 run until 7: released-latest
     wins again, the id tie inside the pair is by lowest id. *)
  check_float "1s task when 0,1 free" 6. (pl 3).Schedule.start;
  Alcotest.(check (array int)) "1s task on 0,1" [| 0; 1 |]
    (pl 3).Schedule.procs

let test_budget_of_regression () =
  (* β = 1 grants the whole reference cluster, β = 1/|A| an even split,
     and products landing one ulp under an integer (0.57 · 100 =
     56.999999999999993) must not lose a processor to truncation. *)
  let hundred = Reference_cluster.make ~speed:1. ~procs:100 in
  Alcotest.(check int) "beta=1" 100 (Allocation.budget_of hundred ~beta:1.);
  Alcotest.(check int) "beta=0.57 keeps processor 57" 57
    (Allocation.budget_of hundred ~beta:0.57);
  Alcotest.(check int) "beta=0.29" 29
    (Allocation.budget_of hundred ~beta:0.29);
  let seven = Reference_cluster.make ~speed:1. ~procs:7 in
  Alcotest.(check int) "even split of 7" 1
    (Allocation.budget_of seven ~beta:(1. /. 7.));
  let g5k = Reference_cluster.make ~speed:1. ~procs:158 in
  Alcotest.(check int) "1/6 of 158" 26
    (Allocation.budget_of g5k ~beta:(1. /. 6.))

let test_mapper_prefers_faster_cluster () =
  let platform = two_cluster_platform () in
  let r = Reference_cluster.of_platform platform in
  let ptg = chain ~alpha:1. [ 10. ] in
  let schedules = List_mapper.run platform r [ (ptg, [| 1 |]) ] in
  let pl = Schedule.placement (List.hd schedules) 0 in
  (* Fully sequential task: the 2 GFlop/s cluster halves the time. *)
  Alcotest.(check int) "fast cluster" 1 pl.Schedule.cluster;
  check_float "5 seconds" 5. (pl.Schedule.finish -. pl.Schedule.start)

let test_mapper_respects_dependencies_and_comm () =
  let platform = two_cluster_platform () in
  let r = Reference_cluster.of_platform platform in
  (* Two tasks with a fat edge: if they land on different processor
     sets, the successor starts after the transfer estimate. *)
  let tasks = [| seconds_task ~alpha:0. 10.; seconds_task ~alpha:0. 10. |] in
  let ptg =
    Builder.build ~id:0 ~name:"comm" ~tasks ~edges:[ (0, 1, 1.25e9) ]
  in
  let schedules = List_mapper.run platform r [ (ptg, [| 4; 4 |]) ] in
  let sched = List.hd schedules in
  let p0 = Schedule.placement sched 0 and p1 = Schedule.placement sched 1 in
  Alcotest.(check bool) "succ after pred" true
    (p1.Schedule.start >= p0.Schedule.finish -. 1e-9)

let test_mapper_rejects_bad_input () =
  let platform = toy_platform () in
  let r = Reference_cluster.of_platform platform in
  Alcotest.(check bool) "no apps" true
    (try
       ignore (List_mapper.run platform r []);
       false
     with Invalid_argument _ -> true);
  let ptg = chain [ 1. ] in
  Alcotest.(check bool) "wrong alloc size" true
    (try
       ignore (List_mapper.run platform r [ (ptg, [| 1; 1; 1 |]) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "alloc < 1" true
    (try
       ignore (List_mapper.run platform r [ (ptg, [| 0 |]) ]);
       false
     with Invalid_argument _ -> true)

let qcheck_mapper_schedules_valid =
  QCheck.Test.make
    ~name:"mapper produces valid concurrent schedules on all platforms"
    ~count:30
    QCheck.(pair (int_range 0 2000) (int_range 1 3))
    (fun (seed, platform_idx) ->
      let platform = List.nth (Grid5000.all ()) platform_idx in
      let schedules = schedule_random ~platform ~napps:4 seed in
      match Schedule.validate ~platform schedules with
      | Ok () -> true
      | Error _ -> false)

let qcheck_packing_never_hurts_makespan =
  QCheck.Test.make
    ~name:"per-task: packing never worsens the global makespan by >25%"
    ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let platform = Grid5000.lille () in
      let on =
        schedule_random ~platform
          ~options:{ List_mapper.default_options with packing = true }
          seed
      in
      let off =
        schedule_random ~platform
          ~options:{ List_mapper.default_options with packing = false }
          seed
      in
      let global scheds =
        List.fold_left (fun acc s -> Float.max acc s.Schedule.makespan) 0. scheds
      in
      (* Packing is a local heuristic: allow limited degradation but
         catch systematic regressions. *)
      global on <= global off *. 1.25 +. 1e-6)

(* ---------- Schedule validation itself ---------- *)

let test_validate_catches_overlap () =
  let platform = toy_platform ~procs:2 () in
  let mk_sched start =
    let ptg = chain [ 5. ] in
    let placements =
      [|
        { Schedule.node = 0; cluster = 0; procs = [| 0 |]; start;
          finish = start +. 5. };
      |]
    in
    Schedule.make ~ptg ~placements
  in
  (match Schedule.validate ~platform [ mk_sched 0.; mk_sched 2. ] with
  | Ok () -> Alcotest.fail "overlap not caught"
  | Error _ -> ());
  match Schedule.validate ~platform [ mk_sched 0.; mk_sched 5. ] with
  | Ok () -> ()
  | Error v -> Alcotest.fail ("back-to-back flagged: " ^ v.Schedule.message)

let test_validate_catches_precedence () =
  let platform = toy_platform ~procs:2 () in
  let ptg = chain [ 2.; 2. ] in
  let placements =
    [|
      { Schedule.node = 0; cluster = 0; procs = [| 0 |]; start = 0.; finish = 2. };
      { Schedule.node = 1; cluster = 0; procs = [| 1 |]; start = 1.; finish = 3. };
    |]
  in
  match Schedule.validate ~platform [ Schedule.make ~ptg ~placements ] with
  | Ok () -> Alcotest.fail "precedence violation not caught"
  | Error _ -> ()

let test_validate_catches_empty_procs () =
  let platform = toy_platform () in
  let ptg = chain [ 2. ] in
  let placements =
    [| { Schedule.node = 0; cluster = 0; procs = [||]; start = 0.; finish = 2. } |]
  in
  match Schedule.validate ~platform [ Schedule.make ~ptg ~placements ] with
  | Ok () -> Alcotest.fail "real task without processors not caught"
  | Error _ -> ()

let test_cluster_busy_and_efficiency () =
  let platform = two_cluster_platform () in
  let ptg = chain ~alpha:0. [ 8. ] in
  (* One fully-parallel task on 2 procs of the fast (2 GFlop/s) cluster:
     8e9 flops -> 2 s on 2x2 GFlop/s. *)
  let placements =
    [|
      { Schedule.node = 0; cluster = 1; procs = [| 8; 9 |]; start = 0.;
        finish = 2. };
    |]
  in
  let sched = Schedule.make ~ptg ~placements in
  let busy = Schedule.cluster_busy_time ~platform [ sched ] in
  check_float "slow cluster idle" 0. busy.(0);
  check_float "fast cluster busy" 4. busy.(1);
  (* capacity = 2 s x 4 GFlop/s = 8e9 flops = work: efficiency 1. *)
  check_float "perfect efficiency" 1.
    (Schedule.parallel_efficiency ~platform sched)

let test_busy_time_and_power () =
  let platform = toy_platform ~procs:4 ~gflops:2. () in
  let ptg = chain [ 2. ] in
  let placements =
    [|
      { Schedule.node = 0; cluster = 0; procs = [| 0; 1 |]; start = 0.;
        finish = 3. };
    |]
  in
  let sched = Schedule.make ~ptg ~placements in
  check_float "busy" 6. (Schedule.busy_time sched);
  (* 3 s on 2 procs of 2 GFlop/s over a 3 s makespan -> 4 GFlop/s. *)
  check_float "avg power" 4. (Schedule.used_power_avg sched ~platform)

(* ---------- Pipeline ---------- *)

let test_pipeline_end_to_end () =
  let platform = Grid5000.lille () in
  let ptgs = List.init 4 (fun i -> random_ptg (100 + i)) in
  let schedules =
    Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform ptgs
  in
  Alcotest.(check int) "one schedule per app" 4 (List.length schedules);
  (match Schedule.validate ~platform schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message);
  let prepared =
    Pipeline.prepare ~strategy:Strategy.Equal_share platform ptgs
  in
  Array.iter (fun b -> check_float "es beta" 0.25 b) prepared.Pipeline.betas

let test_pipeline_alone_no_slower_than_shared () =
  let platform = Grid5000.nancy () in
  let ptg = random_ptg 55 in
  let alone = Pipeline.schedule_alone platform ptg in
  let shared =
    List.hd
      (Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform
         [ ptg; random_ptg 56; random_ptg 57 ])
  in
  Alcotest.(check bool) "alone is at least as fast" true
    (alone.Schedule.makespan <= shared.Schedule.makespan +. 1e-6)

let suite =
  [
    ( "sched.reference_cluster",
      [
        Alcotest.test_case "of_platform" `Quick test_ref_of_platform;
        Alcotest.test_case "translate" `Quick test_ref_translate;
        Alcotest.test_case "fits & max_allocation" `Quick test_ref_fits_and_max;
        Alcotest.test_case "exec_time" `Quick test_ref_exec_time;
      ] );
    ( "sched.allocation",
      [
        Alcotest.test_case "beta budget" `Quick
          test_allocation_respects_beta_budget;
        Alcotest.test_case "selfish uses more" `Quick
          test_allocation_selfish_uses_more;
        Alcotest.test_case "minimum one proc" `Quick
          test_allocation_minimum_one_proc;
        Alcotest.test_case "reduces critical path" `Quick
          test_allocation_reduces_critical_path;
        Alcotest.test_case "beta validation" `Quick
          test_allocation_beta_validation;
        Alcotest.test_case "scrap vs scrap-max" `Quick test_scrap_vs_scrap_max;
        Alcotest.test_case "budget_of regression" `Quick
          test_budget_of_regression;
        QCheck_alcotest.to_alcotest qcheck_scrap_max_levels;
        QCheck_alcotest.to_alcotest qcheck_allocation_capped;
      ] );
    ( "sched.alloc_cache",
      [
        Alcotest.test_case "sweep ≡ scratch" `Quick
          test_cache_matches_scratch_sweep;
        Alcotest.test_case "scrap ≡ scratch" `Quick
          test_cache_matches_scratch_scrap;
        Alcotest.test_case "degraded caps ≡ scratch" `Quick
          test_cache_matches_scratch_degraded;
        Alcotest.test_case "entry bound & clear" `Quick
          test_cache_entry_bound;
        Alcotest.test_case "binding guards" `Quick test_cache_binding_guards;
        Alcotest.test_case "release & copy" `Quick
          test_cache_release_and_copy;
        QCheck_alcotest.to_alcotest qcheck_cache_differential;
      ] );
    ( "sched.strategy",
      [
        Alcotest.test_case "selfish" `Quick test_strategy_selfish;
        Alcotest.test_case "equal share" `Quick test_strategy_equal_share;
        Alcotest.test_case "proportional sums" `Quick
          test_strategy_proportional_sums_to_one;
        Alcotest.test_case "weighted endpoints" `Quick
          test_strategy_weighted_endpoints;
        Alcotest.test_case "weighted formula" `Quick
          test_strategy_weighted_formula;
        Alcotest.test_case "work ordering" `Quick
          test_strategy_work_gamma_orders;
        Alcotest.test_case "validation" `Quick test_strategy_validation;
        Alcotest.test_case "names" `Quick test_strategy_names;
        QCheck_alcotest.to_alcotest qcheck_betas_in_range;
      ] );
    ( "sched.mapper",
      [
        Alcotest.test_case "valid schedules" `Quick test_mapper_valid_schedules;
        Alcotest.test_case "deterministic" `Quick test_mapper_deterministic;
        Alcotest.test_case "single app timing" `Quick
          test_mapper_single_app_entry_starts_at_zero;
        Alcotest.test_case "figure 1 orderings" `Quick
          test_mapper_figure1_ready_not_postponed;
        Alcotest.test_case "backfill validity" `Quick
          test_mapper_backfill_valid_and_fills_holes;
        Alcotest.test_case "backfill fills holes" `Quick
          test_mapper_backfill_small_ptg_not_postponed;
        Alcotest.test_case "packing shrinks delayed task" `Quick
          test_mapper_packing_shrinks_delayed_task;
        Alcotest.test_case "packing wins observed" `Quick
          test_mapper_packing_wins_observed;
        Alcotest.test_case "backfill best-fit ties" `Quick
          test_mapper_backfill_best_fit_ties;
        Alcotest.test_case "prefers faster cluster" `Quick
          test_mapper_prefers_faster_cluster;
        Alcotest.test_case "dependencies & comm" `Quick
          test_mapper_respects_dependencies_and_comm;
        Alcotest.test_case "input validation" `Quick
          test_mapper_rejects_bad_input;
        QCheck_alcotest.to_alcotest qcheck_mapper_schedules_valid;
        QCheck_alcotest.to_alcotest qcheck_packing_never_hurts_makespan;
      ] );
    ( "sched.schedule",
      [
        Alcotest.test_case "overlap detection" `Quick
          test_validate_catches_overlap;
        Alcotest.test_case "precedence detection" `Quick
          test_validate_catches_precedence;
        Alcotest.test_case "empty procs detection" `Quick
          test_validate_catches_empty_procs;
        Alcotest.test_case "cluster busy & efficiency" `Quick
          test_cluster_busy_and_efficiency;
        Alcotest.test_case "busy time & power" `Quick test_busy_time_and_power;
      ] );
    ( "sched.pipeline",
      [
        Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
        Alcotest.test_case "alone vs shared" `Quick
          test_pipeline_alone_no_slower_than_shared;
      ] );
  ]
