(* The invariant analyzer: adversarial fixtures must trigger exactly
   their rule, real pipeline/online schedules must pass clean, and
   trace exports must round-trip through of_csv/of_json. *)

module Grid5000 = Mcs_platform.Grid5000
module Prng = Mcs_prng.Prng
module Ptg = Mcs_ptg.Ptg
module Task = Mcs_taskmodel.Task
module Workload = Mcs_experiments.Workload
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
open Mcs_sched
open Mcs_check

let task () = Task.make ~data:1e7 ~complexity:Matmul ~alpha:0.1

let check_ids what expected diags =
  Alcotest.(check (list string)) what expected (Diagnostic.rule_ids diags)

let check_clean what diags =
  Alcotest.(check (list string)) what [] (List.map Diagnostic.to_string diags)

(* --- in-memory adversarial fixtures, one rule each --- *)

let test_overlap () =
  let platform = Grid5000.lille () in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"par2"
      ~tasks:[| task (); task () |]
      ~edges:[]
  in
  let n = Ptg.node_count ptg in
  let reals =
    List.filter (fun v -> not (Ptg.is_virtual ptg v)) (List.init n Fun.id)
  in
  let windows = [ (0., 10.); (5., 15.) ] in
  let placements =
    Array.init n (fun v ->
        if Ptg.is_virtual ptg v then
          let t = if v = Ptg.entry ptg then 0. else 15. in
          { Schedule.node = v; cluster = 0; procs = [||]; start = t; finish = t }
        else
          let i = Option.get (List.find_index (( = ) v) reals) in
          let start, finish = List.nth windows i in
          { Schedule.node = v; cluster = 0; procs = [| 0 |]; start; finish })
  in
  let sched = Schedule.make ~ptg ~placements in
  check_ids "two tasks race on processor 0" [ "map-overlap" ]
    (Check.analyze platform [ sched ])

let test_precedence () =
  let platform = Grid5000.lille () in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"chain2"
      ~tasks:[| task (); task () |]
      ~edges:[ (0, 1, 0.) ]
  in
  let placements =
    [|
      { Schedule.node = 0; cluster = 0; procs = [| 0 |]; start = 0.; finish = 10. };
      { Schedule.node = 1; cluster = 0; procs = [| 1 |]; start = 5.; finish = 6. };
    |]
  in
  let sched = Schedule.make ~ptg ~placements in
  check_ids "successor starts before its predecessor finishes"
    [ "map-precedence" ]
    (Check.analyze platform [ sched ])

let test_level_share () =
  (* Lille's reference cluster has 107 processors; β = 0.1 budgets 10
     per level, but the single real level allocates 3 × 10 = 30. The
     mapping itself is produced by the real mapper, so only the
     allocation rule fires. *)
  let platform = Grid5000.lille () in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"par3"
      ~tasks:[| task (); task (); task () |]
      ~edges:[]
  in
  let alloc =
    Array.init (Ptg.node_count ptg) (fun v ->
        if Ptg.is_virtual ptg v then 1 else 10)
  in
  let ref_cluster = Reference_cluster.of_platform platform in
  let schedules = List_mapper.run platform ref_cluster [ (ptg, alloc) ] in
  check_ids "level allocates 30 against a budget of 10"
    [ "alloc-level-share" ]
    (Check.analyze ~betas:[| 0.1 |] ~allocations:[| alloc |] platform
       schedules)

let test_pinned_moved () =
  let platform = Grid5000.lille () in
  let ptg =
    Mcs_ptg.Builder.build ~id:0 ~name:"single" ~tasks:[| task () |] ~edges:[]
  in
  let sched = Pipeline.schedule_alone platform ptg in
  let prepared = Pipeline.prepare ~strategy:Strategy.Selfish platform [ ptg ] in
  let pl = sched.Schedule.placements.(0) in
  let moved =
    { pl with Schedule.start = pl.Schedule.start +. 2.;
      finish = pl.Schedule.finish +. 2. }
  in
  let snap =
    {
      Online_check.now = sched.Schedule.makespan;
      strategy = Strategy.Selfish;
      procedure = Allocation.Scrap_max;
      apps =
        [
          {
            Online_check.index = 0;
            ptg;
            release = 0.;
            beta = 1.;
            alloc = prepared.Pipeline.allocations.(0).Allocation.procs;
            pinned = [| Some moved |];
            schedule = sched;
          };
        ];
    }
  in
  check_ids "pinned placement moved across a reschedule"
    [ "online-pin-stability" ]
    (Online_check.analyze platform snap)

(* --- the committed fixture files drive the same rules through the
       trace parser, as mcs_check does in CI --- *)

let lint_fixture name =
  let path = Filename.concat "fixtures" name in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let doc =
    match Trace.of_json text with
    | Ok doc -> doc
    | Error m -> Alcotest.failf "%s does not parse: %s" name m
  in
  Check.lint_trace ~platform:(Grid5000.lille ()) doc

let test_fixture_files () =
  List.iter
    (fun (file, rule) ->
      let diags = lint_fixture file in
      check_ids file [ rule ] diags;
      Alcotest.(check bool) (file ^ " is an error") true
        (Diagnostic.has_errors diags))
    [
      ("bad_overlap.json", "map-overlap");
      ("bad_precedence.json", "map-precedence");
      ("bad_beta.json", "alloc-level-share");
      ("bad_pinned.json", "online-pin-stability");
    ]

(* --- every real scheduling path passes with zero diagnostics --- *)

let test_pipeline_clean () =
  List.iter
    (fun (site, platform) ->
      List.iter
        (fun family ->
          List.iter
            (fun strategy ->
              let rng = Prng.create ~seed:7 in
              let ptgs = Workload.draw rng family ~count:4 in
              let prepared = Pipeline.prepare ~strategy platform ptgs in
              let schedules =
                Pipeline.schedule_concurrent ~strategy platform ptgs
              in
              check_clean
                (Printf.sprintf "%s/%s/%s clean" site
                   (Workload.family_name family)
                   (Strategy.name strategy))
                (Check.analyze_prepared ~strategy prepared platform schedules))
            [
              Strategy.Selfish;
              Strategy.Equal_share;
              Strategy.Weighted (Strategy.Work, 0.7);
            ])
        [ Workload.Random_mixed_scenarios; Workload.Fft_ptgs;
          Workload.Strassen_ptgs ])
    [ ("lille", Grid5000.lille ()); ("rennes", Grid5000.rennes ()) ]

let test_pipeline_release_clean () =
  let platform = Grid5000.nancy () in
  let rng = Prng.create ~seed:3 in
  let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:4 in
  let release = [| 0.; 25.; 60.; 61. |] in
  let strategy = Strategy.Equal_share in
  let prepared = Pipeline.prepare ~strategy platform ptgs in
  let schedules =
    Pipeline.schedule_concurrent ~release ~strategy platform ptgs
  in
  check_clean "staggered releases clean"
    (Check.analyze_prepared ~strategy ~release prepared platform schedules)

let test_online_clean () =
  (* Every reschedule generation of the online engine — pinned tasks,
     partial availability, dynamic β — must satisfy the full rule set. *)
  List.iter
    (fun strategy ->
      let platform = Grid5000.lille () in
      let rng = Prng.create ~seed:11 in
      let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:5 in
      let clock = ref 0. in
      let apps =
        List.mapi
          (fun i ptg ->
            if i > 0 then clock := !clock +. Prng.exponential rng ~mean:40.;
            (ptg, !clock))
          ptgs
      in
      let generations = ref 0 in
      let check diags =
        incr generations;
        check_clean
          (Printf.sprintf "%s generation %d clean" (Strategy.name strategy)
             !generations)
          diags
      in
      let r =
        Engine.run ~check ~policy:(Policy.make strategy) platform apps
      in
      Alcotest.(check bool) "several generations audited" true
        (!generations >= 2 && !generations = r.Engine.stats.Engine.reschedules))
    [ Strategy.Equal_share; Strategy.Weighted (Strategy.Work, 0.7) ]

(* --- trace round-trips --- *)

let exported_schedules () =
  let platform = Grid5000.lille () in
  let rng = Prng.create ~seed:12 in
  let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:2 in
  let strategy = Strategy.Equal_share in
  let prepared = Pipeline.prepare ~strategy platform ptgs in
  let release = [| 0.; 42.5 |] in
  let schedules =
    Pipeline.schedule_concurrent ~release ~strategy platform ptgs
  in
  (platform, prepared, release, schedules)

let test_json_roundtrip () =
  let platform, prepared, release, schedules = exported_schedules () in
  let alloc =
    Array.map
      (fun (r : Allocation.result) -> r.Allocation.procs)
      prepared.Pipeline.allocations
  in
  let json =
    Trace.to_json ~release ~betas:prepared.Pipeline.betas ~alloc schedules
  in
  let doc =
    match Trace.of_json json with
    | Ok doc -> doc
    | Error m -> Alcotest.failf "of_json: %s" m
  in
  Alcotest.(check int) "app count" (List.length schedules) (Array.length doc);
  List.iteri
    (fun i (s : Schedule.t) ->
      let a = doc.(i) in
      Alcotest.(check int) "id" i a.Trace.app;
      Alcotest.(check string) "name" s.Schedule.ptg.Ptg.name a.Trace.name;
      Alcotest.(check (float 0.)) "release" release.(i) a.Trace.release;
      Alcotest.(check (option (float 0.))) "beta"
        (Some prepared.Pipeline.betas.(i))
        a.Trace.beta;
      Alcotest.(check (option (array int))) "alloc" (Some alloc.(i))
        (Option.map Fun.id a.Trace.alloc);
      Alcotest.(check (option (float 0.))) "makespan"
        (Some s.Schedule.makespan) a.Trace.makespan;
      Array.iteri
        (fun v (row : Trace.row) ->
          let pl = s.Schedule.placements.(v) in
          Alcotest.(check int) "node" v row.Trace.node;
          Alcotest.(check bool) "virtual"
            (Ptg.is_virtual s.Schedule.ptg v)
            row.Trace.virt;
          Alcotest.(check (array int)) "procs" pl.Schedule.procs
            row.Trace.procs;
          (* %.17g round-trips doubles exactly *)
          Alcotest.(check (float 0.)) "start" pl.Schedule.start row.Trace.start;
          Alcotest.(check (float 0.)) "finish" pl.Schedule.finish
            row.Trace.finish;
          Alcotest.(check int) "pred count"
            (Mcs_dag.Dag.in_degree s.Schedule.ptg.Ptg.dag v)
            (Array.length row.Trace.preds))
        a.Trace.rows)
    schedules;
  (* a faithful export of a real schedule lints clean *)
  check_clean "exported trace lints clean"
    (Check.lint_trace ~platform doc)

let test_csv_roundtrip () =
  let _, _, release, schedules = exported_schedules () in
  let csv = Trace.to_csv ~release schedules in
  let doc =
    match Trace.of_csv csv with
    | Ok doc -> doc
    | Error m -> Alcotest.failf "of_csv: %s" m
  in
  Alcotest.(check int) "app count" (List.length schedules) (Array.length doc);
  List.iteri
    (fun i (s : Schedule.t) ->
      let a = doc.(i) in
      Alcotest.(check string) "name" s.Schedule.ptg.Ptg.name a.Trace.name;
      Alcotest.(check (float 1e-6)) "release" release.(i) a.Trace.release;
      Array.iteri
        (fun v (row : Trace.row) ->
          let pl = s.Schedule.placements.(v) in
          Alcotest.(check (array int)) "procs" pl.Schedule.procs
            row.Trace.procs;
          (* CSV keeps 9 significant digits *)
          Alcotest.(check bool) "start close" true
            (Float.abs (pl.Schedule.start -. row.Trace.start)
            <= 1e-6 *. Float.max 1. (Float.abs pl.Schedule.start)))
        a.Trace.rows)
    schedules;
  (* all-zero releases: the column disappears and parses back as 0 *)
  let doc0 =
    match Trace.of_csv (Trace.to_csv schedules) with
    | Ok doc -> doc
    | Error m -> Alcotest.failf "of_csv (no release): %s" m
  in
  Array.iter
    (fun (a : Trace.app) ->
      Alcotest.(check (float 0.)) "zero release" 0. a.Trace.release)
    doc0

let test_rule_registry () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "of_id inverts id" true
        (Rule.of_id (Rule.id r) = Some r))
    Rule.all;
  let codes = List.map Rule.code Rule.all in
  Alcotest.(check int) "codes unique"
    (List.length codes)
    (List.length (List.sort_uniq compare codes))

let test_runner_fail_fast () =
  (* Runner.evaluate re-raises analyzer errors; with check off it
     happily computes metrics for the same inputs. *)
  let platform = Grid5000.lille () in
  let rng = Prng.create ~seed:5 in
  let ptgs = Workload.draw rng Workload.Fft_ptgs ~count:2 in
  let metrics =
    Mcs_experiments.Runner.evaluate platform ptgs [ Strategy.Equal_share ]
  in
  Alcotest.(check int) "one strategy evaluated" 1 (List.length metrics)

let suite =
  [
    ( "check.rules",
      [
        Alcotest.test_case "registry" `Quick test_rule_registry;
        Alcotest.test_case "overlap fixture" `Quick test_overlap;
        Alcotest.test_case "precedence fixture" `Quick test_precedence;
        Alcotest.test_case "level-share fixture" `Quick test_level_share;
        Alcotest.test_case "pinned fixture" `Quick test_pinned_moved;
        Alcotest.test_case "fixture files via trace lint" `Quick
          test_fixture_files;
      ] );
    ( "check.clean",
      [
        Alcotest.test_case "pipeline schedules pass" `Slow test_pipeline_clean;
        Alcotest.test_case "staggered releases pass" `Quick
          test_pipeline_release_clean;
        Alcotest.test_case "online generations pass" `Slow test_online_clean;
        Alcotest.test_case "runner fail-fast wiring" `Quick
          test_runner_fail_fast;
      ] );
    ( "check.trace",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
      ] );
  ]
