open Mcs_dag

(* A diamond with a tail: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4. *)
let diamond () =
  Dag.of_edges ~n:5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]

let test_counts () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 5 (Dag.node_count g);
  Alcotest.(check int) "edges" 5 (Dag.edge_count g);
  Alcotest.(check int) "out 0" 2 (Dag.out_degree g 0);
  Alcotest.(check int) "in 3" 2 (Dag.in_degree g 3)

let test_sources_sinks () =
  let g = diamond () in
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 4 ] (Dag.sinks g);
  let iso = Dag.of_edges ~n:3 [] in
  Alcotest.(check (list int)) "isolated sources" [ 0; 1; 2 ] (Dag.sources iso);
  Alcotest.(check (list int)) "isolated sinks" [ 0; 1; 2 ] (Dag.sinks iso)

let check_topological g order =
  let pos = Array.make (Dag.node_count g) (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "is permutation" true
    (Array.for_all (fun p -> p >= 0) pos);
  for e = 0 to Dag.edge_count g - 1 do
    let s, d = Dag.edge g e in
    Alcotest.(check bool) "edge respects order" true (pos.(s) < pos.(d))
  done

let test_topo () =
  let g = diamond () in
  check_topological g (Dag.topological_order g)

let test_cycle_detection () =
  (try
     ignore (Dag.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]);
     Alcotest.fail "cycle not detected"
   with Dag.Cycle cyc ->
     Alcotest.(check bool) "cycle non-trivial" true (List.length cyc >= 3));
  try
    ignore (Dag.of_edges ~n:2 [ (1, 1) ]);
    Alcotest.fail "self loop not detected"
  with Dag.Cycle _ -> ()

let test_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dag.of_edges ~n:2 [ (0, 5) ]);
       false
     with Invalid_argument _ -> true)

let test_duplicate_edges_collapse () =
  let g = Dag.of_edges ~n:2 [ (0, 1); (0, 1); (0, 1) ] in
  Alcotest.(check int) "one edge" 1 (Dag.edge_count g)

let test_edge_id_lookup () =
  let g = diamond () in
  (match Dag.edge_id g ~src:0 ~dst:2 with
  | Some e ->
    let s, d = Dag.edge g e in
    Alcotest.(check (pair int int)) "round trip" (0, 2) (s, d)
  | None -> Alcotest.fail "edge 0->2 missing");
  Alcotest.(check (option int)) "absent edge" None (Dag.edge_id g ~src:1 ~dst:2);
  Alcotest.(check bool) "is_edge" true (Dag.is_edge g ~src:3 ~dst:4)

let test_levels () =
  let g = diamond () in
  let levels = Dag.depth_levels g in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2; 3 |] levels;
  Alcotest.(check int) "depth" 4 (Dag.depth g);
  Alcotest.(check int) "max width" 2 (Dag.max_width g);
  let members = Dag.level_members g in
  Alcotest.(check (array int)) "level 1 members" [| 1; 2 |] members.(1)

let test_longest_path_weighted () =
  let g = diamond () in
  let node_weight = function 0 -> 1. | 1 -> 5. | 2 -> 2. | 3 -> 1. | _ -> 3. in
  let length, path =
    Dag.longest_path g ~node_weight ~edge_weight:(fun _ -> 0.)
  in
  Alcotest.(check (float 1e-9)) "length" 10. length;
  Alcotest.(check (list int)) "path" [ 0; 1; 3; 4 ] path

let test_longest_path_edge_weights () =
  let g = diamond () in
  (* Make the 0->2 branch win through a heavy edge. *)
  let edge_weight e =
    match Dag.edge g e with (0, 2) -> 100. | _ -> 0.
  in
  let length, path =
    Dag.longest_path g ~node_weight:(fun _ -> 1.) ~edge_weight
  in
  Alcotest.(check (float 1e-9)) "length" 104. length;
  Alcotest.(check (list int)) "path" [ 0; 2; 3; 4 ] path

let test_bottom_top_levels () =
  let g = diamond () in
  let w = function 0 -> 1. | 1 -> 5. | 2 -> 2. | 3 -> 1. | _ -> 3. in
  let bl = Dag.bottom_levels g ~node_weight:w ~edge_weight:(fun _ -> 0.) in
  let tl = Dag.top_levels g ~node_weight:w ~edge_weight:(fun _ -> 0.) in
  Alcotest.(check (float 1e-9)) "bl entry = cp" 10. bl.(0);
  Alcotest.(check (float 1e-9)) "bl exit" 3. bl.(4);
  Alcotest.(check (float 1e-9)) "tl entry" 0. tl.(0);
  Alcotest.(check (float 1e-9)) "tl exit" 7. tl.(4);
  (* On a critical-path node, tl + bl equals the critical path length. *)
  Alcotest.(check (float 1e-9)) "tl+bl on cp node" 10. (tl.(1) +. bl.(1))

let test_reachability () =
  let g = diamond () in
  Alcotest.(check bool) "0 reaches 4" true (Dag.has_path g ~src:0 ~dst:4);
  Alcotest.(check bool) "1 not to 2" false (Dag.has_path g ~src:1 ~dst:2);
  Alcotest.(check bool) "self" true (Dag.has_path g ~src:2 ~dst:2);
  let r = Dag.reachable_from g 1 in
  Alcotest.(check (array bool)) "from 1" [| false; true; false; true; true |] r

let test_to_dot () =
  let g = diamond () in
  let dot = Dag.to_dot ~graph_name:"g" g in
  Alcotest.(check bool) "mentions edge" true
    (let contains s sub =
       let n = String.length sub in
       let rec loop i =
         i + n <= String.length s && (String.sub s i n = sub || loop (i + 1))
       in
       loop 0
     in
     contains dot "n0 -> n1" && contains dot "digraph g")

let test_empty_graph () =
  let g = Dag.of_edges ~n:0 [] in
  Alcotest.(check int) "no nodes" 0 (Dag.node_count g);
  Alcotest.(check int) "depth" 0 (Dag.depth g);
  Alcotest.(check int) "width" 0 (Dag.max_width g);
  let len, path = Dag.longest_path g ~node_weight:(fun _ -> 1.)
      ~edge_weight:(fun _ -> 0.) in
  Alcotest.(check (float 0.)) "lp length" 0. len;
  Alcotest.(check (list int)) "lp path" [] path

(* Random layered DAG generator for property tests. *)
let random_dag_gen =
  QCheck.Gen.(
    let* n = int_range 1 40 in
    let* density = float_range 0.05 0.9 in
    let* seed = int_range 0 10_000 in
    return (n, density, seed))

let build_random (n, density, seed) =
  let rng = Mcs_prng.Prng.create ~seed in
  let edges = ref [] in
  for s = 0 to n - 1 do
    for d = s + 1 to n - 1 do
      if Mcs_prng.Prng.bernoulli rng ~p:density then edges := (s, d) :: !edges
    done
  done;
  Dag.of_edges ~n !edges

let qcheck_topo_valid =
  QCheck.Test.make ~name:"topological order valid on random DAGs" ~count:100
    (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      let order = Dag.topological_order g in
      let pos = Array.make (Dag.node_count g) (-1) in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      let ok = ref (Array.for_all (fun p -> p >= 0) pos) in
      for e = 0 to Dag.edge_count g - 1 do
        let s, d = Dag.edge g e in
        if pos.(s) >= pos.(d) then ok := false
      done;
      !ok)

let qcheck_levels_consistent =
  QCheck.Test.make ~name:"levels: every edge climbs at least one level"
    ~count:100 (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      let levels = Dag.depth_levels g in
      let ok = ref true in
      for e = 0 to Dag.edge_count g - 1 do
        let s, d = Dag.edge g e in
        if levels.(d) < levels.(s) + 1 then ok := false
      done;
      (* And some predecessor realises level - 1. *)
      for v = 0 to Dag.node_count g - 1 do
        if Dag.in_degree g v = 0 then begin
          if levels.(v) <> 0 then ok := false
        end
        else if
          not
            (Array.exists
               (fun (u, _) -> levels.(u) = levels.(v) - 1)
               (Dag.preds g v))
        then ok := false
      done;
      !ok)

let qcheck_bottom_levels_monotone =
  QCheck.Test.make
    ~name:"bottom level of a predecessor dominates its successors"
    ~count:100 (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      let bl =
        Dag.bottom_levels g
          ~node_weight:(fun v -> 1. +. float_of_int (v mod 3))
          ~edge_weight:(fun _ -> 0.5)
      in
      let ok = ref true in
      for e = 0 to Dag.edge_count g - 1 do
        let s, d = Dag.edge g e in
        if bl.(s) < bl.(d) then ok := false
      done;
      !ok)

let qcheck_level_repair_bit_identical =
  QCheck.Test.make
    ~name:"bottom/top level repair ≡ full recomputation after weight changes"
    ~count:100 (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      let n = Dag.node_count g in
      let rng = Mcs_prng.Prng.create ~seed:(1 + (n * 31)) in
      let w = Array.init n (fun v -> 1. +. float_of_int (v mod 7)) in
      let nw v = w.(v) in
      let ew _ = 0.25 in
      let bl = Dag.bottom_levels g ~node_weight:nw ~edge_weight:ew in
      let tl = Dag.top_levels g ~node_weight:nw ~edge_weight:ew in
      let dirty = Bytes.make n '\000' in
      let ok = ref true in
      (* A run of single-node weight changes, each repaired in place and
         compared bit for bit against a from-scratch pass — decreases
         mimic the allocation loop, increases stress the other
         direction of the max folds. *)
      for _ = 1 to 20 do
        let v = Mcs_prng.Prng.int rng n in
        w.(v) <- w.(v) *. (if Mcs_prng.Prng.bernoulli rng ~p:0.7 then 0.8 else 1.3);
        Dag.bottom_levels_update g ~node_weight:nw ~edge_weight:ew ~changed:v
          ~dirty bl;
        Dag.top_levels_update g ~node_weight:nw ~edge_weight:ew ~changed:v
          ~dirty tl;
        let bl' = Dag.bottom_levels g ~node_weight:nw ~edge_weight:ew in
        let tl' = Dag.top_levels g ~node_weight:nw ~edge_weight:ew in
        for u = 0 to n - 1 do
          if not (Float.equal bl.(u) bl'.(u) && Float.equal tl.(u) tl'.(u))
          then ok := false
        done;
        (* The repair functions must leave the scratch all-zero. *)
        if String.exists (fun c -> c <> '\000') (Bytes.to_string dirty) then
          ok := false
      done;
      !ok)

let qcheck_longest_path_is_max =
  QCheck.Test.make
    ~name:"longest path equals max over nodes of tl + node weight + bl"
    ~count:100 (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      if Dag.node_count g = 0 then true
      else begin
        let w v = 1. +. float_of_int (v mod 5) in
        let ew _ = 0.25 in
        let bl = Dag.bottom_levels g ~node_weight:w ~edge_weight:ew in
        let tl = Dag.top_levels g ~node_weight:w ~edge_weight:ew in
        let len, path = Dag.longest_path g ~node_weight:w ~edge_weight:ew in
        let max_combined = ref 0. in
        for v = 0 to Dag.node_count g - 1 do
          max_combined := Float.max !max_combined (tl.(v) +. bl.(v))
        done;
        abs_float (len -. !max_combined) < 1e-9
        && path <> []
        (* The returned path realises the length. *)
        &&
        let rec path_len = function
          | [] -> 0.
          | [ v ] -> w v
          | u :: (v :: _ as rest) ->
            let e = Option.get (Dag.edge_id g ~src:u ~dst:v) in
            w u +. ew e +. path_len rest
        in
        abs_float (path_len path -. len) < 1e-9
      end)

let suite =
  [
    ( "dag",
      [
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
        Alcotest.test_case "topological order" `Quick test_topo;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        Alcotest.test_case "out of range" `Quick test_out_of_range;
        Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_collapse;
        Alcotest.test_case "edge ids" `Quick test_edge_id_lookup;
        Alcotest.test_case "levels" `Quick test_levels;
        Alcotest.test_case "longest path (nodes)" `Quick
          test_longest_path_weighted;
        Alcotest.test_case "longest path (edges)" `Quick
          test_longest_path_edge_weights;
        Alcotest.test_case "bottom/top levels" `Quick test_bottom_top_levels;
        Alcotest.test_case "reachability" `Quick test_reachability;
        Alcotest.test_case "dot export" `Quick test_to_dot;
        Alcotest.test_case "empty graph" `Quick test_empty_graph;
        QCheck_alcotest.to_alcotest qcheck_topo_valid;
        QCheck_alcotest.to_alcotest qcheck_levels_consistent;
        QCheck_alcotest.to_alcotest qcheck_bottom_levels_monotone;
        QCheck_alcotest.to_alcotest qcheck_level_repair_bit_identical;
        QCheck_alcotest.to_alcotest qcheck_longest_path_is_max;
      ] );
  ]

(* ---------- Transitive closure / reduction ---------- *)

let test_closure_diamond () =
  let g = diamond () in
  let c = Dag.transitive_closure g in
  (* 0 reaches 1 2 3 4; 1 -> 3 4; 2 -> 3 4; 3 -> 4: 4+2+2+1 edges. *)
  Alcotest.(check int) "edge count" 9 (Dag.edge_count c);
  Alcotest.(check bool) "0->4 direct" true (Dag.is_edge c ~src:0 ~dst:4)

let test_reduction_removes_shortcut () =
  (* 0 -> 1 -> 2 plus a shortcut 0 -> 2. *)
  let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "shortcut redundant" true
    (Dag.is_transitively_redundant g
       (Option.get (Dag.edge_id g ~src:0 ~dst:2)));
  Alcotest.(check bool) "chain edge essential" false
    (Dag.is_transitively_redundant g
       (Option.get (Dag.edge_id g ~src:0 ~dst:1)));
  let r = Dag.transitive_reduction g in
  Alcotest.(check int) "two edges left" 2 (Dag.edge_count r);
  Alcotest.(check bool) "shortcut gone" false (Dag.is_edge r ~src:0 ~dst:2)

let test_reduction_keeps_diamond () =
  (* No diamond edge is redundant. *)
  let g = diamond () in
  let r = Dag.transitive_reduction g in
  Alcotest.(check int) "unchanged" 5 (Dag.edge_count r)

let qcheck_reduction_preserves_reachability =
  QCheck.Test.make
    ~name:"transitive reduction preserves reachability; closure contains both"
    ~count:60 (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      let r = Dag.transitive_reduction g in
      let c = Dag.transitive_closure g in
      let n = Dag.node_count g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let from_g = Dag.reachable_from g u in
        let from_r = Dag.reachable_from r u in
        for v = 0 to n - 1 do
          if from_g.(v) <> from_r.(v) then ok := false;
          if u <> v && from_g.(v) && not (Dag.is_edge c ~src:u ~dst:v) then
            ok := false
        done
      done;
      !ok
      && Dag.edge_count r <= Dag.edge_count g
      && Dag.edge_count g <= Dag.edge_count c)

let qcheck_reduction_minimal =
  QCheck.Test.make
    ~name:"no edge of the transitive reduction is redundant" ~count:60
    (QCheck.make random_dag_gen) (fun params ->
      let g = build_random params in
      let r = Dag.transitive_reduction g in
      let ok = ref true in
      for e = 0 to Dag.edge_count r - 1 do
        if Dag.is_transitively_redundant r e then ok := false
      done;
      !ok)

let closure_cases =
  ( "dag.transitive",
    [
      Alcotest.test_case "closure diamond" `Quick test_closure_diamond;
      Alcotest.test_case "reduction shortcut" `Quick
        test_reduction_removes_shortcut;
      Alcotest.test_case "reduction keeps diamond" `Quick
        test_reduction_keeps_diamond;
      QCheck_alcotest.to_alcotest qcheck_reduction_preserves_reachability;
      QCheck_alcotest.to_alcotest qcheck_reduction_minimal;
    ] )

let suite = suite @ [ closure_cases ]
