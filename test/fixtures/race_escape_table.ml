(* Seeded violation: ESCAPE002 escape-captured-container.
   The worker writes into a captured Hashtbl with no guard — Hashtbl
   is not safe for concurrent mutation. Never built. *)

let index_all keys =
  let table = Hashtbl.create 16 in
  let worker () =
    (* BAD: captured container mutated on another domain. *)
    List.iter (fun k -> Hashtbl.replace table k (String.length k)) keys
  in
  let d = Domain.spawn worker in
  Domain.join d;
  table

(* GOOD: guard the shared table. *)
let index_all_locked keys =
  let table = Hashtbl.create 16 in
  let lock = Mutex.create () in
  let worker () =
    Mutex.protect lock @@ fun () ->
    List.iter (fun k -> Hashtbl.replace table k (String.length k)) keys
  in
  let d = Domain.spawn worker in
  Domain.join d;
  table
