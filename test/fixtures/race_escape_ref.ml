(* Seeded violation: ESCAPE001 escape-captured-write.
   The spawned closure increments a plain ref captured from the
   spawning domain — a lost-update race. Never built. *)

let count_twice () =
  let hits = ref 0 in
  (* BAD: captured ref mutated on another domain. *)
  let d = Domain.spawn (fun () -> incr hits) in
  incr hits;
  Domain.join d;
  !hits

(* GOOD: an Atomic carries the cross-domain count. *)
let count_twice_atomic () =
  let hits = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr hits) in
  Atomic.incr hits;
  Domain.join d;
  Atomic.get hits
