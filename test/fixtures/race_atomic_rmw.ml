(* Seeded violation: ATOM001 atomic-get-set-rmw.
   get-then-set drops concurrent increments between the two calls;
   the atomic type only helps if the update itself is atomic.
   Never built. *)

let gauge = Atomic.make 0

(* BAD: lossy read-modify-write. *)
let bump_lossy () = Atomic.set gauge (Atomic.get gauge + 1)

(* GOOD: the primitive carries the update. *)
let bump () = Atomic.incr gauge
