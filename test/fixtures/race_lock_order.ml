(* Seeded violation: LOCK002 lock-order-cycle.
   [transfer] takes alpha before beta, [refund] takes beta before
   alpha — two domains running one each deadlock. Never built. *)

let alpha = Mutex.create ()
let beta = Mutex.create ()
let balance = ref 0

let transfer n =
  Mutex.protect alpha @@ fun () ->
  Mutex.protect beta @@ fun () -> balance := !balance + n

(* BAD: acquisition order reversed — beta -> alpha closes the cycle. *)
let refund n =
  Mutex.protect beta @@ fun () ->
  Mutex.protect alpha @@ fun () -> balance := !balance - n
