(* Seeded violation: LOCK003 wait-outside-loop.
   The bare [Condition.wait] trusts a single wakeup to mean the
   predicate holds; spurious wakeups and stolen signals break it.
   Never built. *)

let lock = Mutex.create ()
let ready = Condition.create ()
let pending = ref 0

(* BAD: [if]-shaped wait, no predicate recheck. *)
let take () =
  Mutex.protect lock @@ fun () ->
  if !pending = 0 then Condition.wait ready lock;
  pending := !pending - 1

(* GOOD: while-loop recheck. *)
let take_safely () =
  Mutex.protect lock @@ fun () ->
  while !pending = 0 do
    Condition.wait ready lock
  done;
  pending := !pending - 1
