(* Seeded violation: LOCK001 guarded-field-unlocked.
   [hits] is declared [@guarded_by lock] but [bump] touches it with no
   mutex held; [bump_locked] shows the clean shape. Never built —
   linted as text by test_analysis and the CI fixture loop. *)

type t = {
  lock : Mutex.t;
  mutable hits : int; [@guarded_by lock]
}

let make () = { lock = Mutex.create (); hits = 0 }

(* BAD: lock-free write to a guarded field. *)
let bump t = t.hits <- t.hits + 1

(* GOOD: same write under the guard. *)
let bump_locked t = Mutex.protect t.lock @@ fun () -> t.hits <- t.hits + 1
