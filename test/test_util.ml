open Mcs_util

let check_float = Alcotest.(check (float 1e-9))

let test_sum_kahan () =
  check_float "sum of many small" 1.
    (Floatx.sum (Array.make 1_000_000 1e-6));
  check_float "empty sum" 0. (Floatx.sum [||]);
  check_float "sum list" 6. (Floatx.sum_list [ 1.; 2.; 3. ])

let test_mean_stddev () =
  check_float "mean" 2. (Floatx.mean [| 1.; 2.; 3. |]);
  check_float "mean empty" 0. (Floatx.mean [||]);
  check_float "stddev" 1. (Floatx.stddev [| 1.; 2.; 3. |]);
  check_float "stddev singleton" 0. (Floatx.stddev [| 5. |])

let test_median () =
  check_float "odd" 2. (Floatx.median [| 3.; 1.; 2. |]);
  check_float "even" 2.5 (Floatx.median [| 4.; 1.; 2.; 3. |]);
  check_float "empty" 0. (Floatx.median [||])

let test_minmax () =
  check_float "min" 1. (Floatx.minimum [| 3.; 1.; 2. |]);
  check_float "max" 3. (Floatx.maximum [| 3.; 1.; 2. |]);
  Alcotest.check_raises "min empty"
    (Invalid_argument "Floatx.minimum: empty array") (fun () ->
      ignore (Floatx.minimum [||]))

let test_clamp () =
  check_float "below" 0. (Floatx.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (Floatx.clamp ~lo:0. ~hi:1. 3.);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0. ~hi:1. 0.5)

let test_tolerant_cmp () =
  Alcotest.(check bool) "le within eps" true Floatx.(1. <=. (1. -. 1e-12));
  Alcotest.(check bool) "lt beyond eps" true Floatx.(1. <. 1.1);
  Alcotest.(check bool) "lt within eps is false" false
    Floatx.(1. <. (1. +. 1e-12));
  Alcotest.(check bool) "approx_eq relative" true
    (Floatx.approx_eq 1e12 (1e12 +. 1.) ~tol:1e-9)

let test_heap_order () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_peek_clear () =
  let h = Heap.of_list ~cmp:compare [ 3; 1; 2 ] in
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check int) "peek does not pop" 3 (Heap.length h);
  Heap.clear h;
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_custom_cmp () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 1; 3; 2 ];
  Alcotest.(check int) "max first" 3 (Heap.pop_exn h)

let test_heap_to_list () =
  let h = Heap.of_list ~cmp:compare [ 2; 1; 3 ] in
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ]
    (List.sort compare (Heap.to_list h));
  Alcotest.(check int) "unchanged" 3 (Heap.length h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap drains any int list sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.of_list ~cmp:compare l in
      let drained = List.init (List.length l) (fun _ -> Heap.pop_exn h) in
      drained = List.sort compare l)

(* Interleaved pushes and pops against a sorted-list model: every int
   [x] is a push of [x] except multiples of 3, which are pops. *)
let qcheck_heap_interleaved =
  QCheck.Test.make ~name:"heap matches a sorted-list model under push/pop mix"
    ~count:200
    QCheck.(list int)
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun x ->
          if x mod 3 = 0 then begin
            let expected =
              match !model with
              | [] -> None
              | m :: rest ->
                model := rest;
                Some m
            in
            if Heap.pop h <> expected then ok := false
          end
          else begin
            Heap.push h x;
            model := List.sort compare (x :: !model)
          end)
        ops;
      !ok
      && Heap.length h = List.length !model
      && List.init (Heap.length h) (fun _ -> Heap.pop_exn h) = !model)

let test_heap_pop_releases_elements () =
  (* Regression for the pop space leak: the vacated slot used to keep
     the last element reachable through [t.data] forever. Weak pointers
     observe that popped (and dropped) elements become collectable. *)
  let h = Heap.create ~cmp:(fun a b -> compare !a !b) in
  let w = Weak.create 2 in
  for i = 0 to 4 do
    let r = ref i in
    Heap.push h r;
    if i < 2 then Weak.set w i (Some r)
  done;
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "popped elements are collectable" true
    (Weak.get w 0 = None && Weak.get w 1 = None);
  Alcotest.(check int) "remaining elements" 3 (Heap.length h);
  Alcotest.(check (list int)) "order preserved" [ 2; 3; 4 ]
    (List.init 3 (fun _ -> !(Heap.pop_exn h)))

(* ---------- Availability index ---------- *)

let test_avail_index_basic () =
  let avail = [| 3.; 1.; 2.; 0.; 5.; 4. |] in
  let groups = [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] in
  let idx = Avail_index.create ~avail ~groups in
  Alcotest.(check int) "groups" 2 (Avail_index.group_count idx);
  Alcotest.(check (array int)) "group 0 sorted" [| 1; 2; 0 |]
    (Avail_index.sorted idx 0);
  Alcotest.(check (array int)) "group 1 sorted" [| 3; 5; 4 |]
    (Avail_index.sorted idx 1);
  Avail_index.update idx [| 1; 2 |] 7.;
  Alcotest.(check (array int)) "after update, id breaks the tie"
    [| 0; 1; 2 |]
    (Avail_index.sorted idx 0);
  check_float "shared array updated" 7. avail.(1);
  check_float "avail accessor" 7. (Avail_index.avail idx 2);
  (* Cross-group update in one call. *)
  Avail_index.update idx [| 0; 4 |] 0.5;
  Alcotest.(check (array int)) "group 0 repaired" [| 0; 1; 2 |]
    (Avail_index.sorted idx 0);
  Alcotest.(check (array int)) "group 1 repaired" [| 3; 4; 5 |]
    (Avail_index.sorted idx 1)

let test_avail_index_rejects_bad_ids () =
  let raises f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "id out of range" true
    (raises (fun () ->
         ignore (Avail_index.create ~avail:[| 0. |] ~groups:[| [| 1 |] |])));
  Alcotest.(check bool) "duplicate id" true
    (raises (fun () ->
         ignore
           (Avail_index.create ~avail:[| 0.; 0. |]
              ~groups:[| [| 0 |]; [| 0 |] |])));
  let idx =
    Avail_index.create ~avail:[| 0.; 0. |] ~groups:[| [| 0 |] |]
  in
  Alcotest.(check bool) "unindexed id" true
    (raises (fun () -> Avail_index.update idx [| 1 |] 1.))

let qcheck_avail_index_matches_resort =
  QCheck.Test.make
    ~name:"avail index view equals a full (avail, id) re-sort after updates"
    ~count:150
    QCheck.(list (pair (pair (int_range 0 19) (int_range 0 19))
                    (float_range 0. 50.)))
    (fun ops ->
      let avail = Array.make 20 0. in
      let groups = [| Array.init 10 Fun.id; Array.init 10 (fun i -> 10 + i) |] in
      let idx = Avail_index.create ~avail ~groups in
      let reference g =
        let v = Array.copy groups.(g) in
        Array.sort
          (fun p q ->
            let c = Float.compare avail.(p) avail.(q) in
            if c <> 0 then c else compare p q)
          v;
        v
      in
      List.for_all
        (fun ((a, b), v) ->
          Avail_index.update idx (if a = b then [| a |] else [| a; b |]) v;
          Avail_index.sorted idx 0 = reference 0
          && Avail_index.sorted idx 1 = reference 1)
        ops)

let test_table_render () =
  let t = Table.create ~title:"T" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length rendered > 0 && String.sub rendered 0 1 = "T");
  Alcotest.check_raises "bad width"
    (Invalid_argument "Table.add_row: 3 cells for 2 columns") (fun () ->
      Table.add_row t [ "x"; "y"; "z" ])

let test_table_float_row () =
  let t = Table.create ~title:"T" ~header:[ "k"; "v" ] in
  let t = Table.add_float_row t "pi" [ 3.14159 ] in
  Alcotest.(check bool) "rendered value" true
    (let r = Table.render t in
     let contains s sub =
       let n = String.length sub in
       let rec loop i =
         i + n <= String.length s && (String.sub s i n = sub || loop (i + 1))
       in
       loop 0
     in
     contains r "3.142");
  Alcotest.(check string) "nan formats as dash" "-" (Table.fmt_float nan)

let suite =
  [
    ( "util.floatx",
      [
        Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
        Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
        Alcotest.test_case "median" `Quick test_median;
        Alcotest.test_case "min/max" `Quick test_minmax;
        Alcotest.test_case "clamp" `Quick test_clamp;
        Alcotest.test_case "tolerant comparisons" `Quick test_tolerant_cmp;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_order;
        Alcotest.test_case "peek/clear" `Quick test_heap_peek_clear;
        Alcotest.test_case "custom comparison" `Quick test_heap_custom_cmp;
        Alcotest.test_case "to_list" `Quick test_heap_to_list;
        Alcotest.test_case "pop releases elements" `Quick
          test_heap_pop_releases_elements;
        QCheck_alcotest.to_alcotest qcheck_heap_sorts;
        QCheck_alcotest.to_alcotest qcheck_heap_interleaved;
      ] );
    ( "util.avail_index",
      [
        Alcotest.test_case "sorted views & updates" `Quick
          test_avail_index_basic;
        Alcotest.test_case "input validation" `Quick
          test_avail_index_rejects_bad_ids;
        QCheck_alcotest.to_alcotest qcheck_avail_index_matches_resort;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "float rows" `Quick test_table_float_row;
      ] );
  ]
