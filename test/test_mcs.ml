let () =
  Alcotest.run "mcs"
    (Test_util.suite @ Test_prng.suite @ Test_dag.suite @ Test_platform.suite
    @ Test_taskmodel.suite @ Test_ptg.suite @ Test_sched.suite @ Test_sim.suite @ Test_metrics.suite @ Test_experiments.suite
    @ Test_mheft.suite @ Test_release.suite @ Test_trace.suite
    @ Test_timeline.suite @ Test_parmap.suite @ Test_properties.suite
    @ Test_online.suite @ Test_malleable.suite @ Test_fault.suite @ Test_integration.suite @ Test_check.suite
    @ Test_obs.suite @ Test_serve.suite @ Test_analysis.suite)
