module Dag = Mcs_dag.Dag

type t = {
  tasks : int;
  depth : int;
  max_width : int;
  total_work : float;
  critical_path_flops : float;
  total_bytes : float;
  comm_to_comp : float;
  avg_parallelism : float;
  level_widths : int array;
  edge_count : int;
}

let analyse ptg =
  let dag = ptg.Ptg.dag in
  let total_work = Ptg.work ptg in
  (* Critical path measured in flops: equivalent to seconds at any fixed
     speed, so reuse the 1 GFlop/s sequential critical path. *)
  let critical_path_flops = Ptg.critical_path_seq ptg ~gflops:1. *. 1e9 in
  let total_bytes = Mcs_util.Floatx.sum ptg.Ptg.edge_bytes in
  let levels = Dag.depth_levels dag in
  let depth = Dag.depth dag in
  let level_widths = Array.make (max 1 depth) 0 in
  for v = 0 to Dag.node_count dag - 1 do
    if not (Ptg.is_virtual ptg v) then
      level_widths.(levels.(v)) <- level_widths.(levels.(v)) + 1
  done;
  let edge_count = ref 0 in
  for e = 0 to Dag.edge_count dag - 1 do
    let s, d = Dag.edge dag e in
    if not (Ptg.is_virtual ptg s || Ptg.is_virtual ptg d) then
      incr edge_count
  done;
  {
    tasks = Ptg.task_count ptg;
    depth;
    max_width = Ptg.max_width ptg;
    total_work;
    critical_path_flops;
    total_bytes;
    comm_to_comp = (if total_work <= 0. then 0. else total_bytes /. total_work);
    avg_parallelism =
      (if critical_path_flops <= 0. then 1.
       else total_work /. critical_path_flops);
    level_widths;
    edge_count = !edge_count;
  }

(* Levels holding only virtual entry/exit nodes show as zero-width; trim
   them from the display (they stay in [level_widths]). *)
let trim_virtual_levels widths =
  let l = Array.to_list widths in
  let rec drop = function 0 :: rest -> drop rest | l -> l in
  List.rev (drop (List.rev (drop l)))

let pp ppf a =
  Format.fprintf ppf
    "@[<v>tasks: %d (depth %d, max width %d, %d data edges)@,\
     work: %.3g Gflop (critical path %.3g Gflop, avg parallelism %.2f)@,\
     data: %.3g MB (comm/comp %.3g B/flop)@,\
     level widths: %s@]"
    a.tasks a.depth a.max_width a.edge_count (a.total_work /. 1e9)
    (a.critical_path_flops /. 1e9)
    a.avg_parallelism (a.total_bytes /. 1e6) a.comm_to_comp
    (String.concat "-"
       (List.map string_of_int (trim_virtual_levels a.level_widths)))
