(** Imperative binary min-heap.

    The heap is generic in the element type and is ordered by the
    comparison function supplied at creation ([cmp a b < 0] means [a] has
    higher priority, i.e., pops first). Used for the simulator event queue
    and the ready-task queues of the mapper. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap ordered by [cmp]. *)

val copy : 'a t -> 'a t
(** Independent heap with the same ordering and contents: pushes and
    pops on either side never affect the other. Elements themselves are
    shared, not cloned — store immutable elements (or deep-copy them)
    if the copy must be fully self-contained. O(n). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element; O(log n). *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] when empty. The
    heap drops its own reference to the element, so a popped value is
    collectable as soon as the caller is done with it. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. @raise Invalid_argument when the heap is empty. *)

val peek : 'a t -> 'a option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit
(** Remove every element and release the backing store. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order (heap is unchanged). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Heapify a list; O(n log n). *)
