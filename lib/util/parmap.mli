(** Parallel map over independent work items using OCaml 5 domains.

    Work items are drawn from a shared atomic counter so uneven item
    costs balance across domains; results keep the input order. The
    mapped function must be pure or touch only item-local state (every
    use in this repository maps over self-contained scenarios carrying
    their own PRNG).

    The domain count is [MCS_DOMAINS] when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()], capped at 8; 1
    degrades to [List.map]. An ill-formed [MCS_DOMAINS] is diagnosed on
    stderr (once — the verdict is cached for the process) instead of
    being silently ignored. *)

val parse_domains : string -> (int, string) result
(** Validate one [MCS_DOMAINS] value: [Ok n] for an integer [n >= 1],
    otherwise a human-readable error (non-numeric, zero or negative). *)

val domain_count : unit -> int
(** The effective parallelism used by {!map}, computed once per process
    (first call reads and validates [MCS_DOMAINS]). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f l] is [List.map f l] computed on several domains. The first
    exception raised by any worker is re-raised — with that worker's
    backtrace — after all domains have joined. *)
