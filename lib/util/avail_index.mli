(** Incremental per-group availability index.

    The list mapper ranks the processors of each cluster by availability
    time for every task it places. Re-sorting a cluster's processor
    array per task costs O(P log P) per task×cluster; this index keeps,
    for each group (cluster), a permanently sorted view keyed by
    [(avail, id)] and repairs it in O(P + m) when a commit moves [m]
    processors — the only thing a commit can do.

    The index shares the caller's availability array: {!update} writes
    both the array and the sorted views, so reads through the original
    array stay coherent. *)

type t

val create : avail:float array -> groups:int array array -> t
(** [create ~avail ~groups] builds an index over the ids appearing in
    [groups], keyed by [(avail.(id), id)]. Groups must be disjoint and
    every id must be a valid index into [avail]; the [avail] array is
    shared, not copied.
    @raise Invalid_argument if an id is out of range or appears in two
    groups. *)

val group_count : t -> int

val sorted : t -> int -> int array
(** [sorted t g] is group [g]'s ids in increasing [(avail, id)] order.
    The returned array is the index's internal state: treat it as
    read-only, and as invalidated by the next {!update}. *)

val avail : t -> int -> float
(** Current availability of one id. *)

val update : t -> int array -> float -> unit
(** [update t ids v] sets the availability of every id in [ids] to [v]
    and repairs the sorted views. Ids may span several groups (each
    affected group is repaired with a single merge pass) and may
    contain duplicates (deduplicated before the repair). Safe to call
    with an empty array (no-op).

    {b Mirror contract with {!Timeline}.} The mapper pairs every
    [update] with a {!Timeline.reserve} and every {!release} with a
    {!Timeline.release}. [Timeline] {e ignores} zero-length intervals,
    so a zero-length commit must not move the index either: the caller
    skips the [update] (or re-writes the unchanged availability, which
    leaves the views identical). The interleaved reserve/release
    equivalence property in [test_timeline.ml] pins the two structures
    to the same horizon under that discipline.
    @raise Invalid_argument on an id outside every group or a
    non-finite [v] (the mirror of [Timeline]'s rejection of ill-formed
    intervals). *)

val release : t -> int array -> float -> unit
(** [release t ids v] rolls the availability of [ids] back to [v] —
    the rollback counterpart of a commit, used when fault recovery
    revokes placements. The repair pass is direction-agnostic, so this
    is exactly {!update}; the distinct name marks intent at call sites
    and pins the rollback contract: after [release t ids v] the index is
    indistinguishable from one freshly built with those availabilities
    (property-tested). *)
