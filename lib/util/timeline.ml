(* Per-processor reservations as a pair of parallel sorted arrays
   (starts, finishes). Reservations never overlap, so both arrays are
   increasing and every query is a binary search; the former
   representation was a linear (start, finish) list per processor. *)

type line = {
  mutable starts : float array;
  mutable finishes : float array;
  mutable len : int;
}

type t = {
  nb_procs : int;
  lines : line array;
}

let eps = 1e-9

let create ~procs =
  if procs < 1 then invalid_arg "Timeline.create: procs < 1";
  {
    nb_procs = procs;
    lines =
      Array.init procs (fun _ -> { starts = [||]; finishes = [||]; len = 0 });
  }

let procs t = t.nb_procs

let copy t =
  {
    nb_procs = t.nb_procs;
    lines =
      Array.map
        (fun l ->
          {
            starts = Array.copy l.starts;
            finishes = Array.copy l.finishes;
            len = l.len;
          })
        t.lines;
  }

let check_proc t proc =
  if proc < 0 || proc >= t.nb_procs then
    invalid_arg (Printf.sprintf "Timeline: processor %d out of range" proc)

(* Index of the first reservation with [finish > at]; [line.len] when
   none. Finishes are strictly increasing, so this is a plain lower
   bound. *)
let first_finishing_after line at =
  let lo = ref 0 and hi = ref line.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if line.finishes.(mid) > at then hi := mid else lo := mid + 1
  done;
  !lo

let ensure_capacity line =
  let cap = Array.length line.starts in
  if line.len = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let ns = Array.make ncap 0. and nf = Array.make ncap 0. in
    Array.blit line.starts 0 ns 0 line.len;
    Array.blit line.finishes 0 nf 0 line.len;
    line.starts <- ns;
    line.finishes <- nf
  end

let reserve t ~proc ~start ~finish =
  check_proc t proc;
  if Float.is_nan start || Float.is_nan finish || finish < start then
    invalid_arg "Timeline.reserve: ill-formed interval";
  if finish -. start <= eps then ()
  else begin
    let line = t.lines.(proc) in
    let i = first_finishing_after line (start +. eps) in
    if i < line.len && line.starts.(i) < finish -. eps then
      invalid_arg
        (Printf.sprintf
           "Timeline.reserve: [%g, %g) overlaps [%g, %g) on processor %d"
           start finish line.starts.(i) line.finishes.(i) proc);
    ensure_capacity line;
    Array.blit line.starts i line.starts (i + 1) (line.len - i);
    Array.blit line.finishes i line.finishes (i + 1) (line.len - i);
    line.starts.(i) <- start;
    line.finishes.(i) <- finish;
    line.len <- line.len + 1
  end

(* Rollback of a committed reservation: the fault-recovery path revokes
   placements killed by a processor outage. The interval must match an
   existing reservation exactly — releasing "roughly that slot" would
   silently corrupt the profile. *)
let release t ~proc ~start ~finish =
  check_proc t proc;
  if Float.is_nan start || Float.is_nan finish || finish < start then
    invalid_arg "Timeline.release: ill-formed interval";
  if finish -. start <= eps then ()
  else begin
    let line = t.lines.(proc) in
    let i = first_finishing_after line (start +. eps) in
    if
      i >= line.len
      || Float.abs (line.starts.(i) -. start) > eps
      || Float.abs (line.finishes.(i) -. finish) > eps
    then
      invalid_arg
        (Printf.sprintf
           "Timeline.release: no reservation [%g, %g) on processor %d" start
           finish proc)
    else begin
      Array.blit line.starts (i + 1) line.starts i (line.len - i - 1);
      Array.blit line.finishes (i + 1) line.finishes i (line.len - i - 1);
      line.len <- line.len - 1
    end
  end

let is_free t ~proc ~start ~finish =
  check_proc t proc;
  if finish -. start <= eps then true
  else begin
    let line = t.lines.(proc) in
    let i = first_finishing_after line (start +. eps) in
    i = line.len || line.starts.(i) >= finish -. eps
  end

let free_at t ~proc ~at ~duration =
  is_free t ~proc ~start:at ~finish:(at +. duration)

let next_candidates ?procs_subset t ~after =
  let ends = ref [ after ] in
  let add_line line =
    let i = first_finishing_after line (after +. eps) in
    for j = i to line.len - 1 do
      ends := line.finishes.(j) :: !ends
    done
  in
  (match procs_subset with
  | None -> Array.iter add_line t.lines
  | Some subset ->
    Array.iter
      (fun p ->
        check_proc t p;
        add_line t.lines.(p))
      subset);
  List.sort_uniq Float.compare !ends

(* End of the last reservation on [proc] that finishes at or before [at]
   (0 when idle since the origin) — the best-fit key. *)
let previous_end t ~proc ~at =
  let line = t.lines.(proc) in
  let i = first_finishing_after line (at +. eps) in
  if i = 0 then 0. else Float.max 0. line.finishes.(i - 1)

let find_slot ?procs_subset t ~count ~duration ~after =
  let candidates_procs =
    match procs_subset with
    | Some a -> a
    | None -> Array.init t.nb_procs (fun p -> p)
  in
  if count < 1 || count > Array.length candidates_procs then None
  else begin
    (* The earliest feasible start only depends on the considered
       processors, so candidate times come from that subset alone. *)
    let times = next_candidates ~procs_subset:candidates_procs t ~after in
    let rec try_times = function
      | [] -> None
      | start :: rest ->
        let free =
          Array.to_list candidates_procs
          |> List.filter (fun p -> free_at t ~proc:p ~at:start ~duration)
        in
        if List.length free >= count then begin
          (* Best fit: latest previous reservation end first. *)
          let keyed =
            List.map (fun p -> (previous_end t ~proc:p ~at:start, p)) free
          in
          let sorted =
            List.sort
              (fun (e1, p1) (e2, p2) ->
                let c = Float.compare e2 e1 in
                if c <> 0 then c else compare p1 p2)
              keyed
          in
          let chosen =
            List.filteri (fun i _ -> i < count) sorted
            |> List.map snd |> List.sort compare |> Array.of_list
          in
          Some (start, chosen)
        end
        else try_times rest
    in
    try_times times
  end

let busy_intervals t ~proc =
  check_proc t proc;
  let line = t.lines.(proc) in
  List.init line.len (fun i -> (line.starts.(i), line.finishes.(i)))
