(** Minimal JSON reader.

    The repository emits JSON with hand-rolled encoders ({!Mcs_sched}
    traces, online event logs); this is the matching hand-rolled
    decoder, used by the trace importers and the [mcs_check] linter. It
    accepts standard JSON (RFC 8259): objects, arrays, strings with
    escapes, numbers, booleans and null. No dependency, no streaming —
    documents here are at most a few megabytes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** fields in document order *)

val parse : string -> (t, string) result
(** Parse one JSON document. The error message carries the byte offset
    of the first offending character. Trailing whitespace is allowed,
    trailing garbage is not. *)

val encode : t -> string
(** Compact (single-line, no spaces) serialisation of a document, the
    encoder matching {!parse}: [parse (encode v) = Ok v] for every
    value whose numbers are finite. Control characters in strings are
    escaped, other bytes pass through verbatim; integral numbers within
    [1e15] print without an exponent, other numbers with round-trip
    precision.
    @raise Invalid_argument on a NaN or infinite [Num] (JSON has no
    representation for them). *)

(** {2 Accessors}

    All return [None] on a shape mismatch, so client code reads as a
    chain of [Option] binds rather than try/with. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integral value within [int] range. *)

val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val get_float : string -> t -> float option
(** [get_float k obj] is [member k obj >>= to_float]; same pattern for
    the other [get_] accessors. *)

val get_int : string -> t -> int option
val get_string : string -> t -> string option
val get_list : string -> t -> t list option
