type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

(* The backing array is copied but the elements are shared — callers
   that store mutable elements must deep-copy them themselves (the
   engine's event queue stores immutable entries, so sharing is safe). *)
let copy t = { cmp = t.cmp; data = Array.copy t.data; size = t.size }

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Slots in [size, cap) may still reference elements that left the heap:
   [grow] seeds them with whatever was being pushed, and [pop] parks a
   then-live element there. Dropping the trailing region once occupancy
   falls below a quarter keeps those strays from pinning popped values. *)
let shrink t =
  if t.size = 0 then t.data <- [||]
  else if 4 * t.size <= Array.length t.data then
    t.data <- Array.sub t.data 0 t.size

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Overwrite the vacated slot with a still-live element so the
         array does not keep the popped value reachable forever. *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end;
    shrink t;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let peek t = if t.size = 0 then None else Some t.data.(0)

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc)
  in
  loop (t.size - 1) []

let of_list ~cmp l =
  let t = create ~cmp in
  List.iter (push t) l;
  t
