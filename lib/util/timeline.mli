(** Per-processor reservation timelines with hole search — the machinery
    behind conservative backfilling (Feitelson et al., JSSPP'97), where a
    task may slide into an idle hole provided no already-reserved task is
    delayed.

    A timeline tracks, for a fixed set of processors, the busy intervals
    already reserved on each. {!find_slot} returns the earliest time at
    or after a release time at which a given number of processors are
    simultaneously free for a given duration, together with a best-fit
    choice of processors. Reservations never move once placed.

    Each processor's reservations are stored as parallel sorted arrays
    of starts and finishes, so point queries ({!is_free}, the best-fit
    key) are O(log r) binary searches in the number of reservations [r]
    on that processor, and {!reserve} is a binary search plus an array
    shift. *)

type t

val create : procs:int -> t
(** Timeline for processors [0 .. procs-1], initially all idle.
    @raise Invalid_argument if [procs < 1]. *)

val procs : t -> int

val copy : t -> t
(** Deep copy: the clone's reservations evolve independently of the
    original's — the snapshot path of the online engine clones the
    fault ledger with this. O(total reservations). *)

val reserve : t -> proc:int -> start:float -> finish:float -> unit
(** Mark [proc] busy on [start, finish). Zero-length reservations are
    ignored.
    @raise Invalid_argument if the interval is ill-formed, out of range,
    or overlaps an existing reservation on that processor. *)

val release : t -> proc:int -> start:float -> finish:float -> unit
(** Remove the reservation [start, finish) from [proc] — the rollback of
    a previous {!reserve}, used when fault recovery revokes a committed
    placement. Zero-length intervals are ignored. After a release the
    timeline is indistinguishable from one where the reservation was
    never made.
    @raise Invalid_argument if the interval is ill-formed, out of range,
    or does not match an existing reservation exactly (within the
    internal epsilon). *)

val is_free : t -> proc:int -> start:float -> finish:float -> bool
(** Whether [proc] is idle during the whole interval. *)

val free_at : t -> proc:int -> at:float -> duration:float -> bool
(** [is_free] convenience on [at, at + duration). *)

val next_candidates : ?procs_subset:int array -> t -> after:float -> float list
(** The release points of the availability profile at or after [after]:
    [after] itself plus every reservation end beyond it (on the
    processors of [procs_subset] when given, all of them otherwise),
    sorted and deduplicated. The earliest feasible start of any new
    reservation on those processors is one of these. *)

val find_slot :
  ?procs_subset:int array -> t -> count:int -> duration:float ->
  after:float -> (float * int array) option
(** [find_slot t ~count ~duration ~after] is the earliest [start >=
    after] such that [count] processors (within [procs_subset] when
    given) are free on [start, start + duration), paired with a
    best-fit processor choice (the ones whose previous reservation ends
    latest). [None] only when [count] exceeds the processors considered.
    With finite reservations a slot always exists after the last
    release. *)

val busy_intervals : t -> proc:int -> (float * float) list
(** Sorted reservations of one processor (inspection/tests). *)
