type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos fmt = Printf.ksprintf (fun m -> raise (Fail (pos, m))) fmt

type state = {
  src : string;
  mutable pos : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st.pos "expected '%c', found '%c'" c d
  | None -> fail st.pos "expected '%c', found end of input" c

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos "invalid literal"

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "invalid hex digit '%c'" c

(* Encode one Unicode scalar value as UTF-8. Escaped surrogate pairs are
   combined by the caller. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st.pos "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v * 16) + hex_digit st.pos st.src.[st.pos];
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st.pos "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let code = parse_hex4 st in
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* High surrogate: require the escaped low half. *)
            if
              st.pos + 2 <= String.length st.src
              && st.src.[st.pos] = '\\'
              && st.src.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let low = parse_hex4 st in
              if low < 0xDC00 || low > 0xDFFF then
                fail st.pos "invalid low surrogate";
              add_utf8 buf
                (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
            end
            else fail st.pos "unpaired surrogate"
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail st.pos "unpaired surrogate"
          else add_utf8 buf code
        | c -> fail (st.pos - 1) "invalid escape '\\%c'" c));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st.pos "raw control character"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  if peek st = Some '-' then advance st;
  while
    st.pos < n
    &&
    match st.src.[st.pos] with
    | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
    | _ -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail start "invalid number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st.pos "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st.pos "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st.pos "unexpected character '%c'" c

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length src then
      Error (Printf.sprintf "byte %d: trailing garbage" st.pos)
    else Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Jsonx.encode: non-finite number"
  else if Float.is_integer f && Float.abs f <= 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let encode v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape_string buf s
    | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit x)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit x)
        fields;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None

let bind o f = match o with Some x -> f x | None -> None
let get_float key j = bind (member key j) to_float
let get_int key j = bind (member key j) to_int
let get_string key j = bind (member key j) to_string
let get_list key j = bind (member key j) to_list
