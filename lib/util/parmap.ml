let domain_count () =
  let requested =
    match Sys.getenv_opt "MCS_DOMAINS" with
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)
    | None -> None
  in
  match requested with
  | Some n -> n
  | None -> min 8 (Domain.recommended_domain_count ())

let map ?domains f l =
  let n = match domains with Some n -> max 1 n | None -> domain_count () in
  let items = Array.of_list l in
  let total = Array.length items in
  if n <= 1 || total <= 1 then List.map f l
  else begin
    let results = Array.make total None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        (* The cancellation check must come after the fetch so that it
           covers the index about to be processed: checking before the
           fetch leaves a window where a worker commits to a fresh item
           although another worker already failed. *)
        if i < total && Atomic.get failure = None then begin
          (match f items.(i) with
          | value -> results.(i) <- Some value
          | exception e ->
            (* Keep the first failure; losing later ones is fine. *)
            ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min (n - 1) (total - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some e -> raise e
    | None ->
      Array.to_list
        (Array.map
           (fun r ->
             match r with
             | Some v -> v
             | None -> assert false (* all indices were processed *))
           results)
  end
