(* MCS_DOMAINS is validated once and the verdict cached for the whole
   process: the variable cannot change under a running process, and
   re-parsing (plus re-warning) on every sweep call would be noise. *)
let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "MCS_DOMAINS=%d is not >= 1" n)
  | None -> Error (Printf.sprintf "MCS_DOMAINS=%S is not an integer" s)

let cached_count =
  lazy
    (match Sys.getenv_opt "MCS_DOMAINS" with
    | None -> min 8 (Domain.recommended_domain_count ())
    | Some s -> (
      match parse_domains s with
      | Ok n -> n
      | Error msg ->
        Printf.eprintf
          "Parmap: %s; using the recommended domain count instead\n%!" msg;
        min 8 (Domain.recommended_domain_count ())))

let domain_count () = Lazy.force cached_count

let map ?domains f l =
  let n = match domains with Some n -> max 1 n | None -> domain_count () in
  let items = Array.of_list l in
  let total = Array.length items in
  if n <= 1 || total <= 1 then List.map f l
  else begin
    let results = Array.make total None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        (* The cancellation check must come after the fetch so that it
           covers the index about to be processed: checking before the
           fetch leaves a window where a worker commits to a fresh item
           although another worker already failed. *)
        if i < total && Atomic.get failure = None then begin
          (match f items.(i) with
          (* Disjoint slots: the fetch_and_add above hands index [i] to
             exactly one worker, and the joins in [map] publish the
             writes before the gather reads them. *)
          | value -> (results.(i) <- Some value) [@domain_local]
          | exception e ->
            (* Keep the first failure, with the backtrace captured on
               the worker that raised; losing later ones is fine. *)
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min (n - 1) (total - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.to_list
        (Array.map
           (fun r ->
             match r with
             | Some v -> v
             | None -> assert false (* all indices were processed *))
           results)
  end
