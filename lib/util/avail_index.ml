type t = {
  avail : float array;          (* shared with the caller *)
  group_of : int array;         (* id -> group, -1 when unindexed *)
  views : int array array;      (* per group, sorted by (avail, id) *)
  mark : bool array;            (* scratch: membership of the update set *)
  buf : int array;              (* scratch: one group's survivors *)
}

let key_le avail a b =
  let c = Float.compare avail.(a) avail.(b) in
  if c <> 0 then c < 0 else a <= b

let create ~avail ~groups =
  let n = Array.length avail in
  let group_of = Array.make n (-1) in
  Array.iteri
    (fun g ids ->
      Array.iter
        (fun id ->
          if id < 0 || id >= n then
            invalid_arg "Avail_index.create: id out of range";
          if group_of.(id) >= 0 then
            invalid_arg "Avail_index.create: id in two groups";
          group_of.(id) <- g)
        ids)
    groups;
  let views =
    Array.map
      (fun ids ->
        let v = Array.copy ids in
        Array.sort
          (fun p q ->
            let c = Float.compare avail.(p) avail.(q) in
            if c <> 0 then c else compare p q)
          v;
        v)
      groups
  in
  let max_len =
    Array.fold_left (fun acc ids -> max acc (Array.length ids)) 0 groups
  in
  {
    avail;
    group_of;
    views;
    mark = Array.make n false;
    buf = Array.make (max 1 max_len) 0;
  }

let group_count t = Array.length t.views

let sorted t g = t.views.(g)

let avail t id = t.avail.(id)

(* Repair one group's view after the marked ids [members] (sorted by id,
   all sharing the just-written availability) changed key: compact the
   survivors, then merge the two sorted runs back in place. *)
let repair t g members =
  let view = t.views.(g) in
  let n = Array.length view in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let id = view.(i) in
    if not t.mark.(id) then begin
      t.buf.(!kept) <- id;
      incr kept
    end
  done;
  let kept = !kept in
  let i = ref 0 and j = ref 0 in
  let m = Array.length members in
  for w = 0 to n - 1 do
    if !i < kept && (!j >= m || key_le t.avail t.buf.(!i) members.(!j))
    then begin
      view.(w) <- t.buf.(!i);
      incr i
    end
    else begin
      view.(w) <- members.(!j);
      incr j
    end
  done

let update t ids v =
  if Array.length ids > 0 then begin
    if not (Float.is_finite v) then
      invalid_arg "Avail_index.update: non-finite availability";
    Array.iter
      (fun id ->
        if id < 0 || id >= Array.length t.group_of || t.group_of.(id) < 0
        then invalid_arg "Avail_index.update: id not indexed")
      ids;
    (* Sort by (group, id): the repair below hands each group its
       members as one contiguous, id-sorted, duplicate-free run. A
       duplicated id or a group split across two runs would both feed
       [repair] a member set inconsistent with the marks and corrupt
       the merged view — the rollback equivalence property pins this. *)
    let ids = Array.copy ids in
    Array.sort
      (fun a b ->
        let c = compare t.group_of.(a) t.group_of.(b) in
        if c <> 0 then c else compare a b)
      ids;
    let n = Array.length ids in
    let uniq = ref 0 in
    for i = 0 to n - 1 do
      if !uniq = 0 || ids.(!uniq - 1) <> ids.(i) then begin
        ids.(!uniq) <- ids.(i);
        incr uniq
      end
    done;
    let ids = Array.sub ids 0 !uniq in
    let n = Array.length ids in
    Array.iter
      (fun id ->
        t.avail.(id) <- v;
        t.mark.(id) <- true)
      ids;
    let i = ref 0 in
    while !i < n do
      let g = t.group_of.(ids.(!i)) in
      let j = ref !i in
      while !j < n && t.group_of.(ids.(!j)) = g do
        incr j
      done;
      repair t g (Array.sub ids !i (!j - !i));
      i := !j
    done;
    Array.iter (fun id -> t.mark.(id) <- false) ids
  end

(* Rolling a commit back is the same repair with a key that moves the
   other way; the mark/compact/merge pass never assumed keys only grow. *)
let release = update
