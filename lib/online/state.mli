(** Mutable world state of the online engine.

    The state tracks, at the engine's virtual time [now], every
    submitted application with its lifecycle status, current β, and
    current schedule (a placement per DAG node, [None] until the
    application is first scheduled). The split between {e pinned} and
    {e remappable} placements is purely temporal: a placement whose
    start is at or before [now] has begun (or finished) and can no
    longer be revoked; everything strictly in the future is up for
    rescheduling.

    Fault injection adds a second layer: a per-processor liveness mask
    ([proc_up]), per-task retry bookkeeping ([failures], [retry_at]),
    and a {!Mcs_util.Timeline} {e ledger} mirroring every started
    placement so that outage recovery exercises the real
    release/re-reserve path ([committed] marks placements currently
    reserved in the ledger). All of it is inert — never read, never
    written — when the engine runs without a fault scenario. *)

type status = Pending | Active | Completed

type app = {
  index : int;  (** position in the submission list *)
  ptg : Mcs_ptg.Ptg.t;
  release : float;  (** submission time *)
  mutable status : status;
  mutable beta : float;  (** last β assigned; [nan] before arrival *)
  mutable placements : Mcs_sched.Schedule.placement option array;
  mutable completion : float;  (** exit finish time; [nan] until done *)
  failures : int array;  (** transient failures per node, cumulative *)
  retry_at : float array;  (** backoff floor: node may not start before *)
  committed : bool array;  (** placement currently reserved in the ledger *)
  progress : float array;
      (** fraction of each task's total work completed by the segments
          {e before} the current one — 0 everywhere unless the task was
          resized (malleable runs only); reset to 0 when an attempt is
          killed or fails transiently (the restart loses the work) *)
  seg_overhead : float array;
      (** redistribution overhead charged at the start of each task's
          {e current} segment, seconds — 0 unless the segment follows a
          resize; the current segment makes work progress only after
          [start + seg_overhead] *)
  mutable last_alloc : int array;
      (** reference allocation of the last reschedule that covered this
          application ([[||]] before the first) — what the mid-run
          {!Engine.audit} hands the ALLOC rules *)
  alloc_cache : Mcs_sched.Allocation.cache;
      (** per-application allocation-trajectory cache; consulted only
          when the policy's [alloc_cache] switch is on, cleared on
          departure *)
}

type t = {
  platform : Mcs_platform.Platform.t;
  ref_cluster : Mcs_sched.Reference_cluster.t;
  mutable apps : app array;  (** in submission order; grows on {!add_app} *)
  mutable now : float;
  mutable version : int;  (** schedule generation, bumped per reschedule *)
  mutable reschedules : int;
  mutable remapped_tasks : int;  (** placements recomputed, cumulative *)
  mutable active_apps : int;  (** arrived, not completed — O(1) gauge *)
  mutable completed_apps : int;
  mutable peak_active : int;  (** high-water mark of [active_apps] *)
  arena : Mcs_sched.Alloc_arena.t;
      (** scratch buffers for the allocation loop, reused across every
          reschedule of this engine — single-owner, so one engine (and
          hence one serving shard) never shares it across domains *)
  proc_up : bool array;  (** liveness per global processor id *)
  ledger : Mcs_util.Timeline.t;  (** started placements, fault runs only *)
  mutable executions : Mcs_check.Fault_check.execution list;
      (** every attempt of every real task, most recent first *)
  mutable kills : int;  (** attempts killed by processor outages *)
  mutable task_failures : int;  (** transient failures observed *)
  mutable fault_events : int;  (** outage/recovery events processed *)
  mutable resizes : int;  (** malleability resizes executed *)
}

val create : Mcs_platform.Platform.t -> (Mcs_ptg.Ptg.t * float) list -> t
(** One state per engine run; applications keep their list order (the
    list may be empty — a serving session starts blank and grows by
    {!add_app}). All processors start up, all counters at zero.
    @raise Invalid_argument on a negative/non-finite release time. *)

val copy : t -> t
(** Deep, self-contained copy — the substance of {!Engine.snapshot}.
    Every mutable structure (placements, fault bookkeeping, the
    per-application allocation caches, the ledger, the liveness mask)
    is cloned; PTGs are shared (immutable, and the cache binding is by
    physical equality); the arena is fresh (pure per-call scratch); the
    executions list shares its persistent spine. The [active_apps] /
    [completed_apps] / [peak_active] gauges are {e re-derived} from the
    copied statuses rather than inherited, so a copy taken from a
    drifted source (a crashed serving domain's stale counters) is
    self-consistent; on a consistent source this reproduces the gauges
    exactly, keeping the copy bit-identical. *)

val add_app : t -> Mcs_ptg.Ptg.t -> release:float -> app
(** Append one application (index = current count, status [Pending]).
    Used by the re-entrant session API to absorb streamed submissions.
    @raise Invalid_argument on a negative/non-finite release time. *)

val active : t -> app list
(** Applications that have arrived and not yet completed, in submission
    order — the set β is recomputed over. *)

val pinned_of : t -> app -> Mcs_sched.Schedule.placement option array
(** Placements of [app] that have started (start ≤ now): the frozen
    part handed to {!Mcs_sched.List_mapper.run} as [pinned]. All-[None]
    for an application that has never been scheduled. *)

val proc_avail : t -> float array
(** Per-processor availability: [max now (finish of running work)] —
    the [avail] profile for partial rescheduling. Processors without
    running work are free from [now] (mapping into the past is
    impossible either way). *)

val alloc_cache_stats : t -> int * int * int
(** Summed [(hits, rescales, misses)] of every application's allocation
    cache (lifetime counts — they survive the departure-time
    {!Mcs_sched.Allocation.cache_clear}). All zero when the engine runs
    with the cache disabled. *)

val up_counts : t -> int array
(** Live processors per cluster under the current [proc_up] mask. *)

val up_power : t -> float
(** Aggregate GFlop/s of the live processors. *)

val any_up : t -> bool
(** Whether at least one processor is live. *)

val all_up : t -> bool
(** Whether every processor is live (the engine then schedules exactly
    as if no fault model were present). *)

val record_execution :
  t -> app -> int -> Mcs_sched.Schedule.placement ->
  finish:float -> outcome:Mcs_check.Fault_check.outcome -> unit
(** Append one attempt record ([finish] overrides the placement's
    nominal finish — a killed attempt ends at the outage instant). *)

val commit_started : t -> unit
(** Reserve in the ledger every started, not-yet-committed real
    placement. Called once per reschedule under fault injection.
    @raise Invalid_argument if a placement double-books a processor —
    a scheduling invariant violation that must not pass silently. *)

val rollback : t -> app -> int -> Mcs_sched.Schedule.placement ->
  at:float -> int
(** Kill the running attempt of node [v]: release its full reservation
    from the ledger (if committed), re-reserve the elapsed prefix
    [[start, at)] as history, and clear the committed flag. Returns the
    number of processor-reservations released (0 if uncommitted). *)

val schedules : t -> Mcs_sched.Schedule.t list
(** Final schedules in submission order.
    @raise Invalid_argument if some application was never fully
    scheduled (the engine only calls this once every app completed). *)
