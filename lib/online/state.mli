(** Mutable world state of the online engine.

    The state tracks, at the engine's virtual time [now], every
    submitted application with its lifecycle status, current β, and
    current schedule (a placement per DAG node, [None] until the
    application is first scheduled). The split between {e pinned} and
    {e remappable} placements is purely temporal: a placement whose
    start is at or before [now] has begun (or finished) and can no
    longer be revoked; everything strictly in the future is up for
    rescheduling. *)

type status = Pending | Active | Completed

type app = {
  index : int;  (** position in the submission list *)
  ptg : Mcs_ptg.Ptg.t;
  release : float;  (** submission time *)
  mutable status : status;
  mutable beta : float;  (** last β assigned; [nan] before arrival *)
  mutable placements : Mcs_sched.Schedule.placement option array;
  mutable completion : float;  (** exit finish time; [nan] until done *)
}

type t = {
  platform : Mcs_platform.Platform.t;
  ref_cluster : Mcs_sched.Reference_cluster.t;
  apps : app array;  (** in submission order *)
  mutable now : float;
  mutable version : int;  (** schedule generation, bumped per reschedule *)
  mutable reschedules : int;
  mutable remapped_tasks : int;  (** placements recomputed, cumulative *)
}

val create : Mcs_platform.Platform.t -> (Mcs_ptg.Ptg.t * float) list -> t
(** One state per engine run; applications keep their list order.
    @raise Invalid_argument on an empty list or a negative/non-finite
    release time. *)

val active : t -> app list
(** Applications that have arrived and not yet completed, in submission
    order — the set β is recomputed over. *)

val pinned_of : t -> app -> Mcs_sched.Schedule.placement option array
(** Placements of [app] that have started (start ≤ now): the frozen
    part handed to {!Mcs_sched.List_mapper.run} as [pinned]. All-[None]
    for an application that has never been scheduled. *)

val proc_avail : t -> float array
(** Per-processor availability: [max now (finish of running work)] —
    the [avail] profile for partial rescheduling. Processors without
    running work are free from [now] (mapping into the past is
    impossible either way). *)

val schedules : t -> Mcs_sched.Schedule.t list
(** Final schedules in submission order.
    @raise Invalid_argument if some application was never fully
    scheduled (the engine only calls this once every app completed). *)
