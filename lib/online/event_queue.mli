(** Deterministic event queue of the online engine.

    Six event kinds drive the engine: an application {e arrival}, the
    {e finish} of one real task, the {e transient failure} of one real
    task at its end, an application {e departure} (the finish of its
    virtual exit node, i.e. its completion), and processor
    {e outage}/{e recovery} events from the fault process. Events are
    totally ordered by (time, kind, app/node content key, insertion
    sequence) so that a run is reproducible regardless of heap
    internals: at equal times, task finishes are observed before
    transient failures, then departures, then arrivals, then outages,
    then recoveries — an arrival-triggered rescheduling thus sees every
    simultaneous completion as already done, and an outage kills no task
    that completed at that very instant. Malleability {e resize} points
    sort after everything else at their instant, so a resize decision
    sees the post-batch world and never races the resized task's own
    finish. Within one kind the content key
    (application index, then node; first processor id for fault events)
    breaks ties, so the pop order is canonical even when fault events
    collide with announcements; the insertion sequence is only the final
    resort (same task announced under two schedule generations: the
    earlier push is the stale one).

    Task-finish, task-failed, departure and resize events are
    invalidated by rescheduling (the engine re-announces the future of every active
    application after each β recomputation). Instead of searching the
    queue, events carry the schedule {e version} they were announced
    under; the engine drops, on pop, any finish/failure/departure whose
    version is stale. *)

type kind =
  | Arrival of int  (** application index *)
  | Task_finish of { app : int; node : int }
  | Task_failed of { app : int; node : int }
      (** transient failure at the attempt's end (fault injection) *)
  | Departure of int  (** application index *)
  | Proc_down of int array  (** global processor ids failing together *)
  | Proc_up of int array  (** global processor ids recovering together *)
  | Resize of { app : int; node : int }
      (** legal malleability resize point of one running task's current
          segment — an {e opportunity}, not a commitment: the engine
          re-evaluates the trigger at pop time and may decline *)

type event = {
  time : float;
  version : int;  (** schedule generation the event was announced under *)
  kind : kind;
}

type t

val create : unit -> t
(** Fresh empty queue with the insertion sequence at zero. *)

val copy : t -> t
(** Self-contained clone: same pending events, same insertion sequence.
    Pushes and pops on either queue never affect the other, and — the
    snapshot/restore contract — the clone pops the exact sequence the
    original would, tiebreaks included. *)

val push : t -> time:float -> version:int -> kind -> unit
(** @raise Invalid_argument on a negative or non-finite time. *)

val pop : t -> event option
(** Remove and return the next event in (time, kind, content key,
    insertion) order, or [None] when the queue is empty. Staleness is
    the caller's concern: popped events still carry their announcement
    version. *)

val peek : t -> event option
(** The event {!pop} would return, without removing it. *)

val is_empty : t -> bool
(** Whether no event is pending. *)

val length : t -> int
(** Number of pending events (stale ones included until popped). *)

val pushed : t -> int
(** Total number of events ever pushed — the event-throughput counter
    reported by the benchmarks. *)
