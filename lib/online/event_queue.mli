(** Deterministic event queue of the online engine.

    Three event kinds drive the engine: an application {e arrival}, the
    {e finish} of one real task, and an application {e departure} (the
    finish of its virtual exit node, i.e. its completion). Events are
    totally ordered by (time, kind, insertion sequence) so that a run is
    reproducible regardless of heap internals: at equal times, task
    finishes are observed before departures, and departures before
    arrivals — an arrival-triggered rescheduling thus sees every
    simultaneous completion as already done.

    Task-finish and departure events are invalidated by rescheduling
    (the engine re-announces the future of every active application
    after each β recomputation). Instead of searching the queue, events
    carry the schedule {e version} they were announced under; the engine
    drops, on pop, any finish/departure whose version is stale. *)

type kind =
  | Arrival of int  (** application index *)
  | Task_finish of { app : int; node : int }
  | Departure of int  (** application index *)

type event = {
  time : float;
  version : int;  (** schedule generation the event was announced under *)
  kind : kind;
}

type t

val create : unit -> t
(** Fresh empty queue with the insertion sequence at zero. *)

val push : t -> time:float -> version:int -> kind -> unit
(** @raise Invalid_argument on a negative or non-finite time. *)

val pop : t -> event option
(** Remove and return the next event in (time, kind, insertion) order,
    or [None] when the queue is empty. Staleness is the caller's
    concern: popped events still carry their announcement version. *)

val peek : t -> event option
(** The event {!pop} would return, without removing it. *)

val is_empty : t -> bool
(** Whether no event is pending. *)

val length : t -> int
(** Number of pending events (stale ones included until popped). *)

val pushed : t -> int
(** Total number of events ever pushed — the event-throughput counter
    reported by the benchmarks. *)
