type event =
  | Arrival of { time : float; app : int; name : string; tasks : int }
  | Reschedule of {
      time : float;
      trigger : string;
      betas : (int * float) list;
      remapped : int;
      pinned : int;
    }
  | Task_finish of { time : float; app : int; node : int }
  | Departure of { time : float; app : int; response : float }
  | Proc_down of { time : float; procs : int array }
  | Proc_up of { time : float; procs : int array }
  | Task_failed of { time : float; app : int; node : int; failures : int }
  | Task_killed of { time : float; app : int; node : int; elapsed : float }
  | Task_resized of {
      time : float;
      app : int;
      node : int;
      from_width : int;
      to_width : int;
      moved : int;
      cost : float;
      finish : float;
    }

let time = function
  | Arrival { time; _ }
  | Reschedule { time; _ }
  | Task_finish { time; _ }
  | Departure { time; _ }
  | Proc_down { time; _ }
  | Proc_up { time; _ }
  | Task_failed { time; _ }
  | Task_killed { time; _ }
  | Task_resized { time; _ } -> time

(* Same defensive escaping as Trace: the only free strings are PTG
   names, which the generators control. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json = function
  | Arrival { time; app; name; tasks } ->
    Printf.sprintf
      "{\"event\":\"arrival\",\"time\":%.17g,\"app\":%d,\"name\":\"%s\",\
       \"tasks\":%d}"
      time app (escape name) tasks
  | Reschedule { time; trigger; betas; remapped; pinned } ->
    Printf.sprintf
      "{\"event\":\"reschedule\",\"time\":%.17g,\"trigger\":\"%s\",\
       \"betas\":{%s},\"remapped\":%d,\"pinned\":%d}"
      time trigger
      (String.concat ","
         (List.map
            (fun (app, beta) -> Printf.sprintf "\"%d\":%.17g" app beta)
            betas))
      remapped pinned
  | Task_finish { time; app; node } ->
    Printf.sprintf
      "{\"event\":\"task_finish\",\"time\":%.17g,\"app\":%d,\"node\":%d}" time
      app node
  | Departure { time; app; response } ->
    Printf.sprintf
      "{\"event\":\"departure\",\"time\":%.17g,\"app\":%d,\"response\":%.17g}"
      time app response
  | Proc_down { time; procs } ->
    Printf.sprintf "{\"event\":\"proc_down\",\"time\":%.17g,\"procs\":[%s]}"
      time
      (String.concat "," (List.map string_of_int (Array.to_list procs)))
  | Proc_up { time; procs } ->
    Printf.sprintf "{\"event\":\"proc_up\",\"time\":%.17g,\"procs\":[%s]}" time
      (String.concat "," (List.map string_of_int (Array.to_list procs)))
  | Task_failed { time; app; node; failures } ->
    Printf.sprintf
      "{\"event\":\"task_failed\",\"time\":%.17g,\"app\":%d,\"node\":%d,\
       \"failures\":%d}"
      time app node failures
  | Task_killed { time; app; node; elapsed } ->
    Printf.sprintf
      "{\"event\":\"task_killed\",\"time\":%.17g,\"app\":%d,\"node\":%d,\
       \"elapsed\":%.17g}"
      time app node elapsed
  | Task_resized { time; app; node; from_width; to_width; moved; cost; finish }
    ->
    Printf.sprintf
      "{\"event\":\"task_resized\",\"time\":%.17g,\"app\":%d,\"node\":%d,\
       \"from\":%d,\"to\":%d,\"moved\":%d,\"cost\":%.17g,\"finish\":%.17g}"
      time app node from_width to_width moved cost finish
