module Obs = Mcs_obs.Obs

type trigger =
  | Arrival
  | Departure
  | Task_finish
  | Task_failed
  | Proc_down
  | Proc_up

let trigger_label = function
  | Arrival -> "arrival"
  | Departure -> "departure"
  | Task_finish -> "task_finish"
  | Task_failed -> "task_failed"
  | Proc_down -> "proc_down"
  | Proc_up -> "proc_up"

type t = {
  name : string;
  policy : Policy.t;
  reschedules_on : trigger -> bool;
  backoff : failures:int -> float;
  shrink : (failures:int -> procs:int -> int) option;
  resize : (active:int -> width:int -> cap:int -> int) option;
  c_reschedules : Obs.counter;
  c_remapped : Obs.counter;
}

(* Per-kernel counters are interned by kernel name, so two kernels of
   the same name share them (that is the point: an A/B swap reports
   "how much did each *policy* do", whichever instance was live). *)
let counters name =
  ( Obs.counter (Printf.sprintf "policy.%s.reschedules" name),
    Obs.counter (Printf.sprintf "policy.%s.remapped" name) )

let exponential_backoff policy ~failures =
  policy.Policy.faults.Policy.backoff_base
  *. Float.pow 2. (float_of_int (failures - 1))

let halving_shrink ~failures ~procs =
  if failures > 0 then max 1 (procs asr min failures 30) else procs

let make ?(name = "custom") ?reschedules_on ?backoff ?shrink ?resize policy =
  let reschedules_on =
    match reschedules_on with
    | Some f -> f
    | None -> (
      function
      | Arrival | Task_failed | Proc_down | Proc_up -> true
      | Departure -> policy.Policy.reschedule_on_departure
      | Task_finish -> policy.Policy.reschedule_on_task_finish)
  in
  let backoff =
    match backoff with
    | Some f -> f
    | None -> fun ~failures -> exponential_backoff policy ~failures
  in
  let shrink =
    match shrink with
    | Some _ as s -> s
    | None ->
      if policy.Policy.faults.Policy.shrink_on_retry then Some halving_shrink
      else None
  in
  let c_reschedules, c_remapped = counters name in
  {
    name;
    policy;
    reschedules_on;
    backoff;
    shrink;
    resize;
    c_reschedules;
    c_remapped;
  }

let default policy = make ~name:"default" policy

let wants t trigger = t.reschedules_on trigger
let backoff t ~failures = t.backoff ~failures

let shrink t ~failures ~procs =
  match t.shrink with None -> procs | Some f -> f ~failures ~procs

let shrinks t = t.shrink <> None

(* The malleability trigger: the target width of a running segment,
   given the current load. The kernel closure wins when present; the
   model's own thresholds (arrival-spike halving, idle doubling) are
   the default. Answering the current width means "no resize". *)
let resize_target t m ~active ~width ~cap =
  match t.resize with
  | Some f -> f ~active ~width ~cap
  | None -> Mcs_sched.Malleability.target_width m ~active ~width ~cap

(* The registry behind the CLIs' [--policy NAME]. Every named kernel is
   derived from the caller's base policy, so strategy, mapper options
   and fault budget carry over — the name only overrides the decision
   closures (and, for [static]/[eager], the trigger set). *)
let names = [ "default"; "static"; "eager"; "linear-backoff"; "shrink-retry" ]

let of_name name ~base =
  match name with
  | "default" -> make ~name:"default" base
  | "static" ->
    make ~name:"static"
      ~reschedules_on:(function
        | Arrival | Task_failed | Proc_down | Proc_up -> true
        | Departure | Task_finish -> false)
      base
  | "eager" ->
    make ~name:"eager"
      ~reschedules_on:(function
        | Arrival | Departure | Task_finish | Task_failed | Proc_down
        | Proc_up ->
          true)
      base
  | "linear-backoff" ->
    make ~name:"linear-backoff"
      ~backoff:(fun ~failures ->
        base.Policy.faults.Policy.backoff_base *. float_of_int failures)
      base
  | "shrink-retry" -> make ~name:"shrink-retry" ~shrink:halving_shrink base
  | _ ->
    invalid_arg
      (Printf.sprintf "Policy_kernel.of_name: unknown kernel %S (expected %s)"
         name
         (String.concat ", " names))
