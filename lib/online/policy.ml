type t = {
  strategy : Mcs_sched.Strategy.t;
  config : Mcs_sched.Pipeline.config;
  reschedule_on_departure : bool;
  reschedule_on_task_finish : bool;
}

let make ?(config = Mcs_sched.Pipeline.default_config) strategy =
  {
    strategy;
    config;
    reschedule_on_departure = true;
    reschedule_on_task_finish = false;
  }

let static ?config strategy =
  { (make ?config strategy) with reschedule_on_departure = false }
