type fault_policy = {
  max_retries : int;
  backoff_base : float;
  shrink_on_retry : bool;
}

let default_faults =
  { max_retries = 3; backoff_base = 5.; shrink_on_retry = false }

type t = {
  strategy : Mcs_sched.Strategy.t;
  config : Mcs_sched.Pipeline.config;
  reschedule_on_departure : bool;
  reschedule_on_task_finish : bool;
  alloc_cache : bool;
  faults : fault_policy;
  malleability : Mcs_sched.Malleability.t option;
}

let make ?(config = Mcs_sched.Pipeline.default_config)
    ?(faults = default_faults) ?(alloc_cache = true)
    ?(reschedule_on_departure = true) ?(reschedule_on_task_finish = false)
    ?malleability strategy =
  if faults.max_retries < 0 then
    invalid_arg "Policy.make: negative max_retries";
  if Float.is_nan faults.backoff_base || faults.backoff_base < 0. then
    invalid_arg "Policy.make: ill-formed backoff_base";
  (* Validate the trigger combination here, once: task-finish triggers
     subsume departures (a departure is the finish of the exit task),
     so reacting to every finish while ignoring the completions that
     free whole β shares is incoherent — reject it rather than let the
     engine run a policy nobody can have meant. *)
  if reschedule_on_task_finish && not reschedule_on_departure then
    invalid_arg "Policy.make: reschedule_on_task_finish without \
                 reschedule_on_departure";
  (match malleability with
  | Some m -> Mcs_sched.Malleability.validate m
  | None -> ());
  {
    strategy;
    config;
    reschedule_on_departure;
    reschedule_on_task_finish;
    alloc_cache;
    faults;
    malleability;
  }

let static ?config ?faults ?alloc_cache ?malleability strategy =
  make ?config ?faults ?alloc_cache ~reschedule_on_departure:false
    ~reschedule_on_task_finish:false ?malleability strategy
