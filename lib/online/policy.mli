(** Rescheduling policy of the online engine.

    Every arrival recomputes β over the currently-active applications
    and remaps their unstarted tasks — that part is not optional, it is
    the point of the engine. The policy decides what else triggers a
    recomputation:

    - [reschedule_on_departure] — when an application completes, its β
      share is redistributed among the survivors and their unstarted
      tasks are remapped onto the freed processors (backfilling). On by
      default; turning it off makes the t=0-arrivals case coincide
      exactly with the offline pipeline (see {!Engine.run}).
    - [reschedule_on_task_finish] — additionally remap after every task
      completion. Much more aggressive (O(tasks) reschedules per run);
      off by default, exposed for experimentation.

    [config] carries the allocation procedure and mapper options, as in
    the offline {!Mcs_sched.Pipeline}. *)

type t = {
  strategy : Mcs_sched.Strategy.t;
  config : Mcs_sched.Pipeline.config;
  reschedule_on_departure : bool;
  reschedule_on_task_finish : bool;
}

val make : ?config:Mcs_sched.Pipeline.config -> Mcs_sched.Strategy.t -> t
(** Dynamic-β policy: reschedule on arrivals and departures. *)

val static : ?config:Mcs_sched.Pipeline.config -> Mcs_sched.Strategy.t -> t
(** Arrival-only rescheduling (no departure/task-finish triggers). *)
