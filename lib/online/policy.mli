(** Rescheduling policy of the online engine.

    Every arrival recomputes β over the currently-active applications
    and remaps their unstarted tasks — that part is not optional, it is
    the point of the engine. The policy decides what else triggers a
    recomputation:

    - [reschedule_on_departure] — when an application completes, its β
      share is redistributed among the survivors and their unstarted
      tasks are remapped onto the freed processors (backfilling). On by
      default; turning it off makes the t=0-arrivals case coincide
      exactly with the offline pipeline (see {!Engine.run}).
    - [reschedule_on_task_finish] — additionally remap after every task
      completion. Much more aggressive (O(tasks) reschedules per run);
      off by default, exposed for experimentation.

    [config] carries the allocation procedure and mapper options, as in
    the offline {!Mcs_sched.Pipeline}.

    [faults] governs recovery under fault injection (it is inert when
    the engine runs without a fault scenario). A task killed by a
    processor outage is always requeued — mandatory, not a retry. A
    {e transient} failure consumes one retry: after [max_retries]
    transient failures the next attempt is carried through (bounded
    retry — the run always terminates; an operator would eventually
    blacklist the task or succeed). Each retry waits an exponential
    backoff ([backoff_base × 2^(failures-1)]) before the task may start
    again, and [shrink_on_retry] halves the task's allocation per
    failure (floor 1) — reusing the packing idea: a smaller allocation
    restarts earlier on a degraded platform. *)

type fault_policy = {
  max_retries : int;       (** transient failures tolerated per task *)
  backoff_base : float;    (** seconds; retry [k] waits [base·2^(k-1)] *)
  shrink_on_retry : bool;  (** halve the allocation per failure *)
}

val default_faults : fault_policy
(** 3 retries, 5 s backoff base, no shrinking. *)

type t = {
  strategy : Mcs_sched.Strategy.t;
  config : Mcs_sched.Pipeline.config;
  reschedule_on_departure : bool;
  reschedule_on_task_finish : bool;
  alloc_cache : bool;
      (** serve allocations from the per-application trajectory cache
          ({!Mcs_sched.Allocation.allocate_cached}). Bit-identical to
          the scratch path by construction; the switch exists so the
          differential tests can run both and compare. On by default. *)
  faults : fault_policy;
  malleability : Mcs_sched.Malleability.t option;
      (** when [Some m], running tasks become {e malleable}: the engine
          may preempt them at [m]'s legal resize points and continue
          them at a different width, charging the redistribution cost
          and re-pricing the remaining work (see {!Engine}). [None]
          (the default) is the paper's moldable model and is
          bit-identical to the pre-malleability engine. *)
}

val make :
  ?config:Mcs_sched.Pipeline.config ->
  ?faults:fault_policy ->
  ?alloc_cache:bool ->
  ?reschedule_on_departure:bool ->
  ?reschedule_on_task_finish:bool ->
  ?malleability:Mcs_sched.Malleability.t ->
  Mcs_sched.Strategy.t -> t
(** Dynamic-β policy. [alloc_cache] and [reschedule_on_departure]
    default to [true], [reschedule_on_task_finish] to [false] — the
    historical hardwired combination. Trigger combinations are
    validated here, once: rescheduling on every task finish while
    ignoring departures is rejected (a departure {e is} the finish of
    the exit task, so the finer trigger subsumes the coarser one).
    [malleability] (default [None], i.e. moldable tasks) is validated
    with {!Mcs_sched.Malleability.validate}.
    @raise Invalid_argument on a negative [max_retries], an ill-formed
    [backoff_base], an ill-formed malleability model, or
    [reschedule_on_task_finish] without [reschedule_on_departure]. *)

val static :
  ?config:Mcs_sched.Pipeline.config ->
  ?faults:fault_policy ->
  ?alloc_cache:bool ->
  ?malleability:Mcs_sched.Malleability.t ->
  Mcs_sched.Strategy.t -> t
(** Arrival-only rescheduling —
    [make ~reschedule_on_departure:false ~reschedule_on_task_finish:false]. *)
