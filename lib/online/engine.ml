module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Pipeline = Mcs_sched.Pipeline
module List_mapper = Mcs_sched.List_mapper
module Allocation = Mcs_sched.Allocation
module Floatx = Mcs_util.Floatx
module Obs = Mcs_obs.Obs

let c_events = Obs.counter "online.events"
let c_reschedules = Obs.counter "online.reschedules"
let c_remapped = Obs.counter "online.remapped"

type stats = {
  events_processed : int;
  events_pushed : int;
  reschedules : int;
  remapped_tasks : int;
}

type result = {
  schedules : Schedule.t list;
  betas : float array;
  completions : float array;
  responses : float array;
  stats : stats;
}

(* Trigger merging for a batch of simultaneous events: an arrival always
   forces a reschedule; a departure or task finish only per policy. *)
let trigger_rank = function
  | "arrival" -> 2
  | "departure" -> 1
  | _ -> 0

let merge_trigger cur cand =
  match cur with
  | None -> Some cand
  | Some t -> if trigger_rank cand > trigger_rank t then Some cand else cur

let run ?log ?check ~policy platform apps =
  Obs.with_span "online.run" @@ fun () ->
  let state = State.create platform apps in
  let q = Event_queue.create () in
  let emit e = match log with Some f -> f e | None -> () in
  let processed = ref 0 in
  Array.iter
    (fun app ->
      Event_queue.push q ~time:app.State.release ~version:0
        (Event_queue.Arrival app.State.index))
    state.State.apps;
  (* Announce the future of every active application under the current
     schedule generation: one finish event per still-running or
     not-yet-started real task, one departure per application. Events of
     earlier generations become stale and are dropped on pop. *)
  let announce () =
    List.iter
      (fun app ->
        let exit = Ptg.exit app.State.ptg in
        Array.iteri
          (fun v pl ->
            match pl with
            | None -> ()
            | Some pl ->
              if v = exit then
                Event_queue.push q
                  ~time:(Float.max pl.Schedule.finish state.State.now)
                  ~version:state.State.version
                  (Event_queue.Departure app.State.index)
              else if
                (not (Ptg.is_virtual app.State.ptg v))
                && pl.Schedule.finish > state.State.now
              then
                Event_queue.push q ~time:pl.Schedule.finish
                  ~version:state.State.version
                  (Event_queue.Task_finish { app = app.State.index; node = v }))
          app.State.placements)
      (State.active state)
  in
  let reschedule ~trigger =
    Obs.with_span "online.reschedule" @@ fun () ->
    match State.active state with
    | [] -> ()
    | active ->
      let ptgs = List.map (fun a -> a.State.ptg) active in
      let prepared =
        Pipeline.prepare ~config:policy.Policy.config
          ~strategy:policy.Policy.strategy platform ptgs
      in
      List.iteri
        (fun j app -> app.State.beta <- prepared.Pipeline.betas.(j))
        active;
      let inputs =
        List.mapi
          (fun j app ->
            (app.State.ptg, prepared.Pipeline.allocations.(j).Allocation.procs))
          active
      in
      let pinned =
        Array.of_list (List.map (fun app -> State.pinned_of state app) active)
      in
      let release = Array.make (List.length active) state.State.now in
      let avail = State.proc_avail state in
      let schedules =
        List_mapper.run ~options:policy.Policy.config.Pipeline.mapper ~release
          ~pinned ~avail platform state.State.ref_cluster inputs
      in
      let frozen =
        Array.fold_left
          (fun acc per_app ->
            Array.fold_left
              (fun acc pl -> if pl = None then acc else acc + 1)
              acc per_app)
          0 pinned
      in
      let total = ref 0 in
      List.iter2
        (fun app sched ->
          total := !total + Array.length sched.Schedule.placements;
          app.State.placements <-
            Array.map Option.some sched.Schedule.placements)
        active schedules;
      let remapped = !total - frozen in
      (* Hand the invariant analyzer a snapshot of what this reschedule
         decided: it re-verifies the pinning, β and mapping rules and
         reports to the caller's sink. *)
      (match check with
      | None -> ()
      | Some f ->
        let snap_apps =
          List.mapi
            (fun j (app, sched) ->
              {
                Mcs_check.Online_check.index = app.State.index;
                ptg = app.State.ptg;
                release = app.State.release;
                beta = app.State.beta;
                alloc = prepared.Pipeline.allocations.(j).Allocation.procs;
                pinned = pinned.(j);
                schedule = sched;
              })
            (List.combine active schedules)
        in
        f
          (Mcs_check.Online_check.analyze platform
             {
               Mcs_check.Online_check.now = state.State.now;
               strategy = policy.Policy.strategy;
               procedure = policy.Policy.config.Pipeline.procedure;
               apps = snap_apps;
             }));
      state.State.version <- state.State.version + 1;
      state.State.reschedules <- state.State.reschedules + 1;
      state.State.remapped_tasks <- state.State.remapped_tasks + remapped;
      Obs.incr c_reschedules;
      Obs.incr ~by:remapped c_remapped;
      announce ();
      emit
        (Log.Reschedule
           {
             time = state.State.now;
             trigger;
             betas =
               List.map (fun app -> (app.State.index, app.State.beta)) active;
             remapped;
             pinned = frozen;
           })
  in
  let stale ev =
    match ev.Event_queue.kind with
    | Event_queue.Arrival _ -> false
    | Event_queue.Task_finish _ | Event_queue.Departure _ ->
      ev.Event_queue.version <> state.State.version
  in
  let handle ev trigger =
    incr processed;
    Obs.enter "online.event";
    Obs.incr c_events;
    (match ev.Event_queue.kind with
    | Event_queue.Arrival i ->
      let app = state.State.apps.(i) in
      app.State.status <- State.Active;
      emit
        (Log.Arrival
           {
             time = ev.Event_queue.time;
             app = i;
             name = app.State.ptg.Ptg.name;
             tasks = Ptg.task_count app.State.ptg;
           });
      trigger := merge_trigger !trigger "arrival"
    | Event_queue.Task_finish { app; node } ->
      emit (Log.Task_finish { time = ev.Event_queue.time; app; node });
      if policy.Policy.reschedule_on_task_finish then
        trigger := merge_trigger !trigger "task_finish"
    | Event_queue.Departure i ->
      let app = state.State.apps.(i) in
      app.State.status <- State.Completed;
      app.State.completion <- ev.Event_queue.time;
      emit
        (Log.Departure
           {
             time = ev.Event_queue.time;
             app = i;
             response = ev.Event_queue.time -. app.State.release;
           });
      if policy.Policy.reschedule_on_departure then
        trigger := merge_trigger !trigger "departure");
    Obs.leave ()
  in
  let rec loop () =
    match Event_queue.pop q with
    | None -> ()
    | Some ev when stale ev -> loop ()
    | Some ev ->
      state.State.now <- ev.Event_queue.time;
      let trigger = ref None in
      handle ev trigger;
      (* Drain every simultaneous event before rescheduling once, so β
         is recomputed over the post-batch set of active applications
         (the queue orders finishes before departures before arrivals
         at equal times). *)
      let rec drain_batch () =
        match Event_queue.peek q with
        | Some e when e.Event_queue.time <= state.State.now +. Floatx.eps ->
          let e = Option.get (Event_queue.pop q) in
          if not (stale e) then handle e trigger;
          drain_batch ()
        | Some _ | None -> ()
      in
      drain_batch ();
      (match !trigger with
      | Some trigger -> reschedule ~trigger
      | None -> ());
      loop ()
  in
  loop ();
  let apps = state.State.apps in
  {
    schedules = State.schedules state;
    betas = Array.map (fun app -> app.State.beta) apps;
    completions = Array.map (fun app -> app.State.completion) apps;
    responses =
      Array.map (fun app -> app.State.completion -. app.State.release) apps;
    stats =
      {
        events_processed = !processed;
        events_pushed = Event_queue.pushed q;
        reschedules = state.State.reschedules;
        remapped_tasks = state.State.remapped_tasks;
      };
  }
