module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Pipeline = Mcs_sched.Pipeline
module List_mapper = Mcs_sched.List_mapper
module Allocation = Mcs_sched.Allocation
module Strategy = Mcs_sched.Strategy
module Reference_cluster = Mcs_sched.Reference_cluster
module Malleability = Mcs_sched.Malleability
module Task = Mcs_taskmodel.Task
module Fault = Mcs_fault.Fault
module Fault_check = Mcs_check.Fault_check
module P = Mcs_platform.Platform
module Floatx = Mcs_util.Floatx
module Obs = Mcs_obs.Obs

let c_events = Obs.counter "online.events"
let c_reschedules = Obs.counter "online.reschedules"
let c_remapped = Obs.counter "online.remapped"
let c_kills = Obs.counter "online.kills"
let c_retries = Obs.counter "online.retries"
let c_fault_events = Obs.counter "online.fault_events"
let c_release = Obs.counter "mapper.release"
let c_resizes = Obs.counter "online.resizes"

type stats = {
  events_processed : int;
  events_pushed : int;
  reschedules : int;
  remapped_tasks : int;
  kills : int;
  task_failures : int;
  fault_events : int;
  alloc_hits : int;
  alloc_rescales : int;
  alloc_misses : int;
  resizes : int;
}

type result = {
  schedules : Schedule.t list;
  betas : float array;
  completions : float array;
  responses : float array;
  executions : Fault_check.execution list;
  stats : stats;
}

type session = {
  st : State.t;
  q : Event_queue.t;
  mutable kernel : Policy_kernel.t;
      (** the one active policy object; swappable mid-run *)
  platform : P.t;
  faults : Fault.scenario option;
  fault_on : bool;
  emit : Log.event -> unit;
  check : (Mcs_check.Diagnostic.t list -> unit) option;
  mutable processed : int;
}

let policy s = s.kernel.Policy_kernel.policy

(* Trigger merging for a batch of simultaneous events: every event
   kind asks the active kernel whether it forces a reschedule (arrivals
   and fault events do under every kernel this repo ships — see the
   {!Policy_kernel} contract). The label of the merged batch is its
   strongest cause. *)
let trigger_rank = function
  | "resize" -> 6
  | "proc_down" -> 5
  | "proc_up" -> 4
  | "task_failed" -> 3
  | "arrival" -> 2
  | "departure" -> 1
  | _ -> 0

let merge_trigger cur cand =
  match cur with
  | None -> Some cand
  | Some t -> if trigger_rank cand > trigger_rank t then Some cand else cur

(* Under fault injection each attempt's outcome is pre-rolled — the
   roll is a pure function of (seed, app, node, attempt), so
   re-announcing the same attempt after an unrelated reschedule rolls
   the same verdict. *)
let will_fail s app v =
  match s.faults with
  | Some sc
    when sc.Fault.config.Fault.task_fail_p > 0.
         && app.State.failures.(v)
            < (policy s).Policy.faults.Policy.max_retries
    ->
    Fault.roll_failure sc ~app:app.State.index ~node:v
      ~attempt:app.State.failures.(v)
  | Some _ | None -> false

(* Announce the future of every active application under the current
   schedule generation: one finish event per still-running or
   not-yet-started real task, one departure per application. Events of
   earlier generations become stale and are dropped on pop. *)
let announce s =
  let state = s.st in
  List.iter
    (fun app ->
      let exit = Ptg.exit app.State.ptg in
      (* Pre-roll first: a generation in which some attempt is doomed
         to fail must not announce the departure — the app cannot
         complete on this schedule, and the failure's mandatory
         reschedule will announce the real one. Without this, a task
         failing exactly at the announced exit finish would race its
         own application's departure in the same batch. *)
      let fail_flags =
        Array.mapi
          (fun v pl ->
            match pl with
            | Some pl
              when (not (Ptg.is_virtual app.State.ptg v))
                   && pl.Schedule.finish > state.State.now ->
              will_fail s app v
            | Some _ | None -> false)
          app.State.placements
      in
      let doomed = Array.exists Fun.id fail_flags in
      (* A PTG with a unique sink reuses that real task as its exit
         node: it must still get its own finish/failure event (it does
         real work, records an execution attempt and can fail
         transiently) — the departure is announced in addition, and
         the queue's kind order delivers the finish first. *)
      Array.iteri
        (fun v pl ->
          match pl with
          | None -> ()
          | Some pl ->
            if
              (not (Ptg.is_virtual app.State.ptg v))
              && pl.Schedule.finish > state.State.now
            then begin
              let kind =
                if fail_flags.(v) then
                  Event_queue.Task_failed { app = app.State.index; node = v }
                else
                  Event_queue.Task_finish { app = app.State.index; node = v }
              in
              Event_queue.push s.q ~time:pl.Schedule.finish
                ~version:state.State.version kind
            end;
            if v = exit && not doomed then
              Event_queue.push s.q
                ~time:(Float.max pl.Schedule.finish state.State.now)
                ~version:state.State.version
                (Event_queue.Departure app.State.index))
        app.State.placements)
    (State.active state)

(* A blackout (no live processor) cannot remap anything: revoke every
   unstarted placement and bump the generation so their events go
   stale; the recovery event will trigger the real reschedule. *)
let blackout s =
  let state = s.st in
  List.iter
    (fun app ->
      Array.iteri
        (fun v pl ->
          match pl with
          | Some pl when pl.Schedule.start > state.State.now +. Floatx.eps ->
            app.State.placements.(v) <- None
          | Some _ | None -> ())
        app.State.placements)
    (State.active state);
  state.State.version <- state.State.version + 1;
  announce s

(* Arm the next legal resize opportunity of every running real task:
   one [Resize] event per task at its next grid point, announced under
   the current generation so any later reschedule re-plans it (the old
   event goes stale). An opportunity is not a commitment — the trigger
   is re-evaluated when the point is reached. *)
let plan_resizes s =
  match (policy s).Policy.malleability with
  | None -> ()
  | Some m ->
    let state = s.st in
    List.iter
      (fun app ->
        Array.iteri
          (fun v pl ->
            match pl with
            | Some pl
              when (not (Ptg.is_virtual app.State.ptg v))
                   && pl.Schedule.start <= state.State.now +. Floatx.eps
                   && pl.Schedule.finish > state.State.now +. Floatx.eps ->
              let at =
                Malleability.next_resize_point m ~start:pl.Schedule.start
                  ~now:state.State.now
              in
              if at < pl.Schedule.finish -. Floatx.eps then
                Event_queue.push s.q ~time:at ~version:state.State.version
                  (Event_queue.Resize { app = app.State.index; node = v })
            | Some _ | None -> ())
          app.State.placements)
      (State.active state)

let reschedule s ~trigger =
  Obs.with_span "online.reschedule" @@ fun () ->
  let state = s.st in
  match State.active state with
  | [] -> ()
  | _ when s.fault_on && not (State.any_up state) -> blackout s
  | active ->
    let ptgs = List.map (fun a -> a.State.ptg) active in
    (* A full mask schedules exactly as the fault-free engine: the
       degraded reference cluster and per-cluster caps only kick in
       while some processor is actually down. *)
    let degraded = s.fault_on && not (State.all_up state) in
    let ref_cluster =
      if degraded then
        Some
          (Reference_cluster.degrade state.State.ref_cluster
             ~power:(State.up_power state))
      else None
    in
    let up_counts = if degraded then Some (State.up_counts state) else None in
    let prepared =
      if (policy s).Policy.alloc_cache then (
        (* Incremental path: identical betas (degradation preserves the
           reference speed), allocations served from each application's
           trajectory cache on the engine's shared arena. Bit-identical
           to [Pipeline.prepare] by construction — the differential
           tests run both and compare. *)
        Obs.with_span "pipeline.allocation" @@ fun () ->
        let rc =
          match ref_cluster with
          | Some r -> r
          | None -> state.State.ref_cluster
        in
        let betas =
          Strategy.betas (policy s).Policy.strategy
            ~ref_speed:rc.Reference_cluster.speed ptgs
        in
        let allocations =
          Array.of_list
            (List.mapi
               (fun j app ->
                 Allocation.allocate_cached
                   ~procedure:(policy s).Policy.config.Pipeline.procedure
                   ?up_counts ~cache:app.State.alloc_cache
                   ~arena:state.State.arena rc s.platform ~beta:betas.(j)
                   app.State.ptg)
               active)
        in
        { Pipeline.betas; allocations })
      else
        Pipeline.prepare ~config:(policy s).Policy.config ?ref_cluster ?up_counts
          ~strategy:(policy s).Policy.strategy s.platform ptgs
    in
    List.iteri
      (fun j app ->
        app.State.beta <- prepared.Pipeline.betas.(j);
        (* Remember the generation's reference allocation per app: the
           mid-run audit replays the ALLOC rules against it. Copied —
           the cache owns the array on its exact-hit path. *)
        app.State.last_alloc <-
          Array.copy prepared.Pipeline.allocations.(j).Allocation.procs)
      active;
    let inputs =
      List.mapi
        (fun j app ->
          let procs = prepared.Pipeline.allocations.(j).Allocation.procs in
          let procs =
            if Policy_kernel.shrinks s.kernel then
              (* Shrink retried tasks per the kernel (the default
                 halves the allocation per transient failure: smaller
                 retries pack earlier on a degraded platform).
                 Allocations of pinned tasks are ignored by the
                 mapper, so shrinking them is inert. Deliberately not
                 gated on fault mode: a custom kernel may shrink on
                 signals of its own, and the registry kernels are the
                 identity at zero failures, so fault-free runs stay
                 bit-identical either way. *)
              Array.mapi
                (fun v p ->
                  Policy_kernel.shrink s.kernel ~failures:app.State.failures.(v)
                    ~procs:p)
                procs
            else procs
          in
          (app.State.ptg, procs))
        active
    in
    let pinned =
      Array.of_list (List.map (fun app -> State.pinned_of state app) active)
    in
    let release = Array.make (List.length active) state.State.now in
    let avail = State.proc_avail state in
    let up = if degraded then Some state.State.proc_up else None in
    let task_floor =
      if s.fault_on then
        Some (Array.of_list (List.map (fun app -> app.State.retry_at) active))
      else None
    in
    let schedules =
      List_mapper.run ~options:(policy s).Policy.config.Pipeline.mapper ~release
        ~pinned ~avail ?up ?task_floor s.platform
        (match ref_cluster with
        | Some r -> r
        | None -> state.State.ref_cluster)
        inputs
    in
    let frozen =
      Array.fold_left
        (fun acc per_app ->
          Array.fold_left
            (fun acc pl -> if pl = None then acc else acc + 1)
            acc per_app)
        0 pinned
    in
    let total = ref 0 in
    List.iter2
      (fun app sched ->
        total := !total + Array.length sched.Schedule.placements;
        app.State.placements <-
          Array.map Option.some sched.Schedule.placements)
      active schedules;
    let remapped = !total - frozen in
    (* Hand the invariant analyzer a snapshot of what this reschedule
       decided: it re-verifies the pinning, β and mapping rules and
       reports to the caller's sink. *)
    (match s.check with
    | None -> ()
    | Some f ->
      let snap_apps =
        List.mapi
          (fun j (app, sched) ->
            {
              Mcs_check.Online_check.index = app.State.index;
              ptg = app.State.ptg;
              release = app.State.release;
              beta = app.State.beta;
              alloc = prepared.Pipeline.allocations.(j).Allocation.procs;
              pinned = pinned.(j);
              schedule = sched;
            })
          (List.combine active schedules)
      in
      f
        (Mcs_check.Online_check.analyze s.platform
           {
             Mcs_check.Online_check.now = state.State.now;
             strategy = (policy s).Policy.strategy;
             procedure = (policy s).Policy.config.Pipeline.procedure;
             apps = snap_apps;
           }));
    state.State.version <- state.State.version + 1;
    state.State.reschedules <- state.State.reschedules + 1;
    state.State.remapped_tasks <- state.State.remapped_tasks + remapped;
    Obs.incr c_reschedules;
    Obs.incr ~by:remapped c_remapped;
    (* Per-kernel attribution: an A/B swap reads these to compare how
       much work each policy object triggered. *)
    Obs.incr s.kernel.Policy_kernel.c_reschedules;
    Obs.incr ~by:remapped s.kernel.Policy_kernel.c_remapped;
    if s.fault_on then State.commit_started state;
    announce s;
    plan_resizes s;
    s.emit
      (Log.Reschedule
         {
           time = state.State.now;
           trigger;
           betas =
             List.map (fun app -> (app.State.index, app.State.beta)) active;
           remapped;
           pinned = frozen;
         })

let stale s ev =
  match ev.Event_queue.kind with
  | Event_queue.Arrival _ | Event_queue.Proc_down _ | Event_queue.Proc_up _ ->
    false
  | Event_queue.Task_finish _ | Event_queue.Task_failed _
  | Event_queue.Departure _ | Event_queue.Resize _ ->
    ev.Event_queue.version <> s.st.State.version

(* Execute one resize opportunity of task [node] of application [i]
   under model [m]. The target width is decided here, at the grid point
   itself — the arrival spike that motivated planning the opportunity
   may be long gone — and clamped to what is feasible: the cluster
   processors idle at this instant (running placements hold theirs;
   merely planned ones are remapped by the mandatory post-resize
   reschedule). On a resize the current segment is closed as a
   [Resized] execution record, its ledger reservation is truncated at
   the preemption instant through the fault path's release machinery,
   the task's progress absorbs the segment's work, and the new segment
   starts now at the new width, charged the redistribution cost and
   priced by Amdahl at that width. Returns [true] iff a resize
   happened — the caller then forces a reschedule (successors re-price,
   the new segment commits, the next opportunity is planned). A
   declined opportunity re-arms the next grid point directly, since no
   reschedule may happen in between to re-plan it. *)
let try_resize s m i node =
  let state = s.st in
  let app = state.State.apps.(i) in
  match app.State.placements.(node) with
  | Some pl
    when app.State.status = State.Active
         && (not (Ptg.is_virtual app.State.ptg node))
         && pl.Schedule.start <= state.State.now +. Floatx.eps
         && pl.Schedule.finish > state.State.now +. Floatx.eps ->
    let renew () =
      let at =
        Malleability.next_resize_point m ~start:pl.Schedule.start
          ~now:state.State.now
      in
      if at < pl.Schedule.finish -. Floatx.eps then
        Event_queue.push s.q ~time:at ~version:state.State.version
          (Event_queue.Resize { app = i; node });
      false
    in
    let width = Array.length pl.Schedule.procs in
    let overhead = app.State.seg_overhead.(node) in
    (* Inside the previous resize's redistribution window no work has
       accrued yet; splitting there would charge twice. *)
    if state.State.now <= pl.Schedule.start +. overhead +. Floatx.eps then
      renew ()
    else begin
      let cl = P.cluster s.platform pl.Schedule.cluster in
      let task = app.State.ptg.Ptg.tasks.(node) in
      let full = Task.time task ~gflops:cl.P.gflops ~procs:width in
      let done_here =
        (state.State.now -. pl.Schedule.start -. overhead) /. full
      in
      let remaining = 1. -. app.State.progress.(node) -. done_here in
      if remaining <= Floatx.eps then renew ()
      else begin
        let avail = State.proc_avail state in
        let base = P.first_proc s.platform pl.Schedule.cluster in
        let free = ref [] and nfree = ref 0 in
        for k = cl.P.procs - 1 downto 0 do
          let p = base + k in
          if
            avail.(p) <= state.State.now +. Floatx.eps
            && ((not s.fault_on) || state.State.proc_up.(p))
          then begin
            free := p :: !free;
            incr nfree
          end
        done;
        let cap = width + !nfree in
        let target =
          Policy_kernel.resize_target s.kernel m
            ~active:state.State.active_apps ~width ~cap
        in
        let target = max 1 (min target cap) in
        if target = width then renew ()
        else begin
          let procs =
            if target < width then begin
              (* Shrink keeps the lowest processor ids; the released
                 ones become available this instant. *)
              let sorted = Array.copy pl.Schedule.procs in
              Array.sort compare sorted;
              Array.sub sorted 0 target
            end
            else begin
              let procs = Array.make target 0 in
              Array.blit pl.Schedule.procs 0 procs 0 width;
              List.iteri
                (fun k p -> if k < target - width then procs.(width + k) <- p)
                !free;
              procs
            end
          in
          let moved = abs (target - width) in
          let cost = Malleability.resize_cost m ~moved in
          let full_new = Task.time task ~gflops:cl.P.gflops ~procs:target in
          let finish = state.State.now +. cost +. (remaining *. full_new) in
          State.record_execution state app node pl ~finish:state.State.now
            ~outcome:Fault_check.Resized;
          if s.fault_on then begin
            let released =
              State.rollback state app node pl ~at:state.State.now
            in
            Obs.incr ~by:released c_release
          end;
          app.State.progress.(node) <- app.State.progress.(node) +. done_here;
          app.State.seg_overhead.(node) <- cost;
          app.State.placements.(node) <-
            Some
              { pl with Schedule.procs; start = state.State.now; finish };
          (* The cached trajectory suffix that priced [node] at its
             nominal width is stale for this application from here on;
             its prefix survives and replays bit-identically. *)
          Allocation.cache_trim app.State.alloc_cache ~node;
          state.State.resizes <- state.State.resizes + 1;
          Obs.incr c_resizes;
          s.emit
            (Log.Task_resized
               {
                 time = state.State.now;
                 app = i;
                 node;
                 from_width = width;
                 to_width = target;
                 moved;
                 cost;
                 finish;
               });
          true
        end
      end
    end
  | Some _ | None -> false

let placement_of s who i node =
  match s.st.State.apps.(i).State.placements.(node) with
  | Some pl -> pl
  | None ->
    invalid_arg
      (Printf.sprintf "Engine: %s event for unplaced task %d of app %d" who
         node i)

let handle s ev trigger =
  let state = s.st in
  s.processed <- s.processed + 1;
  Obs.enter "online.event";
  Obs.incr c_events;
  (match ev.Event_queue.kind with
  | Event_queue.Arrival i ->
    let app = state.State.apps.(i) in
    app.State.status <- State.Active;
    state.State.active_apps <- state.State.active_apps + 1;
    if state.State.active_apps > state.State.peak_active then
      state.State.peak_active <- state.State.active_apps;
    s.emit
      (Log.Arrival
         {
           time = ev.Event_queue.time;
           app = i;
           name = app.State.ptg.Ptg.name;
           tasks = Ptg.task_count app.State.ptg;
         });
    if Policy_kernel.wants s.kernel Policy_kernel.Arrival then
      trigger := merge_trigger !trigger "arrival"
  | Event_queue.Task_finish { app = i; node } ->
    let app = state.State.apps.(i) in
    State.record_execution state app node (placement_of s "finish" i node)
      ~finish:ev.Event_queue.time ~outcome:Fault_check.Completed;
    s.emit (Log.Task_finish { time = ev.Event_queue.time; app = i; node });
    if Policy_kernel.wants s.kernel Policy_kernel.Task_finish then
      trigger := merge_trigger !trigger "task_finish"
  | Event_queue.Task_failed { app = i; node } ->
    Obs.enter "online.fault";
    let app = state.State.apps.(i) in
    let pl = placement_of s "failure" i node in
    app.State.failures.(node) <- app.State.failures.(node) + 1;
    state.State.task_failures <- state.State.task_failures + 1;
    Obs.incr c_retries;
    State.record_execution state app node pl ~finish:ev.Event_queue.time
      ~outcome:Fault_check.Failed;
    (* The attempt occupied its processors to the end: keep the full
       reservation as history, then free the slot bookkeeping so the
       retry can be committed afresh. *)
    if not app.State.committed.(node) then
      Array.iter
        (fun p ->
          Mcs_util.Timeline.reserve state.State.ledger ~proc:p
            ~start:pl.Schedule.start ~finish:pl.Schedule.finish)
        pl.Schedule.procs;
    app.State.committed.(node) <- false;
    app.State.placements.(node) <- None;
    (* A retry restarts the task from scratch: resize progress of the
       failed attempt is lost with it. *)
    app.State.progress.(node) <- 0.;
    app.State.seg_overhead.(node) <- 0.;
    (* Descendants scheduled to start at this very instant were about
       to consume the failed output: revoke them before the pinning
       boundary (start ≤ now) freezes them into the next generation.
       Anything strictly later is remapped by the reschedule anyway. *)
    let reach = Mcs_dag.Dag.reachable_from app.State.ptg.Ptg.dag node in
    Array.iteri
      (fun v plv ->
        match plv with
        | Some plv
          when v <> node && reach.(v)
               && plv.Schedule.start >= ev.Event_queue.time -. Floatx.eps ->
          app.State.placements.(v) <- None
        | Some _ | None -> ())
      app.State.placements;
    let k = app.State.failures.(node) in
    app.State.retry_at.(node) <-
      ev.Event_queue.time +. Policy_kernel.backoff s.kernel ~failures:k;
    s.emit
      (Log.Task_failed
         { time = ev.Event_queue.time; app = i; node; failures = k });
    Obs.leave ();
    if Policy_kernel.wants s.kernel Policy_kernel.Task_failed then
      trigger := merge_trigger !trigger "task_failed"
  | Event_queue.Proc_down procs ->
    Obs.enter "online.fault";
    state.State.fault_events <- state.State.fault_events + 1;
    Obs.incr c_fault_events;
    (* Commit running placements first so the kills below exercise the
       real release path of the ledger. *)
    State.commit_started state;
    Array.iter (fun p -> state.State.proc_up.(p) <- false) procs;
    s.emit (Log.Proc_down { time = ev.Event_queue.time; procs });
    Array.iter
      (fun app ->
        if app.State.status = State.Active then
          Array.iteri
            (fun v pl ->
              match pl with
              | Some pl
                when (not (Ptg.is_virtual app.State.ptg v))
                     && pl.Schedule.start <= state.State.now +. Floatx.eps
                     && pl.Schedule.finish > state.State.now +. Floatx.eps
                     && Array.exists
                          (fun p -> not state.State.proc_up.(p))
                          pl.Schedule.procs ->
                state.State.kills <- state.State.kills + 1;
                Obs.incr c_kills;
                State.record_execution state app v pl
                  ~finish:ev.Event_queue.time ~outcome:Fault_check.Killed;
                let released =
                  State.rollback state app v pl ~at:ev.Event_queue.time
                in
                Obs.incr ~by:released c_release;
                app.State.placements.(v) <- None;
                app.State.progress.(v) <- 0.;
                app.State.seg_overhead.(v) <- 0.;
                s.emit
                  (Log.Task_killed
                     {
                       time = ev.Event_queue.time;
                       app = app.State.index;
                       node = v;
                       elapsed = ev.Event_queue.time -. pl.Schedule.start;
                     })
              | Some _ | None -> ())
            app.State.placements)
      state.State.apps;
    Obs.leave ();
    if Policy_kernel.wants s.kernel Policy_kernel.Proc_down then
      trigger := merge_trigger !trigger "proc_down"
  | Event_queue.Proc_up procs ->
    Obs.enter "online.fault";
    state.State.fault_events <- state.State.fault_events + 1;
    Obs.incr c_fault_events;
    Array.iter (fun p -> state.State.proc_up.(p) <- true) procs;
    s.emit (Log.Proc_up { time = ev.Event_queue.time; procs });
    Obs.leave ();
    if Policy_kernel.wants s.kernel Policy_kernel.Proc_up then
      trigger := merge_trigger !trigger "proc_up"
  | Event_queue.Departure i ->
    let app = state.State.apps.(i) in
    if Array.exists Option.is_none app.State.placements then
      invalid_arg
        (Printf.sprintf "Engine: departure of app %d with unplaced tasks" i);
    app.State.status <- State.Completed;
    app.State.completion <- ev.Event_queue.time;
    (* The application will never be allocated again: free its cached
       trajectories (the lifetime statistics survive the clear). *)
    Allocation.cache_release app.State.alloc_cache;
    state.State.active_apps <- state.State.active_apps - 1;
    state.State.completed_apps <- state.State.completed_apps + 1;
    s.emit
      (Log.Departure
         {
           time = ev.Event_queue.time;
           app = i;
           response = ev.Event_queue.time -. app.State.release;
         });
    if Policy_kernel.wants s.kernel Policy_kernel.Departure then
      trigger := merge_trigger !trigger "departure"
  | Event_queue.Resize { app = i; node } -> (
    match (policy s).Policy.malleability with
    | None -> ()
    | Some m ->
      Obs.enter "online.resize";
      if try_resize s m i node then
        (* Mandatory, kernel-independent: the resized segment must be
           committed and re-announced and its successors re-priced, or
           the stale finish events of the old width would fire. *)
        trigger := merge_trigger !trigger "resize";
      Obs.leave ()));
  Obs.leave ()

let create ?log ?check ?faults ?kernel ~policy platform apps =
  (match faults with Some sc -> Fault.validate sc.Fault.config | None -> ());
  let kernel =
    match kernel with Some k -> k | None -> Policy_kernel.default policy
  in
  let s =
    {
      st = State.create platform apps;
      q = Event_queue.create ();
      kernel;
      platform;
      faults;
      fault_on = faults <> None;
      emit = (match log with Some f -> f | None -> fun _ -> ());
      check;
      processed = 0;
    }
  in
  Array.iter
    (fun app ->
      Event_queue.push s.q ~time:app.State.release ~version:0
        (Event_queue.Arrival app.State.index))
    s.st.State.apps;
  (match faults with
  | None -> ()
  | Some sc ->
    List.iter
      (fun o ->
        Event_queue.push s.q ~time:o.Fault.down_at ~version:0
          (Event_queue.Proc_down o.Fault.procs);
        Event_queue.push s.q ~time:o.Fault.up_at ~version:0
          (Event_queue.Proc_up o.Fault.procs))
      sc.Fault.outages);
  s

let submit s ptg ~release ~at =
  if not (Float.is_finite at) || at < release then
    invalid_arg "Engine.submit: admission before release (or non-finite)";
  if at < s.st.State.now then
    invalid_arg "Engine.submit: admission in the processed past";
  let app = State.add_app s.st ptg ~release in
  Event_queue.push s.q ~time:at ~version:0 (Event_queue.Arrival app.State.index);
  app.State.index

let now s = s.st.State.now
let pending_events s = Event_queue.length s.q
let active_count s = s.st.State.active_apps
let peak_active s = s.st.State.peak_active
let app_count s = Array.length s.st.State.apps
let in_service s = Array.length s.st.State.apps - s.st.State.completed_apps
let kernel s = s.kernel
let kernel_name s = s.kernel.Policy_kernel.name

let app_completed s i =
  if i < 0 || i >= Array.length s.st.State.apps then
    invalid_arg "Engine.app_completed: no such application";
  s.st.State.apps.(i).State.status = State.Completed

let alloc_cache_stats s = State.alloc_cache_stats s.st

let force_reschedule = reschedule

let set_kernel ?(reschedule = false) s k =
  (* A kernel carrying a different allocation procedure invalidates
     every cached trajectory (each cache binds to the procedure that
     recorded it): release them all here rather than trip the bind
     guard on the next allocation. β/strategy changes need nothing —
     the budget is part of the replay key. *)
  if
    (policy s).Policy.config.Pipeline.procedure
    <> k.Policy_kernel.policy.Policy.config.Pipeline.procedure
  then
    Array.iter
      (fun app -> Allocation.cache_release app.State.alloc_cache)
      s.st.State.apps;
  s.kernel <- k;
  if reschedule then force_reschedule s ~trigger:"policy_swap"

type snapshot = {
  snap_state : State.t;
  snap_queue : Event_queue.t;
  snap_kernel : Policy_kernel.t;
  snap_faults : Fault.scenario option;
  snap_processed : int;
}

(* Both directions deep-copy, so one snapshot value can seed any number
   of restores and is never aliased by a live session. The kernel and
   fault scenario are shared: the kernel is an immutable record of
   closures, and the scenario is immutable with pre-rolled (pure)
   failure outcomes — there is no mutable PRNG stream to clone. *)
let snapshot s =
  {
    snap_state = State.copy s.st;
    snap_queue = Event_queue.copy s.q;
    snap_kernel = s.kernel;
    snap_faults = s.faults;
    snap_processed = s.processed;
  }

let restore ?log ?check snap =
  {
    st = State.copy snap.snap_state;
    q = Event_queue.copy snap.snap_queue;
    kernel = snap.snap_kernel;
    platform = snap.snap_state.State.platform;
    faults = snap.snap_faults;
    fault_on = snap.snap_faults <> None;
    emit = (match log with Some f -> f | None -> fun _ -> ());
    check;
    processed = snap.snap_processed;
  }

let audit s =
  let state = s.st in
  match State.active state with
  | [] -> []
  | active ->
    let auditable app =
      Array.length app.State.last_alloc > 0
      && Array.for_all Option.is_some app.State.placements
    in
    (* Mid-blackout (or before the first reschedule) some active app
       has revoked placements: there is no generation to audit, and
       auditing a subset would make the β-sum rules fire spuriously. *)
    if not (List.for_all auditable active) then []
    else begin
      let snap_apps =
        List.map
          (fun app ->
            {
              Mcs_check.Online_check.index = app.State.index;
              ptg = app.State.ptg;
              release = app.State.release;
              beta = app.State.beta;
              alloc = app.State.last_alloc;
              pinned = State.pinned_of state app;
              schedule =
                Schedule.make ~ptg:app.State.ptg
                  ~placements:(Array.map Option.get app.State.placements);
            })
          active
      in
      Mcs_check.Online_check.analyze s.platform
        {
          Mcs_check.Online_check.now = state.State.now;
          strategy = (policy s).Policy.strategy;
          procedure = (policy s).Policy.config.Pipeline.procedure;
          apps = snap_apps;
        }
    end

let advance ?upto s =
  Obs.with_span "online.run" @@ fun () ->
  let state = s.st in
  let bounded t = match upto with None -> true | Some b -> t < b in
  let rec loop () =
    match Event_queue.peek s.q with
    | None -> ()
    | Some ev when not (bounded ev.Event_queue.time) -> ()
    | Some _ ->
      let ev = Option.get (Event_queue.pop s.q) in
      if stale s ev then loop ()
      else begin
        state.State.now <- ev.Event_queue.time;
        let trigger = ref None in
        handle s ev trigger;
        (* Drain every simultaneous event before rescheduling once, so β
           is recomputed over the post-batch set of active applications
           (the queue orders finishes before failures, departures,
           arrivals, outages and recoveries at equal times). *)
        let rec drain_batch () =
          match Event_queue.peek s.q with
          | Some e when e.Event_queue.time <= state.State.now +. Floatx.eps ->
            let e = Option.get (Event_queue.pop s.q) in
            if not (stale s e) then handle s e trigger;
            drain_batch ()
          | Some _ | None -> ()
        in
        drain_batch ();
        (match !trigger with
        | Some trigger -> reschedule s ~trigger
        | None -> ());
        loop ()
      end
  in
  loop ()

type speculation = {
  adopted : bool;
  baseline_makespan : float;
  candidate_makespan : float;
}

let makespan st =
  Array.fold_left
    (fun acc app ->
      if Float.is_nan app.State.completion then acc
      else Float.max acc app.State.completion)
    0. st.State.apps

(* Speculative A/B: clone twice, race the incumbent kernel against the
   candidate over everything already queued, and adopt the candidate on
   the live session only if it strictly improves the makespan. The
   clones are silent (no log, no checker) and fully isolated, so the
   speculation itself never perturbs the live run. *)
let what_if s candidate =
  Obs.with_span "online.what_if" @@ fun () ->
  let baseline = restore (snapshot s) in
  advance baseline;
  let trial = restore (snapshot s) in
  set_kernel ~reschedule:true trial candidate;
  advance trial;
  let baseline_makespan = makespan baseline.st in
  let candidate_makespan = makespan trial.st in
  let adopted = candidate_makespan +. Floatx.eps < baseline_makespan in
  if adopted then set_kernel ~reschedule:true s candidate;
  { adopted; baseline_makespan; candidate_makespan }

let result s =
  let state = s.st in
  let executions = List.rev state.State.executions in
  (* Post-mortem fault audit: replay every recorded attempt against the
     outage intervals and retry budget (FAULT001–003). *)
  (match (s.faults, s.check) with
  | Some sc, Some f ->
    let ptgs = Array.map (fun app -> app.State.ptg) state.State.apps in
    let down = Fault.down_intervals sc ~procs:(P.total_procs s.platform) in
    f
      (Fault_check.check ~max_retries:(policy s).Policy.faults.Policy.max_retries
         ~down s.platform ~ptgs executions)
  | (Some _ | None), _ -> ());
  (* Malleable runs additionally audit the resize chains (MAL001-003),
     fault scenario or not. *)
  (match ((policy s).Policy.malleability, s.check) with
  | Some m, Some f ->
    let ptgs = Array.map (fun app -> app.State.ptg) state.State.apps in
    f (Mcs_check.Mal_check.check m s.platform ~ptgs executions)
  | (Some _ | None), _ -> ());
  let apps = state.State.apps in
  let alloc_hits, alloc_rescales, alloc_misses =
    State.alloc_cache_stats state
  in
  {
    schedules = State.schedules state;
    betas = Array.map (fun app -> app.State.beta) apps;
    completions = Array.map (fun app -> app.State.completion) apps;
    responses =
      Array.map (fun app -> app.State.completion -. app.State.release) apps;
    executions;
    stats =
      {
        events_processed = s.processed;
        events_pushed = Event_queue.pushed s.q;
        reschedules = state.State.reschedules;
        remapped_tasks = state.State.remapped_tasks;
        kills = state.State.kills;
        task_failures = state.State.task_failures;
        fault_events = state.State.fault_events;
        alloc_hits;
        alloc_rescales;
        alloc_misses;
        resizes = state.State.resizes;
      };
  }

let run ?log ?check ?faults ?kernel ~policy platform apps =
  if apps = [] then invalid_arg "State.create: no applications";
  let s = create ?log ?check ?faults ?kernel ~policy platform apps in
  advance s;
  result s
