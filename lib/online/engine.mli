(** Event-driven online scheduler (the paper's Section 8 future work).

    The engine runs a discrete-event loop in virtual time over six
    event kinds: application {e arrivals}, {e task finishes},
    application {e departures}, and — under fault injection —
    {e transient task failures}, processor {e outages} and
    {e recoveries}. On each arrival — and, per {!Policy.t}, on
    departures and task finishes — the resource constraints β are
    recomputed with the chosen strategy over the set of
    {e currently active} applications only (arrived, not completed: an
    online scheduler cannot know the future submission stream), each
    active application is re-allocated under its new β, and every
    {e unstarted} task is remapped by the concurrent list mapper onto
    the partially-occupied platform. Tasks that have started are pinned:
    their placements are frozen and their processors stay busy until
    their estimated finish ({!Mcs_sched.List_mapper.run}'s [pinned] /
    [avail] extension). Departures free processors, so with
    [reschedule_on_departure] the survivors' unstarted tasks backfill
    onto the released share.

    {b Fault injection} ([?faults]) interprets a {!Mcs_fault.Fault}
    scenario:

    - a processor {e outage} kills every attempt running on a failed
      processor (the elapsed work is lost; the kill is recorded and the
      ledger reservation truncated at the outage instant) and triggers a
      reschedule on the {e degraded} platform: the reference cluster is
      resized to the surviving aggregate GFlop/s
      ({!Mcs_sched.Reference_cluster.degrade}), allocations are capped
      by per-cluster surviving processor counts, and the mapper skips
      dead processors. Killed tasks are requeued unconditionally — a
      kill is not a retry. If {e no} processor survives, all unstarted
      placements are revoked and the engine idles until a recovery;
    - a {e recovery} restores the processors and reschedules to exploit
      the recovered capacity (a full mask schedules exactly as the
      fault-free engine);
    - a {e transient failure} costs the attempt's full duration, counts
      one retry, and delays the task's restart by exponential backoff
      per {!Policy.t}'s [faults] policy. After [max_retries] failures
      the next attempt is carried through (bounded retry: the run
      always terminates). Outcomes are pre-rolled per attempt from the
      scenario seed, so they are independent of scheduling order.

    {b Malleable execution} ({!Policy.t}'s [malleability]) lets the
    engine change the width of a {e running} task at the legal resize
    points of a {!Mcs_sched.Malleability} model: after every
    reschedule each running real task's next grid point is armed as a
    resize opportunity; when reached, the target width is decided by
    the active kernel ({!Policy_kernel.resize_target} — by default the
    model's thresholds: shrink under an arrival spike, grow when the
    system drains) and clamped to the processors idle in the task's
    cluster at that instant. A resize closes the current segment as a
    {!Mcs_check.Fault_check.Resized} execution record, releases its
    remaining ledger reservation, charges a redistribution overhead
    proportional to the processors moved, re-prices the remaining work
    by Amdahl at the new width, and forces a reschedule so successors
    re-price and the next opportunity is planned. Resize chains are
    audited by {!Mcs_check.Mal_check} (MAL001-003) when [?check] is
    given. With [malleability = None] — the default — no opportunity
    is ever planned and the engine is bit-identical to the
    non-malleable one, event log included.

    A PTG whose unique sink is a {e real} task doubles as its exit
    node: the engine announces both its task finish (it records an
    execution attempt and can fail transiently like any other task) and
    the departure at the same instant — the queue's kind order delivers
    the finish first.

    Execution follows the mapper's own time estimates (the engine is
    both scheduler and clock); the resulting schedules are ordinary
    {!Mcs_sched.Schedule.t} values that can be validated and replayed
    through the fluid network model ({!Mcs_sim.Replay}) for simulated
    timings, exactly like offline schedules.

    With {!Policy.static} and every arrival at time 0 the engine
    reschedules exactly once over the full set, and its schedules
    coincide, placement for placement, with
    {!Mcs_sched.Pipeline.schedule_concurrent}. Running with an
    {e empty} fault scenario (no outages, zero failure probability) is
    observationally identical to running with no scenario at all. *)

type stats = {
  events_processed : int;  (** non-stale events handled by the loop *)
  events_pushed : int;     (** total queue insertions, stale included *)
  reschedules : int;
  remapped_tasks : int;    (** placements recomputed over the whole run *)
  kills : int;             (** attempts killed by processor outages *)
  task_failures : int;     (** transient failures observed *)
  fault_events : int;      (** outage/recovery events processed *)
  alloc_hits : int;        (** allocation-cache exact hits (same β) *)
  alloc_rescales : int;    (** cache hits served by β-rescale replay *)
  alloc_misses : int;      (** scratch allocation runs (new cache key) *)
  resizes : int;           (** malleable grow/shrink operations executed *)
}

type result = {
  schedules : Mcs_sched.Schedule.t list;  (** in submission order *)
  betas : float array;        (** final β of each application *)
  completions : float array;  (** virtual completion times *)
  responses : float array;    (** completion − release *)
  executions : Mcs_check.Fault_check.execution list;
      (** every attempt of every real task, chronological *)
  stats : stats;
}

type session
(** A re-entrant engine instance. {!run} is [create] + [advance] +
    [result] over a fixed submission list; a {e session} additionally
    absorbs submissions over time ({!submit}) and can be stepped up to
    a virtual-time bound ({!advance} with [~upto]) — the building block
    of the sharded serving layer ({!Mcs_serve.Service}), where each
    shard owns one session on its own sub-platform and only steps it up
    to the watermark its router has proven safe. *)

val create :
  ?log:(Log.event -> unit) ->
  ?check:(Mcs_check.Diagnostic.t list -> unit) ->
  ?faults:Mcs_fault.Fault.scenario ->
  ?kernel:Policy_kernel.t ->
  policy:Policy.t ->
  Mcs_platform.Platform.t ->
  (Mcs_ptg.Ptg.t * float) list ->
  session
(** Fresh session over an initial (possibly empty) submission list:
    arrival events are queued for every listed application, outage and
    recovery events for the fault scenario, and nothing is processed
    yet. The session's active kernel is [kernel] when given (its
    embedded policy then governs every decision — the [policy] argument
    is ignored in that case) and {!Policy_kernel.default}[ policy]
    otherwise, which reproduces the pre-kernel engine bit for bit.
    @raise Invalid_argument on an ill-formed release time or fault
    scenario. *)

val kernel : session -> Policy_kernel.t
(** The active policy kernel. *)

val kernel_name : session -> string
(** [Policy_kernel.name (kernel s)] — for reports and logs. *)

val set_kernel : ?reschedule:bool -> session -> Policy_kernel.t -> unit
(** Swap the active kernel at the session's current virtual time — the
    engine consults the new kernel for every subsequent trigger,
    backoff, shrink and allocation decision. If the new kernel's
    allocation {e procedure} differs, every application's trajectory
    cache is released first (trajectories are procedure-bound).
    [reschedule] (default [false]) additionally forces an immediate
    recomputation under the new kernel, logged with trigger
    ["policy_swap"] — the live half of an adopted {!what_if}. *)

val app_completed : session -> int -> bool
(** Whether application [i] has completed — lets a serving shard
    re-derive its in-flight load from restored engine state.
    @raise Invalid_argument on an out-of-range index. *)

val alloc_cache_stats : session -> int * int * int
(** Summed allocation-cache [(hits, rescales, misses)] across all
    applications at this instant — the live view of the [alloc_*]
    fields of {!stats}, observable mid-run (the departure-scoped cache
    invalidation tests difference it around a departure). *)

val submit : session -> Mcs_ptg.Ptg.t -> release:float -> at:float -> int
(** [submit s ptg ~release ~at] appends one application and queues its
    arrival at virtual time [at] (≥ [release]; the gap is admission
    latency, e.g. the serving layer's β-batching window). Returns the
    application's index in this session. Safe between any two
    {!advance} calls.
    @raise Invalid_argument if [at < release] or [at] lies in the
    already-processed past ([at < now]). *)

val advance : ?upto:float -> session -> unit
(** Process queued events in virtual-time order: all of them (no
    [upto]), or exactly those strictly before [upto]. The bound lets a
    shard stop ahead of submissions it has not yet been shown — calling
    [advance ~upto:w] is safe when every future {!submit} is guaranteed
    [at ≥ w]. Idempotent at a fixed bound. *)

val result : session -> result
(** Snapshot the per-application outcome arrays (submission order) and
    engine counters; with [faults] and [check] set, first runs the
    FAULT001–003 post-mortem audit over the execution log. Meaningful
    once the session is quiescent (every application completed).
    @raise Invalid_argument if some application was never fully
    scheduled. *)

val now : session -> float
(** Virtual time of the last processed event (0 initially). *)

val active_count : session -> int
(** Applications arrived and not yet completed (O(1)). *)

val peak_active : session -> int
(** High-water mark of {!active_count} over the session's lifetime —
    the per-shard concurrency gauge reported by the serving layer. *)

val app_count : session -> int
(** Applications submitted so far. *)

val in_service : session -> int
(** Applications submitted and not yet completed (arrived or still
    queued) — the load measure behind the serving layer's shedding. *)

val pending_events : session -> int
(** Queued events, stale announcements included. *)

type snapshot
(** A deep, self-contained copy of a session's whole mutable world:
    state (placements, fault bookkeeping, per-application allocation
    caches, ledger, liveness mask), event queue (insertion sequence
    included) and active kernel. Immutable structure is shared — PTGs
    (the caches bind to them by physical equality), the kernel (a
    record of closures) and the fault scenario (outage list plus a
    {e pure} pre-rolled failure function of the seed; there is no
    mutable PRNG stream to capture).

    {b Bit-identity bar.} [restore (snapshot s)] continued to
    quiescence replays the exact event log the uninterrupted [s] would
    have produced — float for float, tiebreak for tiebreak, fault
    scenarios included. The snapshot/restore qcheck property and the CI
    checkpoint job enforce this. *)

val snapshot : session -> snapshot
(** Capture the session mid-run. O(state); the session is untouched and
    the snapshot is immune to its further progress. *)

val restore :
  ?log:(Log.event -> unit) ->
  ?check:(Mcs_check.Diagnostic.t list -> unit) ->
  snapshot ->
  session
(** A fresh live session at the snapshot's instant, with fresh [log] /
    [check] sinks (a restored shard re-wires its own). Deep-copies
    again, so one snapshot can seed any number of restores. Gauges
    ([active_count], {!peak_active}) are re-derived from the restored
    statuses, never inherited from the (possibly crashed) source. *)

val audit : session -> Mcs_check.Diagnostic.t list
(** Run the static rule sets (DAG, ALLOC incl. the SCRAP-MAX level
    budgets, MAP, and the ON pinning/β/time-travel rules) over the
    session's {e current} scheduling state — each active application's
    β, last reference allocation and full placement set at virtual time
    [now]. Empty when clean, when nothing is active, or when some
    active application has revoked placements (mid-blackout there is no
    generation to audit). Meaningful on any quiescent-between-events
    session; the snapshot/restore tests audit restored sessions with
    it. Most useful under the default kernel, whose trigger set keeps β
    current whenever the active set changes. *)

type speculation = {
  adopted : bool;  (** the candidate won and is now the live kernel *)
  baseline_makespan : float;  (** incumbent kernel, clone run *)
  candidate_makespan : float;  (** candidate kernel, clone run *)
}

val what_if : session -> Policy_kernel.t -> speculation
(** Speculative rescheduling: clone the session twice
    ({!snapshot}/{!restore}), run the incumbent kernel and the
    candidate (the latter with an immediate ["policy_swap"] remap) to
    quiescence over everything currently queued, and compare makespans
    (latest completion). The candidate is adopted on the live session —
    {!set_kernel} with an immediate remap — {e only} if it strictly
    improves the makespan; otherwise the live session is left exactly
    as it was. The clones are silent and isolated: no log, no checker,
    no effect on the live run beyond the adoption decision. *)

val run :
  ?log:(Log.event -> unit) ->
  ?check:(Mcs_check.Diagnostic.t list -> unit) ->
  ?faults:Mcs_fault.Fault.scenario ->
  ?kernel:Policy_kernel.t ->
  policy:Policy.t ->
  Mcs_platform.Platform.t ->
  (Mcs_ptg.Ptg.t * float) list ->
  result
(** [run ~policy platform apps] executes the submission stream [apps]
    (each PTG paired with its release time, any order of times) to
    completion. [log] receives every event in virtual-time order.

    [check] receives, after every reschedule, the diagnostics of
    {!Mcs_check.Online_check.analyze} over a snapshot of that
    reschedule — pin stability, β-over-active-set, no time travel, plus
    the full allocation and mapping rule sets — and, when [faults] is
    given, one final batch from {!Mcs_check.Fault_check.check} auditing
    the complete execution log against the outage process
    (FAULT001–003). An empty list means the generation is clean. Pass
    [fun d -> Mcs_check.Check.fail_on_error d] to turn any violation
    into an exception.
    @raise Invalid_argument on an empty list, an ill-formed release
    time, or an ill-formed fault scenario. *)
