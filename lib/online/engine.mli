(** Event-driven online scheduler (the paper's Section 8 future work).

    The engine runs a discrete-event loop in virtual time over three
    event kinds: application {e arrivals}, {e task finishes} and
    application {e departures}. On each arrival — and, per
    {!Policy.t}, on departures and task finishes — the resource
    constraints β are recomputed with the chosen strategy over the set
    of {e currently active} applications only (arrived, not completed:
    an online scheduler cannot know the future submission stream), each
    active application is re-allocated under its new β, and every
    {e unstarted} task is remapped by the concurrent list mapper onto
    the partially-occupied platform. Tasks that have started are pinned:
    their placements are frozen and their processors stay busy until
    their estimated finish ({!Mcs_sched.List_mapper.run}'s [pinned] /
    [avail] extension). Departures free processors, so with
    [reschedule_on_departure] the survivors' unstarted tasks backfill
    onto the released share.

    Execution follows the mapper's own time estimates (the engine is
    both scheduler and clock); the resulting schedules are ordinary
    {!Mcs_sched.Schedule.t} values that can be validated and replayed
    through the fluid network model ({!Mcs_sim.Replay}) for simulated
    timings, exactly like offline schedules.

    With {!Policy.static} and every arrival at time 0 the engine
    reschedules exactly once over the full set, and its schedules
    coincide, placement for placement, with
    {!Mcs_sched.Pipeline.schedule_concurrent}. *)

type stats = {
  events_processed : int;  (** non-stale events handled by the loop *)
  events_pushed : int;     (** total queue insertions, stale included *)
  reschedules : int;
  remapped_tasks : int;    (** placements recomputed over the whole run *)
}

type result = {
  schedules : Mcs_sched.Schedule.t list;  (** in submission order *)
  betas : float array;        (** final β of each application *)
  completions : float array;  (** virtual completion times *)
  responses : float array;    (** completion − release *)
  stats : stats;
}

val run :
  ?log:(Log.event -> unit) ->
  ?check:(Mcs_check.Diagnostic.t list -> unit) ->
  policy:Policy.t ->
  Mcs_platform.Platform.t ->
  (Mcs_ptg.Ptg.t * float) list ->
  result
(** [run ~policy platform apps] executes the submission stream [apps]
    (each PTG paired with its release time, any order of times) to
    completion. [log] receives every event in virtual-time order.

    [check] receives, after every reschedule, the diagnostics of
    {!Mcs_check.Online_check.analyze} over a snapshot of that
    reschedule — pin stability, β-over-active-set, no time travel, plus
    the full allocation and mapping rule sets. An empty list means the
    generation is clean. Pass
    [fun d -> Mcs_check.Check.fail_on_error d] to turn any violation
    into an exception.
    @raise Invalid_argument on an empty list or an ill-formed release
    time. *)
