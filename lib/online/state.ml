module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform
module Schedule = Mcs_sched.Schedule
module Timeline = Mcs_util.Timeline
module Floatx = Mcs_util.Floatx

type status = Pending | Active | Completed

type app = {
  index : int;
  ptg : Ptg.t;
  release : float;
  mutable status : status;
  mutable beta : float;
  mutable placements : Schedule.placement option array;
  mutable completion : float;
  failures : int array;
  retry_at : float array;
  committed : bool array;
  progress : float array;
  seg_overhead : float array;
  mutable last_alloc : int array;
  alloc_cache : Mcs_sched.Allocation.cache;
}

type t = {
  platform : P.t;
  ref_cluster : Mcs_sched.Reference_cluster.t;
  mutable apps : app array;
  mutable now : float;
  mutable version : int;
  mutable reschedules : int;
  mutable remapped_tasks : int;
  mutable active_apps : int;
  mutable completed_apps : int;
  mutable peak_active : int;
  arena : Mcs_sched.Alloc_arena.t;
  proc_up : bool array;
  ledger : Timeline.t;
  mutable executions : Mcs_check.Fault_check.execution list;
  mutable kills : int;
  mutable task_failures : int;
  mutable fault_events : int;
  mutable resizes : int;
}

let make_app index ptg release =
  if not (Float.is_finite release) || release < 0. then
    invalid_arg "State.create: ill-formed release time";
  let n = Ptg.node_count ptg in
  {
    index;
    ptg;
    release;
    status = Pending;
    beta = Float.nan;
    placements = Array.make n None;
    completion = Float.nan;
    failures = Array.make n 0;
    retry_at = Array.make n 0.;
    committed = Array.make n false;
    progress = Array.make n 0.;
    seg_overhead = Array.make n 0.;
    last_alloc = [||];
    alloc_cache = Mcs_sched.Allocation.cache_create ();
  }

let create platform apps =
  let apps =
    Array.of_list
      (List.mapi (fun index (ptg, release) -> make_app index ptg release) apps)
  in
  {
    platform;
    ref_cluster = Mcs_sched.Reference_cluster.of_platform platform;
    apps;
    now = 0.;
    version = 0;
    reschedules = 0;
    remapped_tasks = 0;
    active_apps = 0;
    completed_apps = 0;
    peak_active = 0;
    arena = Mcs_sched.Alloc_arena.create ();
    proc_up = Array.make (P.total_procs platform) true;
    ledger = Timeline.create ~procs:(P.total_procs platform);
    executions = [];
    kills = 0;
    task_failures = 0;
    fault_events = 0;
    resizes = 0;
  }

let copy_app (a : app) =
  {
    index = a.index;
    (* The PTG is shared, not cloned: it is immutable, and the copied
       allocation cache binds to it by physical equality — a cloned PTG
       would invalidate every cached trajectory. *)
    ptg = a.ptg;
    release = a.release;
    status = a.status;
    beta = a.beta;
    placements = Array.copy a.placements;
    completion = a.completion;
    failures = Array.copy a.failures;
    retry_at = Array.copy a.retry_at;
    committed = Array.copy a.committed;
    progress = Array.copy a.progress;
    seg_overhead = Array.copy a.seg_overhead;
    last_alloc = Array.copy a.last_alloc;
    alloc_cache = Mcs_sched.Allocation.cache_copy a.alloc_cache;
  }

let copy t =
  let apps = Array.map copy_app t.apps in
  (* Gauges are re-derived from the copied statuses, never inherited:
     a consistent source state reproduces them exactly (so the copy
     stays bit-identical), and a gauge that somehow drifted — e.g. a
     dead serving domain's stale counters — is repaired rather than
     propagated. The peak keeps the recorded high-water mark, floored
     by what the statuses prove. *)
  let active = ref 0 and completed = ref 0 in
  Array.iter
    (fun app ->
      match app.status with
      | Active -> incr active
      | Completed -> incr completed
      | Pending -> ())
    apps;
  {
    platform = t.platform;
    ref_cluster = t.ref_cluster;
    apps;
    now = t.now;
    version = t.version;
    reschedules = t.reschedules;
    remapped_tasks = t.remapped_tasks;
    active_apps = !active;
    completed_apps = !completed;
    peak_active = max t.peak_active !active;
    (* Fresh arena: it is pure per-call scratch, fully refilled by every
       allocation run, so the copy must simply not share buffers with
       the original's domain. *)
    arena = Mcs_sched.Alloc_arena.create ();
    proc_up = Array.copy t.proc_up;
    ledger = Timeline.copy t.ledger;
    (* Persistent list — sharing the spine is safe, prepends diverge. *)
    executions = t.executions;
    kills = t.kills;
    task_failures = t.task_failures;
    fault_events = t.fault_events;
    resizes = t.resizes;
  }

(* Appending is O(apps) per call; submissions reach the engine in
   batches (the serving layer drains its mailbox before stepping), so
   the quadratic worst case never materialises in practice. *)
let add_app t ptg ~release =
  let app = make_app (Array.length t.apps) ptg release in
  t.apps <- Array.append t.apps [| app |];
  app

let active t =
  Array.fold_right
    (fun app acc -> if app.status = Active then app :: acc else acc)
    t.apps []

let pinned_of t app =
  Array.map
    (fun pl ->
      match pl with
      | Some p when p.Schedule.start <= t.now +. Floatx.eps -> Some p
      | Some _ | None -> None)
    app.placements

let proc_avail t =
  let avail = Array.make (P.total_procs t.platform) t.now in
  Array.iter
    (fun app ->
      if app.status = Active then
        Array.iter
          (fun pl ->
            match pl with
            | Some pl
              when pl.Schedule.start <= t.now +. Floatx.eps
                   && pl.Schedule.finish > t.now ->
              Array.iter
                (fun p -> avail.(p) <- Float.max avail.(p) pl.Schedule.finish)
                pl.Schedule.procs
            | Some _ | None -> ())
          app.placements)
    t.apps;
  avail

let alloc_cache_stats t =
  Array.fold_left
    (fun (h, r, m) app ->
      let s = Mcs_sched.Allocation.cache_stats app.alloc_cache in
      ( h + s.Mcs_sched.Allocation.hits,
        r + s.Mcs_sched.Allocation.rescales,
        m + s.Mcs_sched.Allocation.misses ))
    (0, 0, 0) t.apps

let up_counts t = P.up_counts t.platform ~up:t.proc_up
let up_power t = P.up_power t.platform ~up:t.proc_up
let any_up t = Array.exists Fun.id t.proc_up
let all_up t = Array.for_all Fun.id t.proc_up

let record_execution t (app : app) v (pl : Schedule.placement)
    ~(finish : float) ~outcome =
  t.executions <-
    {
      Mcs_check.Fault_check.app = app.index;
      node = v;
      cluster = pl.Schedule.cluster;
      procs = pl.Schedule.procs;
      start = pl.Schedule.start;
      finish;
      outcome;
    }
    :: t.executions

(* Ledger bookkeeping (fault runs only): every started placement is
   reserved on its processors, so outage recovery exercises the real
   release/re-reserve path and double-booking surfaces as a loud
   [Timeline.reserve] failure instead of silent corruption. *)

let commit_started t =
  Array.iter
    (fun app ->
      if app.status <> Pending then
        Array.iteri
          (fun v pl ->
            match pl with
            | Some pl
              when (not app.committed.(v))
                   && (not (Ptg.is_virtual app.ptg v))
                   && pl.Schedule.start <= t.now +. Floatx.eps ->
              Array.iter
                (fun p ->
                  Timeline.reserve t.ledger ~proc:p ~start:pl.Schedule.start
                    ~finish:pl.Schedule.finish)
                pl.Schedule.procs;
              app.committed.(v) <- true
            | Some _ | None -> ())
          app.placements)
    t.apps

let rollback t app v (pl : Schedule.placement) ~at =
  let released =
    if app.committed.(v) then begin
      Array.iter
        (fun p ->
          Timeline.release t.ledger ~proc:p ~start:pl.Schedule.start
            ~finish:pl.Schedule.finish)
        pl.Schedule.procs;
      Array.length pl.Schedule.procs
    end
    else 0
  in
  (* Keep the truncated prefix as history: the processors were busy
     from the start to the kill instant. *)
  Array.iter
    (fun p ->
      Timeline.reserve t.ledger ~proc:p ~start:pl.Schedule.start ~finish:at)
    pl.Schedule.procs;
  app.committed.(v) <- false;
  released

let schedules t =
  Array.to_list
    (Array.map
       (fun app ->
         let placements =
           Array.map
             (fun pl ->
               match pl with
               | Some p -> p
               | None -> invalid_arg "State.schedules: unscheduled task")
             app.placements
         in
         Schedule.make ~ptg:app.ptg ~placements)
       t.apps)
