module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform
module Schedule = Mcs_sched.Schedule
module Floatx = Mcs_util.Floatx

type status = Pending | Active | Completed

type app = {
  index : int;
  ptg : Ptg.t;
  release : float;
  mutable status : status;
  mutable beta : float;
  mutable placements : Schedule.placement option array;
  mutable completion : float;
}

type t = {
  platform : P.t;
  ref_cluster : Mcs_sched.Reference_cluster.t;
  apps : app array;
  mutable now : float;
  mutable version : int;
  mutable reschedules : int;
  mutable remapped_tasks : int;
}

let create platform apps =
  if apps = [] then invalid_arg "State.create: no applications";
  let apps =
    Array.of_list
      (List.mapi
         (fun index (ptg, release) ->
           if not (Float.is_finite release) || release < 0. then
             invalid_arg "State.create: ill-formed release time";
           {
             index;
             ptg;
             release;
             status = Pending;
             beta = Float.nan;
             placements = Array.make (Ptg.node_count ptg) None;
             completion = Float.nan;
           })
         apps)
  in
  {
    platform;
    ref_cluster = Mcs_sched.Reference_cluster.of_platform platform;
    apps;
    now = 0.;
    version = 0;
    reschedules = 0;
    remapped_tasks = 0;
  }

let active t =
  Array.fold_right
    (fun app acc -> if app.status = Active then app :: acc else acc)
    t.apps []

let pinned_of t app =
  Array.map
    (fun pl ->
      match pl with
      | Some p when p.Schedule.start <= t.now +. Floatx.eps -> Some p
      | Some _ | None -> None)
    app.placements

let proc_avail t =
  let avail = Array.make (P.total_procs t.platform) t.now in
  Array.iter
    (fun app ->
      if app.status = Active then
        Array.iter
          (fun pl ->
            match pl with
            | Some pl
              when pl.Schedule.start <= t.now +. Floatx.eps
                   && pl.Schedule.finish > t.now ->
              Array.iter
                (fun p -> avail.(p) <- Float.max avail.(p) pl.Schedule.finish)
                pl.Schedule.procs
            | Some _ | None -> ())
          app.placements)
    t.apps;
  avail

let schedules t =
  Array.to_list
    (Array.map
       (fun app ->
         let placements =
           Array.map
             (fun pl ->
               match pl with
               | Some p -> p
               | None -> invalid_arg "State.schedules: unscheduled task")
             app.placements
         in
         Schedule.make ~ptg:app.ptg ~placements)
       t.apps)
