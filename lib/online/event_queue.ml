type kind =
  | Arrival of int
  | Task_finish of { app : int; node : int }
  | Departure of int

type event = {
  time : float;
  version : int;
  kind : kind;
}

type entry = {
  ev : event;
  seq : int;
}

let kind_rank = function Task_finish _ -> 0 | Departure _ -> 1 | Arrival _ -> 2

let entry_cmp a b =
  let c = Float.compare a.ev.time b.ev.time in
  if c <> 0 then c
  else begin
    let c = compare (kind_rank a.ev.kind) (kind_rank b.ev.kind) in
    if c <> 0 then c else compare a.seq b.seq
  end

type t = {
  heap : entry Mcs_util.Heap.t;
  mutable next_seq : int;
}

let create () = { heap = Mcs_util.Heap.create ~cmp:entry_cmp; next_seq = 0 }

let push t ~time ~version kind =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: ill-formed time";
  Mcs_util.Heap.push t.heap { ev = { time; version; kind }; seq = t.next_seq };
  t.next_seq <- t.next_seq + 1

let pop t = Option.map (fun e -> e.ev) (Mcs_util.Heap.pop t.heap)

let peek t = Option.map (fun e -> e.ev) (Mcs_util.Heap.peek t.heap)

let is_empty t = Mcs_util.Heap.is_empty t.heap

let length t = Mcs_util.Heap.length t.heap

let pushed t = t.next_seq
