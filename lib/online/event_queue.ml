type kind =
  | Arrival of int
  | Task_finish of { app : int; node : int }
  | Task_failed of { app : int; node : int }
  | Departure of int
  | Proc_down of int array
  | Proc_up of int array
  | Resize of { app : int; node : int }

type event = {
  time : float;
  version : int;
  kind : kind;
}

type entry = {
  ev : event;
  seq : int;
}

let kind_rank = function
  | Task_finish _ -> 0
  | Task_failed _ -> 1
  | Departure _ -> 2
  | Arrival _ -> 3
  | Proc_down _ -> 4
  | Proc_up _ -> 5
  | Resize _ -> 6

(* Content key breaking ties between equal-time events of the same
   kind: the insertion sequence alone would make the pop order depend
   on push order, which stops being canonical once fault events are
   interleaved with announcements. App index (then node) is the
   deterministic tiebreak; processor events use their first (lowest)
   processor id. The sequence number remains as the final resort —
   e.g. two same-task announcements from different schedule
   generations — where earlier pushes are stale first. *)
let kind_key = function
  | Arrival a | Departure a -> (a, -1)
  | Task_finish { app; node } | Task_failed { app; node }
  | Resize { app; node } ->
    (app, node)
  | Proc_down ps | Proc_up ps ->
    ((if Array.length ps = 0 then -1 else ps.(0)), -2)

let entry_cmp a b =
  let c = Float.compare a.ev.time b.ev.time in
  if c <> 0 then c
  else begin
    let c = compare (kind_rank a.ev.kind) (kind_rank b.ev.kind) in
    if c <> 0 then c
    else begin
      let c = compare (kind_key a.ev.kind) (kind_key b.ev.kind) in
      if c <> 0 then c else compare a.seq b.seq
    end
  end

type t = {
  heap : entry Mcs_util.Heap.t;
  mutable next_seq : int;
}

let create () = { heap = Mcs_util.Heap.create ~cmp:entry_cmp; next_seq = 0 }

(* Entries are immutable records, so sharing them across the copied
   heap is safe; preserving [next_seq] keeps the insertion-sequence
   tiebreak — and hence every future pop order — bit-identical between
   the copy and the original. *)
let copy t = { heap = Mcs_util.Heap.copy t.heap; next_seq = t.next_seq }

let push t ~time ~version kind =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: ill-formed time";
  Mcs_util.Heap.push t.heap { ev = { time; version; kind }; seq = t.next_seq };
  t.next_seq <- t.next_seq + 1

let pop t = Option.map (fun e -> e.ev) (Mcs_util.Heap.pop t.heap)

let peek t = Option.map (fun e -> e.ev) (Mcs_util.Heap.peek t.heap)

let is_empty t = Mcs_util.Heap.is_empty t.heap

let length t = Mcs_util.Heap.length t.heap

let pushed t = t.next_seq
