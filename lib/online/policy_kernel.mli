(** The swappable policy kernel of the online engine.

    {!Policy.t} is a plain record of settings; a {e kernel} packages it
    with the decision {e closures} the engine consults at run time —
    which events trigger a β recomputation, how long a failed task
    backs off, whether retries shrink their allocation — plus a pair of
    per-kernel observability counters. The engine holds exactly one
    active kernel and can swap it mid-run ({!Engine.set_kernel}), which
    is what the A/B-comparison and what-if consumers build on: the
    kernel object is the unit of replacement, the engine never
    hardwires a decision the kernel could make.

    {!default} reproduces the historical engine behaviour decision for
    decision — same triggers, same exponential backoff, same optional
    halving shrink — so running with it is bit-identical to the
    pre-kernel engine.

    {b Contract.} The [Arrival], [Task_failed], [Proc_down] and
    [Proc_up] triggers are load-bearing: an arrival that never
    schedules anything deadlocks the run, and fault events must remap
    the killed/failed work. Every kernel this module builds answers
    [true] for all four; a hand-rolled [reschedules_on] that does not
    is unsound under the corresponding events. [Departure] and
    [Task_finish] are genuinely optional (they trade schedule quality
    against rescheduling cost). *)

type trigger =
  | Arrival
  | Departure
  | Task_finish
  | Task_failed
  | Proc_down
  | Proc_up

val trigger_label : trigger -> string
(** The label the engine logs as the reschedule's cause
    (["arrival"], ["departure"], …). *)

type t = {
  name : string;  (** registry/reporting name; counters intern on it *)
  policy : Policy.t;
      (** strategy, mapper config, allocation-cache switch and fault
          budget — everything the kernel does not override by closure *)
  reschedules_on : trigger -> bool;
      (** which event kinds force a β recomputation (see the contract
          above for the four mandatory kinds) *)
  backoff : failures:int -> float;
      (** seconds a task waits before retry number [failures] *)
  shrink : (failures:int -> procs:int -> int) option;
      (** per-retry allocation shrink; [None] means allocations are
          never touched (the common case — keeping it an option lets
          the engine skip a per-task rewrite pass entirely) *)
  resize : (active:int -> width:int -> cap:int -> int) option;
      (** malleability trigger: target width for a running segment of
          [width] processors while [active] applications are in the
          system ([cap] is the feasibility ceiling the engine computed:
          free same-cluster processors plus the current width).
          Consulted only when the policy carries a
          {!Policy.t.malleability} model; [None] falls back to the
          model's own thresholds
          ({!Mcs_sched.Malleability.target_width}) *)
  c_reschedules : Mcs_obs.Obs.counter;
  c_remapped : Mcs_obs.Obs.counter;
}

val make :
  ?name:string ->
  ?reschedules_on:(trigger -> bool) ->
  ?backoff:(failures:int -> float) ->
  ?shrink:(failures:int -> procs:int -> int) ->
  ?resize:(active:int -> width:int -> cap:int -> int) ->
  Policy.t ->
  t
(** Kernel over [policy] with any decision closure overridden; the
    defaults reproduce the engine's historical behaviour (triggers from
    the policy's flags, exponential backoff [base·2^(k-1)], halving
    shrink iff the policy's [shrink_on_retry]). [name] defaults to
    ["custom"]. *)

val default : Policy.t -> t
(** [make ~name:"default" policy] — the engine's behaviour before
    kernels existed, bit for bit. *)

val names : string list
(** Registry names accepted by {!of_name} — what the CLIs advertise for
    [--policy]. *)

val of_name : string -> base:Policy.t -> t
(** Derive a registered kernel from a base policy: ["default"] (the
    policy's own flags), ["static"] (arrival-only optional triggers),
    ["eager"] (reschedule on every event, task finishes included),
    ["linear-backoff"] (retry [k] waits [base·k]), ["shrink-retry"]
    (halve a task's allocation per transient failure even if the base
    policy does not). @raise Invalid_argument on an unknown name. *)

val wants : t -> trigger -> bool
(** Whether the kernel reschedules on this trigger. *)

val backoff : t -> failures:int -> float
(** Backoff before retry number [failures] (≥ 1). *)

val shrink : t -> failures:int -> procs:int -> int
(** Allocation for a task with [failures] transient failures, given its
    nominal allocation [procs]; identity when the kernel never
    shrinks. *)

val shrinks : t -> bool
(** Whether {!shrink} can ever differ from the identity — lets the
    engine skip the rewrite pass (and its copies) entirely. *)

val resize_target :
  t ->
  Mcs_sched.Malleability.t ->
  active:int ->
  width:int ->
  cap:int ->
  int
(** Target width for a running segment under malleability model [m]:
    the kernel's [resize] closure when present, the model's own
    thresholds otherwise. Equal to [width] means "leave it alone"; the
    engine additionally clamps to what is actually feasible. *)
