(** Structured event log of the online engine.

    One record per engine event, serialisable as a single JSON line
    (JSONL) for external observability tooling — the format streamed by
    [bin/mcs_online_cli]. The encoder is hand-rolled like
    {!Mcs_sched.Trace} (no dependency); times are printed with
    round-trip precision. *)

type event =
  | Arrival of {
      time : float;
      app : int;
      name : string;
      tasks : int;  (** real tasks of the PTG *)
    }
  | Reschedule of {
      time : float;
      trigger : string;  (** "arrival", "departure" or "task_finish" *)
      betas : (int * float) list;  (** active application → new β *)
      remapped : int;  (** placements recomputed *)
      pinned : int;  (** placements frozen (started/finished) *)
    }
  | Task_finish of { time : float; app : int; node : int }
  | Departure of {
      time : float;
      app : int;
      response : float;  (** completion − release *)
    }

val time : event -> float
(** Virtual time of the record, whatever its variant. *)

val to_json : event -> string
(** One-line JSON object with an ["event"] discriminator field. *)
