(** Structured event log of the online engine.

    One record per engine event, serialisable as a single JSON line
    (JSONL) for external observability tooling — the format streamed by
    [bin/mcs_online_cli]. The encoder is hand-rolled like
    {!Mcs_sched.Trace} (no dependency); times are printed with
    round-trip precision. *)

type event =
  | Arrival of {
      time : float;
      app : int;
      name : string;
      tasks : int;  (** real tasks of the PTG *)
    }
  | Reschedule of {
      time : float;
      trigger : string;
          (** "arrival", "departure", "task_finish", "task_failed",
              "proc_down" or "proc_up" *)
      betas : (int * float) list;  (** active application → new β *)
      remapped : int;  (** placements recomputed *)
      pinned : int;  (** placements frozen (started/finished) *)
    }
  | Task_finish of { time : float; app : int; node : int }
  | Departure of {
      time : float;
      app : int;
      response : float;  (** completion − release *)
    }
  | Proc_down of { time : float; procs : int array }
      (** processor outage (fault injection) *)
  | Proc_up of { time : float; procs : int array }
      (** processor recovery *)
  | Task_failed of {
      time : float;
      app : int;
      node : int;
      failures : int;  (** cumulative transient failures of the task *)
    }
  | Task_killed of {
      time : float;
      app : int;
      node : int;
      elapsed : float;  (** work lost: outage instant − attempt start *)
    }
  | Task_resized of {
      time : float;
      app : int;
      node : int;
      from_width : int;  (** processors before the resize *)
      to_width : int;  (** processors after the resize *)
      moved : int;  (** released + acquired processors *)
      cost : float;  (** redistribution overhead charged, seconds *)
      finish : float;  (** re-priced finish of the resized segment *)
    }
      (** a running task was preempted at a malleability resize point
          and continues at a different width (malleable runs only: a
          run with malleability off never emits this) *)

val time : event -> float
(** Virtual time of the record, whatever its variant. *)

val to_json : event -> string
(** One-line JSON object with an ["event"] discriminator field. *)
