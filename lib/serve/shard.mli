(** One shard: a sub-platform, a mailbox and an engine session.

    A shard {e owns} its slice of the platform and its
    {!Mcs_online.Engine.session} exclusively — no other domain ever
    touches either. All communication is message passing through the
    shard's {!Squeue}: the router pushes submissions, peers push
    hand-offs, and the shard alone drains, injects and steps. β is
    recomputed per shard over that shard's active set only, which is
    exactly the paper's resource-constraint computation applied to the
    shard's sub-platform.

    The serving loop alternates two moves:

    + {b pickup} — drain the mailbox, shed overflow to the least-loaded
      peer if the admission policy says so, and inject the rest into
      the session ({!Mcs_online.Engine.submit} at the β-batching
      quantised instant);
    + {b step} — advance the session strictly below the watermark read
      at pickup. Submissions arrive in release order and quantisation
      never moves an arrival below its release, so every event below
      the watermark is final.

    A handed-off application is admitted at
    [max (quantised release) (receiver's now)] — the receiver may have
    advanced past the release; the extra wait is admission latency and
    shows up in the response time, never as time travel.

    Ownership extends below the session: the engine state inside it
    carries an {!Mcs_sched.Alloc_arena.t} and one allocation cache per
    application ({!Mcs_sched.Allocation.allocate_cached}), both
    single-owner mutable scratch. Because the shard alone steps its
    session, that scratch is confined to the shard's domain for free —
    no shard ever allocates against another shard's arena, and a
    hand-off re-primes the receiver's cache rather than sharing the
    sender's. *)

type msg = {
  global : int;  (** submission index across the whole service *)
  ptg : Mcs_ptg.Ptg.t;
  release : float;
  handoff : bool;  (** already shed once — must be admitted here *)
}

type t

val partition :
  Mcs_platform.Platform.t ->
  shards:int ->
  (Mcs_platform.Platform.t * int array) array
(** Split a platform into [shards] disjoint sub-platforms, balancing
    aggregate GFlop/s greedily (heaviest cluster first onto the
    lightest shard). Each sub-platform keeps its clusters in global
    index order (returned alongside) with switch ids renumbered
    compactly in order of first appearance — the identity on every
    stock platform, so a 1-shard partition reproduces the input
    cluster-for-cluster. Bandwidth and latency parameters are
    inherited.
    @raise Invalid_argument if [shards < 1] or exceeds the cluster
    count. *)

val make :
  index:int ->
  platform:Mcs_platform.Platform.t ->
  clusters:int array ->
  admission:Admission.t ->
  policy:Mcs_online.Policy.t ->
  kernel_name:string ->
  checkpoint_every:int ->
  crash_after:int option ->
  capture_log:bool ->
  check:bool ->
  faults:Mcs_fault.Fault.scenario option ->
  t
(** A fresh shard over its sub-platform, mailbox capacity and fault
    scenario per the arguments. The engine runs under
    {!Mcs_online.Policy_kernel.of_name}[ kernel_name ~base:policy]
    (["default"] reproduces the plain policy). [checkpoint_every > 0]
    checkpoints the shard every that-many injections (plus once at
    creation); [crash_after = Some n] scripts a crash of the serving
    loop after at least [n] injections (see {!restore_crashed}). Peers
    must be installed with {!set_peers} before any pickup can shed.
    @raise Invalid_argument on a negative [checkpoint_every] or an
    unknown kernel name. *)

val set_peers : t -> t array -> unit
(** Install the full shard array (self included) — hand-off targets. *)

val queue : t -> msg Squeue.t
(** The shard's mailbox. Producers (router, peers) push; only the
    owning shard drains. *)

val hb_done : t -> Hb.sync
(** Happens-before sync released by {!finish}: after [Domain.join],
    {!Hb.acquire} it to model the join's visibility edge (race
    profile; no-op when the tracker is disabled). *)

val index : t -> int
(** Position of this shard in the service's shard array. *)

val load : t -> float
(** Live in-flight gauge: GFlop injected minus GFlop departed.
    Readable from any domain. *)

val pickup : t -> unit
(** One non-blocking pickup + step: drain, shed, inject, advance to the
    drained watermark (fully, if the queue is closed). The inline
    fallback mode's unit of progress. *)

val serve_loop : t -> unit
(** Blocking serving loop: pickup on every mailbox signal until the
    queue closes, then drain what remains and advance to quiescence.
    The body of the shard's domain. Checkpoints per [checkpoint_every];
    exits early — publishing {!crashed} — when the scripted
    [crash_after] threshold is reached. *)

val crashed : t -> bool
(** Whether the serving loop died at its scripted crash point (readable
    from any domain). The service heals such a shard with
    {!restore_crashed} and respawns the loop. *)

val restore_crashed : t -> unit
(** Rebuild the shard at its latest checkpoint and replay the journal
    of injections made since (each at its {e recorded} admission
    instant). Everything the dead loop did after the checkpoint —
    engine progress, log suffix, violation counts, gauges — is rolled
    back and will be re-derived by the respawned loop; by the watermark
    argument the re-run is bit-identical to the run that did not crash.
    The in-flight load gauge is re-derived from the restored engine
    state (injected, not completed), never inherited. Must be called on
    the service's domain, after the crashed domain was joined.
    @raise Invalid_argument if the shard has no checkpoint. *)

val restores : t -> int
(** Completed {!restore_crashed} calls over this shard's lifetime. *)

val finish : t -> unit
(** Advance the session to quiescence (close-time sweep step). *)

val inject : t -> allow_shed:bool -> msg list -> unit
(** Shed (if allowed) and inject one drained batch — exposed for the
    service's close-time sweep, which must inject with shedding off to
    reach fixpoint. *)

type report = {
  shard : int;
  clusters : int array;  (** global cluster indices of the sub-platform *)
  engine : Mcs_online.Engine.result;
  global_ids : int array;  (** local app index → global submission id *)
  injected : int;
  handoffs_in : int;
  handoffs_out : int;
  queue_peak : int;
  peak_active : int;
  restores : int;  (** checkpoint restores after scripted crashes *)
  violations : int;  (** checker errors across all generations + audit *)
  diagnostics : Mcs_check.Diagnostic.t list;  (** first few, for reports *)
  log : Mcs_online.Log.event list;
      (** chronological, local app indices; empty unless [capture_log] *)
}

val report : t -> report
(** Snapshot after quiescence ({!Mcs_online.Engine.result} semantics). *)
