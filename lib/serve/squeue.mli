(** Bounded multi-producer mailbox of one shard.

    The only synchronisation point between a shard's domain and the rest
    of the service: the router pushes submissions, peers push hand-offs,
    the shard drains in batches. Every queue is {e per-shard} — there is
    no global run queue, so shards never contend on a shared lock, and
    backpressure is exerted where the congestion actually is.

    The queue also carries the service's {e watermark}: the largest
    release time already submitted to {e any} shard. Submissions arrive
    in release order, so a shard holding a batch drained at watermark
    [w] knows every future message has release ≥ [w] and may process
    its engine strictly below [w] without ever reordering the past.

    Blocking is intentional and bounded: {!push} with [~block:true]
    waits for space (producer backpressure), {!wait_batch} waits for
    something to do (messages, a watermark advance, or close). Hand-offs
    use {!push_unbounded}, which never blocks and never refuses — two
    full shards handing work to each other must not deadlock, and a
    message accepted into any queue is guaranteed to be drained (the
    service sweeps every queue to fixpoint at close). *)

type 'a t

type push_outcome =
  | Accepted
  | Full  (** rejected: capacity reached under the [Reject] policy *)
  | Closed  (** rejected: {!close} already called *)

type 'a batch = {
  msgs : 'a list;  (** drained messages, push order *)
  watermark : float;  (** largest release submitted service-wide *)
  closed : bool;  (** no further {!push} can succeed *)
}

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> block:bool -> 'a -> push_outcome
(** Append one message. At capacity: with [~block:true], wait until a
    drain frees space (or the queue closes); with [~block:false],
    return [Full] without side effect. Never returns [Full] when
    [block]. *)

val push_unbounded : 'a t -> 'a -> unit
(** Append one message regardless of capacity or closing — the hand-off
    path (see above). Counts towards {!stats} peaks. *)

val wait_batch : 'a t -> seen:float -> 'a batch
(** Drain everything queued, blocking first until there is progress to
    make: a non-empty queue, a watermark strictly above [seen], or
    close. Signals waiting producers after freeing space. *)

val drain : 'a t -> 'a batch
(** Non-blocking {!wait_batch}: drain whatever is there (possibly
    nothing) and report the current watermark and closed flag — the
    inline fallback mode and the close-time sweep. *)

val advance_watermark : 'a t -> float -> unit
(** Raise the watermark (monotone: lower values are ignored) and wake
    {e all} blocked consumers — a broadcast, because each waiter blocks
    on its own [seen] threshold and a single wakeup could land on a
    waiter whose threshold the new watermark does not clear, stranding
    the one it does. *)

val close : 'a t -> unit
(** Refuse further {!push}es and wake everyone. Already-queued messages
    remain drainable. Idempotent. *)

val length : 'a t -> int
val peak : 'a t -> int
(** High-water mark of {!length} over the queue's lifetime. *)

val pushed : 'a t -> int
(** Messages ever accepted ({!push} and {!push_unbounded}). *)
