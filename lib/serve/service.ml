module Ptg = Mcs_ptg.Ptg
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Fault = Mcs_fault.Fault
module Obs = Mcs_obs.Obs

let c_submitted = Obs.counter "serve.submitted"
let c_admitted = Obs.counter "serve.admitted"
let c_rejected = Obs.counter "serve.rejected"

type mode = Inline | Domains

type config = {
  shards : int;
  mode : mode;
  router : Router.choice;
  admission : Admission.t;
  policy : Policy.t;
  kernel : string;
  checkpoint_every : int;
  kill : (int * int) option;
  capture_logs : bool;
  check : bool;
  faults : Fault.config option;
  fault_seed : int;
}

let default_config =
  {
    shards = 4;
    mode = Domains;
    router = Router.Least_work;
    admission = Admission.default;
    policy = Policy.static (Mcs_sched.Strategy.Weighted (Mcs_sched.Strategy.Work, 0.7));
    kernel = "default";
    checkpoint_every = 0;
    kill = None;
    capture_logs = false;
    check = false;
    faults = None;
    fault_seed = 0;
  }

type outcome = Admitted of int | Rejected

type report = {
  shards : Shard.report array;
  submitted : int;
  admitted : int;
  rejected : int;
  handoffs : int;
  peak_active : int;
  responses : float array;
  events : int;
  reschedules : int;
  remapped : int;
  restores : int;
  violations : int;
  wall_s : float;
}

type t = {
  config : config;
  shards : Shard.t array;
  router : Router.t;
  domains : unit Domain.t option array;
      (** one slot per shard; [None] between a join and a respawn *)
  lock : Mutex.t;
      (** guards the four counters below; never held across a
          (possibly blocking) queue push, so a blocked submitter cannot
          deadlock a concurrent close *)
  mutable submitted : int; [@guarded_by lock]
  mutable rejected : int; [@guarded_by lock]
  mutable last_release : float; [@guarded_by lock]
  mutable closed : bool; [@guarded_by lock]
  hb : Hb.sync;
  hb_state : Hb.loc;
  started_at : float;
}

let create config platform =
  Admission.validate config.admission;
  (match config.faults with Some fc -> Fault.validate fc | None -> ());
  (match config.kill with
  | Some (k, n) ->
    if k < 0 || k >= config.shards || n < 0 then
      invalid_arg "Service.create: ill-formed kill spec"
  | None -> ());
  let parts = Shard.partition platform ~shards:config.shards in
  let shards =
    Array.mapi
      (fun k (sub, clusters) ->
        let faults =
          Option.map
            (fun fc -> Fault.generate ~seed:(config.fault_seed + k) sub fc)
            config.faults
        in
        let crash_after =
          match (config.mode, config.kill) with
          | Domains, Some (kk, n) when kk = k -> Some n
          | _ -> None
        in
        Shard.make ~index:k ~platform:sub ~clusters
          ~admission:config.admission ~policy:config.policy
          ~kernel_name:config.kernel
          ~checkpoint_every:config.checkpoint_every ~crash_after
          ~capture_log:config.capture_logs ~check:config.check ~faults)
      parts
  in
  Array.iter (fun sh -> Shard.set_peers sh shards) shards;
  let router =
    Router.create
      ~load:(fun k -> Shard.load shards.(k))
      config.router ~shards:config.shards
  in
  let domains =
    match config.mode with
    | Inline -> [||]
    | Domains ->
      Array.map
        (fun sh -> Some (Domain.spawn (fun () -> Shard.serve_loop sh)))
        shards
  in
  {
    config;
    shards;
    router;
    domains;
    lock = Mutex.create ();
    submitted = 0;
    rejected = 0;
    last_release = 0.;
    closed = false;
    hb = Hb.sync "service.lock";
    hb_state = Hb.loc "service.state";
    started_at = Unix.gettimeofday ();
  }

(* Detect-and-heal: any shard whose serving loop died at its scripted
   crash point is joined (making its last state fully visible), rebuilt
   from its checkpoint + journal, and its loop respawned. Called at the
   top of every [submit] — before any push, so a Block-mode submitter
   never backpressures against a dead consumer — and at [close]. Under
   the service lock: the flag is only ever cleared here, so concurrent
   healers cannot double-join a domain. *)
let heal t =
  match t.config.mode with
  | Inline -> ()
  | Domains ->
    if Array.exists Shard.crashed t.shards then
      Mutex.protect t.lock @@ fun () ->
      Array.iteri
        (fun k sh ->
          if Shard.crashed sh then begin
            (match t.domains.(k) with
            | Some d ->
              Domain.join d;
              t.domains.(k) <- None
            | None -> ());
            Hb.acquire (Shard.hb_done sh);
            Shard.restore_crashed sh;
            t.domains.(k) <- Some (Domain.spawn (fun () -> Shard.serve_loop sh))
          end)
        t.shards

(* Short critical sections only: validate-and-count, then push with
   the lock released (the push may block on backpressure, and a
   submitter blocked under the service lock would deadlock close). *)
let submit t ptg ~release =
  heal t;
  let global =
    Mutex.protect t.lock @@ fun () ->
    Hb.region t.hb @@ fun () ->
    Hb.read t.hb_state;
    if t.closed then invalid_arg "Service.submit: closed";
    if (not (Float.is_finite release)) || release < t.last_release then
      invalid_arg "Service.submit: releases must be nondecreasing";
    Hb.write t.hb_state;
    t.last_release <- release;
    let global = t.submitted in
    t.submitted <- t.submitted + 1;
    global
  in
  Obs.incr c_submitted;
  let k = Router.route t.router ~work:(Ptg.work ptg) in
  let sh = t.shards.(k) in
  let msg = { Shard.global; ptg; release; handoff = false } in
  let block = t.config.admission.Admission.on_full = Admission.Block in
  let pushed =
    match t.config.mode with
    | Domains -> Squeue.push (Shard.queue sh) ~block msg
    | Inline -> (
      match Squeue.push (Shard.queue sh) ~block:false msg with
      | Squeue.Accepted -> Squeue.Accepted
      | Squeue.Full when block ->
        (* Backpressure without a consumer domain: make the progress
           ourselves, then the push must succeed. *)
        Shard.pickup sh;
        Squeue.push (Shard.queue sh) ~block:false msg
      | (Squeue.Full | Squeue.Closed) as r -> r)
  in
  (* The watermark may advance on every submission — even a rejected
     one proves all future releases are ≥ [release]. *)
  Array.iter
    (fun sh -> Squeue.advance_watermark (Shard.queue sh) release)
    t.shards;
  match pushed with
  | Squeue.Accepted ->
    Obs.incr c_admitted;
    Admitted k
  | Squeue.Full ->
    (Mutex.protect t.lock @@ fun () ->
     Hb.region t.hb @@ fun () ->
     Hb.write t.hb_state;
     t.rejected <- t.rejected + 1);
    Obs.incr c_rejected;
    Rejected
  | Squeue.Closed -> invalid_arg "Service.submit: closed"

let build_report t =
  let submitted, rejected =
    Mutex.protect t.lock @@ fun () ->
    Hb.region t.hb @@ fun () ->
    Hb.read t.hb_state;
    (t.submitted, t.rejected)
  in
  let reports = Array.map Shard.report t.shards in
  let responses = Array.make submitted Float.nan in
  Array.iter
    (fun r ->
      Array.iteri
        (fun local global ->
          responses.(global) <- r.Shard.engine.Engine.responses.(local))
        r.Shard.global_ids)
    reports;
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
  {
    shards = reports;
    submitted;
    admitted = submitted - rejected;
    rejected;
    handoffs = sum (fun r -> r.Shard.handoffs_out);
    peak_active = sum (fun r -> r.Shard.peak_active);
    responses;
    events = sum (fun r -> r.Shard.engine.Engine.stats.Engine.events_processed);
    reschedules = sum (fun r -> r.Shard.engine.Engine.stats.Engine.reschedules);
    remapped = sum (fun r -> r.Shard.engine.Engine.stats.Engine.remapped_tasks);
    restores = sum (fun r -> r.Shard.restores);
    violations = sum (fun r -> r.Shard.violations);
    wall_s = Unix.gettimeofday () -. t.started_at;
  }

let close t =
  (Mutex.protect t.lock @@ fun () ->
   Hb.region t.hb @@ fun () ->
   Hb.read t.hb_state;
   if t.closed then invalid_arg "Service.close: already closed";
   Hb.write t.hb_state;
   t.closed <- true);
  (* A crash after the last submission is only detected here: heal
     first, so the respawned loop serves the close-time drain. *)
  heal t;
  (match t.config.mode with
  | Domains ->
    Array.iter (fun sh -> Squeue.close (Shard.queue sh)) t.shards;
    Array.iter (Option.iter Domain.join) t.domains;
    (* The join edge: each shard released [hb_done] at the end of its
       loop; acquiring after the join tells the tracker everything the
       shard did is visible to the sweep below. *)
    Array.iter (fun sh -> Hb.acquire (Shard.hb_done sh)) t.shards;
    (* A loop that died between the pre-close heal and the join exited
       without finishing: restore it here — no respawn needed, the
       close-time sweep below drains its mailbox and runs it to
       quiescence on this domain. *)
    Array.iter
      (fun sh -> if Shard.crashed sh then Shard.restore_crashed sh)
      t.shards
  | Inline -> Array.iter (fun sh -> Squeue.close (Shard.queue sh)) t.shards);
  (* Sweep to fixpoint: inline-mode leftovers, plus hand-offs that
     landed after their target's domain exited. Shedding off, so every
     pass strictly shrinks the undrained population. *)
  let rec sweep () =
    let moved = ref false in
    Array.iter
      (fun sh ->
        let b = Squeue.drain (Shard.queue sh) in
        if b.Squeue.msgs <> [] then begin
          moved := true;
          Shard.inject sh ~allow_shed:false b.Squeue.msgs
        end)
      t.shards;
    Array.iter Shard.finish t.shards;
    if !moved then sweep ()
  in
  sweep ();
  build_report t

let run_stream ?(rate = 0.) config platform apps =
  Obs.with_span "serve.run" @@ fun () ->
  let t = create config platform in
  List.iter
    (fun (ptg, release) ->
      if rate > 0. then Unix.sleepf (1. /. rate);
      ignore (submit t ptg ~release))
    apps;
  close t

let merged_log (report : report) =
  Stats.merge
    (Array.to_list
       (Array.map
          (fun r ->
            let global local = r.Shard.global_ids.(local) in
            ( r.Shard.shard,
              List.map (Stats.relabel global) r.Shard.log ))
          report.shards))
