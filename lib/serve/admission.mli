(** Admission policy of the serving engine.

    Three independent knobs, all enforced at the edge rather than inside
    the engine:

    - {b capacity / on-full}: each shard mailbox holds at most
      [capacity] undrained submissions. At capacity, [Block] exerts
      backpressure on the submitting caller, [Reject] refuses the
      submission with an explicit outcome — a submission is {e never}
      dropped silently (admitted + rejected = submitted, checked by the
      test-suite).
    - {b shedding}: with [shed_above = Some n], a shard whose in-service
      population (queued + active) reaches [n] at pickup time forwards
      the overflow to its least-loaded peer as a {e hand-off} message.
      A handed-off submission is accepted unconditionally by the
      receiver — one hop at most, so overload cannot ping-pong.
    - {b β-batching}: arrivals are quantised to the end of their
      [batch_window]-second window of virtual time, so one reschedule
      (one β recomputation over the active set) absorbs every
      submission of the window instead of paying one reschedule per
      submission. [0.] disables quantisation — every admission is
      exact, and a one-shard service reproduces {!Mcs_online.Engine.run}
      bit for bit. The release time is kept raw: the response time
      reported for an application {e includes} its admission latency. *)

type on_full = Block | Reject

type t = {
  capacity : int;  (** mailbox slots per shard, ≥ 1 *)
  on_full : on_full;
  shed_above : int option;  (** in-service threshold triggering hand-off *)
  batch_window : float;  (** β-batching quantum, virtual seconds; 0 = exact *)
}

val default : t
(** [capacity = 1024], [Block], no shedding, exact admission. *)

val validate : t -> unit
(** @raise Invalid_argument on [capacity < 1], [shed_above < 1], or a
    negative/non-finite [batch_window]. *)

val quantize : t -> float -> float
(** Admission instant of a release time: the end of its batch window
    (identity when [batch_window = 0.]; never below the release). *)
