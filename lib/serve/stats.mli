(** Post-run aggregation helpers for the serving layer.

    Pure functions over per-shard outputs: latency percentiles over the
    response vector, and the deterministic sort-merge of per-shard event
    logs. The merge is the determinism witness used by the test-suite —
    two runs of the same stream under different domain interleavings
    must produce identical merged logs, because each shard's log is a
    pure function of its own submission sub-stream and the merge order
    [(time, shard, per-shard position)] is interleaving-independent. *)

val gauge_update : float Atomic.t -> (float -> float) -> unit
(** Raceproof read-modify-write of a float gauge: compare_and_set retry
    loop on the boxed read (floats have no [fetch_and_add]). [f] may
    run more than once and must be pure. *)

val gauge_add : float Atomic.t -> float -> unit
val gauge_sub_floor : float Atomic.t -> float -> unit
(** [gauge_sub_floor g d] subtracts [d], clamping at [0.] — the shape
    every load gauge decrement uses. *)

val percentile : float array -> p:float -> float
(** Nearest-rank percentile ([p] in [0, 1]) over the finite values of
    the input (copied, sorted); [nan] when none are finite. [p = 0.5]
    is the median, [p = 0.99] the tail. *)

val relabel : (int -> int) -> Mcs_online.Log.event -> Mcs_online.Log.event
(** Map every application index through the function (shard-local →
    global submission id, including the β list of reschedule records). *)

val merge :
  (int * Mcs_online.Log.event list) list -> (int * Mcs_online.Log.event) list
(** Sort-merge shard-tagged chronological logs into one stream ordered
    by [(time, shard)], per-shard order preserved at equal times. *)
