(* Vector-clock happens-before tracker: the dynamic cross-check of the
   static lockset rules. Instrumentation sites in Squeue/Service name a
   [sync] (a lock or join edge) and a [loc] (a guarded mutable region);
   each domain owns a vector-clock slot, [acquire]/[release] carry
   clocks across the sync, and an access checks that every previously
   recorded conflicting access is ordered before it.

   All tracker state lives under one global mutex — the tracker must
   not itself race, and it only runs under the [race] dune profile
   (enabled explicitly by the test), so the serialization cost is
   irrelevant. When disabled every entry point is a cheap atomic load
   and a return, so the default-profile serve path is unaffected. *)

let max_slots = 64

let enabled_flag = Atomic.make false
let hb_lock = Mutex.create ()

(* Generation stamp: [enable] bumps it, and any sync/loc created under
   an older generation lazily clears its snapshots on first touch, so
   trackers survive enable/disable cycles across tests. *)
let generation = ref 0

let clocks = Array.make_matrix max_slots max_slots 0
let slots : (int, int) Hashtbl.t = Hashtbl.create 16
let next_slot = ref 0
let violation_log = ref []

(* [s_label] is for debugger eyes only — violations name locs. *)
type sync = { s_label : string; s_clock : int array; mutable s_gen : int }
[@@warning "-69"]

type loc = {
  l_label : string;
  l_writes : int array array;  (* per-slot clock snapshot at last write *)
  l_wrote : bool array;
  l_reads : int array array;
  l_read : bool array;
  mutable l_gen : int;
}

let sync label = { s_label = label; s_clock = Array.make max_slots 0; s_gen = -1 }

let loc label =
  {
    l_label = label;
    l_writes = Array.make_matrix max_slots max_slots 0;
    l_wrote = Array.make max_slots false;
    l_reads = Array.make_matrix max_slots max_slots 0;
    l_read = Array.make max_slots false;
    l_gen = -1;
  }

let enabled () = Atomic.get enabled_flag

let enable () =
  Mutex.protect hb_lock @@ fun () ->
  incr generation;
  Array.iter (fun row -> Array.fill row 0 max_slots 0) clocks;
  Hashtbl.reset slots;
  next_slot := 0;
  violation_log := [];
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let violations () =
  Mutex.protect hb_lock @@ fun () -> List.rev !violation_log

(* --- under hb_lock ------------------------------------------------- *)

let slot_locked () =
  let d = (Domain.self () :> int) in
  match Hashtbl.find_opt slots d with
  | Some s -> s
  | None ->
    let s = !next_slot in
    if s >= max_slots then failwith "Hb: more than 64 domains";
    incr next_slot;
    Hashtbl.add slots d s;
    s

let fresh_sync s =
  if s.s_gen <> !generation then begin
    Array.fill s.s_clock 0 max_slots 0;
    s.s_gen <- !generation
  end

let fresh_loc l =
  if l.l_gen <> !generation then begin
    Array.fill l.l_wrote 0 max_slots false;
    Array.fill l.l_read 0 max_slots false;
    l.l_gen <- !generation
  end

let join dst src =
  for i = 0 to max_slots - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let flag me l kind k =
  violation_log :=
    Printf.sprintf
      "race on '%s': slot %d's %s is unordered with slot %d's write"
      l.l_label k kind me
    :: !violation_log

(* --- entry points -------------------------------------------------- *)

let acquire s =
  if enabled () then
    Mutex.protect hb_lock @@ fun () ->
    fresh_sync s;
    let me = slot_locked () in
    join clocks.(me) s.s_clock

let release s =
  if enabled () then
    Mutex.protect hb_lock @@ fun () ->
    fresh_sync s;
    let me = slot_locked () in
    join s.s_clock clocks.(me);
    clocks.(me).(me) <- clocks.(me).(me) + 1

let region s f =
  acquire s;
  Fun.protect ~finally:(fun () -> release s) f

(* An access by slot [me] is ordered after a prior access recorded by
   slot [k] iff the snapshot's own component is visible in [me]'s
   clock: snapshot.(k) <= clocks.(me).(k). Tick first so concurrent
   accesses are asymmetric — of two unordered writes, exactly the
   second one to reach the tracker reports. *)
let write l =
  if enabled () then
    Mutex.protect hb_lock @@ fun () ->
    fresh_loc l;
    let me = slot_locked () in
    clocks.(me).(me) <- clocks.(me).(me) + 1;
    for k = 0 to max_slots - 1 do
      if k <> me then begin
        if l.l_wrote.(k) && l.l_writes.(k).(k) > clocks.(me).(k) then
          flag me l "write" k;
        if l.l_read.(k) && l.l_reads.(k).(k) > clocks.(me).(k) then
          flag me l "read" k
      end
    done;
    Array.blit clocks.(me) 0 l.l_writes.(me) 0 max_slots;
    l.l_wrote.(me) <- true

let read l =
  if enabled () then
    Mutex.protect hb_lock @@ fun () ->
    fresh_loc l;
    let me = slot_locked () in
    clocks.(me).(me) <- clocks.(me).(me) + 1;
    for k = 0 to max_slots - 1 do
      if k <> me && l.l_wrote.(k) && l.l_writes.(k).(k) > clocks.(me).(k)
      then
        violation_log :=
          Printf.sprintf
            "race on '%s': slot %d's write is unordered with slot %d's \
             read"
            l.l_label k me
          :: !violation_log
    done;
    Array.blit clocks.(me) 0 l.l_reads.(me) 0 max_slots;
    l.l_read.(me) <- true
