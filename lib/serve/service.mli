(** Scheduler-as-a-service: the sharded multi-tenant serving engine.

    A service partitions a platform into {!Shard.partition} shards, each
    owning an {!Mcs_online.Engine.session} over its sub-platform, and
    serves a {e release-ordered} submission stream against them. In
    [Domains] mode every shard runs its serving loop on its own OCaml 5
    domain; submissions flow through bounded per-shard mailboxes
    ({!Squeue}) with admission control and backpressure per
    {!Admission}, cross-shard hand-offs are explicit messages, and
    shards synchronise with the submitting caller only through the
    watermark protocol (see {!Shard}).

    {b Determinism.} In [Inline] mode (single-domain fallback) the whole
    service runs on the caller's domain — pickups happen when a mailbox
    fills and at close — and the outcome is a pure function of
    (platform, stream, config). At one shard with exact admission
    ([batch_window = 0.]) it is {e bit-identical} to
    {!Mcs_online.Engine.run} over the same stream. In [Domains] mode
    the outcome is the same pure function whenever the router is
    deterministic ([Round_robin]/[Least_work]) and shedding is off:
    each shard's result depends only on its own sub-stream, whatever
    the interleaving. [Least_loaded] routing and shedding trade that
    replayability for adaptivity, explicitly.

    {b Closing} is a two-phase drain: close every mailbox and join the
    domains, then sweep all queues to fixpoint on the caller's domain
    (hand-offs can land in a mailbox after its owner exited; the sweep
    injects them with shedding off, so it terminates). Nothing is ever
    dropped: every admitted submission is injected into exactly one
    shard — [submitted = admitted + rejected], checked by the tests. *)

type mode =
  | Inline  (** deterministic single-domain fallback *)
  | Domains  (** one domain per shard *)

type config = {
  shards : int;
  mode : mode;
  router : Router.choice;
  admission : Admission.t;
  policy : Mcs_online.Policy.t;
  kernel : string;
      (** policy-kernel registry name over [policy]
          ({!Mcs_online.Policy_kernel.of_name}); ["default"] runs the
          policy as-is *)
  checkpoint_every : int;
      (** [> 0]: checkpoint every shard every that-many injections
          (plus once at creation) — engine snapshot + bookkeeping +
          an injection journal, the substrate of crash recovery *)
  kill : (int * int) option;
      (** [Some (k, n)]: scripted fault-tolerance drill — shard [k]'s
          serving domain dies after ≥ [n] injections; the service
          detects it, rebuilds the shard from its latest checkpoint +
          journal and respawns the loop. The recovered run's merged
          log is bit-identical to the no-kill run (shedding off).
          Ignored in [Inline] mode *)
  capture_logs : bool;  (** per-shard event logs, for merge/export *)
  check : bool;  (** per-generation ON/ALLOC/MAP + post-run FAULT audit *)
  faults : Mcs_fault.Fault.config option;
      (** per-shard outage process on its sub-platform *)
  fault_seed : int;  (** shard [k] uses [fault_seed + k] *)
}

val default_config : config
(** 4 shards, [Domains], [Least_work] routing, {!Admission.default},
    {!Mcs_online.Policy.static} scheduling (arrival-only reschedules —
    the serving default; dynamic policies are opt-in), ["default"]
    kernel, no checkpoints, no kill, no logs, no checker, no faults. *)

type outcome =
  | Admitted of int  (** accepted, routed to the returned shard *)
  | Rejected  (** refused by admission control (queue full, [Reject]) *)

type report = {
  shards : Shard.report array;
  submitted : int;
  admitted : int;
  rejected : int;
  handoffs : int;
  peak_active : int;  (** Σ per-shard concurrency high-water marks *)
  responses : float array;
      (** by global submission id; completion − release, admission
          latency included; [nan] for rejected submissions *)
  events : int;  (** engine events processed, all shards *)
  reschedules : int;
  remapped : int;
  restores : int;  (** checkpoint restores after scripted crashes *)
  violations : int;  (** checker errors, all shards *)
  wall_s : float;  (** create → close, seconds *)
}

type t

val create : config -> Mcs_platform.Platform.t -> t
(** Partition, spawn (in [Domains] mode) and stand ready.
    @raise Invalid_argument on an ill-formed config (shard count,
    admission policy, fault config). *)

val submit : t -> Mcs_ptg.Ptg.t -> release:float -> outcome
(** Route one submission. Releases must be nondecreasing — the
    watermark protocol's only requirement of the caller. May block
    (admission [Block] on a full mailbox: backpressure). Advances every
    shard's watermark whatever the outcome.
    @raise Invalid_argument on a decreasing release or after {!close}. *)

val close : t -> report
(** Drain everything, join the domains, audit and aggregate.
    @raise Invalid_argument if already closed. *)

val run_stream :
  ?rate:float ->
  config ->
  Mcs_platform.Platform.t ->
  (Mcs_ptg.Ptg.t * float) list ->
  report
(** [create] + one {!submit} per PTG (list order; releases must be
    nondecreasing) + {!close}, wrapped in the ["serve.run"] observation
    span. [rate > 0.] paces submissions at that many per wall-clock
    second — the workload-driver knob of [bin/mcs_serve]. *)

val merged_log : report -> (int * Mcs_online.Log.event) list
(** The shard logs relabelled to global submission ids and sort-merged
    ({!Stats.merge}); empty unless [capture_logs] was set. *)
