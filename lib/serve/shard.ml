module P = Mcs_platform.Platform
module Ptg = Mcs_ptg.Ptg
module Engine = Mcs_online.Engine
module Log = Mcs_online.Log
module Obs = Mcs_obs.Obs

let c_handoffs = Obs.counter "serve.handoffs"
let c_injected = Obs.counter "serve.injected"
let c_queue_peak = Obs.counter "serve.queue_peak"
let c_active_peak = Obs.counter "serve.active_peak"

let c_restores = Obs.counter "serve.restores"

type msg = { global : int; ptg : Ptg.t; release : float; handoff : bool }

(* One journaled injection: the message plus the admission instant the
   engine actually used. Replay submits at the {e recorded} instant —
   recomputing [max (quantize release) now] on the restored session
   would admit hand-offs earlier than the original run did. *)
type jentry = { jn_msg : msg; jn_at : float }

type ckpt = {
  ck_snapshot : Engine.snapshot;
  ck_globals : int array;
  ck_works : float array;
  ck_log_rev : Log.event list;
  ck_violations : int;
  ck_diags_rev : Mcs_check.Diagnostic.t list;
  ck_injected : int;
  ck_handoffs_in : int;
  ck_handoffs_out : int;
  ck_last_wm : float;
}

type t = {
  index : int;
  clusters : int array;
  queue : msg Squeue.t;
  admission : Admission.t;
  mutable session : Engine.session;
  log_cb : Log.event -> unit;  (** re-wired into a restored session *)
  check_cb : (Mcs_check.Diagnostic.t list -> unit) option;
  mutable peers : t array;
  load_gauge : float Atomic.t;
  works : float array ref;  (** per local app; read by the log callback *)
  mutable globals : int array;
  log_rev : Log.event list ref;
  violations : int ref;
  diags_rev : Mcs_check.Diagnostic.t list ref;
  mutable last_wm : float;
  mutable injected : int;
  mutable handoffs_in : int;
  mutable handoffs_out : int;
  journaling : bool;  (** checkpoints on, or a crash is scripted *)
  checkpoint_every : int;
  mutable ckpt : ckpt option;
  mutable journal : jentry list;  (** injections since [ckpt], reversed *)
  mutable crash_after : int option;
  crashed : bool Atomic.t;  (** published by the dying serving loop *)
  mutable restores : int;
  hb_done : Hb.sync;  (** released by [finish]; the Domain.join edge *)
  hb_boot : Hb.sync;  (** released before every (re)spawn of the loop *)
  hb_state : Hb.loc;  (** the owner-domain-confined mutable fields *)
}

(* Greedy balanced partition: heaviest cluster onto the lightest shard.
   Deterministic (ties by index), so every run shards identically. *)
let partition platform ~shards =
  let n = P.cluster_count platform in
  if shards < 1 then invalid_arg "Shard.partition: shards < 1";
  if shards > n then
    invalid_arg
      (Printf.sprintf "Shard.partition: %d shards for %d clusters" shards n);
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare (P.cluster_power platform b) (P.cluster_power platform a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let bins = Array.make shards [] in
  let binpow = Array.make shards 0. in
  Array.iter
    (fun ci ->
      let k = ref 0 in
      for j = 1 to shards - 1 do
        if binpow.(j) < binpow.(!k) then k := j
      done;
      bins.(!k) <- ci :: bins.(!k);
      binpow.(!k) <- binpow.(!k) +. P.cluster_power platform ci)
    order;
  Array.mapi
    (fun k members ->
      let clusters = Array.of_list (List.sort compare members) in
      (* Renumber switches compactly in first-appearance order: the
         same-switch relation is preserved, and on the stock platforms
         (switch ids nondecreasing in cluster order) this is the
         identity, which the 1-shard equivalence test relies on. *)
      let renum = Hashtbl.create 8 in
      let sub_clusters =
        Array.to_list
          (Array.map
             (fun ci ->
               let c = P.cluster platform ci in
               let sw =
                 match Hashtbl.find_opt renum c.P.switch with
                 | Some s -> s
                 | None ->
                   let s = Hashtbl.length renum in
                   Hashtbl.add renum c.P.switch s;
                   s
               in
               { c with P.switch = sw })
             clusters)
      in
      let sub =
        P.make
          ~name:(Printf.sprintf "%s/%d" (P.name platform) k)
          ~nic_bandwidth:(P.nic_bandwidth platform)
          ~link_bandwidth:(P.link_bandwidth platform)
          ~backbone_bandwidth:(P.backbone_bandwidth platform)
          ~latency:(P.latency platform) sub_clusters
      in
      (sub, clusters))
    bins

(* A checkpoint captures everything a restored shard needs and nothing
   it can recompute: the engine snapshot plus copies of the bookkeeping
   the dying domain may have advanced past it. The journal is cleared —
   it only ever describes injections after the latest checkpoint. *)
let take_checkpoint t =
  t.ckpt <-
    Some
      {
        ck_snapshot = Engine.snapshot t.session;
        ck_globals = Array.copy t.globals;
        ck_works = Array.copy !(t.works);
        ck_log_rev = !(t.log_rev);
        ck_violations = !(t.violations);
        ck_diags_rev = !(t.diags_rev);
        ck_injected = t.injected;
        ck_handoffs_in = t.handoffs_in;
        ck_handoffs_out = t.handoffs_out;
        ck_last_wm = t.last_wm;
      };
  t.journal <- []

let make ~index ~platform ~clusters ~admission ~policy ~kernel_name
    ~checkpoint_every ~crash_after ~capture_log ~check ~faults =
  if checkpoint_every < 0 then
    invalid_arg "Shard.make: checkpoint_every < 0";
  let load_gauge = Atomic.make 0. in
  let works = ref [||] in
  let log_rev = ref [] in
  let log ev =
    (match ev with
    | Log.Departure { app; _ } ->
      Stats.gauge_sub_floor load_gauge !works.(app)
    | _ -> ());
    if capture_log then log_rev := ev :: !log_rev
  in
  let violations = ref 0 in
  let diags_rev = ref [] in
  let check_sink =
    if not check then None
    else
      Some
        (fun diags ->
          match Mcs_check.Diagnostic.errors diags with
          | [] -> ()
          | errs ->
            violations := !violations + List.length errs;
            List.iter
              (fun d ->
                if List.length !diags_rev < 16 then
                  diags_rev := d :: !diags_rev)
              errs)
  in
  let kernel = Mcs_online.Policy_kernel.of_name kernel_name ~base:policy in
  let session =
    Engine.create ~log ?check:check_sink ?faults ~kernel ~policy platform []
  in
  let t =
    {
      index;
      clusters;
      queue = Squeue.create ~capacity:admission.Admission.capacity;
      admission;
      session;
      log_cb = log;
      check_cb = check_sink;
      peers = [||];
      load_gauge;
      works;
      globals = [||];
      log_rev;
      violations;
      diags_rev;
      last_wm = 0.;
      injected = 0;
      handoffs_in = 0;
      handoffs_out = 0;
      journaling = checkpoint_every > 0 || crash_after <> None;
      checkpoint_every;
      ckpt = None;
      journal = [];
      crash_after;
      crashed = Atomic.make false;
      restores = 0;
      hb_done = Hb.sync "shard.done";
      hb_boot = Hb.sync "shard.boot";
      hb_state = Hb.loc "shard.state";
    }
  in
  if t.journaling then take_checkpoint t;
  (* The creating domain publishes the initial state to whichever
     domain first runs the serving loop. *)
  Hb.release t.hb_boot;
  t

let set_peers t peers = t.peers <- peers
let restores t = t.restores
let queue t = t.queue
let hb_done t = t.hb_done
let index t = t.index
let load t = Atomic.get t.load_gauge

let least_loaded_peer t =
  let best = ref (-1) and bestv = ref infinity in
  Array.iteri
    (fun k p ->
      if k <> t.index then begin
        let v = Atomic.get p.load_gauge in
        if v < !bestv then begin
          best := k;
          bestv := v
        end
      end)
    t.peers;
  !best

let inject_one t m =
  if m.handoff then t.handoffs_in <- t.handoffs_in + 1;
  let at =
    Float.max (Admission.quantize t.admission m.release)
      (Engine.now t.session)
  in
  ignore (Engine.submit t.session m.ptg ~release:m.release ~at : int);
  if t.journaling then t.journal <- { jn_msg = m; jn_at = at } :: t.journal;
  t.injected <- t.injected + 1;
  Obs.incr c_injected;
  (m.global, Ptg.work m.ptg)

let inject t ~allow_shed msgs =
  match msgs with
  | [] -> ()
  | msgs ->
    Obs.with_span "serve.pickup" @@ fun () ->
    Hb.write t.hb_state;
    let kept = ref [] in
    List.iter
      (fun m ->
        let shed =
          allow_shed && (not m.handoff)
          && (match t.admission.Admission.shed_above with
             | Some lim -> Engine.in_service t.session >= lim
             | None -> false)
          && Array.length t.peers > 1
        in
        if shed then begin
          let k = least_loaded_peer t in
          Squeue.push_unbounded t.peers.(k).queue { m with handoff = true };
          t.handoffs_out <- t.handoffs_out + 1;
          Obs.incr c_handoffs
        end
        else kept := inject_one t m :: !kept)
      msgs;
    let kept = List.rev !kept in
    let added_globals = Array.of_list (List.map fst kept) in
    let added_works = Array.of_list (List.map snd kept) in
    (* Batch-append the local→global map and the work table before the
       next advance: the departure callback indexes [works]. *)
    t.globals <- Array.append t.globals added_globals;
    t.works := Array.append !(t.works) added_works;
    Stats.gauge_add t.load_gauge (Array.fold_left ( +. ) 0. added_works)

let sample t =
  Obs.record_max c_queue_peak (Squeue.peak t.queue);
  Obs.record_max c_active_peak (Engine.peak_active t.session)

let step t ~upto =
  Obs.with_span "serve.step" @@ fun () -> Engine.advance ~upto t.session

let finish t =
  (Obs.with_span "serve.step" @@ fun () -> Engine.advance t.session);
  sample t;
  Hb.write t.hb_state;
  (* Publish everything this shard ever did; [Service.close] acquires
     after [Domain.join], modelling the join's visibility guarantee. *)
  Hb.release t.hb_done

let pickup t =
  let b = Squeue.drain t.queue in
  inject t ~allow_shed:(not b.Squeue.closed) b.Squeue.msgs;
  if b.Squeue.closed then finish t
  else begin
    t.last_wm <- b.Squeue.watermark;
    step t ~upto:b.Squeue.watermark;
    sample t
  end

let crash_now t =
  match t.crash_after with Some n -> t.injected >= n | None -> false

(* Scripted crash (test/CI facility): the domain dies right here,
   abandoning everything since the last checkpoint. The mailbox is
   untouched — undrained messages survive the crash and are served by
   the restored loop (or the close-time sweep). [hb_done] carries this
   domain's clock out (the healer joins the domain and acquires it
   before touching the wreckage); the flag is published last. *)
let die t =
  Hb.release t.hb_done;
  Atomic.set t.crashed true

let rec serve_loop t =
  if crash_now t then die t
  else begin
    let b = Squeue.wait_batch t.queue ~seen:t.last_wm in
    inject t ~allow_shed:(not b.Squeue.closed) b.Squeue.msgs;
    if b.Squeue.closed then
      (* The threshold may only be crossed by this very batch (a fast
         submitter can land the whole stream in one closed batch) —
         check again, or the scripted crash would never fire. *)
      if crash_now t then die t else finish t
    else begin
      t.last_wm <- b.Squeue.watermark;
      step t ~upto:b.Squeue.watermark;
      sample t;
      (match t.ckpt with
      | Some ck
        when t.checkpoint_every > 0
             && t.injected - ck.ck_injected >= t.checkpoint_every ->
        Obs.with_span "serve.checkpoint" (fun () -> take_checkpoint t)
      | Some _ | None -> ());
      serve_loop t
    end
  end

let serve_loop t =
  Hb.acquire t.hb_boot;
  serve_loop t

let crashed t = Atomic.get t.crashed

(* Runs on the service's domain, strictly after the crashed domain was
   joined. Rebuilds the shard at its last checkpoint and replays the
   journal: every journaled message is re-submitted at its {e recorded}
   admission instant, which is ≥ every watermark the dead loop ever
   advanced to (the watermark protocol guarantees [at ≥ wm] at push
   time), so inject-all-then-advance reproduces the original
   interleaving of injections and steps event for event. The log and
   violation sinks are rolled back with the engine, so re-advancing
   re-emits exactly the abandoned suffix. *)
let restore_crashed t =
  match t.ckpt with
  | None -> invalid_arg "Shard.restore_crashed: shard has no checkpoint"
  | Some ck ->
    Hb.write t.hb_state;
    t.session <- Engine.restore ~log:t.log_cb ?check:t.check_cb ck.ck_snapshot;
    t.globals <- Array.copy ck.ck_globals;
    t.works := Array.copy ck.ck_works;
    t.log_rev := ck.ck_log_rev;
    t.violations := ck.ck_violations;
    t.diags_rev := ck.ck_diags_rev;
    t.injected <- ck.ck_injected;
    t.handoffs_in <- ck.ck_handoffs_in;
    t.handoffs_out <- ck.ck_handoffs_out;
    t.last_wm <- ck.ck_last_wm;
    let journal = List.rev t.journal in
    t.journal <- [];
    List.iter
      (fun j ->
        if j.jn_msg.handoff then t.handoffs_in <- t.handoffs_in + 1;
        ignore
          (Engine.submit t.session j.jn_msg.ptg ~release:j.jn_msg.release
             ~at:j.jn_at
            : int);
        t.injected <- t.injected + 1;
        t.globals <- Array.append t.globals [| j.jn_msg.global |];
        t.works := Array.append !(t.works) [| Ptg.work j.jn_msg.ptg |])
      journal;
    (* The in-flight gauge is re-derived from the restored engine state
       — never inherited from the dead domain, whose last published
       value reflects departures the restore just rolled back. *)
    let load = ref 0. in
    Array.iteri
      (fun i w -> if not (Engine.app_completed t.session i) then load := !load +. w)
      !(t.works);
    Atomic.set t.load_gauge !load;
    t.crash_after <- None;
    t.restores <- t.restores + 1;
    Obs.incr c_restores;
    Atomic.set t.crashed false;
    (* Publish the rebuilt state to the respawned serving loop. *)
    Hb.release t.hb_boot

type report = {
  shard : int;
  clusters : int array;
  engine : Engine.result;
  global_ids : int array;
  injected : int;
  handoffs_in : int;
  handoffs_out : int;
  queue_peak : int;
  peak_active : int;
  restores : int;
  violations : int;
  diagnostics : Mcs_check.Diagnostic.t list;
  log : Log.event list;
}

let report t =
  sample t;
  Hb.read t.hb_state;
  {
    shard = t.index;
    clusters = t.clusters;
    engine = Engine.result t.session;
    global_ids = t.globals;
    injected = t.injected;
    handoffs_in = t.handoffs_in;
    handoffs_out = t.handoffs_out;
    queue_peak = Squeue.peak t.queue;
    peak_active = Engine.peak_active t.session;
    restores = t.restores;
    violations = !(t.violations);
    diagnostics = List.rev !(t.diags_rev);
    log = List.rev !(t.log_rev);
  }
