module Log = Mcs_online.Log

(* Float gauges are Atomic.t floats updated from one domain but read
   by router/peers on others, and boxed floats have no fetch_and_add:
   the only raceproof update is a compare_and_set retry loop keyed on
   the physically-equal boxed read. *)
let rec gauge_update g f =
  let seen = Atomic.get g in
  if not (Atomic.compare_and_set g seen (f seen)) then gauge_update g f

let gauge_add g delta = gauge_update g (fun v -> v +. delta)
let gauge_sub_floor g delta = gauge_update g (fun v -> Float.max 0. (v -. delta))

let percentile values ~p =
  let finite =
    Array.of_seq (Seq.filter Float.is_finite (Array.to_seq values))
  in
  let n = Array.length finite in
  if n = 0 then Float.nan
  else begin
    Array.sort Float.compare finite;
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    finite.(max 0 (min (n - 1) rank))
  end

let relabel f = function
  | Log.Arrival r -> Log.Arrival { r with app = f r.app }
  | Log.Reschedule r ->
    Log.Reschedule
      { r with betas = List.map (fun (i, b) -> (f i, b)) r.betas }
  | Log.Task_finish r -> Log.Task_finish { r with app = f r.app }
  | Log.Departure r -> Log.Departure { r with app = f r.app }
  | Log.Proc_down _ as ev -> ev
  | Log.Proc_up _ as ev -> ev
  | Log.Task_failed r -> Log.Task_failed { r with app = f r.app }
  | Log.Task_killed r -> Log.Task_killed { r with app = f r.app }
  | Log.Task_resized r -> Log.Task_resized { r with app = f r.app }

let merge logs =
  let tagged =
    List.concat_map (fun (shard, evs) -> List.map (fun e -> (shard, e)) evs)
      logs
  in
  (* Stable sort on (time, shard): per-shard chronological order (the
     input order) survives ties, so the merge is a pure function of the
     shard logs themselves. *)
  List.stable_sort
    (fun (s1, e1) (s2, e2) ->
      match Float.compare (Log.time e1) (Log.time e2) with
      | 0 -> compare s1 s2
      | c -> c)
    tagged
