(** Submission router: which shard serves which application.

    The router is the single entry point of the service, so it runs on
    the submitting caller's domain and keeps plain mutable state — no
    locks. Two of its three policies are deterministic functions of the
    submission stream alone:

    - [Round_robin] — shard [k], [k+1], … modulo the shard count.
    - [Least_work] — the shard with the least cumulative assigned work
      (Σ GFlop of everything routed to it so far; ties to the lowest
      shard index). The default: balances heavy-tailed streams without
      depending on execution timing.
    - [Least_loaded] — the shard with the smallest {e live} in-flight
      load gauge (GFlop submitted minus GFlop departed, published by
      each shard). Adapts to actual progress, but reads cross-domain
      state: placements under it depend on domain interleaving, so a
      [Least_loaded] run is not replayable. Documented, opt-in. *)

type choice = Round_robin | Least_work | Least_loaded

val choice_of_string : string -> (choice, string) result
(** ["rr"], ["work"] or ["load"]. *)

type t

val create : ?load:(int -> float) -> choice -> shards:int -> t
(** [load] is the live per-shard gauge consulted by [Least_loaded]
    (defaults to constantly 0, degrading it to lowest-index).
    @raise Invalid_argument if [shards < 1]. *)

val route : t -> work:float -> int
(** Pick the shard for one submission of [work] GFlop and account the
    work to it. *)

val assigned : t -> float array
(** Cumulative routed work per shard (a copy). *)
