type choice = Round_robin | Least_work | Least_loaded

let choice_of_string = function
  | "rr" -> Ok Round_robin
  | "work" -> Ok Least_work
  | "load" -> Ok Least_loaded
  | s -> Error (Printf.sprintf "unknown router %S (expected rr|work|load)" s)

type t = {
  choice : choice;
  shards : int;
  load : int -> float;
  mutable rr : int;
  assigned : float array;
}

let create ?(load = fun _ -> 0.) choice ~shards =
  if shards < 1 then invalid_arg "Router.create: shards < 1";
  { choice; shards; load; rr = 0; assigned = Array.make shards 0. }

let argmin f n =
  let best = ref 0 and bestv = ref (f 0) in
  for k = 1 to n - 1 do
    let v = f k in
    if v < !bestv then begin
      best := k;
      bestv := v
    end
  done;
  !best

let route t ~work =
  let k =
    match t.choice with
    | Round_robin ->
      let k = t.rr in
      t.rr <- (t.rr + 1) mod t.shards;
      k
    | Least_work -> argmin (fun k -> t.assigned.(k)) t.shards
    | Least_loaded -> argmin t.load t.shards
  in
  t.assigned.(k) <- t.assigned.(k) +. work;
  k

let assigned t = Array.copy t.assigned
