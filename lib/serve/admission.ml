type on_full = Block | Reject

type t = {
  capacity : int;
  on_full : on_full;
  shed_above : int option;
  batch_window : float;
}

let default =
  { capacity = 1024; on_full = Block; shed_above = None; batch_window = 0. }

let validate t =
  if t.capacity < 1 then invalid_arg "Admission.validate: capacity < 1";
  (match t.shed_above with
  | Some n when n < 1 -> invalid_arg "Admission.validate: shed_above < 1"
  | Some _ | None -> ());
  if (not (Float.is_finite t.batch_window)) || t.batch_window < 0. then
    invalid_arg "Admission.validate: ill-formed batch_window"

let quantize t release =
  if t.batch_window <= 0. then release
  else
    (* ceil can land a hair below release under rounding; clamp. *)
    Float.max release (Float.ceil (release /. t.batch_window) *. t.batch_window)
