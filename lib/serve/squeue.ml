type 'a t = {
  lock : Mutex.t;
  nonfull : Condition.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable watermark : float;
  mutable peak : int;
  mutable pushed : int;
}

type push_outcome = Accepted | Full | Closed
type 'a batch = { msgs : 'a list; watermark : float; closed : bool }

let create ~capacity =
  if capacity < 1 then invalid_arg "Squeue.create: capacity < 1";
  {
    lock = Mutex.create ();
    nonfull = Condition.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
    watermark = 0.;
    peak = 0;
    pushed = 0;
  }

let enqueue t x =
  Queue.add x t.items;
  t.pushed <- t.pushed + 1;
  let len = Queue.length t.items in
  if len > t.peak then t.peak <- len;
  Condition.signal t.nonempty

let push t ~block x =
  Mutex.protect t.lock @@ fun () ->
  if t.closed then Closed
  else if Queue.length t.items < t.capacity then begin
    enqueue t x;
    Accepted
  end
  else if not block then Full
  else begin
    while Queue.length t.items >= t.capacity && not t.closed do
      Condition.wait t.nonfull t.lock
    done;
    if t.closed then Closed
    else begin
      enqueue t x;
      Accepted
    end
  end

let push_unbounded t x = Mutex.protect t.lock @@ fun () -> enqueue t x

let take_all t =
  (* Materialise before clearing: [Queue.to_seq] is lazy. *)
  let msgs = List.of_seq (Queue.to_seq t.items) in
  Queue.clear t.items;
  if msgs <> [] then Condition.broadcast t.nonfull;
  { msgs; watermark = t.watermark; closed = t.closed }

let wait_batch t ~seen =
  Mutex.protect t.lock @@ fun () ->
  while Queue.is_empty t.items && (not t.closed) && t.watermark <= seen do
    Condition.wait t.nonempty t.lock
  done;
  take_all t

let drain t = Mutex.protect t.lock @@ fun () -> take_all t

let advance_watermark t w =
  Mutex.protect t.lock @@ fun () ->
  if w > t.watermark then begin
    t.watermark <- w;
    Condition.signal t.nonempty
  end

let close t =
  Mutex.protect t.lock @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull

let length t = Mutex.protect t.lock @@ fun () -> Queue.length t.items
let peak t = Mutex.protect t.lock @@ fun () -> t.peak
let pushed t = Mutex.protect t.lock @@ fun () -> t.pushed
