type 'a t = {
  lock : Mutex.t;
  nonfull : Condition.t;
  nonempty : Condition.t;
  items : 'a Queue.t; [@guarded_by lock]
  capacity : int;
  mutable closed : bool; [@guarded_by lock]
  mutable watermark : float; [@guarded_by lock]
  mutable peak : int; [@guarded_by lock]
  mutable pushed : int; [@guarded_by lock]
  hb : Hb.sync;
  hb_state : Hb.loc;
}

type push_outcome = Accepted | Full | Closed
type 'a batch = { msgs : 'a list; watermark : float; closed : bool }

let create ~capacity =
  if capacity < 1 then invalid_arg "Squeue.create: capacity < 1";
  {
    lock = Mutex.create ();
    nonfull = Condition.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
    watermark = 0.;
    peak = 0;
    pushed = 0;
    hb = Hb.sync "squeue.lock";
    hb_state = Hb.loc "squeue.state";
  }

let enqueue t x =
  Hb.write t.hb_state;
  Queue.add x t.items;
  t.pushed <- t.pushed + 1;
  let len = Queue.length t.items in
  if len > t.peak then t.peak <- len;
  (* Uniform predicate: every nonempty-waiter wants "queue not empty",
     and the woken consumer drains everything — one wakeup is enough
     and the rest would find the queue already empty. *)
  Condition.signal t.nonempty
[@@locked_by lock]

let push t ~block x =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  Hb.read t.hb_state;
  if t.closed then Closed
  else if Queue.length t.items < t.capacity then begin
    enqueue t x;
    Accepted
  end
  else if not block then Full
  else begin
    while Queue.length t.items >= t.capacity && not t.closed do
      Hb.release t.hb;
      Condition.wait t.nonfull t.lock;
      Hb.acquire t.hb
    done;
    if t.closed then Closed
    else begin
      enqueue t x;
      Accepted
    end
  end

let push_unbounded t x =
  Mutex.protect t.lock @@ fun () -> Hb.region t.hb @@ fun () -> enqueue t x

let take_all t =
  Hb.write t.hb_state;
  (* Materialise before clearing: [Queue.to_seq] is lazy. *)
  let msgs = List.of_seq (Queue.to_seq t.items) in
  Queue.clear t.items;
  if msgs <> [] then Condition.broadcast t.nonfull;
  { msgs; watermark = t.watermark; closed = t.closed }
[@@locked_by lock]

let wait_batch t ~seen =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  Hb.read t.hb_state;
  while Queue.is_empty t.items && (not t.closed) && t.watermark <= seen do
    Hb.release t.hb;
    Condition.wait t.nonempty t.lock;
    Hb.acquire t.hb
  done;
  take_all t

let drain t =
  Mutex.protect t.lock @@ fun () -> Hb.region t.hb @@ fun () -> take_all t

let advance_watermark t w =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  if w > t.watermark then begin
    Hb.write t.hb_state;
    t.watermark <- w;
    (* Broadcast, not signal: nonempty-waiters block on heterogeneous
       predicates (each consumer's own [seen]), so a single wakeup can
       land on a waiter whose watermark condition is still false and
       strand the one it just became true for — a lost wakeup. *)
    Condition.broadcast t.nonempty
  end

let close t =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  Hb.write t.hb_state;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull

let length t =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  Hb.read t.hb_state;
  Queue.length t.items

let peak t =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  Hb.read t.hb_state;
  t.peak

let pushed t =
  Mutex.protect t.lock @@ fun () ->
  Hb.region t.hb @@ fun () ->
  Hb.read t.hb_state;
  t.pushed
