(** Vector-clock happens-before validator — the dynamic cross-check of
    the static LOCK rules (see DESIGN.md §13).

    Instrumentation sites in {!Squeue} and {!Service} declare a {!sync}
    per synchronisation object (a mutex, a domain join) and a {!loc}
    per guarded mutable region. When enabled, each domain gets a
    vector-clock slot; {!acquire}/{!release} carry clocks across the
    sync exactly as the OCaml memory model carries visibility, and
    {!write}/{!read} check the access against every recorded
    conflicting access: any pair not ordered by the clocks is a data
    race, logged in {!violations}.

    Disabled (the default), every entry point is one atomic load — the
    production serve path pays nothing. The [race] dune profile builds
    [test/test_race.ml], which enables the tracker, replays the serve
    scenarios (must report zero violations) and a seeded race (must
    report exactly one). Supports at most 64 domains. *)

type sync
type loc

val sync : string -> sync
(** A named synchronisation edge; create once per object (e.g. per
    queue), label used in violation messages. *)

val loc : string -> loc
(** A named mutable region guarded as one unit. *)

val enable : unit -> unit
(** Reset all clocks/slots/violations and start tracking. Syncs and
    locs created earlier are lazily reset on first touch. *)

val disable : unit -> unit
val enabled : unit -> bool

val acquire : sync -> unit
(** Join the sync's clock into the calling domain's — entering the
    critical section / observing the release. *)

val release : sync -> unit
(** Join the calling domain's clock into the sync's, then advance the
    caller — leaving the critical section / publishing. *)

val region : sync -> (unit -> 'a) -> 'a
(** [acquire]; run; [release] (also on exception). *)

val write : loc -> unit
(** Record a write; flags any prior write {e or read} by another domain
    not ordered before it. *)

val read : loc -> unit
(** Record a read; flags any prior unordered write. *)

val violations : unit -> string list
(** Races recorded since {!enable}, oldest first. *)
