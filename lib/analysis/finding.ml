type t = {
  rule : Rule.t;
  file : string;
  line : int;
  col : int;
  message : string;
  waived : bool;
}

let file_of_loc ~default (loc : Location.t) =
  match loc.Location.loc_start.Lexing.pos_fname with
  | "" | "_none_" -> default
  | f -> f

let v ?(waived = false) rule ~unit_file (loc : Location.t) fmt =
  let s = loc.Location.loc_start in
  Printf.ksprintf
    (fun message ->
      {
        rule;
        file = file_of_loc ~default:unit_file loc;
        line = s.Lexing.pos_lnum;
        col = s.Lexing.pos_cnum - s.Lexing.pos_bol;
        message;
        waived;
      })
    fmt

let to_string t =
  Printf.sprintf "%s:%d:%d: %s%s %s: %s" t.file t.line t.col
    (if t.waived then "waived " else "")
    (Rule.code t.rule) (Rule.id t.rule) t.message

(* Total deterministic order: file, line, column, rule code, message —
   so lint output (and therefore CI diffs) never depends on traversal
   or hash order. *)
let compare a b =
  Stdlib.compare
    (a.file, a.line, a.col, Rule.code a.rule, a.message, a.waived)
    (b.file, b.line, b.col, Rule.code b.rule, b.message, b.waived)

let sort findings = List.sort_uniq compare findings
let active findings = List.filter (fun f -> not f.waived) findings
let waived findings = List.filter (fun f -> f.waived) findings

let summary findings =
  let a = List.length (active findings)
  and w = List.length (waived findings) in
  match (a, w) with
  | 0, 0 -> "clean"
  | a, 0 -> Printf.sprintf "%d finding%s" a (if a = 1 then "" else "s")
  | a, w ->
    Printf.sprintf "%d finding%s, %d waived" a (if a = 1 then "" else "s") w
