(* LOCK rules: lockset analysis over [@guarded_by] annotations, the
   acquisition-order graph, and Condition.wait discipline.

   The lockset is syntactic: entering [Mutex.protect l f] (directly,
   via [@@] or via [|>]) adds [l]'s lock class — the last segment of
   the lock path, so [t.lock] and [q.lock] are the same class — for
   the extent of [f]; [Mutex.lock]/[Mutex.unlock] add/remove for the
   rest of the enclosing function. Known imprecision, documented in
   DESIGN.md §13: lock identity is per-class not per-object, and a
   closure built under a lock is assumed to run under it (the
   iteration-callback idiom). *)

open Parsetree

type guards = {
  fields : (string, string) Hashtbl.t;  (* record field -> lock class *)
  idents : (string, string) Hashtbl.t;  (* top binding -> lock class *)
  seeds : (string, string) Hashtbl.t;  (* binding -> [@@locked_by] *)
}

type edge = {
  e_from : string;  (* qualified lock class, "Module.lock" *)
  e_to : string;
  e_loc : Location.t;
  e_file : string;
}

let label_guard (ld : label_declaration) =
  match Walk.guarded_by_attr ld.pld_attributes with
  | Some m -> Some m
  | None -> Walk.guarded_by_attr ld.pld_type.ptyp_attributes

let collect_guards (u : Source.t) =
  let g =
    {
      fields = Hashtbl.create 8;
      idents = Hashtbl.create 8;
      seeds = Hashtbl.create 8;
    }
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
        List.iter
          (fun d ->
            match d.ptype_kind with
            | Ptype_record labels ->
              List.iter
                (fun ld ->
                  match label_guard ld with
                  | Some m ->
                    Hashtbl.replace g.fields ld.pld_name.Asttypes.txt m
                  | None -> ())
                labels
            | _ -> ())
          decls
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } ->
              (match Walk.guarded_by_attr vb.pvb_attributes with
              | Some m -> Hashtbl.replace g.idents txt m
              | None -> ());
              (match Walk.locked_by_attr vb.pvb_attributes with
              | Some m -> Hashtbl.replace g.seeds txt m
              | None -> ())
            | _ -> ())
          vbs
      | _ -> ())
    u.Source.structure;
  g

let analyze (u : Source.t) =
  let g = collect_guards u in
  let findings = ref [] and edges = ref [] in
  let held = ref [] and in_while = ref false and suppress = ref 0 in
  let qualify name = u.Source.modname ^ "." ^ name in
  let emit rule loc fmt =
    Printf.ksprintf
      (fun message ->
        findings :=
          Finding.v ~waived:(!suppress > 0) rule ~unit_file:u.Source.path loc
            "%s" message
          :: !findings)
      fmt
  in
  let acquire name loc =
    List.iter
      (fun h ->
        edges :=
          {
            e_from = qualify h;
            e_to = qualify name;
            e_loc = loc;
            e_file = u.Source.path;
          }
          :: !edges)
      !held;
    held := name :: !held
  in
  let release name =
    let rec drop = function
      | [] -> []
      | h :: t -> if h = name then t else h :: drop t
    in
    held := drop !held
  in
  let check_field loc name =
    match Hashtbl.find_opt g.fields name with
    | Some m when not (List.mem m !held) ->
      emit Rule.Lock_guarded_unlocked loc
        "field '%s' is [@guarded_by %s] but %s is not held here" name m m
    | _ -> ()
  in
  let check_ident loc name =
    match Hashtbl.find_opt g.idents name with
    | Some m when not (List.mem m !held) ->
      emit Rule.Lock_guarded_unlocked loc
        "binding '%s' is [@@guarded_by %s] but %s is not held here" name m m
    | _ -> ()
  in
  let expr_case (it : Ast_iterator.iterator) e =
    let waived_here = Walk.no_lock_needed_attr e.pexp_attributes in
    if waived_here then incr suppress;
    (match Walk.is_call ~target:[ "Mutex"; "protect" ] e with
    | Some (lock :: rest) ->
      let name = Walk.lock_name lock in
      it.expr it lock;
      acquire name e.pexp_loc;
      List.iter (it.expr it) rest;
      release name
    | Some [] | None -> (
      match Walk.is_call ~target:[ "Mutex"; "lock" ] e with
      | Some (lock :: _) ->
        it.expr it lock;
        acquire (Walk.lock_name lock) e.pexp_loc
      | _ -> (
        match Walk.is_call ~target:[ "Mutex"; "unlock" ] e with
        | Some (lock :: _) ->
          it.expr it lock;
          release (Walk.lock_name lock)
        | _ -> (
          match Walk.is_call ~target:[ "Condition"; "wait" ] e with
          | Some args ->
            if not !in_while then
              emit Rule.Lock_wait_outside_loop e.pexp_loc
                "Condition.wait outside a predicate-rechecking while \
                 loop (spurious wakeups and signal races slip through)";
            List.iter (it.expr it) args
          | None -> (
            match e.pexp_desc with
            | Pexp_while (cond, body) ->
              it.expr it cond;
              let saved = !in_while in
              in_while := true;
              it.expr it body;
              in_while := saved
            | Pexp_field (_, { txt; _ }) ->
              check_field e.pexp_loc (Walk.last_of_lid txt);
              Ast_iterator.default_iterator.expr it e
            | Pexp_setfield (_, { txt; _ }, _) ->
              check_field e.pexp_loc (Walk.last_of_lid txt);
              Ast_iterator.default_iterator.expr it e
            | Pexp_ident { txt = Longident.Lident n; _ } ->
              check_ident e.pexp_loc n
            | _ -> Ast_iterator.default_iterator.expr it e)))));
    if waived_here then decr suppress
  in
  let iter = { Ast_iterator.default_iterator with expr = expr_case } in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            held := [];
            in_while := false;
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> (
              match Hashtbl.find_opt g.seeds txt with
              | Some m -> held := [ m ]
              | None -> ())
            | _ -> ());
            iter.expr iter vb.pvb_expr)
          vbs
      | Pstr_eval (e, _) ->
        held := [];
        in_while := false;
        iter.expr iter e
      | _ -> ())
    u.Source.structure;
  (!findings, !edges)

(* --- lock-order cycles (LOCK002), over all units' edges ------------ *)

let cycles edges =
  let edges =
    List.sort
      (fun a b ->
        compare
          (a.e_file, a.e_loc.Location.loc_start.Lexing.pos_lnum, a.e_from,
           a.e_to)
          (b.e_file, b.e_loc.Location.loc_start.Lexing.pos_lnum, b.e_from,
           b.e_to))
      edges
  in
  let succs n =
    List.filter_map
      (fun e -> if e.e_from = n then Some e.e_to else None)
      edges
    |> List.sort_uniq compare
  in
  (* Path from [src] to [dst], nodes in visit order, or None. *)
  let path src dst =
    let rec dfs visited trail n =
      if n = dst then Some (List.rev (n :: trail))
      else if List.mem n visited then None
      else
        List.fold_left
          (fun acc s ->
            match acc with
            | Some _ -> acc
            | None -> dfs (n :: visited) (n :: trail) s)
          None (succs n)
    in
    dfs [] [] src
  in
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun e ->
      match path e.e_to e.e_from with
      | None -> None
      | Some back ->
        let nodes = List.sort_uniq compare (e.e_from :: back) in
        let key = String.concat "," nodes in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          (* [back] runs e_to .. e_from, so prepending e_from closes
             the cycle textually: a -> b -> a. *)
          Some
            (Finding.v Rule.Lock_order_cycle ~unit_file:e.e_file e.e_loc
               "lock-order cycle: %s"
               (String.concat " -> " (e.e_from :: back)))
        end)
    edges
