type t =
  | Lock_guarded_unlocked
  | Lock_order_cycle
  | Lock_wait_outside_loop
  | Escape_captured_write
  | Escape_captured_container
  | Atom_get_set_rmw

let all =
  [
    Lock_guarded_unlocked;
    Lock_order_cycle;
    Lock_wait_outside_loop;
    Escape_captured_write;
    Escape_captured_container;
    Atom_get_set_rmw;
  ]

let code = function
  | Lock_guarded_unlocked -> "LOCK001"
  | Lock_order_cycle -> "LOCK002"
  | Lock_wait_outside_loop -> "LOCK003"
  | Escape_captured_write -> "ESCAPE001"
  | Escape_captured_container -> "ESCAPE002"
  | Atom_get_set_rmw -> "ATOM001"

let id = function
  | Lock_guarded_unlocked -> "guarded-field-unlocked"
  | Lock_order_cycle -> "lock-order-cycle"
  | Lock_wait_outside_loop -> "wait-outside-loop"
  | Escape_captured_write -> "escape-captured-write"
  | Escape_captured_container -> "escape-captured-container"
  | Atom_get_set_rmw -> "atomic-get-set-rmw"

let of_code s = List.find_opt (fun r -> code r = s) all
let of_id s = List.find_opt (fun r -> id r = s) all

let describe = function
  | Lock_guarded_unlocked ->
    "every access to a field or binding annotated [@guarded_by m] happens \
     with the mutex m held (Mutex.protect / Mutex.lock in scope, or the \
     enclosing function is annotated [@@locked_by m])"
  | Lock_order_cycle ->
    "the lock acquisition-order graph (edges: m held while acquiring m') \
     has no cycle, so no two threads can deadlock by taking the same \
     locks in opposite orders"
  | Lock_wait_outside_loop ->
    "Condition.wait is re-armed inside a while loop that re-checks its \
     predicate: a bare wait misses spurious wakeups and signal races"
  | Escape_captured_write ->
    "a closure run on another domain (Domain.spawn / Parmap.map) never \
     writes a captured ref or mutable field without a Mutex guard, an \
     Atomic, or a [@domain_local] waiver"
  | Escape_captured_container ->
    "a closure run on another domain never mutates a captured container \
     (array, Hashtbl, Buffer, Queue, Bytes) without a Mutex guard or a \
     [@domain_local] waiver"
  | Atom_get_set_rmw ->
    "no read-modify-write is spelled Atomic.get + Atomic.set in one \
     function: the window between them loses updates — use \
     fetch_and_add, compare_and_set or exchange"

let rationale = function
  | Lock_guarded_unlocked ->
    "lib/serve determinism rests on mailbox state being mutated only \
     under its queue lock (DESIGN.md \xc2\xa713)"
  | Lock_order_cycle ->
    "Squeue/Service/Hb locks nest; a cycle would let close and a blocked \
     push deadlock the service"
  | Lock_wait_outside_loop ->
    "the watermark protocol wakes consumers with heterogeneous \
     predicates; only a re-checking loop is sound"
  | Escape_captured_write ->
    "shards and Parmap workers share the heap; an unguarded captured \
     write is a data race under OCaml 5's memory model"
  | Escape_captured_container ->
    "container internals are multi-word: racing mutation can corrupt \
     them, not just lose a value"
  | Atom_get_set_rmw ->
    "the obs gauge bug fixed in PR 6 was exactly this pattern; shard \
     load gauges are updated from several domains"
