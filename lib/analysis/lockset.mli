(** LOCK rules: lockset analysis, acquisition-order graph, wait
    discipline.

    Annotations: [[@guarded_by m]] on a record field or
    [[@@guarded_by m]] on a top-level binding makes every access
    require the lock class [m] (the last segment of the lock path)
    in the current lockset; [[@@locked_by m]] on a binding declares a
    held-lock precondition and seeds the set. The analysis is
    class-based and syntactic — see DESIGN.md §13 for the precise
    soundness envelope. *)

type edge = {
  e_from : string;  (** qualified lock class, ["Squeue.lock"] *)
  e_to : string;
  e_loc : Location.t;
  e_file : string;
}

val analyze : Source.t -> Finding.t list * edge list
(** LOCK001/LOCK003 findings plus this unit's acquisition edges. *)

val cycles : edge list -> Finding.t list
(** LOCK002: one finding per distinct cycle (by node set) in the
    global acquisition graph, at the deterministically first edge
    that closes it. *)
