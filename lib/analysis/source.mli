(** Analysis units: the typed trees the repo already builds.

    The preferred input is the [.cmt] dune wrote during [dune build
    @check] — untyped back to a parsetree with locations and attributes
    intact, so the linter analyzes exactly what the compiler
    type-checked. Sources outside the build (seeded-violation fixtures)
    are parsed directly. *)

type t = {
  path : string;  (** the .ml path the unit was requested as *)
  modname : string;  (** capitalized basename, used to qualify locks *)
  structure : Parsetree.structure;
  from_cmt : bool;  (** true when recovered from a [.cmt] *)
}

val modname_of_path : string -> string

val parse_string : filename:string -> string -> (t, string) result
(** Parse an implementation from a string (tests, fixtures). *)

val parse_file : string -> (t, string) result

val find_cmt : build_dir:string -> string -> string option
(** The [.cmt] for [dir/base.ml], searched only under the build mirror
    of [dir] so same-named modules in other libraries cannot leak in. *)

val load : ?build_dir:string -> ?prefer_cmt:bool -> string -> (t, string) result
(** Load one unit: the [.cmt] when present (default
    [build_dir = "_build/default"]), else the source text. *)

val scan : ?exclude:string list -> string list -> string list
(** Expand files and directories into a sorted list of [.ml] paths,
    pruning path substrings in [exclude] (default: build trees and the
    seeded [fixtures]). *)
