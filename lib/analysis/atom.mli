(** ATOM rules: Atomic misuse.

    ATOM001 flags an [Atomic.get] + [Atomic.set] of the same atomic
    path within one top-level binding — a lossy read-modify-write —
    unless a [compare_and_set] / [fetch_and_add] / [exchange] /
    [incr] / [decr] on that path shows the update is already raceproof,
    or an [[@atomic_ok]] waiver (on the set, or [[@@atomic_ok]] on the
    binding) accepts the pair. *)

val analyze : Source.t -> Finding.t list
