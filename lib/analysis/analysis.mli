(** Concurrency-soundness static analyzer over the repo's own sources.

    Mirrors the [lib/check] design — a rule registry ({!Rule}),
    structured diagnostics ({!Finding}), seeded-violation fixtures —
    but the subject is the {e implementation}: lockset discipline over
    [[@guarded_by]] annotations, the lock acquisition-order graph,
    domain-escape of captured mutable state, and Atomic read-modify-
    write hygiene. Driven by [bin/mcs_lint_cli]; the dynamic
    counterpart is the vector-clock happens-before tracker
    [Mcs_serve.Hb] exercised under the dune [race] profile. *)

val run : Source.t list -> Finding.t list
(** All rule families over the units, one sorted deduplicated report;
    the LOCK002 cycle check runs on the union of all units' edges. *)

type report = {
  findings : Finding.t list;  (** sorted; waived included *)
  units : int;
  from_cmt : int;  (** units recovered from [dune build @check] .cmt *)
  errors : (string * string) list;  (** unreadable/unparsable inputs *)
}

val clean : report -> bool
(** No non-waived findings. *)

val over_paths :
  ?build_dir:string -> ?prefer_cmt:bool -> string list -> report
(** Load each path ({!Source.load}) and {!run} the analyzer; loading
    failures are collected, not fatal. *)
