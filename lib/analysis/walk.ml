(* Shared Parsetree plumbing for the rule passes: longident matching,
   [@@]/[|>] application normalisation, stable path keys for lock and
   atomic identity, annotation extraction, pattern binders. *)

open Parsetree

let lid_names lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | l -> l

let ident_names e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (lid_names txt) | _ -> None

(* [suffix_matches ~target names] — [Mutex.protect], [Stdlib.Mutex.protect]
   and [Foo.Mutex.protect] (a re-export) all count as [["Mutex";"protect"]]. *)
let suffix_matches ~target names =
  let nt = List.length target and nn = List.length names in
  nn >= nt && List.filteri (fun i _ -> i >= nn - nt) names = target

let rec unparen e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> unparen e
  | _ -> e

(* Flatten an application through [@@], [|>] and currying into
   (callee, args): [f x @@ g] becomes (f, [x; g]), [x |> f] becomes
   (f, [x]), and [(f x) g] — the shape Untypeast emits for [@@] since
   the typechecker resolves the operator away — becomes (f, [x; g]).
   Only [Nolabel] arguments are kept — every callee the passes match
   takes its interesting arguments positionally. *)
let rec app_parts e =
  match (unparen e).pexp_desc with
  | Pexp_apply (f, args) -> (
    let plain =
      List.filter_map
        (fun (lbl, a) ->
          match lbl with Asttypes.Nolabel -> Some a | _ -> None)
        args
    in
    match (ident_names f, plain) with
    | Some [ "@@" ], [ lhs; rhs ] -> (
      match app_parts lhs with
      | Some (callee, inner) -> Some (callee, inner @ [ rhs ])
      | None -> Some (lhs, [ rhs ]))
    | Some [ "|>" ], [ lhs; rhs ] -> (
      match app_parts rhs with
      | Some (callee, inner) -> Some (callee, inner @ [ lhs ])
      | None -> Some (rhs, [ lhs ]))
    | _ -> (
      match app_parts f with
      | Some (callee, inner) -> Some (callee, inner @ plain)
      | None -> Some (f, plain)))
  | _ -> None

let is_call ~target e =
  match app_parts e with
  | Some (callee, args) -> (
    match ident_names callee with
    | Some names when suffix_matches ~target names -> Some args
    | _ -> None)
  | None -> None

(* Exactly the unqualified [name] — so the [incr]/[:=] ref operators
   never swallow [Atomic.incr] or a module's own [Obs.incr]. *)
let is_bare_call ~name e =
  match app_parts e with
  | Some (callee, args) -> (
    match ident_names callee with
    | Some [ n ] when n = name -> Some args
    | _ -> None)
  | None -> None

(* A stable textual key for "the same location" — [t.lock], [c.value],
   [registry_lock]. Indexing and unknown shapes collapse to ["?"],
   which the passes treat as "never the same thing twice". *)
let rec path_key e =
  match (unparen e).pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (lid_names txt)
  | Pexp_field (b, { txt; _ }) ->
    path_key b ^ "." ^ Longident.last txt
  | _ -> "?"

(* The short name a lock is classed by inside one module: the last
   field or binding segment ([t.lock] and [q.lock] are the same lock
   class; [registry_lock] is its own). *)
let lock_name e =
  match String.rindex_opt (path_key e) '.' with
  | None -> path_key e
  | Some i ->
    let p = path_key e in
    String.sub p (i + 1) (String.length p - i - 1)

let last_of_lid lid = Longident.last lid

(* --- annotations and waivers -------------------------------------- *)

let attr_named name (attrs : attributes) =
  List.find_opt (fun a -> a.attr_name.Asttypes.txt = name) attrs

let has_attr name attrs = attr_named name attrs <> None

(* [@guarded_by m] / [@@locked_by m]: the payload is a bare identifier
   naming the lock (a field of the same record, or a sibling binding). *)
let attr_ident name attrs =
  match attr_named name attrs with
  | Some { attr_payload = PStr [ { pstr_desc = Pstr_eval (e, _); _ } ]; _ }
    -> (
    match (unparen e).pexp_desc with
    | Pexp_ident { txt; _ } -> Some (Longident.last txt)
    | _ -> None)
  | _ -> None

let guarded_by_attr attrs = attr_ident "guarded_by" attrs
let locked_by_attr attrs = attr_ident "locked_by" attrs
let domain_local_attr attrs = has_attr "domain_local" attrs
let atomic_ok_attr attrs = has_attr "atomic_ok" attrs
let no_lock_needed_attr attrs = has_attr "no_lock_needed" attrs

(* --- patterns ------------------------------------------------------ *)

let rec pattern_binders acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pattern_binders (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pattern_binders acc ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
    pattern_binders acc p
  | Ppat_record (fields, _) ->
    List.fold_left (fun acc (_, p) -> pattern_binders acc p) acc fields
  | Ppat_or (a, b) -> pattern_binders (pattern_binders acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
  | Ppat_exception p ->
    pattern_binders acc p
  | _ -> acc

module StringSet = Set.Make (String)

let bind_pattern set p =
  List.fold_left (fun s x -> StringSet.add x s) set (pattern_binders [] p)
