(* ATOM rules: Atomic misuse. The racy shape is a read-modify-write
   spelled as [Atomic.get a] ... [Atomic.set a (f ...)] within one
   function: another domain's update can land in the window and be
   overwritten. Detection is per top-level binding and per atomic
   path key ([c.value], [on], ...): if the same key is both read and
   plainly written in one scope, and no [compare_and_set] /
   [fetch_and_add] / [exchange] / [incr] / [decr] on that key shows
   the author knows the primitive exists, it is flagged. Waive a
   deliberate pair with [@atomic_ok] on the [Atomic.set] (or
   [@@atomic_ok] on the binding) and say why in a comment. *)

open Parsetree

type entry = {
  mutable got : bool;
  mutable set_at : Location.t option;
  mutable rmw : bool;
}

let rmw_calls =
  [
    [ "Atomic"; "compare_and_set" ];
    [ "Atomic"; "fetch_and_add" ];
    [ "Atomic"; "exchange" ];
    [ "Atomic"; "incr" ];
    [ "Atomic"; "decr" ];
  ]

let analyze (u : Source.t) =
  let findings = ref [] in
  let scan_binding ~waived body =
    let table : (string, entry) Hashtbl.t = Hashtbl.create 8 in
    let entry key =
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
        let e = { got = false; set_at = None; rmw = false } in
        Hashtbl.add table key e;
        e
    in
    let expr_case (it : Ast_iterator.iterator) e =
      (match Walk.is_call ~target:[ "Atomic"; "get" ] e with
      | Some (a :: _) -> (entry (Walk.path_key a)).got <- true
      | _ -> (
        match Walk.is_call ~target:[ "Atomic"; "set" ] e with
        | Some (a :: _) ->
          let en = entry (Walk.path_key a) in
          if Walk.atomic_ok_attr e.pexp_attributes then en.rmw <- true
          else if en.set_at = None then en.set_at <- Some e.pexp_loc
        | _ ->
          List.iter
            (fun target ->
              match Walk.is_call ~target e with
              | Some (a :: _) -> (entry (Walk.path_key a)).rmw <- true
              | _ -> ())
            rmw_calls));
      Ast_iterator.default_iterator.expr it e
    in
    let iter = { Ast_iterator.default_iterator with expr = expr_case } in
    iter.expr iter body;
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) table []
    |> List.sort compare
    |> List.iter (fun (key, e) ->
           match e with
           | { got = true; set_at = Some loc; rmw = false; _ } ->
             if key <> "?" then
               findings :=
                 Finding.v ~waived Rule.Atom_get_set_rmw
                   ~unit_file:u.Source.path loc
                   "Atomic.get + Atomic.set of '%s' in one function is a \
                    lossy read-modify-write; use fetch_and_add, \
                    compare_and_set or exchange"
                   key
                 :: !findings
           | _ -> ())
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            scan_binding
              ~waived:(Walk.atomic_ok_attr vb.pvb_attributes)
              vb.pvb_expr)
          vbs
      | Pstr_eval (e, _) -> scan_binding ~waived:false e
      | _ -> ())
    u.Source.structure;
  !findings
