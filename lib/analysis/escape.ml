(* ESCAPE rules: domain-escape analysis. A closure handed to
   [Domain.spawn] or [Parmap.map] runs concurrently with its creator,
   so every write it performs to *captured* mutable state (bound
   outside the closure) is a data race unless an [Atomic] carries it,
   a [Mutex] guards it, or a [@domain_local] waiver vouches for
   single-writer confinement. Reads are deliberately not flagged:
   the read side of a race is invisible syntactically and flagging it
   would drown the real signal (the parmap scatter/gather idiom reads
   immutable-after-spawn arrays everywhere). *)

open Parsetree
module SS = Walk.StringSet

(* Mutating operations and, for each, the positions of the container
   arguments they mutate. [:=]/[incr]/[decr] and [Pexp_setfield] are
   ESCAPE001 (a single word lost); the rest are ESCAPE002 (multi-word
   container internals corrupted). *)
(* Bare-identifier ops only: [Atomic.incr] and a module's own [incr]
   re-export are raceproof or the module's business, not ours. *)
let ref_writes = [ (":=", [ 0 ]); ("incr", [ 0 ]); ("decr", [ 0 ]) ]

let container_writes =
  [
    ([ "Array"; "set" ], [ 0 ]);
    ([ "Array"; "unsafe_set" ], [ 0 ]);
    ([ "Array"; "fill" ], [ 0 ]);
    ([ "Array"; "blit" ], [ 2 ]);
    ([ "Bytes"; "set" ], [ 0 ]);
    ([ "Bytes"; "unsafe_set" ], [ 0 ]);
    ([ "Bytes"; "blit" ], [ 2 ]);
    ([ "Bytes"; "fill" ], [ 0 ]);
    ([ "Hashtbl"; "add" ], [ 0 ]);
    ([ "Hashtbl"; "replace" ], [ 0 ]);
    ([ "Hashtbl"; "remove" ], [ 0 ]);
    ([ "Hashtbl"; "reset" ], [ 0 ]);
    ([ "Hashtbl"; "clear" ], [ 0 ]);
    ([ "Buffer"; "add_string" ], [ 0 ]);
    ([ "Buffer"; "add_char" ], [ 0 ]);
    ([ "Buffer"; "add_bytes" ], [ 0 ]);
    ([ "Buffer"; "add_substring" ], [ 0 ]);
    ([ "Buffer"; "add_buffer" ], [ 0 ]);
    ([ "Buffer"; "clear" ], [ 0 ]);
    ([ "Buffer"; "reset" ], [ 0 ]);
    ([ "Queue"; "add" ], [ 1 ]);
    ([ "Queue"; "push" ], [ 1 ]);
    ([ "Queue"; "pop" ], [ 0 ]);
    ([ "Queue"; "take" ], [ 0 ]);
    ([ "Queue"; "clear" ], [ 0 ]);
    ([ "Queue"; "transfer" ], [ 0; 1 ]);
    ([ "Stack"; "push" ], [ 1 ]);
    ([ "Stack"; "pop" ], [ 0 ]);
  ]

(* The base binding an lvalue reaches: [results.(i)] -> results,
   [t.works] -> t, [!cell] -> cell. Qualified idents ([Mod.table])
   are module state — never locally bound, always captured. *)
let rec root e =
  match (Walk.unparen e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Walk.lid_names txt))
  | Pexp_field (b, _) -> root b
  | Pexp_apply _ -> (
    match Walk.is_call ~target:[ "Array"; "get" ] e with
    | Some (b :: _) -> root b
    | _ -> (
      match Walk.is_call ~target:[ "!" ] e with
      | Some (b :: _) -> root b
      | _ -> None))
  | _ -> None

type env = { bound : SS.t; guarded : bool; waived : bool }

let analyze (u : Source.t) =
  let findings = ref [] in
  let emit env rule loc op name =
    findings :=
      Finding.v ~waived:env.waived rule ~unit_file:u.Source.path loc
        "%s mutates '%s', captured by a cross-domain closure, without \
         an Atomic/Mutex guard or [@domain_local] waiver"
        op name
      :: !findings
  in
  (* Walk one spawned closure body. *)
  let scan_closure closure =
    let rec go env e =
      let env =
        if Walk.domain_local_attr e.pexp_attributes then
          { env with waived = true }
        else env
      in
      let sub =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ e' -> go env e');
        }
      in
      let default () = Ast_iterator.default_iterator.expr sub e in
      let check rule loc op target =
        match root target with
        | Some name when (not (SS.mem name env.bound)) && not env.guarded ->
          emit env rule loc op name
        | _ -> ()
      in
      match Walk.is_call ~target:[ "Mutex"; "protect" ] e with
      | Some args ->
        List.iter (go { env with guarded = true }) args
      | _ -> (
        match Walk.is_call ~target:[ "Mutex"; "lock" ] e with
        | Some _ ->
          (* Coarse: an explicit lock anywhere in the closure vouches
             for it; the LOCK pass owns lock-scope precision. *)
          ()
        | _ -> (
          let table_hit =
            match
              List.find_map
                (fun (name, idxs) ->
                  match Walk.is_bare_call ~name e with
                  | Some args ->
                    Some (Rule.Escape_captured_write, [ name ], idxs, args)
                  | None -> None)
                ref_writes
            with
            | Some _ as hit -> hit
            | None ->
              List.find_map
                (fun (target, idxs) ->
                  match Walk.is_call ~target e with
                  | Some args ->
                    Some
                      (Rule.Escape_captured_container, target, idxs, args)
                  | None -> None)
                container_writes
          in
          match table_hit with
          | Some (rule, target, idxs, args) ->
            List.iter
              (fun i ->
                match List.nth_opt args i with
                | Some a ->
                  check rule e.pexp_loc (String.concat "." target) a
                | None -> ())
              idxs;
            List.iter (go env) args
          | None -> (
            match e.pexp_desc with
            | Pexp_setfield (b, { txt; _ }, v) ->
              check Rule.Escape_captured_write e.pexp_loc
                ("<- " ^ Walk.last_of_lid txt)
                b;
              go env b;
              go env v
            | Pexp_fun (_, default_arg, pat, body) ->
              Option.iter (go env) default_arg;
              go { env with bound = Walk.bind_pattern env.bound pat } body
            | Pexp_function cases | Pexp_match (_, cases)
            | Pexp_try (_, cases) ->
              (match e.pexp_desc with
              | Pexp_match (scrut, _) | Pexp_try (scrut, _) ->
                go env scrut
              | _ -> ());
              List.iter
                (fun c ->
                  let env' =
                    { env with bound = Walk.bind_pattern env.bound c.pc_lhs }
                  in
                  Option.iter (go env') c.pc_guard;
                  go env' c.pc_rhs)
                cases
            | Pexp_let (rf, vbs, body) ->
              let bound' =
                List.fold_left
                  (fun s vb -> Walk.bind_pattern s vb.pvb_pat)
                  env.bound vbs
              in
              let inner =
                if rf = Asttypes.Recursive then { env with bound = bound' }
                else env
              in
              List.iter (fun vb -> go inner vb.pvb_expr) vbs;
              go { env with bound = bound' } body
            | Pexp_for (pat, lo, hi, _, body) ->
              go env lo;
              go env hi;
              go { env with bound = Walk.bind_pattern env.bound pat } body
            | _ -> default ())))
    in
    go { bound = SS.empty; guarded = false; waived = false } closure
  in
  (* Outer pass: find the spawn sites, resolving a bare identifier
     argument ([Domain.spawn worker]) to its local definition. *)
  let locals = ref [] in
  let resolve e =
    match (Walk.unparen e).pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> List.assoc_opt n !locals
    | _ -> None
  in
  let spawn_target e =
    match Walk.is_call ~target:[ "Domain"; "spawn" ] e with
    | Some (f :: _) -> Some f
    | _ -> (
      match Walk.is_call ~target:[ "Parmap"; "map" ] e with
      | Some (f :: _) -> Some f
      | _ -> None)
  in
  let outer (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> locals := (txt, vb.pvb_expr) :: !locals
          | _ -> ())
        vbs
    | _ -> ());
    (match spawn_target e with
    | Some f -> (
      let waive_all = Walk.domain_local_attr e.pexp_attributes in
      let body = match resolve f with Some b -> b | None -> f in
      match (Walk.unparen body).pexp_desc with
      | Pexp_fun _ | Pexp_function _ ->
        if not waive_all then scan_closure body
      | _ -> ())
    | None -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iter = { Ast_iterator.default_iterator with expr = outer } in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> locals := (txt, vb.pvb_expr) :: !locals
            | _ -> ());
            iter.expr iter vb.pvb_expr)
          vbs
      | Pstr_eval (e, _) -> iter.expr iter e
      | _ -> ())
    u.Source.structure;
  !findings
