(** A single analyzer diagnostic, anchored to a source position.

    Findings are value types with a {e total} deterministic order
    (file, line, column, rule code, message): lint output is stable
    across runs, traversal orders and hash seeds, so CI can diff it. *)

type t = {
  rule : Rule.t;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as compilers print *)
  message : string;
  waived : bool;  (** suppressed by an in-source waiver attribute *)
}

val v :
  ?waived:bool ->
  Rule.t ->
  unit_file:string ->
  Location.t ->
  ('a, unit, string, t) format4 ->
  'a
(** Build a finding at a parsetree location; [unit_file] is the fallback
    when the location carries no filename (string-parsed sources). *)

val to_string : t -> string
(** [file:line:col: CODE id: message] ([waived CODE] when waived). *)

val compare : t -> t -> int
val sort : t list -> t list
(** Sorted and deduplicated under {!compare}. *)

val active : t list -> t list
(** Non-waived findings — the ones that gate CI. *)

val waived : t list -> t list
val summary : t list -> string
