(** ESCAPE rules: domain-escape analysis.

    Flags writes performed by a [Domain.spawn] / [Parmap.map] closure
    to mutable state it captured (refs and record fields — ESCAPE001;
    arrays, Hashtbl, Buffer, Queue, Bytes, Stack — ESCAPE002) unless
    a [Mutex.protect] encloses the write or a [[@domain_local]]
    waiver vouches for single-domain confinement. A bare-identifier
    spawn target ([Domain.spawn worker]) is resolved to its local
    definition. Reads are not flagged (see the module comment). *)

val analyze : Source.t -> Finding.t list
