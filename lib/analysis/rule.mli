(** Registry of the concurrency-soundness rules, mirroring
    {!Mcs_check.Rule} for schedule invariants: stable codes for CI
    gating, kebab-case ids for prose, one-line contracts, and the
    serve-stack rationale each rule protects. *)

type t =
  | Lock_guarded_unlocked  (** LOCK001: guarded field touched lock-free *)
  | Lock_order_cycle  (** LOCK002: cyclic lock acquisition order *)
  | Lock_wait_outside_loop  (** LOCK003: [Condition.wait] not re-checked *)
  | Escape_captured_write  (** ESCAPE001: captured ref/field write in a
                               cross-domain closure *)
  | Escape_captured_container  (** ESCAPE002: captured container mutated
                                   in a cross-domain closure *)
  | Atom_get_set_rmw  (** ATOM001: Atomic.get+set read-modify-write *)

val all : t list
(** Registry order — the order reports and [--rules] listings use. *)

val code : t -> string
(** Stable short code ([LOCK001], [ESCAPE002], ...). *)

val id : t -> string
(** Kebab-case identifier ([guarded-field-unlocked], ...). *)

val of_code : string -> t option
val of_id : string -> t option

val describe : t -> string
(** The invariant the rule enforces, one sentence. *)

val rationale : t -> string
(** Why the serve stack needs it — the concrete failure it prevents. *)
