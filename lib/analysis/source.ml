(* Analysis units: one per .ml file. The preferred road is the typed
   tree dune already built — read the .cmt produced by [dune build
   @check], untype it back to a parsetree (locations and attributes
   survive) and analyze that, so the linter always sees exactly what
   the compiler type-checked. Files outside the build (seeded-violation
   fixtures) fall back to parsing the source directly. *)

type t = {
  path : string;
  modname : string;
  structure : Parsetree.structure;
  from_cmt : bool;
}

let modname_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let parse_string ~filename contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | structure ->
    Ok { path = filename; modname = modname_of_path filename; structure;
         from_cmt = false }
  | exception Syntaxerr.Error _ -> Error (filename ^ ": syntax error")
  | exception e -> Error (filename ^ ": " ^ Printexc.to_string e)

let parse_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse_string ~filename:path contents
  | exception Sys_error msg -> Error msg

(* Find the .cmt dune wrote for [dir/base.ml]: some
   [dir/.<lib>.objs/byte/<lib>__Base.cmt] (wrapped library),
   [.../base.cmt] (unwrapped or main module), or the executables'
   [.eobjs] flavour. Searching only under the build mirror of the
   file's own directory keeps same-named modules in different
   libraries apart. *)
let find_cmt ~build_dir path =
  let modname = modname_of_path path in
  let dir = Filename.dirname path in
  let root = Filename.concat build_dir dir in
  let matches base =
    let b = Filename.remove_extension base in
    String.equal (String.lowercase_ascii b) (String.lowercase_ascii modname)
    ||
    let suffix = "__" ^ modname in
    String.length b > String.length suffix
    && String.equal suffix
         (String.sub b
            (String.length b - String.length suffix)
            (String.length suffix))
  in
  let found = ref [] in
  let rec scan d =
    match Sys.readdir d with
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun e ->
          let p = Filename.concat d e in
          if Sys.is_directory p then scan p
          else if Filename.check_suffix e ".cmt" && matches e then
            found := p :: !found)
        entries
    | exception Sys_error _ -> ()
  in
  scan root;
  match List.sort compare !found with p :: _ -> Some p | [] -> None

let of_cmt ~path cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | { Cmt_format.cmt_annots = Cmt_format.Implementation tstr; _ } ->
    let structure = Untypeast.untype_structure tstr in
    Some { path; modname = modname_of_path path; structure; from_cmt = true }
  | _ -> None
  | exception _ -> None

let load ?(build_dir = "_build/default") ?(prefer_cmt = true) path =
  let via_cmt =
    if not prefer_cmt then None
    else
      match find_cmt ~build_dir path with
      | Some cmt -> of_cmt ~path cmt
      | None -> None
  in
  match via_cmt with Some u -> Ok u | None -> parse_file path

(* Expand files/directories into a sorted .ml list; [exclude] prunes
   path substrings (build trees, seeded fixtures). *)
let scan ?(exclude = [ "_build"; "fixtures" ]) roots =
  let excluded p =
    List.exists
      (fun x ->
        let lx = String.length x and lp = String.length p in
        let rec at i = i + lx <= lp && (String.sub p i lx = x || at (i + 1)) in
        lx > 0 && at 0)
      exclude
  in
  let acc = ref [] in
  let rec visit p =
    if not (excluded p) then
      if Sys.is_directory p then (
        match Sys.readdir p with
        | entries ->
          Array.sort compare entries;
          Array.iter (fun e -> visit (Filename.concat p e)) entries
        | exception Sys_error _ -> ())
      else if Filename.check_suffix p ".ml" then acc := p :: !acc
  in
  (* [exclude] prunes the recursive sweep only: a root the caller named
     explicitly is always taken — that is how CI lints one seeded
     fixture at a time. *)
  List.iter
    (fun r ->
      if Sys.file_exists r then
        if Sys.is_directory r then visit r
        else if Filename.check_suffix r ".ml" then acc := r :: !acc)
    roots;
  List.sort compare !acc
