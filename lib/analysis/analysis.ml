(* Driver: run every rule family over a set of units and merge the
   findings into one deterministic report. The LOCK002 graph is global
   — edges from all units feed one cycle detection, so an A->B in one
   module and a B->A in another still form a reported cycle. *)

let run units =
  let findings = ref [] and edges = ref [] in
  List.iter
    (fun u ->
      let lock_findings, lock_edges = Lockset.analyze u in
      findings :=
        Atom.analyze u @ Escape.analyze u @ lock_findings @ !findings;
      edges := lock_edges @ !edges)
    units;
  Finding.sort (Lockset.cycles !edges @ !findings)

type report = {
  findings : Finding.t list;  (** sorted; waived included *)
  units : int;
  from_cmt : int;  (** units recovered from [dune build @check] .cmt *)
  errors : (string * string) list;  (** unreadable/unparsable inputs *)
}

let clean report = Finding.active report.findings = []

let over_paths ?build_dir ?prefer_cmt paths =
  let units = ref [] and errors = ref [] in
  List.iter
    (fun p ->
      match Source.load ?build_dir ?prefer_cmt p with
      | Ok u -> units := u :: !units
      | Error msg -> errors := (p, msg) :: !errors)
    paths;
  let units = List.rev !units in
  {
    findings = run units;
    units = List.length units;
    from_cmt =
      List.length (List.filter (fun u -> u.Source.from_cmt) units);
    errors = List.rev !errors;
  }
