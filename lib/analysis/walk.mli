(** Parsetree plumbing shared by the rule passes. *)

open Parsetree

val lid_names : Longident.t -> string list
(** Flattened path with a leading [Stdlib] dropped. *)

val ident_names : expression -> string list option
val suffix_matches : target:string list -> string list -> bool
val unparen : expression -> expression

val app_parts : expression -> (expression * expression list) option
(** Application flattened through [@@] and [|>]; positional args only. *)

val is_call : target:string list -> expression -> expression list option
(** The argument list when [e] is an application of an identifier whose
    path ends in [target] (module-alias tolerant). *)

val is_bare_call : name:string -> expression -> expression list option
(** Like {!is_call} but only for the {e unqualified} [name], so bare
    ref operators don't match [Atomic.incr] or [Obs.incr]. *)

val path_key : expression -> string
(** Stable key for location identity ([t.lock], [c.value]); unknown
    shapes collapse to ["?"], never considered equal to anything. *)

val lock_name : expression -> string
(** The per-module lock class: the last segment of {!path_key}. *)

val last_of_lid : Longident.t -> string

val attr_named : string -> attributes -> attribute option
val has_attr : string -> attributes -> bool
val attr_ident : string -> attributes -> string option

val guarded_by_attr : attributes -> string option
(** [[@guarded_by m]] on a record field or [[@@guarded_by m]] on a
    top-level binding: accesses require the mutex class [m] held. *)

val locked_by_attr : attributes -> string option
(** [[@@locked_by m]] on a binding: callers hold [m] — seed the
    lockset when analyzing that function. *)

val domain_local_attr : attributes -> bool
(** [[@domain_local]] waiver: the marked expression's apparent race is
    confined to one domain by construction (say why in a comment). *)

val atomic_ok_attr : attributes -> bool
(** [[@atomic_ok]] waiver for ATOM001 on a deliberate get/set pair. *)

val no_lock_needed_attr : attributes -> bool
(** [[@no_lock_needed]] waiver for LOCK001 (e.g. init before spawn). *)

module StringSet : Set.S with type elt = string

val pattern_binders : string list -> pattern -> string list
val bind_pattern : StringSet.t -> pattern -> StringSet.t
