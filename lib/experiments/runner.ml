module Pipeline = Mcs_sched.Pipeline
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Metrics = Mcs_metrics.Metrics
module Floatx = Mcs_util.Floatx
module Obs = Mcs_obs.Obs

type timing = Estimated | Simulated

type run_metrics = {
  strategy : Strategy.t;
  makespans : float array;
  slowdowns : float array;
  unfairness : float;
  global_makespan : float;
  avg_makespan : float;
}

let simulated_makespans ?release platform schedules =
  Obs.with_span "sim.replay" @@ fun () ->
  let sim = Mcs_sim.Replay.run ?release platform schedules in
  sim.Mcs_sim.Replay.makespans

let makespan_alone ?config ?(timing = Simulated) platform ptg =
  let sched = Pipeline.schedule_alone ?config platform ptg in
  match timing with
  | Estimated -> sched.Schedule.makespan
  | Simulated -> (simulated_makespans platform [ sched ]).(0)

let evaluate ?config ?(timing = Simulated) ?release ?(check = true) platform
    ptgs strategies =
  if ptgs = [] then invalid_arg "Runner.evaluate: no applications";
  Obs.with_span "runner.evaluate" @@ fun () ->
  let own =
    Obs.with_span "runner.baselines" @@ fun () ->
    Array.of_list
      (List.map (fun ptg -> makespan_alone ?config ~timing platform ptg) ptgs)
  in
  let response completions =
    match release with
    | None -> completions
    | Some r -> Array.mapi (fun i c -> c -. r.(i)) completions
  in
  List.map
    (fun strategy ->
      (* Fail fast on broken invariants: experiment numbers computed
         from an illegal schedule are worse than no numbers. *)
      let checker =
        if check then
          let procedure =
            (Option.value config ~default:Pipeline.default_config)
              .Pipeline.procedure
          in
          Some
            (Mcs_check.Check.pipeline_hook ~procedure ?release ~strategy
               platform)
        else None
      in
      let schedules =
        Pipeline.schedule_concurrent ?config ?release ?check:checker ~strategy
          platform ptgs
      in
      let makespans =
        response
          (match timing with
          | Estimated ->
            Array.of_list (List.map (fun s -> s.Schedule.makespan) schedules)
          | Simulated -> simulated_makespans ?release platform schedules)
      in
      let slowdowns =
        Array.mapi
          (fun i m -> Metrics.slowdown ~own:own.(i) ~multi:m)
          makespans
      in
      {
        strategy;
        makespans;
        slowdowns;
        unfairness = Metrics.unfairness slowdowns;
        global_makespan = Floatx.maximum makespans;
        avg_makespan = Floatx.mean makespans;
      })
    strategies
