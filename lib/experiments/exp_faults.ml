module Prng = Mcs_prng.Prng
module Strategy = Mcs_sched.Strategy
module Metrics = Mcs_metrics.Metrics
module Table = Mcs_util.Table
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Fault = Mcs_fault.Fault

type point = {
  strategy : Strategy.t;
  level : string;
  unfairness : float;
  relative_makespan : float;
  kills : float;
  retries : float;
}

let levels =
  [
    ("none", None);
    ( "mild",
      Some
        {
          Fault.default with
          Fault.mttf = 3000.;
          mttr = 120.;
          task_fail_p = 0.02;
        } );
    ( "moderate",
      Some
        {
          Fault.default with
          Fault.mttf = 1500.;
          mttr = 120.;
          task_fail_p = 0.05;
        } );
    ( "severe",
      Some
        {
          Fault.default with
          Fault.mttf = 750.;
          mttr = 120.;
          task_fail_p = 0.1;
        } );
  ]

let strategies = Strategy.paper_eight

let draw_release rng count ~mean_interarrival =
  let release = Array.make count 0. in
  let clock = ref 0. in
  for i = 1 to count - 1 do
    clock := !clock +. Prng.exponential rng ~mean:mean_interarrival;
    release.(i) <- !clock
  done;
  release

(* One scenario under every (strategy, level) pair. Makespans are the
   engine's own virtual times: the fluid replay knows nothing of
   outages, so estimated timing is the consistent yardstick across
   levels (the level-"none" column is the fault-free engine). Every
   reschedule generation and the final fault audit run under the
   invariant analyzer — a violated FAULT/ON/MAP rule aborts the
   experiment instead of skewing it. *)
let scenario_metrics platform ptgs ~release ~fault_seed =
  let own =
    Array.of_list
      (List.map
         (fun ptg ->
           Runner.makespan_alone ~timing:Runner.Estimated platform ptg)
         ptgs)
  in
  let apps = List.mapi (fun i ptg -> (ptg, release.(i))) ptgs in
  let results =
    List.concat_map
      (fun (level, config) ->
        let faults =
          Option.map
            (fun config -> Fault.generate ~seed:fault_seed platform config)
            config
        in
        List.map
          (fun strategy ->
            let r =
              Engine.run ~check:Mcs_check.Check.fail_on_error ?faults
                ~policy:(Policy.make strategy) platform apps
            in
            let unfairness =
              Metrics.unfairness_of_makespans ~own ~multi:r.Engine.responses
            in
            let global = Mcs_util.Floatx.maximum r.Engine.responses in
            ( strategy,
              level,
              unfairness,
              global,
              float_of_int r.Engine.stats.Engine.kills,
              float_of_int r.Engine.stats.Engine.task_failures ))
          strategies)
      levels
  in
  let best =
    List.fold_left
      (fun acc (_, _, _, global, _, _) -> Float.min acc global)
      Float.infinity results
  in
  List.map
    (fun (strategy, level, unfairness, global, kills, retries) ->
      ( strategy,
        level,
        unfairness,
        Metrics.relative_makespan global ~best,
        kills,
        retries ))
    results

let compute ?runs ?(count = 6) ?(seed = 523) ?(mean_interarrival = 30.) () =
  let runs = match runs with Some r -> r | None -> Sweep.runs_from_env () in
  let per_scenario =
    Mcs_util.Parmap.map
      (fun (i, (platform, ptgs)) ->
        let rng = Prng.create ~seed:(seed + (count * 31) + List.length ptgs) in
        let release = draw_release rng count ~mean_interarrival in
        scenario_metrics platform ptgs ~release
          ~fault_seed:(seed + (257 * i) + 1))
      (List.mapi
         (fun i s -> (i, s))
         (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count ~runs
            ~seed))
  in
  List.concat_map
    (fun (level, _) ->
      List.map
        (fun strategy ->
          let mine =
            List.map
              (fun rs ->
                let _, _, unf, rel, kills, retries =
                  List.find
                    (fun (s, l, _, _, _, _) -> s = strategy && l = level)
                    rs
                in
                (unf, rel, kills, retries))
              per_scenario
          in
          {
            strategy;
            level;
            unfairness = Sweep.mean_over (fun (u, _, _, _) -> u) mine;
            relative_makespan = Sweep.mean_over (fun (_, r, _, _) -> r) mine;
            kills = Sweep.mean_over (fun (_, _, k, _) -> k) mine;
            retries = Sweep.mean_over (fun (_, _, _, t) -> t) mine;
          })
        strategies)
    levels

let table ?runs () =
  let points = compute ?runs () in
  let level_names = List.map fst levels in
  let t =
    Table.create
      ~title:
        "Fault injection (X8) — unfairness / relative response time per \
         failure level, all eight β strategies (dynamic online engine)"
      ~header:("strategy" :: level_names)
  in
  List.iter
    (fun strategy ->
      Table.add_row t
        (Strategy.name strategy
        :: List.map
             (fun level ->
               match
                 List.find_opt
                   (fun p -> p.strategy = strategy && p.level = level)
                   points
               with
               | Some p ->
                 Printf.sprintf "%.2f / %.2f" p.unfairness p.relative_makespan
               | None -> "-")
             level_names))
    strategies;
  t
