(** Online dynamic-β scheduling vs the offline approximation.

    Same staggered-submission scenarios as {!Exp_arrivals} (Poisson
    arrivals, identical seeds), each solved two ways:

    - {e offline} — the approximation of {!Exp_arrivals}: β is computed
      once over the {e full} submission set, which a real online
      scheduler could not know, and the mapper sees all release dates
      upfront;
    - {e online} — {!Mcs_online.Engine}: β recomputed over the active
      set at each arrival and departure, unstarted tasks remapped,
      running tasks pinned.

    Both sets of schedules are replayed through the fluid network model
    ({!Mcs_sim.Replay}), so the comparison is on simulated response
    times. Unfairness follows the paper (slowdown dispersion against
    the dedicated-platform baseline); the relative makespan normalises
    each global makespan by the best achieved on the scenario across
    every (strategy, mode) pair. *)

type mode = Offline | Online

val mode_name : mode -> string

type point = {
  strategy : Mcs_sched.Strategy.t;
  mode : mode;
  count : int;
  unfairness : float;
  relative_makespan : float;
}

val strategies : Mcs_sched.Strategy.t list
(** ES, PS-work and WPS-work(0.7) — the acceptance set. *)

val compute :
  ?runs:int ->
  ?counts:int list ->
  ?seed:int ->
  ?mean_interarrival:float ->
  unit ->
  point list
(** Defaults match {!Exp_arrivals}: mean inter-arrival 30 s, the
    paper's counts, [MCS_RUNS] combinations per point. *)

val table : ?runs:int -> unit -> Mcs_util.Table.t
