(** Malleable vs moldable execution under burst load (experiment X9).

    The same burst-submission scenarios run twice through the online
    engine: once purely {e moldable} (widths fixed at start, the
    baseline engine) and once {e malleable} under a
    {!Mcs_sched.Malleability} model (quantum 15 s, redistribution cost
    0.05 s per moved processor) whose thresholds shrink running tasks
    when a burst spikes the active set and grow them when the system
    drains. Optionally a moderate fault level (MTTF 1500 s, 5%
    transient failures) is layered on top, where resizes interleave
    with kills and retries.

    Reported per (mode, level): the paper's unfairness, the global
    response time normalised by the best across all pairs, the mean
    number of resizes actually executed, and the fraction of scenarios
    in which the mode achieved the strictly better makespan than its
    rival at the same level. Every run is audited (online rules, FAULT
    family under faults, MAL001-003 under malleability); a violation
    raises instead of skewing the numbers. *)

type point = {
  mode : string;  (** ["moldable"] or ["malleable"] *)
  level : string;  (** fault level, see {!levels} *)
  unfairness : float;
  relative_makespan : float;
  resizes : float;  (** mean resize operations per run *)
  win_rate : float;
      (** fraction of scenarios with the strictly best makespan at this
          level *)
}

val model : Mcs_sched.Malleability.t
(** The malleability model the experiment runs under. *)

val modes : (string * Mcs_sched.Malleability.t option) list
val levels : (string * Mcs_fault.Fault.config option) list

val compute : ?runs:int -> ?count:int -> ?seed:int -> unit -> point list
(** Defaults: 6 applications in bursts of three every 150 s, [MCS_RUNS]
    combinations per point. *)

val table : ?runs:int -> unit -> Mcs_util.Table.t
