(** Fault injection across the eight β strategies (experiment X8).

    Same staggered-submission scenarios as {!Exp_online}, run through
    the event-driven engine under increasing failure intensity: a
    seeded {!Mcs_fault.Fault} scenario of processor outages
    (exponential failure/repair) plus transient end-of-task failures.
    For each level the engine kills, requeues and retries per its fault
    policy and recomputes β against the surviving capacity; reported
    are the paper's unfairness (slowdown dispersion, degenerate
    applications skipped per {!Mcs_metrics.Metrics.unfairness_of_makespans})
    and the response-time makespan normalised by the best achieved on
    the scenario across every (strategy, level) pair.

    Every reschedule generation is audited by the online invariant
    analyzer and the full execution log by the FAULT001–003 checker;
    any violation raises instead of skewing the numbers. *)

type point = {
  strategy : Mcs_sched.Strategy.t;
  level : string;  (** failure level, see {!levels} *)
  unfairness : float;
  relative_makespan : float;
  kills : float;  (** mean outage kills per run *)
  retries : float;  (** mean transient failures per run *)
}

val levels : (string * Mcs_fault.Fault.config option) list
(** none (fault-free baseline), mild, moderate, severe — MTTF 3000, 1500
    and 750 s with transient failure probabilities 2, 5 and 10%. *)

val strategies : Mcs_sched.Strategy.t list
(** {!Mcs_sched.Strategy.paper_eight}. *)

val compute :
  ?runs:int ->
  ?count:int ->
  ?seed:int ->
  ?mean_interarrival:float ->
  unit ->
  point list
(** Defaults: 6 applications, mean inter-arrival 30 s, [MCS_RUNS]
    combinations per point. *)

val table : ?runs:int -> unit -> Mcs_util.Table.t
