module Prng = Mcs_prng.Prng
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module Metrics = Mcs_metrics.Metrics
module Table = Mcs_util.Table
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy

type mode = Offline | Online

let mode_name = function Offline -> "offline" | Online -> "online"

type point = {
  strategy : Strategy.t;
  mode : mode;
  count : int;
  unfairness : float;
  relative_makespan : float;
}

let strategies =
  [
    Strategy.Equal_share;
    Strategy.Proportional Strategy.Work;
    Strategy.Weighted (Strategy.Work, 0.7);
  ]

let modes = [ Offline; Online ]

(* Same arrival stream as Exp_arrivals (seed formula included) so the
   offline columns are directly comparable across the two tables. *)
let draw_release rng count ~mean_interarrival =
  let release = Array.make count 0. in
  let clock = ref 0. in
  for i = 1 to count - 1 do
    clock := !clock +. Prng.exponential rng ~mean:mean_interarrival;
    release.(i) <- !clock
  done;
  release

let scenario_metrics platform ptgs ~release =
  let own =
    Array.of_list
      (List.map (fun ptg -> Runner.makespan_alone platform ptg) ptgs)
  in
  let evaluate schedules =
    let sim = Mcs_sim.Replay.run ~release platform schedules in
    let responses =
      Array.mapi (fun i c -> c -. release.(i)) sim.Mcs_sim.Replay.makespans
    in
    let slowdowns =
      Array.mapi (fun i m -> Metrics.slowdown ~own:own.(i) ~multi:m) responses
    in
    (Metrics.unfairness slowdowns, Mcs_util.Floatx.maximum responses)
  in
  let results =
    List.concat_map
      (fun strategy ->
        List.map
          (fun mode ->
            (* Both modes run under the invariant analyzer: a broken
               schedule aborts the experiment instead of skewing it. *)
            let schedules =
              match mode with
              | Offline ->
                Pipeline.schedule_concurrent ~release
                  ~check:
                    (Mcs_check.Check.pipeline_hook ~release ~strategy platform)
                  ~strategy platform ptgs
              | Online ->
                let apps =
                  List.mapi (fun i ptg -> (ptg, release.(i))) ptgs
                in
                (Engine.run ~check:Mcs_check.Check.fail_on_error
                   ~policy:(Policy.make strategy) platform apps)
                  .Engine.schedules
            in
            let unfairness, global = evaluate schedules in
            (strategy, mode, unfairness, global))
          modes)
      strategies
  in
  let best =
    List.fold_left
      (fun acc (_, _, _, global) -> Float.min acc global)
      Float.infinity results
  in
  List.map
    (fun (strategy, mode, unfairness, global) ->
      ( strategy,
        mode,
        unfairness,
        Metrics.relative_makespan global ~best ))
    results

let compute ?runs ?(counts = Workload.paper_counts) ?(seed = 411)
    ?(mean_interarrival = 30.) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  List.concat_map
    (fun count ->
      let per_scenario =
        Mcs_util.Parmap.map
          (fun (platform, ptgs) ->
            let rng =
              Prng.create ~seed:(seed + (count * 31) + List.length ptgs)
            in
            let release = draw_release rng count ~mean_interarrival in
            scenario_metrics platform ptgs ~release)
          (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count
             ~runs ~seed)
      in
      List.concat_map
        (fun strategy ->
          List.map
            (fun mode ->
              let mine =
                List.map
                  (fun rs ->
                    let _, _, unf, rel =
                      List.find
                        (fun (s, m, _, _) -> s = strategy && m = mode)
                        rs
                    in
                    (unf, rel))
                  per_scenario
              in
              {
                strategy;
                mode;
                count;
                unfairness = Sweep.mean_over fst mine;
                relative_makespan = Sweep.mean_over snd mine;
              })
            modes)
        strategies)
    counts

let table ?runs () =
  let points = compute ?runs () in
  let counts = List.sort_uniq compare (List.map (fun p -> p.count) points) in
  let t =
    Table.create
      ~title:
        "Online dynamic β (event-driven engine) vs offline approximation — \
         unfairness / relative response time"
      ~header:
        ("strategy / mode"
        :: List.map (fun c -> string_of_int c ^ " PTGs") counts)
  in
  List.iter
    (fun strategy ->
      List.iter
        (fun mode ->
          Table.add_row t
            ((Strategy.name strategy ^ " " ^ mode_name mode)
            :: List.map
                 (fun count ->
                   match
                     List.find_opt
                       (fun p ->
                         p.strategy = strategy && p.mode = mode
                         && p.count = count)
                       points
                   with
                   | Some p ->
                     Printf.sprintf "%.2f / %.2f" p.unfairness
                       p.relative_makespan
                   | None -> "-")
                 counts))
        modes)
    strategies;
  t
