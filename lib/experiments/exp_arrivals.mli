(** Staggered submissions — the paper's future-work scenario
    (Section 8): applications arrive over time instead of together.

    Submission times are drawn from a Poisson process whose mean
    inter-arrival is a fraction of the typical dedicated makespan, so
    applications genuinely overlap. Per-application makespans are
    response times (completion − submission) and the slowdown baseline
    M_own stays the dedicated-platform run, as in the paper. β is
    computed over the full submission set (an offline approximation of
    the dynamic recomputation the paper leaves open — see DESIGN.md).
    {!Exp_online} runs the same scenarios through the event-driven
    engine of {!Mcs_online.Engine}, which recomputes β over the active
    applications at each arrival/departure and so removes this
    approximation; its table carries both modes side by side. *)

type point = {
  strategy : Mcs_sched.Strategy.t;
  count : int;
  unfairness : float;
  relative_makespan : float;
}

val compute :
  ?runs:int ->
  ?counts:int list ->
  ?seed:int ->
  ?mean_interarrival:float ->
  unit ->
  point list
(** Default mean inter-arrival: 30 s. *)

val table : ?runs:int -> unit -> Mcs_util.Table.t
