module Strategy = Mcs_sched.Strategy
module Malleability = Mcs_sched.Malleability
module Metrics = Mcs_metrics.Metrics
module Table = Mcs_util.Table
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Fault = Mcs_fault.Fault

type point = {
  mode : string;
  level : string;
  unfairness : float;
  relative_makespan : float;
  resizes : float;
  win_rate : float;
}

let model =
  {
    Malleability.default with
    Malleability.quantum = 30.;
    redist_cost = 0.05;
    shrink_active_above = 6;
    grow_active_below = 2;
  }

let modes = [ ("moldable", None); ("malleable", Some model) ]

let levels =
  [
    ("none", None);
    ( "moderate",
      Some
        {
          Fault.default with
          Fault.mttf = 1500.;
          mttr = 120.;
          task_fail_p = 0.05;
        } );
  ]

let strategy = Strategy.Weighted (Strategy.Work, 0.7)

(* Bursts of three simultaneous submissions separated by long quiet
   gaps: each burst spikes the active set (running tasks shrink to make
   room) and each gap drains it (the survivors' running tasks grow onto
   the idle processors) — the access pattern malleability exists for. *)
let burst_release count = Array.init count (fun i -> float_of_int (i / 3) *. 150.)

(* One scenario under every (mode, level) pair: virtual response times,
   engine resize count, and the per-scenario makespan ranking between
   the two modes at the same fault level. Every run is audited — the
   per-generation online rules, the FAULT family when faults are on and
   the MAL family when malleability is on; a violation aborts the
   experiment rather than skewing it. *)
let scenario_metrics platform ptgs ~release ~fault_seed =
  let own =
    Array.of_list
      (List.map
         (fun ptg ->
           Runner.makespan_alone ~timing:Runner.Estimated platform ptg)
         ptgs)
  in
  let apps = List.mapi (fun i ptg -> (ptg, release.(i))) ptgs in
  let results =
    List.concat_map
      (fun (level, config) ->
        let faults =
          Option.map
            (fun config -> Fault.generate ~seed:fault_seed platform config)
            config
        in
        List.map
          (fun (mode, malleability) ->
            let r =
              Engine.run ~check:Mcs_check.Check.fail_on_error ?faults
                ~policy:(Policy.make ?malleability strategy)
                platform apps
            in
            let unfairness =
              Metrics.unfairness_of_makespans ~own ~multi:r.Engine.responses
            in
            let global = Mcs_util.Floatx.maximum r.Engine.responses in
            ( mode,
              level,
              unfairness,
              global,
              float_of_int r.Engine.stats.Engine.resizes ))
          modes)
      levels
  in
  let best =
    List.fold_left
      (fun acc (_, _, _, global, _) -> Float.min acc global)
      Float.infinity results
  in
  List.map
    (fun (mode, level, unfairness, global, resizes) ->
      let rival_global =
        List.fold_left
          (fun acc (m, l, _, g, _) ->
            if l = level && m <> mode then Float.min acc g else acc)
          Float.infinity results
      in
      ( mode,
        level,
        unfairness,
        Metrics.relative_makespan global ~best,
        resizes,
        if global < rival_global then 1. else 0. ))
    results

let compute ?runs ?(count = 6) ?(seed = 911) () =
  let runs = match runs with Some r -> r | None -> Sweep.runs_from_env () in
  let release = burst_release count in
  let per_scenario =
    Mcs_util.Parmap.map
      (fun (i, (platform, ptgs)) ->
        scenario_metrics platform ptgs ~release
          ~fault_seed:(seed + (257 * i) + 1))
      (List.mapi
         (fun i s -> (i, s))
         (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count ~runs
            ~seed))
  in
  List.concat_map
    (fun (level, _) ->
      List.map
        (fun (mode, _) ->
          let mine =
            List.map
              (fun rs ->
                let _, _, unf, rel, res, win =
                  List.find
                    (fun (m, l, _, _, _, _) -> m = mode && l = level)
                    rs
                in
                (unf, rel, res, win))
              per_scenario
          in
          {
            mode;
            level;
            unfairness = Sweep.mean_over (fun (u, _, _, _) -> u) mine;
            relative_makespan = Sweep.mean_over (fun (_, r, _, _) -> r) mine;
            resizes = Sweep.mean_over (fun (_, _, s, _) -> s) mine;
            win_rate = Sweep.mean_over (fun (_, _, _, w) -> w) mine;
          })
        modes)
    levels

let table ?runs () =
  let points = compute ?runs () in
  let level_names = List.map fst levels in
  let t =
    Table.create
      ~title:
        "Malleable vs moldable execution (X9) — unfairness / relative \
         response time (mean resizes, makespan win rate) under burst \
         submissions"
      ~header:("mode" :: level_names)
  in
  List.iter
    (fun (mode, _) ->
      Table.add_row t
        (mode
        :: List.map
             (fun level ->
               match
                 List.find_opt
                   (fun p -> p.mode = mode && p.level = level)
                   points
               with
               | Some p ->
                 Printf.sprintf "%.2f / %.2f (%.1f rsz, %.0f%% win)"
                   p.unfairness p.relative_makespan p.resizes
                   (100. *. p.win_rate)
               | None -> "-")
             level_names))
    modes;
  t
