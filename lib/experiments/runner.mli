(** Execution of one scenario (a platform plus a set of concurrent
    applications) under several strategies, with the dedicated-platform
    baselines computed once and shared.

    Makespans are, as in the paper, taken from the discrete-event
    simulation of the produced schedules; [timing = Estimated] falls
    back to the mapper's estimates (used by the validation experiment
    comparing both). *)

type timing = Estimated | Simulated

type run_metrics = {
  strategy : Mcs_sched.Strategy.t;
  makespans : float array;   (** per application, concurrent run *)
  slowdowns : float array;   (** per application, M_own/M_multi *)
  unfairness : float;
  global_makespan : float;   (** completion of the whole run *)
  avg_makespan : float;      (** mean of the per-application makespans *)
}

val makespan_alone :
  ?config:Mcs_sched.Pipeline.config ->
  ?timing:timing ->
  Mcs_platform.Platform.t ->
  Mcs_ptg.Ptg.t ->
  float
(** Dedicated-platform makespan M_own of one application. *)

val evaluate :
  ?config:Mcs_sched.Pipeline.config ->
  ?timing:timing ->
  ?release:float array ->
  ?check:bool ->
  Mcs_platform.Platform.t ->
  Mcs_ptg.Ptg.t list ->
  Mcs_sched.Strategy.t list ->
  run_metrics list
(** Evaluate every strategy on the scenario (default timing:
    [Simulated]). The M_own baselines are computed once. With
    [release], applications are submitted at the given times and each
    per-application makespan is its response time (completion −
    submission).

    [check] (default [true]) runs the invariant analyzer over every
    produced schedule set and raises {!Mcs_check.Check.Violation} on
    any error-severity diagnostic — metrics are never computed from an
    illegal schedule. *)
