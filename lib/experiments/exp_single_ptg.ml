module Schedule = Mcs_sched.Schedule
module Mheft = Mcs_sched.Mheft
module Pipeline = Mcs_sched.Pipeline
module Table = Mcs_util.Table

type stats = {
  algorithm : string;
  mean_relative_makespan : float;
  mean_efficiency : float;
}

let algorithms =
  [
    ("HEFT", fun platform ptg -> Mheft.schedule_heft platform ptg);
    ("M-HEFT", fun platform ptg -> Mheft.schedule platform ptg);
    ( "M-HEFT eff>=0.5",
      fun platform ptg ->
        Mheft.schedule
          ~options:{ Mheft.default_options with min_efficiency = 0.5 }
          platform ptg );
    ( "SCRAP-MAX beta=1 (HCPA)",
      fun platform ptg -> Pipeline.schedule_alone platform ptg );
  ]

let efficiency platform _ptg sched =
  match Schedule.parallel_efficiency ~platform sched with
  | 0. -> 1. (* degenerate empty schedule: count as perfectly efficient *)
  | e -> e

let compute ?runs ?(seed = 77) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  let scenarios =
    List.concat_map
      (fun (platform, ptgs) -> List.map (fun p -> (platform, p)) ptgs)
      (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count:1 ~runs
         ~seed)
  in
  let per_scenario =
    Mcs_util.Parmap.map
      (fun (platform, ptg) ->
        let entries =
          List.map
            (fun (name, algo) ->
              let sched = algo platform ptg in
              (name, sched.Schedule.makespan, efficiency platform ptg sched))
            algorithms
        in
        let best =
          List.fold_left (fun acc (_, m, _) -> Float.min acc m) Float.infinity
            entries
        in
        List.map (fun (name, m, e) -> (name, m /. best, e)) entries)
      scenarios
  in
  List.mapi
    (fun i (name, _) ->
      let mine = List.map (fun entries -> List.nth entries i) per_scenario in
      {
        algorithm = name;
        mean_relative_makespan =
          Sweep.mean_over (fun (_, m, _) -> m) mine;
        mean_efficiency = Sweep.mean_over (fun (_, _, e) -> e) mine;
      })
    algorithms

let table ?runs () =
  let stats = compute ?runs () in
  let t =
    Table.create
      ~title:
        "Single-PTG comparison — makespan vs parallel efficiency (random \
         PTGs, 4 platforms)"
      ~header:[ "algorithm"; "relative makespan"; "parallel efficiency" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.algorithm;
          Printf.sprintf "%.2f" s.mean_relative_makespan;
          Printf.sprintf "%.0f%%" (100. *. s.mean_efficiency);
        ])
    stats;
  t
