let c name procs gflops switch =
  { Platform.cluster_name = name; procs; gflops; switch }

let lille () =
  Platform.make ~name:"Lille"
    [ c "Chuque" 53 3.647 0; c "Chti" 20 4.311 0; c "Chicon" 26 4.384 0 ]

let nancy () =
  Platform.make ~name:"Nancy"
    [ c "Grillon" 47 3.379 0; c "Grelon" 120 3.185 1 ]

let rennes () =
  Platform.make ~name:"Rennes"
    [ c "Parasol" 64 3.573 0; c "Paravent" 99 3.364 0; c "Paraquad" 66 4.603 0 ]

let sophia () =
  Platform.make ~name:"Sophia"
    [ c "Azur" 74 3.258 0; c "Helios" 56 3.675 1; c "Sol" 50 4.389 2 ]

let all () = [ lille (); nancy (); rennes (); sophia () ]

(* The four sites federated into one 11-cluster, 675-processor platform
   (one switch per site), the scale target of the sharded serving
   engine: its cluster set partitions cleanly into 4+ shards. *)
let grid () =
  Platform.make ~name:"Grid5000"
    [
      c "Chuque" 53 3.647 0; c "Chti" 20 4.311 0; c "Chicon" 26 4.384 0;
      c "Grillon" 47 3.379 1; c "Grelon" 120 3.185 1;
      c "Parasol" 64 3.573 2; c "Paravent" 99 3.364 2; c "Paraquad" 66 4.603 2;
      c "Azur" 74 3.258 3; c "Helios" 56 3.675 3; c "Sol" 50 4.389 3;
    ]

let by_name s =
  let s = String.lowercase_ascii s in
  match s with
  | "lille" -> Some (lille ())
  | "nancy" -> Some (nancy ())
  | "rennes" -> Some (rennes ())
  | "sophia" -> Some (sophia ())
  | "grid" -> Some (grid ())
  | _ -> None
