(** The four multi-cluster Grid'5000 subsets of Table 1.

    The Lille and Rennes clusters share a single switch per site, while
    Nancy and Sophia attach each cluster to its own switch, giving the
    different contention conditions discussed in Section 2 of the
    paper. *)

val lille : unit -> Platform.t
(** Chuque (53 × 3.647), Chti (20 × 4.311), Chicon (26 × 4.384) — 99
    processors, one switch, heterogeneity 20.2%. *)

val nancy : unit -> Platform.t
(** Grillon (47 × 3.379), Grelon (120 × 3.185) — 167 processors, one
    switch per cluster, heterogeneity 6.1%. *)

val rennes : unit -> Platform.t
(** Parasol (64 × 3.573), Paravent (99 × 3.364), Paraquad (66 × 4.603) —
    229 processors, one switch, heterogeneity 36.8%. *)

val sophia : unit -> Platform.t
(** Azur (74 × 3.258), Helios (56 × 3.675), Sol (50 × 4.389) — 180
    processors, one switch per cluster, heterogeneity 34.7%. *)

val all : unit -> Platform.t list
(** The four sites in the paper's order: Lille, Nancy, Rennes, Sophia. *)

val grid : unit -> Platform.t
(** The four sites federated into one platform: 11 clusters, 675
    processors, one switch per site. Not a paper subset — the scale
    target of the sharded serving engine ({!Mcs_serve}), whose cluster
    set partitions into four or more shards. *)

val by_name : string -> Platform.t option
(** Case-insensitive lookup among the four sites plus ["grid"]. *)
