type cluster = {
  cluster_name : string;
  procs : int;
  gflops : float;
  switch : int;
}

type t = {
  name : string;
  clusters : cluster array;
  switch_count : int;
  nic_bandwidth : float;
  link_bandwidth : float;
  backbone_bandwidth : float;
  latency : float;
  first_proc : int array;  (* cluster -> global id of its first processor *)
  total_procs : int;
}

let make ~name ?(nic_bandwidth = 1.25e8) ?(link_bandwidth = 1.25e9)
    ?(backbone_bandwidth = 1.25e9) ?(latency = 1e-4) cluster_list =
  if cluster_list = [] then invalid_arg "Platform.make: no clusters";
  List.iter
    (fun c ->
      if c.procs <= 0 then invalid_arg "Platform.make: cluster with no processors";
      if c.gflops <= 0. then invalid_arg "Platform.make: non-positive speed";
      if c.switch < 0 then invalid_arg "Platform.make: negative switch id")
    cluster_list;
  if nic_bandwidth <= 0. || link_bandwidth <= 0. || backbone_bandwidth <= 0.
  then invalid_arg "Platform.make: non-positive bandwidth";
  if latency < 0. then invalid_arg "Platform.make: negative latency";
  let clusters = Array.of_list cluster_list in
  let nc = Array.length clusters in
  let first_proc = Array.make nc 0 in
  let total = ref 0 in
  Array.iteri
    (fun k c ->
      first_proc.(k) <- !total;
      total := !total + c.procs)
    clusters;
  let switch_count =
    1 + Array.fold_left (fun acc c -> max acc c.switch) 0 clusters
  in
  {
    name;
    clusters;
    switch_count;
    nic_bandwidth;
    link_bandwidth;
    backbone_bandwidth;
    latency;
    first_proc;
    total_procs = !total;
  }

let name t = t.name
let clusters t = Array.copy t.clusters
let cluster_count t = Array.length t.clusters
let cluster t k = t.clusters.(k)
let switch_count t = t.switch_count
let total_procs t = t.total_procs

let cluster_power t k =
  let c = t.clusters.(k) in
  float_of_int c.procs *. c.gflops

let total_power t =
  let acc = ref 0. in
  for k = 0 to cluster_count t - 1 do
    acc := !acc +. cluster_power t k
  done;
  !acc

let check_up t up =
  if Array.length up <> t.total_procs then
    invalid_arg
      (Printf.sprintf "Platform: up mask has %d entries for %d processors"
         (Array.length up) t.total_procs)

let up_counts t ~up =
  check_up t up;
  let counts = Array.make (Array.length t.clusters) 0 in
  Array.iteri
    (fun k c ->
      let base = t.first_proc.(k) in
      for p = base to base + c.procs - 1 do
        if up.(p) then counts.(k) <- counts.(k) + 1
      done)
    t.clusters;
  counts

let up_power t ~up =
  check_up t up;
  let acc = ref 0. in
  Array.iteri
    (fun k c ->
      let base = t.first_proc.(k) in
      for p = base to base + c.procs - 1 do
        if up.(p) then acc := !acc +. c.gflops
      done)
    t.clusters;
  !acc

let min_speed t =
  Array.fold_left (fun acc c -> Float.min acc c.gflops) Float.infinity t.clusters

let max_speed t =
  Array.fold_left (fun acc c -> Float.max acc c.gflops) 0. t.clusters

let heterogeneity t = (max_speed t /. min_speed t) -. 1.

let nic_bandwidth t = t.nic_bandwidth
let link_bandwidth t = t.link_bandwidth
let backbone_bandwidth t = t.backbone_bandwidth
let latency t = t.latency

let fabric_bandwidth t k =
  let c = t.clusters.(k) in
  Float.max t.link_bandwidth
    (t.nic_bandwidth *. float_of_int c.procs /. 2.)
let first_proc t k = t.first_proc.(k)

let cluster_of_proc t p =
  if p < 0 || p >= t.total_procs then
    invalid_arg (Printf.sprintf "Platform.cluster_of_proc: %d" p);
  (* Binary search over first_proc. *)
  let lo = ref 0 and hi = ref (Array.length t.clusters - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.first_proc.(mid) <= p then lo := mid else hi := mid - 1
  done;
  !lo

let proc_speed t p = t.clusters.(cluster_of_proc t p).gflops

let same_switch t k1 k2 = t.clusters.(k1).switch = t.clusters.(k2).switch

let pp ppf t =
  Format.fprintf ppf "%s: %d clusters, %d procs, %.1f GFlop/s, het. %.1f%%"
    t.name (cluster_count t) t.total_procs (total_power t)
    (100. *. heterogeneity t)

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Site %s (%d processors, heterogeneity %.1f%%, %d switch%s)\n"
       t.name t.total_procs
       (100. *. heterogeneity t)
       t.switch_count
       (if t.switch_count > 1 then "es" else ""));
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %4d procs  %.3f GFlop/s  switch %d\n"
           c.cluster_name c.procs c.gflops c.switch))
    t.clusters;
  Buffer.contents buf
