(** Heterogeneous multi-cluster platform model.

    A platform is a set of clusters, each holding identical processors of
    a given speed (GFlop/s). Clusters hang off network switches; on some
    sites all clusters share one switch, on others each cluster has its
    own, which changes contention behaviour exactly as described for the
    Grid'5000 subsets of the paper (Section 2). Processors are given
    global identifiers [0 .. total_procs - 1], cluster by cluster. *)

type cluster = {
  cluster_name : string;
  procs : int;            (** number of identical processors *)
  gflops : float;         (** per-processor speed, GFlop/s *)
  switch : int;           (** switch the cluster is attached to *)
}

type t

val make :
  name:string ->
  ?nic_bandwidth:float ->
  ?link_bandwidth:float ->
  ?backbone_bandwidth:float ->
  ?latency:float ->
  cluster list -> t
(** Build a platform. [nic_bandwidth] is the per-node network interface
    capacity (default 1.25e8 bytes/s — Gigabit Ethernet, the Grid'5000
    commodity-cluster standard of the paper's era); a redistribution
    between a p-processor and a q-processor allocation aggregates
    [min(p, q)] such streams. [link_bandwidth] is the capacity of each
    cluster's switch fabric, shared by all traffic entering or leaving
    the cluster (default 1.25e9, i.e., 10 Gb/s); [backbone_bandwidth]
    is the inter-switch backbone capacity (default 1.25e9); [latency]
    is the one-way LAN latency in seconds (default 1e-4).
    @raise Invalid_argument on an empty cluster list, non-positive
    sizes/speeds/bandwidths, or negative switch ids. *)

val name : t -> string
val clusters : t -> cluster array
val cluster_count : t -> int
val cluster : t -> int -> cluster
val switch_count : t -> int

val total_procs : t -> int

val total_power : t -> float
(** Aggregate processing power Σ_k p_k·s_k in GFlop/s — the denominator
    of the β resource constraint. *)

val cluster_power : t -> int -> float
(** [procs × gflops] of one cluster. *)

val up_counts : t -> up:bool array -> int array
(** Surviving processors per cluster under an availability mask indexed
    by global processor id — the degraded view used by fault-aware
    allocation.
    @raise Invalid_argument if the mask length differs from
    [total_procs]. *)

val up_power : t -> up:bool array -> float
(** Aggregate power (GFlop/s) of the surviving processors — the
    degraded denominator of the β resource constraint.
    @raise Invalid_argument if the mask length differs from
    [total_procs]. *)

val min_speed : t -> float
(** Speed of the slowest processor (GFlop/s). *)

val max_speed : t -> float
(** Speed of the fastest processor (GFlop/s). *)

val heterogeneity : t -> float
(** [max_speed/min_speed - 1]: 0.202 for the Lille subset, etc. *)

val nic_bandwidth : t -> float
val link_bandwidth : t -> float
val backbone_bandwidth : t -> float
val latency : t -> float

val fabric_bandwidth : t -> int -> float
(** Effective switching capacity of one cluster's fabric:
    [max link_bandwidth (nic_bandwidth × procs/2)] — commodity cluster
    switches are close to non-blocking, so the fabric scales with the
    cluster (half-bisection), with [link_bandwidth] as a floor for tiny
    clusters. All traffic entering or leaving the cluster shares it. *)

val first_proc : t -> int -> int
(** Global id of the first processor of a cluster. *)

val cluster_of_proc : t -> int -> int
(** Cluster owning a global processor id.
    @raise Invalid_argument if out of range. *)

val proc_speed : t -> int -> float
(** Speed of a global processor id, GFlop/s. *)

val same_switch : t -> int -> int -> bool
(** Whether two clusters are attached to the same switch. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)

val describe : t -> string
(** Multi-line, Table 1-style description. *)
