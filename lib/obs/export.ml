module Jsonx = Mcs_util.Jsonx
module Table = Mcs_util.Table

type format = Chrome | Jsonl | Table

let format_names = [ ("chrome", Chrome); ("jsonl", Jsonl); ("table", Table) ]

let format_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) format_names with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "unknown profile format %S" s)

type row = {
  phase : string;
  calls : int;
  total_s : float;
  self_s : float;
  alloc_w : float;
}

let profile_rows () =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Obs.span) ->
      match Hashtbl.find_opt tbl s.Obs.name with
      | Some r ->
        Hashtbl.replace tbl s.Obs.name
          {
            r with
            calls = r.calls + 1;
            total_s = r.total_s +. s.Obs.dur_s;
            self_s = r.self_s +. s.Obs.self_s;
            alloc_w = r.alloc_w +. s.Obs.alloc_w;
          }
      | None ->
        order := s.Obs.name :: !order;
        Hashtbl.replace tbl s.Obs.name
          {
            phase = s.Obs.name;
            calls = 1;
            total_s = s.Obs.dur_s;
            self_s = s.Obs.self_s;
            alloc_w = s.Obs.alloc_w;
          })
    (Obs.spans ());
  List.map (Hashtbl.find tbl) (List.rev !order)
  |> List.sort (fun a b -> Float.compare b.self_s a.self_s)

let human_time s =
  if s >= 1. then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
  else Printf.sprintf "%.0f ns" (s *. 1e9)

let profile_table () =
  let rows = profile_rows () in
  let total_self =
    List.fold_left (fun acc r -> acc +. r.self_s) 0. rows
  in
  let t =
    Table.create ~title:"phase self-time profile"
      ~header:[ "phase"; "calls"; "total"; "self"; "self%"; "alloc words" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.phase;
          string_of_int r.calls;
          human_time r.total_s;
          human_time r.self_s;
          (if total_self > 0. then
             Printf.sprintf "%.1f" (100. *. r.self_s /. total_self)
           else "-");
          Printf.sprintf "%.0f" r.alloc_w;
        ])
    rows;
  let counters =
    List.filter (fun (_, v) -> v > 0) (Obs.counter_values ())
  in
  if counters <> [] then begin
    Table.add_row t [ ""; ""; ""; ""; ""; "" ];
    List.iter
      (fun (name, v) ->
        Table.add_row t [ name; string_of_int v; ""; ""; ""; "" ])
      counters
  end;
  t

let span_fields (s : Obs.span) =
  [
    ("name", Jsonx.Str s.Obs.name);
    ("depth", Jsonx.Num (float_of_int s.Obs.depth));
    ("start_s", Jsonx.Num s.Obs.start_s);
    ("dur_s", Jsonx.Num s.Obs.dur_s);
    ("self_s", Jsonx.Num s.Obs.self_s);
    ("alloc_words", Jsonx.Num s.Obs.alloc_w);
  ]

let chrome_json () =
  let span_events =
    List.map
      (fun (s : Obs.span) ->
        Jsonx.Obj
          [
            ("name", Jsonx.Str s.Obs.name);
            ("cat", Jsonx.Str "mcs");
            ("ph", Jsonx.Str "X");
            ("ts", Jsonx.Num (s.Obs.start_s *. 1e6));
            ("dur", Jsonx.Num (s.Obs.dur_s *. 1e6));
            ("pid", Jsonx.Num 1.);
            ("tid", Jsonx.Num 1.);
            ( "args",
              Jsonx.Obj
                [
                  ("self_us", Jsonx.Num (s.Obs.self_s *. 1e6));
                  ("alloc_words", Jsonx.Num s.Obs.alloc_w);
                ] );
          ])
      (Obs.spans ())
  in
  let counter_events =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some
            (Jsonx.Obj
               [
                 ("name", Jsonx.Str name);
                 ("ph", Jsonx.Str "C");
                 ("ts", Jsonx.Num 0.);
                 ("pid", Jsonx.Num 1.);
                 ("args", Jsonx.Obj [ ("value", Jsonx.Num (float_of_int v)) ]);
               ]))
      (Obs.counter_values ())
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.Arr (span_events @ counter_events));
      ("displayTimeUnit", Jsonx.Str "ms");
    ]

let chrome () = Jsonx.encode (chrome_json ())

let jsonl () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Jsonx.encode (Jsonx.Obj (("type", Jsonx.Str "span") :: span_fields s)));
      Buffer.add_char buf '\n')
    (Obs.spans ());
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Jsonx.encode
           (Jsonx.Obj
              [
                ("type", Jsonx.Str "counter");
                ("name", Jsonx.Str name);
                ("value", Jsonx.Num (float_of_int v));
              ]));
      Buffer.add_char buf '\n')
    (Obs.counter_values ());
  Buffer.contents buf

let render = function
  | Chrome -> chrome ()
  | Jsonl -> jsonl ()
  | Table -> Table.render (profile_table ()) ^ "\n"

let write format path =
  let contents = render format in
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  end
