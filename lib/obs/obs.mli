(** Zero-dependency structured tracing and counters for the scheduling
    pipelines.

    The module keeps one process-wide recorder holding {e spans} —
    nestable named intervals carrying wall-clock and allocation-word
    deltas — and {e counters} — named monotonic integers (plus
    high-water-mark gauges via {!record_max}). The recorder is disabled
    by default and every probe first reads a single flag, so
    instrumented hot paths pay approximately nothing when profiling is
    off: {!incr}, {!record_max}, {!enter} and {!leave} allocate nothing
    and {!with_span} reduces to a direct call of its argument.

    Counters are domain-safe: they are plain [Atomic.t] cells, so
    per-shard serving loops ({!Mcs_serve}) and {!Mcs_util.Parmap}
    workers running on their own domains all contribute updates without
    racing. Spans keep a frame {e stack} and remain owned by the domain
    that called {!enable}; span probes arriving from any other domain
    are silently dropped instead of corrupting it. Profile a serve run
    in its single-domain fallback mode (or set [MCS_DOMAINS=1] for a
    sweep) to capture a complete span trace.

    Canonical span and counter names are registered in {!Names};
    exporters (Chrome trace JSON, JSONL, self-time table) live in
    {!Export}. *)

type span = {
  name : string;    (** phase name, e.g. ["mapper.run"] *)
  depth : int;      (** nesting depth; 0 for a root span *)
  start_s : float;  (** seconds since {!enable} *)
  dur_s : float;    (** inclusive wall-clock duration, seconds *)
  self_s : float;   (** [dur_s] minus the duration of direct children *)
  alloc_w : float;  (** words allocated during the span, children included *)
}

type counter
(** A named counter, interned by {!counter}. Counters survive
    {!disable} and are zeroed by {!reset}/{!enable}. *)

val enabled : unit -> bool
(** Whether the recorder is currently capturing. *)

val enable : unit -> unit
(** Start capturing: clears previously recorded spans, zeroes every
    registered counter, restarts the epoch, and makes the calling
    domain the recorder's owner. *)

val disable : unit -> unit
(** Stop capturing. Completed spans and counter values remain readable
    (for export); open frames are discarded. *)

val reset : unit -> unit
(** Clear recorded spans and open frames and zero every registered
    counter without changing the enabled state. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span called [name]. The
    span is recorded when [f] returns {e and} when it raises (the
    exception is re-raised). When the recorder is disabled this is
    exactly [f ()]. *)

val enter : string -> unit
(** Open a span without a closure — the allocation-free variant of
    {!with_span} for hot paths. Must be balanced by {!leave}; no-op
    when disabled. Prefer {!with_span} wherever a closure is
    acceptable, as it is exception-safe. *)

val leave : unit -> unit
(** Close the innermost open span and record it. No-op when the
    recorder is disabled or no span is open. *)

val counter : string -> counter
(** Intern a counter by name: two calls with the same name return the
    same counter. Instrumented modules register their counters once at
    module initialisation, so {!counter_values} lists them (at zero)
    even before any event. *)

val incr : ?by:int -> counter -> unit
(** Atomically add [by] (default 1) to a counter from any domain; no-op
    when the recorder is disabled. *)

val record_max : counter -> int -> unit
(** Gauge update: raise the counter to [v] if [v] exceeds its current
    value (atomic compare-and-swap loop, safe from any domain) — used
    for high-water marks such as the ready-queue peak. *)

val value : counter -> int
(** Current value of a counter. *)

val counter_values : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val spans : unit -> span list
(** Completed spans in completion order (a child precedes its parent).
    Open spans are not included. *)
