type span = {
  name : string;
  depth : int;
  start_s : float;
  dur_s : float;
  self_s : float;
  alloc_w : float;
}

type counter = {
  cname : string;
  mutable value : int;
}

type frame = {
  fname : string;
  fdepth : int;
  fstart : float;
  fwords : float;
  mutable child_dur : float;
}

(* Single recorder per process, owned by the domain that enabled it.
   Spans and counter updates from other domains are dropped rather than
   raced: the scheduling pipelines this library instruments are
   single-domain, and [Mcs_util.Parmap] workers would otherwise corrupt
   the frame stack. *)
let on = ref false
let owner : Domain.id option ref = ref None
let epoch = ref 0.
let stack : frame list ref = ref []
let completed : span list ref = ref [] (* reverse completion order *)
let registry : (string, counter) Hashtbl.t = Hashtbl.create 32

let enabled () = !on

let owned () =
  match !owner with Some d -> Domain.self () = d | None -> false

let now () = Unix.gettimeofday ()

(* Words allocated since program start: minor + major - promoted. *)
let words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let reset () =
  stack := [];
  completed := [];
  Hashtbl.iter (fun _ c -> c.value <- 0) registry;
  if !on then epoch := now ()

let enable () =
  on := true;
  owner := Some (Domain.self ());
  reset ()

let disable () =
  on := false;
  stack := []

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { cname = name; value = 0 } in
    Hashtbl.add registry name c;
    c

let incr ?(by = 1) c = if !on && owned () then c.value <- c.value + by

let record_max c v =
  if !on && owned () && v > c.value then c.value <- v

let value c = c.value

let counter_values () =
  Hashtbl.fold (fun _ c acc -> (c.cname, c.value) :: acc) registry []
  |> List.sort compare

let enter name =
  if !on && owned () then
    stack :=
      {
        fname = name;
        fdepth = List.length !stack;
        fstart = now ();
        fwords = words ();
        child_dur = 0.;
      }
      :: !stack

let leave () =
  if !on && owned () then
    match !stack with
    | [] -> ()
    | f :: rest ->
      let dur = Float.max 0. (now () -. f.fstart) in
      let alloc = Float.max 0. (words () -. f.fwords) in
      (match rest with
      | parent :: _ -> parent.child_dur <- parent.child_dur +. dur
      | [] -> ());
      stack := rest;
      completed :=
        {
          name = f.fname;
          depth = f.fdepth;
          start_s = f.fstart -. !epoch;
          dur_s = dur;
          self_s = Float.max 0. (dur -. f.child_dur);
          alloc_w = alloc;
        }
        :: !completed

let with_span name f =
  if not (!on && owned ()) then f ()
  else begin
    enter name;
    match f () with
    | v ->
      leave ();
      v
    | exception e ->
      leave ();
      raise e
  end

let spans () = List.rev !completed
