type span = {
  name : string;
  depth : int;
  start_s : float;
  dur_s : float;
  self_s : float;
  alloc_w : float;
}

type counter = {
  cname : string;
  value : int Atomic.t;
}

type frame = {
  fname : string;
  fdepth : int;
  fstart : float;
  fwords : float;
  mutable child_dur : float;
}

(* Single recorder per process. Counters are plain atomics, so per-shard
   engine loops running on their own domains ([Mcs_serve]) and
   [Mcs_util.Parmap] workers all contribute without racing. Spans keep a
   frame *stack* and therefore stay owned by the domain that enabled the
   recorder: span probes from any other domain are dropped rather than
   corrupting the stack (profile a serve run in its single-domain
   fallback mode to capture a complete span trace). *)
let on = Atomic.make false
let owner : Domain.id option ref = ref None
let epoch = ref 0.
let stack : frame list ref = ref []
let completed : span list ref = ref [] (* reverse completion order *)
let registry : (string, counter) Hashtbl.t = Hashtbl.create 32
[@@guarded_by registry_lock]

let registry_lock = Mutex.create ()

let enabled () = Atomic.get on

let owned () =
  match !owner with Some d -> Domain.self () = d | None -> false

let now () = Unix.gettimeofday ()

(* Words allocated since program start: minor + major - promoted. *)
let words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let reset () =
  stack := [];
  completed := [];
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) registry);
  if Atomic.get on then epoch := now ()

let enable () =
  Atomic.set on true;
  owner := Some (Domain.self ());
  reset ()

let disable () =
  Atomic.set on false;
  stack := []

(* Interning is the cold path (module initialisation, mostly on the main
   domain) but must still be safe when a worker domain interns lazily —
   the registry is the one shared mutable structure here. *)
let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = { cname = name; value = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c)

let incr ?(by = 1) c =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.value by)

let rec record_max c v =
  if Atomic.get on then begin
    let cur = Atomic.get c.value in
    if v > cur && not (Atomic.compare_and_set c.value cur v) then
      record_max c v
  end

let value c = Atomic.get c.value

let counter_values () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.cname, Atomic.get c.value) :: acc)
        registry [])
  |> List.sort compare

let enter name =
  if Atomic.get on && owned () then
    stack :=
      {
        fname = name;
        fdepth = List.length !stack;
        fstart = now ();
        fwords = words ();
        child_dur = 0.;
      }
      :: !stack

let leave () =
  if Atomic.get on && owned () then
    match !stack with
    | [] -> ()
    | f :: rest ->
      let dur = Float.max 0. (now () -. f.fstart) in
      let alloc = Float.max 0. (words () -. f.fwords) in
      (match rest with
      | parent :: _ -> parent.child_dur <- parent.child_dur +. dur
      | [] -> ());
      stack := rest;
      completed :=
        {
          name = f.fname;
          depth = f.fdepth;
          start_s = f.fstart -. !epoch;
          dur_s = dur;
          self_s = Float.max 0. (dur -. f.child_dur);
          alloc_w = alloc;
        }
        :: !completed

let with_span name f =
  if not (Atomic.get on && owned ()) then f ()
  else begin
    enter name;
    match f () with
    | v ->
      leave ();
      v
    | exception e ->
      leave ();
      raise e
  end

let spans () = List.rev !completed
