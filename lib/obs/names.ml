let phases =
  [
    ( "runner.evaluate",
      "one scenario evaluated under a list of strategies (experiments)" );
    ( "runner.baselines",
      "dedicated-platform M_own runs shared by every strategy" );
    ("pipeline.schedule", "two-step schedule of one concurrent batch");
    ("pipeline.allocation", "beta determination + per-PTG allocation step");
    ("alloc.scrap", "one SCRAP(-MAX) allocation loop over one PTG");
    ("alloc.cache", "one cached allocation lookup (hit/rescale/miss)");
    ("mapper.run", "concurrent list mapping of one application batch");
    ("mapper.prepare", "mapper state setup: topo ranks, bottom levels");
    ("mapper.place", "placement of one ready task (search over clusters)");
    ("mapper.packing", "allocation-packing search of one task placement");
    ("check.analyze", "invariant analyzer pass over one schedule set");
    ("sim.replay", "discrete-event replay of a schedule set");
    ("online.run", "one full online-engine run in virtual time");
    ("online.event", "handling of one non-stale online event");
    ("online.reschedule", "one rescheduling generation (beta + remap)");
    ("online.fault", "handling of one fault event (outage/recovery/failure)");
    ("online.resize", "one malleable resize opportunity (grow/shrink/skip)");
    ("serve.run", "one full service run (stream submission + drain)");
    ("serve.pickup", "one shard mailbox drain: shed + inject a batch");
    ("serve.step", "one shard engine advance up to the watermark");
  ]

let counters =
  [
    ("alloc.calls", "SCRAP(-MAX) allocation procedures run");
    ("alloc.increments", "+1-processor increments across allocation loops");
    ( "alloc.cache.hits",
      "cached allocations served as-is (same cap, budget and stop power)" );
    ( "alloc.cache.rescales",
      "cached trajectories replayed under a moved beta (same cap)" );
    ("alloc.cache.misses", "cache lookups that fell back to a scratch run");
    ("mapper.tasks_mapped", "task placements committed by the list mapper");
    ("mapper.packing_attempts", "shrunk-allocation candidates evaluated");
    ("mapper.packing_wins", "packing candidates that beat the full allocation");
    ("mapper.ready_peak", "high-water mark of the ready-task queue");
    ( "mapper.avail_reorders",
      "processor entries repositioned in the availability index" );
    ("mapper.backfill_slots", "reservation holes found by Timeline.find_slot");
    ("online.events", "non-stale events handled by the online engine");
    ("online.reschedules", "rescheduling generations across engine runs");
    ("online.remapped", "placements recomputed by online reschedules");
    ("online.kills", "running attempts killed by processor outages");
    ("online.retries", "transient task failures (each costs one retry)");
    ("online.fault_events", "outage/recovery events processed");
    ("online.resizes", "malleable grow/shrink operations executed");
    ("mapper.release", "ledger reservations released by outage rollbacks");
    ("check.analyses", "invariant analyzer passes");
    ("check.rules", "rules evaluated across analyzer passes");
    ("check.diagnostics", "diagnostics emitted by the analyzer");
    ("serve.submitted", "submissions offered to the serving engine");
    ("serve.admitted", "submissions accepted by admission control");
    ("serve.rejected", "submissions refused (queue full, Reject policy)");
    ("serve.handoffs", "submissions shed to a peer shard");
    ("serve.injected", "submissions injected into shard engine sessions");
    ("serve.queue_peak", "high-water mark of any shard mailbox");
    ("serve.active_peak", "high-water mark of any shard's active set");
  ]

let phase_names = List.map fst phases
let counter_names = List.map fst counters

let describe name =
  match List.assoc_opt name phases with
  | Some d -> Some d
  | None -> List.assoc_opt name counters
