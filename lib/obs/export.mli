(** Exporters over the current {!Obs} recorder contents.

    Three formats, all derived from {!Obs.spans} and
    {!Obs.counter_values} at call time (typically after
    {!Obs.disable}):

    - {e chrome} — a Chrome trace-event JSON document loadable in
      [chrome://tracing] / Perfetto: one complete ["X"] event per span
      (microsecond timestamps, self time and allocation words in
      [args]) and one ["C"] event per non-zero counter;
    - {e jsonl} — one JSON object per line (spans, then counters), for
      streaming consumers;
    - {e table} — a human-readable self-time profile rendered with
      {!Mcs_util.Table}, phases sorted by aggregate self time, non-zero
      counters appended. *)

type format = Chrome | Jsonl | Table

val format_names : (string * format) list
(** [("chrome", Chrome); ("jsonl", Jsonl); ("table", Table)] — ready
    for [Cmdliner.Arg.enum]. *)

val format_of_string : string -> (format, string) result
(** Case-insensitive lookup in {!format_names}. *)

type row = {
  phase : string;   (** span name *)
  calls : int;      (** number of completed spans with this name *)
  total_s : float;  (** summed inclusive duration, seconds *)
  self_s : float;   (** summed self time, seconds *)
  alloc_w : float;  (** summed allocation words (inclusive) *)
}

val profile_rows : unit -> row list
(** Spans aggregated by name, sorted by decreasing self time — the data
    behind the table exporter and [BENCH_pipeline.json]. *)

val profile_table : unit -> Mcs_util.Table.t
(** The self-time profile as a renderable table. *)

val chrome_json : unit -> Mcs_util.Jsonx.t
(** The Chrome trace document as a JSON value (round-trips through
    {!Mcs_util.Jsonx.parse}). *)

val chrome : unit -> string
(** [Jsonx.encode (chrome_json ())]. *)

val jsonl : unit -> string
(** The JSONL stream, one object per line, trailing newline included. *)

val render : format -> string
(** Render the chosen format to a string. *)

val write : format -> string -> unit
(** [write format path] renders to [path], or to stdout when [path] is
    ["-"]. *)
