(** Registry of canonical span (phase) and counter names.

    Instrumented modules use these names as string literals; this
    module is the single documented list, used by DESIGN.md section 9,
    by the bench harness to validate that [BENCH_pipeline.json] covers
    every phase, and by the test suite. Every name here is guaranteed
    to appear after one offline {!Mcs_experiments.Runner.evaluate} run,
    one {!Mcs_online.Engine.run}, and one inline-mode serving run
    ([Mcs_serve.Service.run_stream]), all with profiling enabled (the
    serving spans live on each shard's domain in [Domains] mode, so
    only the single-domain fallback surfaces them in a main-domain
    profile). *)

val phases : (string * string) list
(** Canonical span names with one-line descriptions, in pipeline
    order. *)

val counters : (string * string) list
(** Canonical counter names with one-line descriptions. *)

val phase_names : string list
(** [List.map fst phases]. *)

val counter_names : string list
(** [List.map fst counters]. *)

val describe : string -> string option
(** Description of a phase or counter name, if registered. *)
