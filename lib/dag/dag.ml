type t = {
  n : int;
  edges : (int * int) array;           (* edge id -> (src, dst) *)
  succ : (int * int) array array;      (* node -> (dst, edge id), sorted by dst *)
  pred : (int * int) array array;      (* node -> (src, edge id), sorted by src *)
  topo : int array;                    (* cached topological order *)
  pos : int array;                     (* node -> its index in [topo] *)
  level : int array;                   (* cached precedence levels *)
}

exception Cycle of int list

let node_count t = t.n
let edge_count t = Array.length t.edges
let edge t e = t.edges.(e)
let succs t v = t.succ.(v)
let preds t v = t.pred.(v)
let out_degree t v = Array.length t.succ.(v)
let in_degree t v = Array.length t.pred.(v)

(* Kahn's algorithm with a sorted frontier so the order is deterministic.
   Returns the topological order or raises [Cycle] with one cycle found
   by walking back through still-constrained nodes. *)
let compute_topo n succ pred =
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- Array.length pred.(v)
  done;
  let frontier = Mcs_util.Heap.create ~cmp:compare in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Mcs_util.Heap.push frontier v
  done;
  let order = Array.make n 0 in
  let filled = ref 0 in
  let rec drain () =
    match Mcs_util.Heap.pop frontier with
    | None -> ()
    | Some v ->
      order.(!filled) <- v;
      incr filled;
      Array.iter
        (fun (w, _e) ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Mcs_util.Heap.push frontier w)
        succ.(v);
      drain ()
  in
  drain ();
  if !filled < n then begin
    (* Find a cycle among the remaining nodes: walk predecessors that are
       still constrained until a node repeats. *)
    let stuck = ref (-1) in
    for v = n - 1 downto 0 do
      if indeg.(v) > 0 then stuck := v
    done;
    let visited = Hashtbl.create 16 in
    let rec walk v path =
      if Hashtbl.mem visited v then begin
        (* The walk is chronological once reversed; the cycle is the
           suffix starting at the first occurrence of [v]. *)
        let chronological = List.rev (v :: path) in
        let rec drop = function
          | w :: rest when w <> v -> drop rest
          | l -> l
        in
        raise (Cycle (drop chronological))
      end;
      Hashtbl.replace visited v ();
      let next =
        Array.fold_left
          (fun acc (u, _e) -> if indeg.(u) > 0 && acc = -1 then u else acc)
          (-1) pred.(v)
      in
      if next = -1 then raise (Cycle (List.rev (v :: path)))
      else walk next (v :: path)
    in
    walk !stuck []
  end;
  order

let compute_levels n topo pred =
  let level = Array.make n 0 in
  Array.iter
    (fun v ->
      Array.iter
        (fun (u, _e) -> if level.(u) + 1 > level.(v) then level.(v) <- level.(u) + 1)
        pred.(v))
    topo;
  level

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Dag.of_edges: negative node count";
  List.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        invalid_arg
          (Printf.sprintf "Dag.of_edges: edge (%d, %d) out of range [0, %d)" s d n);
      if s = d then raise (Cycle [ s; s ]))
    edge_list;
  (* Deduplicate, then fix edge ids by the sorted (src, dst) order so the
     graph (and its edge ids) are independent of input list order. *)
  let dedup = List.sort_uniq compare edge_list in
  let edges = Array.of_list dedup in
  let succ = Array.make n [] and pred = Array.make n [] in
  Array.iteri
    (fun e (s, d) ->
      succ.(s) <- (d, e) :: succ.(s);
      pred.(d) <- (s, e) :: pred.(d))
    edges;
  let finalize l = Array.of_list (List.sort compare l) in
  let succ = Array.map finalize (Array.map (fun x -> x) succ) in
  let pred = Array.map finalize (Array.map (fun x -> x) pred) in
  let topo = compute_topo n succ pred in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) topo;
  let level = compute_levels n topo pred in
  { n; edges; succ; pred; topo; pos; level }

let edge_id t ~src ~dst =
  if src < 0 || src >= t.n then None
  else
    Array.fold_left
      (fun acc (d, e) -> if d = dst then Some e else acc)
      None t.succ.(src)

let is_edge t ~src ~dst = edge_id t ~src ~dst <> None

let sources t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if in_degree t v = 0 then acc := v :: !acc
  done;
  !acc

let sinks t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if out_degree t v = 0 then acc := v :: !acc
  done;
  !acc

let topological_order t = Array.copy t.topo
let depth_levels t = Array.copy t.level

let depth t =
  if t.n = 0 then 0 else 1 + Array.fold_left max 0 t.level

let level_members t =
  let d = depth t in
  let counts = Array.make d 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) t.level;
  let members = Array.map (fun c -> Array.make c 0) counts in
  let cursor = Array.make d 0 in
  for v = 0 to t.n - 1 do
    let l = t.level.(v) in
    members.(l).(cursor.(l)) <- v;
    cursor.(l) <- cursor.(l) + 1
  done;
  members

let max_width t =
  if t.n = 0 then 0
  else begin
    let d = depth t in
    let counts = Array.make d 0 in
    Array.iter (fun l -> counts.(l) <- counts.(l) + 1) t.level;
    Array.fold_left max 0 counts
  end

let top_levels_into t ~node_weight ~edge_weight tl =
  if Array.length tl < t.n then
    invalid_arg "Dag.top_levels_into: buffer shorter than node count";
  Array.fill tl 0 t.n 0.;
  Array.iter
    (fun v ->
      Array.iter
        (fun (u, e) ->
          let via = tl.(u) +. node_weight u +. edge_weight e in
          if via > tl.(v) then tl.(v) <- via)
        t.pred.(v))
    t.topo

let top_levels t ~node_weight ~edge_weight =
  let tl = Array.make t.n 0. in
  top_levels_into t ~node_weight ~edge_weight tl;
  tl

let bottom_levels_into t ~node_weight ~edge_weight bl =
  if Array.length bl < t.n then
    invalid_arg "Dag.bottom_levels_into: buffer shorter than node count";
  for i = t.n - 1 downto 0 do
    let v = t.topo.(i) in
    let best = ref 0. in
    Array.iter
      (fun (w, e) ->
        let via = edge_weight e +. bl.(w) in
        if via > !best then best := via)
      t.succ.(v);
    bl.(v) <- node_weight v +. !best
  done

let bottom_levels t ~node_weight ~edge_weight =
  let bl = Array.make t.n 0. in
  bottom_levels_into t ~node_weight ~edge_weight bl;
  bl

(* Incremental repair after a single node weight changed. A node's
   level only moves when the changed node's own entry, or a
   successor/predecessor whose level already moved, feeds its max — so
   the repair recomputes exactly the nodes a [dirty] flag reaches,
   walking the cached topological order so every recomputation sees
   finalised inputs. Recomputed values use the same max-fold over the
   same operands as the full pass, and untouched nodes keep values
   computed from identical inputs, so the repaired array is
   bit-identical to a full recomputation. The [dirty] scratch must be
   all-zero on entry and is restored to all-zero (every flagged node is
   visited by the scan, which clears it). *)

let bottom_levels_update t ~node_weight ~edge_weight ~changed ~dirty bl =
  if Bytes.length dirty < t.n then
    invalid_arg "Dag.bottom_levels_update: dirty scratch shorter than nodes";
  let recompute v =
    let best = ref 0. in
    Array.iter
      (fun (w, e) ->
        let via = edge_weight e +. bl.(w) in
        if via > !best then best := via)
      t.succ.(v);
    node_weight v +. !best
  in
  let nv = recompute changed in
  if nv <> bl.(changed) then begin
    bl.(changed) <- nv;
    (* Predecessors all sit strictly before [changed] in topological
       order, so the scan starts just below it; an outstanding-mark
       count lets it stop as soon as the wave dies out, making the
       repair cost proportional to the affected cone's topo span. *)
    let pending = ref 0 in
    let mark u =
      if Bytes.unsafe_get dirty u = '\000' then begin
        Bytes.unsafe_set dirty u '\001';
        incr pending
      end
    in
    Array.iter (fun (u, _) -> mark u) t.pred.(changed);
    let i = ref (t.pos.(changed) - 1) in
    while !pending > 0 do
      let v = t.topo.(!i) in
      if Bytes.unsafe_get dirty v = '\001' then begin
        Bytes.unsafe_set dirty v '\000';
        decr pending;
        let nv = recompute v in
        if nv <> bl.(v) then begin
          bl.(v) <- nv;
          Array.iter (fun (u, _) -> mark u) t.pred.(v)
        end
      end;
      decr i
    done
  end

let top_levels_update t ~node_weight ~edge_weight ~changed ~dirty tl =
  if Bytes.length dirty < t.n then
    invalid_arg "Dag.top_levels_update: dirty scratch shorter than nodes";
  let recompute v =
    let best = ref 0. in
    Array.iter
      (fun (u, e) ->
        let via = tl.(u) +. node_weight u +. edge_weight e in
        if via > !best then best := via)
      t.pred.(v);
    !best
  in
  (* [changed]'s own top level excludes its weight, so repair starts at
     its successors (whose max folds read the changed weight), which
     all sit strictly after it in topological order. *)
  let pending = ref 0 in
  let mark s =
    if Bytes.unsafe_get dirty s = '\000' then begin
      Bytes.unsafe_set dirty s '\001';
      incr pending
    end
  in
  Array.iter (fun (s, _) -> mark s) t.succ.(changed);
  let i = ref (t.pos.(changed) + 1) in
  while !pending > 0 do
    let v = t.topo.(!i) in
    if Bytes.unsafe_get dirty v = '\001' then begin
      Bytes.unsafe_set dirty v '\000';
      decr pending;
      let nv = recompute v in
      if nv <> tl.(v) then begin
        tl.(v) <- nv;
        Array.iter (fun (s, _) -> mark s) t.succ.(v)
      end
    end;
    incr i
  done

let longest_path t ~node_weight ~edge_weight =
  if t.n = 0 then (0., [])
  else begin
    let bl = bottom_levels t ~node_weight ~edge_weight in
    let start = ref 0 in
    for v = 0 to t.n - 1 do
      if bl.(v) > bl.(!start) then start := v
    done;
    (* Follow the successor that realises the bottom level at each hop. *)
    let rec follow v acc =
      let next =
        Array.fold_left
          (fun best (w, e) ->
            let via = edge_weight e +. bl.(w) in
            match best with
            | Some (_, best_via) when best_via >= via -. 1e-12 -> best
            | _ -> Some (w, via))
          None t.succ.(v)
      in
      match next with
      | None -> List.rev (v :: acc)
      | Some (w, _) -> follow w (v :: acc)
    in
    (bl.(!start), follow !start [])
  end

let reachable_from t v =
  let seen = Array.make t.n false in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Array.iter (fun (w, _e) -> visit w) t.succ.(u)
    end
  in
  if v >= 0 && v < t.n then visit v;
  seen

let has_path t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then false
  else (reachable_from t src).(dst)

let map_nodes t ~f = Array.init t.n f

(* Reachability matrix as per-node boolean rows, computed in reverse
   topological order: row(v) = {v} ∪ ⋃ row(succ). O(V·E/word) via
   Bytes-backed rows would be possible; plain bool arrays are fine at
   the sizes this library targets. *)
let reachability_rows t =
  let rows = Array.init t.n (fun _ -> [||]) in
  for i = t.n - 1 downto 0 do
    let v = t.topo.(i) in
    let row = Array.make t.n false in
    row.(v) <- true;
    Array.iter
      (fun (w, _e) ->
        let rw = rows.(w) in
        for x = 0 to t.n - 1 do
          if rw.(x) then row.(x) <- true
        done)
      t.succ.(v);
    rows.(v) <- row
  done;
  rows

let transitive_closure t =
  let rows = reachability_rows t in
  let edges = ref [] in
  for u = 0 to t.n - 1 do
    for v = 0 to t.n - 1 do
      if u <> v && rows.(u).(v) then edges := (u, v) :: !edges
    done
  done;
  of_edges ~n:t.n !edges

let is_transitively_redundant t e =
  let u, v = t.edges.(e) in
  (* Redundant iff some direct successor of [u] other than [v] still
     reaches [v]. *)
  Array.exists
    (fun (w, e') -> e' <> e && w <> v && (reachable_from t w).(v))
    t.succ.(u)

let transitive_reduction t =
  let rows = reachability_rows t in
  let keep = ref [] in
  Array.iteri
    (fun e (u, v) ->
      let redundant =
        Array.exists
          (fun (w, e') -> e' <> e && w <> v && rows.(w).(v))
          t.succ.(u)
      in
      if not redundant then keep := (u, v) :: !keep)
    t.edges;
  of_edges ~n:t.n !keep

let to_dot ?(graph_name = "dag") ?node_label ?edge_label t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" graph_name);
  for v = 0 to t.n - 1 do
    let label =
      match node_label with
      | None -> string_of_int v
      | Some f -> f v
    in
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v label)
  done;
  Array.iteri
    (fun e (s, d) ->
      match edge_label with
      | None -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" s d)
      | Some f ->
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" s d (f e)))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
