(** Directed acyclic graphs over integer nodes.

    This is the structural layer under {!Mcs_ptg.Ptg}: nodes are
    [0 .. node_count - 1], edges carry an integer identifier so that
    clients can attach weights in parallel arrays. Graphs are immutable
    once built; {!of_edges} validates acyclicity. *)

type t

exception Cycle of int list
(** Raised by {!of_edges} with the offending cycle (node list). *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the DAG on nodes [0..n-1]. Duplicate edges
    are collapsed; self loops raise {!Cycle}.
    @raise Cycle if the edge set contains a directed cycle.
    @raise Invalid_argument on out-of-range endpoints or [n < 0]. *)

val node_count : t -> int
val edge_count : t -> int

val edge : t -> int -> int * int
(** [edge t e] is the [(src, dst)] pair of edge id [e]. *)

val edge_id : t -> src:int -> dst:int -> int option
(** Identifier of the edge [src -> dst], if present. *)

val succs : t -> int -> (int * int) array
(** [succs t v] is the [(dst, edge_id)] pairs leaving [v]. Do not mutate. *)

val preds : t -> int -> (int * int) array
(** [preds t v] is the [(src, edge_id)] pairs entering [v]. Do not mutate. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val sources : t -> int list
(** Nodes with no predecessor, ascending. *)

val sinks : t -> int list
(** Nodes with no successor, ascending. *)

val topological_order : t -> int array
(** A topological order of all nodes (deterministic: Kahn's algorithm
    with a min-ordered frontier). *)

val depth_levels : t -> int array
(** Precedence level of each node: sources are at level 0 and
    [level v = 1 + max (level pred)] — the paper's precedence levels. *)

val level_members : t -> int array array
(** [level_members t].(l) lists the nodes whose {!depth_levels} is [l]. *)

val depth : t -> int
(** Number of distinct precedence levels ([0] for the empty graph). *)

val max_width : t -> int
(** Size of the largest precedence level ([0] for the empty graph). *)

val longest_path :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  float * int list
(** [longest_path t ~node_weight ~edge_weight] is the length and node
    sequence of a longest (critical) path, where path length is the sum
    of node weights plus connecting edge weights. Returns [(0., [])] on
    the empty graph. *)

val top_levels :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  float array
(** [top_levels].(v): longest path length from any source up to but
    excluding [v] (0 for sources). *)

val top_levels_into :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  float array -> unit
(** Same as {!top_levels} but writing into a caller-owned buffer of at
    least [node_count] entries (only the first [node_count] are
    touched) — the allocation-free variant used by the reusable
    allocator scratch ({!Mcs_sched.Alloc_arena} in the scheduler).
    @raise Invalid_argument if the buffer is shorter than the graph. *)

val bottom_levels :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  float array
(** [bottom_levels].(v): longest path length from [v] (inclusive) to any
    sink — the list-scheduling priority used by the mapper. *)

val bottom_levels_into :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  float array -> unit
(** Same as {!bottom_levels} but writing into a caller-owned buffer of
    at least [node_count] entries (only the first [node_count] are
    touched).
    @raise Invalid_argument if the buffer is shorter than the graph. *)

val bottom_levels_update :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  changed:int -> dirty:Bytes.t -> float array -> unit
(** [bottom_levels_update t ~node_weight ~edge_weight ~changed ~dirty bl]
    repairs a {!bottom_levels_into} result in place after the weight of
    the single node [changed] moved, recomputing only the nodes whose
    max actually changes (the changed node, then transitively the
    predecessors its movement reaches). The result is bit-identical to
    a full recomputation: repaired nodes apply the same max-fold to the
    same operands, and untouched nodes keep values computed from
    unchanged inputs. [dirty] is caller-owned scratch of at least
    [node_count] bytes, all-zero on entry and restored to all-zero on
    return. This is what makes the SCRAP increment loop cheap: each
    +1-processor step changes one execution time, so levels are
    repaired along the affected cone instead of re-traversing the DAG.
    @raise Invalid_argument if [dirty] is shorter than the graph. *)

val top_levels_update :
  t -> node_weight:(int -> float) -> edge_weight:(int -> float) ->
  changed:int -> dirty:Bytes.t -> float array -> unit
(** Dual of {!bottom_levels_update} for {!top_levels_into} buffers:
    repair starts at the successors of [changed] (a node's top level
    excludes its own weight) and propagates forward.
    @raise Invalid_argument if [dirty] is shorter than the graph. *)

val reachable_from : t -> int -> bool array
(** Nodes reachable from the given node (inclusive). *)

val is_edge : t -> src:int -> dst:int -> bool

val has_path : t -> src:int -> dst:int -> bool
(** True when a directed path (possibly empty) links [src] to [dst]. *)

val map_nodes : t -> f:(int -> 'a) -> 'a array
(** Convenience: array of [f v] for each node. *)

val transitive_closure : t -> t
(** DAG with an edge [u -> v] for every non-trivial path of [t]. Edge
    identifiers are renumbered. *)

val transitive_reduction : t -> t
(** Smallest sub-DAG with the same reachability: edges implied by a
    longer path are removed (unique for DAGs). Edge identifiers are
    renumbered. *)

val is_transitively_redundant : t -> int -> bool
(** Whether edge [e] is implied by a longer path from its source to its
    destination. *)

val to_dot :
  ?graph_name:string ->
  ?node_label:(int -> string) ->
  ?edge_label:(int -> string) ->
  t -> string
(** Graphviz rendering, for the [mcs_gen] tool and debugging. *)
