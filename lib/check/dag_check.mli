(** DAG well-formedness rules (DAG001–DAG004).

    In-memory {!Mcs_ptg.Ptg.t} values already enforce most of these by
    construction ({!Mcs_dag.Dag.of_edges} rejects cycles,
    {!Mcs_ptg.Ptg.create} demands one source and one sink), so on live
    pipelines these checks are cheap re-assertions; their real weight is
    on reconstructed graphs parsed back from traces, where nothing is
    guaranteed. *)

val check_ptg : emit:(Diagnostic.t -> unit) -> ?app:int -> Mcs_ptg.Ptg.t -> unit
(** Run DAG002 (single entry/exit), DAG003 (edges descend levels) and
    DAG004 (finite, non-negative edge bytes) over one PTG. DAG001 is
    implied: a {!Mcs_dag.Dag.t} cannot hold a cycle. *)

val check_edges :
  emit:(Diagnostic.t -> unit) ->
  ?app:int ->
  n:int ->
  (int * int * float) list ->
  Mcs_dag.Dag.t option
(** Validate a raw edge list [(src, dst, bytes)] on nodes [0..n-1] —
    the trace-lint path. Emits DAG001 on a cycle or self-loop, DAG004 on
    a bad byte volume, and returns the rebuilt DAG when acyclic (so the
    caller can run level-based allocation rules on it). *)
