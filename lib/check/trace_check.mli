(** Offline linting of exported traces ({!Mcs_sched.Trace.doc}) — the
    engine behind the [mcs_check] executable.

    A trace carries less than a live pipeline, so the rule set adapts
    to what the file actually contains:

    - structural, virtual-task, overlap and release rules always run;
    - DAG rules and the precedence rule need the per-task [preds] that
      {!Mcs_sched.Trace.to_json} embeds (CSV traces have none);
      DAG002 (single entry/exit) is skipped — a trace legitimately
      lists only the placements it has;
    - cluster-membership, redistribution-aware precedence and packing
      bounds need a [platform] (the [--site] option of the CLI);
      without one, precedence degrades to the zero-cost bound
      [finish(pred) ≤ start];
    - β range and pinned-stability rules fire when the trace carries
      the corresponding metadata; Σβ ≤ 1 is a {e warning} here because
      the strategy (Selfish allows Σβ > 1) is not recorded;
    - the SCRAP-MAX level rule (ALLOC002) runs only when platform, β,
      allocation and [preds] are all available — attaching full
      metadata to a trace is a claim of SCRAP-MAX compliance. *)

val lint :
  ?platform:Mcs_platform.Platform.t ->
  Mcs_sched.Trace.doc ->
  Diagnostic.t list
