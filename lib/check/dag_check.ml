module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg

let bad_bytes b = (not (Float.is_finite b)) || b < 0.

let check_ptg ~emit ?app ptg =
  let dag = ptg.Ptg.dag in
  (match Dag.sources dag with
  | [ _ ] -> ()
  | sources ->
    emit
      (Diagnostic.error ?app Rule.Dag_entry_exit "%d entry nodes, expected 1"
         (List.length sources)));
  (match Dag.sinks dag with
  | [ _ ] -> ()
  | sinks ->
    emit
      (Diagnostic.error ?app Rule.Dag_entry_exit "%d exit nodes, expected 1"
         (List.length sinks)));
  let levels = Dag.depth_levels dag in
  for e = 0 to Dag.edge_count dag - 1 do
    let src, dst = Dag.edge dag e in
    if levels.(dst) <= levels.(src) then
      emit
        (Diagnostic.error ?app ~node:dst Rule.Dag_level_order
           "edge %d->%d links level %d to level %d" src dst levels.(src)
           levels.(dst));
    let b = ptg.Ptg.edge_bytes.(e) in
    if bad_bytes b then
      emit
        (Diagnostic.error ?app ~node:dst Rule.Dag_edge_bytes
           "edge %d->%d carries %g bytes" src dst b)
  done

let check_edges ~emit ?app ~n edges =
  let ok = ref true in
  List.iter
    (fun (src, dst, bytes) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then begin
        ok := false;
        emit
          (Diagnostic.error ?app Rule.Dag_acyclic
             "edge %d->%d references a node outside 0..%d" src dst (n - 1))
      end;
      if bad_bytes bytes then
        emit
          (Diagnostic.error ?app ~node:dst Rule.Dag_edge_bytes
             "edge %d->%d carries %g bytes" src dst bytes))
    edges;
  if not !ok then None
  else
    match Dag.of_edges ~n (List.map (fun (s, d, _) -> (s, d)) edges) with
    | dag -> Some dag
    | exception Dag.Cycle cycle ->
      emit
        (Diagnostic.error ?app Rule.Dag_acyclic
           "precedence cycle through nodes %s"
           (String.concat "->" (List.map string_of_int cycle)));
      None
