module P = Mcs_platform.Platform
module Ptg = Mcs_ptg.Ptg
module Task = Mcs_taskmodel.Task
module Timeline = Mcs_util.Timeline
open Mcs_util.Floatx

type outcome = Completed | Killed | Failed | Resized

type execution = {
  app : int;
  node : int;
  cluster : int;
  procs : int array;
  start : float;
  finish : float;
  outcome : outcome;
}

let outcome_name = function
  | Completed -> "completed"
  | Killed -> "killed"
  | Failed -> "failed"
  | Resized -> "resized"

(* FAULT001 through the reservation machinery: down intervals become
   reservations, an attempt is legal iff every one of its processors is
   "free" (i.e. up) for its whole duration. A kill truncated exactly at
   [down_at] touches the reservation without overlapping it, which
   [Timeline.is_free]'s epsilon already treats as free. *)
let check_down_overlap ~emit ~down platform execs =
  let total = P.total_procs platform in
  if Array.length down <> total then
    invalid_arg "Fault_check.check: down length differs from platform";
  let tl = Timeline.create ~procs:total in
  Array.iteri
    (fun p intervals ->
      List.iter
        (fun (d, u) -> Timeline.reserve tl ~proc:p ~start:d ~finish:u)
        intervals)
    down;
  List.iter
    (fun e ->
      Array.iter
        (fun p ->
          if p < 0 || p >= total then
            emit
              (Diagnostic.error ~app:e.app ~node:e.node
                 Rule.Fault_down_overlap "processor %d out of range" p)
          else if not (Timeline.is_free tl ~proc:p ~start:e.start ~finish:e.finish)
          then
            emit
              (Diagnostic.error ~app:e.app ~node:e.node ~proc:p
                 ~window:(e.start, e.finish) Rule.Fault_down_overlap
                 "%s attempt runs on processor %d during one of its down \
                  intervals"
                 (outcome_name e.outcome) p))
        e.procs)
    execs

(* Iterate applications × nodes (not the hash table) so diagnostics come
   out in a deterministic order. *)
let check_retry_bound ~emit ~max_retries ~ptgs per_task =
  Array.iteri
    (fun app ptg ->
      for node = 0 to Mcs_dag.Dag.node_count ptg.Ptg.dag - 1 do
        match Hashtbl.find_opt per_task (app, node) with
        | None -> ()
        | Some attempts ->
          let failures =
            List.length (List.filter (fun e -> e.outcome = Failed) attempts)
          in
          if failures > max_retries then
            emit
              (Diagnostic.error ~app ~node Rule.Fault_retry_bound
                 "%d transient failures exceed the retry bound of %d" failures
                 max_retries)
      done)
    ptgs

let check_conservation ~emit platform ~ptgs per_task =
  Array.iteri
    (fun app ptg ->
      let n = Mcs_dag.Dag.node_count ptg.Ptg.dag in
      for node = 0 to n - 1 do
        if not (Ptg.is_virtual ptg node) then begin
          let attempts =
            match Hashtbl.find_opt per_task (app, node) with
            | Some l ->
              List.sort
                (fun a b ->
                  let c = Float.compare a.start b.start in
                  if c <> 0 then c else Float.compare a.finish b.finish)
                l
            | None -> []
          in
          let completed =
            List.filter (fun e -> e.outcome = Completed) attempts
          in
          (match (completed, attempts) with
          | [], _ ->
            emit
              (Diagnostic.error ~app ~node Rule.Fault_conservation
                 "task never completed (%d attempt%s recorded)"
                 (List.length attempts)
                 (if List.length attempts = 1 then "" else "s"))
          | [ c ], _ :: _ ->
            let last = List.nth attempts (List.length attempts - 1) in
            if last != c then
              emit
                (Diagnostic.error ~app ~node ~window:(c.start, c.finish)
                   Rule.Fault_conservation
                   "completion at %g..%g is not the chronologically last \
                    attempt"
                   c.start c.finish)
          | _ :: _ :: _, _ ->
            emit
              (Diagnostic.error ~app ~node Rule.Fault_conservation
                 "task completed %d times" (List.length completed))
          | [ _ ], [] -> assert false);
          (* A resize chain deliberately splits one attempt into
             segments that each pay a partial duration plus the
             redistribution overhead: the exact accounting lives in
             MAL002 (Mal_check), so the per-segment duration checks
             below would all fire spuriously — skip them for any task
             that recorded a resize. *)
          let resized = List.exists (fun e -> e.outcome = Resized) attempts in
          if not resized then
          List.iter
            (fun e ->
              if e.cluster < 0 || e.cluster >= P.cluster_count platform then
                emit
                  (Diagnostic.error ~app ~node Rule.Fault_conservation
                     "cluster %d out of range" e.cluster)
              else begin
                let c = P.cluster platform e.cluster in
                let full =
                  Task.time ptg.Ptg.tasks.(node) ~gflops:c.P.gflops
                    ~procs:(max 1 (Array.length e.procs))
                in
                let dur = e.finish -. e.start in
                match e.outcome with
                | Completed | Failed ->
                  (* Tolerance matched to the simulator's fluid model:
                     durations are exact up to float noise. *)
                  if not (approx_eq ~tol:1e-6 dur full) then
                    emit
                      (Diagnostic.error ~app ~node ~window:(e.start, e.finish)
                         Rule.Fault_conservation
                         "%s attempt lasts %g, expected the full execution \
                          time %g"
                         (outcome_name e.outcome) dur full)
                | Killed ->
                  if dur >. full +. 1e-6 then
                    emit
                      (Diagnostic.error ~app ~node ~window:(e.start, e.finish)
                         Rule.Fault_conservation
                         "killed attempt lasts %g, longer than the full \
                          execution time %g"
                         dur full)
                | Resized -> ()
              end)
            attempts
        end
      done)
    ptgs

let check ~max_retries ~down platform ~ptgs execs =
  if max_retries < 0 then
    invalid_arg "Fault_check.check: negative max_retries";
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let napps = Array.length ptgs in
  List.iter
    (fun e ->
      if e.app < 0 || e.app >= napps then
        emit
          (Diagnostic.error ~node:e.node Rule.Fault_conservation
             "execution references unknown application %d" e.app))
    execs;
  let execs = List.filter (fun e -> e.app >= 0 && e.app < napps) execs in
  let per_task = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.app, e.node) in
      let prev =
        match Hashtbl.find_opt per_task key with Some l -> l | None -> []
      in
      Hashtbl.replace per_task key (e :: prev))
    execs;
  check_down_overlap ~emit ~down platform execs;
  check_retry_bound ~emit ~max_retries ~ptgs per_task;
  check_conservation ~emit platform ~ptgs per_task;
  Diagnostic.sort (List.rev !diags)
