(** The invariant rule set.

    Every property the analyzer can verify about a scheduling artifact
    has a stable identifier here, so diagnostics are machine-matchable
    (tests assert on rule ids, CI greps for codes) and the documentation
    can cite the paper clause each rule enforces. The registry is the
    single source of truth: [mcs_check --rules] prints it, DESIGN.md
    mirrors it. *)

type t =
  (* DAG well-formedness *)
  | Dag_acyclic        (** precedence graph has no directed cycle *)
  | Dag_entry_exit     (** exactly one entry and one exit node *)
  | Dag_level_order    (** every edge goes to a strictly deeper level *)
  | Dag_edge_bytes     (** data volumes are finite and non-negative *)
  (* Allocation legality *)
  | Alloc_bounds       (** 1 ≤ p_v ≤ largest allocation fitting a cluster *)
  | Alloc_level_share  (** SCRAP-MAX per-level budget (Eq. 2 share) *)
  | Beta_range         (** 0 < β ≤ 1 *)
  | Beta_share_sum     (** Σ β_i ≤ 1 for the sharing strategies *)
  (* Mapping soundness *)
  | Map_structure      (** placement labels, finite times, makespan *)
  | Map_virtual        (** virtual ⇔ no processors and zero duration *)
  | Map_cluster        (** processor sets live inside one real cluster *)
  | Map_overlap        (** no processor runs two placements at once *)
  | Map_precedence     (** finish(pred) + redistribution ≤ start *)
  | Map_packing        (** packing only ever shrank an allocation *)
  | Map_release        (** no task starts before its submission *)
  (* Online-specific *)
  | Online_pin_stability  (** pinned placements never move *)
  | Online_beta_active    (** β computed over the active set only *)
  | Online_time_travel    (** reschedules never touch the past *)
  (* Fault model *)
  | Fault_down_overlap    (** no execution overlaps a down interval *)
  | Fault_retry_bound     (** transient failures ≤ policy max-retries *)
  | Fault_conservation    (** lost work is re-executed, never dropped *)
  (* Malleable execution *)
  | Mal_width_bounds      (** resized widths within [min, max], real change *)
  | Mal_cost_accounting   (** overhead = cost × moved; chains sum to 1 task *)
  | Mal_overlap           (** resize re-placements stay conflict-free *)

val id : t -> string
(** Stable kebab-case identifier, e.g. ["map-overlap"]. *)

val code : t -> string
(** Short grouped code, e.g. ["MAP004"]. *)

val of_id : string -> t option
(** Inverse of {!id}. *)

val describe : t -> string
(** One-line statement of the invariant. *)

val paper_ref : t -> string
(** The paper clause (section/equation) that justifies the rule. *)

val all : t list
(** Every rule, in registry order. *)
