(** The invariant analyzer's front door.

    [analyze] verifies a set of concurrent schedules — plus whatever
    allocation context the caller can supply — against the full rule
    registry ({!Rule.all}) and returns structured diagnostics. It is
    pure: no printing, no exit codes. {!fail_on_error} and
    {!pipeline_hook} adapt it to callers that want failure to be loud
    (the experiment runner, debug modes of the CLIs); {!lint_trace}
    adapts it to parsed trace files ([mcs_check]). *)

exception Violation of Diagnostic.t list
(** Raised by {!fail_on_error}; carries the error subset. *)

val analyze :
  ?strategy:Mcs_sched.Strategy.t ->
  ?procedure:Mcs_sched.Allocation.procedure ->
  ?betas:float array ->
  ?allocations:int array array ->
  ?release:float array ->
  ?pinned:Mcs_sched.Schedule.placement option array array ->
  Mcs_platform.Platform.t ->
  Mcs_sched.Schedule.t list ->
  Diagnostic.t list
(** Verify schedules (in list order; diagnostics index into it).
    Always runs: DAG rules over each PTG, placement structure, virtual
    tasks, cluster membership, the overlap sweep, precedence with
    redistribution lower bounds, release dates. With [betas]: β range,
    and — unless [strategy] is [Selfish] or unknown — Σβ ≤ 1. With
    [allocations] (reference processors per node, one array per
    application): allocation bounds, packing, and — when [betas] are
    also present and [procedure] is [Scrap_max] (the default) — the
    per-level SCRAP-MAX budget. [pinned] exempts frozen placements from
    the packing rule, as in partial reschedules.
    @raise Invalid_argument when an optional array's length differs
    from the number of schedules. *)

val analyze_prepared :
  ?strategy:Mcs_sched.Strategy.t ->
  ?procedure:Mcs_sched.Allocation.procedure ->
  ?release:float array ->
  Mcs_sched.Pipeline.prepared ->
  Mcs_platform.Platform.t ->
  Mcs_sched.Schedule.t list ->
  Diagnostic.t list
(** {!analyze} with β and allocations taken from a
    {!Mcs_sched.Pipeline.prepared} value. *)

val lint_trace :
  ?platform:Mcs_platform.Platform.t ->
  Mcs_sched.Trace.doc ->
  Diagnostic.t list
(** Offline linting of a parsed trace — see {!Trace_check.lint}. *)

val fail_on_error : Diagnostic.t list -> unit
(** @raise Violation when the list contains at least one error. *)

val pipeline_hook :
  ?procedure:Mcs_sched.Allocation.procedure ->
  ?release:float array ->
  strategy:Mcs_sched.Strategy.t ->
  Mcs_platform.Platform.t ->
  prepared:Mcs_sched.Pipeline.prepared ->
  Mcs_sched.Schedule.t list ->
  unit
(** Ready-made argument for {!Mcs_sched.Pipeline.schedule_concurrent}'s
    [?check] parameter: analyzes every batch it schedules and raises
    {!Violation} on errors. Partial application fixes everything up to
    [~prepared]. *)
