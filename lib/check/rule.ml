type t =
  | Dag_acyclic
  | Dag_entry_exit
  | Dag_level_order
  | Dag_edge_bytes
  | Alloc_bounds
  | Alloc_level_share
  | Beta_range
  | Beta_share_sum
  | Map_structure
  | Map_virtual
  | Map_cluster
  | Map_overlap
  | Map_precedence
  | Map_packing
  | Map_release
  | Online_pin_stability
  | Online_beta_active
  | Online_time_travel
  | Fault_down_overlap
  | Fault_retry_bound
  | Fault_conservation
  | Mal_width_bounds
  | Mal_cost_accounting
  | Mal_overlap

let all =
  [
    Dag_acyclic;
    Dag_entry_exit;
    Dag_level_order;
    Dag_edge_bytes;
    Alloc_bounds;
    Alloc_level_share;
    Beta_range;
    Beta_share_sum;
    Map_structure;
    Map_virtual;
    Map_cluster;
    Map_overlap;
    Map_precedence;
    Map_packing;
    Map_release;
    Online_pin_stability;
    Online_beta_active;
    Online_time_travel;
    Fault_down_overlap;
    Fault_retry_bound;
    Fault_conservation;
    Mal_width_bounds;
    Mal_cost_accounting;
    Mal_overlap;
  ]

let id = function
  | Dag_acyclic -> "dag-acyclic"
  | Dag_entry_exit -> "dag-entry-exit"
  | Dag_level_order -> "dag-level-order"
  | Dag_edge_bytes -> "dag-edge-bytes"
  | Alloc_bounds -> "alloc-bounds"
  | Alloc_level_share -> "alloc-level-share"
  | Beta_range -> "beta-range"
  | Beta_share_sum -> "beta-share-sum"
  | Map_structure -> "map-structure"
  | Map_virtual -> "map-virtual"
  | Map_cluster -> "map-cluster"
  | Map_overlap -> "map-overlap"
  | Map_precedence -> "map-precedence"
  | Map_packing -> "map-packing"
  | Map_release -> "map-release"
  | Online_pin_stability -> "online-pin-stability"
  | Online_beta_active -> "online-beta-active"
  | Online_time_travel -> "online-time-travel"
  | Fault_down_overlap -> "fault-down-overlap"
  | Fault_retry_bound -> "fault-retry-bound"
  | Fault_conservation -> "fault-conservation"
  | Mal_width_bounds -> "mal-width-bounds"
  | Mal_cost_accounting -> "mal-cost-accounting"
  | Mal_overlap -> "mal-overlap"

let code = function
  | Dag_acyclic -> "DAG001"
  | Dag_entry_exit -> "DAG002"
  | Dag_level_order -> "DAG003"
  | Dag_edge_bytes -> "DAG004"
  | Alloc_bounds -> "ALLOC001"
  | Alloc_level_share -> "ALLOC002"
  | Beta_range -> "ALLOC003"
  | Beta_share_sum -> "ALLOC004"
  | Map_structure -> "MAP001"
  | Map_virtual -> "MAP002"
  | Map_cluster -> "MAP003"
  | Map_overlap -> "MAP004"
  | Map_precedence -> "MAP005"
  | Map_packing -> "MAP006"
  | Map_release -> "MAP007"
  | Online_pin_stability -> "ON001"
  | Online_beta_active -> "ON002"
  | Online_time_travel -> "ON003"
  | Fault_down_overlap -> "FAULT001"
  | Fault_retry_bound -> "FAULT002"
  | Fault_conservation -> "FAULT003"
  | Mal_width_bounds -> "MAL001"
  | Mal_cost_accounting -> "MAL002"
  | Mal_overlap -> "MAL003"

let of_id s = List.find_opt (fun r -> id r = s) all

let describe = function
  | Dag_acyclic -> "the precedence graph has no directed cycle"
  | Dag_entry_exit -> "the PTG has exactly one entry and one exit node"
  | Dag_level_order ->
    "every edge links a node to one at a strictly deeper precedence level"
  | Dag_edge_bytes -> "every edge's data volume is finite and non-negative"
  | Alloc_bounds ->
    "every real task holds between 1 reference processor and the largest \
     allocation that fits in a cluster"
  | Alloc_level_share ->
    "per precedence level, allocated processors stay within \
     max(level population, floor(beta x reference procs))"
  | Beta_range -> "every resource constraint beta lies in (0, 1]"
  | Beta_share_sum ->
    "under a sharing strategy the beta shares sum to at most 1"
  | Map_structure ->
    "placements are labeled by their node, times are finite and ordered, \
     the makespan is the exit finish time"
  | Map_virtual ->
    "virtual entry/exit tasks hold no processor and take no time; real \
     tasks hold at least one processor"
  | Map_cluster ->
    "a task's processors are distinct, in range, and all inside its \
     declared cluster"
  | Map_overlap -> "no processor runs two placements at overlapping times"
  | Map_precedence ->
    "a task starts only after every predecessor's finish plus the \
     redistribution of its data"
  | Map_packing ->
    "mapping never enlarged an allocation: the processors used are at \
     most the translated reference allocation"
  | Map_release -> "no placement starts before its application's submission"
  | Online_pin_stability ->
    "a started (pinned) task keeps cluster, processors and times across \
     every reschedule"
  | Online_beta_active ->
    "beta is recomputed over exactly the currently active applications"
  | Online_time_travel ->
    "a reschedule maps no task before the current virtual time and never \
     touches a not-yet-arrived application"
  | Fault_down_overlap ->
    "no execution attempt overlaps a down interval of any of its \
     processors (a kill truncates the attempt at the failure instant)"
  | Fault_retry_bound ->
    "no task suffers more transient failures than the retry policy allows"
  | Fault_conservation ->
    "work is conserved across re-executions: every real task completes \
     exactly once, as its chronologically last attempt, every completed \
     or transiently-failed attempt pays the full execution time, and a \
     killed attempt never exceeds it"
  | Mal_width_bounds ->
    "every resized segment stays within the malleability width bounds, \
     actually changes width, and stays inside its cluster"
  | Mal_cost_accounting ->
    "resize overhead is charged per moved processor and the segments of \
     a resize chain sum to exactly one task's worth of work"
  | Mal_overlap ->
    "no processor runs two execution segments at overlapping times, \
     resized re-placements included"

let paper_ref = function
  | Dag_acyclic -> "Section 2 (PTG model: application = DAG)"
  | Dag_entry_exit -> "Section 2 (single entry and exit task)"
  | Dag_level_order -> "Section 4 (precedence levels)"
  | Dag_edge_bytes -> "Section 2 (data volumes on edges)"
  | Alloc_bounds -> "Section 3 (HCPA reference cluster, one-cluster tasks)"
  | Alloc_level_share -> "Section 4, Eq. 2 (SCRAP-MAX per-level constraint)"
  | Beta_range -> "Section 6 (beta is a share of the platform power)"
  | Beta_share_sum -> "Section 6, Eqs. 1-2 (ES/PS/WPS shares sum to 1)"
  | Map_structure -> "Section 5 (schedule = placement per task)"
  | Map_virtual -> "Section 2 (zero-cost virtual entry/exit tasks)"
  | Map_cluster -> "Section 2 (data-parallel tasks run inside one cluster)"
  | Map_overlap -> "Section 5 (processor availability in the list mapping)"
  | Map_precedence -> "Section 5 (data-ready times with redistribution costs)"
  | Map_packing -> "Section 5 (allocation packing only shrinks)"
  | Map_release -> "Section 8 (submission dates, online extension)"
  | Online_pin_stability -> "Section 8 (running tasks cannot be revoked)"
  | Online_beta_active ->
    "Section 8 (an online scheduler cannot know future submissions)"
  | Online_time_travel -> "Section 8 (reschedules act on the future only)"
  | Fault_down_overlap ->
    "extension: fault model (dead processors execute nothing)"
  | Fault_retry_bound -> "extension: fault model (bounded retry policy)"
  | Fault_conservation ->
    "extension: fault model (lost work is re-executed, never dropped)"
  | Mal_width_bounds ->
    "extension: malleable tasks (Guermouche et al., legal widths)"
  | Mal_cost_accounting ->
    "extension: malleable tasks (redistribution cost per moved processor)"
  | Mal_overlap ->
    "extension: malleable tasks (resize re-placement stays conflict-free)"
