module Trace = Mcs_sched.Trace
module P = Mcs_platform.Platform
module Redistribution = Mcs_taskmodel.Redistribution
module Reference_cluster = Mcs_sched.Reference_cluster
module Allocation = Mcs_sched.Allocation
open Mcs_util.Floatx

(* A trace identifies applications by their exported id, not by list
   position, so every diagnostic uses [a.Trace.app]. *)

let row_map ~emit ~app (rows : Trace.row array) =
  let tbl = Hashtbl.create (Array.length rows) in
  Array.iter
    (fun (r : Trace.row) ->
      if Hashtbl.mem tbl r.Trace.node then
        emit
          (Diagnostic.error ~app ~node:r.Trace.node Rule.Map_structure
             "node appears in two rows")
      else Hashtbl.add tbl r.Trace.node r)
    rows;
  tbl

let check_row ~emit ~app ?platform ~release (r : Trace.row) =
  let { Trace.node; virt; cluster; procs; start; finish; preds = _ } = r in
  if not (Float.is_finite start && Float.is_finite finish) then
    emit
      (Diagnostic.error ~app ~node Rule.Map_structure
         "non-finite times %g..%g" start finish)
  else if not (finish >=. start) then
    emit
      (Diagnostic.error ~app ~node ~window:(start, finish) Rule.Map_structure
         "finishes at %g before starting at %g" finish start);
  if virt then begin
    if Array.length procs > 0 then
      emit
        (Diagnostic.error ~app ~node Rule.Map_virtual
           "virtual task holds %d processors" (Array.length procs));
    if Float.is_finite start && Float.is_finite finish
       && not (approx_eq start finish)
    then
      emit
        (Diagnostic.error ~app ~node ~window:(start, finish) Rule.Map_virtual
           "virtual task takes %g seconds" (finish -. start))
  end
  else if Array.length procs = 0 then
    emit (Diagnostic.error ~app ~node Rule.Map_virtual "real task holds no processor")
  else begin
    let sorted = Array.copy procs in
    Array.sort compare sorted;
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) = sorted.(i - 1) then
        emit
          (Diagnostic.error ~app ~node ~proc:sorted.(i) Rule.Map_cluster
             "processor listed twice")
    done;
    match platform with
    | None ->
      Array.iter
        (fun p ->
          if p < 0 then
            emit
              (Diagnostic.error ~app ~node ~proc:p Rule.Map_cluster
                 "negative processor id"))
        procs
    | Some pf ->
      if cluster < 0 || cluster >= P.cluster_count pf then
        emit
          (Diagnostic.error ~app ~node Rule.Map_cluster
             "cluster %d does not exist on %s" cluster (P.name pf))
      else
        Array.iter
          (fun p ->
            if p < 0 || p >= P.total_procs pf then
              emit
                (Diagnostic.error ~app ~node ~proc:p Rule.Map_cluster
                   "processor id outside 0..%d" (P.total_procs pf - 1))
            else if P.cluster_of_proc pf p <> cluster then
              emit
                (Diagnostic.error ~app ~node ~proc:p Rule.Map_cluster
                   "processor belongs to cluster %d, task is on %d"
                   (P.cluster_of_proc pf p) cluster))
          procs
  end;
  if Float.is_finite start && not (start >=. release) then
    emit
      (Diagnostic.error ~app ~node ~window:(release, start) Rule.Map_release
         "starts at %g before the release at %g" start release)

let precedence_cost ?platform (ru : Trace.row) (rv : Trace.row) ~bytes =
  if bytes <= 0. || ru.Trace.virt || rv.Trace.virt then 0.
  else
    match platform with
    | None -> 0.
    | Some pf ->
      if
        ru.Trace.cluster = rv.Trace.cluster
        && Redistribution.same_procs ru.Trace.procs rv.Trace.procs
      then 0.
      else if
        ru.Trace.cluster < 0
        || ru.Trace.cluster >= P.cluster_count pf
        || rv.Trace.cluster < 0
        || rv.Trace.cluster >= P.cluster_count pf
      then 0. (* Map_cluster already fired; avoid a cascade *)
      else
        Redistribution.transfer_time pf ~src_cluster:ru.Trace.cluster
          ~dst_cluster:rv.Trace.cluster
          ~src_procs:(max 1 (Array.length ru.Trace.procs))
          ~dst_procs:(max 1 (Array.length rv.Trace.procs))
          ~bytes

let check_app ~emit ?platform ?ref_cluster (a : Trace.app) =
  let app = a.Trace.app in
  let rows = a.Trace.rows in
  let tbl = row_map ~emit ~app rows in
  Array.iter (check_row ~emit ~app ?platform ~release:a.Trace.release) rows;
  (* MAP001: the recorded makespan is the last finish. *)
  (match a.Trace.makespan with
  | Some m when Array.length rows > 0 ->
    let last =
      Array.fold_left
        (fun acc (r : Trace.row) -> Float.max acc r.Trace.finish)
        neg_infinity rows
    in
    if Float.is_finite last && not (approx_eq m last) then
      emit
        (Diagnostic.error ~app Rule.Map_structure
           "makespan %g differs from the last finish %g" m last)
  | _ -> ());
  (* Rebuild the DAG from the embedded predecessor lists (JSON traces). *)
  let n =
    Array.fold_left
      (fun acc (r : Trace.row) ->
        Array.fold_left
          (fun acc (p : Trace.pred) -> max acc p.Trace.pred_node)
          (max acc r.Trace.node) r.Trace.preds)
      (-1) rows
    + 1
  in
  let edges =
    Array.to_list rows
    |> List.concat_map (fun (r : Trace.row) ->
           Array.to_list r.Trace.preds
           |> List.map (fun (p : Trace.pred) ->
                  (p.Trace.pred_node, r.Trace.node, p.Trace.bytes)))
  in
  let dag =
    if edges = [] then None else Dag_check.check_edges ~emit ~app ~n edges
  in
  (* MAP005 with whatever cost model the inputs allow. *)
  Array.iter
    (fun (rv : Trace.row) ->
      Array.iter
        (fun (p : Trace.pred) ->
          match Hashtbl.find_opt tbl p.Trace.pred_node with
          | None ->
            emit
              (Diagnostic.error ~app ~node:rv.Trace.node Rule.Map_structure
                 "predecessor %d has no row" p.Trace.pred_node)
          | Some ru ->
            let cost = precedence_cost ?platform ru rv ~bytes:p.Trace.bytes in
            let ready = ru.Trace.finish +. cost in
            if
              Float.is_finite rv.Trace.start
              && Float.is_finite ready
              && not (rv.Trace.start >=. ready)
            then
              emit
                (Diagnostic.error ~app ~node:rv.Trace.node
                   ~window:(rv.Trace.start, ready) Rule.Map_precedence
                   "starts at %g but predecessor %d finishes at %g (+%g \
                    redistribution)"
                   rv.Trace.start p.Trace.pred_node ru.Trace.finish cost))
        rv.Trace.preds)
    rows;
  (* β and allocation metadata, when the trace carries them. *)
  Option.iter (fun beta -> Alloc_check.check_beta ~emit ~app beta) a.Trace.beta;
  let is_virtual v =
    match Hashtbl.find_opt tbl v with
    | Some (r : Trace.row) -> r.Trace.virt
    | None -> false
  in
  (match (a.Trace.alloc, platform, ref_cluster) with
  | Some alloc, Some pf, Some rc ->
    if Array.length alloc <> n then
      emit
        (Diagnostic.error ~app Rule.Alloc_bounds
           "alloc metadata has %d entries for %d nodes" (Array.length alloc)
           n)
    else begin
      Alloc_check.check_bounds ~emit ~app
        ~max_allocation:(Reference_cluster.max_allocation rc pf)
        ~is_virtual alloc;
      (match (a.Trace.beta, dag) with
      | Some beta, Some dag ->
        Alloc_check.check_level_share ~emit ~app
          ~budget:(Allocation.budget_of rc ~beta) ~beta ~dag ~is_virtual alloc
      | _ -> ());
      (* MAP006 for non-pinned rows. *)
      let pinned_nodes =
        Array.to_list a.Trace.pinned
        |> List.map (fun (r : Trace.row) -> r.Trace.node)
      in
      Array.iter
        (fun (r : Trace.row) ->
          if
            (not r.Trace.virt)
            && (not (List.mem r.Trace.node pinned_nodes))
            && r.Trace.node < n
            && r.Trace.cluster >= 0
            && r.Trace.cluster < P.cluster_count pf
          then begin
            let limit =
              Reference_cluster.translate rc pf ~cluster:r.Trace.cluster
                alloc.(r.Trace.node)
            in
            if Array.length r.Trace.procs > limit then
              emit
                (Diagnostic.error ~app ~node:r.Trace.node Rule.Map_packing
                   "holds %d processors, allocation translates to %d"
                   (Array.length r.Trace.procs)
                   limit)
          end)
        rows
    end
  | _ -> ());
  (* ON001: pinned metadata must reappear verbatim among the rows. *)
  Array.iter
    (fun (pin : Trace.row) ->
      match Hashtbl.find_opt tbl pin.Trace.node with
      | None ->
        emit
          (Diagnostic.error ~app ~node:pin.Trace.node
             Rule.Online_pin_stability "pinned task has no placement row")
      | Some (r : Trace.row) ->
        if
          r.Trace.cluster <> pin.Trace.cluster
          || r.Trace.procs <> pin.Trace.procs
          || not (approx_eq r.Trace.start pin.Trace.start)
          || not (approx_eq r.Trace.finish pin.Trace.finish)
        then
          emit
            (Diagnostic.error ~app ~node:pin.Trace.node
               ~window:(pin.Trace.start, pin.Trace.finish)
               Rule.Online_pin_stability
               "pinned at %g..%g on cluster %d but recorded at %g..%g on \
                cluster %d"
               pin.Trace.start pin.Trace.finish pin.Trace.cluster
               r.Trace.start r.Trace.finish r.Trace.cluster))
    a.Trace.pinned

let lint ?platform (doc : Trace.doc) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let ref_cluster = Option.map Reference_cluster.of_platform platform in
  Array.iter (fun a -> check_app ~emit ?platform ?ref_cluster a) doc;
  let betas =
    Array.of_list
      (List.filter_map (fun (a : Trace.app) -> a.Trace.beta)
         (Array.to_list doc))
  in
  Alloc_check.check_beta_sum ~emit ~severity:Diagnostic.Warning betas;
  let intervals =
    Array.to_list doc
    |> List.concat_map (fun (a : Trace.app) ->
           Array.to_list a.Trace.rows
           |> List.concat_map (fun (r : Trace.row) ->
                  if
                    Float.is_finite r.Trace.start
                    && Float.is_finite r.Trace.finish
                  then
                    Array.to_list r.Trace.procs
                    |> List.map (fun p ->
                           {
                             Sched_check.proc = p;
                             start = r.Trace.start;
                             finish = r.Trace.finish;
                             app = a.Trace.app;
                             node = r.Trace.node;
                           })
                  else []))
  in
  Sched_check.check_overlap ~emit intervals;
  List.rev !diags
