module P = Mcs_platform.Platform
module Ptg = Mcs_ptg.Ptg
module Task = Mcs_taskmodel.Task
module Malleability = Mcs_sched.Malleability
open Mcs_util.Floatx

module F = Fault_check

(* Moved processors of a resize = released plus acquired: the size of
   the symmetric difference of the two (duplicate-free) processor
   sets. *)
let moved_procs prev next =
  let mem p a = Array.exists (fun q -> q = p) a in
  Array.fold_left (fun acc p -> if mem p next then acc else acc + 1) 0 prev
  + Array.fold_left (fun acc p -> if mem p prev then acc else acc + 1) 0 next

(* Split one task's chronological segments into resize chains: a chain
   is a maximal run in which every segment but the last has outcome
   [Resized] and each next segment starts where the previous one
   stopped. Every non-[Resized] outcome closes the chain (a retry after
   a failure restarts the work from scratch, opening a new chain). *)
let chains segs =
  let rec cut acc cur = function
    | [] -> List.rev (match cur with [] -> acc | c -> List.rev c :: acc)
    | s :: rest -> (
      match s.F.outcome with
      | F.Resized -> cut acc (s :: cur) rest
      | F.Completed | F.Killed | F.Failed ->
        cut (List.rev (s :: cur) :: acc) [] rest)
  in
  cut [] [] segs

let check_chain ~emit model platform ptg ~app ~node chain =
  match chain with
  | [] -> ()
  | first :: _ ->
    let last = List.nth chain (List.length chain - 1) in
    (match last.F.outcome with
    | F.Resized ->
      emit
        (Diagnostic.error ~app ~node ~window:(last.F.start, last.F.finish)
           Rule.Mal_cost_accounting
           "resized segment at %g..%g has no continuation segment"
           last.F.start last.F.finish)
    | F.Completed | F.Killed | F.Failed -> ());
    if List.length chain > 1 then begin
      (* Adjacent-pair legality (MAL001) and per-segment overhead, then
         the whole chain's work conservation (MAL002). *)
      let work = ref 0. in
      let seg_work e ~overhead =
        let c = P.cluster platform e.F.cluster in
        let full =
          Task.time ptg.Ptg.tasks.(node) ~gflops:c.P.gflops
            ~procs:(max 1 (Array.length e.F.procs))
        in
        (e.F.finish -. e.F.start -. overhead) /. full
      in
      work := seg_work first ~overhead:0.;
      List.iter2
        (fun prev next ->
          let wp = Array.length prev.F.procs
          and wn = Array.length next.F.procs in
          if not (approx_eq ~tol:1e-6 next.F.start prev.F.finish) then
            emit
              (Diagnostic.error ~app ~node ~window:(prev.F.finish, next.F.start)
                 Rule.Mal_cost_accounting
                 "resized segment stops at %g but its continuation starts at \
                  %g"
                 prev.F.finish next.F.start);
          if wn < model.Malleability.min_width then
            emit
              (Diagnostic.error ~app ~node ~window:(next.F.start, next.F.finish)
                 Rule.Mal_width_bounds
                 "resized segment runs on %d processors, below the \
                  malleability floor of %d"
                 wn model.Malleability.min_width);
          if wn > model.Malleability.max_width then
            emit
              (Diagnostic.error ~app ~node ~window:(next.F.start, next.F.finish)
                 Rule.Mal_width_bounds
                 "resized segment runs on %d processors, above the \
                  malleability ceiling of %d"
                 wn model.Malleability.max_width);
          if wn = wp then
            emit
              (Diagnostic.error ~app ~node ~window:(next.F.start, next.F.finish)
                 Rule.Mal_width_bounds
                 "resize kept the width at %d processors (a resize must \
                  change the width)"
                 wn);
          if next.F.cluster <> prev.F.cluster then
            emit
              (Diagnostic.error ~app ~node ~window:(next.F.start, next.F.finish)
                 Rule.Mal_width_bounds
                 "resize moved the task from cluster %d to cluster %d (a \
                  resize stays inside its cluster)"
                 prev.F.cluster next.F.cluster);
          let overhead =
            Malleability.resize_cost model ~moved:(moved_procs prev.F.procs
                                                     next.F.procs)
          in
          let dur = next.F.finish -. next.F.start in
          (* A kill may truncate the segment inside its redistribution
             window; any other outcome must at least pay the charge. *)
          (match next.F.outcome with
          | F.Killed -> ()
          | F.Completed | F.Failed | F.Resized ->
            if dur <. overhead -. 1e-6 then
              emit
                (Diagnostic.error ~app ~node
                   ~window:(next.F.start, next.F.finish)
                   Rule.Mal_cost_accounting
                   "resized segment lasts %g, shorter than its \
                    redistribution overhead %g (%d processors moved)"
                   dur overhead
                   (moved_procs prev.F.procs next.F.procs)));
          work := !work +. seg_work next ~overhead)
        (List.filteri (fun i _ -> i < List.length chain - 1) chain)
        (List.tl chain);
      match last.F.outcome with
      | F.Completed | F.Failed ->
        if not (approx_eq ~tol:1e-6 !work 1.) then
          emit
            (Diagnostic.error ~app ~node
               ~window:(first.F.start, last.F.finish)
               Rule.Mal_cost_accounting
               "resize chain performs %g task's worth of work, expected \
                exactly 1 (overheads excluded)"
               !work)
      | F.Killed ->
        if !work >. 1. +. 1e-6 then
          emit
            (Diagnostic.error ~app ~node
               ~window:(first.F.start, last.F.finish)
               Rule.Mal_cost_accounting
               "killed resize chain performs %g task's worth of work, more \
                than one task"
               !work)
      | F.Resized -> ()
    end

(* MAL003: per-processor overlap sweep over every execution segment —
   the post-resize re-placements must coexist with everything else that
   actually ran. Same sweep shape as the schedule checker's MAP004. *)
let check_overlap ~emit execs =
  let spans =
    List.concat_map
      (fun e ->
        Array.to_list
          (Array.map (fun p -> (p, e.F.start, e.F.finish, e.F.app, e.F.node))
             e.F.procs))
      execs
  in
  let spans =
    List.sort
      (fun (p, s, f, _, _) (p', s', f', _, _) ->
        let c = compare p p' in
        if c <> 0 then c
        else
          let c = Float.compare s s' in
          if c <> 0 then c else Float.compare f f')
      spans
  in
  let rec sweep = function
    | (p, _, f, a, n) :: ((p', s', f', a', n') :: _ as rest) ->
      if p = p' && s' <. f -. 1e-9 then
        emit
          (Diagnostic.error ~app:a' ~node:n' ~proc:p ~window:(s', Float.min f f')
             Rule.Mal_overlap
             "execution segment overlaps app %d task %d on processor %d" a n p);
      sweep rest
    | [ _ ] | [] -> ()
  in
  sweep spans

let check model platform ~ptgs execs =
  Malleability.validate model;
  let napps = Array.length ptgs in
  let execs = List.filter (fun e -> e.F.app >= 0 && e.F.app < napps) execs in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let per_task = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.F.app, e.F.node) in
      let prev =
        match Hashtbl.find_opt per_task key with Some l -> l | None -> []
      in
      Hashtbl.replace per_task key (e :: prev))
    execs;
  Array.iteri
    (fun app ptg ->
      for node = 0 to Mcs_dag.Dag.node_count ptg.Ptg.dag - 1 do
        match Hashtbl.find_opt per_task (app, node) with
        | None -> ()
        | Some segs ->
          let segs =
            List.sort
              (fun a b ->
                let c = Float.compare a.F.start b.F.start in
                if c <> 0 then c else Float.compare a.F.finish b.F.finish)
              segs
          in
          List.iter
            (fun chain -> check_chain ~emit model platform ptg ~app ~node chain)
            (chains segs)
      done)
    ptgs;
  check_overlap ~emit execs;
  Diagnostic.sort (List.rev !diags)
