(** Malleable-execution invariants (MAL001-003).

    Under a {!Mcs_sched.Malleability} model the online engine may
    preempt a running task at a legal resize point and continue it as a
    new {e segment} at a different width: the preempted piece is
    recorded as an execution attempt with outcome
    {!Fault_check.Resized}, and the pieces form a {e resize chain} —
    consecutive abutting segments, every one but the last resized. This
    checker audits the complete execution log against the model:

    - {b MAL001} ([Rule.Mal_width_bounds]): every post-resize segment's
      width lies within [\[min_width, max_width\]], differs from the
      previous segment's width (a resize that keeps the width is a
      bookkeeping error), and stays inside the task's cluster.
    - {b MAL002} ([Rule.Mal_cost_accounting]): a resized segment has an
      abutting continuation; each continuation pays at least its
      redistribution overhead ([redist_cost × moved processors], kills
      excepted); and the chain's segments, overheads excluded, sum to
      exactly one task's worth of work when the chain ends in a
      completion or transient failure — at most one when killed.
    - {b MAL003} ([Rule.Mal_overlap]): no processor runs two execution
      segments at overlapping times, post-resize re-placements
      included — the global counterpart of the per-generation MAP004.

    Tasks never resized form single-segment chains and are vacuously
    clean here; their durations are audited by FAULT003, which in turn
    defers to MAL002 for resized tasks. *)

val check :
  Mcs_sched.Malleability.t ->
  Mcs_platform.Platform.t ->
  ptgs:Mcs_ptg.Ptg.t array ->
  Fault_check.execution list ->
  Diagnostic.t list
(** Audit an execution log against a malleability model. [ptgs] are the
    applications in submission order; executions referencing other
    applications are ignored (the fault checker reports those). Returns
    diagnostics in deterministic order — empty when the log is clean.
    @raise Invalid_argument on an ill-formed model
    ({!Mcs_sched.Malleability.validate}). *)
