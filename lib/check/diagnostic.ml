type severity = Error | Warning | Info

type t = {
  rule : Rule.t;
  severity : severity;
  app : int option;
  node : int option;
  proc : int option;
  window : (float * float) option;
  message : string;
}

let make severity ?app ?node ?proc ?window rule fmt =
  Printf.ksprintf
    (fun message -> { rule; severity; app; node; proc; window; message })
    fmt

let error ?app ?node ?proc ?window rule fmt =
  make Error ?app ?node ?proc ?window rule fmt

let warning ?app ?node ?proc ?window rule fmt =
  make Warning ?app ?node ?proc ?window rule fmt

let info ?app ?node ?proc ?window rule fmt =
  make Info ?app ?node ?proc ?window rule fmt

let severity_name = function
  | Error -> "ERROR"
  | Warning -> "WARNING"
  | Info -> "INFO"

let location t =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "app %d") t.app;
        Option.map (Printf.sprintf "node %d") t.node;
        Option.map (Printf.sprintf "proc %d") t.proc;
        Option.map (fun (a, b) -> Printf.sprintf "%g..%g" a b) t.window;
      ]
  in
  match parts with
  | [] -> ""
  | parts -> Printf.sprintf " [%s]" (String.concat ", " parts)

let to_string t =
  Printf.sprintf "%s %s %s%s: %s" (severity_name t.severity)
    (Rule.code t.rule) (Rule.id t.rule) (location t) t.message

let pp fmt t = Format.pp_print_string fmt (to_string t)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags
let errors diags = List.filter (fun d -> d.severity = Error) diags

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Total order, not just severity classes: two runs that find the same
   set of diagnostics print them in the same sequence whatever
   traversal order produced them, so CI output is diffable. *)
let compare_t a b =
  compare
    ( severity_rank a.severity,
      Rule.code a.rule,
      a.app,
      a.node,
      a.proc,
      a.window,
      a.message )
    ( severity_rank b.severity,
      Rule.code b.rule,
      b.app,
      b.node,
      b.proc,
      b.window,
      b.message )

let sort diags = List.stable_sort compare_t diags
let compare = compare_t

let rule_ids diags =
  List.filter_map
    (fun r ->
      if List.exists (fun d -> d.rule = r) diags then Some (Rule.id r)
      else None)
    Rule.all

let summary diags =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) diags) in
  let plural n word =
    Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s")
  in
  match (count Error, count Warning, count Info) with
  | 0, 0, 0 -> "clean"
  | e, w, i ->
    String.concat ", "
      (List.filter_map
         (fun x -> x)
         [
           (if e > 0 then Some (plural e "error") else None);
           (if w > 0 then Some (plural w "warning") else None);
           (if i > 0 then Some (plural i "info") else None);
         ])
