module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Allocation = Mcs_sched.Allocation
module Reference_cluster = Mcs_sched.Reference_cluster
open Mcs_util.Floatx

type snapshot_app = {
  index : int;
  ptg : Mcs_ptg.Ptg.t;
  release : float;
  beta : float;
  alloc : int array;
  pinned : Mcs_sched.Schedule.placement option array;
  schedule : Mcs_sched.Schedule.t;
}

type snapshot = {
  now : float;
  strategy : Mcs_sched.Strategy.t;
  procedure : Mcs_sched.Allocation.procedure;
  apps : snapshot_app list;
}

let placement_eq (a : Schedule.placement) (b : Schedule.placement) =
  a.Schedule.node = b.Schedule.node
  && a.Schedule.cluster = b.Schedule.cluster
  && a.Schedule.procs = b.Schedule.procs
  && approx_eq a.Schedule.start b.Schedule.start
  && approx_eq a.Schedule.finish b.Schedule.finish

let analyze platform snap =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let ref_cluster = Reference_cluster.of_platform platform in
  (* ON002: β must be a function of exactly the active set. *)
  let expected =
    Strategy.betas snap.strategy
      ~ref_speed:ref_cluster.Reference_cluster.speed
      (List.map (fun a -> a.ptg) snap.apps)
  in
  List.iteri
    (fun j a ->
      if not (approx_eq expected.(j) a.beta) then
        emit
          (Diagnostic.error ~app:a.index Rule.Online_beta_active
             "beta %g differs from %g, the value of %s over the %d active \
              applications"
             a.beta expected.(j)
             (Strategy.name snap.strategy)
             (List.length snap.apps)))
    snap.apps;
  List.iter
    (fun a ->
      (* ON003: only arrived applications may be scheduled... *)
      if a.release >. snap.now then
        emit
          (Diagnostic.error ~app:a.index Rule.Online_time_travel
             "rescheduled at time %g but only arrives at %g" snap.now
             a.release);
      Array.iteri
        (fun v pin ->
          let actual = a.schedule.Schedule.placements.(v) in
          match pin with
          | Some pl ->
            (* ON001: started work is never revoked. *)
            if not (placement_eq pl actual) then
              emit
                (Diagnostic.error ~app:a.index ~node:v
                   Rule.Online_pin_stability
                   "pinned at %g..%g on cluster %d but rescheduled to \
                    %g..%g on cluster %d"
                   pl.Schedule.start pl.Schedule.finish pl.Schedule.cluster
                   actual.Schedule.start actual.Schedule.finish
                   actual.Schedule.cluster)
          | None ->
            (* ...and remapped work lives strictly in the future. *)
            if not (actual.Schedule.start >=. snap.now) then
              emit
                (Diagnostic.error ~app:a.index ~node:v
                   ~window:(actual.Schedule.start, snap.now)
                   Rule.Online_time_travel
                   "unpinned task starts at %g, before the reschedule \
                    time %g"
                   actual.Schedule.start snap.now))
        a.pinned)
    snap.apps;
  (* Static rule sets over the fresh generation. Sched_check labels
     diagnostics by list position; translate to submission indices. *)
  let idx = Array.of_list (List.map (fun a -> a.index) snap.apps) in
  let emit_mapped (d : Diagnostic.t) =
    let app =
      Option.map
        (fun i -> if i >= 0 && i < Array.length idx then idx.(i) else i)
        d.Diagnostic.app
    in
    emit { d with Diagnostic.app }
  in
  let max_allocation = Reference_cluster.max_allocation ref_cluster platform in
  List.iter
    (fun a ->
      Dag_check.check_ptg ~emit ~app:a.index a.ptg;
      Alloc_check.check_beta ~emit ~app:a.index a.beta;
      Alloc_check.check_bounds ~emit ~app:a.index ~max_allocation
        ~is_virtual:(Ptg.is_virtual a.ptg) a.alloc;
      if snap.procedure = Allocation.Scrap_max then
        Alloc_check.check_level_share ~emit ~app:a.index
          ~budget:(Allocation.budget_of ref_cluster ~beta:a.beta)
          ~beta:a.beta ~dag:a.ptg.Ptg.dag
          ~is_virtual:(Ptg.is_virtual a.ptg) a.alloc)
    snap.apps;
  (match snap.strategy with
  | Strategy.Selfish -> ()
  | _ ->
    Alloc_check.check_beta_sum ~emit ~severity:Diagnostic.Error
      (Array.of_list (List.map (fun a -> a.beta) snap.apps)));
  Sched_check.check_schedules ~emit:emit_mapped
    ~allocations:(Array.of_list (List.map (fun a -> a.alloc) snap.apps))
    ~release:(Array.of_list (List.map (fun a -> a.release) snap.apps))
    ~pinned:(Array.of_list (List.map (fun a -> a.pinned) snap.apps))
    platform
    (List.map (fun a -> a.schedule) snap.apps);
  List.rev !diags
