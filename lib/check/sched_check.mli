(** Mapping-soundness rules (MAP001–MAP007).

    These re-verify, from first principles, what the list mapper is
    supposed to guarantee: placements are structurally coherent, every
    task runs inside one real cluster, no processor is double-booked
    (sweep-line over per-processor busy intervals), every start honours
    its predecessors' finish times plus a lower bound on the
    redistribution delay, packing only ever shrank an allocation, and
    nothing starts before its submission.

    The precedence bound deliberately mirrors
    {!Mcs_sched.List_mapper.run}'s cost formula from below: the in-place
    exemption (same cluster, same processor set) is granted, the
    aggregate destination-NIC bound is ignored — it can only delay
    starts further — so a schedule the mapper accepts is never falsely
    flagged, while a forged start time below the physical transfer
    bound is. *)

type interval = {
  proc : int;
  start : float;
  finish : float;
  app : int;
  node : int;
}

val check_overlap : emit:(Diagnostic.t -> unit) -> interval list -> unit
(** MAP004 sweep-line: sort busy intervals per processor and flag every
    pair overlapping by more than the time tolerance. Shared with the
    trace linter, which builds intervals from parsed rows. *)

val check_schedules :
  emit:(Diagnostic.t -> unit) ->
  ?allocations:int array array ->
  ?release:float array ->
  ?pinned:Mcs_sched.Schedule.placement option array array ->
  Mcs_platform.Platform.t ->
  Mcs_sched.Schedule.t list ->
  unit
(** Run MAP001–MAP007 over a set of concurrent schedules.
    [allocations] (reference processors per node, per application)
    enables MAP006 packing verification; [pinned] marks placements
    frozen by the online engine, which MAP006 skips — a pinned task may
    carry an allocation from an earlier β generation. [release] gives
    per-application submission times for MAP007 (default all 0). *)
