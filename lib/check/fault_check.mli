(** Fault-model invariants (FAULT001-003).

    The online engine under fault injection keeps a chronological log of
    {e execution attempts} — one record per time a task occupied
    processors, whether the attempt completed, was killed by a processor
    outage, or failed transiently at its end. This checker audits that
    log against the outage process:

    - {b FAULT001} ([Rule.Fault_down_overlap]): no attempt overlaps a
      down interval of any processor it ran on. A kill truncated at the
      failure instant {e touches} the interval, which is legal.
    - {b FAULT002} ([Rule.Fault_retry_bound]): no task records more
      transient failures than [max_retries].
    - {b FAULT003} ([Rule.Fault_conservation]): work is conserved —
      every real task of every application completes exactly once, as
      its chronologically last attempt; completed and transiently-failed
      attempts pay the task's full execution time on their cluster and
      width; a killed attempt never exceeds it. Tasks with {!Resized}
      segments are exempt from the per-attempt duration checks only:
      a resize chain's pieces deliberately pay partial durations, and
      {!Mal_check} accounts for them exactly (MAL002). *)

type outcome =
  | Completed  (** the attempt finished and its result was kept *)
  | Killed  (** a processor outage truncated the attempt *)
  | Failed  (** transient failure at the end: full duration, work lost *)
  | Resized
      (** the segment was preempted at a malleability resize point; the
          task continues as a new segment at a different width *)

type execution = {
  app : int;  (** application submission index *)
  node : int;  (** DAG node *)
  cluster : int;
  procs : int array;  (** global processor ids *)
  start : float;
  finish : float;
  outcome : outcome;
}

val check :
  max_retries:int ->
  down:(float * float) list array ->
  Mcs_platform.Platform.t ->
  ptgs:Mcs_ptg.Ptg.t array ->
  execution list ->
  Diagnostic.t list
(** Audit an execution log. [down.(p)] is processor [p]'s sorted,
    disjoint down intervals ({!Mcs_fault.Fault.down_intervals} produces
    exactly this shape, but the checker deliberately takes plain data
    and does not depend on the generator); [ptgs] are the applications
    in submission order. Returns diagnostics in deterministic order —
    empty when the log is clean. *)
