module Dag = Mcs_dag.Dag

let sum_tolerance = 1e-6

let check_beta ~emit ?app beta =
  if (not (Float.is_finite beta)) || beta <= 0. || beta > 1. then
    emit
      (Diagnostic.error ?app Rule.Beta_range
         "beta = %g is outside the legal share range (0, 1]" beta)

let check_beta_sum ~emit ~severity betas =
  let finite = Array.to_list betas |> List.filter Float.is_finite in
  let sum = Mcs_util.Floatx.sum_list finite in
  if List.length finite >= 2 && sum > 1. +. sum_tolerance then
    let mk =
      match severity with
      | Diagnostic.Error -> Diagnostic.error
      | Diagnostic.Warning -> Diagnostic.warning
      | Diagnostic.Info -> Diagnostic.info
    in
    emit
      (mk Rule.Beta_share_sum
         "the %d beta shares sum to %g > 1: the platform is oversubscribed"
         (List.length finite) sum)

let check_bounds ~emit ?app ~max_allocation ~is_virtual alloc =
  Array.iteri
    (fun v a ->
      if not (is_virtual v) then
        if a < 1 then
          emit
            (Diagnostic.error ?app ~node:v Rule.Alloc_bounds
               "allocation %d < 1 reference processor" a)
        else if a > max_allocation then
          emit
            (Diagnostic.error ?app ~node:v Rule.Alloc_bounds
               "allocation %d exceeds the largest single-cluster \
                allocation (%d)"
               a max_allocation))
    alloc

(* [budget] must come from {!Mcs_sched.Allocation.budget_of} so the
   checker and the allocator agree on the epsilon-guarded floor. *)
let check_level_share ~emit ?app ~budget ~beta ~dag ~is_virtual alloc =
  if Float.is_finite beta && beta > 0. then begin
    Array.iteri
      (fun level members ->
        let population = ref 0 and usage = ref 0 in
        Array.iter
          (fun v ->
            if not (is_virtual v) then begin
              incr population;
              usage := !usage + alloc.(v)
            end)
          members;
        let limit = max !population budget in
        if !usage > limit then
          emit
            (Diagnostic.error ?app Rule.Alloc_level_share
               "level %d allocates %d reference processors, above \
                max(population %d, budget %d) for beta = %g"
               level !usage !population budget beta))
      (Dag.level_members dag)
  end
