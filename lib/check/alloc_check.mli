(** Allocation and resource-constraint rules (ALLOC001–ALLOC004).

    These audit the output of the β-determination and SCRAP/SCRAP-MAX
    steps: every β is a legal power share, sharing strategies hand out
    at most the whole platform, every task's allocation fits a real
    cluster, and — under SCRAP-MAX — each precedence level stays within
    its [max(population, ⌊β·procs⌋)] budget (Eq. 2). *)

val check_beta :
  emit:(Diagnostic.t -> unit) -> ?app:int -> float -> unit
(** ALLOC003: β must be finite and in (0, 1]. *)

val check_beta_sum :
  emit:(Diagnostic.t -> unit) ->
  severity:Diagnostic.severity ->
  float array ->
  unit
(** ALLOC004: Σβ ≤ 1 (small tolerance). The caller picks the severity:
    [Error] when the strategy is known to be a sharing one, [Warning]
    when linting a trace whose strategy is unknown. Skips βs that are
    not finite (ALLOC003 already fired). *)

val check_bounds :
  emit:(Diagnostic.t -> unit) ->
  ?app:int ->
  max_allocation:int ->
  is_virtual:(int -> bool) ->
  int array ->
  unit
(** ALLOC001: every real task's reference allocation lies in
    [1, max_allocation]. Virtual nodes are ignored. *)

val check_level_share :
  emit:(Diagnostic.t -> unit) ->
  ?app:int ->
  budget:int ->
  beta:float ->
  dag:Mcs_dag.Dag.t ->
  is_virtual:(int -> bool) ->
  int array ->
  unit
(** ALLOC002 (SCRAP-MAX only — the caller gates on the procedure): per
    precedence level, Σ over real tasks of the allocation must not
    exceed [max(level population, budget)]. [budget] must be computed
    with {!Mcs_sched.Allocation.budget_of} so the checker and the
    allocator agree on the epsilon-guarded ⌊β·procs⌋ floor. *)
