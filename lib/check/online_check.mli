(** Online-scheduling rules (ON001–ON003), checked against a snapshot
    taken right after one reschedule of the event-driven engine.

    The snapshot captures what the engine decided at virtual time [now]:
    the active applications, the β each was just assigned, its fresh
    allocation, the placements that were pinned going into the
    reschedule, and the schedule that came out. From that the checker
    verifies the three promises an online scheduler must keep — started
    work is never revoked, β is a function of the active set only, and
    no decision reaches into the past or touches an application that
    has not arrived — and re-runs the whole static rule set (allocation
    legality and mapping soundness) over the new schedules. *)

type snapshot_app = {
  index : int;  (** submission index, for diagnostics *)
  ptg : Mcs_ptg.Ptg.t;
  release : float;  (** original submission time *)
  beta : float;  (** β assigned by this reschedule *)
  alloc : int array;  (** fresh reference allocation *)
  pinned : Mcs_sched.Schedule.placement option array;
      (** placements frozen going into the reschedule *)
  schedule : Mcs_sched.Schedule.t;  (** the reschedule's output *)
}

type snapshot = {
  now : float;  (** virtual time of the reschedule *)
  strategy : Mcs_sched.Strategy.t;
  procedure : Mcs_sched.Allocation.procedure;
  apps : snapshot_app list;  (** the active set, in submission order *)
}

val analyze :
  Mcs_platform.Platform.t -> snapshot -> Diagnostic.t list
(** All diagnostics for one reschedule: ON001 (every pinned placement
    reappears untouched), ON002 (recomputing β with the snapshot's
    strategy over exactly the active PTGs reproduces the assigned
    values), ON003 (unpinned placements start at or after [now]; every
    scheduled application has arrived), plus the ALLOC and MAP rule
    sets via {!Alloc_check} and {!Sched_check}. *)
