(** Structured analyzer findings.

    A diagnostic pins one rule violation to its location in the
    artifact: which application, which DAG node, which processor, which
    time window — whatever subset applies — plus a human message. The
    analyzer never returns a bare boolean: callers decide what to do
    from the severity ([mcs_check] exits non-zero on errors, the
    experiment runner raises, tests assert on rule ids). *)

type severity = Error | Warning | Info

type t = {
  rule : Rule.t;
  severity : severity;
  app : int option;        (** application index in the analyzed set *)
  node : int option;       (** DAG node *)
  proc : int option;       (** global processor id *)
  window : (float * float) option;  (** offending time interval *)
  message : string;
}

val error :
  ?app:int -> ?node:int -> ?proc:int -> ?window:float * float ->
  Rule.t -> ('a, unit, string, t) format4 -> 'a

val warning :
  ?app:int -> ?node:int -> ?proc:int -> ?window:float * float ->
  Rule.t -> ('a, unit, string, t) format4 -> 'a

val info :
  ?app:int -> ?node:int -> ?proc:int -> ?window:float * float ->
  Rule.t -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string

val to_string : t -> string
(** ["ERROR MAP004 map-overlap [app 1, node 3, proc 17, 4.2..5.1]: ..."] *)

val pp : Format.formatter -> t -> unit

val has_errors : t list -> bool
val errors : t list -> t list

val compare : t -> t -> int
(** Total deterministic order: severity rank, then rule code, then
    location fields ([app], [node], [proc], [window]), then message. *)

val sort : t list -> t list
(** Sorted under {!compare}: errors first, then warnings, then infos,
    same-severity diagnostics in a stable location order — CI output is
    byte-diffable across runs. *)

val rule_ids : t list -> string list
(** Distinct rule ids present, in registry order — what tests assert. *)

val summary : t list -> string
(** ["2 errors, 1 warning"] / ["clean"]. *)
