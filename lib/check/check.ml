module Ptg = Mcs_ptg.Ptg
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Allocation = Mcs_sched.Allocation
module Pipeline = Mcs_sched.Pipeline
module Reference_cluster = Mcs_sched.Reference_cluster
module Obs = Mcs_obs.Obs

let c_analyses = Obs.counter "check.analyses"
let c_rules = Obs.counter "check.rules"
let c_diagnostics = Obs.counter "check.diagnostics"

exception Violation of Diagnostic.t list

let check_length name count = function
  | None -> ()
  | Some arr ->
    if Array.length arr <> count then
      invalid_arg
        (Printf.sprintf "Check.analyze: %s has %d entries for %d schedules"
           name (Array.length arr) count)

let analyze ?strategy ?(procedure = Allocation.Scrap_max) ?betas ?allocations
    ?release ?pinned platform schedules =
  let count = List.length schedules in
  check_length "betas" count betas;
  check_length "allocations" count allocations;
  check_length "release" count release;
  check_length "pinned" count pinned;
  Obs.with_span "check.analyze" @@ fun () ->
  Obs.incr c_analyses;
  (* One analysis pass evaluates the whole rule registry. *)
  Obs.incr ~by:(List.length Rule.all) c_rules;
  let diags = ref [] in
  let emit d =
    Obs.incr c_diagnostics;
    diags := d :: !diags
  in
  let ref_cluster = Reference_cluster.of_platform platform in
  let max_allocation = Reference_cluster.max_allocation ref_cluster platform in
  List.iteri
    (fun i s ->
      let ptg = s.Schedule.ptg in
      Dag_check.check_ptg ~emit ~app:i ptg;
      Option.iter
        (fun betas -> Alloc_check.check_beta ~emit ~app:i betas.(i))
        betas;
      Option.iter
        (fun allocations ->
          let alloc = allocations.(i) in
          Alloc_check.check_bounds ~emit ~app:i ~max_allocation
            ~is_virtual:(Ptg.is_virtual ptg) alloc;
          match betas with
          | Some betas when procedure = Allocation.Scrap_max ->
            Alloc_check.check_level_share ~emit ~app:i
              ~budget:(Allocation.budget_of ref_cluster ~beta:betas.(i))
              ~beta:betas.(i) ~dag:ptg.Ptg.dag
              ~is_virtual:(Ptg.is_virtual ptg) alloc
          | _ -> ())
        allocations)
    schedules;
  (match (strategy, betas) with
  | Some Strategy.Selfish, _ | None, _ | _, None -> ()
  | Some _, Some betas ->
    Alloc_check.check_beta_sum ~emit ~severity:Diagnostic.Error betas);
  Sched_check.check_schedules ~emit ?allocations ?release ?pinned platform
    schedules;
  List.rev !diags

let analyze_prepared ?strategy ?procedure ?release
    (prepared : Pipeline.prepared) platform schedules =
  analyze ?strategy ?procedure ~betas:prepared.Pipeline.betas
    ~allocations:
      (Array.map
         (fun (r : Allocation.result) -> r.Allocation.procs)
         prepared.Pipeline.allocations)
    ?release platform schedules

let lint_trace = Trace_check.lint

let fail_on_error diags =
  match Diagnostic.errors diags with
  | [] -> ()
  | errors -> raise (Violation errors)

let pipeline_hook ?procedure ?release ~strategy platform ~prepared schedules =
  fail_on_error
    (analyze_prepared ~strategy ?procedure ?release prepared platform
       schedules)
