module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform
module Redistribution = Mcs_taskmodel.Redistribution
module Schedule = Mcs_sched.Schedule
module Reference_cluster = Mcs_sched.Reference_cluster
module Floatx = Mcs_util.Floatx
open Floatx

type interval = {
  proc : int;
  start : float;
  finish : float;
  app : int;
  node : int;
}

let check_overlap ~emit intervals =
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.proc b.proc in
        if c <> 0 then c
        else
          let c = Float.compare a.start b.start in
          if c <> 0 then c else Float.compare a.finish b.finish)
      intervals
  in
  (* Per processor, track the latest finish seen so far: any later
     interval starting strictly before it races with the one that set
     it. *)
  let cur = ref None in
  List.iter
    (fun iv ->
      (match !cur with
      | Some (proc, finish, app, node)
        when proc = iv.proc && iv.start <. finish ->
        emit
          (Diagnostic.error ~app:iv.app ~node:iv.node ~proc:iv.proc
             ~window:(iv.start, Float.min finish iv.finish)
             Rule.Map_overlap
             "runs while app %d node %d still holds the processor" app node)
      | _ -> ());
      match !cur with
      | Some (proc, finish, _, _) when proc = iv.proc && finish >= iv.finish ->
        ()
      | _ -> cur := Some (iv.proc, iv.finish, iv.app, iv.node))
    sorted

(* Lower bound on the redistribution delay the mapper charged for the
   edge [u -> v]; mirrors List_mapper's [cost_of] with its in-place
   exemption, without the aggregate-NIC bound (one-sided soundness). *)
let transfer_lower_bound platform (pu : Schedule.placement)
    (pv : Schedule.placement) ~bytes =
  if bytes <= 0. then 0.
  else if
    pu.Schedule.cluster = pv.Schedule.cluster
    && Redistribution.same_procs pu.Schedule.procs pv.Schedule.procs
  then 0.
  else
    Redistribution.transfer_time platform ~src_cluster:pu.Schedule.cluster
      ~dst_cluster:pv.Schedule.cluster
      ~src_procs:(max 1 (Array.length pu.Schedule.procs))
      ~dst_procs:(max 1 (Array.length pv.Schedule.procs))
      ~bytes

let check_one ~emit ?alloc ~release ~is_pinned platform ref_cluster ~app
    (s : Schedule.t) =
  let ptg = s.Schedule.ptg in
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let total_procs = P.total_procs platform in
  if Array.length s.Schedule.placements <> n then
    emit
      (Diagnostic.error ~app Rule.Map_structure
         "%d placements for %d DAG nodes"
         (Array.length s.Schedule.placements)
         n)
  else begin
    Array.iteri
      (fun v pl ->
        let { Schedule.node; cluster; procs; start; finish } = pl in
        (* MAP001: labels, finite ordered times. *)
        if node <> v then
          emit
            (Diagnostic.error ~app ~node:v Rule.Map_structure
               "placement at index %d is labeled node %d" v node);
        if not (Float.is_finite start && Float.is_finite finish) then
          emit
            (Diagnostic.error ~app ~node:v Rule.Map_structure
               "non-finite times %g..%g" start finish)
        else if not (finish >=. start) then
          emit
            (Diagnostic.error ~app ~node:v ~window:(start, finish)
               Rule.Map_structure "finishes at %g before starting at %g"
               finish start);
        (* MAP002: virtual tasks are free and instantaneous. *)
        if Ptg.is_virtual ptg v then begin
          if Array.length procs > 0 then
            emit
              (Diagnostic.error ~app ~node:v Rule.Map_virtual
                 "virtual task holds %d processors" (Array.length procs));
          if not (approx_eq start finish) then
            emit
              (Diagnostic.error ~app ~node:v ~window:(start, finish)
                 Rule.Map_virtual "virtual task takes %g seconds"
                 (finish -. start))
        end
        else if Array.length procs = 0 then
          emit
            (Diagnostic.error ~app ~node:v Rule.Map_virtual
               "real task holds no processor")
        else begin
          (* MAP003: one real cluster, distinct in-range processors. *)
          if cluster < 0 || cluster >= P.cluster_count platform then
            emit
              (Diagnostic.error ~app ~node:v Rule.Map_cluster
                 "cluster %d does not exist" cluster)
          else
            Array.iter
              (fun p ->
                if p < 0 || p >= total_procs then
                  emit
                    (Diagnostic.error ~app ~node:v ~proc:p Rule.Map_cluster
                       "processor id outside 0..%d" (total_procs - 1))
                else if P.cluster_of_proc platform p <> cluster then
                  emit
                    (Diagnostic.error ~app ~node:v ~proc:p Rule.Map_cluster
                       "processor belongs to cluster %d, task is on %d"
                       (P.cluster_of_proc platform p)
                       cluster))
              procs;
          let sorted = Array.copy procs in
          Array.sort compare sorted;
          for i = 1 to Array.length sorted - 1 do
            if sorted.(i) = sorted.(i - 1) then
              emit
                (Diagnostic.error ~app ~node:v ~proc:sorted.(i)
                   Rule.Map_cluster "processor listed twice")
          done;
          (* MAP006: mapping never enlarged the allocation. Pinned
             placements may carry an allocation from an earlier β
             generation, so they are exempt. *)
          match alloc with
          | Some alloc
            when Array.length alloc = n
                 && (not (is_pinned v))
                 && cluster >= 0
                 && cluster < P.cluster_count platform ->
            let limit =
              Reference_cluster.translate ref_cluster platform ~cluster
                alloc.(v)
            in
            if Array.length procs > limit then
              emit
                (Diagnostic.error ~app ~node:v Rule.Map_packing
                   "holds %d processors, allocation translates to %d"
                   (Array.length procs) limit)
          | _ -> ()
        end;
        (* MAP007: nothing before the submission date. *)
        if not (start >=. release) then
          emit
            (Diagnostic.error ~app ~node:v ~window:(release, start)
               Rule.Map_release "starts at %g before the release at %g" start
               release))
      s.Schedule.placements;
    (* MAP001: the makespan is the exit finish time. *)
    let exit_finish = s.Schedule.placements.(Ptg.exit ptg).Schedule.finish in
    if not (approx_eq s.Schedule.makespan exit_finish) then
      emit
        (Diagnostic.error ~app Rule.Map_structure
           "makespan %g differs from the exit finish %g" s.Schedule.makespan
           exit_finish);
    (* MAP005: starts honour predecessor finishes plus redistribution. *)
    for v = 0 to n - 1 do
      let pv = s.Schedule.placements.(v) in
      Array.iter
        (fun (u, e) ->
          let pu = s.Schedule.placements.(u) in
          let cost =
            if Ptg.is_virtual ptg v || Ptg.is_virtual ptg u then 0.
            else
              transfer_lower_bound platform pu pv
                ~bytes:ptg.Ptg.edge_bytes.(e)
          in
          let ready = pu.Schedule.finish +. cost in
          if not (pv.Schedule.start >=. ready) then
            emit
              (Diagnostic.error ~app ~node:v
                 ~window:(pv.Schedule.start, ready)
                 Rule.Map_precedence
                 "starts at %g but predecessor %d finishes at %g (+%g \
                  redistribution)"
                 pv.Schedule.start u pu.Schedule.finish cost))
        (Dag.preds dag v)
    done
  end

let check_schedules ~emit ?allocations ?release ?pinned platform schedules =
  let count = List.length schedules in
  let ref_cluster = Reference_cluster.of_platform platform in
  let release =
    match release with Some r -> r | None -> Array.make count 0.
  in
  List.iteri
    (fun i s ->
      let alloc = Option.map (fun a -> a.(i)) allocations in
      let is_pinned v =
        match pinned with
        | Some pin -> pin.(i).(v) <> None
        | None -> false
      in
      check_one ~emit ?alloc ~release:release.(i) ~is_pinned platform
        ref_cluster ~app:i s)
    schedules;
  let intervals =
    List.concat
      (List.mapi
         (fun i s ->
           Array.to_list s.Schedule.placements
           |> List.concat_map (fun (pl : Schedule.placement) ->
                  Array.to_list pl.Schedule.procs
                  |> List.map (fun p ->
                         {
                           proc = p;
                           start = pl.Schedule.start;
                           finish = pl.Schedule.finish;
                           app = i;
                           node = pl.Schedule.node;
                         })))
         schedules)
  in
  check_overlap ~emit intervals
