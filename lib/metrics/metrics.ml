module Floatx = Mcs_util.Floatx

(* A degenerate application — empty PTG, zero or non-finite makespan —
   used to abort a whole experiment sweep with [invalid_arg]. Such an
   application is unperturbed by definition (there is no work to slow
   down), so its slowdown saturates to the neutral 1. See the .mli for
   the rationale of saturate-vs-skip. *)
let degenerate m = not (Float.is_finite m) || m <= 0.

let slowdown ~own ~multi =
  if degenerate own || degenerate multi then 1. else own /. multi

let average_slowdown slowdowns =
  if Array.length slowdowns = 0 then
    invalid_arg "Metrics.average_slowdown: no applications";
  Floatx.mean slowdowns

let unfairness slowdowns =
  if Array.length slowdowns = 0 then 0.
  else
    let avg = average_slowdown slowdowns in
    Floatx.sum (Array.map (fun s -> Float.abs (s -. avg)) slowdowns)

let unfairness_of_makespans ~own ~multi =
  if Array.length own <> Array.length multi then
    invalid_arg "Metrics.unfairness_of_makespans: length mismatch";
  (* Skip degenerate applications entirely: a saturated slowdown of 1
     would still shift the mean every well-formed application is
     compared against, so dispersion is measured over the real ones
     only. *)
  let pairs =
    Array.to_seq (Array.map2 (fun o m -> (o, m)) own multi)
    |> Seq.filter (fun (o, m) -> not (degenerate o || degenerate m))
    |> Array.of_seq
  in
  (* All applications degenerate (every makespan NaN, infinite or
     non-positive): there is no population to measure dispersion over,
     so saturate to perfectly fair rather than let a NaN leak into
     experiment tables — the same saturate-don't-propagate stance as
     {!slowdown}. *)
  if Array.length pairs = 0 then 0.
  else unfairness (Array.map (fun (o, m) -> slowdown ~own:o ~multi:m) pairs)

let relative_makespan m ~best =
  if best <= 0. then invalid_arg "Metrics.relative_makespan: best <= 0";
  m /. best
