(** Evaluation metrics (Section 7).

    Fairness is assessed through the slowdown each application suffers
    from resource sharing. Following the paper (Eq. 3), the slowdown of
    application [a] is [M_own(a) / M_multi(a)] — the dedicated-platform
    makespan over the concurrent one — so values lie in (0, 1] with 1
    meaning "not perturbed at all". A schedule is fair when every
    application experiences a similar slowdown; unfairness (Eq. 5) is
    the L1 dispersion of slowdowns around their mean.

    {b Degenerate applications.} An empty PTG or a faulted run can
    produce a zero (or non-finite) makespan. Raising there would abort a
    whole experiment sweep for one pathological draw, so instead:
    {!slowdown} {e saturates} a degenerate pair to the neutral value 1
    (an application with no work is, by definition, not slowed down),
    and {!unfairness_of_makespans} {e skips} degenerate applications so
    that the saturated value cannot shift the mean the well-formed
    applications are compared against. Both choices are deliberate and
    regression-tested. *)

val slowdown : own:float -> multi:float -> float
(** [M_own / M_multi]. Saturates to [1.] when either makespan is zero,
    negative or non-finite (degenerate application — see above). *)

val average_slowdown : float array -> float
(** Eq. 4. @raise Invalid_argument on the empty array. *)

val unfairness : float array -> float
(** Eq. 5: [Σ_a |slowdown a − average|]. [0.] on the empty array (no
    applications disagree about their treatment). *)

val unfairness_of_makespans : own:float array -> multi:float array -> float
(** Convenience composition of the above, skipping degenerate
    applications (zero/non-finite makespan on either side); [0.] when
    every application is degenerate.
    @raise Invalid_argument on mismatched lengths. *)

val relative_makespan : float -> best:float -> float
(** Makespan divided by the best makespan achieved on the same
    experiment (≥ 1 when [best] is the minimum).
    @raise Invalid_argument if [best <= 0]. *)
