(* Reusable scratch arrays for the SCRAP(-MAX) allocation loop. One
   arena per engine (or per serving shard, each shard's engine owning
   its own on its own domain): the loop's per-iteration buffers are
   allocated once and grown monotonically to the largest PTG seen, so a
   steady-state reschedule performs no per-call buffer allocation. *)

type t = {
  mutable bl : float array;  (* bottom levels, one slot per DAG node *)
  mutable tl : float array;  (* top levels *)
  mutable usage : int array;  (* per-level allocated reference procs *)
  mutable exec : float array;  (* per-node execution time estimate *)
  mutable procs : int array;  (* per-node allocation being built *)
  mutable seq : float array;  (* per-node sequential time on the ref speed *)
  mutable alpha : float array;  (* per-node Amdahl serial fraction *)
  mutable gain : float array;  (* per-node gain of one more processor *)
  mutable dirty : Bytes.t;  (* level-repair scratch, all-zero between uses *)
}

let create () =
  {
    bl = [||];
    tl = [||];
    usage = [||];
    exec = [||];
    procs = [||];
    seq = [||];
    alpha = [||];
    gain = [||];
    dirty = Bytes.empty;
  }

let grow_floats a n = if Array.length a >= n then a else Array.make n 0.
let grow_ints a n = if Array.length a >= n then a else Array.make n 0

(* The buffers are only ever read on indices the caller re-initialises,
   so growth never needs to preserve contents. *)
let reserve t ~nodes ~levels =
  t.bl <- grow_floats t.bl nodes;
  t.tl <- grow_floats t.tl nodes;
  t.exec <- grow_floats t.exec nodes;
  t.procs <- grow_ints t.procs nodes;
  t.usage <- grow_ints t.usage levels;
  t.seq <- grow_floats t.seq nodes;
  t.alpha <- grow_floats t.alpha nodes;
  t.gain <- grow_floats t.gain nodes;
  if Bytes.length t.dirty < nodes then t.dirty <- Bytes.make nodes '\000'

let bl t = t.bl
let tl t = t.tl
let usage t = t.usage
let exec t = t.exec
let procs t = t.procs
let seq t = t.seq
let alpha t = t.alpha
let gain t = t.gain
let dirty t = t.dirty

let capacity t = Array.length t.bl
