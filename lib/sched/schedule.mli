(** Schedules: the outcome of mapping one PTG onto the platform.

    A placement fixes, for each DAG node, the cluster, the exact
    processor set, and the start/finish times. Virtual entry/exit nodes
    occupy no processor. Validation checks the properties every correct
    concurrent schedule must have, and is exercised heavily by the test
    suite. *)

type placement = {
  node : int;
  cluster : int;
  procs : int array;  (** global processor ids; empty for virtual nodes *)
  start : float;
  finish : float;
}

type t = {
  ptg : Mcs_ptg.Ptg.t;
  placements : placement array;  (** indexed by DAG node *)
  makespan : float;              (** finish time of the exit node *)
}

val make : ptg:Mcs_ptg.Ptg.t -> placements:placement array -> t
(** Computes the makespan from the exit placement.
    @raise Invalid_argument if the array length differs from the node
    count. *)

val placement : t -> int -> placement
(** Placement of one DAG node ([placements.(node)]). *)

val busy_time : t -> float
(** Σ over placements of [(finish − start) × |procs|] — processor time
    consumed by the application. *)

val cluster_busy_time :
  platform:Mcs_platform.Platform.t -> t list -> float array
(** Processor-seconds consumed per cluster over a set of concurrent
    schedules — the basis of utilisation reports. *)

val parallel_efficiency :
  platform:Mcs_platform.Platform.t -> t -> float
(** Useful flops over the flop capacity of the processor time held:
    1 when every held processor computes all the time, lower when
    Amdahl overheads waste capacity. 0 for an empty schedule. *)

val used_power_avg : t -> platform:Mcs_platform.Platform.t -> float
(** Average processing power used over the schedule's span, in GFlop/s:
    Σ (duration × Σ proc speeds) / makespan. Compared against
    [β × total power] in the constraint-audit experiment. *)

type violation = {
  message : string;
}

val validate :
  platform:Mcs_platform.Platform.t -> t list -> (unit, violation) Result.t
(** Check a set of concurrent schedules:
    - every non-virtual node has at least one processor, all within its
      declared (single) cluster, without duplicates;
    - [start + eps >= ] every predecessor's [finish] (redistribution
      latencies may only push starts later);
    - [finish >= start];
    - no processor runs two placements (of any application) at
      overlapping times. *)

val gantt :
  platform:Mcs_platform.Platform.t -> ?width:int -> t list -> string
(** Text Gantt chart of the concurrent schedules (one line per cluster,
    applications lettered), for the examples and CLI. *)
