module Ptg = Mcs_ptg.Ptg
module Dag = Mcs_dag.Dag
module Jsonx = Mcs_util.Jsonx

let join_procs procs =
  String.concat "+" (Array.to_list (Array.map string_of_int procs))

(* Submission times only show up in the output when they carry
   information, so pre-release consumers of the trace formats keep
   seeing the exact shape they parsed before. *)
let checked_release release schedules =
  match release with
  | None -> None
  | Some r ->
    if Array.length r <> List.length schedules then
      invalid_arg "Trace: release length differs from schedules";
    if Array.for_all (fun t -> t = 0.) r then None else Some r

let checked_meta what meta schedules =
  match meta with
  | None -> None
  | Some m ->
    if Array.length m <> List.length schedules then
      invalid_arg (Printf.sprintf "Trace: %s length differs from schedules" what);
    Some m

let to_csv ?release schedules =
  let release = checked_release release schedules in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "app,app_name,node,virtual,cluster,procs,nb_procs,start,finish";
  if release <> None then Buffer.add_string buf ",release";
  Buffer.add_char buf '\n';
  List.iteri
    (fun i sched ->
      let ptg = sched.Schedule.ptg in
      Array.iter
        (fun pl ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d,%b,%d,%s,%d,%.9g,%.9g" i
               ptg.Ptg.name pl.Schedule.node
               (Ptg.is_virtual ptg pl.Schedule.node)
               pl.Schedule.cluster
               (join_procs pl.Schedule.procs)
               (Array.length pl.Schedule.procs)
               pl.Schedule.start pl.Schedule.finish);
          (match release with
          | Some r -> Buffer.add_string buf (Printf.sprintf ",%.9g" r.(i))
          | None -> ());
          Buffer.add_char buf '\n')
        sched.Schedule.placements)
    schedules;
  Buffer.contents buf

(* Minimal JSON string escaping: the only strings we emit are PTG names
   (generator-controlled), but escape defensively anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_task buf ?preds ptg pl =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"node\":%d,\"virtual\":%b,\"cluster\":%d,\"procs\":[%s],\
        \"start\":%.17g,\"finish\":%.17g"
       pl.Schedule.node
       (Ptg.is_virtual ptg pl.Schedule.node)
       pl.Schedule.cluster
       (String.concat ","
          (Array.to_list (Array.map string_of_int pl.Schedule.procs)))
       pl.Schedule.start pl.Schedule.finish);
  (match preds with
  | None -> ()
  | Some preds ->
    Buffer.add_string buf ",\"preds\":[";
    Array.iteri
      (fun j (u, bytes) ->
        if j > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "{\"node\":%d,\"bytes\":%.17g}" u bytes))
      preds;
    Buffer.add_char buf ']');
  Buffer.add_char buf '}'

let to_json ?release ?betas ?alloc ?pinned schedules =
  let release = checked_release release schedules in
  let betas = checked_meta "betas" betas schedules in
  let alloc = checked_meta "alloc" alloc schedules in
  let pinned = checked_meta "pinned" pinned schedules in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"applications\":[";
  List.iteri
    (fun i sched ->
      if i > 0 then Buffer.add_char buf ',';
      let ptg = sched.Schedule.ptg in
      let dag = ptg.Ptg.dag in
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":%d,\"name\":\"%s\"," ptg.Ptg.id
           (escape ptg.Ptg.name));
      (match release with
      | Some r -> Buffer.add_string buf (Printf.sprintf "\"release\":%.17g," r.(i))
      | None -> ());
      (match betas with
      | Some b -> Buffer.add_string buf (Printf.sprintf "\"beta\":%.17g," b.(i))
      | None -> ());
      (match alloc with
      | Some a ->
        Buffer.add_string buf
          (Printf.sprintf "\"alloc\":[%s],"
             (String.concat ","
                (Array.to_list (Array.map string_of_int a.(i)))))
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "\"makespan\":%.17g,\"tasks\":["
           sched.Schedule.makespan);
      Array.iteri
        (fun j pl ->
          if j > 0 then Buffer.add_char buf ',';
          let preds =
            Array.map
              (fun (u, e) -> (u, ptg.Ptg.edge_bytes.(e)))
              (Dag.preds dag pl.Schedule.node)
          in
          add_task buf ~preds ptg pl)
        sched.Schedule.placements;
      Buffer.add_char buf ']';
      (match pinned with
      | Some p ->
        Buffer.add_string buf ",\"pinned\":[";
        Array.iteri
          (fun j pl ->
            if j > 0 then Buffer.add_char buf ',';
            add_task buf ptg pl)
          p.(i);
        Buffer.add_char buf ']'
      | None -> ());
      Buffer.add_char buf '}')
    schedules;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Import                                                              *)

type pred = {
  pred_node : int;
  bytes : float;
}

type row = {
  node : int;
  virt : bool;
  cluster : int;
  procs : int array;
  start : float;
  finish : float;
  preds : pred array;
}

type app = {
  app : int;
  name : string;
  release : float;
  makespan : float option;
  beta : float option;
  alloc : int array option;
  rows : row array;
  pinned : row array;
}

type doc = app array

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let parse_procs_csv cell =
  if cell = "" then [||]
  else
    Array.of_list
      (List.map
         (fun s ->
           match int_of_string_opt s with
           | Some p -> p
           | None -> parse_error "bad processor id %S" s)
         (String.split_on_char '+' cell))

let of_csv_exn text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> parse_error "empty CSV"
  | header :: body ->
    let columns = String.split_on_char ',' header in
    let index name =
      let rec find i = function
        | [] -> None
        | c :: _ when c = name -> Some i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 columns
    in
    let require name =
      match index name with
      | Some i -> i
      | None -> parse_error "missing CSV column %S" name
    in
    let c_app = require "app" in
    let c_name = require "app_name" in
    let c_node = require "node" in
    let c_virtual = require "virtual" in
    let c_cluster = require "cluster" in
    let c_procs = require "procs" in
    let c_start = require "start" in
    let c_finish = require "finish" in
    let c_release = index "release" in
    (* Accumulate apps in order of first appearance of their id. *)
    let order = ref [] in
    let by_app = Hashtbl.create 8 in
    List.iteri
      (fun lineno line ->
        let cells = Array.of_list (String.split_on_char ',' line) in
        let cell i =
          if i < Array.length cells then cells.(i)
          else parse_error "line %d: missing column %d" (lineno + 2) i
        in
        let int_cell i =
          match int_of_string_opt (cell i) with
          | Some v -> v
          | None -> parse_error "line %d: bad integer %S" (lineno + 2) (cell i)
        in
        let float_cell i =
          match float_of_string_opt (cell i) with
          | Some v -> v
          | None -> parse_error "line %d: bad number %S" (lineno + 2) (cell i)
        in
        let bool_cell i =
          match bool_of_string_opt (cell i) with
          | Some v -> v
          | None -> parse_error "line %d: bad boolean %S" (lineno + 2) (cell i)
        in
        let id = int_cell c_app in
        let row =
          {
            node = int_cell c_node;
            virt = bool_cell c_virtual;
            cluster = int_cell c_cluster;
            procs = parse_procs_csv (cell c_procs);
            start = float_cell c_start;
            finish = float_cell c_finish;
            preds = [||];
          }
        in
        let release =
          match c_release with Some i -> float_cell i | None -> 0.
        in
        match Hashtbl.find_opt by_app id with
        | None ->
          order := id :: !order;
          Hashtbl.add by_app id (cell c_name, release, ref [ row ])
        | Some (_, _, rows) -> rows := row :: !rows)
      body;
    Array.of_list
      (List.rev_map
         (fun id ->
           let name, release, rows = Hashtbl.find by_app id in
           {
             app = id;
             name;
             release;
             makespan = None;
             beta = None;
             alloc = None;
             rows = Array.of_list (List.rev !rows);
             pinned = [||];
           })
         !order)

let json_row j =
  let get what o = match o with Some v -> v | None -> parse_error "task without %s" what in
  let preds =
    match Jsonx.get_list "preds" j with
    | None -> [||]
    | Some l ->
      Array.of_list
        (List.map
           (fun p ->
             {
               pred_node = get "preds.node" (Jsonx.get_int "node" p);
               bytes =
                 (match Jsonx.get_float "bytes" p with
                 | Some b -> b
                 | None -> 0.);
             })
           l)
  in
  {
    node = get "node" (Jsonx.get_int "node" j);
    virt =
      (match Jsonx.member "virtual" j with
      | Some v -> ( match Jsonx.to_bool v with Some b -> b | None -> false)
      | None -> false);
    cluster = get "cluster" (Jsonx.get_int "cluster" j);
    procs =
      Array.of_list
        (List.map
           (fun p -> get "procs element" (Jsonx.to_int p))
           (get "procs" (Jsonx.get_list "procs" j)));
    start = get "start" (Jsonx.get_float "start" j);
    finish = get "finish" (Jsonx.get_float "finish" j);
    preds;
  }

let of_json_exn text =
  match Jsonx.parse text with
  | Error m -> parse_error "invalid JSON: %s" m
  | Ok j ->
    let apps =
      match Jsonx.get_list "applications" j with
      | Some l -> l
      | None -> parse_error "no applications array"
    in
    Array.of_list
      (List.map
         (fun a ->
           let rows =
             match Jsonx.get_list "tasks" a with
             | Some l -> Array.of_list (List.map json_row l)
             | None -> parse_error "application without tasks"
           in
           let pinned =
             match Jsonx.get_list "pinned" a with
             | Some l -> Array.of_list (List.map json_row l)
             | None -> [||]
           in
           let alloc =
             match Jsonx.get_list "alloc" a with
             | Some l ->
               Some
                 (Array.of_list
                    (List.map
                       (fun x ->
                         match Jsonx.to_int x with
                         | Some v -> v
                         | None -> parse_error "bad alloc element")
                       l))
             | None -> None
           in
           {
             app =
               (match Jsonx.get_int "id" a with
               | Some id -> id
               | None -> parse_error "application without id");
             name =
               (match Jsonx.get_string "name" a with
               | Some n -> n
               | None -> parse_error "application without name");
             release =
               (match Jsonx.get_float "release" a with
               | Some r -> r
               | None -> 0.);
             makespan = Jsonx.get_float "makespan" a;
             beta = Jsonx.get_float "beta" a;
             alloc;
             rows;
             pinned;
           })
         apps)

let of_csv text =
  match of_csv_exn text with
  | doc -> Ok doc
  | exception Parse m -> Error m

let of_json text =
  match of_json_exn text with
  | doc -> Ok doc
  | exception Parse m -> Error m
