module Ptg = Mcs_ptg.Ptg

let join_procs procs =
  String.concat "+" (Array.to_list (Array.map string_of_int procs))

(* Submission times only show up in the output when they carry
   information, so pre-release consumers of the trace formats keep
   seeing the exact shape they parsed before. *)
let checked_release release schedules =
  match release with
  | None -> None
  | Some r ->
    if Array.length r <> List.length schedules then
      invalid_arg "Trace: release length differs from schedules";
    if Array.for_all (fun t -> t = 0.) r then None else Some r

let to_csv ?release schedules =
  let release = checked_release release schedules in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "app,app_name,node,virtual,cluster,procs,nb_procs,start,finish";
  if release <> None then Buffer.add_string buf ",release";
  Buffer.add_char buf '\n';
  List.iteri
    (fun i sched ->
      let ptg = sched.Schedule.ptg in
      Array.iter
        (fun pl ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d,%b,%d,%s,%d,%.9g,%.9g" i
               ptg.Ptg.name pl.Schedule.node
               (Ptg.is_virtual ptg pl.Schedule.node)
               pl.Schedule.cluster
               (join_procs pl.Schedule.procs)
               (Array.length pl.Schedule.procs)
               pl.Schedule.start pl.Schedule.finish);
          (match release with
          | Some r -> Buffer.add_string buf (Printf.sprintf ",%.9g" r.(i))
          | None -> ());
          Buffer.add_char buf '\n')
        sched.Schedule.placements)
    schedules;
  Buffer.contents buf

(* Minimal JSON string escaping: the only strings we emit are PTG names
   (generator-controlled), but escape defensively anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?release schedules =
  let release = checked_release release schedules in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"applications\":[";
  List.iteri
    (fun i sched ->
      if i > 0 then Buffer.add_char buf ',';
      let ptg = sched.Schedule.ptg in
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":%d,\"name\":\"%s\"," ptg.Ptg.id
           (escape ptg.Ptg.name));
      (match release with
      | Some r -> Buffer.add_string buf (Printf.sprintf "\"release\":%.17g," r.(i))
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "\"makespan\":%.17g,\"tasks\":["
           sched.Schedule.makespan);
      Array.iteri
        (fun j pl ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"node\":%d,\"virtual\":%b,\"cluster\":%d,\"procs\":[%s],\
                \"start\":%.17g,\"finish\":%.17g}"
               pl.Schedule.node
               (Ptg.is_virtual ptg pl.Schedule.node)
               pl.Schedule.cluster
               (String.concat ","
                  (Array.to_list (Array.map string_of_int pl.Schedule.procs)))
               pl.Schedule.start pl.Schedule.finish))
        sched.Schedule.placements;
      Buffer.add_string buf "]}")
    schedules;
  Buffer.add_string buf "]}";
  Buffer.contents buf
