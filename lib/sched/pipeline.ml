type config = {
  procedure : Allocation.procedure;
  mapper : List_mapper.options;
}

let default_config =
  { procedure = Allocation.Scrap_max; mapper = List_mapper.default_options }

type prepared = {
  betas : float array;
  allocations : Allocation.result array;
}

let prepare ?(config = default_config) ?ref_cluster ?up_counts ~strategy
    platform ptgs =
  Mcs_obs.Obs.with_span "pipeline.allocation" @@ fun () ->
  let ref_cluster =
    match ref_cluster with
    | Some r -> r
    | None -> Reference_cluster.of_platform platform
  in
  let betas =
    Strategy.betas strategy ~ref_speed:ref_cluster.Reference_cluster.speed ptgs
  in
  let allocations =
    Array.of_list
      (List.mapi
         (fun i ptg ->
           Allocation.allocate ~procedure:config.procedure ?up_counts
             ref_cluster platform ~beta:betas.(i) ptg)
         ptgs)
  in
  { betas; allocations }

let schedule_concurrent ?(config = default_config) ?release ?check ~strategy
    platform ptgs =
  Mcs_obs.Obs.with_span "pipeline.schedule" @@ fun () ->
  let ref_cluster = Reference_cluster.of_platform platform in
  let prepared = prepare ~config ~strategy platform ptgs in
  let apps =
    List.mapi
      (fun i ptg -> (ptg, prepared.allocations.(i).Allocation.procs))
      ptgs
  in
  let schedules =
    List_mapper.run ~options:config.mapper ?release platform ref_cluster apps
  in
  (match check with Some f -> f ~prepared schedules | None -> ());
  schedules

let schedule_alone ?(config = default_config) platform ptg =
  match
    schedule_concurrent ~config ~strategy:Strategy.Selfish platform [ ptg ]
  with
  | [ s ] -> s
  | _ -> assert false
