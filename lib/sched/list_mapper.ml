module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform
module Task = Mcs_taskmodel.Task
module Redistribution = Mcs_taskmodel.Redistribution
module Floatx = Mcs_util.Floatx
module Avail_index = Mcs_util.Avail_index
module Obs = Mcs_obs.Obs

let c_tasks_mapped = Obs.counter "mapper.tasks_mapped"
let c_packing_attempts = Obs.counter "mapper.packing_attempts"
let c_packing_wins = Obs.counter "mapper.packing_wins"
let c_ready_peak = Obs.counter "mapper.ready_peak"
let c_avail_reorders = Obs.counter "mapper.avail_reorders"
let c_backfill_slots = Obs.counter "mapper.backfill_slots"

type ordering = Ready_tasks | Global_fcfs | Global_backfill

type options = {
  ordering : ordering;
  packing : bool;
}

let default_options = { ordering = Ready_tasks; packing = true }

(* Priority-queue entries: higher bottom level first; ties broken by
   application index then topological rank so that the order is total,
   deterministic, and precedence-compatible. *)
type entry = {
  priority : float;
  app : int;
  topo_rank : int;
  node : int;
}

let entry_cmp a b =
  if a.priority > b.priority then -1
  else if a.priority < b.priority then 1
  else begin
    let c = compare a.app b.app in
    if c <> 0 then c else compare a.topo_rank b.topo_rank
  end

type app_state = {
  ptg : Ptg.t;
  alloc : int array;                    (* reference processors per node *)
  bl : float array;                     (* bottom levels (priorities) *)
  topo_rank : int array;
  placements : Schedule.placement option array;
  pending : int array;                  (* unmapped predecessor count *)
}

(* One placement candidate on a given cluster. *)
type candidate = {
  procs : int array;
  cluster : int;
  start : float;
  finish : float;
}

let better_candidate a b =
  (* Earliest finish, then earliest start, then widest allocation. *)
  match (a, b) with
  | None, c | c, None -> c
  | Some ca, Some cb ->
    if cb.finish < ca.finish -. Floatx.eps then Some cb
    else if ca.finish < cb.finish -. Floatx.eps then Some ca
    else if cb.start < ca.start -. Floatx.eps then Some cb
    else if ca.start < cb.start -. Floatx.eps then Some ca
    else if Array.length cb.procs > Array.length ca.procs then Some cb
    else Some ca

let make_state (ptg, alloc) =
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  if Array.length alloc <> n then
    invalid_arg "List_mapper.run: allocation length differs from node count";
  Array.iter
    (fun a -> if a < 1 then invalid_arg "List_mapper.run: allocation < 1")
    alloc;
  let topo = Dag.topological_order dag in
  let topo_rank = Array.make n 0 in
  Array.iteri (fun rank v -> topo_rank.(v) <- rank) topo;
  let pending = Array.init n (fun v -> Dag.in_degree dag v) in
  {
    ptg;
    alloc;
    bl = [||]; (* filled by caller once the reference cluster is known *)
    topo_rank;
    placements = Array.make n None;
    pending;
  }

let bottom_levels ref_cluster ptg alloc =
  Dag.bottom_levels ptg.Ptg.dag
    ~node_weight:(fun v ->
      Reference_cluster.exec_time ref_cluster ptg.Ptg.tasks.(v)
        ~procs:alloc.(v))
    ~edge_weight:(fun _ -> 0.)

(* Map one task and return its placement. [floor] bounds the start of
   real tasks (submission time, plus the FCFS no-backfilling bound in
   Global_fcfs mode); [virtual_floor] bounds virtual entry/exit nodes
   (submission time only — the queue does not apply to them).

   [avail_idx] keeps each cluster's processors permanently sorted by
   (availability, id) — the order the former implementation re-derived
   with a per-task Array.sort — and [proc_avail] is the availability
   array shared with it. Everything that does not depend on the
   candidate width p' (per-predecessor route bandwidths, the aggregate
   NIC sums, sorted predecessor processor sets) is computed once per
   task or once per task×cluster and reused across all packing
   candidates; the resulting placements are bit-identical to the
   original search. *)
let place_task platform ref_cluster avail_idx proc_avail state v ~packing
    ~floor ~virtual_floor =
  let ptg = state.ptg in
  let dag = ptg.Ptg.dag in
  let preds =
    Array.map
      (fun (u, e) ->
        let pu =
          match state.placements.(u) with
          | Some p -> p
          | None -> assert false (* guaranteed by readiness *)
        in
        (pu, ptg.Ptg.edge_bytes.(e)))
      (Dag.preds dag v)
  in
  if Ptg.is_virtual ptg v then begin
    (* Virtual entry/exit: no processors, no duration; starts as soon as
       all predecessors are done. *)
    let start =
      Array.fold_left (fun acc (pu, _) -> Float.max acc pu.Schedule.finish)
        virtual_floor preds
    in
    { Schedule.node = v; cluster = 0; procs = [||]; start; finish = start }
  end
  else begin
    let task = ptg.Ptg.tasks.(v) in
    let np = Array.length preds in
    let nic = P.nic_bandwidth platform in
    let latency = P.latency platform in
    (* Cluster-independent predecessor data. *)
    let p_finish = Array.map (fun (pu, _) -> pu.Schedule.finish) preds in
    let p_bytes = Array.map (fun (_, bytes) -> bytes) preds in
    let p_cluster = Array.map (fun (pu, _) -> pu.Schedule.cluster) preds in
    let p_src =
      Array.map
        (fun (pu, _) -> max 1 (Array.length pu.Schedule.procs))
        preds
    in
    let p_sorted =
      Array.map
        (fun (pu, _) ->
          let s = Array.copy pu.Schedule.procs in
          Array.sort compare s;
          s)
        preds
    in
    (* Per-cluster scratch, overwritten for each k. *)
    let p_route = Array.make (max 1 np) 0. in
    let best = ref None in
    for k = 0 to P.cluster_count platform - 1 do
      let c = P.cluster platform k in
      (* Processors of cluster k ordered by (availability, id) — a
         read-only view maintained incrementally across commits. Under a
         fault mask the view holds the live processors only; a width is
         capped to what survives, and a fully-down cluster offers no
         candidate at all. *)
      let order = Avail_index.sorted avail_idx k in
      if Array.length order > 0 then begin
      let needed =
        min
          (Array.length order)
          (Reference_cluster.translate ref_cluster platform ~cluster:k
             state.alloc.(v))
      in
      (* Hoisted per-cluster predecessor sums: route bandwidths and the
         aggregate-NIC totals of the no-exemption case do not depend on
         the candidate width. *)
      let agg_total = ref 0. and agg_last = ref 0. and agg_senders = ref 0 in
      for i = 0 to np - 1 do
        p_route.(i) <-
          Redistribution.route_bandwidth platform
            ~src_cluster:p_cluster.(i) ~dst_cluster:k;
        if p_bytes.(i) > 0. then begin
          agg_total := !agg_total +. p_bytes.(i);
          agg_last := Float.max !agg_last p_finish.(i);
          incr agg_senders
        end
      done;
      let agg_total = !agg_total
      and agg_last = !agg_last
      and agg_senders = !agg_senders in
      (* Redistribution cost of predecessor [i] towards p' processors of
         cluster k: latency + bytes over the NIC/route-limited rate. *)
      let cost i p' =
        if p_bytes.(i) <= 0. then 0.
        else
          let rate =
            Float.min
              (float_of_int (min p_src.(i) p') *. nic)
              p_route.(i)
          in
          latency +. (p_bytes.(i) /. rate)
      in
      let candidate_for p' =
        (* All incoming transfers funnel through the p' destination
           NICs; when several predecessors send data, their aggregate
           bounds the data-ready time too. *)
        let aggregate0 =
          if agg_senders <= 1 then 0.
          else agg_last +. latency +. (agg_total /. (float_of_int p' *. nic))
        in
        (* Earliest possible start with p' processors, pessimistically
           assuming every incoming transfer is paid. *)
        let data_ready0 =
          let acc = ref 0. in
          for i = 0 to np - 1 do
            acc := Float.max !acc (p_finish.(i) +. cost i p')
          done;
          Float.max aggregate0 !acc
        in
        let start0 =
          Float.max floor
            (Float.max data_ready0 proc_avail.(order.(p' - 1)))
        in
        (* Best fit: among the processors available by start0, take the
           latest-available ones, leaving the most idle processors free
           for tasks that are ready now (this is what lets a small PTG
           slip in beside a large one, Figure 1). [order] is sorted by
           availability, so the boundary is a binary search. *)
        let fits_until =
          let bound = start0 +. Floatx.eps in
          let lo = ref p' and hi = ref (Array.length order) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if proc_avail.(order.(mid)) <= bound then lo := mid + 1
            else hi := mid
          done;
          !lo
        in
        let procs = Array.sub order (fits_until - p') p' in
        (* The in-place rule may cancel transfers from predecessors that
           ran on exactly the chosen processors; when no predecessor ran
           on this cluster with this width, nothing can be cancelled and
           the pessimistic bound is already exact. *)
        let may_cancel = ref false in
        for i = 0 to np - 1 do
          if
            p_bytes.(i) > 0. && p_cluster.(i) = k
            && Array.length p_sorted.(i) = p'
          then may_cancel := true
        done;
        let data_ready =
          if not !may_cancel then data_ready0
          else begin
            let chosen =
              let s = Array.copy procs in
              Array.sort compare s;
              s
            in
            let in_place i =
              p_cluster.(i) = k
              && Array.length p_sorted.(i) = p'
              && p_sorted.(i) = chosen
            in
            let total = ref 0. and last = ref 0. and senders = ref 0 in
            for i = 0 to np - 1 do
              if p_bytes.(i) > 0. && not (in_place i) then begin
                total := !total +. p_bytes.(i);
                last := Float.max !last p_finish.(i);
                incr senders
              end
            done;
            let aggregate =
              if !senders <= 1 then 0.
              else
                !last +. latency
                +. (!total /. (float_of_int p' *. nic))
            in
            let acc = ref 0. in
            for i = 0 to np - 1 do
              let ci =
                if p_bytes.(i) > 0. && in_place i then 0. else cost i p'
              in
              acc := Float.max !acc (p_finish.(i) +. ci)
            done;
            Float.max aggregate !acc
          end
        in
        (* [procs] is an availability-sorted window, so its availability
           maximum is its last element's. *)
        let avail = Float.max 0. proc_avail.(order.(fits_until - 1)) in
        let start = Float.max floor (Float.max data_ready avail) in
        let finish =
          start +. Task.time task ~gflops:c.P.gflops ~procs:p'
        in
        { procs; cluster = k; start; finish }
      in
      let full = candidate_for needed in
      best := better_candidate !best (Some full);
      if packing && needed > 1 then
        (* The allocation may shrink only if the task then starts
           strictly earlier and finishes no later than with its original
           allocation (Section 5). *)
        Obs.with_span "mapper.packing" @@ fun () ->
        for p' = needed - 1 downto 1 do
          Obs.incr c_packing_attempts;
          let cand = candidate_for p' in
          if
            cand.start < full.start -. Floatx.eps
            && cand.finish <= full.finish +. Floatx.eps
          then begin
            Obs.incr c_packing_wins;
            best := better_candidate !best (Some cand)
          end
        done
      end
    done;
    match !best with
    | None ->
      (* Only reachable when a fault mask leaves no live processor. *)
      invalid_arg "List_mapper.run: no live cluster can host a task"
    | Some c ->
      Avail_index.update avail_idx c.procs c.finish;
      Obs.incr ~by:(Array.length c.procs) c_avail_reorders;
      {
        Schedule.node = v;
        cluster = c.cluster;
        procs = c.procs;
        start = c.start;
        finish = c.finish;
      }
  end

(* Conservative-backfilling placement: earliest hole in the reservation
   timelines large enough for the translated allocation, searched over
   every cluster. Existing reservations never move, so no earlier-queued
   task can be delayed — the defining property of conservative
   backfilling. *)
let place_task_backfill platform ref_cluster timeline subsets state v ~floor
    ~virtual_floor =
  let ptg = state.ptg in
  let dag = ptg.Ptg.dag in
  let preds =
    Array.map
      (fun (u, e) ->
        let pu =
          match state.placements.(u) with
          | Some p -> p
          | None -> assert false
        in
        (pu, ptg.Ptg.edge_bytes.(e)))
      (Dag.preds dag v)
  in
  if Ptg.is_virtual ptg v then begin
    let start =
      Array.fold_left (fun acc (pu, _) -> Float.max acc pu.Schedule.finish)
        virtual_floor preds
    in
    { Schedule.node = v; cluster = 0; procs = [||]; start; finish = start }
  end
  else begin
    let task = ptg.Ptg.tasks.(v) in
    let best = ref None in
    for k = 0 to P.cluster_count platform - 1 do
      let c = P.cluster platform k in
      (* Live processors of cluster k; a fault mask may shrink or empty
         the subset, capping the width exactly as in [place_task]. *)
      let subset = subsets.(k) in
      if Array.length subset > 0 then begin
      let needed =
        min
          (Array.length subset)
          (Reference_cluster.translate ref_cluster platform ~cluster:k
             state.alloc.(v))
      in
      let exec = Task.time task ~gflops:c.P.gflops ~procs:needed in
      (* Pessimistic data-ready time: per-predecessor transfer cost plus
         the aggregate bound through the destination NICs. *)
      let per_pred =
        Array.fold_left
          (fun acc (pu, bytes) ->
            let cost =
              Redistribution.transfer_time platform
                ~src_cluster:pu.Schedule.cluster ~dst_cluster:k
                ~src_procs:(max 1 (Array.length pu.Schedule.procs))
                ~dst_procs:needed ~bytes
            in
            Float.max acc (pu.Schedule.finish +. cost))
          0. preds
      in
      let aggregate =
        let total = ref 0. and last = ref 0. and senders = ref 0 in
        Array.iter
          (fun (pu, bytes) ->
            if bytes > 0. then begin
              total := !total +. bytes;
              last := Float.max !last pu.Schedule.finish;
              incr senders
            end)
          preds;
        if !senders <= 1 then 0.
        else
          !last +. P.latency platform
          +. (!total /. (float_of_int needed *. P.nic_bandwidth platform))
      in
      let after = Float.max floor (Float.max per_pred aggregate) in
      (match
         Mcs_util.Timeline.find_slot ~procs_subset:subset timeline
           ~count:needed ~duration:exec ~after
       with
      | None -> ()
      | Some (start, procs) ->
        Obs.incr c_backfill_slots;
        let cand =
          { procs; cluster = k; start; finish = start +. exec }
        in
        best := better_candidate !best (Some cand))
      end
    done;
    match !best with
    | None ->
      (* Allocations are capped to fit a cluster, so this is only
         reachable when a fault mask leaves no live processor. *)
      invalid_arg "List_mapper.run: no live cluster can host a task"
    | Some cand ->
      Array.iter
        (fun p ->
          Mcs_util.Timeline.reserve timeline ~proc:p ~start:cand.start
            ~finish:cand.finish)
        cand.procs;
      {
        Schedule.node = v;
        cluster = cand.cluster;
        procs = cand.procs;
        start = cand.start;
        finish = cand.finish;
      }
  end

let run ?(options = default_options) ?release ?pinned ?avail ?up ?task_floor
    platform ref_cluster apps =
  if apps = [] then invalid_arg "List_mapper.run: no applications";
  Obs.with_span "mapper.run" @@ fun () ->
  (match up with
  | Some u when Array.length u <> P.total_procs platform ->
    invalid_arg "List_mapper.run: up length differs from platform"
  | _ -> ());
  let release =
    match release with
    | None -> Array.make (List.length apps) 0.
    | Some r ->
      if Array.length r <> List.length apps then
        invalid_arg "List_mapper.run: release length differs from apps";
      Array.iter
        (fun t ->
          if t < 0. then invalid_arg "List_mapper.run: negative release")
        r;
      Array.copy r
  in
  let states =
    Obs.with_span "mapper.prepare" @@ fun () ->
    Array.of_list
      (List.map
         (fun (ptg, alloc) ->
           let s = make_state (ptg, alloc) in
           { s with bl = bottom_levels ref_cluster ptg alloc })
         apps)
  in
  (* Per-task start floors (retry backoff under fault recovery): max'd
     with the application release time and the FCFS bound below. *)
  (match task_floor with
  | None -> ()
  | Some f ->
    if Array.length f <> Array.length states then
      invalid_arg "List_mapper.run: task_floor length differs from apps";
    Array.iteri
      (fun i state ->
        if Array.length f.(i) <> Dag.node_count state.ptg.Ptg.dag then
          invalid_arg "List_mapper.run: task_floor node count differs from DAG";
        Array.iter
          (fun t ->
            if Float.is_nan t || t < 0. then
              invalid_arg "List_mapper.run: ill-formed task floor")
          f.(i))
      states);
  let node_floor i v =
    match task_floor with None -> 0. | Some f -> f.(i).(v)
  in
  (* Freeze pinned placements: they count as already mapped (successors'
     pending counts drop) but are never (re)placed, and their processor
     occupancy is carried by [avail] rather than re-reserved here. *)
  (match pinned with
  | None -> ()
  | Some pin ->
    if Array.length pin <> Array.length states then
      invalid_arg "List_mapper.run: pinned length differs from apps";
    Array.iteri
      (fun i state ->
        let dag = state.ptg.Ptg.dag in
        let n = Dag.node_count dag in
        if Array.length pin.(i) <> n then
          invalid_arg "List_mapper.run: pinned node count differs from DAG";
        Array.iteri
          (fun v pl ->
            match pl with
            | None -> ()
            | Some pl ->
              if pl.Schedule.node <> v then
                invalid_arg "List_mapper.run: pinned placement mislabeled";
              state.placements.(v) <- Some pl;
              Array.iter
                (fun (w, _e) -> state.pending.(w) <- state.pending.(w) - 1)
                (Dag.succs dag v))
          pin.(i))
      states);
  let is_pinned i v =
    match pinned with
    | None -> false
    | Some pin -> pin.(i).(v) <> None
  in
  let proc_avail =
    match avail with
    | None -> Array.make (P.total_procs platform) 0.
    | Some a ->
      if Array.length a <> P.total_procs platform then
        invalid_arg "List_mapper.run: avail length differs from platform";
      Array.iter
        (fun t ->
          if t < 0. then invalid_arg "List_mapper.run: negative avail")
        a;
      Array.copy a
  in
  (* Per-cluster live processors: everything without a mask, survivors
     only under one. New placements land on live processors exclusively;
     pinned history (including completed work on processors that died
     later) is untouched. *)
  let groups =
    Array.init (P.cluster_count platform) (fun k ->
        let c = P.cluster platform k in
        let base = P.first_proc platform k in
        let all = Array.init c.P.procs (fun i -> base + i) in
        match up with
        | None -> all
        | Some u ->
          Array.of_list (List.filter (fun p -> u.(p)) (Array.to_list all)))
  in
  let avail_idx = Avail_index.create ~avail:proc_avail ~groups in
  let timeline =
    lazy
      (let t = Mcs_util.Timeline.create ~procs:(P.total_procs platform) in
       (* An occupied prefix [0, avail(p)) models both past time and the
          tail of tasks still running on p. *)
       Array.iteri
         (fun p a ->
           if a > 0. then
             Mcs_util.Timeline.reserve t ~proc:p ~start:0. ~finish:a)
         proc_avail;
       t)
  in
  let floor = ref 0. in
  (* [with_span] (not bare enter/leave) so that a raising placement —
     e.g. an ill-formed allocation surfacing as Invalid_argument — still
     closes the span and leaves the profile stack balanced. *)
  let commit i v =
    Obs.with_span "mapper.place" @@ fun () ->
    let state = states.(i) in
    let pl =
      match options.ordering with
      | Global_backfill ->
        place_task_backfill platform ref_cluster (Lazy.force timeline) groups
          state v
          ~floor:(Float.max release.(i) (node_floor i v))
          ~virtual_floor:release.(i)
      | Ready_tasks | Global_fcfs ->
        let fcfs_floor =
          match options.ordering with
          | Global_fcfs -> !floor
          | Ready_tasks | Global_backfill -> 0.
        in
        place_task platform ref_cluster avail_idx proc_avail state v
          ~packing:options.packing
          ~floor:
            (Float.max release.(i) (Float.max fcfs_floor (node_floor i v)))
          ~virtual_floor:release.(i)
    in
    state.placements.(v) <- Some pl;
    if not (Ptg.is_virtual state.ptg v) then Obs.incr c_tasks_mapped;
    (match options.ordering with
    | Global_fcfs ->
      (* No backfilling: later queue entries may not start earlier than
         this task did. Virtual tasks are bookkeeping, not queue jobs. *)
      if not (Ptg.is_virtual state.ptg v) then
        floor := Float.max !floor pl.Schedule.start
    | Ready_tasks | Global_backfill -> ());
    pl
  in
  (match options.ordering with
  | Ready_tasks ->
    let heap = Mcs_util.Heap.create ~cmp:entry_cmp in
    let push i v =
      Mcs_util.Heap.push heap
        {
          priority = states.(i).bl.(v);
          app = i;
          topo_rank = states.(i).topo_rank.(v);
          node = v;
        };
      Obs.record_max c_ready_peak (Mcs_util.Heap.length heap)
    in
    Array.iteri
      (fun i state ->
        for v = 0 to Dag.node_count state.ptg.Ptg.dag - 1 do
          if state.pending.(v) = 0 && not (is_pinned i v) then push i v
        done)
      states;
    let rec drain () =
      match Mcs_util.Heap.pop heap with
      | None -> ()
      | Some { app = i; node = v; _ } ->
        ignore (commit i v);
        let state = states.(i) in
        Array.iter
          (fun (w, _e) ->
            state.pending.(w) <- state.pending.(w) - 1;
            if state.pending.(w) = 0 && not (is_pinned i w) then push i w)
          (Dag.succs state.ptg.Ptg.dag v);
        drain ()
    in
    drain ()
  | Global_fcfs | Global_backfill ->
    (* Single static list over all applications, sorted by bottom level.
       Within a PTG the bottom-level order is precedence-compatible
       (ties resolved by topological rank). *)
    let all = ref [] in
    Array.iteri
      (fun i state ->
        for v = 0 to Dag.node_count state.ptg.Ptg.dag - 1 do
          if not (is_pinned i v) then
            all :=
              {
                priority = state.bl.(v);
                app = i;
                topo_rank = state.topo_rank.(v);
                node = v;
              }
              :: !all
        done)
      states;
    let sorted = List.sort entry_cmp !all in
    List.iter (fun { app = i; node = v; _ } -> ignore (commit i v)) sorted);
  Array.to_list
    (Array.map
       (fun state ->
         let placements =
           Array.map
             (fun pl ->
               match pl with
               | Some p -> p
               | None -> assert false (* every node gets mapped *))
             state.placements
         in
         Schedule.make ~ptg:state.ptg ~placements)
       states)
