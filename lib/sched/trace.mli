(** Schedule export and import for external tooling.

    Two formats:
    - CSV, one row per task placement (plottable as a Gantt chart with
      any spreadsheet or matplotlib);
    - a compact JSON document embedding applications, placements,
      makespans and per-task predecessor lists (hand-rolled
      encoder/decoder, no dependency).

    Both formats parse back with {!of_csv} / {!of_json}, so exported
    traces can be linted offline by [mcs_check]
    ({!Mcs_check.Trace_check} runs the invariant rules over a parsed
    {!doc}). CSV is lossy by design — no DAG edges, 9-significant-digit
    times — while JSON round-trips exactly. *)

val to_csv : ?release:float array -> Schedule.t list -> string
(** Header:
    [app,app_name,node,virtual,cluster,procs,nb_procs,start,finish].
    The [procs] cell joins global processor ids with ['+'].

    [release] gives per-application submission times (online / staggered
    runs). When present and not all zero, a [release] column is appended
    so the exported Gantt data is complete; when absent or all-zero the
    historical column set is kept unchanged.
    @raise Invalid_argument on a [release] of the wrong length. *)

val to_json :
  ?release:float array ->
  ?betas:float array ->
  ?alloc:int array array ->
  ?pinned:Schedule.placement array array ->
  Schedule.t list ->
  string
(** One JSON object with an [applications] array. Numbers are printed
    with enough digits to round-trip. Each task object carries its
    [preds] (predecessor node, data volume in bytes) so a trace is
    structurally self-contained and [mcs_check] can verify precedence
    without the generating program. [release] behaves as in {!to_csv}:
    when present and not all zero, each application object gains a
    [release] field; otherwise the historical shape is kept.

    The remaining optional arguments attach checker metadata (all
    indexed per application, in list order):
    - [betas] — the resource constraint β each application was
      allocated under (a [beta] field);
    - [alloc] — the reference allocation, processors per DAG node (an
      [alloc] array);
    - [pinned] — placements frozen by the online engine at its last
      reschedule (a [pinned] array of task objects); [mcs_check]
      verifies pinned tasks did not move.
    @raise Invalid_argument on a metadata array of the wrong length. *)

(** {2 Parsed traces} *)

type pred = {
  pred_node : int;
  bytes : float;
}

type row = {
  node : int;
  virt : bool;           (** the [virtual] column/field *)
  cluster : int;
  procs : int array;
  start : float;
  finish : float;
  preds : pred array;    (** empty for CSV rows *)
}

type app = {
  app : int;             (** CSV [app] column / JSON [id] *)
  name : string;
  release : float;       (** 0 when the export carried no release *)
  makespan : float option;  (** JSON only *)
  beta : float option;
  alloc : int array option;
  rows : row array;      (** in export order *)
  pinned : row array;    (** empty unless the export carried metadata *)
}

type doc = app array

val of_csv : string -> (doc, string) result
(** Parse a {!to_csv} export. Column order is recovered from the
    header, so the optional [release] column and future additions are
    handled; unknown columns are ignored. Rows are grouped by the [app]
    column, preserving row order. *)

val of_json : string -> (doc, string) result
(** Parse a {!to_json} export, including any checker metadata. Traces
    written before the [preds] field existed parse with empty [preds]. *)
