(** Schedule export for external tooling.

    Two formats:
    - CSV, one row per task placement (plottable as a Gantt chart with
      any spreadsheet or matplotlib);
    - a compact JSON document embedding applications, placements and
      makespans (hand-rolled encoder, no dependency). *)

val to_csv : ?release:float array -> Schedule.t list -> string
(** Header:
    [app,app_name,node,virtual,cluster,procs,nb_procs,start,finish].
    The [procs] cell joins global processor ids with ['+'].

    [release] gives per-application submission times (online / staggered
    runs). When present and not all zero, a [release] column is appended
    so the exported Gantt data is complete; when absent or all-zero the
    historical column set is kept unchanged.
    @raise Invalid_argument on a [release] of the wrong length. *)

val to_json : ?release:float array -> Schedule.t list -> string
(** One JSON object with an [applications] array. Numbers are printed
    with enough digits to round-trip. [release] behaves as in {!to_csv}:
    when present and not all zero, each application object gains a
    [release] field; otherwise the historical shape is kept. *)
