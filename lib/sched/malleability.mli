(** Malleability model: when and at what price a {e running} task may
    change width.

    The paper's tasks are moldable — the processor count is fixed when
    the task starts — so a running wide task cannot give processors
    back under an arrival spike, and a narrow one cannot widen once the
    platform drains. Following the malleable-task literature
    ("Scheduling Trees of Malleable Tasks", Guermouche et al.;
    "Multi-Resource List Scheduling of Moldable Jobs", Perotin et al.)
    this model adds the two ingredients the online engine needs to go
    past that:

    - {b legal resize points}: a segment started at [start] may only be
      preempted on the grid [start + k·quantum] ([k ≥ 1]) — work
      between grid points is indivisible;
    - {b redistribution cost}: a resize moving [m] processors (released
      plus acquired) charges [redist_cost · m] seconds of overhead
      before the resized segment makes progress, modelling the data
      redistribution of the moved block rows.

    Width bounds ([min_width], [max_width]) bound any resized segment;
    the trigger thresholds ([shrink_active_above], [grow_active_below])
    parameterize the default policy-kernel decision of {e when} to
    resize. The model itself is pure and engine-agnostic. *)

type t = {
  quantum : float;  (** grid spacing of legal resize points, seconds *)
  redist_cost : float;  (** seconds charged per moved processor *)
  min_width : int;  (** no resized segment runs on fewer processors *)
  max_width : int;  (** no resized segment runs on more processors *)
  shrink_active_above : int;
      (** default trigger: shrink while more applications are active *)
  grow_active_below : int;
      (** default trigger: grow while fewer applications are active *)
}

val default : t
(** [quantum = 30], [redist_cost = 0.05], widths unbounded
    ([min_width = 1], [max_width = max_int]), shrink above 2 active
    applications, grow below 2. *)

val validate : t -> unit
(** @raise Invalid_argument on a non-positive or non-finite quantum, a
    negative or non-finite cost, [min_width < 1],
    [max_width < min_width], or a negative trigger threshold. *)

val next_resize_point : t -> start:float -> now:float -> float
(** First grid point [start + k·quantum] ([k ≥ 1]) strictly after
    [now] (within the float tolerance): the earliest instant the
    segment may legally be preempted. *)

val resize_cost : t -> moved:int -> float
(** [redist_cost · moved] — the overhead in seconds of a resize that
    releases plus acquires [moved] processors in total. *)

val target_width : t -> active:int -> width:int -> cap:int -> int
(** The default trigger decision for a segment currently [width] wide
    while [active] applications are in the system: halve under an
    arrival spike ([active > shrink_active_above]), double when the
    platform drains ([active < grow_active_below]), hold otherwise.
    The result is clamped to [\[min_width, min cap max_width\]]; equal
    to [width] means "no resize". *)
