(** Homogeneous reference cluster (the HCPA device, Section 3).

    Allocations are computed on a virtual homogeneous cluster whose
    processors all run at the speed of the platform's slowest processor
    and whose size expresses the platform's aggregate power:
    [procs = ⌊Σ_k p_k·s_k / s_ref⌋]. A share β of the reference cluster
    is therefore exactly a share β of the globally available processing
    power, which is how the paper defines the resource constraint. At
    mapping time a reference allocation is translated to each real
    cluster so that the allocated power is preserved. *)

type t = private {
  speed : float;  (** reference processor speed, GFlop/s *)
  procs : int;    (** number of reference processors *)
}

val of_platform : Mcs_platform.Platform.t -> t
(** The reference cluster of a platform: slowest processor speed,
    [⌊aggregate power / that speed⌋] processors. *)

val make : speed:float -> procs:int -> t
(** Direct constructor, mainly for tests.
    @raise Invalid_argument on non-positive arguments. *)

val degrade : t -> power:float -> t
(** The reference cluster seen by a degraded platform: same reference
    speed (the full platform's slowest processor stays the yardstick, so
    β shares and reference execution times keep their meaning across
    outages), size recomputed as [max 1 ⌊power/speed⌋] from the
    surviving aggregate power. [degrade t ~power:(full power)] is [t]
    itself.
    @raise Invalid_argument on a non-positive or non-finite [power]. *)

val exec_time : t -> Mcs_taskmodel.Task.t -> procs:int -> float
(** Amdahl execution time of a task on [procs] reference processors;
    0 for virtual (zero) tasks. *)

val translate :
  t -> Mcs_platform.Platform.t -> cluster:int -> int -> int
(** [translate t platform ~cluster p] is the processor count on the real
    cluster whose power is closest to [p] reference processors:
    [round (p·s_ref/s_k)], clamped to [1, cluster size]. *)

val fits : t -> Mcs_platform.Platform.t -> cluster:int -> int -> bool
(** Whether [round (p·s_ref/s_k)] fits in the cluster without clamping. *)

val max_allocation : ?up_counts:int array -> t -> Mcs_platform.Platform.t -> int
(** Largest reference allocation whose translation fits in at least one
    cluster — the hard cap used during allocation (a data-parallel task
    runs inside a single cluster). With [up_counts] (surviving
    processors per cluster, see {!Mcs_platform.Platform.up_counts}) the
    fit is against the survivors only; the result is 0 when every
    cluster is fully down.
    @raise Invalid_argument if [up_counts] does not have exactly one
    entry per cluster. *)
