module P = Mcs_platform.Platform
module Task = Mcs_taskmodel.Task

type t = { speed : float; procs : int }

let make ~speed ~procs =
  if speed <= 0. then invalid_arg "Reference_cluster.make: non-positive speed";
  if procs <= 0 then invalid_arg "Reference_cluster.make: non-positive size";
  { speed; procs }

let of_platform platform =
  let speed = P.min_speed platform in
  let procs = int_of_float (Float.floor (P.total_power platform /. speed)) in
  make ~speed ~procs:(max 1 procs)

let degrade t ~power =
  if not (Float.is_finite power) || power <= 0. then
    invalid_arg "Reference_cluster.degrade: non-positive surviving power";
  (* The speed stays the full platform's yardstick so β shares and task
     estimates keep their meaning across outages; only the size — the
     aggregate power β is a share of — shrinks. *)
  { t with procs = max 1 (int_of_float (Float.floor (power /. t.speed))) }

let exec_time t task ~procs =
  if Task.is_zero task then 0. else Task.time task ~gflops:t.speed ~procs

let round_half_up x = int_of_float (Float.floor (x +. 0.5))

let translate t platform ~cluster p =
  if p < 1 then invalid_arg "Reference_cluster.translate: p < 1";
  let c = P.cluster platform cluster in
  let ideal = float_of_int p *. t.speed /. c.P.gflops in
  let r = max 1 (round_half_up ideal) in
  min r c.P.procs

let fits t platform ~cluster p =
  if p < 1 then invalid_arg "Reference_cluster.fits: p < 1";
  let c = P.cluster platform cluster in
  let ideal = float_of_int p *. t.speed /. c.P.gflops in
  max 1 (round_half_up ideal) <= c.P.procs

let max_allocation ?up_counts t platform =
  (* Largest p such that round(p·s_ref/s_k) <= the processors available
     on some cluster k. The translation is monotone in p, so compute the
     per-cluster bound directly: p·s_ref/s_k < available + 0.5. With an
     [up_counts] mask the available count is the surviving processors;
     a fully-down cluster contributes nothing. *)
  (match up_counts with
  | Some u when Array.length u <> P.cluster_count platform ->
    invalid_arg "Reference_cluster.max_allocation: up_counts length mismatch"
  | _ -> ());
  let best = ref 0 in
  for k = 0 to P.cluster_count platform - 1 do
    let c = P.cluster platform k in
    let available =
      match up_counts with None -> c.P.procs | Some u -> min c.P.procs u.(k)
    in
    if available >= 1 then begin
      let bound = (float_of_int available +. 0.5) *. c.P.gflops /. t.speed in
      let cap = int_of_float (Float.ceil bound) - 1 in
      let cap = max 1 cap in
      (* Guard against float rounding at the boundary. *)
      let translated p =
        max 1 (round_half_up (float_of_int p *. t.speed /. c.P.gflops))
      in
      let cap = if translated cap <= available then cap else cap - 1 in
      if cap > !best then best := cap
    end
  done;
  match up_counts with
  | None -> min (max 1 !best) t.procs
  | Some _ -> min !best t.procs
