module Floatx = Mcs_util.Floatx

type t = {
  quantum : float;
  redist_cost : float;
  min_width : int;
  max_width : int;
  shrink_active_above : int;
  grow_active_below : int;
}

let default =
  {
    quantum = 30.;
    redist_cost = 0.05;
    min_width = 1;
    max_width = max_int;
    shrink_active_above = 2;
    grow_active_below = 2;
  }

let validate t =
  if not (Float.is_finite t.quantum) || t.quantum <= 0. then
    invalid_arg "Malleability: quantum must be positive and finite";
  if not (Float.is_finite t.redist_cost) || t.redist_cost < 0. then
    invalid_arg "Malleability: redist_cost must be non-negative and finite";
  if t.min_width < 1 then invalid_arg "Malleability: min_width must be >= 1";
  if t.max_width < t.min_width then
    invalid_arg "Malleability: max_width must be >= min_width";
  if t.shrink_active_above < 0 then
    invalid_arg "Malleability: shrink_active_above must be >= 0";
  if t.grow_active_below < 0 then
    invalid_arg "Malleability: grow_active_below must be >= 0"

(* The legal resize points of a segment started at [start] are the grid
   start + k·quantum, k ≥ 1. The next one is strictly after [now]: a
   resize executed exactly on a grid point anchors a new segment there,
   whose own grid starts one quantum later. *)
let next_resize_point t ~start ~now =
  let k =
    Float.max 1. (Float.floor ((now -. start +. Floatx.eps) /. t.quantum) +. 1.)
  in
  start +. (k *. t.quantum)

let resize_cost t ~moved = t.redist_cost *. float_of_int moved

let target_width t ~active ~width ~cap =
  let clamp w = max t.min_width (min w (min cap t.max_width)) in
  if active > t.shrink_active_above then clamp (max 1 (width / 2))
  else if active < t.grow_active_below then clamp (width * 2)
  else width
