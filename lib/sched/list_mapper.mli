(** Concurrent mapping of allocated PTGs (Section 5).

    Tasks from all applications are mapped by a list scheduler whose
    priority is the bottom level (distance to the application's exit in
    reference execution times under the chosen allocations). Two
    orderings are provided:

    - [Ready_tasks] — the paper's proposal: only tasks whose
      predecessors are all mapped compete, so the entry task of a small
      PTG is considered immediately and cannot be postponed behind the
      whole body of a larger application;
    - [Global_fcfs] — the aggregated-ordering baseline ([15], Figure 1,
      top right): all tasks are sorted once by bottom level and mapped
      first-come-first-served with no backfilling, i.e., a task may not
      start before any task earlier in the list;
    - [Global_backfill] — the batch-scheduler remedy discussed in
      Section 5 (conservative backfilling [7]): same global list, but a
      task may slide into any idle hole since reservations, once made,
      never move — at the price of per-processor reservation timelines
      instead of simple availability times. Packing is not applied in
      this mode (batch reservations are rigid).

    A task is placed on the cluster and processor set giving the
    earliest estimated finish time (processor availability, predecessor
    finish times, and redistribution estimates). When [packing] is on
    and a task is delayed by processor availability, its allocation is
    reduced if and only if the reduction makes it start strictly earlier
    and finish no later than with its original allocation. *)

type ordering = Ready_tasks | Global_fcfs | Global_backfill

type options = {
  ordering : ordering;
  packing : bool;
}

val default_options : options
(** [Ready_tasks] with packing — the paper's mapping procedure. *)

val run :
  ?options:options ->
  ?release:float array ->
  ?pinned:Schedule.placement option array array ->
  ?avail:float array ->
  ?up:bool array ->
  ?task_floor:float array array ->
  Mcs_platform.Platform.t ->
  Reference_cluster.t ->
  (Mcs_ptg.Ptg.t * int array) list ->
  Schedule.t list
(** [run platform ref apps] maps the applications (each given with its
    per-node reference allocation) and returns their schedules in input
    order. [release] gives per-application submission times (the paper
    submits everything at 0, its future-work section motivates staggered
    arrivals): no task of application [i] may start before
    [release.(i)].

    [pinned] and [avail] support partial rescheduling by the online
    engine ({!Mcs_online.Engine}): [pinned.(i).(v) = Some pl] freezes
    node [v] of application [i] at placement [pl] — it is not remapped,
    it feeds its successors' data-ready times and the in-place
    redistribution rule, and its processor occupancy is assumed to be
    reflected in [avail]. [avail.(p)] is the time from which processor
    [p] may receive new work (default 0 everywhere): the availability
    profile of a partially-occupied platform. A predecessor of an
    unpinned node must be pinned or belong to the mapped set.

    [up] and [task_floor] support fault recovery. [up.(p) = false]
    masks processor [p] out: no new placement may use it, a translated
    width is capped to a cluster's surviving processors, and a cluster
    with no live processor offers no candidate (pinned history is
    untouched — completed work may legitimately sit on processors that
    died later). [task_floor.(i).(v)] is an extra per-task start floor
    (retry backoff), max'd with [release.(i)].
    @raise Invalid_argument on an empty list, an allocation array of
    the wrong length, a negative/ill-sized [release], ill-sized
    [pinned]/[avail]/[up]/[task_floor], or when [up] leaves no live
    cluster able to host some task. *)
