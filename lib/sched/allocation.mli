(** Constrained resource allocation — the SCRAP and SCRAP-MAX procedures
    of Section 4 (originally from the authors' PDCS'07 paper), built on
    the CPA/HCPA allocation loop.

    Both procedures start from one reference processor per task and
    repeatedly give one more processor to the critical-path task that
    benefits the most, until the critical path no longer dominates the
    constrained average area (the CPA convergence criterion, with the
    area computed against the β share of the reference cluster) or the
    resource constraint blocks every candidate:

    - {b SCRAP} enforces the constraint globally: the schedule's average
      power usage [Σ(t_v·p_v)/T_CP] must stay within [β·procs] — which
      is exactly the CPA stop criterion against the constrained area, so
      the loop simply stops at the boundary.
    - {b SCRAP-MAX} enforces it per precedence level: for every level,
      [Σ_{v at level} p_v ≤ max(1 task each, ⌊β·procs⌋)], so that
      concurrently-ready tasks of one level can always run side by
      side within the PTG's power share. *)

type procedure = Scrap | Scrap_max

type result = {
  procs : int array;        (** reference processors per DAG node *)
  iterations : int;         (** number of +1 increments performed *)
  critical_path : float;    (** final critical path length, seconds *)
  average_area : float;     (** final T_A against the β share *)
}

val allocate :
  ?procedure:procedure ->
  ?up_counts:int array ->
  Reference_cluster.t ->
  Mcs_platform.Platform.t ->
  beta:float ->
  Mcs_ptg.Ptg.t ->
  result
(** [allocate ref platform ~beta ptg] computes the allocation (default
    procedure: [Scrap_max]). Virtual entry/exit nodes keep one processor
    and zero cost. Allocations are capped by
    {!Reference_cluster.max_allocation} so every task fits in at least
    one real cluster — against the surviving processors only when
    [up_counts] is given (degraded platform; see
    {!Mcs_platform.Platform.up_counts}).
    @raise Invalid_argument unless [0 < beta <= 1]. *)

val budget_of : Reference_cluster.t -> beta:float -> int
(** [max 1 ⌊β·procs⌋] — the per-level reference-processor budget of
    SCRAP-MAX (Eq. 2). The floor is epsilon-guarded so a product landing
    one ulp below an integer (0.57 × 100 = 56.999999999999993) does not
    silently drop a processor. Every consumer of the level budget (the
    allocator and the invariant checker) must use this one definition. *)

val level_usage : Mcs_ptg.Ptg.t -> int array -> int array
(** Total reference processors allocated per precedence level (virtual
    nodes excluded) — used to audit constraint satisfaction. *)

val respects_level_constraint :
  Reference_cluster.t -> beta:float -> Mcs_ptg.Ptg.t -> int array -> bool
(** Whether every precedence level satisfies
    [Σ p_v ≤ max(level population, ⌊β·procs⌋)] — the population floor
    accounts for levels whose 1-processor-per-task minimum already
    exceeds the share. *)
