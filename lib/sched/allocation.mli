(** Constrained resource allocation — the SCRAP and SCRAP-MAX procedures
    of Section 4 (originally from the authors' PDCS'07 paper), built on
    the CPA/HCPA allocation loop.

    Both procedures start from one reference processor per task and
    repeatedly give one more processor to the critical-path task that
    benefits the most, until the critical path no longer dominates the
    constrained average area (the CPA convergence criterion, with the
    area computed against the β share of the reference cluster) or the
    resource constraint blocks every candidate:

    - {b SCRAP} enforces the constraint globally: the schedule's average
      power usage [Σ(t_v·p_v)/T_CP] must stay within [β·procs] — which
      is exactly the CPA stop criterion against the constrained area, so
      the loop simply stops at the boundary.
    - {b SCRAP-MAX} enforces it per precedence level: for every level,
      [Σ_{v at level} p_v ≤ max(1 task each, ⌊β·procs⌋)], so that
      concurrently-ready tasks of one level can always run side by
      side within the PTG's power share.

    {2 Incremental allocation}

    Online rescheduling runs this procedure once per active application
    per generation, which made it the dominant cost of the engine
    (DESIGN.md §14). Two mechanisms remove that cost without changing a
    single allocation:

    - {b arenas} ({!Alloc_arena.t}): {!allocate_into} reuses
      caller-owned scratch buffers across calls, so the loop itself
      performs no per-call buffer allocation;
    - {b caching} ({!allocate_cached}): the increment trajectory of the
      loop depends on β only through the {e integer} per-level budget
      [⌊β·procs⌋] (and the allocation cap), while β proper only decides
      {e where along that trajectory} the CPA stop criterion fires. A
      per-application cache records trajectories keyed by cap, each step
      annotated with the {e budget interval} under which its choice is
      provably what a scratch run would choose (the usage the choice
      consumed at its level, up to the smallest budget that would have
      unblocked a better candidate). A request replays the recorded
      stop tests and interval checks — bit-identical to a scratch run
      by construction, at O(nodes + steps) instead of
      O(steps · (nodes + edges)) — and a request whose budget escapes
      some step's interval {e forks}: the validated prefix is copied in
      O(nodes + steps) and only the divergent tail runs live. Online
      budgets drift a few processors per generation, so forks diverge
      deep and tails stay short. *)

type procedure = Scrap | Scrap_max
(** Which resource constraint bounds the increment loop: the global
    average-power criterion ([Scrap]) or the per-precedence-level
    budget on top of it ([Scrap_max], the paper's default). *)

type result = {
  procs : int array;        (** reference processors per DAG node *)
  iterations : int;         (** number of +1 increments performed *)
  critical_path : float;    (** final critical path length, seconds *)
  average_area : float;     (** final T_A against the β share *)
}
(** Outcome of one allocation. [procs] is indexed by DAG node; virtual
    entry/exit nodes keep one processor and zero cost. *)

val allocate :
  ?procedure:procedure ->
  ?up_counts:int array ->
  Reference_cluster.t ->
  Mcs_platform.Platform.t ->
  beta:float ->
  Mcs_ptg.Ptg.t ->
  result
(** [allocate ref platform ~beta ptg] computes the allocation (default
    procedure: [Scrap_max]). Virtual entry/exit nodes keep one processor
    and zero cost. Allocations are capped by
    {!Reference_cluster.max_allocation} so every task fits in at least
    one real cluster — against the surviving processors only when
    [up_counts] is given (degraded platform; see
    {!Mcs_platform.Platform.up_counts}). Pure: allocates its own
    scratch; offline callers and one-shot uses should prefer it.
    @raise Invalid_argument unless [0 < beta <= 1]. *)

val allocate_into :
  ?procedure:procedure ->
  ?up_counts:int array ->
  arena:Alloc_arena.t ->
  Reference_cluster.t ->
  Mcs_platform.Platform.t ->
  beta:float ->
  Mcs_ptg.Ptg.t ->
  result
(** Exactly {!allocate}, but running the loop on the arena's reusable
    scratch buffers instead of fresh arrays — same result, field for
    field, with no per-call buffer allocation beyond the returned
    [procs]. The arena is single-owner state: never share one across
    domains (each serving shard owns its own through its engine).
    @raise Invalid_argument unless [0 < beta <= 1]. *)

type cache
(** Per-application allocation cache: materialised increment
    trajectories keyed by allocation cap, every step carrying its
    validity interval over per-level budgets, with an MRU bound on
    retained trajectories. A cache binds to the first PTG, procedure
    and reference speed it serves and rejects any other — everything
    else an allocation depends on (β, the reference-cluster size, the
    degraded cap) is checked at replay time, which is how
    degraded-platform generations get correct results from the same
    cache: their different cap selects different trajectories. *)

type stats = {
  hits : int;      (** same cap, same budget and stop power as the last
                       request the entry served (β alone is not enough —
                       on a degraded reference cluster the same β means
                       a different ⌊β·procs⌋): cached result as-is *)
  rescales : int;  (** β moved: a recorded trajectory replayed (and
                       possibly extended) under the new budget *)
  misses : int;    (** no trajectory survived replay: a live run was
                       needed — forked off the deepest validated prefix
                       when one exists, fully from scratch otherwise *)
}
(** Cumulative outcome counts of {!allocate_cached} calls. Survives
    {!cache_clear} (the counts describe the cache's lifetime, not its
    current contents). *)

val cache_create : unit -> cache
(** Fresh empty cache. One per application per engine. *)

val cache_clear : cache -> unit
(** Drop every entry (the caller wants the memory back). Statistics and
    the PTG binding are kept; the next call is a miss that re-records
    into the same binding. *)

val cache_release : cache -> unit
(** {!cache_clear} plus drop the PTG/procedure/speed binding — the
    departed application's memory is fully released (the bound PTG
    becomes collectable) and the cache may later be re-bound to a
    different PTG. Scoped by construction: caches are per-application,
    so releasing one never evicts a still-active neighbour's
    trajectories. Statistics survive. *)

val cache_copy : cache -> cache
(** Deep, self-contained copy: entries, frontier state and statistics
    are cloned (mutation on either side is invisible to the other); the
    PTG binding is shared, as the binding is by physical equality and a
    snapshot-restored engine keeps allocating the same PTG values.
    Serving the same request sequence to the copy and the original
    yields bit-identical results — the snapshot/restore bar. *)

val cache_trim : cache -> node:int -> unit
(** Invalidate the trajectory {e suffix} that involves [node]: in every
    entry, drop all recorded steps from the first increment of [node]
    onwards and rebuild the frontier at that prefix. The prefix is
    untouched (it never priced [node] beyond its initial processor), so
    later requests replay it and re-derive the dropped tail live —
    results stay bit-identical to scratch runs, by the same argument as
    {!cache_copy}. Used by the online engine when a malleability resize
    re-prices [node]'s remaining work at a new width: only this
    application's cache is touched (per-application scoping is by
    construction), and only the suffix is lost. No-op on an unbound or
    empty cache, or when no trajectory increments [node]. *)

val cache_stats : cache -> stats
(** Lifetime hit/rescale/miss counts. *)

val cache_entry_count : cache -> int
(** Number of trajectories currently materialised — bounded by a small
    internal MRU limit. *)

val allocate_cached :
  ?procedure:procedure ->
  ?up_counts:int array ->
  cache:cache ->
  arena:Alloc_arena.t ->
  Reference_cluster.t ->
  Mcs_platform.Platform.t ->
  beta:float ->
  Mcs_ptg.Ptg.t ->
  result
(** Cached {!allocate}: bit-identical results — the same [procs],
    [iterations], [critical_path] and [average_area], float for float —
    at a fraction of the cost whenever a recorded trajectory's budget
    intervals cover the request, and at the cost of only the divergent
    tail otherwise. The returned [procs] array is owned by the cache on
    the exact-hit path and must not be mutated by the caller (the
    engine's shrink-on-retry derives a copy). Updates the
    [alloc.cache.*] observability counters.
    @raise Invalid_argument unless [0 < beta <= 1], or if the cache is
    reused with a different PTG, procedure or reference speed. *)

val budget_of : Reference_cluster.t -> beta:float -> int
(** [max 1 ⌊β·procs⌋] — the per-level reference-processor budget of
    SCRAP-MAX (Eq. 2). The floor is epsilon-guarded so a product landing
    one ulp below an integer (0.57 × 100 = 56.999999999999993) does not
    silently drop a processor. Every consumer of the level budget (the
    allocator, the invariant checker and the allocation cache key) must
    use this one definition. *)

val level_usage : Mcs_ptg.Ptg.t -> int array -> int array
(** Total reference processors allocated per precedence level (virtual
    nodes excluded) — used to audit constraint satisfaction. *)

val level_population : Mcs_ptg.Ptg.t -> int array
(** Number of real (non-virtual) tasks per precedence level — the
    population floor of the level constraint. *)

val respects_level_constraint :
  Reference_cluster.t -> beta:float -> Mcs_ptg.Ptg.t -> int array -> bool
(** Whether every precedence level satisfies
    [Σ p_v ≤ max(level population, ⌊β·procs⌋)] — the population floor
    accounts for levels whose 1-processor-per-task minimum already
    exceeds the share. *)
