(** End-to-end two-step scheduling: β determination → constrained
    allocation → concurrent mapping. This is the entry point used by the
    examples, the CLI and the experiment harness. *)

type config = {
  procedure : Allocation.procedure;  (** default [Scrap_max] *)
  mapper : List_mapper.options;      (** default ready-list + packing *)
}

val default_config : config
(** The paper's configuration: SCRAP-MAX allocation, ready-list mapping
    with allocation packing. *)

type prepared = {
  betas : float array;                    (** β per application *)
  allocations : Allocation.result array;  (** allocation per application *)
}

val prepare :
  ?config:config ->
  ?ref_cluster:Reference_cluster.t ->
  ?up_counts:int array ->
  strategy:Strategy.t ->
  Mcs_platform.Platform.t ->
  Mcs_ptg.Ptg.t list ->
  prepared
(** Run the allocation step only. [ref_cluster] overrides the reference
    cluster derived from the full platform — the online engine passes a
    {!Reference_cluster.degrade}d one during an outage so β shares are
    taken of the surviving aggregate power; [up_counts] likewise caps
    per-task allocations to what still fits in some live cluster. *)

val schedule_concurrent :
  ?config:config ->
  ?release:float array ->
  ?check:(prepared:prepared -> Schedule.t list -> unit) ->
  strategy:Strategy.t ->
  Mcs_platform.Platform.t ->
  Mcs_ptg.Ptg.t list ->
  Schedule.t list
(** Allocate each PTG under its strategy-determined β, then map all of
    them concurrently. Schedules are returned in input order.
    [release] gives per-application submission times (default all 0).

    [check] is called once with the allocation step's output and the
    final schedules, before they are returned — a seam for the
    invariant analyzer ([Mcs_check.Check.pipeline_hook] raises on any
    violated rule) that keeps this library free of a dependency on the
    checker. Exceptions it raises propagate. *)

val schedule_alone :
  ?config:config ->
  Mcs_platform.Platform.t ->
  Mcs_ptg.Ptg.t ->
  Schedule.t
(** Dedicated-platform schedule (β = 1, no competitor) — the M_own
    baseline of the slowdown metric. *)
