module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module Obs = Mcs_obs.Obs

let c_calls = Obs.counter "alloc.calls"
let c_increments = Obs.counter "alloc.increments"

type procedure = Scrap | Scrap_max

type result = {
  procs : int array;
  iterations : int;
  critical_path : float;
  average_area : float;
}

let level_usage ptg procs =
  let dag = ptg.Ptg.dag in
  let levels = Dag.depth_levels dag in
  let usage = Array.make (max 1 (Dag.depth dag)) 0 in
  for v = 0 to Dag.node_count dag - 1 do
    if not (Ptg.is_virtual ptg v) then
      usage.(levels.(v)) <- usage.(levels.(v)) + procs.(v)
  done;
  usage

let level_population ptg =
  let dag = ptg.Ptg.dag in
  let levels = Dag.depth_levels dag in
  let pop = Array.make (max 1 (Dag.depth dag)) 0 in
  for v = 0 to Dag.node_count dag - 1 do
    if not (Ptg.is_virtual ptg v) then
      pop.(levels.(v)) <- pop.(levels.(v)) + 1
  done;
  pop

(* The epsilon guards against [beta *. procs] landing one ulp below an
   integer (e.g. 0.57 × 100 = 56.999999999999993), which would silently
   drop a whole processor from the level budget. *)
let budget_of ref_cluster ~beta =
  max 1
    (int_of_float
       (Float.floor
          ((beta *. float_of_int ref_cluster.Reference_cluster.procs)
          +. Mcs_util.Floatx.eps)))

let respects_level_constraint ref_cluster ~beta ptg procs =
  let budget = budget_of ref_cluster ~beta in
  let usage = level_usage ptg procs in
  let pop = level_population ptg in
  let ok = ref true in
  Array.iteri
    (fun l u -> if u > max budget pop.(l) then ok := false)
    usage;
  !ok

let allocate ?(procedure = Scrap_max) ?up_counts ref_cluster platform ~beta ptg
    =
  if beta <= 0. || beta > 1. then
    invalid_arg (Printf.sprintf "Allocation.allocate: beta = %g" beta);
  Obs.with_span "alloc.scrap" @@ fun () ->
  Obs.incr c_calls;
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let levels = Dag.depth_levels dag in
  let cap = Reference_cluster.max_allocation ?up_counts ref_cluster platform in
  let budget = budget_of ref_cluster ~beta in
  let procs = Array.make n 1 in
  let usage = level_usage ptg procs in
  let exec = Array.make n 0. in
  let refresh_exec v =
    exec.(v) <-
      Reference_cluster.exec_time ref_cluster ptg.Ptg.tasks.(v)
        ~procs:procs.(v)
  in
  for v = 0 to n - 1 do
    refresh_exec v
  done;
  let beta_power = beta *. float_of_int ref_cluster.Reference_cluster.procs in
  let average_area () =
    let area = ref 0. in
    for v = 0 to n - 1 do
      area := !area +. (exec.(v) *. float_of_int procs.(v))
    done;
    !area /. beta_power
  in
  (* Bottom and top levels under current exec times (computation only,
     as in CPA: communications are handled at mapping time). *)
  let node_weight v = exec.(v) in
  let edge_weight _ = 0. in
  let iterations = ref 0 in
  let max_iterations = (cap * n) + 1 in
  let continue = ref true in
  let cp = ref 0. in
  while !continue && !iterations < max_iterations do
    let bl = Dag.bottom_levels dag ~node_weight ~edge_weight in
    let tl = Dag.top_levels dag ~node_weight ~edge_weight in
    cp := bl.(Ptg.entry ptg);
    let ta = average_area () in
    if !cp <= ta +. Mcs_util.Floatx.eps then continue := false
    else begin
      (* Candidates: critical tasks that can still grow. *)
      let tolerance = 1e-9 *. Float.max 1. !cp in
      let best = ref None in
      for v = 0 to n - 1 do
        if
          (not (Ptg.is_virtual ptg v))
          && Float.abs (tl.(v) +. bl.(v) -. !cp) <= tolerance
          && procs.(v) < cap
          &&
          match procedure with
          | Scrap -> true
          | Scrap_max -> usage.(levels.(v)) + 1 <= budget
        then begin
          let faster =
            Reference_cluster.exec_time ref_cluster ptg.Ptg.tasks.(v)
              ~procs:(procs.(v) + 1)
          in
          let gain = exec.(v) -. faster in
          if gain > 0. then
            match !best with
            | Some (_, best_gain) when best_gain >= gain -> ()
            | _ -> best := Some (v, gain)
        end
      done;
      match !best with
      | None -> continue := false
      | Some (v, _gain) ->
        procs.(v) <- procs.(v) + 1;
        usage.(levels.(v)) <- usage.(levels.(v)) + 1;
        refresh_exec v;
        Obs.incr c_increments;
        incr iterations
    end
  done;
  let bl = Dag.bottom_levels dag ~node_weight ~edge_weight in
  {
    procs;
    iterations = !iterations;
    critical_path = bl.(Ptg.entry ptg);
    average_area = average_area ();
  }
