module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module Task = Mcs_taskmodel.Task
module Obs = Mcs_obs.Obs
module Floatx = Mcs_util.Floatx

let c_calls = Obs.counter "alloc.calls"
let c_increments = Obs.counter "alloc.increments"
let c_hits = Obs.counter "alloc.cache.hits"
let c_rescales = Obs.counter "alloc.cache.rescales"
let c_misses = Obs.counter "alloc.cache.misses"

type procedure = Scrap | Scrap_max

type result = {
  procs : int array;
  iterations : int;
  critical_path : float;
  average_area : float;
}

let level_usage ptg procs =
  let dag = ptg.Ptg.dag in
  let levels = Dag.depth_levels dag in
  let usage = Array.make (max 1 (Dag.depth dag)) 0 in
  for v = 0 to Dag.node_count dag - 1 do
    if not (Ptg.is_virtual ptg v) then
      usage.(levels.(v)) <- usage.(levels.(v)) + procs.(v)
  done;
  usage

let level_population ptg =
  let dag = ptg.Ptg.dag in
  let levels = Dag.depth_levels dag in
  let pop = Array.make (max 1 (Dag.depth dag)) 0 in
  for v = 0 to Dag.node_count dag - 1 do
    if not (Ptg.is_virtual ptg v) then
      pop.(levels.(v)) <- pop.(levels.(v)) + 1
  done;
  pop

(* The epsilon guards against [beta *. procs] landing one ulp below an
   integer (e.g. 0.57 × 100 = 56.999999999999993), which would silently
   drop a whole processor from the level budget. *)
let budget_of ref_cluster ~beta =
  max 1
    (int_of_float
       (Float.floor
          ((beta *. float_of_int ref_cluster.Reference_cluster.procs)
          +. Floatx.eps)))

let respects_level_constraint ref_cluster ~beta ptg procs =
  let budget = budget_of ref_cluster ~beta in
  let usage = level_usage ptg procs in
  let pop = level_population ptg in
  let ok = ref true in
  Array.iteri
    (fun l u -> if u > max budget pop.(l) then ok := false)
    usage;
  !ok

(* ---------------- The CPA/SCRAP increment loop ----------------

   The loop state is (procs, usage, exec, area): per-node allocations,
   per-level usage, per-node execution estimates under those
   allocations, and the running raw area Σ exec·procs (the numerator of
   the CPA average-area criterion — β only enters through the divisor
   β·procs, applied at the comparison). The area is maintained
   incrementally: one increment changes exactly one term of the sum.

   Everything below β is deterministic in (budget, cap): the candidate
   filter reads β only through the integer per-level [budget], so two
   calls agreeing on (budget, cap) walk the {e same} increment
   trajectory and differ only in where the β-continuous stop criterion
   fires. The allocation cache sharpens this per step: each increment
   records the budget {e interval} under which its choice is provably
   unchanged, so one recorded trajectory serves whole ranges of budgets,
   not just the one it ran under. *)

let initial_area exec procs n =
  let area = ref 0. in
  for v = 0 to n - 1 do
    area := !area +. (exec.(v) *. float_of_int procs.(v))
  done;
  !area

(* The inner loop prices thousands of candidate increments; deriving a
   task's flop count every time means a [pow]/[log] per candidate
   (Task.flops). The sequential time on the reference speed is constant
   per node, so it is computed once per allocation and Amdahl's law
   applied directly — the same expression [Task.time] evaluates, on the
   same floats, so the results are bit-identical. *)
let fill_seq_alpha ~gflops ptg ~seq ~alpha n =
  for v = 0 to n - 1 do
    let task = ptg.Ptg.tasks.(v) in
    seq.(v) <- (if Task.is_zero task then 0. else Task.seq_time task ~gflops);
    alpha.(v) <- task.Task.alpha
  done

let exec_at ~seq ~alpha v ~procs =
  seq.(v) *. (alpha.(v) +. ((1. -. alpha.(v)) /. float_of_int procs))

(* One run of the increment loop from the state in [procs]/[usage]/
   [exec]/[area0] until the stop criterion (cp ≤ area/β·procs) or
   candidate exhaustion. [bl]/[tl] are per-iteration scratch (arena
   buffers). [record_state] observes every visited state (its critical
   path and raw area, the final one included); [record_inc] the chosen
   node of every increment together with the {e budget interval}
   [[req, ceil)] under which the choice is provably the one any budget
   in the interval would make: [req] is the per-level usage consumed by
   the choice (the smallest budget that allows it), [ceil] the smallest
   budget that would have unblocked a better candidate ([max_int] when
   none was blocked — the common case). Returns (increments done, final
   critical path, final raw area, blocked, blocked_ceil): [blocked_ceil]
   is, when the run ends by candidate exhaustion, the smallest budget
   under which it would instead have continued ([max_int] when the loop
   is exhausted under every budget). *)
let run_loop ~record_state ~record_inc ~procedure ~budget ~cap ~beta_power
    ~bl ~tl ~dirty ~gain ~seq ~alpha ptg levels ~procs ~usage ~exec area0 =
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let node_weight v = exec.(v) in
  let edge_weight _ = 0. in
  let area = ref area0 in
  let steps = ref 0 in
  let max_steps = (cap * n) + 1 in
  let continue = ref true in
  let closed = ref false in
  let closed_ceil = ref max_int in
  let cp = ref 0. in
  (* Bottom and top levels under the starting exec times (computation
     only, as in CPA: communications are handled at mapping time). Each
     increment changes exactly one execution time, so the loop repairs
     the levels along the affected cone instead of re-traversing the
     DAG per iteration. *)
  Dag.bottom_levels_into dag ~node_weight ~edge_weight bl;
  Dag.top_levels_into dag ~node_weight ~edge_weight tl;
  (* A node's gain (speedup of one more processor) moves only when its
     own allocation does, so it is priced once here and re-priced per
     increment received — not per candidate scan. *)
  for v = 0 to n - 1 do
    gain.(v) <- exec.(v) -. exec_at ~seq ~alpha v ~procs:(procs.(v) + 1)
  done;
  while !continue && !steps < max_steps do
    cp := bl.(Ptg.entry ptg);
    record_state !cp !area;
    let ta = !area /. beta_power in
    if !cp <= ta +. Floatx.eps then continue := false
    else begin
      (* Candidates: critical tasks that can still grow. Virtual nodes
         are skipped via [seq.(v) = 0.] (zero task ⇔ zero sequential
         time; a zero-seq node can never show positive gain either), a
         plain float load where [Ptg.is_virtual] is a call per node per
         step. *)
      let tolerance = 1e-9 *. Float.max 1. !cp in
      let best = ref None in
      let any_blocked = ref false in
      for v = 0 to n - 1 do
        if
          seq.(v) > 0.
          && Float.abs (tl.(v) +. bl.(v) -. !cp) <= tolerance
          && procs.(v) < cap
        then
          if
            match procedure with
            | Scrap -> true
            | Scrap_max -> usage.(levels.(v)) + 1 <= budget
          then begin
            let g = gain.(v) in
            if g > 0. then
              match !best with
              | Some (_, best_gain) when best_gain >= g -> ()
              | _ -> best := Some (v, g)
          end
          else any_blocked := true
      done;
      (* Smallest budget that would have changed the selection above: a
         budget-blocked candidate [u] displaces the scan winner [c] iff
         its gain is strictly larger, or equal with [u] scanned first
         (the loop keeps the first maximum). With no winner, any
         blocked candidate with positive gain continues the loop.
         Second pass only when some candidate was actually blocked —
         the filter rarely binds, so this almost never runs. *)
      let ceil_of best =
        if not !any_blocked then max_int
        else begin
          let ceil = ref max_int in
          for u = 0 to n - 1 do
            if
              seq.(u) > 0.
              && Float.abs (tl.(u) +. bl.(u) -. !cp) <= tolerance
              && procs.(u) < cap
              && (match procedure with
                 | Scrap -> false
                 | Scrap_max -> usage.(levels.(u)) + 1 > budget)
            then begin
              let g = gain.(u) in
              let beats =
                g > 0.
                &&
                match best with
                | None -> true
                | Some (c, best_gain) ->
                  g > best_gain || (g = best_gain && u < c)
              in
              if beats then ceil := min !ceil (usage.(levels.(u)) + 1)
            end
          done;
          !ceil
        end
      in
      match !best with
      | None ->
        continue := false;
        closed := true;
        closed_ceil := ceil_of None
      | Some (v, _gain) ->
        let req =
          match procedure with
          | Scrap -> 1
          | Scrap_max -> usage.(levels.(v)) + 1
        in
        record_inc v ~req ~ceil:(ceil_of !best);
        let before = exec.(v) *. float_of_int procs.(v) in
        procs.(v) <- procs.(v) + 1;
        usage.(levels.(v)) <- usage.(levels.(v)) + 1;
        exec.(v) <- exec_at ~seq ~alpha v ~procs:procs.(v);
        gain.(v) <- exec.(v) -. exec_at ~seq ~alpha v ~procs:(procs.(v) + 1);
        area := !area -. before +. (exec.(v) *. float_of_int procs.(v));
        Dag.bottom_levels_update dag ~node_weight ~edge_weight ~changed:v
          ~dirty bl;
        Dag.top_levels_update dag ~node_weight ~edge_weight ~changed:v ~dirty
          tl;
        Obs.incr c_increments;
        incr steps
    end
  done;
  (!steps, !cp, !area, !closed, !closed_ceil)

let no_state (_ : float) (_ : float) = ()
let no_inc (_ : int) ~req:(_ : int) ~ceil:(_ : int) = ()

let check_beta beta =
  if beta <= 0. || beta > 1. then
    invalid_arg (Printf.sprintf "Allocation.allocate: beta = %g" beta)

let allocate_into ?(procedure = Scrap_max) ?up_counts ~arena ref_cluster
    platform ~beta ptg =
  check_beta beta;
  Obs.with_span "alloc.scrap" @@ fun () ->
  Obs.incr c_calls;
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let levels = Dag.depth_levels dag in
  let depth = max 1 (Dag.depth dag) in
  Alloc_arena.reserve arena ~nodes:n ~levels:depth;
  let procs = Alloc_arena.procs arena in
  let usage = Alloc_arena.usage arena in
  let exec = Alloc_arena.exec arena in
  let seq = Alloc_arena.seq arena in
  let alpha = Alloc_arena.alpha arena in
  fill_seq_alpha ~gflops:ref_cluster.Reference_cluster.speed ptg ~seq ~alpha n;
  Array.fill procs 0 n 1;
  Array.fill usage 0 depth 0;
  for v = 0 to n - 1 do
    if not (Ptg.is_virtual ptg v) then
      usage.(levels.(v)) <- usage.(levels.(v)) + 1;
    exec.(v) <- exec_at ~seq ~alpha v ~procs:1
  done;
  let cap = Reference_cluster.max_allocation ?up_counts ref_cluster platform in
  let budget = budget_of ref_cluster ~beta in
  let beta_power = beta *. float_of_int ref_cluster.Reference_cluster.procs in
  let steps, cp, area, _closed, _closed_ceil =
    run_loop ~record_state:no_state ~record_inc:no_inc ~procedure ~budget ~cap
      ~beta_power ~bl:(Alloc_arena.bl arena) ~tl:(Alloc_arena.tl arena)
      ~dirty:(Alloc_arena.dirty arena) ~gain:(Alloc_arena.gain arena) ~seq ~alpha ptg levels ~procs ~usage
      ~exec
      (initial_area exec procs n)
  in
  {
    procs = Array.sub procs 0 n;
    iterations = steps;
    critical_path = cp;
    average_area = area /. beta_power;
  }

let allocate ?procedure ?up_counts ref_cluster platform ~beta ptg =
  allocate_into ?procedure ?up_counts ~arena:(Alloc_arena.create ())
    ref_cluster platform ~beta ptg

(* ---------------- Allocation cache ----------------

   One cache per (application × engine). An entry materialises one
   increment trajectory under one allocation cap: the node chosen at
   every step plus the critical path and raw area of every visited
   state, together with the frontier loop state so the trajectory can
   be extended when a β wants to stop later than any β seen so far.

   β enters the loop twice, and the entry captures both channels:

   - {e continuously}, through the stop criterion cp ≤ area/β·procs —
     replayed per request against the recorded (cp, area) pairs;
   - {e discretely}, through the integer per-level budget ⌊β·procs⌋ in
     the candidate filter. Each recorded step carries the budget
     interval [[req, ceil)] for which the recorded choice is provably
     what a scratch run under that budget would choose ([req] = usage
     the choice consumed at its level; [ceil] = smallest budget that
     would have unblocked a better candidate, [max_int] when none was
     blocked). A replay walks the trajectory checking the request's
     budget against each step's interval; since the filter rarely
     binds, one trajectory typically serves {e every} budget, and a
     request whose budget falls outside some step's interval simply
     diverges to a fresh scratch-recorded entry.

   Either way a served result is bit-identical to a scratch run: the
   scratch loop would walk the same trajectory and apply the same stop
   test to the same floats. *)

type entry = {
  e_cap : int;
  e_levels : int array;
  (* Trajectory: states 0..len carry (cps, areas); step i < len turned
     state i into state i+1 by giving [incs.(i)] one more processor,
     valid for budgets in [reqs.(i), ceils.(i)). *)
  mutable e_incs : int array;
  mutable e_reqs : int array;
  mutable e_ceils : int array;
  mutable e_cps : float array;
  mutable e_areas : float array;
  mutable e_len : int;
  mutable e_closed : bool;  (* state [len] has no candidate left *)
  mutable e_closed_ceil : int;
      (* smallest budget that would continue past a closed [len] *)
  (* Frontier loop state (state [len]), for extension. *)
  e_procs : int array;
  e_usage : int array;
  e_exec : float array;
  (* Exact-hit key of the last request served from this entry, and its
     result (procs owned by the cache). β only reaches the loop through
     the integer budget and the continuous stop power β·procs, so those
     two — not β itself — decide whether a repeat request reproduces
     the stored result: the same β can mean a different budget and stop
     power on a degraded reference cluster. *)
  mutable e_budget : int;
  mutable e_bpower : float;
  mutable e_res : result;
}

type stats = { hits : int; rescales : int; misses : int }

type cache = {
  mutable entries : entry list;  (* most recently used first *)
  mutable hits : int;
  mutable rescales : int;
  mutable misses : int;
  mutable bound_ptg : Ptg.t option;
  mutable bound_procedure : procedure option;
  mutable bound_speed : float;
  (* Per-node sequential times and Amdahl fractions, computed once when
     the cache binds (they depend only on the bound PTG and speed). *)
  mutable bound_seq : float array;
  mutable bound_alpha : float array;
}

(* Trajectories kept per application. Budget intervals let one
   trajectory serve whole budget ranges, so entries proliferate only
   across genuinely divergent trajectories (distinct caps after platform
   degradation, or budgets that unblock different candidates); a small
   MRU list captures nearly all reuse while bounding memory at serving
   scale. *)
let max_entries = 8

let cache_create () =
  {
    entries = [];
    hits = 0;
    rescales = 0;
    misses = 0;
    bound_ptg = None;
    bound_procedure = None;
    bound_speed = Float.nan;
    bound_seq = [||];
    bound_alpha = [||];
  }

let cache_clear cache = cache.entries <- []

(* Full release: entries and the PTG/procedure/speed binding both go.
   [cache_clear] keeps the binding on purpose (same application, the
   memory is merely wanted back); a departed application's cache must
   also drop the binding so the PTG itself becomes collectable — and so
   that invalidation is scoped by construction: only the departing
   application's cache is touched, never a neighbour's. *)
let cache_release cache =
  cache.entries <- [];
  cache.bound_ptg <- None;
  cache.bound_procedure <- None;
  cache.bound_speed <- Float.nan;
  cache.bound_seq <- [||];
  cache.bound_alpha <- [||]

let cache_stats cache =
  { hits = cache.hits; rescales = cache.rescales; misses = cache.misses }
let cache_entry_count cache = List.length cache.entries

let entry_copy e =
  {
    e_cap = e.e_cap;
    e_levels = Array.copy e.e_levels;
    e_incs = Array.copy e.e_incs;
    e_reqs = Array.copy e.e_reqs;
    e_ceils = Array.copy e.e_ceils;
    e_cps = Array.copy e.e_cps;
    e_areas = Array.copy e.e_areas;
    e_len = e.e_len;
    e_closed = e.e_closed;
    e_closed_ceil = e.e_closed_ceil;
    e_procs = Array.copy e.e_procs;
    e_usage = Array.copy e.e_usage;
    e_exec = Array.copy e.e_exec;
    e_budget = e.e_budget;
    e_bpower = e.e_bpower;
    e_res = { e.e_res with procs = Array.copy e.e_res.procs };
  }

(* Snapshot-grade deep copy. Every mutable array is cloned, so extend/
   fork/rescale on either side never leaks into the other. The PTG
   binding is {e shared} — deliberately: the binding is checked by
   physical equality, and a restored engine re-allocates the very same
   PTG values, so a cloned binding must keep pointing at them. *)
let cache_copy cache =
  {
    entries = List.map entry_copy cache.entries;
    hits = cache.hits;
    rescales = cache.rescales;
    misses = cache.misses;
    bound_ptg = cache.bound_ptg;
    bound_procedure = cache.bound_procedure;
    bound_speed = cache.bound_speed;
    bound_seq = Array.copy cache.bound_seq;
    bound_alpha = Array.copy cache.bound_alpha;
  }

(* A cache is bound to one PTG, one procedure and one reference speed
   for its whole life; mixing inputs would serve one application's
   trajectories to another. Everything else an allocation depends on
   (β, the reference-cluster size, the degraded cap) is in the key or
   applied at replay time. *)
let bind_guards cache ~procedure ~speed ptg =
  (match cache.bound_ptg with
  | None -> cache.bound_ptg <- Some ptg
  | Some p ->
    if p != ptg then invalid_arg "Allocation.allocate_cached: PTG changed");
  (match cache.bound_procedure with
  | None -> cache.bound_procedure <- Some procedure
  | Some p ->
    if p <> procedure then
      invalid_arg "Allocation.allocate_cached: procedure changed");
  if Float.is_nan cache.bound_speed then cache.bound_speed <- speed
  else if cache.bound_speed <> speed then
    invalid_arg "Allocation.allocate_cached: reference speed changed"

let grow_ints a need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (max need ((2 * Array.length a) + 64)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_floats a need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (max need ((2 * Array.length a) + 64)) 0. in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* Replay the recorded stop tests under a request's (budget, β·procs):
   walk the states in order, stopping at the first one whose criterion
   fires; between states, check the step's budget interval.
   [Diverged at] means states 0..at are valid under this budget but the
   choice at step [at] would differ — the shared prefix a fork can
   build on. *)
type replay = Stopped of int | Needs_extension | Diverged of int

let replay_stop e ~budget ~beta_power =
  let rec scan i =
    if e.e_cps.(i) <= (e.e_areas.(i) /. beta_power) +. Floatx.eps then
      Stopped i
    else if i < e.e_len then
      if e.e_reqs.(i) <= budget && budget < e.e_ceils.(i) then scan (i + 1)
      else Diverged i
    else if e.e_closed && budget < e.e_closed_ceil then
      (* Exhausted under this budget too: blocked candidates all need
         more than [budget] (a smaller budget only shrinks the set). *)
      Stopped e.e_len
    else Needs_extension
  in
  scan 0

let result_at e ~beta_power s =
  let procs =
    if s = e.e_len then Array.copy e.e_procs
    else begin
      let p = Array.make (Array.length e.e_procs) 1 in
      for i = 0 to s - 1 do
        let v = e.e_incs.(i) in
        p.(v) <- p.(v) + 1
      done;
      p
    end
  in
  {
    procs;
    iterations = s;
    critical_path = e.e_cps.(s);
    average_area = e.e_areas.(s) /. beta_power;
  }

let record_inc_of e v ~req ~ceil =
  e.e_incs <- grow_ints e.e_incs (e.e_len + 1);
  e.e_reqs <- grow_ints e.e_reqs (e.e_len + 1);
  e.e_ceils <- grow_ints e.e_ceils (e.e_len + 1);
  e.e_incs.(e.e_len) <- v;
  e.e_reqs.(e.e_len) <- req;
  e.e_ceils.(e.e_len) <- ceil

(* Continue the trajectory from the frontier until the stop criterion
   under [beta_power] or candidate exhaustion, appending every new
   state. The appended steps are recorded under the {e request's}
   budget — their intervals carry it, so later replays under other
   budgets stay sound. The frontier's own state is already recorded, so
   the first [record_state] callback (which revisits it) is dropped. *)
let extend e ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha ptg =
  let seen_frontier = ref false in
  let record_state cp area =
    if not !seen_frontier then seen_frontier := true
    else begin
      let i = e.e_len + 1 in
      e.e_cps <- grow_floats e.e_cps (i + 1);
      e.e_areas <- grow_floats e.e_areas (i + 1);
      e.e_cps.(i) <- cp;
      e.e_areas.(i) <- area;
      e.e_len <- i
    end
  in
  let _steps, _cp, _area, closed, closed_ceil =
    (* Live loop steps (the only DAG traversals of the cached paths)
       are accounted to the same span as scratch runs. *)
    Obs.with_span "alloc.scrap" @@ fun () ->
    run_loop ~record_state ~record_inc:(record_inc_of e) ~procedure ~budget
      ~cap ~beta_power ~bl:(Alloc_arena.bl arena) ~tl:(Alloc_arena.tl arena)
      ~dirty:(Alloc_arena.dirty arena) ~gain:(Alloc_arena.gain arena) ~seq ~alpha ptg e.e_levels
      ~procs:e.e_procs ~usage:e.e_usage ~exec:e.e_exec e.e_areas.(e.e_len)
  in
  e.e_closed <- closed;
  e.e_closed_ceil <- closed_ceil

(* Full scratch run with trajectory recording — the cache-miss path.
   Counted as an [alloc.calls]/[alloc.scrap] allocation like any other
   scratch run. *)
let entry_create ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha ptg =
  Obs.with_span "alloc.scrap" @@ fun () ->
  Obs.incr c_calls;
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let levels = Dag.depth_levels dag in
  let depth = max 1 (Dag.depth dag) in
  Alloc_arena.reserve arena ~nodes:n ~levels:depth;
  let procs = Array.make n 1 in
  let usage = Array.make depth 0 in
  let exec = Array.make n 0. in
  for v = 0 to n - 1 do
    if not (Ptg.is_virtual ptg v) then
      usage.(levels.(v)) <- usage.(levels.(v)) + 1;
    exec.(v) <- exec_at ~seq ~alpha v ~procs:1
  done;
  let e =
    {
      e_cap = cap;
      e_levels = levels;
      e_incs = Array.make 64 0;
      e_reqs = Array.make 64 0;
      e_ceils = Array.make 64 0;
      e_cps = Array.make 64 0.;
      e_areas = Array.make 64 0.;
      e_len = -1;  (* first record_state writes state 0 *)
      e_closed = false;
      e_closed_ceil = max_int;
      e_procs = procs;
      e_usage = usage;
      e_exec = exec;
      e_budget = -1;
      e_bpower = Float.nan;
      e_res =
        { procs = [||]; iterations = 0; critical_path = 0.; average_area = 0. };
    }
  in
  let record_state cp area =
    let i = e.e_len + 1 in
    e.e_cps <- grow_floats e.e_cps (i + 1);
    e.e_areas <- grow_floats e.e_areas (i + 1);
    e.e_cps.(i) <- cp;
    e.e_areas.(i) <- area;
    e.e_len <- i
  in
  let _steps, _cp, _area, closed, closed_ceil =
    run_loop ~record_state ~record_inc:(record_inc_of e) ~procedure ~budget
      ~cap ~beta_power ~bl:(Alloc_arena.bl arena) ~tl:(Alloc_arena.tl arena)
      ~dirty:(Alloc_arena.dirty arena) ~gain:(Alloc_arena.gain arena) ~seq ~alpha ptg levels ~procs ~usage
      ~exec (initial_area exec procs n)
  in
  e.e_closed <- closed;
  e.e_closed_ceil <- closed_ceil;
  e

(* Fork a new entry sharing the first [at] steps of [src]: the copied
   states are bit-identical to what a scratch run under the request's
   budget would visit (the replay validated their intervals before
   diverging), so only the tail past the divergence runs live. The
   prefix costs O(nodes + at) integer work and float copies — no DAG
   traversals, which is what makes budget churn cheap: online budgets
   drift a few processors per generation, so trajectories diverge deep
   and the live tail is short. *)
let fork src ~at ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha ptg =
  let n = Array.length src.e_procs in
  let depth = Array.length src.e_usage in
  let levels = src.e_levels in
  let procs = Array.make n 1 in
  let usage = Array.make depth 0 in
  let exec = Array.make n 0. in
  for v = 0 to n - 1 do
    if not (Ptg.is_virtual ptg v) then
      usage.(levels.(v)) <- usage.(levels.(v)) + 1
  done;
  for i = 0 to at - 1 do
    let v = src.e_incs.(i) in
    procs.(v) <- procs.(v) + 1;
    usage.(levels.(v)) <- usage.(levels.(v)) + 1
  done;
  for v = 0 to n - 1 do
    exec.(v) <- exec_at ~seq ~alpha v ~procs:procs.(v)
  done;
  let size = max 64 (at + 1) in
  let e =
    {
      e_cap = src.e_cap;
      e_levels = levels;
      e_incs = Array.make size 0;
      e_reqs = Array.make size 0;
      e_ceils = Array.make size 0;
      e_cps = Array.make size 0.;
      e_areas = Array.make size 0.;
      e_len = at;
      e_closed = false;
      e_closed_ceil = max_int;
      e_procs = procs;
      e_usage = usage;
      e_exec = exec;
      e_budget = -1;
      e_bpower = Float.nan;
      e_res =
        { procs = [||]; iterations = 0; critical_path = 0.; average_area = 0. };
    }
  in
  Array.blit src.e_incs 0 e.e_incs 0 at;
  Array.blit src.e_reqs 0 e.e_reqs 0 at;
  Array.blit src.e_ceils 0 e.e_ceils 0 at;
  Array.blit src.e_cps 0 e.e_cps 0 (at + 1);
  Array.blit src.e_areas 0 e.e_areas 0 (at + 1);
  extend e ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha ptg;
  e

let promote cache e =
  let rest = List.filter (fun x -> x != e) cache.entries in
  cache.entries <- e :: List.filteri (fun i _ -> i < max_entries - 1) rest

let allocate_cached ?(procedure = Scrap_max) ?up_counts ~cache ~arena
    ref_cluster platform ~beta ptg =
  check_beta beta;
  Obs.with_span "alloc.cache" @@ fun () ->
  bind_guards cache ~procedure
    ~speed:ref_cluster.Reference_cluster.speed ptg;
  let n = Dag.node_count ptg.Ptg.dag in
  (* Reserve for every path, not just [entry_create]: a warm cache in
     front of a fresh arena (a restored engine's State.copy pairs
     copied caches with new scratch) can take the extend/fork paths on
     its very first call, and those use the arena's buffers directly. *)
  Alloc_arena.reserve arena ~nodes:n ~levels:(max 1 (Dag.depth ptg.Ptg.dag));
  if Array.length cache.bound_seq < n then begin
    cache.bound_seq <- Array.make n 0.;
    cache.bound_alpha <- Array.make n 0.;
    fill_seq_alpha ~gflops:cache.bound_speed ptg ~seq:cache.bound_seq
      ~alpha:cache.bound_alpha n
  end;
  let seq = cache.bound_seq in
  let alpha = cache.bound_alpha in
  let budget = budget_of ref_cluster ~beta in
  let cap = Reference_cluster.max_allocation ?up_counts ref_cluster platform in
  let beta_power = beta *. float_of_int ref_cluster.Reference_cluster.procs in
  let serve e stop =
    let res = result_at e ~beta_power stop in
    e.e_budget <- budget;
    e.e_bpower <- beta_power;
    e.e_res <- res;
    promote cache e;
    res
  in
  (* Scan MRU-first for a same-cap entry that can serve this request: an
     exact-β repeat is served as-is (its stored result came from a
     sound replay); otherwise the replay decides — a divergence (the
     request's budget falls outside some step's interval) falls through
     to the next entry, remembering the deepest shared prefix. When no
     entry serves, a miss forks off that prefix instead of starting
     from scratch (or runs a fully fresh scratch recording when no
     same-cap entry exists at all). *)
  let rec find best = function
    | [] ->
      cache.misses <- cache.misses + 1;
      Obs.incr c_misses;
      (match best with
      | Some (src, at) when at > 0 ->
        let e =
          fork src ~at ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha
            ptg
        in
        (* The live tail ran under exactly this β, so it stops at the
           trajectory end (β-stopped or blocked either way). *)
        serve e e.e_len
      | Some _ | None ->
        let e =
          entry_create ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha
            ptg
        in
        serve e e.e_len)
    | e :: rest when e.e_cap = cap ->
      if e.e_budget = budget && e.e_bpower = beta_power then begin
        cache.hits <- cache.hits + 1;
        Obs.incr c_hits;
        promote cache e;
        e.e_res
      end
      else begin
        match replay_stop e ~budget ~beta_power with
        | Diverged at ->
          let best =
            match best with
            | Some (_, at') when at' >= at -> best
            | Some _ | None -> Some (e, at)
          in
          find best rest
        | Stopped s ->
          cache.rescales <- cache.rescales + 1;
          Obs.incr c_rescales;
          serve e s
        | Needs_extension ->
          cache.rescales <- cache.rescales + 1;
          Obs.incr c_rescales;
          (* Continue the trajectory under this request's budget: the
             extension either β-stops at the new frontier or exhausts —
             both stop at the new state [len]. *)
          extend e ~procedure ~budget ~cap ~beta_power ~arena ~seq ~alpha ptg;
          serve e e.e_len
      end
    | _ :: rest -> find best rest
  in
  find None cache.entries

(* Rebuild an entry's frontier at trajectory prefix [at] — the same
   arithmetic as [fork]'s prefix replay, in place — and drop everything
   past it. The truncated states are exactly what a scratch run visits,
   so later requests replay the surviving prefix and extend live:
   results stay bit-identical to scratch, only the memoized suffix is
   re-derived. *)
let entry_trim cache e ~at ptg =
  let n = Array.length e.e_procs in
  let levels = e.e_levels in
  Array.fill e.e_usage 0 (Array.length e.e_usage) 0;
  for v = 0 to n - 1 do
    e.e_procs.(v) <- 1;
    if not (Ptg.is_virtual ptg v) then
      e.e_usage.(levels.(v)) <- e.e_usage.(levels.(v)) + 1
  done;
  for i = 0 to at - 1 do
    let v = e.e_incs.(i) in
    e.e_procs.(v) <- e.e_procs.(v) + 1;
    e.e_usage.(levels.(v)) <- e.e_usage.(levels.(v)) + 1
  done;
  for v = 0 to n - 1 do
    e.e_exec.(v) <-
      exec_at ~seq:cache.bound_seq ~alpha:cache.bound_alpha v
        ~procs:e.e_procs.(v)
  done;
  e.e_len <- at;
  e.e_closed <- false;
  e.e_closed_ceil <- max_int;
  e.e_budget <- -1;
  e.e_bpower <- Float.nan;
  e.e_res <-
    { procs = [||]; iterations = 0; critical_path = 0.; average_area = 0. }

let cache_trim cache ~node =
  match cache.bound_ptg with
  | None -> ()
  | Some ptg ->
    List.iter
      (fun e ->
        let stop = ref (-1) in
        (try
           for i = 0 to e.e_len - 1 do
             if e.e_incs.(i) = node then begin
               stop := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !stop >= 0 then entry_trim cache e ~at:!stop ptg)
      cache.entries
