(** Reusable scratch for the SCRAP(-MAX) allocation loop.

    {!Allocation.allocate} is the hot path of online rescheduling: it
    runs once per active application per generation, and every
    iteration of its inner loop walks bottom/top levels and per-level
    usage arrays sized by the PTG. An arena owns those buffers and
    reuses them across calls, so steady-state reschedules allocate
    O(changed applications) instead of O(active) · O(nodes) scratch
    words.

    An arena is single-owner mutable state: it must never be shared
    across domains. The online engine embeds one per
    {!Mcs_online.State.t}, and the serving layer therefore gets one per
    shard for free (each shard's engine lives on its own domain). Pure
    offline callers can keep using {!Allocation.allocate}, which spins
    up a private arena per call. *)

type t
(** A set of growable scratch buffers. Buffers grow monotonically to
    the largest PTG seen and are re-initialised by each allocation
    call; an arena holds no allocation state between calls. *)

val create : unit -> t
(** Fresh arena with empty buffers (they are sized on first use). *)

val reserve : t -> nodes:int -> levels:int -> unit
(** Ensure every buffer can hold [nodes] node slots and [levels]
    precedence-level slots. Growth discards contents (callers
    re-initialise the prefix they use). *)

val bl : t -> float array
(** Bottom-level buffer (≥ [nodes] slots after {!reserve}). *)

val tl : t -> float array
(** Top-level buffer (≥ [nodes] slots after {!reserve}). *)

val usage : t -> int array
(** Per-precedence-level usage buffer (≥ [levels] slots). *)

val exec : t -> float array
(** Per-node execution-time buffer (≥ [nodes] slots). *)

val procs : t -> int array
(** Per-node allocation buffer (≥ [nodes] slots). *)

val seq : t -> float array
(** Per-node sequential-time buffer (≥ [nodes] slots): the task's
    execution time on one reference processor, precomputed once per
    allocation call so the inner loop prices candidate increments with
    two float operations instead of re-deriving the task's flop count
    (a [pow]/[log] per call) every time. *)

val alpha : t -> float array
(** Per-node Amdahl serial-fraction buffer (≥ [nodes] slots),
    precomputed alongside {!seq}. *)

val gain : t -> float array
(** Per-node buffer for the gain of granting one more processor
    (≥ [nodes] slots). A node's gain only moves when its own allocation
    does, so the loop prices each node once per increment it receives
    instead of once per candidate scan. *)

val dirty : t -> Bytes.t
(** Scratch for {!Mcs_dag.Dag.bottom_levels_update} /
    [top_levels_update] (≥ [nodes] bytes). Unlike the other buffers it
    carries an invariant {e between} uses: all-zero, which the repair
    functions restore before returning. *)

val capacity : t -> int
(** Current node capacity (0 for a fresh arena) — exposed for tests. *)
