module P = Mcs_platform.Platform
module Prng = Mcs_prng.Prng

type granularity = Proc | Cluster

type config = {
  mttf : float;
  mttr : float;
  task_fail_p : float;
  granularity : granularity;
  horizon : float;
}

let default =
  {
    mttf = Float.infinity;
    mttr = 60.;
    task_fail_p = 0.;
    granularity = Proc;
    horizon = 3600.;
  }

type outage = { procs : int array; down_at : float; up_at : float }
type scenario = { seed : int; config : config; outages : outage list }

let no_faults = { seed = 0; config = default; outages = [] }

let is_empty s = s.outages = [] && s.config.task_fail_p <= 0.

let validate config =
  if config.mttf <= 0. || Float.is_nan config.mttf then
    invalid_arg "Fault.generate: mttf must be positive (infinity = never)";
  if not (Float.is_finite config.mttr) || config.mttr <= 0. then
    invalid_arg "Fault.generate: mttr must be finite and positive";
  if
    Float.is_nan config.task_fail_p
    || config.task_fail_p < 0. || config.task_fail_p > 1.
  then invalid_arg "Fault.generate: task_fail_p outside [0, 1]";
  if not (Float.is_finite config.horizon) || config.horizon <= 0. then
    invalid_arg "Fault.generate: horizon must be finite and positive"

(* One failure unit: alternate exponential up-times and down-times from
   the unit's own stream. Every materialised outage carries its matching
   recovery — possibly past the horizon — so no failure is permanent. *)
let unit_outages rng config procs =
  let out = ref [] in
  let t = ref 0. in
  let continue = ref true in
  while !continue do
    let down_at = !t +. Prng.exponential rng ~mean:config.mttf in
    if not (Float.is_finite down_at) || down_at >= config.horizon then
      continue := false
    else begin
      let repair = Float.max 1e-9 (Prng.exponential rng ~mean:config.mttr) in
      let up_at = down_at +. repair in
      out := { procs; down_at; up_at } :: !out;
      t := up_at
    end
  done;
  List.rev !out

let generate ~seed platform config =
  validate config;
  let outages =
    if not (Float.is_finite config.mttf) then []
    else begin
      let parent = Prng.create ~seed in
      let units =
        match config.granularity with
        | Cluster ->
          List.init (P.cluster_count platform) (fun k ->
              let c = P.cluster platform k in
              let base = P.first_proc platform k in
              Array.init c.P.procs (fun i -> base + i))
        | Proc ->
          List.init (P.total_procs platform) (fun p -> [| p |])
      in
      (* One child stream per unit, split in unit order: the number of
         draws one unit makes cannot shift another unit's process. *)
      let all =
        List.concat_map
          (fun procs -> unit_outages (Prng.split parent) config procs)
          units
      in
      List.sort
        (fun a b ->
          let c = Float.compare a.down_at b.down_at in
          if c <> 0 then c else compare a.procs b.procs)
        all
    end
  in
  { seed; config; outages }

(* Murmur-style 64-bit finalizer: full avalanche, so consecutive
   (app, node, attempt) triples land on unrelated streams. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xff51afd7ed558ccdL
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L
  in
  Int64.logxor z (Int64.shift_right_logical z 33)

let roll_failure s ~app ~node ~attempt =
  if s.config.task_fail_p <= 0. then false
  else if app < 0 || node < 0 || attempt < 0 then
    invalid_arg "Fault.roll_failure: negative index"
  else begin
    let z = mix64 (Int64.of_int s.seed) in
    let z = mix64 (Int64.logxor z (Int64.of_int (app + 1))) in
    let z = mix64 (Int64.logxor z (Int64.of_int ((node + 1) * 0x9e3779b1))) in
    let z = mix64 (Int64.logxor z (Int64.of_int ((attempt + 1) * 0x85ebca77))) in
    let rng = Prng.create ~seed:(Int64.to_int z) in
    Prng.bernoulli rng ~p:s.config.task_fail_p
  end

let down_intervals s ~procs =
  if procs < 0 then invalid_arg "Fault.down_intervals: negative proc count";
  let acc = Array.make procs [] in
  List.iter
    (fun o ->
      Array.iter
        (fun p ->
          if p >= 0 && p < procs then
            acc.(p) <- (o.down_at, o.up_at) :: acc.(p))
        o.procs)
    s.outages;
  Array.map
    (fun l ->
      let sorted = List.sort compare l in
      (* Defensive merge; per-unit intervals are disjoint by
         construction. *)
      let rec merge = function
        | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
          merge ((a1, Float.max b1 b2) :: rest)
        | iv :: rest -> iv :: merge rest
        | [] -> []
      in
      merge sorted)
    acc
