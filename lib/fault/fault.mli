(** Seeded fault processes for the online engine.

    Two independent perturbations, both fully determined by one integer
    seed so a faulted run is reproducible bit-for-bit:

    - {b processor outages}: every failure unit (a processor, or a whole
      cluster) alternates exponentially-distributed up-times (mean
      [mttf]) and down-times (mean [mttr]), the classical
      failure/repair renewal process. Outages beginning before
      [horizon] are materialised as [(down_at, up_at)] intervals; every
      outage carries its own recovery, even when the recovery lands past
      the horizon, so a blackout is always transient and an engine run
      always terminates.
    - {b transient task failures}: an execution attempt of a task fails
      at its very end with probability [task_fail_p] (fail-stop at
      completion — the work is lost, the processors were held for the
      full duration). The draw for attempt [a] of node [v] of
      application [j] is a pure function of [(seed, j, v, a)],
      independent of scheduling order, so rescheduling decisions cannot
      perturb the fault process they react to.

    The generator only produces data ({!scenario}); the online engine
    owns the interpretation (kills, requeues, retries, degraded β). *)

type granularity =
  | Proc  (** each processor fails independently *)
  | Cluster  (** a whole cluster fails and recovers as one unit *)

type config = {
  mttf : float;
      (** mean time to failure per unit, seconds; [infinity] disables
          outages *)
  mttr : float;  (** mean time to repair, seconds; finite positive *)
  task_fail_p : float;  (** per-attempt transient failure probability *)
  granularity : granularity;
  horizon : float;
      (** no outage {e begins} after this time (recoveries may) *)
}

val default : config
(** No faults at all: [mttf = infinity], [task_fail_p = 0.], [mttr =
    60.], [Proc] granularity, horizon 3600 s. *)

type outage = {
  procs : int array;  (** global processor ids, increasing *)
  down_at : float;
  up_at : float;  (** strictly greater than [down_at] *)
}

type scenario = {
  seed : int;
  config : config;
  outages : outage list;  (** sorted by [down_at], ties by first proc *)
}

val validate : config -> unit
(** @raise Invalid_argument under the conditions listed at
    {!generate} — exposed so the engine can reject a hand-built
    scenario before interpreting it. *)

val generate : seed:int -> Mcs_platform.Platform.t -> config -> scenario
(** Materialise the outage process of a platform. Deterministic in
    [(seed, platform, config)]; each failure unit draws from its own
    child stream, so the draw counts of different units cannot couple.
    @raise Invalid_argument on a non-positive [mttf] or [mttr], a
    non-finite [mttr], [task_fail_p] outside [0, 1], or a non-positive
    horizon. *)

val no_faults : scenario
(** The empty scenario (seed 0, {!default} config, no outages): faults
    plumbing enabled, fault process empty. *)

val is_empty : scenario -> bool
(** No outages and a zero transient-failure probability: the engine run
    is equivalent to an un-faulted one. *)

val roll_failure : scenario -> app:int -> node:int -> attempt:int -> bool
(** Whether execution attempt [attempt] (0-based) of node [node] of
    application [app] fails transiently. Pure in its arguments (see
    above); always [false] when [task_fail_p = 0.]. *)

val down_intervals : scenario -> procs:int -> (float * float) list array
(** Per-processor down intervals, merged and sorted, over [procs]
    global processor ids — the checker's view of the outage process. *)
