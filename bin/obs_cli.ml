(* Shared --profile / --profile-format plumbing for the CLI
   executables: enable the recorder around the command body, then write
   the requested export. *)

open Cmdliner
module Obs = Mcs_obs.Obs
module Export = Mcs_obs.Export

let profile =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "record phase spans and counters while running and write the \
           profile to $(docv) ($(b,-) for stdout)")

let profile_format =
  Arg.(
    value
    & opt (enum Export.format_names) Export.Chrome
    & info [ "profile-format" ] ~docv:"FORMAT"
        ~doc:
          "profile output format: $(b,chrome) (a chrome://tracing / \
           Perfetto trace), $(b,jsonl) (one JSON object per span and \
           counter) or $(b,table) (self-time summary)")

(* [scoped ~profile ~format f] runs [f ()]; with [~profile:(Some path)]
   the recorder captures the whole run and the export is written even
   when [f] raises. [exit] inside [f] bypasses the export — argument
   errors happen before any span of interest. *)
let scoped ~profile ~format f =
  match profile with
  | None -> f ()
  | Some path ->
    Obs.enable ();
    let finish () =
      Obs.disable ();
      Export.write format path;
      if path <> "-" then Printf.eprintf "wrote profile %s\n" path
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)
