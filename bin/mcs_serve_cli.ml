(* Workload driver for the sharded serving engine: replay a synthetic
   Poisson arrival stream against Mcs_serve.Service at a target
   submission rate (or as fast as the mailboxes admit), then report the
   sustained throughput (submissions/s, engine events/s) and the
   virtual-time response-latency percentiles as one JSON summary line —
   preceded by one JSON line per shard. *)

open Cmdliner
module Strategy = Mcs_sched.Strategy
module Workload = Mcs_experiments.Workload
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Fault = Mcs_fault.Fault
module Log = Mcs_online.Log
module Service = Mcs_serve.Service
module Shard = Mcs_serve.Shard
module Admission = Mcs_serve.Admission
module Router = Mcs_serve.Router
module Stats = Mcs_serve.Stats

let parse_strategy = function
  | "S" -> Ok Strategy.Selfish
  | "ES" -> Ok Strategy.Equal_share
  | "PS-cp" -> Ok (Strategy.Proportional Strategy.Cp)
  | "PS-width" -> Ok (Strategy.Proportional Strategy.Width)
  | "PS-work" -> Ok (Strategy.Proportional Strategy.Work)
  | "WPS-cp" -> Ok (Strategy.Weighted (Strategy.Cp, Strategy.paper_mu Strategy.Cp))
  | "WPS-width" ->
    Ok (Strategy.Weighted (Strategy.Width, Strategy.paper_mu Strategy.Width))
  | "WPS-work" ->
    Ok (Strategy.Weighted (Strategy.Work, Strategy.paper_mu Strategy.Work))
  | s -> Error ("unknown strategy " ^ s)

let parse_family = function
  | "random" -> Ok Workload.Random_mixed_scenarios
  | "fft" -> Ok Workload.Fft_ptgs
  | "strassen" -> Ok Workload.Strassen_ptgs
  | s -> Error ("unknown family " ^ s)

let die msg =
  prerr_endline msg;
  exit 2

let run site shards inline count seed mean_interarrival family strategy
    dynamic finish_resched kernel checkpoint_every kill_shard kill_after
    router window capacity reject shed_above rate check faults mttf mttr
    task_fail_p malleable resize_quantum log_path profile profile_format =
  Obs_cli.scoped ~profile ~format:profile_format @@ fun () ->
  let platform =
    match Mcs_platform.Grid5000.by_name site with
    | Some p -> p
    | None -> die ("unknown site: " ^ site ^ " (lille|nancy|rennes|sophia|grid)")
  in
  let strategy =
    match parse_strategy strategy with Ok s -> s | Error m -> die m
  in
  let family = match parse_family family with Ok f -> f | Error m -> die m in
  let router =
    match Router.choice_of_string router with Ok r -> r | Error m -> die m
  in
  let malleability =
    if not malleable then None
    else
      Some
        {
          Mcs_sched.Malleability.default with
          Mcs_sched.Malleability.quantum = resize_quantum;
        }
  in
  let policy =
    match
      if finish_resched then
        Policy.make ?malleability ~reschedule_on_departure:true
          ~reschedule_on_task_finish:true strategy
      else if dynamic then Policy.make ?malleability strategy
      else Policy.static ?malleability strategy
    with
    | p -> p
    | exception Invalid_argument m -> die m
  in
  let admission =
    {
      Admission.capacity;
      on_full = (if reject then Admission.Reject else Admission.Block);
      shed_above;
      batch_window = window;
    }
  in
  let config =
    {
      Service.shards;
      mode = (if inline then Service.Inline else Service.Domains);
      router;
      admission;
      policy;
      kernel;
      checkpoint_every;
      kill =
        (match kill_shard with
        | Some k -> Some (k, kill_after)
        | None -> None);
      capture_logs = log_path <> None;
      check;
      faults =
        (if faults then
           Some { Fault.default with Fault.mttf; mttr; task_fail_p }
         else None);
      fault_seed = seed;
    }
  in
  let rng = Mcs_prng.Prng.create ~seed in
  let ptgs = Workload.draw rng family ~count in
  let clock = ref 0. in
  let apps =
    List.mapi
      (fun i ptg ->
        if i > 0 then
          clock :=
            !clock +. Mcs_prng.Prng.exponential rng ~mean:mean_interarrival;
        (ptg, !clock))
      ptgs
  in
  let report =
    match Service.run_stream ~rate config platform apps with
    | r -> r
    | exception Invalid_argument m -> die m
  in
  let join fmt l = String.concat "," (List.map fmt l) in
  Array.iter
    (fun (r : Shard.report) ->
      Printf.printf
        "{\"event\":\"shard\",\"shard\":%d,\"clusters\":[%s],\"apps\":%d,\
         \"events\":%d,\"reschedules\":%d,\"peak_active\":%d,\
         \"queue_peak\":%d,\"handoffs_in\":%d,\"handoffs_out\":%d,\
         \"restores\":%d,\"violations\":%d}\n"
        r.Shard.shard
        (join string_of_int (Array.to_list r.Shard.clusters))
        (Array.length r.Shard.global_ids)
        r.Shard.engine.Engine.stats.Engine.events_processed
        r.Shard.engine.Engine.stats.Engine.reschedules r.Shard.peak_active
        r.Shard.queue_peak r.Shard.handoffs_in r.Shard.handoffs_out
        r.Shard.restores r.Shard.violations)
    report.Service.shards;
  let p p_ = Stats.percentile report.Service.responses ~p:p_ in
  let makespan =
    Array.fold_left
      (fun acc (r : Shard.report) ->
        Array.fold_left
          (fun acc c -> if Float.is_finite c then Float.max acc c else acc)
          acc r.Shard.engine.Engine.completions)
      0. report.Service.shards
  in
  Printf.printf
    "{\"event\":\"serve_summary\",\"site\":\"%s\",\"shards\":%d,\
     \"mode\":\"%s\",\"router\":\"%s\",\"strategy\":\"%s\",\
     \"submitted\":%d,\"admitted\":%d,\"rejected\":%d,\"handoffs\":%d,\
     \"peak_active\":%d,\"events\":%d,\"reschedules\":%d,\"remapped\":%d,\
     \"restores\":%d,\"violations\":%d,\"wall_s\":%.6f,\"submissions_per_s\":%.1f,\
     \"events_per_s\":%.1f,\"p50_response\":%.17g,\"p99_response\":%.17g,\
     \"virtual_makespan\":%.17g}\n"
    site shards
    (if inline then "inline" else "domains")
    (match router with
    | Router.Round_robin -> "rr"
    | Router.Least_work -> "work"
    | Router.Least_loaded -> "load")
    (Strategy.name strategy) report.Service.submitted report.Service.admitted
    report.Service.rejected report.Service.handoffs report.Service.peak_active
    report.Service.events report.Service.reschedules report.Service.remapped
    report.Service.restores report.Service.violations report.Service.wall_s
    (float_of_int report.Service.admitted /. report.Service.wall_s)
    (float_of_int report.Service.events /. report.Service.wall_s)
    (p 0.50) (p 0.99) makespan;
  (match log_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    List.iter
      (fun (shard, ev) ->
        (* Shard-tag each merged record by wrapping the engine line. *)
        Printf.fprintf oc "{\"shard\":%d,\"record\":%s}\n" shard
          (Log.to_json ev))
      (Service.merged_log report);
    close_out oc;
    Printf.eprintf "wrote %s\n" path);
  if check && report.Service.violations > 0 then begin
    Printf.eprintf "invariant check: %d errors\n" report.Service.violations;
    exit 1
  end

let site =
  Arg.(value & opt string "grid"
       & info [ "site" ]
           ~doc:"lille, nancy, rennes, sophia, or grid (all four federated)")

let shards =
  Arg.(value & opt int 4 & info [ "shards" ] ~doc:"platform partitions")

let inline =
  Arg.(value & flag
       & info [ "inline" ]
           ~doc:
             "deterministic single-domain fallback: run every shard on the \
              calling domain (pickups on mailbox pressure and at close)")

let count =
  Arg.(value & opt int 1000 & info [ "count" ] ~doc:"submitted applications")

let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed")

let mean_interarrival =
  Arg.(value & opt float 1.
       & info [ "mean-interarrival" ]
           ~doc:"mean Poisson inter-arrival time, virtual seconds")

let family =
  Arg.(value & opt string "random"
       & info [ "family" ] ~doc:"random, fft or strassen")

let strategy =
  Arg.(value & opt string "WPS-work"
       & info [ "strategy" ]
           ~doc:"S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")

let dynamic =
  Arg.(value & flag
       & info [ "dynamic" ]
           ~doc:
             "reschedule on departures too (the serving default is \
              arrival-only: static beta per generation)")

let finish_resched =
  Arg.(value & flag
       & info [ "reschedule-on-finish" ]
           ~doc:
             "reschedule on every task finish as well as on departures \
              (implies the dynamic departure policy; the most reactive — \
              and most expensive — built-in policy)")

let kernel =
  Arg.(value & opt string "default"
       & info [ "policy" ]
           ~doc:
             (Printf.sprintf "policy kernel governing each shard's engine: %s"
                (String.concat ", " Mcs_online.Policy_kernel.names)))

let checkpoint_every =
  Arg.(value & opt int 0
       & info [ "checkpoint-every" ]
           ~doc:
             "checkpoint each shard every N injections (engine snapshot + \
              injection journal; 0 = off) — enables crash recovery")

let kill_shard =
  Arg.(value & opt (some int) None
       & info [ "kill-shard" ]
           ~doc:
             "fault-tolerance drill: kill this shard's serving domain \
              mid-stream and restore it from its latest checkpoint (the \
              recovered merged log is bit-identical to the no-kill run \
              when shedding is off)")

let kill_after =
  Arg.(value & opt int 0
       & info [ "kill-after" ]
           ~doc:"injections the killed shard absorbs before it dies")

let router =
  Arg.(value & opt string "work"
       & info [ "router" ]
           ~doc:
             "shard selection: rr (round-robin), work (least cumulative \
              assigned GFlop, deterministic) or load (least live in-flight \
              load; adaptive, not replayable)")

let window =
  Arg.(value & opt float 0.
       & info [ "window" ]
           ~doc:
             "beta-batching window, virtual seconds: arrivals are admitted \
              at the end of their window so one reschedule absorbs the \
              whole batch (0 = exact admission)")

let capacity =
  Arg.(value & opt int 4096
       & info [ "capacity" ] ~doc:"mailbox slots per shard")

let reject =
  Arg.(value & flag
       & info [ "reject" ]
           ~doc:
             "refuse submissions when the target mailbox is full instead of \
              blocking (backpressure is the default)")

let shed_above =
  Arg.(value & opt (some int) None
       & info [ "shed-above" ]
           ~doc:
             "hand submissions off to the least-loaded peer shard once this \
              many applications are in service on the routed shard")

let rate =
  Arg.(value & opt float 0.
       & info [ "rate" ]
           ~doc:"pace submissions at this many per wall-clock second (0 = \
                 as fast as admission allows)")

let check =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:
             "audit every shard generation with the invariant analyzer \
              (plus the FAULT audit under --faults); exit non-zero on any \
              violation")

let faults =
  Arg.(value & flag
       & info [ "faults" ]
           ~doc:
             "inject a seeded per-shard fault process (shard k draws from \
              seed+k) per --mttf/--mttr/--task-fail-p")

let mttf =
  Arg.(value & opt float Float.infinity
       & info [ "mttf" ] ~doc:"mean time to failure, seconds ('inf' = none)")

let mttr =
  Arg.(value & opt float 60.
       & info [ "mttr" ] ~doc:"mean time to repair, seconds")

let task_fail_p =
  Arg.(value & opt float 0.
       & info [ "task-fail-p" ]
           ~doc:"per-attempt transient task failure probability in [0,1]")

let malleable =
  Arg.(value & flag
       & info [ "malleable" ]
           ~doc:
             "let each shard's engine grow/shrink running tasks at resize \
              points under the default malleability model")

let resize_quantum =
  Arg.(value & opt float Mcs_sched.Malleability.default.quantum
       & info [ "resize-quantum" ]
           ~doc:"grid spacing of legal resize points, seconds")

let log_path =
  Arg.(value & opt (some string) None
       & info [ "log" ]
           ~doc:
             "capture per-shard event logs and write the deterministic \
              sort-merge (global app ids, shard-tagged JSONL) to this path")

let cmd =
  let doc = "drive the sharded scheduler-as-a-service engine" in
  Cmd.v
    (Cmd.info "mcs_serve" ~doc)
    Term.(
      const run $ site $ shards $ inline $ count $ seed $ mean_interarrival
      $ family $ strategy $ dynamic $ finish_resched $ kernel
      $ checkpoint_every $ kill_shard $ kill_after $ router $ window
      $ capacity $ reject $ shed_above $ rate $ check $ faults $ mttf $ mttr
      $ task_fail_p $ malleable $ resize_quantum $ log_path $ Obs_cli.profile
      $ Obs_cli.profile_format)

let () = exit (Cmd.eval cmd)
