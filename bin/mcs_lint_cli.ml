(* Concurrency linter: run the lib/analysis rule families (LOCK /
   ESCAPE / ATOM) over OCaml sources — preferably the .cmt trees from
   [dune build @check], falling back to parsing the source text. Exit
   status mirrors mcs_check_cli: 0 clean, 1 non-waived findings, 2 on
   unreadable input or bad usage, so CI can gate on the repo itself. *)

open Cmdliner
module Analysis = Mcs_analysis.Analysis
module Finding = Mcs_analysis.Finding
module Rule = Mcs_analysis.Rule
module Source = Mcs_analysis.Source

let print_rules () =
  print_endline "rule registry (see DESIGN.md section 13):";
  List.iter
    (fun r ->
      Printf.printf "  %-10s %-26s %s\n             %s\n" (Rule.code r)
        (Rule.id r) (Rule.describe r) (Rule.rationale r))
    Rule.all

(* The default sweep when --repo is given: every library, executable
   and test in the tree. Fixtures stay excluded by Source.scan — they
   are seeded violations, linted one at a time by CI. *)
let repo_roots = [ "lib"; "bin"; "test"; "bench"; "examples" ]

let run rules repo build_dir no_cmt show_waived paths =
  if rules then begin
    print_rules ();
    exit 0
  end;
  let roots = if repo then repo_roots @ paths else paths in
  if roots = [] then begin
    prerr_endline
      "no files or directories given (try --repo, or --rules for the \
       rule list)";
    exit 2
  end;
  let files = Source.scan roots in
  if files = [] then begin
    prerr_endline "no .ml files found under the given paths";
    exit 2
  end;
  let report =
    Analysis.over_paths ~build_dir ~prefer_cmt:(not no_cmt) files
  in
  List.iter
    (fun (path, msg) -> Printf.eprintf "%s: %s\n" path msg)
    report.Analysis.errors;
  let shown =
    if show_waived then report.Analysis.findings
    else Finding.active report.Analysis.findings
  in
  List.iter (fun f -> print_endline (Finding.to_string f)) shown;
  Printf.printf "%d unit%s (%d from .cmt): %s\n" report.Analysis.units
    (if report.Analysis.units = 1 then "" else "s")
    report.Analysis.from_cmt
    (Finding.summary report.Analysis.findings);
  if report.Analysis.errors <> [] then exit 2;
  if not (Analysis.clean report) then exit 1

let rules =
  Arg.(value & flag
       & info [ "rules" ] ~doc:"print the rule registry and exit")

let repo =
  Arg.(value & flag
       & info [ "repo" ]
           ~doc:
             "lint the whole repository: lib, bin, test, bench and \
              examples (seeded fixtures stay excluded)")

let build_dir =
  Arg.(value & opt string "_build/default"
       & info [ "build-dir" ] ~docv:"DIR"
           ~doc:
             "dune context to read .cmt files from; populate it with \
              $(b,dune build @check)")

let no_cmt =
  Arg.(value & flag
       & info [ "no-cmt" ]
           ~doc:
             "skip .cmt lookup and parse source text directly (no \
              build needed; ppx-expanded code is not seen)")

let show_waived =
  Arg.(value & flag
       & info [ "show-waived" ]
           ~doc:
             "also print findings suppressed by in-source waivers \
              ([@domain_local], [@atomic_ok], [@no_lock_needed])")

let paths =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH"
       ~doc:".ml files or directories to lint (directories recurse)")

let cmd =
  let doc =
    "lint the serve stack for lock, domain-escape and atomic races"
  in
  Cmd.v
    (Cmd.info "mcs_lint" ~doc)
    Term.(const run $ rules $ repo $ build_dir $ no_cmt $ show_waived
          $ paths)

let () = exit (Cmd.eval cmd)
