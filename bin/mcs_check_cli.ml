(* Trace linter: parse schedule exports (CSV or JSON) back and run the
   invariant analyzer over them. Exit status: 0 when every file is
   clean, 1 when any rule is violated, 2 on unreadable/unparsable input
   or bad usage — so CI can gate on committed traces. *)

open Cmdliner
module Trace = Mcs_sched.Trace
module Check = Mcs_check.Check
module Diagnostic = Mcs_check.Diagnostic
module Rule = Mcs_check.Rule

let print_rules () =
  print_endline "rule registry (see DESIGN.md for the paper mapping):";
  List.iter
    (fun r ->
      Printf.printf "  %-8s %-22s %s\n           %s\n" (Rule.code r)
        (Rule.id r) (Rule.describe r) (Rule.paper_ref r))
    Rule.all

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let parse path contents =
  if Filename.check_suffix path ".json" then Trace.of_json contents
  else if Filename.check_suffix path ".csv" then Trace.of_csv contents
  else
    (* Unknown extension: try JSON first (self-describing), then CSV. *)
    match Trace.of_json contents with
    | Ok doc -> Ok doc
    | Error json_err -> (
      match Trace.of_csv contents with
      | Ok doc -> Ok doc
      | Error csv_err ->
        Error
          (Printf.sprintf "not a trace (as JSON: %s; as CSV: %s)" json_err
             csv_err))

let run rules site strict files =
  if rules then begin
    print_rules ();
    exit 0
  end;
  let platform =
    match site with
    | None -> None
    | Some name -> (
      match Mcs_platform.Grid5000.by_name name with
      | Some p -> Some p
      | None ->
        prerr_endline
          ("unknown site: " ^ name ^ " (lille|nancy|rennes|sophia)");
        exit 2)
  in
  if files = [] then begin
    prerr_endline "no trace files given (try --rules for the rule list)";
    exit 2
  end;
  let errors = ref 0 and warnings = ref 0 in
  List.iter
    (fun path ->
      let contents =
        match read_file path with
        | Ok c -> c
        | Error msg ->
          prerr_endline msg;
          exit 2
      in
      let doc =
        match parse path contents with
        | Ok doc -> doc
        | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
      in
      let diags = Check.lint_trace ?platform doc in
      List.iter
        (fun d -> Printf.printf "%s: %s\n" path (Diagnostic.to_string d))
        (Diagnostic.sort diags);
      List.iter
        (fun (d : Diagnostic.t) ->
          match d.Diagnostic.severity with
          | Diagnostic.Error -> incr errors
          | Diagnostic.Warning -> incr warnings
          | Diagnostic.Info -> ())
        diags;
      Printf.printf "%s: %s\n" path (Diagnostic.summary diags))
    files;
  if !errors > 0 || (strict && !warnings > 0) then exit 1

let rules =
  Arg.(value & flag
       & info [ "rules" ] ~doc:"print the rule registry and exit")

let site =
  Arg.(value & opt (some string) None
       & info [ "site" ]
           ~doc:
             "Grid'5000 subset the trace was scheduled on (lille, nancy, \
              rennes or sophia); enables the cluster-membership, \
              redistribution and packing rules")

let strict =
  Arg.(value & flag
       & info [ "strict" ] ~doc:"treat warnings as errors")

let files =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE"
       ~doc:"trace files exported by mcs_sched/mcs_online (.csv or .json)")

let cmd =
  let doc = "lint exported schedule traces against the paper's invariants" in
  Cmd.v
    (Cmd.info "mcs_check" ~doc)
    Term.(const run $ rules $ site $ strict $ files)

let () = exit (Cmd.eval cmd)
