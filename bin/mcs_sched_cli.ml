(* Scheduling CLI: draw a scenario (family, count, seed), schedule it on
   a Grid'5000 subset under a chosen strategy, and print betas, the
   Gantt chart, and estimated vs simulated makespans. *)

open Cmdliner
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module Schedule = Mcs_sched.Schedule
module Workload = Mcs_experiments.Workload

let parse_strategy = function
  | "S" -> Ok Strategy.Selfish
  | "ES" -> Ok Strategy.Equal_share
  | "PS-cp" -> Ok (Strategy.Proportional Strategy.Cp)
  | "PS-width" -> Ok (Strategy.Proportional Strategy.Width)
  | "PS-work" -> Ok (Strategy.Proportional Strategy.Work)
  | "WPS-cp" -> Ok (Strategy.Weighted (Strategy.Cp, Strategy.paper_mu Strategy.Cp))
  | "WPS-width" ->
    Ok (Strategy.Weighted (Strategy.Width, Strategy.paper_mu Strategy.Width))
  | "WPS-work" ->
    Ok (Strategy.Weighted (Strategy.Work, Strategy.paper_mu Strategy.Work))
  | s -> Error ("unknown strategy " ^ s)

let parse_family = function
  | "random" -> Ok Workload.Random_mixed_scenarios
  | "fft" -> Ok Workload.Fft_ptgs
  | "strassen" -> Ok Workload.Strassen_ptgs
  | s -> Error ("unknown family " ^ s)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.eprintf "wrote %s\n" path

let run site strategy family count seed csv json check profile profile_format =
  Obs_cli.scoped ~profile ~format:profile_format @@ fun () ->
  let platform =
    match Mcs_platform.Grid5000.by_name site with
    | Some p -> p
    | None ->
      prerr_endline ("unknown site: " ^ site ^ " (lille|nancy|rennes|sophia)");
      exit 2
  in
  let strategy =
    match parse_strategy strategy with
    | Ok s -> s
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let family =
    match parse_family family with
    | Ok f -> f
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let rng = Mcs_prng.Prng.create ~seed in
  let ptgs = Workload.draw rng family ~count in
  let prepared = Pipeline.prepare ~strategy platform ptgs in
  let schedules = Pipeline.schedule_concurrent ~strategy platform ptgs in
  (match Schedule.validate ~platform schedules with
  | Ok () -> ()
  | Error v ->
    prerr_endline ("internal error, invalid schedule: " ^ v.Schedule.message);
    exit 1);
  (if check then begin
     let diags =
       Mcs_check.Check.analyze_prepared ~strategy prepared platform schedules
     in
     List.iter
       (fun d -> prerr_endline (Mcs_check.Diagnostic.to_string d))
       (Mcs_check.Diagnostic.sort diags);
     Printf.eprintf "invariant check: %s\n" (Mcs_check.Diagnostic.summary diags);
     if Mcs_check.Diagnostic.has_errors diags then exit 1
   end);
  let sim = Mcs_sim.Replay.run platform schedules in
  Printf.printf "%s, %d %s applications, strategy %s\n\n" site count
    (Workload.family_name family) (Strategy.name strategy);
  List.iteri
    (fun i sched ->
      Printf.printf
        "app %d: beta=%.3f estimated=%.2fs simulated=%.2fs (%s)\n" i
        prepared.Pipeline.betas.(i) sched.Schedule.makespan
        sim.Mcs_sim.Replay.makespans.(i)
        sched.Schedule.ptg.Mcs_ptg.Ptg.name)
    schedules;
  print_newline ();
  print_string (Schedule.gantt ~platform schedules);
  (match csv with
  | Some path -> write_file path (Mcs_sched.Trace.to_csv schedules)
  | None -> ());
  match json with
  | Some path ->
    (* Embed the checker metadata so mcs_check can re-verify the β and
       allocation rules offline. *)
    let alloc =
      Array.map
        (fun (r : Mcs_sched.Allocation.result) -> r.Mcs_sched.Allocation.procs)
        prepared.Pipeline.allocations
    in
    write_file path
      (Mcs_sched.Trace.to_json ~betas:prepared.Pipeline.betas ~alloc schedules)
  | None -> ()

let site =
  Arg.(value & opt string "rennes"
       & info [ "site" ] ~doc:"lille, nancy, rennes or sophia")

let strategy =
  Arg.(value & opt string "WPS-width"
       & info [ "strategy" ]
           ~doc:"S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")

let family =
  Arg.(value & opt string "random"
       & info [ "family" ] ~doc:"random, fft or strassen")

let count =
  Arg.(value & opt int 4 & info [ "count" ] ~doc:"concurrent applications")

let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed")

let csv =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~doc:"export the schedules as CSV to this path")

let json =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~doc:"export the schedules as JSON to this path")

let check =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:
             "run the invariant analyzer over the produced schedules and \
              exit non-zero on any violated rule")

let cmd =
  let doc = "schedule concurrent PTGs on a multi-cluster" in
  Cmd.v
    (Cmd.info "mcs_sched" ~doc)
    Term.(
      const run $ site $ strategy $ family $ count $ seed $ csv $ json $ check
      $ Obs_cli.profile $ Obs_cli.profile_format)

let () = exit (Cmd.eval cmd)
