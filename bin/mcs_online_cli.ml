(* Online scheduling CLI: draw a scenario with Poisson arrivals, run the
   event-driven engine, and stream one JSON log line per event (JSONL)
   to stdout for observability tooling, followed by a summary line.
   Optional CSV/JSON trace export includes the release times. *)

open Cmdliner
module Strategy = Mcs_sched.Strategy
module Schedule = Mcs_sched.Schedule
module Workload = Mcs_experiments.Workload
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Log = Mcs_online.Log

let parse_strategy = function
  | "S" -> Ok Strategy.Selfish
  | "ES" -> Ok Strategy.Equal_share
  | "PS-cp" -> Ok (Strategy.Proportional Strategy.Cp)
  | "PS-width" -> Ok (Strategy.Proportional Strategy.Width)
  | "PS-work" -> Ok (Strategy.Proportional Strategy.Work)
  | "WPS-cp" -> Ok (Strategy.Weighted (Strategy.Cp, Strategy.paper_mu Strategy.Cp))
  | "WPS-width" ->
    Ok (Strategy.Weighted (Strategy.Width, Strategy.paper_mu Strategy.Width))
  | "WPS-work" ->
    Ok (Strategy.Weighted (Strategy.Work, Strategy.paper_mu Strategy.Work))
  | s -> Error ("unknown strategy " ^ s)

let parse_family = function
  | "random" -> Ok Workload.Random_mixed_scenarios
  | "fft" -> Ok Workload.Fft_ptgs
  | "strassen" -> Ok Workload.Strassen_ptgs
  | s -> Error ("unknown family " ^ s)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.eprintf "wrote %s\n" path

let run site strategy family count seed mean_interarrival static csv json
    gantt check profile profile_format =
  Obs_cli.scoped ~profile ~format:profile_format @@ fun () ->
  let platform =
    match Mcs_platform.Grid5000.by_name site with
    | Some p -> p
    | None ->
      prerr_endline ("unknown site: " ^ site ^ " (lille|nancy|rennes|sophia)");
      exit 2
  in
  let strategy =
    match parse_strategy strategy with
    | Ok s -> s
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let family =
    match parse_family family with
    | Ok f -> f
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let rng = Mcs_prng.Prng.create ~seed in
  let ptgs = Workload.draw rng family ~count in
  let release = Array.make count 0. in
  let clock = ref 0. in
  List.iteri
    (fun i _ ->
      if i > 0 then begin
        clock := !clock +. Mcs_prng.Prng.exponential rng ~mean:mean_interarrival;
        release.(i) <- !clock
      end)
    ptgs;
  let apps = List.mapi (fun i ptg -> (ptg, release.(i))) ptgs in
  let policy =
    if static then Policy.static strategy else Policy.make strategy
  in
  let log e = print_endline (Log.to_json e) in
  (* With --check, every reschedule generation is audited by the
     invariant analyzer; violations are reported and fail the run. *)
  let violations = ref 0 in
  let checker diags =
    List.iter
      (fun d -> prerr_endline (Mcs_check.Diagnostic.to_string d))
      (Mcs_check.Diagnostic.sort diags);
    violations :=
      !violations + List.length (Mcs_check.Diagnostic.errors diags)
  in
  let r =
    Engine.run ~log ?check:(if check then Some checker else None) ~policy
      platform apps
  in
  if !violations > 0 then begin
    Printf.eprintf "invariant check: %d errors\n" !violations;
    exit 1
  end;
  (match Schedule.validate ~platform r.Engine.schedules with
  | Ok () -> ()
  | Error v ->
    prerr_endline ("internal error, invalid schedule: " ^ v.Schedule.message);
    exit 1);
  let join fmt a =
    String.concat "," (Array.to_list (Array.map fmt a))
  in
  Printf.printf
    "{\"event\":\"summary\",\"strategy\":\"%s\",\"site\":\"%s\",\
     \"apps\":%d,\"releases\":[%s],\"betas\":[%s],\"responses\":[%s],\
     \"events_processed\":%d,\"events_pushed\":%d,\"reschedules\":%d,\
     \"remapped_tasks\":%d}\n"
    (Strategy.name strategy) site count
    (join (Printf.sprintf "%.17g") release)
    (join (Printf.sprintf "%.17g") r.Engine.betas)
    (join (Printf.sprintf "%.17g") r.Engine.responses)
    r.Engine.stats.Engine.events_processed
    r.Engine.stats.Engine.events_pushed r.Engine.stats.Engine.reschedules
    r.Engine.stats.Engine.remapped_tasks;
  if gantt then
    prerr_string (Schedule.gantt ~platform r.Engine.schedules);
  (match csv with
  | Some path ->
    write_file path (Mcs_sched.Trace.to_csv ~release r.Engine.schedules)
  | None -> ());
  match json with
  | Some path ->
    write_file path (Mcs_sched.Trace.to_json ~release r.Engine.schedules)
  | None -> ()

let site =
  Arg.(value & opt string "rennes"
       & info [ "site" ] ~doc:"lille, nancy, rennes or sophia")

let strategy =
  Arg.(value & opt string "WPS-work"
       & info [ "strategy" ]
           ~doc:"S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")

let family =
  Arg.(value & opt string "random"
       & info [ "family" ] ~doc:"random, fft or strassen")

let count =
  Arg.(value & opt int 4 & info [ "count" ] ~doc:"submitted applications")

let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed")

let mean_interarrival =
  Arg.(value & opt float 30.
       & info [ "mean-interarrival" ]
           ~doc:"mean of the Poisson inter-arrival times, seconds")

let static =
  Arg.(value & flag
       & info [ "static" ]
           ~doc:"recompute beta on arrivals only (no departure backfilling)")

let csv =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~doc:"export the schedules as CSV to this path")

let json =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~doc:"export the schedules as JSON to this path")

let gantt =
  Arg.(value & flag
       & info [ "gantt" ] ~doc:"print a text Gantt chart to stderr")

let check =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:
             "audit every reschedule with the invariant analyzer and exit \
              non-zero on any violated rule")

let cmd =
  let doc =
    "run the event-driven online scheduler and stream JSON event logs"
  in
  Cmd.v
    (Cmd.info "mcs_online" ~doc)
    Term.(
      const run $ site $ strategy $ family $ count $ seed $ mean_interarrival
      $ static $ csv $ json $ gantt $ check $ Obs_cli.profile
      $ Obs_cli.profile_format)

let () = exit (Cmd.eval cmd)
