(* Online scheduling CLI: draw a scenario with Poisson arrivals, run the
   event-driven engine, and stream one JSON log line per event (JSONL)
   to stdout for observability tooling, followed by a summary line.
   Optional CSV/JSON trace export includes the release times. *)

open Cmdliner
module Strategy = Mcs_sched.Strategy
module Schedule = Mcs_sched.Schedule
module Workload = Mcs_experiments.Workload
module Engine = Mcs_online.Engine
module Policy = Mcs_online.Policy
module Log = Mcs_online.Log
module Fault = Mcs_fault.Fault

let parse_strategy = function
  | "S" -> Ok Strategy.Selfish
  | "ES" -> Ok Strategy.Equal_share
  | "PS-cp" -> Ok (Strategy.Proportional Strategy.Cp)
  | "PS-width" -> Ok (Strategy.Proportional Strategy.Width)
  | "PS-work" -> Ok (Strategy.Proportional Strategy.Work)
  | "WPS-cp" -> Ok (Strategy.Weighted (Strategy.Cp, Strategy.paper_mu Strategy.Cp))
  | "WPS-width" ->
    Ok (Strategy.Weighted (Strategy.Width, Strategy.paper_mu Strategy.Width))
  | "WPS-work" ->
    Ok (Strategy.Weighted (Strategy.Work, Strategy.paper_mu Strategy.Work))
  | s -> Error ("unknown strategy " ^ s)

let parse_family = function
  | "random" -> Ok Workload.Random_mixed_scenarios
  | "fft" -> Ok Workload.Fft_ptgs
  | "strassen" -> Ok Workload.Strassen_ptgs
  | s -> Error ("unknown family " ^ s)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.eprintf "wrote %s\n" path

let run site strategy family count seed mean_interarrival static finish_resched
    kernel_name checkpoint swap_at swap_to what_if what_if_at csv json gantt
    check faults mttf mttr task_fail_p granularity horizon max_retries backoff
    shrink malleable resize_quantum redist_cost min_width shrink_above
    grow_below profile profile_format =
  Obs_cli.scoped ~profile ~format:profile_format @@ fun () ->
  let platform =
    match Mcs_platform.Grid5000.by_name site with
    | Some p -> p
    | None ->
      prerr_endline ("unknown site: " ^ site ^ " (lille|nancy|rennes|sophia)");
      exit 2
  in
  let strategy =
    match parse_strategy strategy with
    | Ok s -> s
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let family =
    match parse_family family with
    | Ok f -> f
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let rng = Mcs_prng.Prng.create ~seed in
  let ptgs = Workload.draw rng family ~count in
  let release = Array.make count 0. in
  let clock = ref 0. in
  List.iteri
    (fun i _ ->
      if i > 0 then begin
        clock := !clock +. Mcs_prng.Prng.exponential rng ~mean:mean_interarrival;
        release.(i) <- !clock
      end)
    ptgs;
  let apps = List.mapi (fun i ptg -> (ptg, release.(i))) ptgs in
  let fault_scenario =
    if not faults then None
    else begin
      let granularity =
        match granularity with
        | "proc" -> Fault.Proc
        | "cluster" -> Fault.Cluster
        | g ->
          prerr_endline ("unknown fault granularity: " ^ g ^ " (proc|cluster)");
          exit 2
      in
      let config =
        { Fault.mttf; mttr; task_fail_p; granularity; horizon }
      in
      match Fault.generate ~seed platform config with
      | s -> Some s
      | exception Invalid_argument m ->
        prerr_endline m;
        exit 2
    end
  in
  let fault_policy =
    { Policy.max_retries; backoff_base = backoff; shrink_on_retry = shrink }
  in
  let malleability =
    if not malleable then None
    else
      Some
        {
          Mcs_sched.Malleability.quantum = resize_quantum;
          redist_cost;
          min_width;
          max_width = max_int;
          shrink_active_above = shrink_above;
          grow_active_below = grow_below;
        }
  in
  let policy =
    match
      Policy.make ~faults:fault_policy ?malleability
        ~reschedule_on_departure:(not static)
        ~reschedule_on_task_finish:finish_resched strategy
    with
    | p -> p
    | exception Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  let kernel_of name =
    match Mcs_online.Policy_kernel.of_name name ~base:policy with
    | k -> k
    | exception Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  let kernel = kernel_of kernel_name in
  let log e = print_endline (Log.to_json e) in
  (* With --check, every reschedule generation is audited by the
     invariant analyzer; violations are reported and fail the run. *)
  let violations = ref 0 in
  let checker diags =
    List.iter
      (fun d -> prerr_endline (Mcs_check.Diagnostic.to_string d))
      (Mcs_check.Diagnostic.sort diags);
    violations :=
      !violations + List.length (Mcs_check.Diagnostic.errors diags)
  in
  let check_sink = if check then Some checker else None in
  (* The session runs through an ordered list of mid-run interventions,
     each applied once its virtual time is reached: a checkpoint (the
     session is snapshotted, dropped, and the run continues on the
     restored copy — output identical to an uninterrupted run, which CI
     diffs), a policy swap ([set_kernel] with an immediate remap), and
     a what-if speculation (adopt the candidate kernel only if the
     cloned trial improves the makespan). *)
  let actions =
    List.sort (fun (a, _) (b, _) -> Float.compare a b)
      ((match checkpoint with Some t -> [ (t, `Checkpoint) ] | None -> [])
      @ (match swap_at with Some t -> [ (t, `Swap) ] | None -> [])
      @
      match what_if with Some n -> [ (what_if_at, `What_if n) ] | None -> [])
  in
  let r =
    match
      let session =
        ref
          (Engine.create ~log ?check:check_sink ?faults:fault_scenario ~kernel
             ~policy platform apps)
      in
      List.iter
        (fun (time, action) ->
          Engine.advance ~upto:time !session;
          match action with
          | `Checkpoint ->
            let snap = Engine.snapshot !session in
            session := Engine.restore ~log ?check:check_sink snap;
            Printf.eprintf "checkpoint/restore at t=%g\n" time
          | `Swap ->
            Engine.set_kernel ~reschedule:true !session (kernel_of swap_to);
            Printf.eprintf "policy swap to %s at t=%g\n" swap_to time
          | `What_if name ->
            let sp = Engine.what_if !session (kernel_of name) in
            Printf.eprintf
              "what-if %s at t=%g: baseline=%.17g candidate=%.17g %s\n" name
              time sp.Engine.baseline_makespan sp.Engine.candidate_makespan
              (if sp.Engine.adopted then "adopted" else "kept incumbent"))
        actions;
      Engine.advance !session;
      Engine.result !session
    with
    | r -> r
    | exception Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  if !violations > 0 then begin
    Printf.eprintf "invariant check: %d errors\n" !violations;
    exit 1
  end;
  (match Schedule.validate ~platform r.Engine.schedules with
  | Ok () -> ()
  | Error v ->
    prerr_endline ("internal error, invalid schedule: " ^ v.Schedule.message);
    exit 1);
  let join fmt a =
    String.concat "," (Array.to_list (Array.map fmt a))
  in
  (* The fault fields appear only under a non-empty fault process, so a
     zero-rate faulted run stays byte-identical to an un-faulted one. *)
  let fault_suffix =
    match fault_scenario with
    | Some s when not (Fault.is_empty s) ->
      Printf.sprintf
        ",\"outages\":%d,\"kills\":%d,\"task_failures\":%d,\
         \"fault_events\":%d"
        (List.length s.Fault.outages)
        r.Engine.stats.Engine.kills r.Engine.stats.Engine.task_failures
        r.Engine.stats.Engine.fault_events
    | Some _ | None -> ""
  in
  (* Likewise the resize counter appears only when a resize actually
     executed: an inert malleable run (e.g. a quantum past every
     finish) stays byte-identical to a moldable one (CI diffs it). *)
  let resize_suffix =
    if r.Engine.stats.Engine.resizes > 0 then
      Printf.sprintf ",\"resizes\":%d" r.Engine.stats.Engine.resizes
    else ""
  in
  Printf.printf
    "{\"event\":\"summary\",\"strategy\":\"%s\",\"site\":\"%s\",\
     \"apps\":%d,\"releases\":[%s],\"betas\":[%s],\"responses\":[%s],\
     \"events_processed\":%d,\"events_pushed\":%d,\"reschedules\":%d,\
     \"remapped_tasks\":%d%s%s}\n"
    (Strategy.name strategy) site count
    (join (Printf.sprintf "%.17g") release)
    (join (Printf.sprintf "%.17g") r.Engine.betas)
    (join (Printf.sprintf "%.17g") r.Engine.responses)
    r.Engine.stats.Engine.events_processed
    r.Engine.stats.Engine.events_pushed r.Engine.stats.Engine.reschedules
    r.Engine.stats.Engine.remapped_tasks fault_suffix resize_suffix;
  if gantt then
    prerr_string (Schedule.gantt ~platform r.Engine.schedules);
  (match csv with
  | Some path ->
    write_file path (Mcs_sched.Trace.to_csv ~release r.Engine.schedules)
  | None -> ());
  match json with
  | Some path ->
    write_file path (Mcs_sched.Trace.to_json ~release r.Engine.schedules)
  | None -> ()

let site =
  Arg.(value & opt string "rennes"
       & info [ "site" ] ~doc:"lille, nancy, rennes or sophia")

let strategy =
  Arg.(value & opt string "WPS-work"
       & info [ "strategy" ]
           ~doc:"S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")

let family =
  Arg.(value & opt string "random"
       & info [ "family" ] ~doc:"random, fft or strassen")

let count =
  Arg.(value & opt int 4 & info [ "count" ] ~doc:"submitted applications")

let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed")

let mean_interarrival =
  Arg.(value & opt float 30.
       & info [ "mean-interarrival" ]
           ~doc:"mean of the Poisson inter-arrival times, seconds")

let static =
  Arg.(value & flag
       & info [ "static" ]
           ~doc:"recompute beta on arrivals only (no departure backfilling)")

let finish_resched =
  Arg.(value & flag
       & info [ "reschedule-on-finish" ]
           ~doc:
             "reschedule on every task finish as well as on departures \
              (rejected when combined with --static)")

let kernel_name =
  Arg.(value & opt string "default"
       & info [ "policy" ]
           ~doc:
             (Printf.sprintf "policy kernel governing the engine: %s"
                (String.concat ", " Mcs_online.Policy_kernel.names)))

let checkpoint =
  Arg.(value & opt (some float) None
       & info [ "checkpoint" ]
           ~doc:
             "snapshot the engine at this virtual time and continue on the \
              restored copy — the output is bit-identical to an \
              uninterrupted run (CI diffs it)")

let swap_at =
  Arg.(value & opt (some float) None
       & info [ "swap-at" ]
           ~doc:
             "swap the active policy kernel to --swap-to at this virtual \
              time (with an immediate remap, logged as 'policy_swap')")

let swap_to =
  Arg.(value & opt string "eager"
       & info [ "swap-to" ] ~doc:"kernel name --swap-at switches to")

let what_if =
  Arg.(value & opt (some string) None
       & info [ "what-if" ]
           ~doc:
             "speculatively try this kernel at --what-if-at on a cloned \
              session and adopt it only if it improves the makespan")

let what_if_at =
  Arg.(value & opt float 0.
       & info [ "what-if-at" ] ~doc:"virtual time of the --what-if trial")

let csv =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~doc:"export the schedules as CSV to this path")

let json =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~doc:"export the schedules as JSON to this path")

let gantt =
  Arg.(value & flag
       & info [ "gantt" ] ~doc:"print a text Gantt chart to stderr")

let check =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:
             "audit every reschedule with the invariant analyzer (plus the \
              FAULT001-003 execution-log audit under --faults and the \
              MAL001-003 resize audit under --malleable) and exit \
              non-zero on any violated rule")

let faults =
  Arg.(value & flag
       & info [ "faults" ]
           ~doc:
             "inject a seeded fault process: processor outages drawn from \
              --mttf/--mttr and transient task failures from --task-fail-p \
              (the scenario reuses --seed)")

let mttf =
  Arg.(value & opt float Float.infinity
       & info [ "mttf" ]
           ~doc:
             "mean time to failure per unit, seconds ('inf' disables \
              outages)")

let mttr =
  Arg.(value & opt float 60.
       & info [ "mttr" ] ~doc:"mean time to repair, seconds")

let task_fail_p =
  Arg.(value & opt float 0.
       & info [ "task-fail-p" ]
           ~doc:"per-attempt transient task failure probability in [0,1]")

let granularity =
  Arg.(value & opt string "proc"
       & info [ "fault-granularity" ]
           ~doc:"failure unit: proc (independent processors) or cluster")

let horizon =
  Arg.(value & opt float 3600.
       & info [ "fault-horizon" ]
           ~doc:"no outage begins after this time, seconds")

let max_retries =
  Arg.(value & opt int 3
       & info [ "max-retries" ]
           ~doc:
             "transient failures tolerated per task before the next attempt \
              is carried through")

let backoff =
  Arg.(value & opt float 5.
       & info [ "backoff" ]
           ~doc:"retry backoff base, seconds (retry k waits base*2^(k-1))")

let shrink =
  Arg.(value & flag
       & info [ "shrink-on-retry" ]
           ~doc:"halve a task's allocation per transient failure")

let malleable =
  Arg.(value & flag
       & info [ "malleable" ]
           ~doc:
             "let the engine grow/shrink running tasks at resize points \
              (without this flag tasks are moldable: widths are fixed at \
              start, bit-identical to the pre-malleability engine)")

let resize_quantum =
  Arg.(value & opt float Mcs_sched.Malleability.default.quantum
       & info [ "resize-quantum" ]
           ~doc:
             "grid spacing of legal resize points, seconds (a running \
              segment may only be preempted at start + k*quantum)")

let redist_cost =
  Arg.(value & opt float Mcs_sched.Malleability.default.redist_cost
       & info [ "redist-cost" ]
           ~doc:"redistribution overhead per moved processor, seconds")

let min_width =
  Arg.(value & opt int 1
       & info [ "min-width" ]
           ~doc:"no resized segment runs on fewer processors")

let shrink_above =
  Arg.(value
       & opt int Mcs_sched.Malleability.default.shrink_active_above
       & info [ "shrink-above" ]
           ~doc:"shrink running tasks while more applications are active")

let grow_below =
  Arg.(value & opt int Mcs_sched.Malleability.default.grow_active_below
       & info [ "grow-below" ]
           ~doc:"grow running tasks while fewer applications are active")

let cmd =
  let doc =
    "run the event-driven online scheduler and stream JSON event logs"
  in
  Cmd.v
    (Cmd.info "mcs_online" ~doc)
    Term.(
      const run $ site $ strategy $ family $ count $ seed $ mean_interarrival
      $ static $ finish_resched $ kernel_name $ checkpoint $ swap_at
      $ swap_to $ what_if $ what_if_at $ csv $ json $ gantt $ check $ faults
      $ mttf $ mttr $ task_fail_p $ granularity $ horizon $ max_retries
      $ backoff $ shrink $ malleable $ resize_quantum $ redist_cost
      $ min_width $ shrink_above $ grow_below $ Obs_cli.profile
      $ Obs_cli.profile_format)

let () = exit (Cmd.eval cmd)
