(* Experiment CLI: regenerate any table/figure of the paper (and the
   repo's extra experiments) by id. See DESIGN.md section 5 for the
   index. *)

open Cmdliner
module E = Mcs_experiments

let print_tables tables = List.iter Mcs_util.Table.print tables

let run_experiment id runs profile profile_format =
  Obs_cli.scoped ~profile ~format:profile_format @@ fun () ->
  let runs = if runs <= 0 then None else Some runs in
  match String.lowercase_ascii id with
  | "table1" | "t1" -> Mcs_util.Table.print (E.Table1.table ())
  | "fig1" | "f1" -> print_tables (E.Fig_ready_vs_global.tables ?runs ())
  | "fig2" | "f2" -> print_tables (E.Fig_mu_sweep.figure2 ?runs ())
  | "fig3" | "f3" -> print_tables (E.Fig_strategies.figure3 ?runs ())
  | "fig4" | "f4" -> print_tables (E.Fig_strategies.figure4 ?runs ())
  | "fig5" | "f5" -> print_tables (E.Fig_strategies.figure5 ?runs ())
  | "x1" | "constraint" -> Mcs_util.Table.print (E.Exp_constraint.table ?runs ())
  | "x2" | "packing" -> Mcs_util.Table.print (E.Exp_ablation.packing_table ?runs ())
  | "x3" | "scrap" -> Mcs_util.Table.print (E.Exp_ablation.procedure_table ?runs ())
  | "x4" | "validation" -> Mcs_util.Table.print (E.Exp_validation.table ?runs ())
  | "x5" | "arrivals" -> Mcs_util.Table.print (E.Exp_arrivals.table ?runs ())
  | "x6" | "single" -> Mcs_util.Table.print (E.Exp_single_ptg.table ?runs ())
  | "x7" | "online" -> Mcs_util.Table.print (E.Exp_online.table ?runs ())
  | "x8" | "faults" -> Mcs_util.Table.print (E.Exp_faults.table ?runs ())
  | "x9" | "malleable" -> Mcs_util.Table.print (E.Exp_malleable.table ?runs ())
  | other ->
    prerr_endline
      ("unknown experiment " ^ other
     ^ " (table1 fig1 fig2 fig3 fig4 fig5 x1 x2 x3 x4 x5 x6 x7 x8 x9)");
    exit 2

let id =
  Arg.(value & pos 0 string "table1"
       & info [] ~docv:"EXPERIMENT"
           ~doc:"table1, fig1..fig5, x1 (constraint), x2 (packing), x3 \
                 (scrap), x4 (validation), x5 (arrivals), x6 (single), x7 \
                 (online), x8 (faults), x9 (malleable)")

let runs =
  Arg.(value & opt int 0
       & info [ "runs" ]
           ~doc:"combinations per (count, platform) point; 0 = MCS_RUNS \
                 env or the paper's 25")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "mcs_experiments" ~doc)
    Term.(
      const run_experiment $ id $ runs $ Obs_cli.profile
      $ Obs_cli.profile_format)

let () = exit (Cmd.eval cmd)
