(* Staggered arrivals: applications are submitted over time (the paper's
   future-work scenario, Section 8). The example builds a morning's worth
   of submissions, schedules them under two strategies with release
   dates, simulates, and prints per-application response times and
   slowdowns.

   Run with: dune exec examples/staggered_arrivals.exe *)

module Ptg = Mcs_ptg.Ptg
module Strategy = Mcs_sched.Strategy
module Runner = Mcs_experiments.Runner
module Table = Mcs_util.Table

let () =
  let platform = Mcs_platform.Grid5000.rennes () in
  let rng = Mcs_prng.Prng.create ~seed:5150 in
  let count = 6 in
  let ptgs =
    List.init count (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng
          { Mcs_ptg.Random_gen.default with tasks = 10 + (10 * (id mod 3)) })
  in
  (* Poisson arrivals with a 40-second mean inter-arrival. *)
  let release = Array.make count 0. in
  let clock = ref 0. in
  for i = 1 to count - 1 do
    clock := !clock +. Mcs_prng.Prng.exponential rng ~mean:40.;
    release.(i) <- !clock
  done;

  Printf.printf "Submissions on %s:\n"
    (Mcs_platform.Platform.name platform);
  List.iteri
    (fun i p ->
      Format.printf "  t=%6.1f s  %a@." release.(i) Ptg.pp p)
    ptgs;
  print_newline ();

  let strategies =
    [ Strategy.Selfish; Strategy.Weighted (Strategy.Width, 0.5) ]
  in
  let results = Runner.evaluate ~release platform ptgs strategies in
  let table =
    Table.create
      ~title:"Response time (completion - submission) and slowdown"
      ~header:
        ("application" :: "submitted (s)"
        :: List.concat_map
             (fun r ->
               let n = Strategy.name r.Runner.strategy in
               [ n ^ " resp (s)"; n ^ " slowdown" ])
             results)
  in
  List.iteri
    (fun i ptg ->
      Table.add_row table
        (Printf.sprintf "%s#%d" ptg.Ptg.name ptg.Ptg.id
        :: Printf.sprintf "%.1f" release.(i)
        :: List.concat_map
             (fun r ->
               [
                 Printf.sprintf "%.1f" r.Runner.makespans.(i);
                 Printf.sprintf "%.3f" r.Runner.slowdowns.(i);
               ])
             results))
    ptgs;
  Table.print table;
  List.iter
    (fun r ->
      Printf.printf "%s: unfairness %.3f, last completion %.1f s\n"
        (Strategy.name r.Runner.strategy)
        r.Runner.unfairness
        (* Response times are relative; recover absolute completion. *)
        (Array.fold_left Float.max 0.
           (Array.mapi (fun i m -> m +. release.(i)) r.Runner.makespans)))
    results
