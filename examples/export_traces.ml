(* Trace export: schedule a small scenario, run the invariant analyzer
   over it, and write the result both as CSV (one row per placement,
   ready for pandas or a spreadsheet Gantt) and as JSON carrying the
   beta/allocation metadata that `mcs_check` lints against, plus the
   DOT of one application.

   Run with: dune exec examples/export_traces.exe [output-dir]

   The committed copies under examples/traces/ are produced by
   `dune exec examples/export_traces.exe examples/traces` and are
   linted in CI with `mcs_check --site lille`. *)

module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module Allocation = Mcs_sched.Allocation

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

let () =
  let dir =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.get_temp_dir_name ()
  in
  let platform = Mcs_platform.Grid5000.lille () in
  let rng = Mcs_prng.Prng.create ~seed:99 in
  let ptgs =
    [
      Mcs_ptg.Random_gen.generate ~id:0 rng Mcs_ptg.Random_gen.default;
      Mcs_ptg.Fft.generate ~id:1 ~points:8 rng;
      Mcs_ptg.Strassen.generate ~id:2 rng;
    ]
  in
  let strategy = Strategy.Weighted (Strategy.Width, 0.5) in
  let prepared = Pipeline.prepare ~strategy platform ptgs in
  let schedules = Pipeline.schedule_concurrent ~strategy platform ptgs in
  (match Schedule.validate ~platform schedules with
  | Ok () -> print_endline "schedules: valid"
  | Error v -> failwith v.Schedule.message);
  (match
     Mcs_check.Check.analyze_prepared ~strategy prepared platform schedules
   with
  | [] -> print_endline "invariant analyzer: clean"
  | diags ->
      List.iter
        (fun d -> prerr_endline (Mcs_check.Diagnostic.to_string d))
        diags;
      failwith "invariant analyzer found violations");
  let alloc =
    Array.map
      (fun (r : Allocation.result) -> r.Allocation.procs)
      prepared.Pipeline.allocations
  in
  write (Filename.concat dir "mcs_schedule.csv")
    (Mcs_sched.Trace.to_csv schedules);
  write (Filename.concat dir "mcs_schedule.json")
    (Mcs_sched.Trace.to_json ~betas:prepared.Pipeline.betas ~alloc schedules);
  write (Filename.concat dir "mcs_fft.dot")
    (Mcs_ptg.Ptg.to_dot (List.nth ptgs 1));
  (* A taste of the CSV. *)
  let csv = Mcs_sched.Trace.to_csv schedules in
  let lines = String.split_on_char '\n' csv in
  print_newline ();
  List.iteri (fun i l -> if i < 6 then print_endline l) lines
