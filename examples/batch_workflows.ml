(* Batch of workflows: a campaign of ten workflow-shaped PTGs (random
   layered graphs with jump edges, as produced by scientific workflow
   composition) is scheduled under every strategy of the paper; the
   example prints the unfairness/makespan trade-off table and the
   per-cluster utilisation of the best compromise.

   Run with: dune exec examples/batch_workflows.exe *)

module P = Mcs_platform.Platform
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module Schedule = Mcs_sched.Schedule
module Runner = Mcs_experiments.Runner
module Table = Mcs_util.Table

let () =
  let platform = Mcs_platform.Grid5000.nancy () in
  let rng = Mcs_prng.Prng.create ~seed:2024 in
  let ptgs =
    List.init 10 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng
          {
            Mcs_ptg.Random_gen.default with
            tasks = 20 + (10 * (id mod 3));
            jump = (if id mod 2 = 0 then 2 else 4);
            density = 0.2;
          })
  in
  Printf.printf "Campaign of %d workflows on %s (%d processors)\n\n"
    (List.length ptgs) (P.name platform) (P.total_procs platform);

  let results = Runner.evaluate platform ptgs Strategy.paper_eight in
  let best =
    List.fold_left
      (fun acc r -> Float.min acc r.Runner.global_makespan)
      Float.infinity results
  in
  let table =
    Table.create ~title:"Strategy trade-offs on this campaign"
      ~header:
        [ "strategy"; "unfairness"; "global makespan (s)"; "vs best" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Strategy.name r.Runner.strategy;
          Printf.sprintf "%.3f" r.Runner.unfairness;
          Printf.sprintf "%.1f" r.Runner.global_makespan;
          Printf.sprintf "%.2fx" (r.Runner.global_makespan /. best);
        ])
    results;
  Table.print table;

  (* Re-run the WPS-work compromise and look at where the work landed. *)
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let schedules = Pipeline.schedule_concurrent ~strategy platform ptgs in
  let horizon =
    List.fold_left (fun acc s -> Float.max acc s.Schedule.makespan) 0. schedules
  in
  let util =
    Table.create
      ~title:
        (Printf.sprintf "Cluster utilisation under %s (horizon %.1f s)"
           (Strategy.name strategy) horizon)
      ~header:[ "cluster"; "busy proc-seconds"; "utilisation" ]
  in
  let busy = Schedule.cluster_busy_time ~platform schedules in
  Array.iteri
    (fun k c ->
      Table.add_row util
        [
          c.P.cluster_name;
          Printf.sprintf "%.0f" busy.(k);
          Printf.sprintf "%.1f%%"
            (100. *. busy.(k) /. (float_of_int c.P.procs *. horizon));
        ])
    (P.clusters platform);
  Table.print util;
  print_string (Schedule.gantt ~platform schedules)
