(* Benchmark & reproduction harness.

   - `dune exec bench/main.exe` runs everything: Table 1, Figures 1-5,
     the extra experiments X1-X6 (see DESIGN.md section 5) and the
     bechamel microbenchmarks of the kernels behind each figure.
   - `dune exec bench/main.exe -- fig3` runs a single artefact
     (table1, fig1..fig5, x1..x6, micro).
   - The MCS_RUNS environment variable scales the number of scenario
     combinations per point (the paper uses 25). *)

module E = Mcs_experiments
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n\n" bar title bar

let print_tables tables = List.iter Mcs_util.Table.print tables

(* ---------- Bechamel microbenchmarks ---------- *)

(* One benchmark per moving part of the reproduction: DAG generation and
   analysis (all figures), SCRAP-MAX allocation (allocation step of every
   figure), concurrent mapping (mapping step), discrete-event replay
   (the timing source of Figures 2-5), and the full per-scenario
   pipeline. *)
(* 20 applications x 100 tasks: the scale where the mapper's former
   per-task re-sorting dominated (DESIGN.md section 10). *)
let large_workload platform ref_cluster =
  let rng = Mcs_prng.Prng.create ~seed:3 in
  let ptgs =
    List.init 20 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng
          { Mcs_ptg.Random_gen.default with tasks = 100 })
  in
  List.map
    (fun ptg ->
      let a =
        Mcs_sched.Allocation.allocate ref_cluster platform ~beta:0.05 ptg
      in
      (ptg, a.Mcs_sched.Allocation.procs))
    ptgs

let micro_tests () =
  let open Bechamel in
  let platform = Mcs_platform.Grid5000.rennes () in
  let ref_cluster = Mcs_sched.Reference_cluster.of_platform platform in
  let rng = Mcs_prng.Prng.create ~seed:1 in
  let ptg50 =
    Mcs_ptg.Random_gen.generate rng
      { Mcs_ptg.Random_gen.default with tasks = 50 }
  in
  let ptgs =
    List.init 6 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  let allocations =
    List.map
      (fun ptg ->
        let a =
          Mcs_sched.Allocation.allocate ref_cluster platform ~beta:(1. /. 6.)
            ptg
        in
        (ptg, a.Mcs_sched.Allocation.procs))
      ptgs
  in
  let schedules =
    Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform ptgs
  in
  let gen_seed = ref 0 in
  Test.make_grouped ~name:"mcs"
    [
      Test.make ~name:"ptg-generate-50tasks"
        (Staged.stage (fun () ->
             incr gen_seed;
             let rng = Mcs_prng.Prng.create ~seed:!gen_seed in
             ignore
               (Mcs_ptg.Random_gen.generate rng
                  { Mcs_ptg.Random_gen.default with tasks = 50 })));
      Test.make ~name:"fft-generate-16pt"
        (Staged.stage (fun () ->
             incr gen_seed;
             let rng = Mcs_prng.Prng.create ~seed:!gen_seed in
             ignore (Mcs_ptg.Fft.generate ~points:16 rng)));
      Test.make ~name:"allocation-scrapmax-beta0.2"
        (Staged.stage (fun () ->
             ignore
               (Mcs_sched.Allocation.allocate ref_cluster platform ~beta:0.2
                  ptg50)));
      Test.make ~name:"allocation-scrapmax-selfish"
        (Staged.stage (fun () ->
             ignore
               (Mcs_sched.Allocation.allocate ref_cluster platform ~beta:1.
                  ptg50)));
      (* 200-task PTG: the scale where the allocation loop's former
         per-iteration area re-sum was quadratic (DESIGN.md section
         14) — the scratch run now maintains the area incrementally. *)
      Test.make ~name:"allocation-scrapmax-200tasks"
        (Staged.stage
           (let big =
              incr gen_seed;
              let rng = Mcs_prng.Prng.create ~seed:!gen_seed in
              Mcs_ptg.Random_gen.generate rng
                { Mcs_ptg.Random_gen.default with tasks = 200 }
            in
            fun () ->
              ignore
                (Mcs_sched.Allocation.allocate ref_cluster platform ~beta:0.2
                   big)));
      (* Cache fast paths (DESIGN.md section 14): an exact-β repeat is
         served without touching the DAG; a moved β of the same
         (budget, cap) key replays the recorded stop tests. *)
      Test.make ~name:"allocation-cached-hit"
        (Staged.stage
           (let cache = Mcs_sched.Allocation.cache_create () in
            let arena = Mcs_sched.Alloc_arena.create () in
            fun () ->
              ignore
                (Mcs_sched.Allocation.allocate_cached ~cache ~arena ref_cluster
                   platform ~beta:0.2 ptg50)));
      Test.make ~name:"allocation-cached-rescale"
        (Staged.stage
           (let cache = Mcs_sched.Allocation.cache_create () in
            let arena = Mcs_sched.Alloc_arena.create () in
            let flip = ref false in
            (* Both βs floor to the same per-level budget, so each call
               after the first is a rescale replay, never a miss. *)
            fun () ->
              flip := not !flip;
              let beta = if !flip then 0.2 else 0.2000001 in
              ignore
                (Mcs_sched.Allocation.allocate_cached ~cache ~arena ref_cluster
                   platform ~beta ptg50)));
      Test.make ~name:"mapping-6apps"
        (Staged.stage (fun () ->
             ignore (Mcs_sched.List_mapper.run platform ref_cluster allocations)));
      Test.make ~name:"mapping-20apps-100tasks"
        (Staged.stage
           (let large = large_workload platform ref_cluster in
            fun () ->
              ignore (Mcs_sched.List_mapper.run platform ref_cluster large)));
      Test.make ~name:"replay-6apps"
        (Staged.stage (fun () -> ignore (Mcs_sim.Replay.run platform schedules)));
      Test.make ~name:"pipeline-6apps-es"
        (Staged.stage (fun () ->
             ignore
               (Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share
                  platform ptgs)));
      Test.make ~name:"online-engine-6apps-es"
        (Staged.stage
           (let apps = List.mapi (fun i p -> (p, 15. *. float_of_int i)) ptgs in
            let policy = Mcs_online.Policy.make Strategy.Equal_share in
            fun () -> ignore (Mcs_online.Engine.run ~policy platform apps)));
    ]

(* ---------- Online engine throughput ---------- *)

(* Events/sec and rescheduling cost of the event-driven online engine
   (lib/online) on Poisson-arrival scenarios of growing size. Each row
   aggregates the engine's own counters with wall-clock time: the
   rescheduling cost shows up both as remapped placements per reschedule
   and as the mean wall time of one reschedule. *)
let run_online () =
  let platform = Mcs_platform.Grid5000.rennes () in
  let policy = Mcs_online.Policy.make (Strategy.Weighted (Strategy.Work, 0.7)) in
  let table =
    Mcs_util.Table.create ~title:"online engine (WPS-work, Poisson mean 30 s)"
      ~header:
        [
          "apps"; "events"; "events/s"; "reschedules"; "remap/resched";
          "alloc h/r/m"; "wall"; "wall/resched";
        ]
  in
  let peak_rate = ref 0. in
  List.iter
    (fun count ->
      let rng = Mcs_prng.Prng.create ~seed:(97 + count) in
      let ptgs =
        List.init count (fun id ->
            Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
      in
      let clock = ref 0. in
      let apps =
        List.mapi
          (fun i ptg ->
            if i > 0 then
              clock := !clock +. Mcs_prng.Prng.exponential rng ~mean:30.;
            (ptg, !clock))
          ptgs
      in
      (* Best of three runs: the engine is deterministic, so the spread
         is scheduler/cache noise and the minimum wall is the honest
         cost — it is also what keeps the CI floor below stable. *)
      let runs =
        List.init 3 (fun _ ->
            let t0 = Unix.gettimeofday () in
            let r = Mcs_online.Engine.run ~policy platform apps in
            (r, Unix.gettimeofday () -. t0))
      in
      let r, wall =
        List.fold_left
          (fun (br, bw) (r, w) -> if w < bw then (r, w) else (br, bw))
          (List.hd runs) (List.tl runs)
      in
      let s = r.Mcs_online.Engine.stats in
      let ev = s.Mcs_online.Engine.events_processed in
      let resched = s.Mcs_online.Engine.reschedules in
      let rate = float_of_int ev /. wall in
      if rate > !peak_rate then peak_rate := rate;
      Mcs_util.Table.add_row table
        [
          string_of_int count;
          string_of_int ev;
          Printf.sprintf "%.0f" rate;
          string_of_int resched;
          Printf.sprintf "%.1f"
            (float_of_int s.Mcs_online.Engine.remapped_tasks
            /. float_of_int (max 1 resched));
          Printf.sprintf "%d/%d/%d" s.Mcs_online.Engine.alloc_hits
            s.Mcs_online.Engine.alloc_rescales s.Mcs_online.Engine.alloc_misses;
          Printf.sprintf "%.1f ms" (wall *. 1e3);
          Printf.sprintf "%.2f ms" (wall *. 1e3 /. float_of_int (max 1 resched));
        ])
    [ 2; 4; 6; 8; 10; 16 ];
  Mcs_util.Table.print table;
  (* One malleable run at mid scale prices the resize machinery: the
     same scenario as the count-8 row, plus grow/shrink preemptions on
     a 10 s grid. *)
  (let count = 8 in
   let rng = Mcs_prng.Prng.create ~seed:(97 + count) in
   let ptgs =
     List.init count (fun id ->
         Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
   in
   let clock = ref 0. in
   let apps =
     List.mapi
       (fun i ptg ->
         if i > 0 then
           clock := !clock +. Mcs_prng.Prng.exponential rng ~mean:30.;
         (ptg, !clock))
       ptgs
   in
   let policy =
     Mcs_online.Policy.make
       ~malleability:
         {
           Mcs_sched.Malleability.default with
           Mcs_sched.Malleability.quantum = 10.;
         }
       (Strategy.Weighted (Strategy.Work, 0.7))
   in
   let t0 = Unix.gettimeofday () in
   let r = Mcs_online.Engine.run ~policy platform apps in
   let wall = Unix.gettimeofday () -. t0 in
   let s = r.Mcs_online.Engine.stats in
   Printf.printf
     "malleable (8 apps, 10 s quantum): %d resizes, %d events, %.1f ms \
      wall\n\n%!"
     s.Mcs_online.Engine.resizes s.Mcs_online.Engine.events_processed
     (wall *. 1e3));
  (* Regression floor for CI: the peak events/s of the sweep must clear
     MCS_ONLINE_EVENTS_FLOOR when set (the committed CI value assumes
     the allocation cache; see DESIGN.md section 14). *)
  match Sys.getenv_opt "MCS_ONLINE_EVENTS_FLOOR" with
  | None -> ()
  | Some v ->
    let floor_rate = float_of_string v in
    if !peak_rate < floor_rate then begin
      Printf.eprintf "online: peak %.0f events/s below floor %.0f\n" !peak_rate
        floor_rate;
      exit 1
    end;
    Printf.printf "online: peak %.0f events/s clears floor %.0f\n\n%!"
      !peak_rate floor_rate

(* ---------- Serving engine (serve table + BENCH_serve.json) ---------- *)

module Obs = Mcs_obs.Obs
module Export = Mcs_obs.Export
module Names = Mcs_obs.Names
module Jsonx = Mcs_util.Jsonx
module Service = Mcs_serve.Service
module Admission = Mcs_serve.Admission
module Serve_stats = Mcs_serve.Stats

let serve_baseline_file = "BENCH_serve.json"

(* Poisson stream at mean 1 s virtual inter-arrival: dense enough that
   hundreds of applications are in service at once — the serving
   regime, not the paper's sparse offline one. *)
let serve_workload count seed =
  let rng = Mcs_prng.Prng.create ~seed in
  let ptgs =
    List.init count (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  let clock = ref 0. in
  List.mapi
    (fun i ptg ->
      if i > 0 then clock := !clock +. Mcs_prng.Prng.exponential rng ~mean:1.;
      (ptg, !clock))
    ptgs

let serve_config ~shards ~mode =
  {
    Service.default_config with
    Service.shards;
    mode;
    admission = { Admission.default with Admission.batch_window = 5. };
  }

(* Sharding sweep in real multi-domain mode: sustained submission and
   event throughput plus virtual-time response percentiles. *)
let run_serve () =
  let platform = Mcs_platform.Grid5000.grid () in
  let count = 300 in
  let apps = serve_workload count 23 in
  let table =
    Mcs_util.Table.create
      ~title:
        "serving engine (grid, 300 apps, Poisson mean 1 s, window 5 s, \
         least-work router)"
      ~header:
        [
          "shards"; "mode"; "subs/s"; "events/s"; "p50 resp"; "p99 resp";
          "peak active"; "wall";
        ]
  in
  let row ~shards ~mode ~label =
    let r = Service.run_stream (serve_config ~shards ~mode) platform apps in
    if r.Service.admitted <> count then begin
      Printf.eprintf "serve: %d of %d admitted\n" r.Service.admitted count;
      exit 1
    end;
    let p p_ = Serve_stats.percentile r.Service.responses ~p:p_ in
    Mcs_util.Table.add_row table
      [
        string_of_int shards;
        label;
        Printf.sprintf "%.0f"
          (float_of_int r.Service.admitted /. r.Service.wall_s);
        Printf.sprintf "%.0f" (float_of_int r.Service.events /. r.Service.wall_s);
        Printf.sprintf "%.0f s" (p 0.50);
        Printf.sprintf "%.0f s" (p 0.99);
        string_of_int r.Service.peak_active;
        Printf.sprintf "%.1f s" r.Service.wall_s;
      ];
    r
  in
  ignore (row ~shards:1 ~mode:Service.Domains ~label:"domains");
  ignore (row ~shards:2 ~mode:Service.Domains ~label:"domains");
  let r4 = row ~shards:4 ~mode:Service.Domains ~label:"domains" in
  Mcs_util.Table.print table;
  (* Baseline profile in the inline fallback: spans stay on the calling
     domain, so serve.run/pickup/step appear with meaningful self
     times. The summary row gates non-zero sustained throughput. *)
  Obs.enable ();
  let ri =
    Service.run_stream
      (serve_config ~shards:4 ~mode:Service.Inline)
      platform apps
  in
  Obs.disable ();
  let phases =
    Jsonx.Arr
      (List.map
         (fun (r : Export.row) ->
           Jsonx.Obj
             [
               ("name", Jsonx.Str r.Export.phase);
               ("calls", Jsonx.Num (float_of_int r.Export.calls));
               ("total_s", Jsonx.Num r.Export.total_s);
               ("self_s", Jsonx.Num r.Export.self_s);
               ("alloc_words", Jsonx.Num r.Export.alloc_w);
             ])
         (Export.profile_rows ()))
  in
  let counters =
    Jsonx.Obj
      (List.map
         (fun (name, v) -> (name, Jsonx.Num (float_of_int v)))
         (Obs.counter_values ()))
  in
  let p p_ = Serve_stats.percentile r4.Service.responses ~p:p_ in
  let doc =
    Jsonx.Obj
      [
        ("schema", Jsonx.Str "mcs-bench-serve/1");
        ("site", Jsonx.Str "grid");
        ("apps", Jsonx.Num (float_of_int count));
        ("seed", Jsonx.Num 23.);
        ("shards", Jsonx.Num 4.);
        ("window_s", Jsonx.Num 5.);
        ("phases", phases);
        ("counters", counters);
        ( "summary",
          Jsonx.Obj
            [
              ( "submissions_per_s",
                Jsonx.Num
                  (float_of_int r4.Service.admitted /. r4.Service.wall_s) );
              ( "events_per_s",
                Jsonx.Num (float_of_int r4.Service.events /. r4.Service.wall_s)
              );
              ("p50_response_s", Jsonx.Num (p 0.50));
              ("p99_response_s", Jsonx.Num (p 0.99));
              ("peak_active", Jsonx.Num (float_of_int r4.Service.peak_active));
            ] );
      ]
  in
  let oc = open_out serve_baseline_file in
  output_string oc (Jsonx.encode doc);
  output_char oc '\n';
  close_out oc;
  (* Re-read and validate like the pipeline baseline: the CI serve
     smoke step relies on the exit code. *)
  let contents =
    let ic = open_in serve_baseline_file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Jsonx.parse contents with
  | Error m ->
    Printf.eprintf "%s does not parse: %s\n" serve_baseline_file m;
    exit 1
  | Ok doc ->
    let present =
      match Jsonx.get_list "phases" doc with
      | None -> []
      | Some l -> List.filter_map (Jsonx.get_string "name") l
    in
    let required = [ "serve.run"; "serve.pickup"; "serve.step" ] in
    let missing = List.filter (fun p -> not (List.mem p present)) required in
    if missing <> [] then begin
      Printf.eprintf "%s: missing phases: %s\n" serve_baseline_file
        (String.concat " " missing);
      exit 1
    end);
  if ri.Service.admitted <> count || r4.Service.wall_s <= 0. then begin
    Printf.eprintf "serve: degenerate baseline run\n";
    exit 1
  end;
  Printf.printf "wrote %s\n\n%!" serve_baseline_file

(* ---------- Pipeline phase baseline (BENCH_pipeline.json) ---------- *)

let pipeline_baseline_file = "BENCH_pipeline.json"

(* One profiled offline evaluation plus one online run: between them
   they exercise every phase registered in [Mcs_obs.Names]. The
   aggregated per-phase self-times become the committed
   BENCH_pipeline.json baseline. The emitter re-reads the file and fails
   when it does not parse or any registered phase is missing — the CI
   smoke step relies on that exit code. *)
let emit_pipeline_baseline () =
  let platform = Mcs_platform.Grid5000.rennes () in
  let ref_cluster = Mcs_sched.Reference_cluster.of_platform platform in
  let seed = 11 in
  let rng = Mcs_prng.Prng.create ~seed in
  let ptgs =
    List.init 6 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  let phase_rows () =
    Jsonx.Arr
      (List.map
         (fun (r : Export.row) ->
           Jsonx.Obj
             [
               ("name", Jsonx.Str r.Export.phase);
               ("calls", Jsonx.Num (float_of_int r.Export.calls));
               ("total_s", Jsonx.Num r.Export.total_s);
               ("self_s", Jsonx.Num r.Export.self_s);
               ("alloc_words", Jsonx.Num r.Export.alloc_w);
             ])
         (Export.profile_rows ()))
  in
  Obs.enable ();
  ignore (E.Runner.evaluate platform ptgs [ Strategy.Equal_share ]);
  let apps = List.mapi (fun i p -> (p, 15. *. float_of_int i)) ptgs in
  let policy = Mcs_online.Policy.make Strategy.Equal_share in
  ignore (Mcs_online.Engine.run ~policy platform apps);
  (* A short faulted run exercises the online.fault phase and the fault
     counters (kills, retries, ledger releases) so the committed
     baseline covers every registered name. *)
  let faults =
    Mcs_fault.Fault.generate ~seed platform
      {
        Mcs_fault.Fault.default with
        Mcs_fault.Fault.mttf = 2000.;
        mttr = 120.;
        task_fail_p = 0.05;
        horizon = 600.;
      }
  in
  ignore (Mcs_online.Engine.run ~policy ~faults platform apps);
  (* A malleable run (tight resize grid, default triggers) enters the
     online.resize phase and executes actual grow/shrink operations so
     the resize counter is covered too. *)
  let malleable_policy =
    Mcs_online.Policy.make
      ~malleability:
        {
          Mcs_sched.Malleability.default with
          Mcs_sched.Malleability.quantum = 10.;
        }
      Strategy.Equal_share
  in
  ignore (Mcs_online.Engine.run ~policy:malleable_policy platform apps);
  (* A two-shard inline serve run covers the serve.* phases and
     counters; inline keeps every span on this domain's recorder. *)
  ignore
    (Service.run_stream
       { (serve_config ~shards:2 ~mode:Service.Inline) with
         Service.admission =
           { Admission.default with Admission.capacity = 2 };
       }
       platform apps);
  Obs.disable ();
  let phases = phase_rows () in
  let counters =
    Jsonx.Obj
      (List.map
         (fun (name, v) -> (name, Jsonx.Num (float_of_int v)))
         (Obs.counter_values ()))
  in
  (* Second profile at mapper-dominated scale: only the mapping step is
     inside the recorder window, so [large_phases] isolates its cost
     (DESIGN.md section 10; the compare gate below also covers it). *)
  let large = large_workload platform ref_cluster in
  Obs.enable ();
  ignore (Mcs_sched.List_mapper.run platform ref_cluster large);
  Obs.disable ();
  let large_phases = phase_rows () in
  let doc =
    Jsonx.Obj
      [
        ("schema", Jsonx.Str "mcs-bench-pipeline/1");
        ("site", Jsonx.Str "rennes");
        ("apps", Jsonx.Num (float_of_int (List.length ptgs)));
        ("seed", Jsonx.Num (float_of_int seed));
        ("strategy", Jsonx.Str (Strategy.name Strategy.Equal_share));
        ("phases", phases);
        ("counters", counters);
        ( "large_workload",
          Jsonx.Obj
            [
              ("apps", Jsonx.Num 20.);
              ("tasks", Jsonx.Num 100.);
              ("seed", Jsonx.Num 3.);
              ("beta", Jsonx.Num 0.05);
            ] );
        ("large_phases", large_phases);
      ]
  in
  let oc = open_out pipeline_baseline_file in
  output_string oc (Jsonx.encode doc);
  output_char oc '\n';
  close_out oc;
  let contents =
    let ic = open_in pipeline_baseline_file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match Jsonx.parse contents with
  | Error m ->
    Printf.eprintf "%s does not parse: %s\n" pipeline_baseline_file m;
    exit 1
  | Ok doc ->
    let present =
      match Jsonx.get_list "phases" doc with
      | None -> []
      | Some l -> List.filter_map (Jsonx.get_string "name") l
    in
    let missing =
      List.filter (fun p -> not (List.mem p present)) Names.phase_names
    in
    if missing <> [] then begin
      Printf.eprintf "%s: missing phases: %s\n" pipeline_baseline_file
        (String.concat " " missing);
      exit 1
    end;
    (* Counters get the same coverage guarantee as phases: every name
       registered in [Mcs_obs.Names] must appear in the committed
       baseline (the offline + online + faulted + serve runs above are
       chosen to touch them all). *)
    let counters_present =
      match Jsonx.member "counters" doc with
      | Some (Jsonx.Obj kvs) -> List.map fst kvs
      | Some _ | None -> []
    in
    let missing_counters =
      List.filter
        (fun c -> not (List.mem c counters_present))
        Names.counter_names
    in
    if missing_counters <> [] then begin
      Printf.eprintf "%s: missing counters: %s\n" pipeline_baseline_file
        (String.concat " " missing_counters);
      exit 1
    end;
    let large_present =
      match Jsonx.get_list "large_phases" doc with
      | None -> []
      | Some l -> List.filter_map (Jsonx.get_string "name") l
    in
    if not (List.mem "mapper.place" large_present) then begin
      Printf.eprintf "%s: large_phases misses mapper.place\n"
        pipeline_baseline_file;
      exit 1
    end;
    Printf.printf "wrote %s (%d phases, %d large-workload phases, %d \
                   counters)\n\n%!"
      pipeline_baseline_file (List.length present)
      (List.length large_present)
      (List.length (Obs.counter_values ()))

(* ---------- Baseline comparison (CI regression gate) ---------- *)

(* Self times under a millisecond are timer noise on shared runners, so
   phases below the floor in the reference profile are not gated. *)
let compare_floor_s = 1e-3
let compare_tolerance = 0.30

let load_json path =
  let contents =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match Jsonx.parse contents with
  | Ok doc -> doc
  | Error m ->
    Printf.eprintf "%s does not parse: %s\n" path m;
    exit 2

let self_times key doc =
  match Jsonx.get_list key doc with
  | None -> []
  | Some rows ->
    List.filter_map
      (fun row ->
        match (Jsonx.get_string "name" row, Jsonx.get_float "self_s" row) with
        | Some name, Some self -> Some (name, self)
        | _ -> None)
      rows

let run_compare ref_path cur_path =
  let ref_doc = load_json ref_path and cur_doc = load_json cur_path in
  let failures = ref 0 in
  let check_section key =
    let cur = self_times key cur_doc in
    List.iter
      (fun (name, ref_self) ->
        if ref_self >= compare_floor_s then
          match List.assoc_opt name cur with
          | None ->
            incr failures;
            Printf.printf "FAIL %s/%s: missing from %s\n" key name cur_path
          | Some cur_self ->
            let limit = ref_self *. (1. +. compare_tolerance) in
            if cur_self > limit then begin
              incr failures;
              Printf.printf
                "FAIL %s/%s: self time %.4f s exceeds %.4f s (ref %.4f s)\n"
                key name cur_self limit ref_self
            end
            else
              Printf.printf "ok   %s/%s: %.4f s (ref %.4f s)\n" key name
                cur_self ref_self)
      (self_times key ref_doc)
  in
  check_section "phases";
  check_section "large_phases";
  (* Cache-effectiveness gate: a build whose allocation cache never
     hits has silently fallen back to scratch allocation — that can
     hide inside the 30% wall-clock tolerance on fast runners, so the
     counters are checked directly. Only active when the reference
     profile itself exercised the cache. *)
  let counter key doc =
    match Jsonx.member "counters" doc with
    | Some (Jsonx.Obj kvs) -> (
      match List.assoc_opt key kvs with
      | Some (Jsonx.Num n) -> Some (int_of_float n)
      | Some _ | None -> None)
    | Some _ | None -> None
  in
  let served doc =
    match
      (counter "alloc.cache.hits" doc, counter "alloc.cache.rescales" doc)
    with
    | Some h, Some r -> Some (h + r)
    | _ -> None
  in
  (match (served ref_doc, served cur_doc) with
  | Some ref_served, cur_served when ref_served > 0 ->
    (match cur_served with
    | Some c when c > 0 ->
      Printf.printf "ok   counters/alloc.cache: %d served from cache\n" c
    | Some _ | None ->
      incr failures;
      Printf.printf
        "FAIL counters/alloc.cache: reference served %d allocations from \
         cache, current none\n"
        ref_served)
  | _ -> ());
  (* Same presence gate for malleability: a build whose resize machinery
     stopped firing would keep its wall-clock profile (skipped resizes
     are cheap) yet silently degrade to moldable execution. Only active
     when the reference profile itself executed resizes. *)
  (match (counter "online.resizes" ref_doc, counter "online.resizes" cur_doc)
   with
  | Some ref_resizes, cur_resizes when ref_resizes > 0 -> (
    match cur_resizes with
    | Some c when c > 0 ->
      Printf.printf "ok   counters/online.resizes: %d resizes executed\n" c
    | Some _ | None ->
      incr failures;
      Printf.printf
        "FAIL counters/online.resizes: reference executed %d resizes, \
         current none\n"
        ref_resizes)
  | _ -> ());
  if !failures > 0 then begin
    Printf.printf "%d phase(s) regressed beyond %.0f%%\n" !failures
      (100. *. compare_tolerance);
    exit 1
  end;
  Printf.printf "no phase regressed beyond %.0f%%\n" (100. *. compare_tolerance)

let run_micro () =
  let open Bechamel in
  section "Microbenchmarks (bechamel; one per pipeline stage)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.) () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (micro_tests ())
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let table =
    Mcs_util.Table.create ~title:"kernel timings"
      ~header:[ "benchmark"; "time per run" ]
  in
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "-"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Mcs_util.Table.add_row table [ name; human ])
    (List.sort compare !rows);
  Mcs_util.Table.print table;
  emit_pipeline_baseline ()

(* ---------- Experiment dispatch ---------- *)

let artefacts =
  [
    ("table1", fun () -> Mcs_util.Table.print (E.Table1.table ()));
    ("fig1", fun () -> print_tables (E.Fig_ready_vs_global.tables ()));
    ("fig2", fun () -> print_tables (E.Fig_mu_sweep.figure2 ()));
    ("fig3", fun () -> print_tables (E.Fig_strategies.figure3 ()));
    ("fig4", fun () -> print_tables (E.Fig_strategies.figure4 ()));
    ("fig5", fun () -> print_tables (E.Fig_strategies.figure5 ()));
    ("x1", fun () -> Mcs_util.Table.print (E.Exp_constraint.table ()));
    ("x2", fun () -> Mcs_util.Table.print (E.Exp_ablation.packing_table ()));
    ("x3", fun () -> Mcs_util.Table.print (E.Exp_ablation.procedure_table ()));
    ("x4", fun () -> Mcs_util.Table.print (E.Exp_validation.table ()));
    ("x5", fun () -> Mcs_util.Table.print (E.Exp_arrivals.table ()));
    ("x6", fun () -> Mcs_util.Table.print (E.Exp_single_ptg.table ()));
    ("x7", fun () -> Mcs_util.Table.print (E.Exp_online.table ()));
    ("x8", fun () -> Mcs_util.Table.print (E.Exp_faults.table ()));
    ("x9", fun () -> Mcs_util.Table.print (E.Exp_malleable.table ()));
    ("online", run_online);
    ("serve", run_serve);
    ("micro", run_micro);
  ]

let titles =
  [
    ("table1", "Table 1 — platform subsets");
    ("fig1", "Figure 1 — ready-task vs global ordering");
    ("fig2", "Figure 2 — mu sweep for WPS-work (random PTGs)");
    ("fig3", "Figure 3 — 8 strategies on random PTGs");
    ("fig4", "Figure 4 — 8 strategies on FFT PTGs");
    ("fig5", "Figure 5 — 6 strategies on Strassen PTGs");
    ("x1", "X1 — constraint satisfaction audit (Section 4's 99% claim)");
    ("x2", "X2 — ablation: allocation packing");
    ("x3", "X3 — ablation: SCRAP vs SCRAP-MAX");
    ("x4", "X4 — validation: estimated vs simulated makespans");
    ("x5", "X5 — extension: staggered submission times (future work, Section 8)");
    ("x6", "X6 — extension: single-PTG algorithm families (HEFT / M-HEFT / HCPA)");
    ("x7", "X7 — extension: online dynamic β vs offline approximation");
    ("x8", "X8 — extension: fault injection across the eight β strategies");
    ("x9", "X9 — extension: malleable vs moldable execution under bursts");
    ("online", "Online engine — event throughput and rescheduling cost");
    ("serve", "Serving engine — sharded multi-tenant throughput");
    ("micro", "Microbenchmarks");
  ]

let run_one id =
  match List.assoc_opt id artefacts with
  | Some f ->
    (match List.assoc_opt id titles with
    | Some t when id <> "micro" -> section t
    | Some _ | None -> ());
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "[%s done in %.1f s]\n\n%!" id (Unix.gettimeofday () -. t0)
  | None ->
    prerr_endline
      ("unknown artefact " ^ id ^ "; use one of: "
      ^ String.concat " " (List.map fst artefacts));
    exit 2

let () =
  match Array.to_list Sys.argv with
  | [ _; "compare"; ref_path; cur_path ] -> run_compare ref_path cur_path
  | _ :: "compare" :: _ ->
    prerr_endline "usage: bench compare REFERENCE.json CURRENT.json";
    exit 2
  | _ :: (_ :: _ as ids) -> List.iter run_one ids
  | [ _ ] | [] ->
    Printf.printf
      "Full reproduction run (MCS_RUNS=%d combinations per point; set \
       MCS_RUNS to scale).\n\n%!"
      (E.Sweep.runs_from_env ());
    List.iter (fun (id, _) -> run_one id) artefacts
