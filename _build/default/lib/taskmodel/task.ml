type complexity =
  | Stencil of float
  | Sort of float
  | Matmul

type complexity_class = Class_stencil | Class_sort | Class_matmul | Class_mixed

type t = {
  data : float;
  complexity : complexity;
  alpha : float;
}

let d_min = 4. *. 1024. *. 1024.
let d_max = 121. *. 1024. *. 1024.
let a_min = 64. (* 2^6 *)
let a_max = 512. (* 2^9 *)
let alpha_max = 0.25

let zero = { data = 0.; complexity = Matmul; alpha = 0. }
let is_zero t = t.data = 0.

let make ~data ~complexity ~alpha =
  if data < 0. then invalid_arg "Task.make: negative dataset";
  if alpha < 0. || alpha > 1. then invalid_arg "Task.make: alpha outside [0, 1]";
  (match complexity with
  | Stencil a | Sort a ->
    if a <= 0. then invalid_arg "Task.make: non-positive iteration factor"
  | Matmul -> ());
  { data; complexity; alpha }

let flops t =
  match t.complexity with
  | Stencil a -> a *. t.data
  | Sort a -> if t.data <= 1. then 0. else a *. t.data *. (log t.data /. log 2.)
  | Matmul -> t.data ** 1.5

let bytes t = 8. *. t.data

let seq_time t ~gflops =
  if gflops <= 0. then invalid_arg "Task.seq_time: non-positive speed";
  flops t /. (gflops *. 1e9)

let time t ~gflops ~procs =
  if procs < 1 then invalid_arg "Task.time: needs at least one processor";
  let seq = seq_time t ~gflops in
  seq *. (t.alpha +. ((1. -. t.alpha) /. float_of_int procs))

let speedup t ~procs =
  if procs < 1 then invalid_arg "Task.speedup: needs at least one processor";
  1. /. (t.alpha +. ((1. -. t.alpha) /. float_of_int procs))

let random rng ~class_ =
  let open Mcs_prng in
  let pick_concrete = function
    | Class_stencil -> Stencil (Prng.uniform rng ~lo:a_min ~hi:a_max)
    | Class_sort -> Sort (Prng.uniform rng ~lo:a_min ~hi:a_max)
    | Class_matmul -> Matmul
    | Class_mixed -> assert false
  in
  let complexity =
    match class_ with
    | Class_mixed ->
      let concrete =
        Prng.choose rng [| Class_stencil; Class_sort; Class_matmul |]
      in
      pick_concrete concrete
    | (Class_stencil | Class_sort | Class_matmul) as c -> pick_concrete c
  in
  let data = Prng.uniform rng ~lo:d_min ~hi:d_max in
  let alpha = Prng.uniform rng ~lo:0. ~hi:alpha_max in
  { data; complexity; alpha }

let pp ppf t =
  let kind =
    match t.complexity with
    | Stencil a -> Printf.sprintf "stencil(a=%.0f)" a
    | Sort a -> Printf.sprintf "sort(a=%.0f)" a
    | Matmul -> "matmul"
  in
  Format.fprintf ppf "%s d=%.2gM alpha=%.3f" kind (t.data /. 1e6) t.alpha
