module P = Mcs_platform.Platform

let route_bandwidth platform ~src_cluster ~dst_cluster =
  let src_fabric = P.fabric_bandwidth platform src_cluster in
  if src_cluster = dst_cluster then src_fabric
  else begin
    let narrow = Float.min src_fabric (P.fabric_bandwidth platform dst_cluster) in
    if P.same_switch platform src_cluster dst_cluster then narrow
    else Float.min narrow (P.backbone_bandwidth platform)
  end

let rate platform ~src_cluster ~dst_cluster ~src_procs ~dst_procs =
  if src_procs < 1 || dst_procs < 1 then
    invalid_arg "Redistribution.rate: processor count < 1";
  let streams = float_of_int (min src_procs dst_procs) in
  Float.min
    (streams *. P.nic_bandwidth platform)
    (route_bandwidth platform ~src_cluster ~dst_cluster)

let transfer_time platform ~src_cluster ~dst_cluster ~src_procs ~dst_procs
    ~bytes =
  if bytes <= 0. then 0.
  else begin
    let r = rate platform ~src_cluster ~dst_cluster ~src_procs ~dst_procs in
    P.latency platform +. (bytes /. r)
  end

let same_procs a b =
  Array.length a = Array.length b
  &&
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort compare sa;
  Array.sort compare sb;
  sa = sb

let estimate platform ~src_cluster ~src_procs ~dst_cluster ~dst_procs ~bytes =
  if bytes <= 0. then 0.
  else if src_cluster = dst_cluster && same_procs src_procs dst_procs then 0.
  else
    transfer_time platform ~src_cluster ~dst_cluster
      ~src_procs:(max 1 (Array.length src_procs))
      ~dst_procs:(max 1 (Array.length dst_procs))
      ~bytes
