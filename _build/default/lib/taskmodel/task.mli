(** Moldable data-parallel task model (Section 2 of the paper).

    A task operates on a dataset of [d] double-precision elements with
    4M ≤ d ≤ 121M (1 GByte of memory per processor). Its computational
    cost in flops follows one of three complexity classes, and its
    parallel execution time follows Amdahl's law with a non-parallelizable
    fraction α drawn in [0, 0.25]. The data a task sends to each
    successor is its dataset, i.e., [8·d] bytes. *)

type complexity =
  | Stencil of float  (** [a·d] flops, a ∈ [2^6, 2^9] — stencil sweeps *)
  | Sort of float     (** [a·d·log2 d] flops — sorting-like kernels *)
  | Matmul            (** [d^(3/2)] flops — √d×√d matrix product *)

type complexity_class = Class_stencil | Class_sort | Class_matmul | Class_mixed
(** The four evaluation scenarios: each pure class, or a random mix. *)

type t = {
  data : float;            (** dataset size d, in double elements *)
  complexity : complexity;
  alpha : float;           (** Amdahl non-parallelizable fraction *)
}

val d_min : float
(** 4M elements: smaller tasks would be fused with a neighbour. *)

val d_max : float
(** 121M elements: the 1 GByte memory bound. *)

val a_min : float
val a_max : float
(** Bounds of the iteration factor [a] (2^6 and 2^9). *)

val alpha_max : float
(** Largest non-parallelizable fraction (0.25). *)

val zero : t
(** Virtual task with no computation and no data — used for the added
    single entry/exit nodes of a PTG. *)

val is_zero : t -> bool

val make : data:float -> complexity:complexity -> alpha:float -> t
(** @raise Invalid_argument if [data < 0], [alpha] outside [0, 1], or a
    non-positive iteration factor. [data = 0] is allowed only through
    {!zero}-like virtual tasks. *)

val flops : t -> float
(** Sequential computational cost in floating-point operations. *)

val bytes : t -> float
(** Output data volume: [8·d] bytes. *)

val seq_time : t -> gflops:float -> float
(** Execution time on one processor of the given speed, in seconds. *)

val time : t -> gflops:float -> procs:int -> float
(** Amdahl execution time on [procs] processors of speed [gflops]:
    [seq·(α + (1−α)/p)]. @raise Invalid_argument if [procs < 1]. *)

val speedup : t -> procs:int -> float
(** [seq_time/time] on any speed (speed cancels out). *)

val random :
  Mcs_prng.Prng.t -> class_:complexity_class -> t
(** Draw a task per Section 2: d uniform in [d_min, d_max], a uniform in
    [a_min, a_max], α uniform in [0, alpha_max]. [Class_mixed] first
    picks one of the three classes uniformly. *)

val pp : Format.formatter -> t -> unit
