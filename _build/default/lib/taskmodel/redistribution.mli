(** Static data-redistribution cost model.

    When task [u] feeds task [v] and the two run on different processor
    sets, the [8·d] bytes produced by [u] must be redistributed. The
    transfer aggregates one stream per communicating node pair, so its
    rate is bounded by [min(p_u, p_v) × nic_bandwidth] and by the switch
    fabrics it crosses:

    - same cluster: the cluster's fabric;
    - different clusters on one switch: both fabrics;
    - different switches: both fabrics and the backbone.

    The mapper uses this latency + bandwidth estimate to compute
    data-ready times; the discrete-event simulator replays the same
    transfers as fluid flows whose rates additionally react to
    contention on the shared fabrics (see {!Mcs_sim}). *)

val route_bandwidth :
  Mcs_platform.Platform.t -> src_cluster:int -> dst_cluster:int -> float
(** Capacity (bytes/s) of the narrowest shared fabric on the route,
    ignoring the per-node streams. *)

val rate :
  Mcs_platform.Platform.t ->
  src_cluster:int -> dst_cluster:int ->
  src_procs:int -> dst_procs:int -> float
(** Uncontended transfer rate:
    [min(min(src_procs, dst_procs) × nic, route_bandwidth)].
    @raise Invalid_argument when a processor count is < 1. *)

val transfer_time :
  Mcs_platform.Platform.t ->
  src_cluster:int -> dst_cluster:int ->
  src_procs:int -> dst_procs:int -> bytes:float -> float
(** [latency + bytes/rate], ignoring the same-processor-set
    short-circuit of {!estimate} (0 when [bytes = 0]). *)

val estimate :
  Mcs_platform.Platform.t ->
  src_cluster:int ->
  src_procs:int array ->
  dst_cluster:int ->
  dst_procs:int array ->
  bytes:float ->
  float
(** Estimated transfer time in seconds. Zero when [bytes = 0] or when
    the destination runs on exactly the processors of the source (data
    already in place). *)

val same_procs : int array -> int array -> bool
(** Set equality of two processor arrays (order-insensitive). *)
