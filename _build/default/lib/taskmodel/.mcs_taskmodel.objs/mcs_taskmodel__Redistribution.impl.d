lib/taskmodel/redistribution.ml: Array Float Mcs_platform
