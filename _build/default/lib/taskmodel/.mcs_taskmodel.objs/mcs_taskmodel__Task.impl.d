lib/taskmodel/task.ml: Format Mcs_prng Printf Prng
