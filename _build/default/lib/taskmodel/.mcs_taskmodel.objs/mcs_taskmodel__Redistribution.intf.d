lib/taskmodel/redistribution.mli: Mcs_platform
