lib/taskmodel/task.mli: Format Mcs_prng
