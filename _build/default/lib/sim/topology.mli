(** Mapping from a {!Mcs_platform.Platform.t} to simulator links and
    routes.

    Link layout: one uplink per cluster (ids [0 .. clusters-1], capacity
    [link_bandwidth]) plus, when the site has several switches, one
    backbone link (id [clusters], capacity [backbone_bandwidth]) crossed
    by traffic between clusters sitting on different switches —
    reproducing the per-site contention differences of Section 2
    (Lille/Rennes: one switch; Nancy/Sophia: one per cluster). *)

type t

val of_platform : Mcs_platform.Platform.t -> t

val capacities : t -> float array
(** Capacity array to feed {!Flow_network.create}. *)

val route : t -> src_cluster:int -> dst_cluster:int -> int list
(** Links traversed by a transfer. Intra-cluster transfers cross their
    cluster's uplink once; inter-cluster ones cross both uplinks, plus
    the backbone when the clusters are on different switches. *)

val latency : t -> float
(** One-way latency applied at flow start. *)
