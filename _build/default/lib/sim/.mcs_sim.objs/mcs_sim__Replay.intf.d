lib/sim/replay.mli: Mcs_platform Mcs_sched
