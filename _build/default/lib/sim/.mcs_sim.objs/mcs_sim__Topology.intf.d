lib/sim/topology.mli: Mcs_platform
