lib/sim/flow_network.mli:
