lib/sim/flow_network.ml: Array Float Hashtbl List Printf
