lib/sim/topology.ml: Array Mcs_platform
