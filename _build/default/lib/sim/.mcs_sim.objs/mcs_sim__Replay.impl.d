lib/sim/replay.ml: Array Float Flow_network Hashtbl List Mcs_dag Mcs_platform Mcs_ptg Mcs_sched Mcs_taskmodel Mcs_util Printf Topology
