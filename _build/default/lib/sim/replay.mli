(** Discrete-event replay of concurrent schedules.

    The mapper ({!Mcs_sched.List_mapper}) produces schedules from static
    redistribution estimates. The replay executes those scheduling
    *decisions* — processor sets and per-processor task order — inside
    the fluid network model, so transfer durations emerge from actual
    link contention, as a SimGrid simulation would:

    - a task starts once every predecessor dependency is satisfied and
      it reaches the head of the FIFO of each of its processors;
    - a dependency is satisfied at the predecessor's finish when no data
      moves (zero bytes, or same processors on the same cluster), and at
      the completion of a network flow otherwise;
    - flows start one latency after the producer finishes and progress
      at the max-min fair rate of their route.

    Computation durations reuse the schedule's Amdahl times; only
    communication timing is re-evaluated. *)

type result = {
  makespans : float array;       (** per application: exit-node finish *)
  global_makespan : float;
  finish_times : float array array;  (** per application, per node *)
  start_times : float array array;   (** per application, per node *)
  flows_created : int;
  events_processed : int;
}

val run :
  ?release:float array ->
  Mcs_platform.Platform.t -> Mcs_sched.Schedule.t list -> result
(** Simulate the concurrent execution of the given schedules. [release]
    gives per-application submission times: no task of application [i]
    runs before [release.(i)] (default: all 0, as in the paper).
    @raise Invalid_argument on an empty list or an ill-formed
    [release]. *)
