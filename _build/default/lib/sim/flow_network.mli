(** Fluid network model with max-min fair bandwidth sharing.

    This is the same steady-state model as SimGrid's default network
    model: each active flow follows a route (a set of links); rates are
    assigned by progressive filling — repeatedly saturate the most
    contended link, splitting its remaining capacity equally among its
    unfrozen flows — which yields the max-min fair allocation.

    The module only computes rates; timing is the engine's business. *)

type t

val create : capacities:float array -> t
(** One network with [Array.length capacities] links.
    @raise Invalid_argument on a non-positive capacity. *)

val link_count : t -> int

type flow
(** Handle on an active flow. *)

val flow_id : flow -> int

val add_flow : t -> ?cap:float -> int list -> flow
(** Register a flow traversing the given links (duplicates ignored),
    optionally bounded by a per-flow rate cap — used to model the
    aggregate NIC capacity of the endpoints, independent of fabric
    contention. An empty route with no cap means the flow is only
    bounded by [max_rate].
    @raise Invalid_argument on an unknown link id or non-positive cap. *)

val remove_flow : t -> flow -> unit
(** Unregister. Removing twice is an error.
    @raise Invalid_argument if the flow is not active. *)

val active_flows : t -> flow list

val rates : t -> (flow * float) list
(** Max-min fair rate of every active flow, bytes/s. Flows with an empty
    route get [max_rate]. *)

val rate : t -> flow -> float
(** Rate of one flow (computes the global allocation; prefer {!rates}
    when querying many). *)

val max_rate : float
(** Rate cap for flows with an empty route (1e18 — effectively
    unbounded). *)
