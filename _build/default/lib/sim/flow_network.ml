type flow = { id : int; route : int array; cap : float }

type t = {
  capacities : float array;
  mutable next_id : int;
  mutable flows : flow list;
}

let max_rate = 1e18

let create ~capacities =
  Array.iter
    (fun c ->
      if c <= 0. then invalid_arg "Flow_network.create: non-positive capacity")
    capacities;
  { capacities = Array.copy capacities; next_id = 0; flows = [] }

let link_count t = Array.length t.capacities
let flow_id f = f.id

let add_flow t ?(cap = max_rate) route =
  if cap <= 0. then invalid_arg "Flow_network.add_flow: non-positive cap";
  List.iter
    (fun l ->
      if l < 0 || l >= link_count t then
        invalid_arg (Printf.sprintf "Flow_network.add_flow: link %d" l))
    route;
  let route = Array.of_list (List.sort_uniq compare route) in
  let f = { id = t.next_id; route; cap } in
  t.next_id <- t.next_id + 1;
  t.flows <- f :: t.flows;
  f

let remove_flow t f =
  if not (List.memq f t.flows) then
    invalid_arg "Flow_network.remove_flow: flow not active";
  t.flows <- List.filter (fun g -> g != f) t.flows

let active_flows t = t.flows

(* Progressive filling with per-flow caps: repeatedly find the smallest
   binding constraint — either a link's equal share or a flow's cap —
   freeze the flows it binds at that rate, and subtract the frozen
   bandwidth from their links. This yields the max-min fair allocation
   under rate bounds. *)
let rates t =
  let nl = link_count t in
  let remaining = Array.copy t.capacities in
  let result = Hashtbl.create 16 in
  let unfrozen = ref t.flows in
  let continue = ref true in
  while !continue && !unfrozen <> [] do
    let count = Array.make nl 0 in
    List.iter
      (fun f -> Array.iter (fun l -> count.(l) <- count.(l) + 1) f.route)
      !unfrozen;
    (* Smallest link share among links carrying unfrozen flows. *)
    let link_share = ref Float.infinity in
    for l = 0 to nl - 1 do
      if count.(l) > 0 then
        link_share :=
          Float.min !link_share (remaining.(l) /. float_of_int count.(l))
    done;
    (* Smallest cap among unfrozen flows. *)
    let cap_bound =
      List.fold_left (fun acc f -> Float.min acc f.cap) Float.infinity
        !unfrozen
    in
    let bound = Float.min !link_share cap_bound in
    if bound >= max_rate then begin
      (* Nothing binds: the remaining flows are unbounded. *)
      List.iter (fun f -> Hashtbl.replace result f.id max_rate) !unfrozen;
      continue := false
    end
    else begin
      let tol = 1e-12 *. Float.max 1. bound in
      let binds f =
        f.cap <= bound +. tol
        || Array.exists
             (fun l ->
               count.(l) > 0
               && remaining.(l) /. float_of_int count.(l) <= bound +. tol)
             f.route
      in
      let freeze, keep = List.partition binds !unfrozen in
      (* At least one flow realises the bound, so we always progress. *)
      assert (freeze <> []);
      List.iter
        (fun f ->
          let r = Float.min bound f.cap in
          Hashtbl.replace result f.id r;
          Array.iter
            (fun l -> remaining.(l) <- Float.max 0. (remaining.(l) -. r))
            f.route)
        freeze;
      unfrozen := keep
    end
  done;
  List.map (fun f -> (f, Hashtbl.find result f.id)) t.flows

let rate t f =
  match List.assq_opt f (rates t) with
  | Some r -> r
  | None -> invalid_arg "Flow_network.rate: flow not active"
