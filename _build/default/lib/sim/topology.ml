module P = Mcs_platform.Platform

type t = {
  platform : P.t;
  capacities : float array;
  backbone : int option;  (* link id of the backbone, when present *)
}

let of_platform platform =
  let nc = P.cluster_count platform in
  let multi_switch = P.switch_count platform > 1 in
  let n_links = nc + if multi_switch then 1 else 0 in
  let capacities =
    Array.init n_links (fun l ->
        if l < nc then P.fabric_bandwidth platform l
        else P.backbone_bandwidth platform)
  in
  let backbone = if multi_switch then Some nc else None in
  { platform; capacities; backbone }

let capacities t = Array.copy t.capacities

let route t ~src_cluster ~dst_cluster =
  if src_cluster = dst_cluster then [ src_cluster ]
  else begin
    let base = [ src_cluster; dst_cluster ] in
    match t.backbone with
    | Some b when not (P.same_switch t.platform src_cluster dst_cluster) ->
      b :: base
    | Some _ | None -> base
  end

let latency t = P.latency t.platform
