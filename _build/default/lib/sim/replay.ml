module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform
module Schedule = Mcs_sched.Schedule
module Redistribution = Mcs_taskmodel.Redistribution

type result = {
  makespans : float array;
  global_makespan : float;
  finish_times : float array array;
  start_times : float array array;
  flows_created : int;
  events_processed : int;
}

type flow_state = {
  f_app : int;
  f_node : int;  (* destination node whose dependency this flow carries *)
  route : int list;  (* fabric links plus both task-endpoint NIC groups *)
  mutable remaining : float;
  mutable rate : float;
  mutable last_update : float;
  mutable version : int;
  mutable handle : Flow_network.flow option;  (* Some once activated *)
}

type event =
  | Task_finish of int * int
  | Flow_activate of flow_state
  | Flow_finish of flow_state * int  (* flow, version at prediction time *)
  | App_release of int

let bytes_eps = 1e-3 (* a flow is done when less than this many bytes remain *)

let run ?release platform schedules =
  if schedules = [] then invalid_arg "Replay.run: no schedules";
  let schedules = Array.of_list schedules in
  let napps = Array.length schedules in
  let release =
    match release with
    | None -> Array.make napps 0.
    | Some r ->
      if Array.length r <> napps then
        invalid_arg "Replay.run: release length differs from schedules";
      Array.iter
        (fun t -> if t < 0. then invalid_arg "Replay.run: negative release")
        r;
      Array.copy r
  in
  let topology = Topology.of_platform platform in
  let latency = Topology.latency topology in

  (* Links: the topology's fabrics and backbone, plus one "NIC group"
     link per task placement holding processors (capacity |procs|·nic),
     so that concurrent transfers in or out of one data-parallel task
     share its aggregate NIC capacity. *)
  let fabric_links = Topology.capacities topology in
  let endpoint_base = Array.length fabric_links in
  let endpoint_ids = Hashtbl.create 64 in
  let endpoint_caps = ref [] in
  let endpoint_count = ref 0 in
  Array.iteri
    (fun i sched ->
      Array.iter
        (fun pl ->
          let n = Array.length pl.Schedule.procs in
          if n > 0 then begin
            Hashtbl.replace endpoint_ids (i, pl.Schedule.node)
              (endpoint_base + !endpoint_count);
            endpoint_caps :=
              (float_of_int n *. P.nic_bandwidth platform) :: !endpoint_caps;
            incr endpoint_count
          end)
        sched.Schedule.placements)
    schedules;
  let capacities =
    Array.append fabric_links
      (Array.of_list (List.rev !endpoint_caps))
  in
  let network = Flow_network.create ~capacities in
  let endpoint i v = Hashtbl.find endpoint_ids (i, v) in

  (* Per-application state. *)
  let node_count i = Dag.node_count schedules.(i).Schedule.ptg.Ptg.dag in
  let deps = Array.init napps (fun i ->
      let dag = schedules.(i).Schedule.ptg.Ptg.dag in
      Array.init (node_count i) (fun v -> Dag.in_degree dag v))
  in
  let started = Array.init napps (fun i -> Array.make (node_count i) false) in
  let finished = Array.init napps (fun i -> Array.make (node_count i) false) in
  let start_times = Array.init napps (fun i -> Array.make (node_count i) nan) in
  let finish_times = Array.init napps (fun i -> Array.make (node_count i) nan) in

  (* Per-processor FIFO queues following the schedule's per-processor
     order (the mapper's planned start times). *)
  let total_procs = P.total_procs platform in
  let queue_build = Array.make total_procs [] in
  Array.iteri
    (fun i sched ->
      Array.iter
        (fun pl ->
          Array.iter
            (fun p ->
              queue_build.(p) <-
                (pl.Schedule.start, pl.Schedule.finish, i, pl.Schedule.node)
                :: queue_build.(p))
            pl.Schedule.procs)
        sched.Schedule.placements)
    schedules;
  let queues =
    Array.map
      (fun l ->
        Array.of_list
          (List.map (fun (_, _, i, v) -> (i, v)) (List.sort compare l)))
      queue_build
  in
  let head = Array.make total_procs 0 in

  (* Event queue with lazy deletion for flow predictions. *)
  let heap =
    Mcs_util.Heap.create
      ~cmp:(fun (t1, s1, _) (t2, s2, _) ->
        let c = Float.compare t1 t2 in
        if c <> 0 then c else compare s1 s2)
  in
  let seq = ref 0 in
  let push time ev =
    incr seq;
    Mcs_util.Heap.push heap (time, !seq, ev)
  in

  let flows_created = ref 0 in
  let events_processed = ref 0 in

  (* Flow-rate bookkeeping: advance transferred bytes to [now], assign
     the fresh max-min rates and push updated completion predictions. *)
  let active : (int, flow_state) Hashtbl.t = Hashtbl.create 32 in
  let recompute now =
    Hashtbl.iter
      (fun _ fs ->
        fs.remaining <-
          Float.max 0. (fs.remaining -. (fs.rate *. (now -. fs.last_update)));
        fs.last_update <- now)
      active;
    List.iter
      (fun (handle, rate) ->
        let fs = Hashtbl.find active (Flow_network.flow_id handle) in
        fs.rate <- rate;
        fs.version <- fs.version + 1;
        let eta =
          if rate >= Flow_network.max_rate then 0. else fs.remaining /. rate
        in
        push (now +. eta) (Flow_finish (fs, fs.version)))
      (Flow_network.rates network)
  in

  let rec task_ready i v =
    (* All dependencies in, and at the head of each processor FIFO. *)
    deps.(i).(v) = 0
    && (not started.(i).(v))
    &&
    let pl = schedules.(i).Schedule.placements.(v) in
    Array.for_all
      (fun p ->
        head.(p) < Array.length queues.(p) && queues.(p).(head.(p)) = (i, v))
      pl.Schedule.procs

  and try_start now i v =
    if task_ready i v then begin
      started.(i).(v) <- true;
      start_times.(i).(v) <- now;
      let pl = schedules.(i).Schedule.placements.(v) in
      let duration = pl.Schedule.finish -. pl.Schedule.start in
      push (now +. duration) (Task_finish (i, v))
    end

  and dep_done now i v =
    deps.(i).(v) <- deps.(i).(v) - 1;
    assert (deps.(i).(v) >= 0);
    try_start now i v

  and finish_task now i v =
    finished.(i).(v) <- true;
    finish_times.(i).(v) <- now;
    let sched = schedules.(i) in
    let ptg = sched.Schedule.ptg in
    let pl = sched.Schedule.placements.(v) in
    (* Release processors and wake the next tasks in their FIFOs. *)
    Array.iter
      (fun p ->
        assert (queues.(p).(head.(p)) = (i, v));
        head.(p) <- head.(p) + 1;
        if head.(p) < Array.length queues.(p) then begin
          let ni, nv = queues.(p).(head.(p)) in
          try_start now ni nv
        end)
      pl.Schedule.procs;
    (* Feed successors: instant dependency or network flow. *)
    Array.iter
      (fun (w, e) ->
        let bytes = ptg.Ptg.edge_bytes.(e) in
        let pw = sched.Schedule.placements.(w) in
        let in_place =
          bytes <= 0.
          || pl.Schedule.cluster = pw.Schedule.cluster
             && Redistribution.same_procs pl.Schedule.procs pw.Schedule.procs
        in
        if in_place then dep_done now i w
        else begin
          incr flows_created;
          let fs =
            {
              f_app = i;
              f_node = w;
              route =
                endpoint i v :: endpoint i w
                :: Topology.route topology ~src_cluster:pl.Schedule.cluster
                     ~dst_cluster:pw.Schedule.cluster;
              remaining = bytes;
              rate = 0.;
              last_update = now;
              version = 0;
              handle = None;
            }
          in
          push (now +. latency) (Flow_activate fs)
        end)
      (Dag.succs ptg.Ptg.dag v)
  in

  (* Submission gating: dependency-free tasks of a later-released
     application carry one extra dependency, resolved by its
     App_release event. *)
  for i = 0 to napps - 1 do
    if release.(i) > 0. then begin
      for v = 0 to node_count i - 1 do
        if deps.(i).(v) = 0 then deps.(i).(v) <- 1
      done;
      push release.(i) (App_release i)
    end
  done;

  (* Seed: every dependency-free task. *)
  for i = 0 to napps - 1 do
    for v = 0 to node_count i - 1 do
      if deps.(i).(v) = 0 then try_start 0. i v
    done
  done;

  let rec loop () =
    match Mcs_util.Heap.pop heap with
    | None -> ()
    | Some (now, _, ev) ->
      incr events_processed;
      (match ev with
      | Task_finish (i, v) -> finish_task now i v
      | App_release i ->
        for v = 0 to node_count i - 1 do
          if deps.(i).(v) = 1 && Dag.in_degree schedules.(i).Schedule.ptg.Ptg.dag v = 0
          then dep_done now i v
        done
      | Flow_activate fs ->
        let handle = Flow_network.add_flow network fs.route in
        fs.handle <- Some handle;
        fs.last_update <- now;
        Hashtbl.replace active (Flow_network.flow_id handle) fs;
        recompute now
      | Flow_finish (fs, version) ->
        if version = fs.version then begin
          fs.remaining <-
            Float.max 0.
              (fs.remaining -. (fs.rate *. (now -. fs.last_update)));
          fs.last_update <- now;
          if fs.remaining <= bytes_eps then begin
            (match fs.handle with
            | Some handle ->
              Flow_network.remove_flow network handle;
              Hashtbl.remove active (Flow_network.flow_id handle)
            | None -> assert false);
            fs.version <- fs.version + 1;
            recompute now;
            dep_done now fs.f_app fs.f_node
          end
        end);
      loop ()
  in
  loop ();

  (* Every task must have completed. *)
  for i = 0 to napps - 1 do
    for v = 0 to node_count i - 1 do
      if not finished.(i).(v) then
        invalid_arg
          (Printf.sprintf
             "Replay.run: deadlock, app %d node %d never completed" i v)
    done
  done;
  let makespans =
    Array.mapi
      (fun i sched -> finish_times.(i).(Ptg.exit sched.Schedule.ptg))
      schedules
  in
  {
    makespans;
    global_makespan = Array.fold_left Float.max 0. makespans;
    finish_times;
    start_times;
    flows_created = !flows_created;
    events_processed = !events_processed;
  }
