lib/experiments/exp_constraint.mli: Mcs_util
