lib/experiments/fig_mu_sweep.ml: Float List Mcs_sched Mcs_util Printf Runner Sweep Workload
