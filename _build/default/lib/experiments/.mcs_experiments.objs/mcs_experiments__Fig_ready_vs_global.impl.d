lib/experiments/fig_ready_vs_global.ml: Array Float List Mcs_platform Mcs_ptg Mcs_sched Mcs_taskmodel Mcs_util Printf Runner Sweep Workload
