lib/experiments/exp_single_ptg.ml: Float List Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_util Printf Sweep Workload
