lib/experiments/fig_strategies.ml: Float List Mcs_metrics Mcs_sched Mcs_util Printf Runner Sweep Workload
