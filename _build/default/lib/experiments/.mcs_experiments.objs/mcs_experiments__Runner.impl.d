lib/experiments/runner.ml: Array List Mcs_metrics Mcs_sched Mcs_sim Mcs_util
