lib/experiments/exp_validation.mli: Mcs_util Workload
