lib/experiments/exp_arrivals.ml: Array Float List Mcs_metrics Mcs_prng Mcs_sched Mcs_util Printf Runner Sweep Workload
