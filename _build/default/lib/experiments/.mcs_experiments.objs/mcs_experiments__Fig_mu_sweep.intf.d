lib/experiments/fig_mu_sweep.mli: Mcs_sched Mcs_util Workload
