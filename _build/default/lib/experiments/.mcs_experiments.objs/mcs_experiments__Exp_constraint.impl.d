lib/experiments/exp_constraint.ml: List Mcs_platform Mcs_prng Mcs_sched Mcs_util Printf Sweep Workload
