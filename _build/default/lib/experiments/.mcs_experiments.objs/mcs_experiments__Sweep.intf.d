lib/experiments/sweep.mli: Mcs_platform Mcs_ptg Workload
