lib/experiments/table1.ml: Array List Mcs_platform Mcs_util Printf
