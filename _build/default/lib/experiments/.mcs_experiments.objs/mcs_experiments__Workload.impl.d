lib/experiments/workload.ml: List Mcs_prng Mcs_ptg Mcs_taskmodel
