lib/experiments/table1.mli: Mcs_util
