lib/experiments/sweep.ml: Array List Mcs_platform Mcs_prng Mcs_util Sys Workload
