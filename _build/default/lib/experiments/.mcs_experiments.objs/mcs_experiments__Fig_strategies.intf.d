lib/experiments/fig_strategies.mli: Mcs_sched Mcs_util Workload
