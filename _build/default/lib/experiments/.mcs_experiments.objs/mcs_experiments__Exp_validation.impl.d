lib/experiments/exp_validation.ml: Array Float List Mcs_platform Mcs_prng Mcs_sched Mcs_sim Mcs_util Printf Sweep Workload
