lib/experiments/exp_arrivals.mli: Mcs_sched Mcs_util
