lib/experiments/exp_ablation.mli: Mcs_util
