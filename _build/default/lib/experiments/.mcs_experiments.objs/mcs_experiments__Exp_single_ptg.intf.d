lib/experiments/exp_single_ptg.mli: Mcs_util
