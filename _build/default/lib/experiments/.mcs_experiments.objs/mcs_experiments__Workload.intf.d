lib/experiments/workload.mli: Mcs_prng Mcs_ptg Mcs_taskmodel
