lib/experiments/exp_ablation.ml: List Mcs_sched Mcs_util Runner Sweep Workload
