lib/experiments/runner.mli: Mcs_platform Mcs_ptg Mcs_sched
