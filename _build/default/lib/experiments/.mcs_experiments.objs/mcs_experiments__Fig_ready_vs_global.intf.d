lib/experiments/fig_ready_vs_global.mli: Mcs_util
