module P = Mcs_platform.Platform
module Prng = Mcs_prng.Prng
module Allocation = Mcs_sched.Allocation
module Reference_cluster = Mcs_sched.Reference_cluster
module List_mapper = Mcs_sched.List_mapper
module Schedule = Mcs_sched.Schedule
module Table = Mcs_util.Table

type stats = {
  beta : float;
  scenarios : int;
  level_ok : int;
  power_ok : int;
}

let default_betas = List.init 10 (fun i -> float_of_int (i + 1) /. 10.)

let compute ?runs ?(betas = default_betas) ?(seed = 99) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  let platforms = Mcs_platform.Grid5000.all () in
  List.map
    (fun beta ->
      let level_ok = ref 0 and power_ok = ref 0 and scenarios = ref 0 in
      List.iteri
        (fun pi platform ->
          let ref_cluster = Reference_cluster.of_platform platform in
          for run = 0 to runs - 1 do
            let rng =
              Prng.create
                ~seed:
                  ((seed * 7919) + (pi * 1009) + (run * 17)
                  + int_of_float (beta *. 1000.))
            in
            let ptg =
              List.hd
                (Workload.draw rng Workload.Random_mixed_scenarios ~count:1)
            in
            let alloc =
              Allocation.allocate ref_cluster platform ~beta ptg
            in
            incr scenarios;
            if
              Allocation.respects_level_constraint ref_cluster ~beta ptg
                alloc.Allocation.procs
            then incr level_ok;
            let schedules =
              List_mapper.run platform ref_cluster
                [ (ptg, alloc.Allocation.procs) ]
            in
            let sched = List.hd schedules in
            let used = Schedule.used_power_avg sched ~platform in
            (* Tolerance mirrors the paper's "99% of scenarios": the
               1-processor-per-task minimum can exceed tiny shares. *)
            if used <= (beta *. P.total_power platform) +. 1e-6 then
              incr power_ok
          done)
        platforms;
      { beta; scenarios = !scenarios; level_ok = !level_ok;
        power_ok = !power_ok })
    betas

let table ?runs () =
  let stats = compute ?runs () in
  let t =
    Table.create
      ~title:
        "Constraint audit — SCRAP-MAX allocations vs resource constraint \
         (random PTGs, 4 platforms)"
      ~header:
        [ "beta"; "scenarios"; "level constraint ok"; "avg power within \
           beta share" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          Printf.sprintf "%.1f" s.beta;
          string_of_int s.scenarios;
          Printf.sprintf "%d (%.0f%%)" s.level_ok
            (100. *. float_of_int s.level_ok /. float_of_int s.scenarios);
          Printf.sprintf "%d (%.0f%%)" s.power_ok
            (100. *. float_of_int s.power_ok /. float_of_int s.scenarios);
        ])
    stats;
  t
