module Prng = Mcs_prng.Prng

let runs_from_env () =
  match Sys.getenv_opt "MCS_RUNS" with
  | None -> 25
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | Some _ | None -> 25)

let scenario_seed ~seed ~count ~platform_idx ~run =
  (((seed * 1_000_003) + (count * 10_007) + (platform_idx * 101) + run)
  * 2_654_435_761)
  land max_int

let scenarios ~family ~count ~runs ~seed =
  let platforms = Array.of_list (Mcs_platform.Grid5000.all ()) in
  List.concat_map
    (fun run ->
      List.init (Array.length platforms) (fun platform_idx ->
          let rng =
            Prng.create
              ~seed:(scenario_seed ~seed ~count ~platform_idx ~run)
          in
          let ptgs = Workload.draw rng family ~count in
          (platforms.(platform_idx), ptgs)))
    (List.init runs (fun r -> r))

let mean_over f runs =
  Mcs_util.Floatx.mean (Array.of_list (List.map f runs))
