module Prng = Mcs_prng.Prng
module Strategy = Mcs_sched.Strategy
module Metrics = Mcs_metrics.Metrics
module Table = Mcs_util.Table

type point = {
  strategy : Strategy.t;
  count : int;
  unfairness : float;
  relative_makespan : float;
}

let strategies =
  [
    Strategy.Selfish;
    Strategy.Equal_share;
    Strategy.Weighted (Strategy.Width, 0.5);
    Strategy.Weighted (Strategy.Work, 0.7);
  ]

let compute ?runs ?(counts = Workload.paper_counts) ?(seed = 411)
    ?(mean_interarrival = 30.) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  List.concat_map
    (fun count ->
      let per_scenario =
        Mcs_util.Parmap.map
          (fun (platform, ptgs) ->
            (* Poisson arrivals, deterministic in the scenario. *)
            let rng =
              Prng.create ~seed:(seed + (count * 31) + List.length ptgs)
            in
            let release = Array.make count 0. in
            let clock = ref 0. in
            for i = 1 to count - 1 do
              clock :=
                !clock +. Prng.exponential rng ~mean:mean_interarrival;
              release.(i) <- !clock
            done;
            let results = Runner.evaluate ~release platform ptgs strategies in
            let best =
              List.fold_left
                (fun acc r -> Float.min acc r.Runner.global_makespan)
                Float.infinity results
            in
            List.map
              (fun r ->
                ( r.Runner.unfairness,
                  Metrics.relative_makespan r.Runner.global_makespan ~best ))
              results)
          (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count
             ~runs ~seed)
      in
      List.mapi
        (fun si strategy ->
          let mine = List.map (fun rs -> List.nth rs si) per_scenario in
          {
            strategy;
            count;
            unfairness = Sweep.mean_over fst mine;
            relative_makespan = Sweep.mean_over snd mine;
          })
        strategies)
    counts

let table ?runs () =
  let points = compute ?runs () in
  let counts = List.sort_uniq compare (List.map (fun p -> p.count) points) in
  let t =
    Table.create
      ~title:
        "Staggered submissions (Poisson arrivals, mean 30 s) — unfairness / \
         relative response time"
      ~header:
        ("strategy"
        :: List.map (fun c -> string_of_int c ^ " PTGs") counts)
  in
  List.iter
    (fun strategy ->
      Table.add_row t
        (Strategy.name strategy
        :: List.map
             (fun count ->
               match
                 List.find_opt
                   (fun p -> p.strategy = strategy && p.count = count)
                   points
               with
               | Some p ->
                 Printf.sprintf "%.2f / %.2f" p.unfairness p.relative_makespan
               | None -> "-")
             counts))
    strategies;
  t
