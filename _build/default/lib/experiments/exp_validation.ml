module P = Mcs_platform.Platform
module Prng = Mcs_prng.Prng
module Pipeline = Mcs_sched.Pipeline
module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy
module Table = Mcs_util.Table

type stats = {
  family : Workload.family;
  platform : string;
  runs : int;
  mean_rel_error : float;
  max_rel_error : float;
}

let families =
  [ Workload.Random_mixed_scenarios; Workload.Fft_ptgs;
    Workload.Strassen_ptgs ]

let compute ?runs ?(count = 6) ?(seed = 31) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  List.concat_map
    (fun family ->
      Mcs_util.Parmap.map
        (fun (pi, platform) ->
          let errors = ref [] in
          for run = 0 to runs - 1 do
            let rng =
              Prng.create ~seed:((seed * 31337) + (pi * 997) + run)
            in
            let ptgs = Workload.draw rng family ~count in
            let schedules =
              Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share
                platform ptgs
            in
            let sim = Mcs_sim.Replay.run platform schedules in
            List.iteri
              (fun i sched ->
                let est = sched.Schedule.makespan in
                let simulated = sim.Mcs_sim.Replay.makespans.(i) in
                if est > 0. then
                  errors := Float.abs (simulated -. est) /. est :: !errors)
              schedules
          done;
          let arr = Array.of_list !errors in
          {
            family;
            platform = P.name platform;
            runs;
            mean_rel_error = Mcs_util.Floatx.mean arr;
            max_rel_error =
              (if Array.length arr = 0 then 0.
               else Mcs_util.Floatx.maximum arr);
          })
        (List.mapi (fun pi p -> (pi, p)) (Mcs_platform.Grid5000.all ())))
    families

let table ?runs () =
  let stats = compute ?runs () in
  let t =
    Table.create
      ~title:
        "Validation — estimated vs simulated makespans (ES, 6 concurrent \
         PTGs)"
      ~header:
        [ "family"; "platform"; "mean |sim-est|/est"; "max |sim-est|/est" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          Workload.family_name s.family;
          s.platform;
          Printf.sprintf "%.2f%%" (100. *. s.mean_rel_error);
          Printf.sprintf "%.2f%%" (100. *. s.max_rel_error);
        ])
    stats;
  t
