(** Single-application comparison of the scheduling families behind the
    paper (the setting of N'Takpé, Suter & Casanova [11], whose
    conclusion — HCPA-style allocation trades a little makespan for much
    better efficiency than M-HEFT — motivates building fairness on
    constrained allocations):

    - HEFT (sequential tasks, Topcuoglu et al. [14]),
    - pure M-HEFT (one-step moldable EFT, Casanova et al. [1]),
    - M-HEFT with the efficiency bound of [11],
    - the two-step CPA-family allocation (SCRAP-MAX at β = 1, i.e., the
      HCPA regime) followed by the list mapper.

    Reported per family: mean makespan (normalised to the best) and mean
    parallel efficiency (useful flops over flop capacity held). *)

type stats = {
  algorithm : string;
  mean_relative_makespan : float;
  mean_efficiency : float;
}

val compute : ?runs:int -> ?seed:int -> unit -> stats list

val table : ?runs:int -> unit -> Mcs_util.Table.t
