(** Figure 1 and the mapping-procedure ablation: ordering the ready
    tasks only, versus the aggregated global ordering of [15] (mapped
    first-come-first-served, no backfilling).

    Two outputs:
    - the paper's two-PTG illustration, replayed on a toy two-processor
      platform, showing that the global ordering postpones the small
      application until the big one's first task completes while the
      ready ordering starts it immediately;
    - an aggregate comparison of both orderings over random-PTG
      scenarios (unfairness and relative makespan), quantifying the
      benefit claimed in Section 5. *)

val illustration : unit -> Mcs_util.Table.t
(** The two-PTG example: per-application start and makespan under both
    orderings. *)

val aggregate : ?runs:int -> ?counts:int list -> unit -> Mcs_util.Table.t
(** Mean unfairness and mean global makespan of both orderings under
    the ES strategy, per PTG count. *)

val tables : ?runs:int -> unit -> Mcs_util.Table.t list
