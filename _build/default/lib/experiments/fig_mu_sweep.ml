module Strategy = Mcs_sched.Strategy
module Table = Mcs_util.Table

type point = {
  mu : float;
  count : int;
  unfairness : float;
  avg_makespan : float;
}

let paper_mus = [ 0.; 0.3; 0.5; 0.7; 0.8; 0.9; 1. ]

let compute ?runs ?(counts = Workload.paper_counts) ?(mus = paper_mus)
    ?(seed = 2008) ?(metric = Strategy.Work)
    ?(family = Workload.Random_mixed_scenarios) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  let strategies = List.map (fun mu -> Strategy.Weighted (metric, mu)) mus in
  List.concat_map
    (fun count ->
      let scenario_results =
        Mcs_util.Parmap.map
          (fun (platform, ptgs) -> Runner.evaluate platform ptgs strategies)
          (Sweep.scenarios ~family ~count ~runs ~seed)
      in
      List.mapi
        (fun si mu ->
          let per_scenario =
            List.map (fun results -> List.nth results si) scenario_results
          in
          {
            mu;
            count;
            unfairness =
              Sweep.mean_over (fun r -> r.Runner.unfairness) per_scenario;
            avg_makespan =
              Sweep.mean_over (fun r -> r.Runner.avg_makespan) per_scenario;
          })
        mus)
    counts

let tables ~metric points =
  let mus = List.sort_uniq compare (List.map (fun p -> p.mu) points) in
  let counts = List.sort_uniq compare (List.map (fun p -> p.count) points) in
  let header =
    "#PTGs" :: List.map (fun mu -> Printf.sprintf "mu=%.1f" mu) mus
  in
  let series get title =
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s vs mu — WPS-%s, random PTGs" title
             (match metric with
             | Strategy.Cp -> "cp"
             | Strategy.Width -> "width"
             | Strategy.Work -> "work"))
        ~header
    in
    List.iter
      (fun count ->
        let row =
          List.map
            (fun mu ->
              match
                List.find_opt (fun p -> p.mu = mu && p.count = count) points
              with
              | Some p -> get p
              | None -> Float.nan)
            mus
        in
        ignore
          (Table.add_float_row table (Printf.sprintf "%d PTGs" count) row))
      counts;
    table
  in
  [
    series (fun p -> p.unfairness) "Unfairness";
    series (fun p -> p.avg_makespan) "Average makespan (s)";
  ]

let figure2 ?runs () =
  let metric = Strategy.Work in
  tables ~metric (compute ?runs ~metric ())
