(** Figures 3, 4 and 5: unfairness and average relative makespan of the
    resource-constraint determination strategies, as a function of the
    number of concurrent PTGs, for one application family.

    For each scenario, every strategy is run on the same applications;
    the relative makespan divides each strategy's global completion time
    by the best one achieved on that scenario. Reported values average
    over all scenarios of a point (runs × 4 platforms). *)

type point = {
  count : int;
  strategy : Mcs_sched.Strategy.t;
  unfairness : float;
  relative_makespan : float;
  avg_makespan : float;  (** seconds, not normalised *)
}

val compute :
  ?runs:int ->
  ?counts:int list ->
  ?seed:int ->
  family:Workload.family ->
  strategies:Mcs_sched.Strategy.t list ->
  unit ->
  point list
(** Defaults: [runs] from {!Sweep.runs_from_env}, paper counts,
    seed 2008. *)

val tables :
  family:Workload.family -> point list -> Mcs_util.Table.t list
(** Two tables (unfairness, average relative makespan): one row per
    strategy, one column per PTG count — the series of the paper's
    figures. *)

val figure3 : ?runs:int -> unit -> Mcs_util.Table.t list
(** Random PTGs, eight strategies. *)

val figure4 : ?runs:int -> unit -> Mcs_util.Table.t list
(** FFT PTGs, eight strategies (WPS-width uses the FFT-tuned µ = 0.3,
    as retained in Section 7). *)

val figure5 : ?runs:int -> unit -> Mcs_util.Table.t list
(** Strassen PTGs, six strategies (width-based ones are identical to ES
    on fixed-shape graphs). *)
