(** Workload sampling for the evaluation scenarios (Section 7).

    Three application families are used: randomly generated PTGs of 10,
    20 or 50 tasks with shape parameters drawn from the paper's grid,
    FFT PTGs of 4, 8 or 16 points, and Strassen PTGs (fixed 25-task
    shape). A scenario is a set of 2–10 concurrent applications of one
    family, submitted together on one platform. *)

type family =
  | Random_ptgs of Mcs_taskmodel.Task.complexity_class
  | Random_mixed_scenarios
      (** each application draws its cost scenario among the four *)
  | Fft_ptgs
  | Strassen_ptgs

val family_name : family -> string

val draw : Mcs_prng.Prng.t -> family -> count:int -> Mcs_ptg.Ptg.t list
(** [draw rng family ~count] samples [count] applications, ids
    [0 .. count-1]. *)

val paper_counts : int list
(** [[2; 4; 6; 8; 10]] concurrent applications. *)
