(** Design-choice ablations called out in DESIGN.md.

    - {b Packing} (Section 5): the allocation-packing mechanism shrinks
      a delayed task's allocation when that strictly improves its start
      without degrading its finish. Compared on/off.
    - {b SCRAP vs SCRAP-MAX} (Section 4): the paper keeps SCRAP-MAX
      because SCRAP's globally-checked constraint can leave a few large
      allocations that postpone ready tasks. Compared under ES. *)

val packing_table : ?runs:int -> ?counts:int list -> unit -> Mcs_util.Table.t
(** Mean unfairness and mean global makespan with and without packing
    (ES strategy, random PTGs). *)

val procedure_table : ?runs:int -> ?counts:int list -> unit -> Mcs_util.Table.t
(** Same comparison between the SCRAP and SCRAP-MAX allocation
    procedures. *)
