module Strategy = Mcs_sched.Strategy
module Metrics = Mcs_metrics.Metrics
module Table = Mcs_util.Table

type point = {
  count : int;
  strategy : Strategy.t;
  unfairness : float;
  relative_makespan : float;
  avg_makespan : float;
}

(* Per-scenario evaluation of all strategies, normalising makespans by
   the best global makespan achieved on the scenario. *)
let evaluate_scenario platform ptgs strategies =
  let results = Runner.evaluate platform ptgs strategies in
  let best =
    List.fold_left
      (fun acc r -> Float.min acc r.Runner.global_makespan)
      Float.infinity results
  in
  List.map
    (fun r ->
      ( r.Runner.strategy,
        r.Runner.unfairness,
        Metrics.relative_makespan r.Runner.global_makespan ~best,
        r.Runner.avg_makespan ))
    results

let compute ?runs ?(counts = Workload.paper_counts) ?(seed = 2008) ~family
    ~strategies () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  List.concat_map
    (fun count ->
      let scenario_results =
        Mcs_util.Parmap.map
          (fun (platform, ptgs) -> evaluate_scenario platform ptgs strategies)
          (Sweep.scenarios ~family ~count ~runs ~seed)
      in
      List.mapi
        (fun si strategy ->
          let per_scenario =
            List.map (fun results -> List.nth results si) scenario_results
          in
          let mean f = Sweep.mean_over f per_scenario in
          {
            count;
            strategy;
            unfairness = mean (fun (_, u, _, _) -> u);
            relative_makespan = mean (fun (_, _, m, _) -> m);
            avg_makespan = mean (fun (_, _, _, a) -> a);
          })
        strategies)
    counts

let tables ~family points =
  let counts =
    List.sort_uniq compare (List.map (fun p -> p.count) points)
  in
  let strategies =
    List.fold_left
      (fun acc p ->
        if List.exists (fun s -> s = p.strategy) acc then acc
        else acc @ [ p.strategy ])
      [] points
  in
  let header =
    "strategy" :: List.map (fun c -> string_of_int c ^ " PTGs") counts
  in
  let series metric title =
    let table =
      Table.create
        ~title:(Printf.sprintf "%s — %s" title (Workload.family_name family))
        ~header
    in
    List.iter
      (fun strategy ->
        let row =
          List.map
            (fun count ->
              match
                List.find_opt
                  (fun p -> p.count = count && p.strategy = strategy)
                  points
              with
              | Some p -> metric p
              | None -> Float.nan)
            counts
        in
        ignore (Table.add_float_row table (Strategy.name strategy) row))
      strategies;
    table
  in
  [
    series (fun p -> p.unfairness) "Unfairness";
    series (fun p -> p.relative_makespan) "Average relative makespan";
  ]

let figure3 ?runs () =
  let family = Workload.Random_mixed_scenarios in
  let points =
    compute ?runs ~family ~strategies:Strategy.paper_eight ()
  in
  tables ~family points

let figure4 ?runs () =
  let family = Workload.Fft_ptgs in
  (* Section 7 tunes µ to 0.3 for WPS-width on FFT graphs. *)
  let strategies =
    List.map
      (fun s ->
        match s with
        | Strategy.Weighted (Strategy.Width, _) ->
          Strategy.Weighted (Strategy.Width, 0.3)
        | s -> s)
      Strategy.paper_eight
  in
  let points = compute ?runs ~family ~strategies () in
  tables ~family points

let figure5 ?runs () =
  let family = Workload.Strassen_ptgs in
  let points =
    compute ?runs ~family ~strategies:Strategy.paper_six ()
  in
  tables ~family points
