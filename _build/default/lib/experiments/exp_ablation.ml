module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module List_mapper = Mcs_sched.List_mapper
module Allocation = Mcs_sched.Allocation
module Table = Mcs_util.Table

(* Compare two pipeline configurations under ES on random-PTG scenarios;
   one table row per PTG count. *)
let compare_configs ~title ~label_a ~label_b ~config_a ~config_b ?runs
    ?(counts = Workload.paper_counts) ~seed () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  let table =
    Table.create ~title
      ~header:
        [ "#PTGs";
          "unfairness " ^ label_a; "unfairness " ^ label_b;
          "makespan (s) " ^ label_a; "makespan (s) " ^ label_b ]
  in
  List.iter
    (fun count ->
      let per_scenario =
        Mcs_util.Parmap.map
          (fun (platform, ptgs) ->
            let run config =
              match
                Runner.evaluate ~config platform ptgs
                  [ Strategy.Equal_share ]
              with
              | [ r ] -> r
              | _ -> assert false
            in
            (run config_a, run config_b))
          (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count
             ~runs ~seed)
      in
      let mean f = Sweep.mean_over f per_scenario in
      ignore
        (Table.add_float_row table (string_of_int count)
           [
             mean (fun (a, _) -> a.Runner.unfairness);
             mean (fun (_, b) -> b.Runner.unfairness);
             mean (fun (a, _) -> a.Runner.global_makespan);
             mean (fun (_, b) -> b.Runner.global_makespan);
           ]))
    counts;
  table

let packing_table ?runs ?counts () =
  let with_packing = Pipeline.default_config in
  let without_packing =
    {
      Pipeline.default_config with
      mapper = { List_mapper.default_options with packing = false };
    }
  in
  compare_configs
    ~title:
      "Ablation — allocation packing on/off (ES strategy, random PTGs)"
    ~label_a:"packing" ~label_b:"no packing" ~config_a:with_packing
    ~config_b:without_packing ?runs ?counts ~seed:106 ()

let procedure_table ?runs ?counts () =
  let scrap_max = Pipeline.default_config in
  let scrap =
    { Pipeline.default_config with procedure = Allocation.Scrap }
  in
  compare_configs
    ~title:
      "Ablation — SCRAP vs SCRAP-MAX allocation (ES strategy, random PTGs)"
    ~label_a:"SCRAP-MAX" ~label_b:"SCRAP" ~config_a:scrap_max ~config_b:scrap
    ?runs ?counts ~seed:107 ()
