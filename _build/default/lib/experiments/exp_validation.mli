(** Model validation: the mapper plans with static redistribution
    estimates; the discrete-event replay re-times communications under
    max-min link contention. This experiment quantifies the gap between
    estimated and simulated makespans per application family and
    platform — small relative errors justify using the simulated values
    throughout the evaluation. *)

type stats = {
  family : Workload.family;
  platform : string;
  runs : int;
  mean_rel_error : float;  (** mean of (sim − est)/est over applications *)
  max_rel_error : float;
}

val compute : ?runs:int -> ?count:int -> ?seed:int -> unit -> stats list

val table : ?runs:int -> unit -> Mcs_util.Table.t
