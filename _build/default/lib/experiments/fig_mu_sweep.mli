(** Figure 2: evolution of unfairness and average makespan when the µ
    parameter of a WPS strategy sweeps from 0 (pure PS) to 1 (pure ES),
    on random PTGs.

    Reproduces the calibration that led the paper to retain µ = 0.7 for
    WPS-work: unfairness decreases with µ while average makespan
    increases, with diminishing fairness returns past 0.7. *)

type point = {
  mu : float;
  count : int;
  unfairness : float;
  avg_makespan : float;  (** plain average over runs, in seconds *)
}

val paper_mus : float list
(** The abscissas of Figure 2: 0, 0.3, 0.5, 0.7, 0.8, 0.9, 1. *)

val compute :
  ?runs:int ->
  ?counts:int list ->
  ?mus:float list ->
  ?seed:int ->
  ?metric:Mcs_sched.Strategy.metric ->
  ?family:Workload.family ->
  unit ->
  point list
(** Defaults: paper counts and µ values, [Work] metric, random PTGs. *)

val tables : metric:Mcs_sched.Strategy.metric -> point list -> Mcs_util.Table.t list
(** Two tables (unfairness, average makespan): one row per PTG count,
    one column per µ. *)

val figure2 : ?runs:int -> unit -> Mcs_util.Table.t list
(** The WPS-work sweep of Figure 2. *)
