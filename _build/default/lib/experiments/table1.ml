module P = Mcs_platform.Platform
module Table = Mcs_util.Table

let table () =
  let t =
    Table.create ~title:"Table 1 — Grid'5000 multi-cluster subsets"
      ~header:
        [ "Site"; "Cluster"; "#proc"; "GFlop/s"; "switch";
          "site #proc"; "site heterogeneity" ]
  in
  List.iter
    (fun platform ->
      let site = P.name platform in
      let total = P.total_procs platform in
      let het = Printf.sprintf "%.1f%%" (100. *. P.heterogeneity platform) in
      Array.iteri
        (fun k c ->
          Table.add_row t
            [
              (if k = 0 then site else "");
              c.P.cluster_name;
              string_of_int c.P.procs;
              Printf.sprintf "%.3f" c.P.gflops;
              string_of_int c.P.switch;
              (if k = 0 then string_of_int total else "");
              (if k = 0 then het else "");
            ])
        (P.clusters platform))
    (Mcs_platform.Grid5000.all ());
  t
