(** Table 1: the four Grid'5000 multi-cluster subsets, with the derived
    site-level figures quoted in Section 2 (processor totals 99, 167,
    229, 180 and heterogeneity 20.2%, 6.1%, 36.8%, 34.7%). *)

val table : unit -> Mcs_util.Table.t
