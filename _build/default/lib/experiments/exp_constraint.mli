(** Constraint audit (the "respected in 99% of the scenarios" claim of
    Section 4): for a grid of β values and a population of random PTGs,
    check how often the SCRAP-MAX allocation keeps every precedence
    level within [⌊β·P⌋] reference processors, and how often the mapped
    schedule's average power usage stays within [β × total power]. *)

type stats = {
  beta : float;
  scenarios : int;
  level_ok : int;      (** allocations within the per-level budget *)
  power_ok : int;      (** schedules within the average-power budget *)
}

val compute : ?runs:int -> ?betas:float list -> ?seed:int -> unit -> stats list
(** Default β grid: 0.1, 0.2, …, 1.0; [runs] PTGs per (β, platform). *)

val table : ?runs:int -> unit -> Mcs_util.Table.t
