module Platform = Mcs_platform.Platform
module Task = Mcs_taskmodel.Task
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module List_mapper = Mcs_sched.List_mapper
module Schedule = Mcs_sched.Schedule
module Table = Mcs_util.Table

let toy_platform () =
  Platform.make ~name:"toy"
    [ { Platform.cluster_name = "duo"; procs = 2; gflops = 1.; switch = 0 } ]

(* A chain of perfectly sequential tasks (α = 1, so allocations stay at
   one processor) whose durations on a 1 GFlop/s processor are given in
   seconds; communications are free to keep the example about ordering. *)
let chain ~id durations =
  let tasks =
    Array.of_list
      (List.map
         (fun seconds ->
           Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.) ~alpha:1.)
         durations)
  in
  let edges =
    List.init
      (Array.length tasks - 1)
      (fun i -> (i, i + 1, 0.))
  in
  Mcs_ptg.Builder.build ~id ~name:(Printf.sprintf "chain%d" id) ~tasks ~edges

let config_of ordering =
  {
    Pipeline.default_config with
    mapper = { List_mapper.default_options with ordering };
  }

let illustration () =
  let platform = toy_platform () in
  let big = chain ~id:0 [ 10.; 8.; 6.; 4. ] in
  let small = chain ~id:1 [ 1.; 1. ] in
  let table =
    Table.create
      ~title:
        "Figure 1 — ready-task vs global ordering (big chain 10+8+6+4 s, \
         small chain 1+1 s, two processors, beta = 1/2)"
      ~header:[ "ordering"; "application"; "start (s)"; "makespan (s)" ]
  in
  List.iter
    (fun ordering ->
      let schedules =
        Pipeline.schedule_concurrent ~config:(config_of ordering)
          ~strategy:Strategy.Equal_share platform [ big; small ]
      in
      let name =
        match ordering with
        | List_mapper.Ready_tasks -> "ready tasks"
        | List_mapper.Global_fcfs -> "global (FCFS)"
        | List_mapper.Global_backfill -> "global (backfill)"
      in
      List.iteri
        (fun i sched ->
          let first_real_start =
            Array.fold_left
              (fun acc pl ->
                if Array.length pl.Schedule.procs > 0 then
                  Float.min acc pl.Schedule.start
                else acc)
              Float.infinity sched.Schedule.placements
          in
          Table.add_row table
            [
              (if i = 0 then name else "");
              (if i = 0 then "big" else "small");
              Table.fmt_float first_real_start;
              Table.fmt_float sched.Schedule.makespan;
            ])
        schedules)
    [ List_mapper.Ready_tasks; List_mapper.Global_fcfs;
      List_mapper.Global_backfill ];
  table

let aggregate ?runs ?(counts = Workload.paper_counts) () =
  let runs =
    match runs with Some r -> r | None -> Sweep.runs_from_env ()
  in
  let table =
    Table.create
      ~title:
        "Mapping ablation — ready-task vs global FCFS vs conservative \
         backfilling (ES strategy, random PTGs)"
      ~header:
        [ "#PTGs"; "unfairness ready"; "unfairness fcfs";
          "unfairness backfill"; "rel. makespan ready";
          "rel. makespan fcfs"; "rel. makespan backfill" ]
  in
  List.iter
    (fun count ->
      let per_scenario =
        Mcs_util.Parmap.map
          (fun (platform, ptgs) ->
            let run ordering =
              match
                Runner.evaluate ~config:(config_of ordering) platform ptgs
                  [ Strategy.Equal_share ]
              with
              | [ r ] -> r
              | _ -> assert false
            in
            let ready = run List_mapper.Ready_tasks in
            let fcfs = run List_mapper.Global_fcfs in
            let backfill = run List_mapper.Global_backfill in
            let best =
              Float.min ready.Runner.global_makespan
                (Float.min fcfs.Runner.global_makespan
                   backfill.Runner.global_makespan)
            in
            ( (ready.Runner.unfairness, fcfs.Runner.unfairness,
               backfill.Runner.unfairness),
              ( ready.Runner.global_makespan /. best,
                fcfs.Runner.global_makespan /. best,
                backfill.Runner.global_makespan /. best ) ))
          (Sweep.scenarios ~family:Workload.Random_mixed_scenarios ~count
             ~runs ~seed:105)
      in
      let mean f = Sweep.mean_over f per_scenario in
      ignore
        (Table.add_float_row table (string_of_int count)
           [
             mean (fun ((a, _, _), _) -> a);
             mean (fun ((_, b, _), _) -> b);
             mean (fun ((_, _, c), _) -> c);
             mean (fun (_, (d, _, _)) -> d);
             mean (fun (_, (_, e, _)) -> e);
             mean (fun (_, (_, _, f)) -> f);
           ]))
    counts;
  table

let tables ?runs () = [ illustration (); aggregate ?runs () ]
