(** Scenario enumeration shared by every figure harness.

    The paper's protocol: for each number of concurrent PTGs (2–10), 25
    random application combinations are drawn and run on each of the
    four Grid'5000 subsets — 100 runs per point; reported values are
    averages over those runs. Scenarios are seeded deterministically
    from (seed, count, platform, run), so every figure is reproducible
    run-to-run and independent of evaluation order. *)

val runs_from_env : unit -> int
(** Number of combinations per (count, platform) point: the value of
    the [MCS_RUNS] environment variable, or 25 (the paper's setting). *)

val scenarios :
  family:Workload.family ->
  count:int ->
  runs:int ->
  seed:int ->
  (Mcs_platform.Platform.t * Mcs_ptg.Ptg.t list) list
(** All (platform, applications) scenarios for one point: [runs]
    combinations × the four Grid'5000 subsets. *)

val mean_over :
  ('a -> float) -> 'a list -> float
(** Average of a measurement over a list of runs. *)
