module Prng = Mcs_prng.Prng
module Task = Mcs_taskmodel.Task
module Random_gen = Mcs_ptg.Random_gen

type family =
  | Random_ptgs of Task.complexity_class
  | Random_mixed_scenarios
  | Fft_ptgs
  | Strassen_ptgs

let family_name = function
  | Random_ptgs Task.Class_stencil -> "random(a.d)"
  | Random_ptgs Task.Class_sort -> "random(a.d.log d)"
  | Random_ptgs Task.Class_matmul -> "random(d^3/2)"
  | Random_ptgs Task.Class_mixed -> "random(mixed)"
  | Random_mixed_scenarios -> "random"
  | Fft_ptgs -> "FFT"
  | Strassen_ptgs -> "Strassen"

let paper_counts = [ 2; 4; 6; 8; 10 ]

let random_params rng class_ =
  {
    Random_gen.tasks = Prng.choose rng [| 10; 20; 50 |];
    width = Prng.choose rng [| 0.2; 0.5; 0.8 |];
    regularity = Prng.choose rng [| 0.2; 0.8 |];
    density = Prng.choose rng [| 0.2; 0.8 |];
    jump = Prng.choose rng [| 1; 2; 4 |];
    class_;
  }

let draw rng family ~count =
  if count < 1 then invalid_arg "Workload.draw: count < 1";
  List.init count (fun id ->
      match family with
      | Random_ptgs class_ ->
        Random_gen.generate ~id rng (random_params rng class_)
      | Random_mixed_scenarios ->
        let class_ =
          Prng.choose rng
            [|
              Task.Class_stencil; Task.Class_sort; Task.Class_matmul;
              Task.Class_mixed;
            |]
        in
        Random_gen.generate ~id rng (random_params rng class_)
      | Fft_ptgs ->
        let points = Prng.choose rng [| 4; 8; 16 |] in
        Mcs_ptg.Fft.generate ~id ~points rng
      | Strassen_ptgs -> Mcs_ptg.Strassen.generate ~id rng)
