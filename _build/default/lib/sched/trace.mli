(** Schedule export for external tooling.

    Two formats:
    - CSV, one row per task placement (plottable as a Gantt chart with
      any spreadsheet or matplotlib);
    - a compact JSON document embedding applications, placements and
      makespans (hand-rolled encoder, no dependency). *)

val to_csv : Schedule.t list -> string
(** Header:
    [app,app_name,node,virtual,cluster,procs,nb_procs,start,finish].
    The [procs] cell joins global processor ids with ['+']. *)

val to_json : Schedule.t list -> string
(** One JSON object with an [applications] array. Numbers are printed
    with enough digits to round-trip. *)
