lib/sched/schedule.ml: Array Buffer Char Float Hashtbl List Mcs_dag Mcs_platform Mcs_ptg Mcs_util Option Printf String
