lib/sched/mheft.ml: Array Float Mcs_dag Mcs_platform Mcs_ptg Mcs_taskmodel Mcs_util Schedule
