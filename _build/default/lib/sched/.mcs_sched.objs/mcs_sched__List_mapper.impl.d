lib/sched/list_mapper.ml: Array Float Lazy List Mcs_dag Mcs_platform Mcs_ptg Mcs_taskmodel Mcs_util Reference_cluster Schedule
