lib/sched/allocation.mli: Mcs_platform Mcs_ptg Reference_cluster
