lib/sched/mheft.mli: Mcs_platform Mcs_ptg Schedule
