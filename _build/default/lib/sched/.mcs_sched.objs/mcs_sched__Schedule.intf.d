lib/sched/schedule.mli: Mcs_platform Mcs_ptg Result
