lib/sched/pipeline.ml: Allocation Array List List_mapper Reference_cluster Strategy
