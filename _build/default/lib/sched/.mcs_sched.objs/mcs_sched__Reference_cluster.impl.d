lib/sched/reference_cluster.ml: Float Mcs_platform Mcs_taskmodel
