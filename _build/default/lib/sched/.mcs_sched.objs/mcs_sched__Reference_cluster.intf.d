lib/sched/reference_cluster.mli: Mcs_platform Mcs_taskmodel
