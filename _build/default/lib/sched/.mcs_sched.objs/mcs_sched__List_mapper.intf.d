lib/sched/list_mapper.mli: Mcs_platform Mcs_ptg Reference_cluster Schedule
