lib/sched/strategy.mli: Mcs_ptg
