lib/sched/trace.ml: Array Buffer Char List Mcs_ptg Printf Schedule String
