lib/sched/pipeline.mli: Allocation List_mapper Mcs_platform Mcs_ptg Schedule Strategy
