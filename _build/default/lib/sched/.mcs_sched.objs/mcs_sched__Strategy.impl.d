lib/sched/strategy.ml: Array Float List Mcs_ptg Mcs_util Printf
