lib/sched/trace.mli: Schedule
