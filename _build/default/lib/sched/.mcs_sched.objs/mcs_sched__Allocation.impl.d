lib/sched/allocation.ml: Array Float Mcs_dag Mcs_ptg Mcs_taskmodel Mcs_util Printf Reference_cluster
