module P = Mcs_platform.Platform
module Task = Mcs_taskmodel.Task

type t = { speed : float; procs : int }

let make ~speed ~procs =
  if speed <= 0. then invalid_arg "Reference_cluster.make: non-positive speed";
  if procs <= 0 then invalid_arg "Reference_cluster.make: non-positive size";
  { speed; procs }

let of_platform platform =
  let speed = P.min_speed platform in
  let procs = int_of_float (Float.floor (P.total_power platform /. speed)) in
  make ~speed ~procs:(max 1 procs)

let exec_time t task ~procs =
  if Task.is_zero task then 0. else Task.time task ~gflops:t.speed ~procs

let round_half_up x = int_of_float (Float.floor (x +. 0.5))

let translate t platform ~cluster p =
  if p < 1 then invalid_arg "Reference_cluster.translate: p < 1";
  let c = P.cluster platform cluster in
  let ideal = float_of_int p *. t.speed /. c.P.gflops in
  let r = max 1 (round_half_up ideal) in
  min r c.P.procs

let fits t platform ~cluster p =
  if p < 1 then invalid_arg "Reference_cluster.fits: p < 1";
  let c = P.cluster platform cluster in
  let ideal = float_of_int p *. t.speed /. c.P.gflops in
  max 1 (round_half_up ideal) <= c.P.procs

let max_allocation t platform =
  (* Largest p such that round(p·s_ref/s_k) <= p_k for some k. The
     translation is monotone in p, so compute the per-cluster bound
     directly: p·s_ref/s_k < p_k + 0.5. *)
  let best = ref 1 in
  for k = 0 to P.cluster_count platform - 1 do
    let c = P.cluster platform k in
    let bound =
      (float_of_int c.P.procs +. 0.5) *. c.P.gflops /. t.speed
    in
    let cap = int_of_float (Float.ceil bound) - 1 in
    let cap = max 1 cap in
    (* Guard against float rounding at the boundary. *)
    let cap = if fits t platform ~cluster:k cap then cap else cap - 1 in
    if cap > !best then best := cap
  done;
  min !best t.procs
