module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform

type placement = {
  node : int;
  cluster : int;
  procs : int array;
  start : float;
  finish : float;
}

type t = {
  ptg : Ptg.t;
  placements : placement array;
  makespan : float;
}

let make ~ptg ~placements =
  let n = Dag.node_count ptg.Ptg.dag in
  if Array.length placements <> n then
    invalid_arg "Schedule.make: placement count differs from node count";
  { ptg; placements; makespan = placements.(Ptg.exit ptg).finish }

let placement t v = t.placements.(v)

let busy_time t =
  let acc = ref 0. in
  Array.iter
    (fun pl ->
      acc :=
        !acc +. ((pl.finish -. pl.start) *. float_of_int (Array.length pl.procs)))
    t.placements;
  !acc

let cluster_busy_time ~platform schedules =
  let busy = Array.make (P.cluster_count platform) 0. in
  List.iter
    (fun sched ->
      Array.iter
        (fun pl ->
          Array.iter
            (fun p ->
              let k = P.cluster_of_proc platform p in
              busy.(k) <- busy.(k) +. (pl.finish -. pl.start))
            pl.procs)
        sched.placements)
    schedules;
  busy

let parallel_efficiency ~platform t =
  let capacity = ref 0. in
  Array.iter
    (fun pl ->
      let speeds =
        Array.fold_left (fun s p -> s +. P.proc_speed platform p) 0. pl.procs
      in
      capacity := !capacity +. ((pl.finish -. pl.start) *. speeds *. 1e9))
    t.placements;
  if !capacity <= 0. then 0. else Ptg.work t.ptg /. !capacity

let used_power_avg t ~platform =
  if t.makespan <= 0. then 0.
  else begin
    let acc = ref 0. in
    Array.iter
      (fun pl ->
        let power =
          Array.fold_left
            (fun s p -> s +. P.proc_speed platform p)
            0. pl.procs
        in
        acc := !acc +. ((pl.finish -. pl.start) *. power))
      t.placements;
    !acc /. t.makespan
  end

type violation = { message : string }

let fail fmt = Printf.ksprintf (fun message -> Error { message }) fmt

let validate_one ~platform sched =
  let ptg = sched.ptg in
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let rec check_node v =
    if v >= n then Ok ()
    else begin
      let pl = sched.placements.(v) in
      if pl.node <> v then fail "%s node %d: placement mislabeled" ptg.Ptg.name v
      else if pl.finish < pl.start -. Mcs_util.Floatx.eps then
        fail "%s node %d: finish %g before start %g" ptg.Ptg.name v pl.finish
          pl.start
      else if Ptg.is_virtual ptg v && Array.length pl.procs > 0 then
        fail "%s node %d: virtual task holds processors" ptg.Ptg.name v
      else if (not (Ptg.is_virtual ptg v)) && Array.length pl.procs = 0 then
        fail "%s node %d: real task without processors" ptg.Ptg.name v
      else begin
        let sorted = Array.copy pl.procs in
        Array.sort compare sorted;
        let dup = ref false in
        for i = 1 to Array.length sorted - 1 do
          if sorted.(i) = sorted.(i - 1) then dup := true
        done;
        if !dup then fail "%s node %d: duplicate processor" ptg.Ptg.name v
        else begin
          let wrong_cluster =
            Array.exists
              (fun p -> P.cluster_of_proc platform p <> pl.cluster)
              pl.procs
          in
          if wrong_cluster then
            fail "%s node %d: processor outside cluster %d" ptg.Ptg.name v
              pl.cluster
          else begin
            let bad_pred = ref None in
            Array.iter
              (fun (u, _e) ->
                let pu = sched.placements.(u) in
                if pl.start +. Mcs_util.Floatx.eps < pu.finish then
                  bad_pred := Some u)
              (Dag.preds dag v);
            match !bad_pred with
            | Some u ->
              fail "%s node %d starts at %g before predecessor %d ends at %g"
                ptg.Ptg.name v pl.start u sched.placements.(u).finish
            | None -> check_node (v + 1)
          end
        end
      end
    end
  in
  check_node 0

let validate ~platform schedules =
  let rec all = function
    | [] -> Ok ()
    | s :: rest -> (
      match validate_one ~platform s with
      | Error _ as e -> e
      | Ok () -> all rest)
  in
  match all schedules with
  | Error _ as e -> e
  | Ok () ->
    (* Per-processor time-overlap check across every application. *)
    let per_proc = Hashtbl.create 256 in
    List.iteri
      (fun si sched ->
        Array.iter
          (fun pl ->
            Array.iter
              (fun p ->
                let prev =
                  Option.value (Hashtbl.find_opt per_proc p) ~default:[]
                in
                Hashtbl.replace per_proc p
                  ((pl.start, pl.finish, si, pl.node) :: prev))
              pl.procs)
          sched.placements)
      schedules;
    let result = ref (Ok ()) in
    Hashtbl.iter
      (fun p intervals ->
        match !result with
        | Error _ -> ()
        | Ok () ->
          let sorted =
            List.sort (fun (s1, _, _, _) (s2, _, _, _) -> compare s1 s2)
              intervals
          in
          let rec scan = function
            | (s1, f1, a1, v1) :: ((s2, _, a2, v2) :: _ as rest) ->
              if s2 +. Mcs_util.Floatx.eps < f1 then
                result :=
                  fail
                    "processor %d double-booked: app %d node %d [%g, %g] \
                     overlaps app %d node %d starting %g"
                    p a1 v1 s1 f1 a2 v2 s2
              else scan rest
            | [ _ ] | [] -> ()
          in
          scan sorted)
      per_proc;
    !result

let gantt ~platform ?(width = 78) schedules =
  let horizon =
    List.fold_left (fun acc s -> Float.max acc s.makespan) 0. schedules
  in
  if horizon <= 0. then "(empty schedule)\n"
  else begin
    let buf = Buffer.create 1024 in
    let scale = float_of_int width /. horizon in
    let letter si = Char.chr (Char.code 'A' + (si mod 26)) in
    for k = 0 to P.cluster_count platform - 1 do
      let c = P.cluster platform k in
      Buffer.add_string buf
        (Printf.sprintf "%-10s |" c.P.cluster_name);
      (* One row per cluster: each column shows which application uses
         the most processor-seconds of that cluster in that time slice. *)
      let usage = Array.make width (-1) in
      let weight = Array.make width 0. in
      List.iteri
        (fun si sched ->
          Array.iter
            (fun pl ->
              let nb_here =
                Array.fold_left
                  (fun acc p ->
                    if P.cluster_of_proc platform p = k then acc + 1 else acc)
                  0 pl.procs
              in
              if nb_here > 0 then begin
                let c0 = int_of_float (pl.start *. scale) in
                let c1 =
                  min (width - 1) (int_of_float (pl.finish *. scale))
                in
                for col = max 0 c0 to c1 do
                  let w = float_of_int nb_here in
                  if w > weight.(col) then begin
                    weight.(col) <- w;
                    usage.(col) <- si
                  end
                done
              end)
            sched.placements)
        schedules;
      Array.iter
        (fun si ->
          Buffer.add_char buf (if si < 0 then ' ' else letter si))
        usage;
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf
      (Printf.sprintf "horizon: %.2f s; apps: %s\n" horizon
         (String.concat ", "
            (List.mapi
               (fun si s ->
                 Printf.sprintf "%c=%s#%d" (letter si) s.ptg.Ptg.name
                   s.ptg.Ptg.id)
               schedules)));
    Buffer.contents buf
  end
